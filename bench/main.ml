(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, runs the design-choice ablations called out in
   DESIGN.md, and micro-benchmarks the core operations with Bechamel.

   Usage:
     main.exe [table1|table2|table3|figs|ablations|ingest|analyze|verify|evaluate|profile|stream|compress|serve|micro|all]
              [--paper] [--json FILE]

   Default (no arguments): everything, with the long-TS/evaluation lengths
   scaled down to 120k instants so the full run completes in minutes.
   [--paper] restores the paper's 500000-instant workloads.

   [--json FILE] additionally writes per-stage wall-clock timings to FILE;
   when PSM_JOBS > 1 the requested stages are re-run (silenced) with the
   domain pool forced to one job, so the file also records the measured
   speedup of the parallel fan-out over the sequential baseline. *)

module Experiment = Psm_flow.Experiment
module Report = Psm_flow.Report
module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Table = Psm_mining.Prop_trace.Table

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* ---------- Tables ---------- *)

let run_table1 () =
  section "Table I: characteristics of benchmarks";
  print_string (Report.table1 (Experiment.table1 ()))

let run_table2 ~long_length () =
  section
    (Printf.sprintf "Table II: characteristics of the generated PSMs (long-TS = %d)"
       long_length);
  print_string (Report.table2 (Experiment.table2 ~long_length ()));
  Printf.printf
    "(MRE on the training testset; PX = reference power simulation time;\n\
    \ short-TS lengths are the paper's: RAM 34130, MultSum 12002, AES 16504,\n\
    \ Camellia 78004.)\n"

let run_table3 ~eval_length () =
  section
    (Printf.sprintf
       "Table III: simulation times and accuracy (PSMs from short-TS, %d instants)"
       eval_length);
  print_string (Report.table3 (Experiment.table3 ~eval_length ()))

(* ---------- Figures ---------- *)

let run_figs () =
  section "Fig. 2: example power state machine (off / idle / on)";
  print_string (Psm_core.Dot.to_string ~name:"fig2" ~show_sigma:false (Experiment.fig2_psm ()));
  section "Fig. 3: functional trace -> proposition trace";
  let fig3 = Experiment.fig3_example () in
  for p = 0 to Table.prop_count fig3.Experiment.table - 1 do
    Format.printf "%a@." (Table.pp_prop fig3.Experiment.table) p
  done;
  Format.printf "%a@." Psm_mining.Prop_trace.pp fig3.Experiment.gamma;
  section "Fig. 5: the XU automaton run and the generated PSM";
  let xu = Psm_core.Xu.initialize fig3.Experiment.gamma in
  let name = Table.name fig3.Experiment.table in
  let rec walk () =
    match Psm_core.Xu.get_assertion xu with
    | Some (pattern, start, stop) ->
        let rendered =
          match pattern with
          | Psm_core.Xu.Until (p, q) -> Printf.sprintf "%s U %s" (name p) (name q)
          | Psm_core.Xu.Next (p, q) -> Printf.sprintf "%s X %s" (name p) (name q)
        in
        Printf.printf "  <%s, %d, %d>\n" rendered start stop;
        walk ()
    | None -> ()
  in
  walk ();
  let psm = Experiment.fig5_psm fig3 in
  Format.printf "%a@." Psm.pp psm;
  print_string (Psm_core.Dot.to_string ~name:"fig5" psm)

(* ---------- Ablations ---------- *)

let ablation_flow ?(config = Flow.default) name ~make ~eval_length =
  let ip = make () in
  let suite =
    Workloads.suite ~total_length:(Workloads.paper_short_length name) ~long:false name
  in
  let trained = Flow.train_on_ip ~config ip suite in
  let long = Workloads.long_for ~length:eval_length name in
  let report, result = Flow.evaluate_on_ip trained ip long in
  (trained, report, result)

let run_ablation_epsilon ~eval_length () =
  section "Ablation: merge tolerance epsilon (RAM)";
  let rows =
    Psm_par.parallel_map
      (fun epsilon ->
        let config =
          { Flow.default with
            merge = { Psm_core.Merge.default with epsilon } }
        in
        let trained, report, _ =
          ablation_flow ~config "RAM" ~make:Psm_ips.Ram.create ~eval_length
        in
        [ Printf.sprintf "%.2f" epsilon;
          string_of_int (Psm.state_count trained.Flow.optimized);
          string_of_int (Psm.transition_count trained.Flow.optimized);
          Report.percent report.Psm_hmm.Accuracy.mre ])
      [ 0.02; 0.05; 0.15; 0.30; 0.60 ]
  in
  print_string (Report.render_table ~header:[ "epsilon"; "States"; "Trans."; "MRE" ] rows)

let run_ablation_regression ~eval_length () =
  section "Ablation: data-dependent-state regression on/off (RAM, MultSum)";
  let cases =
    List.concat_map
      (fun (name, make) ->
        List.map
          (fun (label, sigma_threshold) -> (name, make, label, sigma_threshold))
          [ ("on (sigma/mu > 0.05)", 0.05); ("off", infinity) ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create) ]
  in
  let rows =
    Psm_par.parallel_map
      (fun (name, make, label, sigma_threshold) ->
        let config =
          { Flow.default with
            optimize = { Psm_core.Optimize.default with sigma_threshold } }
        in
        let _, report, _ = ablation_flow ~config name ~make ~eval_length in
        [ name; label; Report.percent report.Psm_hmm.Accuracy.mre ])
      cases
  in
  print_string (Report.render_table ~header:[ "IP"; "Regression"; "MRE" ] rows)

let run_ablation_scrubber ~eval_length () =
  section "Ablation: Camellia hidden-subcomponent scrubber";
  let rows =
    Psm_par.parallel_map
      (fun (label, make) ->
        let _, report, result =
          ablation_flow "Camellia" ~make ~eval_length
        in
        [ label; Report.percent report.Psm_hmm.Accuracy.mre;
          Report.percent result.Psm_hmm.Multi_sim.wsp ])
      [ ("on", Psm_ips.Camellia.create); ("off", Psm_ips.Camellia.create_without_scrubber) ]
  in
  print_string (Report.render_table ~header:[ "Scrubber"; "MRE"; "WSP" ] rows);
  Printf.printf
    "(Same mean hidden power in both rows; only the on-row has the\n\
    \ PI/PO-uncorrelated variance the paper blames for Camellia's MRE.)\n"

let run_ablation_resync ~eval_length () =
  section "Ablation: HMM resynchronization on/off (AES, encrypt-only training)";
  (* Deliberately incomplete training traces: every decrypt bit cleared, so
     decryption blocks in the evaluation workload are unknown behaviour
     (paper Sec. V: incomplete functional traces). *)
  let ip = Psm_ips.Aes.create () in
  let suite =
    Workloads.suite ~parts:4 ~total_length:12000 ~long:false "AES"
    |> List.map
         (Array.map (fun sample ->
              let sample = Array.copy sample in
              sample.(3) <- Psm_bits.Bits.zero 1;
              sample))
  in
  let trained = Flow.train_on_ip ip suite in
  let long = Workloads.long_for ~length:eval_length "AES" in
  let trace, reference = Psm_ips.Capture.run ip long in
  let rows =
    List.map
      (fun (label, resync_enabled) ->
        let config = { Psm_hmm.Multi_sim.default with resync_enabled } in
        let result = Psm_hmm.Multi_sim.simulate ~config trained.Flow.hmm trace in
        let report = Psm_hmm.Accuracy.of_result ~reference result in
        [ label; Report.percent report.Psm_hmm.Accuracy.mre;
          Report.percent result.Psm_hmm.Multi_sim.wsp;
          string_of_int result.Psm_hmm.Multi_sim.resync_events ])
      [ ("on", true); ("off", false) ]
  in
  print_string
    (Report.render_table ~header:[ "Resync"; "MRE"; "WSP"; "Resync events" ] rows)

let run_ablation_structural ~eval_length () =
  section "Ablation: reference power granularity (training on gate-level toggles)";
  let case ip_name label make =
    let trained, report, _ = ablation_flow ip_name ~make ~eval_length in
    let upgraded =
      List.exists (fun r -> r.Psm_core.Optimize.upgraded) trained.Flow.optimize_reports
    in
    [ ip_name; label; Report.percent report.Psm_hmm.Accuracy.mre;
      (if upgraded then "yes" else "no") ]
  in
  let rows =
    Psm_par.parallel_map
      (fun (ip_name, label, make) -> case ip_name label make)
      [ ("MultSum", "behavioural activity model", Psm_ips.Multsum.create);
        ("MultSum", "gate-level net toggles", Psm_ips.Multsum.create_structural);
        ("RAM", "behavioural activity model", Psm_ips.Ram.create);
        ("RAM", "gate-level net toggles", Psm_ips.Ram_gates.create) ]
  in
  print_string
    (Report.render_table ~header:[ "IP"; "Reference"; "MRE"; "Regression fired" ] rows);
  print_endline
    "(At gate granularity the multiplier array's value-dependent carry\n\
    \ activity dominates; the Hamming-distance regression cannot explain it\n\
    \ -- the same 'wider time window' limitation the paper reports for\n\
    \ MultSum, amplified.)"


let run_decoders ~eval_length () =
  section "Extension: online filtering vs offline Viterbi decoding";
  let rows =
    Psm_par.parallel_map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite =
          Workloads.suite ~total_length:(Workloads.paper_short_length name) ~long:false
            name
        in
        let trained = Flow.train_on_ip ip suite in
        let long = Workloads.long_for ~length:eval_length name in
        let trace, reference = Psm_ips.Capture.run ip long in
        let online, _ = Flow.evaluate trained trace ~reference in
        let offline = Psm_hmm.Offline.evaluate trained.Flow.hmm trace ~reference in
        [ name; Report.percent online.Psm_hmm.Accuracy.mre;
          Report.percent offline.Psm_hmm.Accuracy.mre ])
      [ ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table ~header:[ "IP"; "Online (causal) MRE"; "Viterbi (offline) MRE" ]
       rows)

let run_baselines ~eval_length () =
  section "Baselines: constant power and hand-written two-state PSM vs mined PSMs";
  let rows =
    Psm_par.parallel_map
      (fun (name, make, control) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite =
          Workloads.suite ~total_length:(Workloads.paper_short_length name) ~long:false
            name
        in
        let pairs = List.map (Psm_ips.Capture.run ip) suite in
        let constant = Psm_flow.Baselines.Constant.train (List.map snd pairs) in
        let two_state = Psm_flow.Baselines.Two_state.train ~control pairs in
        let trained =
          Flow.train ~traces:(List.map fst pairs) ~powers:(List.map snd pairs) ()
        in
        let long = Workloads.long_for ~length:eval_length name in
        let trace, reference = Psm_ips.Capture.run ip long in
        let c = Psm_flow.Baselines.Constant.evaluate constant ~reference in
        let t2 = Psm_flow.Baselines.Two_state.evaluate two_state trace ~reference in
        let mined, _ = Flow.evaluate trained trace ~reference in
        [ name; Report.percent c.Psm_hmm.Accuracy.mre;
          Report.percent t2.Psm_hmm.Accuracy.mre;
          Report.percent mined.Psm_hmm.Accuracy.mre ])
      [ ("RAM", Psm_ips.Ram.create, "ce"); ("MultSum", Psm_ips.Multsum.create, "en");
        ("AES", Psm_ips.Aes.create, "enable");
        ("Camellia", Psm_ips.Camellia.create, "enable") ]
  in
  print_string
    (Report.render_table
       ~header:[ "IP"; "Constant MRE"; "Two-state MRE"; "Mined PSMs MRE" ]
       rows)

let run_hierarchical ~eval_length () =
  section "Future work (paper Sec. VII): hierarchical PSMs on Camellia";
  let suite = Workloads.suite ~total_length:78004 ~long:false "Camellia" in
  let long = Workloads.long_for ~length:eval_length "Camellia" in
  let ip = Psm_ips.Camellia.create () in
  let flat = Flow.train_on_ip ip suite in
  let flat_report, _ = Flow.evaluate_on_ip flat ip long in
  let d = Psm_ips.Camellia.create_decomposed () in
  let hier = Psm_flow.Hier.train d suite in
  let hier_report = Psm_flow.Hier.evaluate hier d long in
  print_string
    (Report.render_table ~header:[ "Model"; "States"; "MRE" ]
       [ [ "flat PSMs (the paper's result)";
           string_of_int (Psm.state_count flat.Flow.optimized);
           Report.percent flat_report.Psm_hmm.Accuracy.mre ];
         [ "hierarchical PSMs (datapath + scrubber)";
           string_of_int (Psm_flow.Hier.total_states hier);
           Report.percent hier_report.Psm_hmm.Accuracy.mre ] ]);
  print_endline
    "(One PSM set per subcomponent, trained on that subcomponent's boundary\n\
    \ observations: the scrubber's utilization level, invisible at the top\n\
    \ level, is a plain mineable signal at its own boundary.)"

let run_ablations ~eval_length () =
  run_ablation_epsilon ~eval_length ();
  run_ablation_regression ~eval_length ();
  run_ablation_scrubber ~eval_length ();
  run_ablation_resync ~eval_length ();
  run_ablation_structural ~eval_length:(min eval_length 20_000) ();
  run_baselines ~eval_length ();
  run_decoders ~eval_length ();
  run_hierarchical ~eval_length ()

(* ---------- Ingestion throughput and memory ---------- *)

(* Filled by [run_ingest], folded into the --json report. *)
let ingest_metrics : (string * float) list ref = ref []

let run_ingest () =
  section "Ingestion: streaming VCD reader throughput and memory";
  (* Fixtures: the same RAM workload at two lengths, written to disk and
     the in-RAM capture dropped, so the parser is the only thing holding
     trace data. *)
  let fixture cycles =
    let ip = Psm_ips.Ram.create () in
    let stim = Workloads.ram_short ~length:cycles () in
    let trace, power = Psm_ips.Capture.run ip stim in
    let path = Filename.temp_file (Printf.sprintf "ingest%d" cycles) ".vcd" in
    Psm_trace.Vcd.write_file ~power path trace;
    path
  in
  let small_cycles = 10_000 and large_cycles = 100_000 in
  let small_path = fixture small_cycles in
  let large_path = fixture large_cycles in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove small_path;
      Sys.remove large_path)
  @@ fun () ->
  Gc.compact ();
  (* Throughput: channel-streamed full parse of the 100k-cycle fixture. *)
  let t0 = Unix.gettimeofday () in
  let parsed = Psm_trace.Vcd.parse_file large_path in
  let parse_s = Unix.gettimeofday () -. t0 in
  let bytes = parsed.Psm_trace.Vcd.stats.Psm_trace.Reader.bytes in
  let mib = float_of_int bytes /. (1024. *. 1024.) in
  let mb_s = mib /. parse_s in
  assert (Psm_trace.Functional_trace.length parsed.Psm_trace.Vcd.trace = large_cycles);
  Printf.printf "parse_file %d cycles: %.2f MiB in %.3f s = %.1f MiB/s\n" large_cycles
    mib parse_s mb_s;
  (* The run structure is built incrementally by the reader's trace
     builder, so it is already materialized here — no extra pass. *)
  let runs = Psm_trace.Functional_trace.runs parsed.Psm_trace.Vcd.trace in
  Printf.printf "run structure: %d run(s), compression %.4f (mean run %.2f)\n"
    (Psm_trace.Runs.count runs)
    (Psm_trace.Runs.compression runs)
    (Psm_trace.Runs.mean_run runs);
  (* Parallel in-memory parse: same result, chunked across the pool. *)
  let text =
    let ic = open_in large_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let t0 = Unix.gettimeofday () in
  let par = Psm_trace.Vcd.parse ~parallel:true text in
  let par_s = Unix.gettimeofday () -. t0 in
  let par_mb_s = mib /. par_s in
  assert (
    Psm_trace.Functional_trace.equal parsed.Psm_trace.Vcd.trace
      par.Psm_trace.Vcd.trace);
  Printf.printf "parse ~parallel:true (%d jobs): %.3f s = %.1f MiB/s\n"
    (Psm_par.effective_jobs ()) par_s par_mb_s;
  (* Memory: peak live heap while push-streaming (nothing retained by the
     consumer), sampled every 16k samples. Constant-memory ingestion
     means the peak is independent of the trace length. *)
  let peak_live path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    Gc.compact ();
    let peak = ref 0 and count = ref 0 in
    let sample ~time:_ _values ~power:_ =
      incr count;
      if !count land 0x7FF = 0 then begin
        let live = (Gc.stat ()).Gc.live_words in
        if live > !peak then peak := live
      end
    in
    let stats =
      Psm_trace.Vcd.stream (Psm_trace.Reader.of_channel ic) ~init:(fun _ -> ()) ~sample
    in
    ignore stats;
    max !peak 1
  in
  let small_peak = peak_live small_path in
  let large_peak = peak_live large_path in
  let ratio = float_of_int large_peak /. float_of_int small_peak in
  Printf.printf
    "stream peak live heap: %d words at %d cycles, %d words at %d cycles (x%.2f)\n"
    small_peak small_cycles large_peak large_cycles ratio;
  ingest_metrics :=
    [ ("vcd_bytes", float_of_int bytes);
      ("cycles", float_of_int large_cycles);
      ("parse_file_seconds", parse_s);
      ("parse_file_mib_per_s", mb_s);
      ("parallel_parse_seconds", par_s);
      ("parallel_parse_mib_per_s", par_mb_s);
      ("stream_peak_live_words_10k", float_of_int small_peak);
      ("stream_peak_live_words_100k", float_of_int large_peak);
      ("stream_peak_ratio_100k_vs_10k", ratio);
      ("run_compression", Psm_trace.Runs.compression runs);
      ("mean_run_length", Psm_trace.Runs.mean_run runs) ]

(* ---------- Static analyzer throughput ---------- *)

(* Filled by [run_analyze], folded into the --json report. *)
let analyze_metrics : (string * float) list ref = ref []

let run_analyze () =
  section "Static analysis: full-context lint of the trained models";
  (* Reset: stages re-run for the --json jobs=1 baseline, and stale
     entries would otherwise duplicate keys in the report (the BENCH_5
     bug: a second silenced run polluting the metric block). *)
  analyze_metrics := [];
  let repeats = 10 in
  let rows =
    List.map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite = Workloads.suite ~total_length:12_000 ~long:false name in
        let trained = Flow.train_on_ip ip suite in
        (* Full-context lint: PSM + HMM + the training gammas and powers,
           re-deriving the proposition traces each run, exactly what the
           flow pays at the end of [train]. *)
        let findings = ref trained.Flow.analysis in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to repeats do
          findings := Flow.lint trained
        done;
        let seconds = (Unix.gettimeofday () -. t0) /. float_of_int repeats in
        analyze_metrics :=
          (name ^ "_lint_seconds", seconds)
          :: (name ^ "_findings", float_of_int (List.length !findings))
          :: ( name ^ "_errors",
               float_of_int (List.length (Psm_analysis.Finding.errors !findings)) )
          :: !analyze_metrics;
        [ name;
          string_of_int (Psm.state_count trained.Flow.optimized);
          string_of_int (Psm.transition_count trained.Flow.optimized);
          Psm_analysis.Report.summary !findings;
          Printf.sprintf "%.2f" (seconds *. 1000.) ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
        ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table
       ~header:[ "IP"; "States"; "Trans."; "Findings"; "Lint ms/run" ]
       rows);
  print_endline
    "(No row may report errors: the mined models pass their own static\n\
    \ analysis. Warnings are legitimate -- join-induced guard overlaps the\n\
    \ HMM resolves probabilistically -- and the time is one full-context\n\
    \ analyzer pass, proposition-trace re-derivation included.)"

(* ---------- Symbolic verification ---------- *)

let verify_metrics : (string * float) list ref = ref []

let run_verify () =
  section "Symbolic verification: static proofs over the trained models";
  verify_metrics := [];
  let repeats = 5 in
  let rows =
    List.map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite = Workloads.suite ~total_length:12_000 ~long:false name in
        let trained = Flow.train_on_ip ip suite in
        let report = ref (Flow.verify trained) in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to repeats do
          report := Flow.verify trained
        done;
        let seconds = (Unix.gettimeofday () -. t0) /. float_of_int repeats in
        let r = !report in
        let stats = r.Psm_verify.Verify.stats in
        let errors = List.length (Psm_verify.Verify.errors r) in
        verify_metrics :=
          (name ^ "_verify_seconds", seconds)
          :: ( name ^ "_disjoint_proofs",
               float_of_int stats.Psm_verify.Verify.disjoint_pairs_proved )
          :: (name ^ "_static_errors", float_of_int errors)
          :: ( name ^ "_coverage_gaps",
               float_of_int stats.Psm_verify.Verify.coverage_gaps )
          :: !verify_metrics;
        [ name;
          string_of_int stats.Psm_verify.Verify.propositions;
          string_of_int stats.Psm_verify.Verify.disjoint_pairs_proved;
          string_of_int stats.Psm_verify.Verify.coverage_gaps;
          string_of_int errors;
          Printf.sprintf "%.2f" (seconds *. 1000.) ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
        ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table
       ~header:[ "IP"; "Props"; "Disjoint proofs"; "Gaps"; "Errors"; "Verify ms/run" ]
       rows);
  print_endline
    "(Exact decision procedure over the atom theory: pairwise proposition\n\
    \ disjointness, guard feasibility, input-space coverage and vacuity.\n\
    \ No mined model may carry an Error-severity refutation.)"

(* The trained models must stay statically clean and the whole symbolic
   pass must stay interactive: a verification that takes seconds per
   model would be dropped from the training flow. *)
let gate_verify ~verify =
  let get ip key =
    match List.assoc_opt (ip ^ key) verify with
    | Some v -> v
    | None ->
        Printf.eprintf "FAIL: verify gate: metric %s%s missing\n" ip key;
        exit 1
  in
  List.iter
    (fun ip ->
      let seconds = get ip "_verify_seconds" in
      let errors = get ip "_static_errors" in
      let proofs = get ip "_disjoint_proofs" in
      if seconds > 2.0 then begin
        Printf.eprintf "FAIL: %s Verify.run took %.3f s (budget 2.0 s)\n" ip
          seconds;
        exit 1
      end;
      if errors > 0. then begin
        Printf.eprintf "FAIL: %s carries %.0f Error-severity static findings\n"
          ip errors;
        exit 1
      end;
      if proofs < 1. then begin
        Printf.eprintf "FAIL: %s proved no disjointness pairs\n" ip;
        exit 1
      end;
      Printf.printf
        "verify gate: %s ok (%.1f ms, %.0f disjointness proofs, 0 errors)\n" ip
        (seconds *. 1000.) proofs)
    [ "RAM"; "MultSum"; "AES"; "Camellia" ]

(* ---------- Kernel and analyzer evaluation ---------- *)

(* Filled by [run_evaluate], folded into the --json report. *)
let evaluate_metrics : (string * float) list ref = ref []

(* PR 4's measured Camellia flow.analyze span (BENCH_4.json): the gate
   below requires at least a 2x speedup over it. *)
let bench4_camellia_analyze_s = 7.892218
let required_analyze_speedup = 2.0

let with_jobs jobs f =
  let saved = Psm_par.default_jobs () in
  Psm_par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Psm_par.set_jobs saved) f

let run_evaluate ~eval_length () =
  section "Evaluate: sparse kernels and the parallel analyzer vs their baselines";
  evaluate_metrics := [];
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Kernel A/B timings are tens of milliseconds — take the best of
     three so the gates below compare kernels, not GC luck. *)
  let time3 f =
    let r, d1 = time f in
    let _, d2 = time f in
    let _, d3 = time f in
    (r, Float.min d1 (Float.min d2 d3))
  in
  let module Filtering = Psm_hmm.Filtering in
  let module Offline = Psm_hmm.Offline in
  let module Multi_sim = Psm_hmm.Multi_sim in
  let camellia_analyze = ref infinity in
  let rows =
    List.map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite =
          Workloads.suite ~total_length:(Workloads.paper_short_length name) ~long:false
            name
        in
        let trained = Flow.train_on_ip ip suite in
        let hmm = trained.Flow.hmm in
        let table = trained.Flow.table in
        let long = Workloads.long_for ~length:eval_length name in
        let trace, _reference = Psm_ips.Capture.run ip long in
        let obs =
          Array.init (Psm_trace.Functional_trace.length trace) (fun time ->
              Table.classify table (Psm_trace.Functional_trace.sample trace ~time))
        in
        (* Forward filtering: dense reference vs the CSR scatter kernel.
           Both paths are bit-identical, so the equality check is exact. *)
        let dense_f = Filtering.create ~kernel:`Dense hmm in
        let sparse_f = Filtering.create ~kernel:`Sparse hmm in
        let ll_dense, fwd_dense_s =
          time3 (fun () -> Filtering.log_likelihood dense_f obs)
        in
        let ll_sparse, fwd_sparse_s =
          time3 (fun () -> Filtering.log_likelihood sparse_f obs)
        in
        if ll_dense <> ll_sparse then begin
          Printf.eprintf "FAIL: %s sparse forward log-lik %.17g <> dense %.17g\n" name
            ll_sparse ll_dense;
          exit 1
        end;
        (* Viterbi: dense two-loop max vs CSC incoming-edge scan, plus
           what the cost model actually picks — the gate below compares
           [`Auto] against dense. *)
        let path_dense, vit_dense_s =
          time3 (fun () -> Offline.viterbi ~kernel:`Dense hmm obs)
        in
        let path_sparse, vit_sparse_s =
          time3 (fun () -> Offline.viterbi ~kernel:`Sparse hmm obs)
        in
        let path_auto, vit_auto_s = time3 (fun () -> Offline.viterbi hmm obs) in
        if path_dense <> path_sparse || path_dense <> path_auto then begin
          Printf.eprintf "FAIL: %s sparse/auto viterbi path diverges from dense\n" name;
          exit 1
        end;
        (* Multi-sim: indexed successor tables vs the reference stepper. *)
        let r_ref, sim_ref_s =
          time3 (fun () -> Multi_sim.simulate ~reference:true hmm trace)
        in
        let r_idx, sim_idx_s =
          time3 (fun () -> Multi_sim.simulate ~reference:false hmm trace)
        in
        if r_ref.Multi_sim.estimate <> r_idx.Multi_sim.estimate
           || r_ref.Multi_sim.wrong_instants <> r_idx.Multi_sim.wrong_instants
        then begin
          Printf.eprintf "FAIL: %s indexed multi-sim diverges from reference\n" name;
          exit 1
        end;
        (* Full-context analyzer: the Psm_par fan-out vs a one-job pool.
           The reports must be byte-identical. *)
        let gammas =
          Array.map (Psm_mining.Prop_trace.of_functional table) trained.Flow.traces
        in
        let analyze () =
          Psm_analysis.Analyzer.analyze ~hmm ~gammas ~powers:trained.Flow.powers
            trained.Flow.optimized
        in
        let seq_findings, lint_seq_s = with_jobs 1 (fun () -> time analyze) in
        let par_findings, lint_par_s = time analyze in
        if Psm_analysis.Report.json seq_findings <> Psm_analysis.Report.json par_findings
        then begin
          Printf.eprintf "FAIL: %s parallel analyzer report differs from jobs=1\n" name;
          exit 1
        end;
        (* The train-time flow.analyze span is what BENCH_4 recorded, so
           it is the apples-to-apples number for the speedup gate. *)
        let analyze_s = trained.Flow.timings.Flow.analyze_s in
        if name = "Camellia" then camellia_analyze := analyze_s;
        evaluate_metrics :=
          !evaluate_metrics
          @ [ (name ^ "_forward_dense_seconds", fwd_dense_s);
              (name ^ "_forward_sparse_seconds", fwd_sparse_s);
              (name ^ "_viterbi_dense_seconds", vit_dense_s);
              (name ^ "_viterbi_sparse_seconds", vit_sparse_s);
              (name ^ "_viterbi_auto_seconds", vit_auto_s);
              (name ^ "_multisim_reference_seconds", sim_ref_s);
              (name ^ "_multisim_indexed_seconds", sim_idx_s);
              (name ^ "_lint_jobs1_seconds", lint_seq_s);
              (name ^ "_lint_parallel_seconds", lint_par_s);
              (name ^ "_train_analyze_seconds", analyze_s) ];
        let ratio num den = if den > 0. then num /. den else 0. in
        [ name;
          Printf.sprintf "%.2fx" (ratio fwd_dense_s fwd_sparse_s);
          Printf.sprintf "%.2fx" (ratio vit_dense_s vit_sparse_s);
          Printf.sprintf "%.2fx" (ratio sim_ref_s sim_idx_s);
          Printf.sprintf "%.2fx" (ratio lint_seq_s lint_par_s);
          Printf.sprintf "%.3f" analyze_s ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
        ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table
       ~header:
         [ "IP"; "fwd dense/sparse"; "vit dense/sparse"; "sim ref/idx";
           "lint 1j/par"; "train lint s" ]
       rows);
  print_endline
    "(Every ratio compares the retired reference path against the kernel\n\
    \ that replaced it, on identical inputs with identical outputs -- the\n\
    \ equality checks above are exact, not approximate.)";
  (* The acceptance gate: Camellia's train-time analyze span must beat the
     PR 4 measurement by the required factor. *)
  let budget = bench4_camellia_analyze_s /. required_analyze_speedup in
  let speedup =
    if !camellia_analyze > 0. then bench4_camellia_analyze_s /. !camellia_analyze else 0.
  in
  evaluate_metrics :=
    !evaluate_metrics
    @ [ ("camellia_analyze_budget_seconds", budget);
        ("camellia_analyze_speedup_vs_bench4", speedup) ];
  Printf.printf "Camellia flow.analyze: %.3f s (BENCH_4: %.3f s, %.0fx; budget %.3f s)\n"
    !camellia_analyze bench4_camellia_analyze_s speedup budget;
  if !camellia_analyze > budget then begin
    Printf.eprintf
      "FAIL: Camellia flow.analyze %.3f s misses the %.1fx speedup gate over \
       BENCH_4's %.3f s\n"
      !camellia_analyze required_analyze_speedup bench4_camellia_analyze_s;
    exit 1
  end

(* ---------- Observability profile ---------- *)

(* Filled by [run_profile], folded into the --json report. *)
let profile_metrics : (string * float) list ref = ref []

let phase_total summary name =
  match List.assoc_opt name summary.Psm_obs.span_stats with
  | Some s -> s.Psm_obs.total_s
  | None -> 0.

let run_profile () =
  section "Profile: observability per-phase breakdown (paper IPs)";
  (* Cost of one instrumentation hit on the disabled sink: one atomic
     load and a branch. Measured directly so the overhead assertion below
     is deterministic instead of a noisy A/B wall-clock diff. *)
  Psm_obs.disable ();
  let guard_hits = 5_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to guard_hits do
    Psm_obs.span "bench.guard" (fun () -> ())
  done;
  let guard_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int guard_hits in
  Printf.printf "disabled sink: %.1f ns per instrumentation hit\n" guard_ns;
  profile_metrics := [ ("disabled_guard_ns_per_hit", guard_ns) ];
  let overheads = ref [] in
  let rows =
    List.map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite =
          Workloads.suite ~total_length:(Workloads.paper_short_length name)
            ~long:false name
        in
        (* Baseline: the instrumented build with the sink disabled (the
           default state every other bench stage runs in). *)
        let t0 = Unix.gettimeofday () in
        ignore (Flow.train_on_ip ip suite);
        let disabled_s = Unix.gettimeofday () -. t0 in
        (* The same training with the recording sink on. *)
        let summary, enabled_s =
          Psm_obs.enable ();
          Psm_obs.reset ();
          Fun.protect ~finally:Psm_obs.disable (fun () ->
              let t0 = Unix.gettimeofday () in
              ignore (Flow.train_on_ip ip suite);
              (Psm_obs.snapshot (), Unix.gettimeofday () -. t0))
        in
        let events = List.length summary.Psm_obs.events in
        (* Instrumentation hits the disabled sink would have paid for:
           one per span plus one per counter bump ([hmm.rows_normalized]
           increments by one per call; the remaining counters are bumped
           once per phase, approximated by one hit per counter name). *)
        let rows_normalized =
          Option.value ~default:0.
            (List.assoc_opt "hmm.rows_normalized" summary.Psm_obs.counters)
        in
        let hits =
          float_of_int events +. rows_normalized
          +. float_of_int (List.length summary.Psm_obs.counters)
        in
        let overhead_pct = 100. *. (hits *. guard_ns *. 1e-9) /. disabled_s in
        overheads := (name, overhead_pct) :: !overheads;
        let mine_s = phase_total summary "flow.mine" in
        let generate_s = phase_total summary "flow.generate" in
        let combine_s = phase_total summary "flow.combine" in
        let analyze_s = phase_total summary "flow.analyze" in
        profile_metrics :=
          !profile_metrics
          @ [ (name ^ "_disabled_train_seconds", disabled_s);
              (name ^ "_enabled_train_seconds", enabled_s);
              (name ^ "_mine_seconds", mine_s);
              (name ^ "_generate_seconds", generate_s);
              (name ^ "_combine_seconds", combine_s);
              (name ^ "_analyze_seconds", analyze_s);
              (name ^ "_hmm_build_seconds", phase_total summary "hmm.build");
              (name ^ "_span_events", float_of_int events);
              ( name ^ "_span_names",
                float_of_int (List.length summary.Psm_obs.span_stats) );
              (name ^ "_instrumentation_hits", hits);
              (name ^ "_disabled_overhead_pct", overhead_pct) ]
        ;
        [ name;
          Printf.sprintf "%.3f" mine_s;
          Printf.sprintf "%.3f" generate_s;
          Printf.sprintf "%.3f" combine_s;
          Printf.sprintf "%.3f" analyze_s;
          string_of_int events;
          Printf.sprintf "%.4f%%" overhead_pct ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
        ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table
       ~header:[ "IP"; "mine s"; "gen s"; "comb s"; "lint s"; "Spans"; "Disabled ovh" ]
       rows);
  print_endline
    "(Disabled ovh = instrumentation hits x measured disabled-guard cost,\n\
    \ relative to the uninstrumented-equivalent training time; the sink is\n\
    \ off by default, so this is what every non-profiled run pays.)";
  (* The acceptance gate: the disabled sink must stay under 1%. *)
  List.iter
    (fun (name, pct) ->
      if pct > 1.0 then begin
        Printf.eprintf
          "FAIL: disabled-sink overhead on %s is %.4f%% (budget: 1%%)\n" name pct;
        exit 1
      end)
    !overheads

(* ---------- Streaming trainer ---------- *)

(* Filled by [run_stream], folded into the --json report. *)
let stream_metrics : (string * float) list ref = ref []

let stream_iface =
  Psm_trace.Interface.create
    [ Psm_trace.Signal.input "mode" 2;
      Psm_trace.Signal.input "req" 1;
      Psm_trace.Signal.output "busy" 1 ]

(* A deterministic cyclic workload: six behaviors revisited with a fixed
   dwell, so the model stays constant while the trace length grows — the
   shape under which O(model) live memory is observable, and (at the
   default 64-cycle dwell) ~98.4% self-loop instants, the shape the
   run-length-compacted pipeline paths exploit. *)
let stream_workload ?(dwell = 64) len =
  let open Psm_bits in
  let samples =
    Array.init len (fun _ -> [| Bits.zero 2; Bits.zero 1; Bits.zero 1 |])
  in
  let powers = Array.make len 0. in
  let behaviors = [| (0, 0); (1, 1); (3, 0); (2, 1); (0, 1); (3, 1) |] in
  for i = 0 to len - 1 do
    let mode, req = behaviors.((i / dwell) mod Array.length behaviors) in
    let busy = if mode >= 2 then 1 else req in
    samples.(i) <-
      [| Bits.of_int ~width:2 mode; Bits.of_int ~width:1 req;
         Bits.of_int ~width:1 busy |];
    powers.(i) <-
      float_of_int ((mode * 7) + (busy * 3) + 2) +. (0.05 *. float_of_int (i mod 5))
  done;
  ( Psm_trace.Functional_trace.of_samples stream_iface samples,
    Psm_trace.Power_trace.of_array powers )

let write_stream_vcd path len =
  let trace, power = stream_workload len in
  Psm_trace.Vcd.write_file ~power path trace

(* Peak live major heap during [f], sampled at the end of every major
   collection (post-sweep, so floating garbage is excluded). *)
let with_peak_live f =
  Gc.full_major ();
  let peak = ref (Gc.quick_stat ()).Gc.live_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let live = (Gc.quick_stat ()).Gc.live_words in
        if live > !peak then peak := live)
  in
  let result =
    Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) f
  in
  Gc.full_major ();
  let live = (Gc.quick_stat ()).Gc.live_words in
  if live > !peak then peak := live;
  (result, !peak)

let run_stream () =
  section "Streaming trainer: throughput and live-heap bound";
  let measure len =
    let path = Filename.temp_file "psm-stream-bench" ".vcd" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        write_stream_vcd path len;
        let (result, seconds), peak =
          with_peak_live (fun () ->
              let t0 = Unix.gettimeofday () in
              let r =
                Psm_flow.Stream_train.train_stream ~period:1
                  ~provenance:`Counts [ path ]
              in
              (r, Unix.gettimeofday () -. t0))
        in
        (* Sanity: the streamed model must equal the batch model on the
           same file (the full structural check lives in the test suite;
           state/transition counts catch a divergent bench immediately). *)
        let batch, _ = Flow.train_on_vcd_files ~period:1 [ path ] in
        let bp = batch.Flow.optimized
        and sp = result.Psm_flow.Stream_train.optimized in
        if
          Psm.state_count bp <> Psm.state_count sp
          || Psm.transition_count bp <> Psm.transition_count sp
        then begin
          Printf.eprintf
            "FAIL: streamed model (%d states, %d transitions) diverges from \
             batch (%d states, %d transitions) at %d cycles\n"
            (Psm.state_count sp) (Psm.transition_count sp) (Psm.state_count bp)
            (Psm.transition_count bp) len;
          exit 1
        end;
        (* The per-cycle reference path on the same file: its wall clock
           against [seconds] is the RLE speedup, and its model must be
           identical (the full structural check lives in the test suite). *)
        let t0 = Unix.gettimeofday () in
        let reference =
          Psm_trace.Runs.with_enabled false (fun () ->
              Psm_flow.Stream_train.train_stream ~period:1 ~provenance:`Counts
                [ path ])
        in
        let ref_seconds = Unix.gettimeofday () -. t0 in
        let rp = reference.Psm_flow.Stream_train.optimized in
        if
          Psm.state_count rp <> Psm.state_count sp
          || Psm.transition_count rp <> Psm.transition_count sp
        then begin
          Printf.eprintf
            "FAIL: RLE streamed model (%d states, %d transitions) diverges \
             from the per-cycle reference (%d states, %d transitions) at %d \
             cycles\n"
            (Psm.state_count sp) (Psm.transition_count sp) (Psm.state_count rp)
            (Psm.transition_count rp) len;
          exit 1
        end;
        (result, seconds, ref_seconds, peak))
  in
  let rows =
    List.map
      (fun len ->
        let result, seconds, ref_seconds, peak = measure len in
        let cycles = result.Psm_flow.Stream_train.cycles in
        let rate = if seconds > 0. then float_of_int cycles /. seconds else 0. in
        let compression =
          let trace, _ = stream_workload len in
          Psm_trace.Runs.compression (Psm_trace.Functional_trace.runs trace)
        in
        let speedup = if seconds > 0. then ref_seconds /. seconds else 0. in
        let tag = Printf.sprintf "stream_%dk" (len / 1000) in
        stream_metrics :=
          !stream_metrics
          @ [ (tag ^ "_train_seconds", seconds);
              (tag ^ "_cycles_per_s", rate);
              (tag ^ "_peak_live_words", float_of_int peak);
              ( tag ^ "_compactions",
                float_of_int result.Psm_flow.Stream_train.compactions );
              (tag ^ "_run_compression", compression);
              (tag ^ "_percycle_train_seconds", ref_seconds);
              (tag ^ "_rle_speedup", speedup) ];
        [ string_of_int len;
          string_of_int cycles;
          Printf.sprintf "%.3f" seconds;
          Printf.sprintf "%.0f" rate;
          string_of_int result.Psm_flow.Stream_train.compactions;
          string_of_int peak;
          string_of_int
            (Psm.state_count result.Psm_flow.Stream_train.optimized);
          Printf.sprintf "%.4f" compression;
          Printf.sprintf "%.2fx" speedup ])
      [ 10_000; 100_000 ]
  in
  print_string
    (Report.render_table
       ~header:
         [ "VCD cycles"; "trained"; "train s"; "cycles/s"; "compactions";
           "peak live words"; "states"; "run compression"; "rle speedup" ]
       rows);
  print_endline
    "(peak live words = live major heap sampled at every major-GC end while\n\
    \ streaming with [`Counts] provenance, which keeps sufficient statistics\n\
    \ instead of per-occurrence intervals/components; the 10k and 100k\n\
    \ workloads build the same model, so the ratio between the two peaks is\n\
    \ the live-memory-vs-trace-length bound.)"

(* The acceptance gate: streaming a 10x longer trace of the same cyclic
   workload must not grow the peak live major heap by more than 10%. *)
let gate_stream_heap ~stream =
  match
    ( List.assoc_opt "stream_10k_peak_live_words" stream,
      List.assoc_opt "stream_100k_peak_live_words" stream )
  with
  | Some small, Some big when small > 0. ->
      let ratio = big /. small in
      Printf.printf "[gate] stream live-heap 100k/10k: %.3fx (ceiling 1.10x)\n"
        ratio;
      if ratio > 1.10 then begin
        Printf.eprintf
          "FAIL: streaming live heap grew %.3fx from 10k to 100k cycles \
           (budget 1.10x)\n"
          ratio;
        exit 1
      end
  | _ ->
      Printf.eprintf "FAIL: --gate requires the stream stage\n";
      exit 1

(* ---------- Run-length compaction: RLE paths vs per-cycle ---------- *)

let compress_metrics : (string * float) list ref = ref []

(* Worst case for the compacted paths: every adjacent sample pair
   differs, so every run has length one and the RLE branches buy
   nothing — they must not cost anything either. *)
let distinct_workload len =
  let open Psm_bits in
  let samples =
    Array.init len (fun i ->
        [| Bits.of_int ~width:2 (i mod 4);
           Bits.of_int ~width:1 (i / 4 mod 2);
           Bits.of_int ~width:1 (i mod 2) |])
  in
  let powers = Array.init len (fun i -> 2. +. float_of_int (i mod 5)) in
  ( Psm_trace.Functional_trace.of_samples stream_iface samples,
    Psm_trace.Power_trace.of_array powers )

let run_compress () =
  section "Run-length compaction: RLE pipeline vs per-cycle reference";
  (* Best-of-3 full [Flow.train] under each toggle; the two trained
     models must agree exactly — the timing comparison is meaningless if
     the fast path computes something else. *)
  let time_train ~enabled ~traces ~powers =
    let result = ref None and best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r =
        Psm_trace.Runs.with_enabled enabled (fun () ->
            Flow.train ~traces ~powers ())
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let check_identical tag (a : Flow.trained) (b : Flow.trained) =
    if
      Psm.state_count a.Flow.optimized <> Psm.state_count b.Flow.optimized
      || Psm.transition_count a.Flow.optimized
         <> Psm.transition_count b.Flow.optimized
      || a.Flow.transition_counts <> b.Flow.transition_counts
      || a.Flow.emission_counts <> b.Flow.emission_counts
    then begin
      Printf.eprintf
        "FAIL: %s workload: the RLE pipeline and the per-cycle reference \
         trained different models\n"
        tag;
      exit 1
    end
  in
  let measure tag (trace, power) =
    let traces = [ trace ] and powers = [ power ] in
    let compression =
      Psm_trace.Runs.compression (Psm_trace.Functional_trace.runs trace)
    in
    let rle, rle_s = time_train ~enabled:true ~traces ~powers in
    let reference, ref_s = time_train ~enabled:false ~traces ~powers in
    check_identical tag rle reference;
    let speedup = if rle_s > 0. then ref_s /. rle_s else 0. in
    Printf.printf
      "%s: compression %.4f, train %.3f s (RLE) vs %.3f s (per-cycle) = \
       %.2fx\n"
      tag compression rle_s ref_s speedup;
    compress_metrics :=
      !compress_metrics
      @ [ (tag ^ "_run_compression", compression);
          (tag ^ "_train_rle_seconds", rle_s);
          (tag ^ "_train_percycle_seconds", ref_s);
          (tag ^ "_rle_speedup", speedup) ];
    speedup
  in
  (* 60k cycles at 64-cycle dwell: ~98.4% self-loop instants. *)
  ignore (measure "idle" (stream_workload 60_000));
  ignore (measure "distinct" (distinct_workload 8_000));
  (* Per-IP run-compression ratios on the paper's short-TS suites: what
     the compacted paths have to work with on the bundled benchmarks. *)
  let rows =
    List.map
      (fun (name, make) ->
        let ip : Psm_ips.Ip.t = make () in
        let suite =
          Workloads.suite ~total_length:(Workloads.paper_short_length name)
            ~long:false name
        in
        let pairs = List.map (Psm_ips.Capture.run ip) suite in
        let cycles, runs =
          List.fold_left
            (fun (c, r) (trace, _) ->
              let rs = Psm_trace.Functional_trace.runs trace in
              (c + Psm_trace.Runs.total rs, r + Psm_trace.Runs.count rs))
            (0, 0) pairs
        in
        let ratio =
          if cycles = 0 then 1. else float_of_int runs /. float_of_int cycles
        in
        compress_metrics :=
          !compress_metrics
          @ [ (String.lowercase_ascii name ^ "_run_compression", ratio) ];
        [ name; string_of_int cycles; string_of_int runs;
          Printf.sprintf "%.4f" ratio ])
      [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
        ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
  in
  print_string
    (Report.render_table
       ~header:[ "IP"; "cycles"; "runs"; "compression" ]
       rows)

(* The acceptance gates: the RLE pipeline must win clearly where there
   are runs to exploit, and must not lose measurably where there are
   none (every run has length one, the worst case). *)
let gate_compress ~compress =
  match
    ( List.assoc_opt "idle_rle_speedup" compress,
      List.assoc_opt "distinct_rle_speedup" compress )
  with
  | Some idle, Some distinct ->
      Printf.printf
        "[gate] rle speedup: idle %.2fx (floor 1.30x), all-distinct %.2fx \
         (floor 0.95x)\n"
        idle distinct;
      if idle < 1.30 then begin
        Printf.eprintf
          "FAIL: RLE speedup on the idle-heavy workload is %.2fx (floor \
           1.30x)\n"
          idle;
        exit 1
      end;
      if distinct < 0.95 then begin
        Printf.eprintf
          "FAIL: RLE slowdown on the all-distinct workload: %.2fx (floor \
           0.95x)\n"
          distinct;
        exit 1
      end
  | _ ->
      Printf.eprintf "FAIL: --gate requires the compress stage\n";
      exit 1

(* ---------- Serve: concurrent sessions, batched sparse sweeps ---------- *)

let serve_metrics : (string * float) list ref = ref []

module Serve_engine = Psm_serve.Engine

(* Thousands of in-process estimation sessions against the serve engine:
   the batched scheduler (sharded sparse sweeps per model x mode group
   per tick) against the per-session reference loop on identical inputs.
   Two phases. The timed phase runs 1024 filter sessions over a stress
   model trained from a synthetic power-mode VCD — wide enough (100+ HMM
   states) that the forward kernel, not session bookkeeping, is what the
   clock sees; observations are pre-queued so the measured region is
   exactly ticks. The identity phase replays real IP models in both modes
   and demands bit-identical output three ways — batched, loop, and
   offline single-trace inference. *)
let run_serve () =
  section "Serve: concurrent sessions, batched sparse sweeps";
  let sid s = Printf.sprintf "s%04d" s in
  let mk_plan ~rng ~nprops ~cycles =
    Array.init cycles (fun _ ->
        if nprops = 0 || Random.State.int rng 8 = 0 then None
        else Some (Random.State.int rng nprops))
  in
  (* Offline reference for one session's trace, used by both phases. *)
  let offline_expected (model : Psm_flow.Persist.model) mode obs =
    let hmm = model.Psm_flow.Persist.hmm in
    match mode with
    | `Filter ->
        let filt = Psm_hmm.Filtering.create hmm in
        let rows = Psm_hmm.Filtering.map_states filt obs in
        let posts = Psm_hmm.Filtering.posteriors filt obs in
        let outputs =
          Array.init (Array.length posts.(0)) (fun row ->
              (Psm.state model.Psm_flow.Persist.psm
                 (Psm_hmm.Hmm.state_of_row hmm row))
                .Psm.output)
        in
        Array.init (Array.length obs) (fun t ->
            let acc = ref 0. in
            Array.iteri
              (fun row p ->
                if p > 0. then
                  acc := !acc +. (p *. Psm.eval_output outputs.(row) ~hamming:0.))
              posts.(t);
            (!acc, Psm_hmm.Hmm.state_of_row hmm rows.(t)))
    | `Sim ->
        let stepper = Psm_hmm.Multi_sim.Stepper.create (Psm_hmm.Hmm.copy hmm) in
        Array.map
          (fun o ->
            Psm_hmm.Multi_sim.Stepper.step_classified stepper ~hamming:0. o)
          obs
  in
  let check_pair ~what s t (pa, sa) (pb, sb) =
    if sa <> sb || Float.compare pa pb <> 0 then begin
      Printf.eprintf
        "FAIL: serve %s divergence at session %d cycle %d (%.17g/s%d vs \
         %.17g/s%d)\n"
        what s t pa sa pb sb;
      exit 1
    end
  in
  (* ----- timed phase: the stress model ----- *)
  (* A synthetic IP with 160 power behaviours selected by an 8-bit mode
     register, 48-cycle dwell and exponentially spread power levels —
     mined into a PSM/HMM of 100+ states, the scale where batching the
     forward sweeps is worth a daemon. *)
  let stress_model () =
    let open Psm_bits in
    let iface =
      Psm_trace.Interface.create
        [ Psm_trace.Signal.input "mode" 8;
          Psm_trace.Signal.input "req" 1;
          Psm_trace.Signal.output "busy" 1 ]
    in
    let nbehaviors = 160 and dwell = 48 in
    let len = nbehaviors * dwell * 4 in
    let samples = Array.make len [||] in
    let powers = Array.make len 0. in
    for i = 0 to len - 1 do
      let b = i / dwell mod nbehaviors in
      let req = b land 1 in
      let busy = if b mod 3 = 0 then 1 else req in
      samples.(i) <-
        [| Bits.of_int ~width:8 b;
           Bits.of_int ~width:1 req;
           Bits.of_int ~width:1 busy |];
      powers.(i) <- (1.18 ** float_of_int b) *. (2. +. (0.3 *. float_of_int busy))
    done;
    let trace = Psm_trace.Functional_trace.of_samples iface samples in
    let path = Filename.temp_file "psm-serve-bench" ".vcd" in
    Psm_trace.Vcd.write_file
      ~power:(Psm_trace.Power_trace.of_array powers)
      path trace;
    let trained, _ = Flow.train_on_vcd_files ~period:1 [ path ] in
    Sys.remove path;
    { Psm_flow.Persist.table = trained.Flow.table;
      psm = trained.Flow.optimized;
      hmm = trained.Flow.hmm }
  in
  let stress = stress_model () in
  let n_stress = 1024 and stress_cycles = 200 in
  let rng = Random.State.make [| 0x5e7e; 9 |] in
  let stress_nprops = Table.prop_count stress.Psm_flow.Persist.table in
  let stress_plan =
    Array.init n_stress (fun _ ->
        mk_plan ~rng ~nprops:stress_nprops ~cycles:stress_cycles)
  in
  let drive_stress ~batch ~ticks =
    let engine =
      Serve_engine.create ~idle_timeout:0. ~batch [ ("STRESS", stress) ]
    in
    Array.iteri
      (fun s _ ->
        match
          Serve_engine.open_session engine ~id:(sid s) ~model:"STRESS"
            ~mode:`Filter
        with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "FAIL: serve open %s: %s\n" (sid s) e;
            exit 1)
      stress_plan;
    (* Pre-queue every observation so the timed region is ticks alone. *)
    Array.iteri
      (fun s obs ->
        match
          Serve_engine.submit engine ~id:(sid s)
            (Array.map (fun o -> (o, 0.)) obs)
        with
        | Ok n when n = stress_cycles -> ()
        | Ok n ->
            Printf.eprintf "FAIL: serve submit enqueued %d cycles\n" n;
            exit 1
        | Error e ->
            Printf.eprintf "FAIL: serve submit %s: %s\n" (sid s) e;
            exit 1)
      stress_plan;
    let t0 = Unix.gettimeofday () in
    for t = 0 to stress_cycles - 1 do
      let tick0 = Unix.gettimeofday () in
      let advanced = Serve_engine.tick engine in
      (match ticks with
      | Some a -> a.(t) <- Unix.gettimeofday () -. tick0
      | None -> ());
      if advanced <> n_stress then begin
        Printf.eprintf "FAIL: serve tick advanced %d of %d sessions\n" advanced
          n_stress;
        exit 1
      end
    done;
    let seconds = Unix.gettimeofday () -. t0 in
    let results =
      Array.init n_stress (fun s ->
          match
            Serve_engine.take_results engine ~id:(sid s) ~count:stress_cycles
          with
          | Ok r when Array.length r = stress_cycles -> r
          | Ok r ->
              Printf.eprintf "FAIL: serve session %s served %d of %d cycles\n"
                (sid s) (Array.length r) stress_cycles;
              exit 1
          | Error e ->
              Printf.eprintf "FAIL: serve results %s: %s\n" (sid s) e;
              exit 1)
    in
    (results, seconds)
  in
  let tick_lat = Array.make stress_cycles 0. in
  (* Best of two runs per scheduler: one-shot wall times at this scale
     carry enough scheduler noise to wobble the gate either way. *)
  let _, batch_s0 = drive_stress ~batch:true ~ticks:None in
  let batched, batch_s1 = drive_stress ~batch:true ~ticks:(Some tick_lat) in
  let batch_s = Float.min batch_s0 batch_s1 in
  let _, loop_s0 = drive_stress ~batch:false ~ticks:None in
  let looped, loop_s1 = drive_stress ~batch:false ~ticks:None in
  let loop_s = Float.min loop_s0 loop_s1 in
  (* Bit-identity 1: the batched sweep against the per-session loop,
     every session, every cycle. *)
  for s = 0 to n_stress - 1 do
    for t = 0 to stress_cycles - 1 do
      check_pair ~what:"batched/loop" s t batched.(s).(t) looped.(s).(t)
    done
  done;
  (* Bit-identity 2: served output against offline single-trace
     inference on a sample of stress sessions. *)
  List.iter
    (fun s ->
      let expected = offline_expected stress `Filter stress_plan.(s) in
      for t = 0 to stress_cycles - 1 do
        check_pair ~what:"served/offline" s t batched.(s).(t) expected.(t)
      done)
    [ 0; 1; 511; 1023 ];
  (* ----- identity phase: real IP models, both modes ----- *)
  let model_of name ip =
    let suite = Workloads.suite ~total_length:8000 ~long:false name in
    let trained = Flow.train_on_ip ip suite in
    ( name,
      { Psm_flow.Persist.table = trained.Flow.table;
        psm = trained.Flow.optimized;
        hmm = trained.Flow.hmm } )
  in
  let models =
    [ model_of "RAM" (Psm_ips.Ram.create ());
      model_of "FIFO" (Psm_ips.Fifo.create ()) ]
  in
  let n_id_filter = 64 and n_id_sim = 64 in
  let n_id = n_id_filter + n_id_sim in
  let id_cycles = 200 in
  let id_plan =
    Array.init n_id (fun s ->
        let name, model = List.nth models (s mod 2) in
        let nprops = Table.prop_count model.Psm_flow.Persist.table in
        let mode = if s < n_id_filter then `Filter else `Sim in
        (name, mode, mk_plan ~rng ~nprops ~cycles:id_cycles))
  in
  let drive_id ~batch =
    let engine = Serve_engine.create ~idle_timeout:0. ~batch models in
    Array.iteri
      (fun s (model, mode, _) ->
        match Serve_engine.open_session engine ~id:(sid s) ~model ~mode with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "FAIL: serve open %s: %s\n" (sid s) e;
            exit 1)
      id_plan;
    (* Interleaved feeding: one observation per session per drain, the
       wave pattern the daemon's socket loop produces. *)
    for t = 0 to id_cycles - 1 do
      Array.iteri
        (fun s (_, _, obs) ->
          match Serve_engine.submit engine ~id:(sid s) [| (obs.(t), 0.) |] with
          | Ok 1 -> ()
          | Ok _ | Error _ ->
              Printf.eprintf "FAIL: serve submit %s\n" (sid s);
              exit 1)
        id_plan;
      ignore (Serve_engine.drain engine)
    done;
    Array.init n_id (fun s ->
        match Serve_engine.take_results engine ~id:(sid s) ~count:id_cycles with
        | Ok r when Array.length r = id_cycles -> r
        | _ ->
            Printf.eprintf "FAIL: serve results %s\n" (sid s);
            exit 1)
  in
  let id_batched = drive_id ~batch:true in
  let id_looped = drive_id ~batch:false in
  for s = 0 to n_id - 1 do
    let name, mode, obs = id_plan.(s) in
    let expected = offline_expected (List.assoc name models) mode obs in
    for t = 0 to id_cycles - 1 do
      check_pair ~what:"batched/loop" s t id_batched.(s).(t) id_looped.(s).(t);
      check_pair ~what:"served/offline" s t id_batched.(s).(t) expected.(t)
    done
  done;
  let lat = Array.copy tick_lat in
  Array.sort Float.compare lat;
  let pct q =
    lat.(min (stress_cycles - 1) (int_of_float (q *. float_of_int stress_cycles)))
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let rate s = float_of_int (n_stress * stress_cycles) /. s in
  let speedup = if batch_s > 0. then loop_s /. batch_s else 0. in
  serve_metrics :=
    [ ("sessions", float_of_int n_stress);
      ("cycles_per_session", float_of_int stress_cycles);
      ("stress_hmm_states",
       float_of_int (Psm_hmm.Hmm.state_count stress.Psm_flow.Persist.hmm));
      ("batched_seconds", batch_s);
      ("batched_session_cycles_per_s", rate batch_s);
      ("loop_seconds", loop_s);
      ("loop_session_cycles_per_s", rate loop_s);
      ("batched_speedup_vs_loop", speedup);
      ("tick_p50_ms", p50 *. 1e3);
      ("tick_p99_ms", p99 *. 1e3);
      ("identity_sessions", float_of_int n_id) ];
  print_string
    (Report.render_table
       ~header:[ "scheduler"; "seconds"; "session-cycles/s"; "speedup" ]
       [ [ "batched sweeps"; Printf.sprintf "%.3f" batch_s;
           Printf.sprintf "%.0f" (rate batch_s);
           Printf.sprintf "%.2fx" speedup ];
         [ "per-session loop"; Printf.sprintf "%.3f" loop_s;
           Printf.sprintf "%.0f" (rate loop_s); "1.00x" ] ]);
  Printf.printf
    "%d filter sessions on the %d-state stress model, %d cycles each;\n\
     per-tick latency p50 %.3f ms, p99 %.3f ms.\n\
     Identity: %d sessions (%d filter + %d sim over %d IP models) —\n\
     output bit-identical (batched = loop = offline single-trace \
     inference).\n"
    n_stress
    (Psm_hmm.Hmm.state_count stress.Psm_flow.Persist.hmm)
    stress_cycles (p50 *. 1e3) (p99 *. 1e3) n_id n_id_filter n_id_sim
    (List.length models)

(* The acceptance gate: with 1000+ concurrent sessions the batched
   scheduler must at least double the per-session loop's throughput (the
   bit-identity self-checks above already exited 1 on any divergence). *)
let gate_serve ~serve =
  match List.assoc_opt "batched_speedup_vs_loop" serve with
  | Some speedup ->
      Printf.printf "[gate] serve batched speedup vs loop: %.2fx (floor 2.00x)\n"
        speedup;
      if speedup < 2.0 then begin
        Printf.eprintf
          "FAIL: serve batched sweeps only %.2fx the per-session loop \
           (gate 2.00x)\n"
          speedup;
        exit 1
      end
  | None ->
      Printf.eprintf "FAIL: --gate requires the serve stage\n";
      exit 1

(* ---------- Micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  let ram = Psm_ips.Ram.create () in
  let ram_stim = Workloads.ram_short ~length:2000 () in
  let aes = Psm_ips.Aes.create () in
  let aes_stim = Workloads.aes_short ~length:2000 () in
  let trace, power = Psm_ips.Capture.run ram ram_stim in
  let suite = Workloads.suite ~total_length:8000 ~long:false "RAM" in
  let trained = Flow.train_on_ip ram suite in
  let vocabulary = Table.vocabulary trained.Flow.table in
  let sample = Psm_trace.Functional_trace.sample trace ~time:100 in
  let gamma = Psm_mining.Prop_trace.of_functional trained.Flow.table trace in
  let stepper = ref (Psm_hmm.Multi_sim.Stepper.create trained.Flow.hmm) in
  [ Test.make ~name:"ip-step/RAM"
      (Staged.stage (fun () ->
           ram.Psm_ips.Ip.reset ();
           Array.iter (fun pis -> ignore (ram.Psm_ips.Ip.step pis))
             (Array.sub ram_stim 0 256)));
    Test.make ~name:"ip-step/AES"
      (Staged.stage (fun () ->
           aes.Psm_ips.Ip.reset ();
           Array.iter (fun pis -> ignore (aes.Psm_ips.Ip.step pis))
             (Array.sub aes_stim 0 256)));
    Test.make ~name:"mining/vocabulary-2k"
      (Staged.stage (fun () ->
           ignore (Psm_mining.Miner.mine_vocabulary [ trace ])));
    Test.make ~name:"mining/classify-sample"
      (Staged.stage (fun () -> ignore (Table.classify trained.Flow.table sample)));
    Test.make ~name:"mining/eval-vocabulary"
      (Staged.stage (fun () -> ignore (Psm_mining.Vocabulary.eval_sample vocabulary sample)));
    Test.make ~name:"generator/xu-segmentation-2k"
      (Staged.stage (fun () ->
           ignore
             (Psm_core.Generator.generate
                (Psm.empty trained.Flow.table)
                ~trace:0 gamma power)));
    Test.make ~name:"hmm/stepper-step"
      (Staged.stage (fun () -> ignore (Psm_hmm.Multi_sim.Stepper.step !stepper sample)));
    Test.make ~name:"hmm/stepper-256-cycles"
      (Staged.stage (fun () ->
           stepper := Psm_hmm.Multi_sim.Stepper.create trained.Flow.hmm;
           for t = 0 to 255 do
             ignore
               (Psm_hmm.Multi_sim.Stepper.step !stepper
                  (Psm_trace.Functional_trace.sample trace ~time:t))
           done));
    Test.make ~name:"gate-sim/levelized-RAM-cycle"
      (Staged.stage
         (let sim = Psm_rtl.Sim.create (Psm_ips.Ram_gates.netlist ()) in
          let ins =
            [ ("ce", Psm_bits.Bits.of_bool false); ("we", Psm_bits.Bits.of_bool false);
              ("addr", Psm_bits.Bits.zero 10); ("wdata", Psm_bits.Bits.zero 32) ]
          in
          fun () -> ignore (Psm_rtl.Sim.step sim ins)));
    Test.make ~name:"gate-sim/event-driven-RAM-cycle"
      (Staged.stage
         (let sim = Psm_rtl.Event_sim.create (Psm_ips.Ram_gates.netlist ()) in
          let ins =
            [ ("ce", Psm_bits.Bits.of_bool false); ("we", Psm_bits.Bits.of_bool false);
              ("addr", Psm_bits.Bits.zero 10); ("wdata", Psm_bits.Bits.zero 32) ]
          in
          fun () -> ignore (Psm_rtl.Event_sim.step sim ins)));
    Test.make ~name:"stats/welch-t-test"
      (Staged.stage (fun () ->
           ignore
             (Psm_stats.Ttest.welch ~mean1:10. ~stddev1:2. ~n1:500 ~mean2:10.1
                ~stddev2:1.9 ~n2:400))) ]

let run_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = Test.make_grouped ~name:"psm" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Printf.sprintf "%12.1f ns/run" ns
        | Some _ | None -> "n/a"
      in
      Printf.printf "  %-32s %s\n" name estimate)
    results

(* ---------- Driver ---------- *)

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Run [f] with stdout redirected to /dev/null — the jobs=1 baseline of
   [--json] re-runs whole stages and their table printing would otherwise
   appear twice. *)
let silenced f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let stages_of ~long_length ~eval_length ~ablation_eval what =
  let table1 = ("table1", run_table1) in
  let table2 = ("table2", run_table2 ~long_length) in
  let table3 = ("table3", run_table3 ~eval_length) in
  let figs = ("figs", run_figs) in
  let ablations = ("ablations", run_ablations ~eval_length:ablation_eval) in
  let ingest = ("ingest", run_ingest) in
  let analyze = ("analyze", run_analyze) in
  let verify = ("verify", run_verify) in
  let evaluate = ("evaluate", run_evaluate ~eval_length) in
  let profile = ("profile", run_profile) in
  let stream = ("stream", run_stream) in
  let compress = ("compress", run_compress) in
  let serve = ("serve", run_serve) in
  let micro = ("micro", run_micro) in
  match what with
  | "table1" -> Some [ table1 ]
  | "table2" -> Some [ table2 ]
  | "table3" -> Some [ table3 ]
  | "figs" -> Some [ figs ]
  | "ablations" -> Some [ ablations ]
  | "ingest" -> Some [ ingest ]
  | "analyze" -> Some [ analyze ]
  | "verify" -> Some [ verify ]
  | "evaluate" -> Some [ evaluate ]
  | "profile" -> Some [ profile ]
  | "stream" -> Some [ stream ]
  | "compress" -> Some [ compress ]
  | "serve" -> Some [ serve ]
  | "micro" -> Some [ micro ]
  | "all" ->
      Some
        [ table1; table2; table3; figs; ablations; ingest; analyze; verify;
          evaluate; profile; stream; compress; serve; micro ]
  | _ -> None

(* Two independent wall-clock measurements never agree to the printed
   microsecond: byte-identical *_seconds values of non-trivial size mean
   one measurement was recorded under two names — a reused binding or a
   key collision (the BENCH_5 bug class: MultSum and RAM reporting the
   same multisim number). Fail loudly rather than commit fiction. *)
let check_distinct_measurements metrics =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (label, entries) ->
      List.iter
        (fun (key, v) ->
          if Filename.check_suffix key "_seconds" && v >= 0.01 then begin
            let repr = Printf.sprintf "%.6f" v in
            match Hashtbl.find_opt seen repr with
            | Some (label0, key0) ->
                Printf.eprintf
                  "FAIL: metrics %s.%s and %s.%s are byte-identical (%s s); \
                   independent measurements cannot coincide\n"
                  label0 key0 label key repr;
                exit 1
            | None -> Hashtbl.add seen repr (label, key)
          end)
        entries)
    metrics

let write_json file ~command ~paper ~jobs ~timings ~baseline ~metrics =
  let oc = open_out file in
  let out fmt = Printf.fprintf oc fmt in
  let baseline_of name =
    Option.bind baseline (fun b -> List.assoc_opt name b)
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. timings in
  let baseline_total =
    Option.map (List.fold_left (fun acc (_, s) -> acc +. s) 0.) baseline
  in
  out "{\n";
  out "  \"schema\": 1,\n";
  out "  \"command\": %S,\n" command;
  out "  \"paper_scale\": %b,\n" paper;
  out "  \"jobs\": %d,\n" jobs;
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"stages\": [\n";
  List.iteri
    (fun i (name, seconds) ->
      out "    { \"name\": %S, \"seconds\": %.3f" name seconds;
      (match baseline_of name with
      | Some base ->
          out ", \"jobs1_seconds\": %.3f, \"speedup_vs_jobs1\": %.3f" base
            (if seconds > 0. then base /. seconds else 0.)
      | None -> ());
      out " }%s\n" (if i = List.length timings - 1 then "" else ","))
    timings;
  out "  ],\n";
  let metrics_block label metrics =
    match metrics with
    | [] -> ()
    | metrics ->
        out "  %S: {\n" label;
        List.iteri
          (fun i (k, v) ->
            out "    %S: %.6f%s\n" k v (if i = List.length metrics - 1 then "" else ","))
          metrics;
        out "  },\n"
  in
  List.iter (fun (label, entries) -> metrics_block label entries) metrics;
  out "  \"total_seconds\": %.3f" total;
  (match baseline_total with
  | Some base ->
      out ",\n  \"jobs1_total_seconds\": %.3f,\n  \"speedup_vs_jobs1\": %.3f\n" base
        (if total > 0. then base /. total else 0.)
  | None -> out "\n");
  out "}\n";
  close_out oc

(* The hardware-conditional CI gates: a 1-core host cannot speed anything
   up by parallelism, but after the domain clamp PSM_JOBS=4 must at least
   be a no-op there (BENCH_1 recorded 0.26×; that must never return). *)
let gate_table2_speedup ~timings ~baseline =
  match
    (List.assoc_opt "table2" timings, Option.bind baseline (List.assoc_opt "table2"))
  with
  | Some par_s, Some base_s ->
      let speedup = if par_s > 0. then base_s /. par_s else 0. in
      let hw = Domain.recommended_domain_count () in
      let floor = if hw >= 2 then 1.5 else 0.85 in
      Printf.printf "[gate] table2 speedup_vs_jobs1: %.2fx (floor %.2fx on %d-domain hardware)\n"
        speedup floor hw;
      if speedup < floor then begin
        Printf.eprintf "FAIL: table2 jobs=%d speedup %.2fx below the %.2fx gate\n"
          (Psm_par.default_jobs ()) speedup floor;
        exit 1
      end
  | Some _, None ->
      Printf.eprintf "FAIL: --gate needs the jobs=1 baseline; run with PSM_JOBS > 1\n";
      exit 1
  | None, _ ->
      Printf.eprintf "FAIL: --gate requires the table2 stage\n";
      exit 1

let gate_camellia_auto_viterbi ~evaluate =
  match
    ( List.assoc_opt "Camellia_viterbi_auto_seconds" evaluate,
      List.assoc_opt "Camellia_viterbi_dense_seconds" evaluate )
  with
  | Some auto_s, Some dense_s ->
      (* "No slower than dense", with 10% of measurement slack: the cost
         model picks sparse here at near-parity and best-of-3 still
         jitters a few percent. *)
      Printf.printf "[gate] Camellia auto viterbi: %.3f s vs dense %.3f s\n" auto_s
        dense_s;
      if auto_s > dense_s *. 1.10 then begin
        Printf.eprintf
          "FAIL: Camellia auto viterbi %.3f s slower than dense %.3f s\n" auto_s
          dense_s;
        exit 1
      end
  | _ ->
      Printf.eprintf "FAIL: --gate requires the evaluate stage\n";
      exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let paper = List.mem "--paper" args in
  let gate = List.mem "--gate" args in
  let args = List.filter (fun a -> a <> "--paper" && a <> "--gate") args in
  let rec take_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | "--json" :: [] ->
        Printf.eprintf "--json requires a file argument\n";
        exit 2
    | a :: rest -> take_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, args = take_json [] args in
  let long_length = if paper then 500_000 else 120_000 in
  let eval_length = if paper then 500_000 else 120_000 in
  let ablation_eval = if paper then 100_000 else 40_000 in
  let whats = match args with [] -> [ "all" ] | ws -> ws in
  let what = String.concat "+" whats in
  let t0 = Unix.gettimeofday () in
  let stages =
    List.concat_map
      (fun w ->
        match stages_of ~long_length ~eval_length ~ablation_eval w with
        | Some stages -> stages
        | None ->
            Printf.eprintf
              "unknown command %s (expected \
               table1|table2|table3|figs|ablations|ingest|analyze|verify|evaluate|profile|stream|compress|serve|micro|all)\n"
              w;
            exit 2)
      whats
  in
  let jobs = Psm_par.default_jobs () in
  let timings = List.map (fun (name, f) -> (name, timed f)) stages in
  (* Snapshot the metric blocks NOW: the jobs=1 baseline below re-runs
     the same stages, and reading the refs after it would report the
     silenced baseline's numbers as this run's. *)
  let metrics =
    List.filter
      (fun (_, entries) -> entries <> [])
      [ ("ingest", !ingest_metrics); ("analyze", !analyze_metrics);
        ("verify", !verify_metrics); ("evaluate", !evaluate_metrics);
        ("profile", !profile_metrics); ("stream", !stream_metrics);
        ("compress", !compress_metrics); ("serve", !serve_metrics) ]
  in
  check_distinct_measurements metrics;
  let baseline =
    if jobs <= 1 || (json_file = None && not gate) then None
    else begin
      (* Re-run the same stages with the pool forced to one job to
         measure the fan-out's speedup on this machine. *)
      Printf.printf "\n[re-running %s with PSM_JOBS=1 for the baseline]\n%!" what;
      let baseline =
        silenced (fun () ->
            Psm_par.set_jobs 1;
            Fun.protect
              ~finally:(fun () -> Psm_par.set_jobs jobs)
              (fun () -> List.map (fun (name, f) -> (name, timed f)) stages))
      in
      Some baseline
    end
  in
  (match json_file with
  | None -> ()
  | Some file ->
      write_json file ~command:what ~paper ~jobs ~timings ~baseline ~metrics;
      Printf.printf "[--json: wrote %s]\n" file);
  if gate then begin
    (* Each gate applies only when its stage ran; --gate over a stage set
       with nothing to check is a configuration error, not a pass. *)
    let ran name = List.mem_assoc name timings in
    if
      not
        (ran "table2" || ran "evaluate" || ran "stream" || ran "verify"
        || ran "compress" || ran "serve")
    then begin
      Printf.eprintf
        "FAIL: --gate requires at least one gated stage \
         (table2|evaluate|stream|verify|compress|serve)\n";
      exit 1
    end;
    if ran "table2" then gate_table2_speedup ~timings ~baseline;
    if ran "verify" then
      gate_verify
        ~verify:(Option.value ~default:[] (List.assoc_opt "verify" metrics));
    if ran "evaluate" then
      gate_camellia_auto_viterbi
        ~evaluate:(Option.value ~default:[] (List.assoc_opt "evaluate" metrics));
    if ran "stream" then
      gate_stream_heap
        ~stream:(Option.value ~default:[] (List.assoc_opt "stream" metrics));
    if ran "compress" then
      gate_compress
        ~compress:(Option.value ~default:[] (List.assoc_opt "compress" metrics));
    if ran "serve" then
      gate_serve
        ~serve:(Option.value ~default:[] (List.assoc_opt "serve" metrics))
  end;
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
