(* Dev probe: per-IP HMM matrix shapes and raw kernel timings, used to
   calibrate the per-algorithm kernel cost model (Psm_hmm.Kernel_cost).
   Not part of the bench gates; run as `dune exec bench/probe.exe`. *)

module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Table = Psm_mining.Prop_trace.Table

(* Best of three: these kernels run for tens of milliseconds, where a
   single sample is dominated by GC and scheduler noise. *)
let time f =
  let sample () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let r, d1 = sample () in
  let _, d2 = sample () in
  let _, d3 = sample () in
  (r, Float.min d1 (Float.min d2 d3))

let () =
  let eval_length =
    match Sys.argv with [| _; n |] -> int_of_string n | _ -> 60_000
  in
  List.iter
    (fun (name, make) ->
      let ip : Psm_ips.Ip.t = make () in
      let suite =
        Workloads.suite ~total_length:(Workloads.paper_short_length name) ~long:false
          name
      in
      let trained = Flow.train_on_ip ip suite in
      let hmm = trained.Flow.hmm in
      let table = trained.Flow.table in
      let long = Workloads.long_for ~length:eval_length name in
      let trace, _ = Psm_ips.Capture.run ip long in
      let obs =
        Array.init (Psm_trace.Functional_trace.length trace) (fun time ->
            Table.classify table (Psm_trace.Functional_trace.sample trace ~time))
      in
      let m = Psm_hmm.Hmm.state_count hmm in
      let csr = Psm_hmm.Hmm.a_sparse hmm in
      let nnz = Psm_hmm.Sparse.nnz csr in
      let fi = Psm_hmm.Filtering.create ~kernel:`Dense hmm in
      let a_instant_density = Psm_hmm.Filtering.kernel fi in
      ignore a_instant_density;
      let _, fwd_d = time (fun () -> Psm_hmm.Filtering.log_likelihood fi obs) in
      let fs = Psm_hmm.Filtering.create ~kernel:`Sparse hmm in
      let _, fwd_s = time (fun () -> Psm_hmm.Filtering.log_likelihood fs obs) in
      let _, vit_d = time (fun () -> Psm_hmm.Offline.viterbi ~kernel:`Dense hmm obs) in
      let _, vit_s = time (fun () -> Psm_hmm.Offline.viterbi ~kernel:`Sparse hmm obs) in
      let _, sim_r =
        time (fun () -> Psm_hmm.Multi_sim.simulate ~reference:true hmm trace)
      in
      let _, sim_i = time (fun () -> Psm_hmm.Multi_sim.simulate hmm trace) in
      let t = Array.length obs in
      Printf.printf
        "%-8s m=%3d nnz=%4d dens=%.3f T=%d | fwd d=%.3fs s=%.3fs | vit d=%.3fs \
         s=%.3fs | sim r=%.3fs i=%.3fs\n\
         %!"
        name m nnz
        (Psm_hmm.Sparse.density csr)
        t fwd_d fwd_s vit_d vit_s sim_r sim_i)
    [ ("RAM", Psm_ips.Ram.create); ("MultSum", Psm_ips.Multsum.create);
      ("AES", Psm_ips.Aes.create); ("Camellia", Psm_ips.Camellia.create) ]
