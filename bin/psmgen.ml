(* psmgen — command-line front end for the PSM generation flow.

   Subcommands:
     generate   run the full flow on a named benchmark IP, print the PSM
                set, optionally dump Graphviz/VCD/CSV artifacts
     evaluate   train on short-TS, evaluate accuracy on long-TS
     trace      capture a training trace and write it as VCD and/or CSV
     stats      run-length structure of a trace (compression, histogram)
     lint       statically analyze a persisted model
     verify     symbolically prove model invariants over the atom theory
     diff       semantic (bisimulation) comparison of two models
     info       list the benchmark IPs and their interfaces *)

open Cmdliner

let setup_logs verbose jobs =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  Option.iter Psm_par.set_jobs jobs

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domain-pool width for the parallel stages (overrides the \
                 PSM_JOBS environment variable; 1 = fully sequential). \
                 Results are bit-identical at any width.")

let logs_arg =
  Term.(const setup_logs
        $ Arg.(value & flag & info [ "verbose-flow" ] ~doc:"Log flow stage details.")
        $ jobs_arg)

module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Capture = Psm_ips.Capture
module Psm = Psm_core.Psm

let ip_names =
  [ "RAM"; "MultSum"; "MultSum-gates"; "AES"; "Camellia"; "Camellia-noscrub"; "FIFO" ]

let make_ip = function
  | "RAM" -> Psm_ips.Ram.create ()
  | "MultSum" -> Psm_ips.Multsum.create ()
  | "MultSum-gates" -> Psm_ips.Multsum.create_structural ()
  | "AES" -> Psm_ips.Aes.create ()
  | "Camellia" -> Psm_ips.Camellia.create ()
  | "Camellia-noscrub" -> Psm_ips.Camellia.create_without_scrubber ()
  | "FIFO" -> Psm_ips.Fifo.create ()
  | other -> failwith ("unknown IP " ^ other)

let ip_arg =
  let doc = Printf.sprintf "Benchmark IP (%s)." (String.concat ", " ip_names) in
  Arg.(required & pos 0 (some (enum (List.map (fun n -> (n, n)) ip_names))) None
       & info [] ~docv:"IP" ~doc)

let length_arg ~default ~doc =
  Arg.(value & opt int default & info [ "length"; "n" ] ~docv:"CYCLES" ~doc)

let parts_arg =
  Arg.(value & opt int 4
       & info [ "parts" ] ~docv:"N" ~doc:"Number of testbenches in the training suite.")

let epsilon_arg =
  Arg.(value & opt float Psm_core.Merge.default.Psm_core.Merge.epsilon
       & info [ "epsilon" ] ~docv:"E" ~doc:"Relative merge tolerance (Case 1).")

let dot_arg =
  Arg.(value & opt (some string) None
       & info [ "dot" ] ~docv:"FILE" ~doc:"Write the combined PSM set as Graphviz dot.")

let config ~epsilon =
  { Flow.default with
    merge = { Psm_core.Merge.default with Psm_core.Merge.epsilon } }

let train ~name ~length ~parts ~epsilon =
  let ip = make_ip name in
  let total_length =
    match length with Some l -> l | None -> Workloads.paper_short_length name
  in
  let suite = Workloads.suite ~parts ~total_length ~long:false name in
  (ip, Flow.train_on_ip ~config:(config ~epsilon) ip suite)

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "save" ] ~docv:"FILE"
           ~doc:"Persist the trained model (reload with 'psmgen apply').")

let lint_flag =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Print the static-analysis report for the model.")

let no_rle_arg =
  Term.(const (fun no_rle -> if no_rle then Psm_trace.Runs.set_enabled false)
        $ Arg.(value & flag
               & info [ "no-rle" ]
                   ~doc:"Disable the run-length-compacted pipeline paths and \
                         run the per-cycle reference implementation instead \
                         (bit-identical results; for debugging and \
                         benchmarking only)."))

module Analyzer = Psm_analysis.Analyzer
module Report = Psm_analysis.Report

(* ---- profiling (--profile) ---- *)

let profile_arg =
  Arg.(value & opt ~vopt:(Some "psm-profile.json") (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Enable the observability sink and write the recorded spans as \
                 Chrome trace-event JSON (load in chrome://tracing or Perfetto). \
                 FILE defaults to psm-profile.json.")

let with_profile profile f =
  match profile with
  | None -> f ()
  | Some path ->
      Psm_obs.enable ();
      Fun.protect f ~finally:(fun () ->
          (* Written in the finally so a failing run still leaves the
             partial profile behind. *)
          let summary = Psm_obs.snapshot () in
          Psm_obs.write_chrome_file path;
          Printf.printf "Wrote %s (%d spans, %d distinct names)\n" path
            (List.length summary.Psm_obs.events)
            (List.length summary.Psm_obs.span_stats))

(* ---- generate ---- *)

let generate name length parts epsilon dot save lint verbose profile =
  with_profile profile @@ fun () ->
  let length = if length = 0 then None else Some length in
  let _ip, trained = train ~name ~length ~parts ~epsilon in
  let psm = trained.Flow.optimized in
  Printf.printf "Trained PSM set for %s:\n" name;
  Format.printf "%a@." Psm.pp psm;
  if verbose then begin
    let table = trained.Flow.table in
    Printf.printf "\nPropositions:\n";
    for p = 0 to Psm_mining.Prop_trace.Table.prop_count table - 1 do
      Format.printf "  %a@." (Psm_mining.Prop_trace.Table.pp_prop table) p
    done;
    Printf.printf "\nOptimization reports:\n";
    List.iter
      (fun r ->
        Printf.printf "  state %d: sigma/mu=%.3f r=%.3f upgraded=%b\n"
          r.Psm_core.Optimize.state_id r.Psm_core.Optimize.relative_sigma
          r.Psm_core.Optimize.correlation r.Psm_core.Optimize.upgraded)
      trained.Flow.optimize_reports
  end;
  Printf.printf "\nTimings: mining %.3fs, generation %.3fs, combination %.3fs\n"
    trained.Flow.timings.Flow.mine_s trained.Flow.timings.Flow.generate_s
    trained.Flow.timings.Flow.combine_s;
  if lint then begin
    Printf.printf "\nStatic analysis (%s):\n" (Report.summary trained.Flow.analysis);
    print_string (Report.text trained.Flow.analysis)
  end;
  Option.iter
    (fun path ->
      Psm_core.Dot.write_file ~name path psm;
      Printf.printf "Wrote %s\n" path)
    dot;
  Option.iter
    (fun path ->
      Psm_flow.Persist.save_file path trained;
      Printf.printf "Wrote %s\n" path)
    save

let generate_cmd =
  let length =
    Arg.(value & opt int 0
         & info [ "length"; "n" ] ~docv:"CYCLES"
             ~doc:"Training-suite length (0 = the paper's short-TS length).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print propositions.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Mine PSMs for a benchmark IP")
    Term.(const (fun () () -> generate) $ logs_arg $ no_rle_arg $ ip_arg $ length
          $ parts_arg $ epsilon_arg $ dot_arg $ save_arg $ lint_flag $ verbose
          $ profile_arg)

(* ---- evaluate ---- *)

let evaluate name eval_length parts epsilon plot =
  let ip, trained = train ~name ~length:None ~parts ~epsilon in
  let long = Workloads.long_for ~length:eval_length name in
  let trace, reference = Capture.run ip long in
  let report, result =
    let result = Psm_hmm.Multi_sim.simulate trained.Flow.hmm trace in
    (Psm_hmm.Accuracy.of_result ~reference result, result)
  in
  Printf.printf "PSMs: %d states, %d transitions\n"
    (Psm.state_count trained.Flow.optimized)
    (Psm.transition_count trained.Flow.optimized);
  Format.printf "Accuracy on %d long-TS instants: %a@." eval_length Psm_hmm.Accuracy.pp
    report;
  Printf.printf "Resynchronization events: %d\n" result.Psm_hmm.Multi_sim.resync_events;
  Option.iter
    (fun basename ->
      Psm_flow.Plot.write ~basename ~title:(name ^ " power estimate") ~reference ~result;
      Printf.printf "Wrote %s.dat and %s.gp (render: gnuplot %s.gp)\n" basename basename
        basename)
    plot

let evaluate_cmd =
  let length =
    length_arg ~default:100_000 ~doc:"Evaluation (long-TS) length in cycles."
  in
  let plot =
    Arg.(value & opt (some string) None
         & info [ "plot" ] ~docv:"BASENAME" ~doc:"Write gnuplot artifacts.")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Short-TS training, long-TS accuracy evaluation")
    Term.(const (fun () -> evaluate) $ no_rle_arg $ ip_arg $ length $ parts_arg
          $ epsilon_arg $ plot)

(* ---- trace ---- *)

let capture_trace name length vcd csv saif =
  let ip = make_ip name in
  let stimulus = Workloads.suite ~parts:1 ~total_length:length ~long:false name in
  let trace, power = Capture.run ip (List.hd stimulus) in
  Printf.printf "Captured %d instants of %s (%d signals)\n" length name
    (Psm_trace.Interface.arity (Psm_trace.Functional_trace.interface trace));
  Option.iter
    (fun path ->
      Psm_trace.Vcd.write_file ~power path trace;
      Printf.printf "Wrote %s\n" path)
    vcd;
  Option.iter
    (fun path ->
      Psm_trace.Csv.write_file ~power path trace;
      Printf.printf "Wrote %s\n" path)
    csv;
  Option.iter
    (fun path ->
      Psm_trace.Saif.write_file ~design:name path trace;
      Printf.printf "Wrote %s\n" path)
    saif

let trace_cmd =
  let length = length_arg ~default:2000 ~doc:"Trace length in cycles." in
  let vcd =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE" ~doc:"Write the trace as VCD (with power).")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV (with power).")
  in
  let saif =
    Arg.(value & opt (some string) None
         & info [ "saif" ] ~docv:"FILE"
             ~doc:"Write the switching activity as SAIF backward annotation.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Capture a functional + power trace")
    Term.(const capture_trace $ ip_arg $ length $ vcd $ csv $ saif)

(* ---- train-vcd: the black-box path on external traces ---- *)

let unknowns_arg =
  let policies =
    [ ("zero", Psm_trace.Reader.Zero);
      ("error", Psm_trace.Reader.Reject);
      ("count", Psm_trace.Reader.Count) ]
  in
  Arg.(value & opt (enum policies) Psm_trace.Reader.Count
       & info [ "unknowns" ] ~docv:"POLICY"
           ~doc:"What to do with x/z bits: zero (coerce silently), error \
                 (reject the trace), count (coerce and report; default).")

let period_arg =
  Arg.(value & opt (some int) None
       & info [ "period" ] ~docv:"N"
           ~doc:"Sampling period in timescale units (default: GCD of the \
                 timestamp deltas).")

let print_ingest path (stats : Psm_trace.Reader.stats) =
  Format.printf "ingested %s: %a@." path Psm_trace.Reader.pp_stats stats

let train_vcd files dot unknowns period =
  let ingested =
    try Psm_par.parallel_map (Flow.load_vcd ~unknowns ?period) files
    with
    | Psm_trace.Vcd.Parse_error e ->
        Printf.eprintf "parse error: %s\n" (Psm_trace.Reader.error_to_string e);
        exit 1
    | Invalid_argument m ->
        Printf.eprintf "%s\n" m;
        exit 1
  in
  List.iter (fun (i : Flow.ingested) -> print_ingest i.Flow.path i.Flow.ingest) ingested;
  let trained =
    Flow.train
      ~traces:(List.map (fun (i : Flow.ingested) -> i.Flow.functional) ingested)
      ~powers:(List.map (fun (i : Flow.ingested) -> i.Flow.power) ingested)
      ()
  in
  Format.printf "%a@." Psm.pp trained.Flow.optimized;
  (* Training-set accuracy, for a quick sanity read. *)
  List.iter
    (fun (i : Flow.ingested) ->
      let report, _ = Flow.evaluate trained i.Flow.functional ~reference:i.Flow.power in
      Format.printf "training trace (%d instants): %a@."
        (Psm_trace.Functional_trace.length i.Flow.functional)
        Psm_hmm.Accuracy.pp report)
    ingested;
  Option.iter
    (fun path ->
      Psm_core.Dot.write_file path trained.Flow.optimized;
      Printf.printf "Wrote %s\n" path)
    dot

let train_vcd_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"VCD" ~doc:"Training VCD files (with embedded __power__).")
  in
  Cmd.v
    (Cmd.info "train-vcd"
       ~doc:"Mine PSMs from externally captured VCD traces (black-box mode)")
    Term.(const (fun () -> train_vcd) $ no_rle_arg $ files $ dot_arg $ unknowns_arg
          $ period_arg)

(* ---- train-stream: incremental black-box training, O(model) memory ---- *)

let train_stream files dot unknowns period watermark checkpoint =
  let result =
    try
      Psm_flow.Stream_train.train_stream ~unknowns ~period ?watermark ?checkpoint
        files
    with
    | Psm_trace.Vcd.Parse_error e ->
        Printf.eprintf "parse error: %s\n" (Psm_trace.Reader.error_to_string e);
        exit 1
    | Psm_flow.Stream_train.Checkpoint.Restore_error m | Invalid_argument m ->
        Printf.eprintf "%s\n" m;
        exit 1
  in
  Format.printf "%a@." Psm.pp result.Psm_flow.Stream_train.optimized;
  Printf.printf "streamed %d cycles over %d trace(s), %d compaction(s)\n"
    result.Psm_flow.Stream_train.cycles result.Psm_flow.Stream_train.traces_seen
    result.Psm_flow.Stream_train.compactions;
  Option.iter
    (fun path ->
      Psm_core.Dot.write_file path result.Psm_flow.Stream_train.optimized;
      Printf.printf "Wrote %s\n" path)
    dot

let train_stream_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"VCD" ~doc:"Training VCD files (with embedded __power__).")
  in
  let stream_period =
    Arg.(value & opt int 1
         & info [ "period" ] ~docv:"N"
             ~doc:"Sampling period in timescale units (default 1; streaming \
                   cannot infer the GCD of the timestamp deltas up front).")
  in
  let watermark =
    Arg.(value & opt (some int) None
         & info [ "watermark" ] ~docv:"CYCLES"
             ~doc:"Compact the in-flight pipeline every CYCLES training \
                   samples (default 4096).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Save the trainer state to FILE after every completed \
                   input file; if FILE already exists, resume from it \
                   (re-run with the same file list).")
  in
  Cmd.v
    (Cmd.info "train-stream"
       ~doc:"Mine PSMs from VCD traces incrementally, without materializing \
             any trace in memory")
    Term.(const (fun () -> train_stream) $ no_rle_arg $ files $ dot_arg
          $ unknowns_arg $ stream_period $ watermark $ checkpoint)

(* ---- apply: run a persisted model over recorded traces ---- *)

let apply model_path vcds unknowns period lint profile =
  with_profile profile @@ fun () ->
  let model = Psm_flow.Persist.load_file model_path in
  Printf.printf "Loaded model: %d states, %d transitions, %d propositions\n"
    (Psm.state_count model.Psm_flow.Persist.psm)
    (Psm.transition_count model.Psm_flow.Persist.psm)
    (Psm_mining.Prop_trace.Table.prop_count model.Psm_flow.Persist.table);
  if lint then begin
    let findings =
      Analyzer.analyze ~hmm:model.Psm_flow.Persist.hmm model.Psm_flow.Persist.psm
    in
    print_string (Report.text findings)
  end;
  List.iter
    (fun file ->
      let parsed =
        try Psm_trace.Vcd.parse_file ~unknowns ?period file
        with Psm_trace.Vcd.Parse_error e ->
          Printf.eprintf "%s: parse error: %s\n" file
            (Psm_trace.Reader.error_to_string e);
          exit 1
      in
      print_ingest file parsed.Psm_trace.Vcd.stats;
      let trace = parsed.Psm_trace.Vcd.trace in
      let result = Psm_hmm.Multi_sim.simulate model.Psm_flow.Persist.hmm trace in
      let estimate = result.Psm_hmm.Multi_sim.estimate in
      let total = Array.fold_left ( +. ) 0. estimate in
      Printf.printf "%s: %d instants, estimated energy %.6g J, WSP %.2f%%\n" file
        (Psm_trace.Functional_trace.length trace)
        total
        (100. *. result.Psm_hmm.Multi_sim.wsp);
      Format.printf "  %a@."
        Psm_flow.Coverage.pp
        (Psm_flow.Coverage.of_trace model.Psm_flow.Persist.hmm trace);
      match parsed.Psm_trace.Vcd.power with
      | Some reference ->
          let report = Psm_hmm.Accuracy.of_result ~reference result in
          Format.printf "  vs embedded reference: %a@." Psm_hmm.Accuracy.pp report
      | None -> ())
    vcds

let apply_cmd =
  let model =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"Persisted model.")
  in
  let vcds =
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"VCD" ~doc:"Traces to estimate.")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Estimate power for recorded traces with a persisted model")
    Term.(const (fun () -> apply) $ no_rle_arg $ model $ vcds $ unknowns_arg
          $ period_arg $ lint_flag $ profile_arg)

(* ---- stats: run-length structure of a trace ---- *)

module Runs = Psm_trace.Runs

let print_run_stats label runs =
  Printf.printf
    "%s: %d cycles in %d run(s), compression %.4f (mean run %.2f, max run %d)\n"
    label (Runs.total runs) (Runs.count runs) (Runs.compression runs)
    (Runs.mean_run runs) (Runs.max_run runs);
  if Runs.count runs > 0 then begin
    Printf.printf "  run-length histogram:\n";
    List.iter
      (fun (b, c) ->
        Printf.printf "    [%7d, %7d): %d\n" (1 lsl b) (1 lsl (b + 1)) c)
      (Runs.histogram runs)
  end

let json_of_runs runs =
  Printf.sprintf
    "{\"cycles\":%d,\"runs\":%d,\"compression\":%.6f,\"mean_run\":%.6f,\
     \"max_run\":%d,\"histogram\":[%s]}"
    (Runs.total runs) (Runs.count runs) (Runs.compression runs)
    (Runs.mean_run runs) (Runs.max_run runs)
    (String.concat ","
       (List.map
          (fun (b, c) -> Printf.sprintf "[%d,%d]" (1 lsl b) c)
          (Runs.histogram runs)))

let stats_run model_path trace_file unknowns period json_path =
  let parsed =
    try Psm_trace.Vcd.parse_file ~unknowns ?period trace_file
    with Psm_trace.Vcd.Parse_error e ->
      Printf.eprintf "%s: parse error: %s\n" trace_file
        (Psm_trace.Reader.error_to_string e);
      exit 1
  in
  print_ingest trace_file parsed.Psm_trace.Vcd.stats;
  let trace = parsed.Psm_trace.Vcd.trace in
  let runs = Psm_trace.Functional_trace.runs trace in
  print_run_stats "samples" runs;
  let prop_runs =
    Option.map
      (fun path ->
        let model = Psm_flow.Persist.load_file path in
        let table = model.Psm_flow.Persist.table in
        let n = Psm_trace.Functional_trace.length trace in
        (* One classification per sample run; unmatched rows code to -1. *)
        let codes = Array.make n (-1) in
        Psm_trace.Functional_trace.iter_runs
          (fun ~start ~len sample ->
            match Psm_mining.Prop_trace.Table.classify table sample with
            | Some p -> Array.fill codes start len p
            | None -> ())
          trace;
        let prop_runs = Runs.scan ~equal:(fun i j -> codes.(i) = codes.(j)) n in
        print_run_stats "proposition segments" prop_runs;
        prop_runs)
      model_path
  in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "{\"trace\":%s,\"samples\":%s%s}\n"
        (Printf.sprintf "%S" trace_file)
        (json_of_runs runs)
        (match prop_runs with
        | None -> ""
        | Some pr -> ",\"prop_segments\":" ^ json_of_runs pr);
      close_out oc;
      Printf.printf "Wrote %s\n" path)
    json_path

let stats_cmd =
  let model =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"MODEL"
             ~doc:"Persisted model; adds the proposition-segment view (how \
                   the mined atoms compact the trace).")
  in
  let trace =
    Arg.(required & opt (some file) None
         & info [ "trace" ] ~docv:"VCD" ~doc:"Trace to analyze.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the statistics as JSON.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run-length structure of a trace: compression ratio and run \
             histogram, the quantities the RLE pipeline paths exploit")
    Term.(const (fun () -> stats_run) $ no_rle_arg $ model $ trace $ unknowns_arg
          $ period_arg $ json)

(* ---- lint: static analysis of a persisted model ---- *)

let lint_run model_path json strict rules profile =
  with_profile profile @@ fun () ->
  let model =
    try Psm_flow.Persist.load_file model_path
    with Psm_flow.Persist.Parse_error msg ->
      Printf.eprintf "%s: %s\n" model_path msg;
      exit 2
  in
  let config =
    { Analyzer.default with
      Analyzer.rules = (match rules with [] -> None | names -> Some names) }
  in
  let findings =
    try
      Analyzer.analyze ~config ~hmm:model.Psm_flow.Persist.hmm
        model.Psm_flow.Persist.psm
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  if json then print_string (Psm_analysis.Report.json findings)
  else print_string (Psm_analysis.Report.text findings);
  if strict && Psm_analysis.Finding.errors findings <> [] then exit 1

let lint_cmd =
  let model =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"Persisted model.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit with status 1 if any error-severity finding is reported.")
  in
  let rules =
    let available =
      String.concat ", "
        (List.map
           (fun (r : Psm_analysis.Rule.t) -> r.Psm_analysis.Rule.name)
           (Analyzer.rules ()))
    in
    Arg.(value & opt (list string) []
         & info [ "rules" ] ~docv:"NAMES"
             ~doc:(Printf.sprintf
                     "Run only these rules (comma-separated; default: all). \
                      Unknown names are rejected with the registry listing. \
                      Available: %s."
                     available))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze a persisted model (determinism, reachability, \
             power-attribute sanity, HMM stochasticity, symbolic static-* \
             proofs)")
    Term.(const (fun () -> lint_run) $ logs_arg $ model $ json $ strict $ rules
          $ profile_arg)

(* ---- verify: symbolic verification of a persisted model ---- *)

let verify_run model_path json strict coverage_budget max_gaps profile =
  with_profile profile @@ fun () ->
  let model =
    try Psm_flow.Persist.load_file model_path
    with Psm_flow.Persist.Parse_error msg ->
      Printf.eprintf "%s: %s\n" model_path msg;
      exit 2
  in
  let report =
    Psm_verify.Verify.run ?coverage_budget ?max_gaps model.Psm_flow.Persist.psm
  in
  if json then print_string (Psm_verify.Verify.json report)
  else print_string (Psm_verify.Verify.text report);
  if strict && Psm_verify.Verify.errors report <> [] then exit 1

let verify_cmd =
  let model =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"Persisted model.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit with status 1 if any error-severity finding is proved.")
  in
  let coverage_budget =
    Arg.(value & opt (some int) None
         & info [ "coverage-budget" ] ~docv:"N"
             ~doc:"Node budget for the coverage-gap search (default 4096).")
  in
  let max_gaps =
    Arg.(value & opt (some int) None
         & info [ "max-gaps" ] ~docv:"N"
             ~doc:"Maximum coverage gaps to report (default 4).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Symbolically verify a persisted model over the atom theory: \
             prove proposition feasibility/disjointness, guard determinism, \
             input coverage and assertion non-vacuity, with counterexample \
             witness valuations")
    Term.(const (fun () -> verify_run) $ logs_arg $ model $ json $ strict
          $ coverage_budget $ max_gaps $ profile_arg)

(* ---- diff: semantic model comparison ---- *)

let diff_run path_a path_b epsilon =
  let load path =
    try Psm_flow.Persist.load_file path
    with Psm_flow.Persist.Parse_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2
  in
  let a = load path_a and b = load path_b in
  let r =
    Psm_verify.Verify.equiv ~epsilon a.Psm_flow.Persist.psm
      b.Psm_flow.Persist.psm
  in
  (match r.Psm_verify.Verify.mismatch with
  | Some msg -> Printf.printf "incomparable: %s\n" msg
  | None ->
      Printf.printf "%d bisimulation classes\n"
        (List.length r.Psm_verify.Verify.blocks);
      let show what = function
        | [] -> ()
        | ids ->
            Printf.printf "%s: %s\n" what
              (String.concat ", " (List.map (Printf.sprintf "s%d") ids))
      in
      show "only in A" r.Psm_verify.Verify.only_left;
      show "only in B" r.Psm_verify.Verify.only_right;
      if not r.Psm_verify.Verify.initial_match then
        Printf.printf "initial-state multisets differ\n");
  if r.Psm_verify.Verify.equivalent then
    Printf.printf "models are bisimilar (power-label-aware)\n"
  else begin
    Printf.printf "models differ\n";
    exit 1
  end

let diff_cmd =
  let model idx name =
    Arg.(required & pos idx (some file) None & info [] ~docv:name ~doc:"Persisted model.")
  in
  let epsilon =
    Arg.(value & opt float 1e-9
         & info [ "epsilon" ] ~docv:"EPS"
             ~doc:"Power-label tolerance for the initial partition.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Semantically compare two persisted models: power-label-aware \
             partition-refinement bisimulation, indifferent to state \
             numbering and merge history (exit 1 when they differ)")
    Term.(const diff_run $ model 0 "A" $ model 1 "B" $ epsilon)

(* ---- netlist: export / report the structural netlists ---- *)

let netlist_cmd_run name verilog stats =
  match Psm_ips.Structural.netlist_for name with
  | None ->
      Printf.eprintf "no structural netlist for %s (available: %s)\n" name
        (String.concat ", " Psm_ips.Structural.available);
      exit 1
  | Some build ->
      let nl = build () in
      if stats then
        Format.printf "%a@." Psm_rtl.Netlist_stats.pp (Psm_rtl.Netlist_stats.analyze nl);
      Option.iter
        (fun path ->
          Psm_rtl.Verilog.write_file path nl;
          Printf.printf "Wrote %s\n" path)
        verilog

let netlist_cmd =
  let ip_name_arg =
    Arg.(required
         & pos 0 (some (enum (List.map (fun n -> (n, n)) Psm_ips.Structural.available)))
             None
         & info [] ~docv:"IP" ~doc:"IP with a structural netlist.")
  in
  let verilog =
    Arg.(value & opt (some string) None
         & info [ "verilog" ] ~docv:"FILE" ~doc:"Export as structural Verilog.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print gate/depth/fanout statistics.")
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Export or report a gate-level netlist")
    Term.(const netlist_cmd_run $ ip_name_arg $ verilog $ stats)

(* ---- serve: the multi-session estimation daemon ---- *)

let load_model_or_exit path =
  try Psm_flow.Persist.load_file path
  with Psm_flow.Persist.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let serve_run () model_specs socket port idle_timeout no_batch =
  let parse_spec spec =
    match String.index_opt spec '=' with
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (Filename.remove_extension (Filename.basename spec), spec)
  in
  let models =
    List.map
      (fun spec ->
        let name, path = parse_spec spec in
        (name, load_model_or_exit path))
      model_specs
  in
  let listen =
    match (socket, port) with
    | Some _, Some _ ->
        Printf.eprintf "serve: --socket and --port are mutually exclusive\n";
        exit 2
    | Some path, None -> `Unix path
    | None, Some p -> `Tcp p
    | None, None -> `Tcp 0
  in
  let server =
    try
      Psm_serve.Server.create ~idle_timeout ~batch:(not no_batch) ~listen models
    with
    | Invalid_argument msg | Failure msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 2
    | Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "serve: %s: %s %s\n" fn (Unix.error_message e) arg;
        exit 2
  in
  (match listen with
  | `Unix path ->
      Printf.printf "psmgen serve: listening on %s (%d models)\n%!" path
        (List.length models)
  | `Tcp _ ->
      Printf.printf "psmgen serve: listening on 127.0.0.1:%d (%d models)\n%!"
        (Psm_serve.Server.port server)
        (List.length models));
  Psm_serve.Server.run server

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")

let port_arg ~doc =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let models =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"MODEL"
             ~doc:"Persisted models to serve, as NAME=PATH or PATH (the name \
                   defaults to the file's basename without extension).")
  in
  let idle_timeout =
    Arg.(value & opt float 300.
         & info [ "idle-timeout" ] ~docv:"SECS"
             ~doc:"Evict sessions idle for longer than this (0 disables).")
  in
  let no_batch =
    Arg.(value & flag
         & info [ "no-batch" ]
             ~doc:"Advance sessions with the per-session reference loop \
                   instead of batched sparse sweeps (bit-identical output; \
                   for debugging and benchmarking only).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve persisted models to concurrent estimation sessions over a \
             line-delimited JSON protocol (Unix or loopback TCP socket); \
             co-resident sessions on the same model advance in batched \
             sparse forward sweeps")
    Term.(const (fun () () -> serve_run ()) $ logs_arg $ no_rle_arg $ models
          $ socket_arg
          $ port_arg
              ~doc:"Listen on loopback TCP (0 or omitted picks an ephemeral \
                    port, printed at startup)."
          $ idle_timeout $ no_batch)

(* ---- serve-drive: a protocol client for CI and smoke tests ---- *)

module Sjson = Psm_serve.Json

let serve_drive_run () socket port sessions cycles mode shutdown seed =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "serve-drive: %s\n" msg;
        exit 1)
      fmt
  in
  let fd =
    try
      match (socket, port) with
      | Some path, None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
      | None, Some p ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
          fd
      | _ ->
          Printf.eprintf "serve-drive: exactly one of --socket/--port is required\n";
          exit 2
    with Unix.Unix_error (e, fn, arg) ->
      fail "connect: %s: %s %s" fn (Unix.error_message e) arg
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rpc line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | line -> line
    | exception End_of_file -> fail "server closed the connection"
  in
  let expect_ok line =
    match Sjson.of_string line with
    | Error e -> fail "bad response JSON (%s): %s" e line
    | Ok json -> (
        match Option.bind (Sjson.member "ok" json) Sjson.to_bool with
        | Some true -> json
        | _ -> fail "server error: %s" line)
  in
  let hello = expect_ok (rpc {|{"op":"hello"}|}) in
  let models =
    match Option.bind (Sjson.member "models" hello) Sjson.to_list with
    | None | Some [] -> fail "server advertises no models"
    | Some models ->
        List.map
          (fun m ->
            match
              ( Option.bind (Sjson.member "name" m) Sjson.to_string_opt,
                Option.bind (Sjson.member "props" m) Sjson.to_int )
            with
            | Some name, Some props -> (name, props)
            | _ -> fail "malformed model entry in hello response")
          models
  in
  let nmodels = List.length models in
  let rng = Random.State.make [| seed |] in
  let session_name s = Printf.sprintf "drive-%d" s in
  for s = 0 to sessions - 1 do
    let model, _ = List.nth models (s mod nmodels) in
    let line =
      Sjson.to_string
        (Sjson.Obj
           [ ("op", Sjson.Str "open");
             ("session", Sjson.Str (session_name s));
             ("model", Sjson.Str model);
             ("mode", Sjson.Str mode) ])
    in
    ignore (expect_ok (rpc line))
  done;
  let served = ref 0 in
  let chunk = 32 in
  let remaining = Array.make (max 1 sessions) cycles in
  let continue = ref (sessions > 0) in
  while !continue do
    continue := false;
    for s = 0 to sessions - 1 do
      if remaining.(s) > 0 then begin
        let n = min chunk remaining.(s) in
        remaining.(s) <- remaining.(s) - n;
        if remaining.(s) > 0 then continue := true;
        let _, props = List.nth models (s mod nmodels) in
        let obs =
          List.init n (fun _ ->
              if props = 0 || Random.State.int rng 8 = 0 then Sjson.Null
              else Sjson.Num (float_of_int (Random.State.int rng props)))
        in
        let line =
          Sjson.to_string
            (Sjson.Obj
               [ ("op", Sjson.Str "observe");
                 ("session", Sjson.Str (session_name s));
                 ("props", Sjson.List obs) ])
        in
        let resp = expect_ok (rpc line) in
        (match Option.bind (Sjson.member "cycles" resp) Sjson.to_int with
        | Some c when c = n -> served := !served + c
        | Some c -> fail "session %s: served %d cycles, expected %d" (session_name s) c n
        | None -> fail "observe response missing \"cycles\"");
        match
          Option.map List.length
            (Option.bind (Sjson.member "power" resp) Sjson.to_list)
        with
        | Some p when p = n -> ()
        | _ -> fail "observe response power array mismatch"
      end
    done
  done;
  let stats = expect_ok (rpc {|{"op":"stats"}|}) in
  let stat name =
    match Option.bind (Sjson.member name stats) Sjson.to_int with
    | Some v -> v
    | None -> fail "stats response missing %S" name
  in
  if stat "cycles_served" < !served then
    fail "server reports %d cycles served, client counted %d"
      (stat "cycles_served") !served;
  for s = 0 to sessions - 1 do
    let line =
      Sjson.to_string
        (Sjson.Obj
           [ ("op", Sjson.Str "close");
             ("session", Sjson.Str (session_name s)) ])
    in
    ignore (expect_ok (rpc line))
  done;
  if shutdown then ignore (expect_ok (rpc {|{"op":"shutdown"}|}));
  close_in_noerr ic;
  Printf.printf
    "serve-drive: %d sessions x %d cycles over %d models ok (%d cycles, %d sweeps)\n"
    sessions cycles nmodels !served (stat "sweeps")

let serve_drive_cmd =
  let sessions =
    Arg.(value & opt int 8
         & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent sessions to open.")
  in
  let cycles =
    Arg.(value & opt int 256
         & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to stream per session.")
  in
  let mode =
    Arg.(value & opt (enum [ ("filter", "filter"); ("sim", "sim") ]) "filter"
         & info [ "mode" ] ~docv:"MODE" ~doc:"Session mode (filter or sim).")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Send a shutdown request when done.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  Cmd.v
    (Cmd.info "serve-drive"
       ~doc:"Drive a running 'psmgen serve' daemon: open sessions round-robin \
             across every advertised model, stream seeded random \
             observations, verify every response, and exit 1 on any protocol \
             or server error (a CI smoke client)")
    Term.(const serve_drive_run $ logs_arg $ socket_arg
          $ port_arg ~doc:"Connect to a loopback TCP daemon." $ sessions
          $ cycles $ mode $ shutdown $ seed)

(* ---- info ---- *)

let info_all () =
  List.iter
    (fun name ->
      let ip = make_ip name in
      Format.printf "%a@." Psm_ips.Ip.pp ip;
      List.iter
        (fun s -> Format.printf "    %a@." Psm_trace.Signal.pp s)
        (Psm_ips.Ip.input_signals ip @ Psm_ips.Ip.output_signals ip))
    ip_names

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"List benchmark IPs and their interfaces")
    Term.(const info_all $ const ())

let () =
  let doc = "automatic generation of power state machines (DATE 2016 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "psmgen" ~version:"1.0.0" ~doc)
                    [ generate_cmd; evaluate_cmd; trace_cmd; train_vcd_cmd;
                      train_stream_cmd; apply_cmd; stats_cmd; serve_cmd;
                      serve_drive_cmd; lint_cmd; verify_cmd; diff_cmd;
                      netlist_cmd; info_cmd ]))
