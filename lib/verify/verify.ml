module Bits = Psm_bits.Bits
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Table = Psm_mining.Prop_trace.Table
module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion

type severity = Error | Warning | Info

type location =
  | Model
  | Prop of int
  | State of int
  | Transition of { src : int; guard : int; dst : int }

type finding = {
  check : string;
  severity : severity;
  location : location;
  message : string;
  witness : Bits.t array option;
}

type stats = {
  propositions : int;
  atoms : int;
  infeasible_props : int;
  disjoint_pairs_proved : int;
  guard_pairs_proved : int;
  transitions_checked : int;
  coverage_gaps : int;
  coverage_complete : bool;
}

type report = {
  interface : Interface.t;
  findings : finding list;
  stats : stats;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_key = function
  | Model -> (0, 0, 0, 0)
  | Prop p -> (1, p, 0, 0)
  | State s -> (2, s, 0, 0)
  | Transition { src; guard; dst } -> (3, src, guard, dst)

let sort_findings fs =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.check b.check in
        if c <> 0 then c else compare (location_key a.location) (location_key b.location))
    fs

(* ---------- shared per-run context ---------- *)

type ctx = {
  psm : Psm.t;
  table : Table.t;
  voc : Vocabulary.t;
  iface : Interface.t;
  nprops : int;
  keys : string array;  (** Packed truth-row key per proposition. *)
  feas : Theory.verdict option array;  (** Lazy feasibility verdicts. *)
}

let make_ctx psm =
  let table = Psm.prop_table psm in
  let voc = Table.vocabulary table in
  let nprops = Table.prop_count table in
  {
    psm;
    table;
    voc;
    iface = Vocabulary.interface voc;
    nprops;
    keys = Array.init nprops (fun p -> Vocabulary.row_key (Table.row table p));
    feas = Array.make nprops None;
  }

let prop_literals ctx p = Vocabulary.literals_of_key ctx.voc ctx.keys.(p)

let feasibility_of ctx p =
  match ctx.feas.(p) with
  | Some v -> v
  | None ->
      let v = Theory.solve ctx.iface (prop_literals ctx p) in
      ctx.feas.(p) <- Some v;
      v

(* Every check is total: a vocabulary whose atoms don't fit the interface
   becomes one Error finding, never an exception out of a rule. *)
let validate_vocabulary ~check ctx =
  let defects = ref [] in
  Array.iteri
    (fun i atom ->
      match Theory.validate ctx.iface atom with
      | None -> ()
      | Some msg -> defects := Printf.sprintf "atom %d: %s" i msg :: !defects)
    (Vocabulary.atoms ctx.voc);
  match List.rev !defects with
  | [] -> None
  | defects ->
      Some
        {
          check;
          severity = Error;
          location = Model;
          message =
            "vocabulary ill-formed for the interface: "
            ^ String.concat "; " defects;
          witness = None;
        }

let literals_to_string ctx literals =
  String.concat " & " (List.map (Theory.literal_to_string ctx.iface) literals)

let pname ctx p = Table.name ctx.table p

(* ---------- feasibility ---------- *)

let feasibility_check = "static-feasibility"

let feasibility_i ctx =
  let findings = ref [] in
  let infeasible = ref 0 in
  for p = 0 to ctx.nprops - 1 do
    match feasibility_of ctx p with
    | Theory.Sat _ -> ()
    | Theory.Unsat core ->
        incr infeasible;
        findings :=
          {
            check = feasibility_check;
            severity = Error;
            location = Prop p;
            message =
              Printf.sprintf
                "proposition %s admits no input valuation (conflicting literals: %s)"
                (pname ctx p) (literals_to_string ctx core);
            witness = None;
          }
          :: !findings
  done;
  let transitions = Psm.transitions ctx.psm in
  List.iter
    (fun (t : Psm.transition) ->
      let loc = Transition { src = t.src; guard = t.guard; dst = t.dst } in
      match feasibility_of ctx t.guard with
      | Theory.Unsat core ->
          findings :=
            {
              check = feasibility_check;
              severity = Error;
              location = loc;
              message =
                Printf.sprintf
                  "transition guard %s is unsatisfiable (conflicting literals: %s)"
                  (pname ctx t.guard)
                  (literals_to_string ctx core);
              witness = None;
            }
            :: !findings
      | Theory.Sat _ ->
          let dst = Psm.state ctx.psm t.dst in
          let entries = Assertion.entry_props dst.Psm.assertion in
          if not (List.mem t.guard entries) then
            findings :=
              {
                check = feasibility_check;
                severity = Warning;
                location = loc;
                message =
                  Printf.sprintf
                    "guard %s can never start the destination assertion (entry \
                     propositions: %s)"
                    (pname ctx t.guard)
                    (String.concat ", " (List.map (pname ctx) entries));
                witness = None;
              }
              :: !findings)
    transitions;
  (List.rev !findings, List.length transitions, !infeasible)

(* ---------- disjointness ---------- *)

let disjointness_check = "static-disjointness"

(* Two complete truth rows that differ anywhere contain x and ¬x for the
   first differing atom — a two-literal contradiction, so key inequality
   IS the disjointness proof; the solver is only needed for the witness
   when a corrupt table interns the same row twice. *)
let disjointness_i ctx =
  let findings = ref [] in
  let pair_proofs = ref 0 in
  let co_sat_witness p =
    match feasibility_of ctx p with Theory.Sat w -> Some w | Theory.Unsat _ -> None
  in
  for p = 0 to ctx.nprops - 1 do
    for q = p + 1 to ctx.nprops - 1 do
      if String.equal ctx.keys.(p) ctx.keys.(q) then
        findings :=
          {
            check = disjointness_check;
            severity = Error;
            location = Prop p;
            message =
              Printf.sprintf
                "propositions %s and %s have identical truth rows — both hold on \
                 the witness valuation"
                (pname ctx p) (pname ctx q);
            witness = co_sat_witness p;
          }
          :: !findings
      else incr pair_proofs
    done
  done;
  (* Semantic guard determinism: guards leaving one state. Distinct prop
     ids have distinct rows (interning), so the same key-comparison proof
     applies. One guard enabling several destinations is nondeterministic
     but by design after [join] — the HMM resolves the choice (paper
     Sec. V) — so it grades Warning, now with the concrete valuation on
     which the choice is stochastic. *)
  let guard_pairs = Hashtbl.create 64 in
  List.iter
    (fun (st : Psm.state) ->
      let outs = Psm.successors ctx.psm st.Psm.id in
      let by_guard = Hashtbl.create 8 in
      List.iter
        (fun (t : Psm.transition) ->
          Hashtbl.replace by_guard t.Psm.guard
            (t.Psm.dst
            :: Option.value ~default:[] (Hashtbl.find_opt by_guard t.Psm.guard)))
        outs;
      let guards =
        List.sort_uniq compare
          (List.map (fun (t : Psm.transition) -> t.Psm.guard) outs)
      in
      List.iter
        (fun g ->
          let dsts = List.sort_uniq compare (Hashtbl.find by_guard g) in
          if List.length dsts > 1 then
            findings :=
              {
                check = disjointness_check;
                severity = Warning;
                location = State st.Psm.id;
                message =
                  Printf.sprintf
                    "guard %s enables transitions from s%d to %s — \
                     nondeterministic on the witness valuation (resolved \
                     stochastically by the HMM)"
                    (pname ctx g) st.Psm.id
                    (String.concat ", "
                       (List.map (Printf.sprintf "s%d") dsts));
                witness = co_sat_witness g;
              }
              :: !findings)
        guards;
      let rec pairs = function
        | [] -> ()
        | g1 :: rest ->
            List.iter
              (fun g2 ->
                let key = (min g1 g2, max g1 g2) in
                if not (Hashtbl.mem guard_pairs key) then
                  Hashtbl.replace guard_pairs key ())
              rest;
            pairs rest
      in
      pairs guards)
    (Psm.states ctx.psm);
  (List.rev !findings, !pair_proofs, Hashtbl.length guard_pairs)

(* ---------- coverage ---------- *)

let coverage_check = "static-coverage"

(* DPLL-flavoured walk of the truth-assignment trie in vocabulary atom
   order. [live] is the set of interned rows consistent with the prefix;
   while it is non-empty the branch is covered so far and no solving is
   needed. The moment it empties, the prefix deviates from every
   proposition: a satisfiable prefix is an uncovered input region
   (reported with its witness, without descending further — refining an
   uncovered cube only fragments the same gap), an unsatisfiable one
   prunes. Node count is bounded by ~2·|atoms|·(|props|+1) and further by
   [budget]. *)
let coverage_i ctx ~budget ~max_gaps =
  let atoms = Vocabulary.atoms ctx.voc in
  let natoms = Array.length atoms in
  let rows = Array.init ctx.nprops (fun p -> Table.row ctx.table p) in
  let gaps = ref [] and ngaps = ref 0 in
  let budget = ref budget and complete = ref true in
  let rec walk depth prefix_rev live =
    if !ngaps >= max_gaps then complete := false
    else if !budget <= 0 then complete := false
    else begin
      decr budget;
      if live = [] then begin
        match
          Theory.solve ~minimize_core:false ctx.iface (List.rev prefix_rev)
        with
        | Theory.Sat w ->
            incr ngaps;
            gaps := (List.rev prefix_rev, w) :: !gaps
        | Theory.Unsat _ -> ()
      end
      else if depth < natoms then begin
        let step b =
          walk (depth + 1)
            ((atoms.(depth), b) :: prefix_rev)
            (List.filter (fun r -> Array.get r depth = b) live)
        in
        step true;
        step false
      end
    end
  in
  walk 0 [] (Array.to_list rows);
  let findings =
    List.rev_map
      (fun (prefix, w) ->
        let region =
          match prefix with
          | [] -> "the entire input space (no propositions interned)"
          | literals -> literals_to_string ctx literals
        in
        {
          check = coverage_check;
          severity = Info;
          location = Model;
          message =
            Printf.sprintf
              "no proposition covers %s — statically predicted resync region"
              region;
          witness = Some w;
        })
      !gaps
  in
  (findings, !ngaps, !complete)

(* ---------- vacuity ---------- *)

let vacuity_check = "static-vacuity"

let vacuity_i ctx =
  let findings = ref [] in
  let emit severity id message =
    findings :=
      { check = vacuity_check; severity; location = State id; message; witness = None }
      :: !findings
  in
  let astr a = Assertion.to_string (pname ctx) a in
  List.iter
    (fun (st : Psm.state) ->
      let id = st.Psm.id in
      (* Unsatisfiable propositions referenced anywhere in the assertion:
         the pattern can never be observed. *)
      List.iter
        (fun p ->
          match feasibility_of ctx p with
          | Theory.Sat _ -> ()
          | Theory.Unsat _ ->
              emit Warning id
                (Printf.sprintf
                   "assertion references unsatisfiable proposition %s: %s"
                   (pname ctx p) (astr st.Psm.assertion)))
        (Assertion.props st.Psm.assertion);
      let rec structural a =
        match (a : Assertion.t) with
        | Assertion.Until (p, q) when p = q ->
            emit Info id
              (Printf.sprintf "degenerate pattern %s (p U p never completes)"
                 (astr a))
        | Assertion.Next (p, q) when p = q ->
            emit Info id (Printf.sprintf "degenerate pattern %s" (astr a))
        | Assertion.Until _ | Assertion.Next _ -> ()
        | Assertion.Seq parts ->
            let rec chain = function
              | a :: (b :: _ as rest) ->
                  let exits = Assertion.exit_props a in
                  let entries = Assertion.entry_props b in
                  if not (List.exists (fun q -> List.mem q entries) exits) then
                    emit Warning id
                      (Printf.sprintf
                         "sequential steps cannot chain: no exit of %s enters %s"
                         (astr a) (astr b));
                  chain rest
              | _ -> ()
            in
            chain parts;
            List.iter structural parts
        | Assertion.Alt parts ->
            List.iteri
              (fun i x ->
                List.iteri
                  (fun j y ->
                    if i <> j && Assertion.subsumes x y then
                      emit Info id
                        (Printf.sprintf
                           "alternative branch %s is subsumed by sibling %s"
                           (astr x) (astr y)))
                  parts)
              parts;
            List.iter structural parts
      in
      structural st.Psm.assertion)
    (Psm.states ctx.psm);
  List.rev !findings

(* ---------- public checks ---------- *)

let guarded ~check ctx f =
  match validate_vocabulary ~check ctx with
  | Some finding -> `Invalid finding
  | None -> `Ok (f ())

let findings_only ~check ctx f =
  match guarded ~check ctx f with
  | `Invalid finding -> [ finding ]
  | `Ok findings -> sort_findings findings

let feasibility psm =
  let ctx = make_ctx psm in
  findings_only ~check:feasibility_check ctx (fun () ->
      let fs, _, _ = feasibility_i ctx in
      fs)

let disjointness psm =
  let ctx = make_ctx psm in
  findings_only ~check:disjointness_check ctx (fun () ->
      let fs, _, _ = disjointness_i ctx in
      fs)

let coverage ?(budget = 4096) ?(max_gaps = 4) psm =
  let ctx = make_ctx psm in
  findings_only ~check:coverage_check ctx (fun () ->
      let fs, _, _ = coverage_i ctx ~budget ~max_gaps in
      fs)

let vacuity psm =
  let ctx = make_ctx psm in
  findings_only ~check:vacuity_check ctx (fun () -> vacuity_i ctx)

let run ?(coverage_budget = 4096) ?(max_gaps = 4) psm =
  let ctx = make_ctx psm in
  let atoms = Vocabulary.size ctx.voc in
  let base =
    {
      propositions = ctx.nprops;
      atoms;
      infeasible_props = 0;
      disjoint_pairs_proved = 0;
      guard_pairs_proved = 0;
      transitions_checked = 0;
      coverage_gaps = 0;
      coverage_complete = true;
    }
  in
  match validate_vocabulary ~check:"static-verify" ctx with
  | Some finding ->
      { interface = ctx.iface; findings = [ finding ]; stats = base }
  | None ->
      let feas_fs, transitions_checked, infeasible_props = feasibility_i ctx in
      let disj_fs, disjoint_pairs_proved, guard_pairs_proved =
        disjointness_i ctx
      in
      let cov_fs, coverage_gaps, coverage_complete =
        coverage_i ctx ~budget:coverage_budget ~max_gaps
      in
      let vac_fs = vacuity_i ctx in
      {
        interface = ctx.iface;
        findings = sort_findings (feas_fs @ disj_fs @ cov_fs @ vac_fs);
        stats =
          {
            base with
            infeasible_props;
            disjoint_pairs_proved;
            guard_pairs_proved;
            transitions_checked;
            coverage_gaps;
            coverage_complete;
          };
      }

(* ---------- witnesses and rendering ---------- *)

let witnesses report =
  List.filter_map (fun f -> f.witness) report.findings

let render_value v =
  if Bits.width v = 1 then (if Bits.get v 0 then "1" else "0")
  else "0x" ^ Bits.to_hex_string v

let bindings iface values =
  Array.to_list
    (Array.mapi
       (fun i v -> ((Interface.signal iface i).Signal.name, render_value v))
       values)

let pp_witness iface fmt values =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
    (fun fmt (n, v) -> Format.fprintf fmt "%s = %s" n v)
    fmt (bindings iface values)

let errors report =
  List.filter (fun f -> f.severity = Error) report.findings

let pp_location fmt = function
  | Model -> Format.pp_print_string fmt "model"
  | Prop p -> Format.fprintf fmt "prop %d" p
  | State s -> Format.fprintf fmt "s%d" s
  | Transition { src; guard; dst } ->
      Format.fprintf fmt "s%d --[p%d]--> s%d" src guard dst

let text report =
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) report.findings)
  in
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt
    "verify: %d propositions over %d atoms — %d errors, %d warnings, %d info@."
    report.stats.propositions report.stats.atoms (count Error) (count Warning)
    (count Info);
  Format.fprintf fmt
    "proved: %d proposition pairs disjoint, %d guard pairs deterministic, %d \
     transitions feasible%s@."
    report.stats.disjoint_pairs_proved report.stats.guard_pairs_proved
    report.stats.transitions_checked
    (if report.stats.coverage_complete then
       Format.sprintf ", coverage exhaustive (%d gaps)" report.stats.coverage_gaps
     else Format.sprintf ", coverage truncated (%d gaps)" report.stats.coverage_gaps);
  List.iter
    (fun f ->
      Format.fprintf fmt "[%s] %s %a: %s@."
        (severity_to_string f.severity)
        f.check pp_location f.location f.message;
      match f.witness with
      | None -> ()
      | Some w ->
          Format.fprintf fmt "  witness: %a@." (pp_witness report.interface) w)
    report.findings;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_json = function
  | Model -> {|{"kind":"model"}|}
  | Prop p -> Printf.sprintf {|{"kind":"prop","id":%d}|} p
  | State s -> Printf.sprintf {|{"kind":"state","id":%d}|} s
  | Transition { src; guard; dst } ->
      Printf.sprintf {|{"kind":"transition","src":%d,"guard":%d,"dst":%d}|} src
        guard dst

let witness_json iface values =
  let vals =
    Array.to_list
      (Array.map
         (fun v -> Printf.sprintf "\"%s\"" (Format.asprintf "%a" Bits.pp v))
         values)
  in
  let binds =
    List.map
      (fun (n, v) -> Printf.sprintf "\"%s = %s\"" (json_escape n) (json_escape v))
      (bindings iface values)
  in
  Printf.sprintf {|{"values":[%s],"bindings":[%s]}|} (String.concat "," vals)
    (String.concat "," binds)

let json report =
  let finding_json f =
    let witness =
      match f.witness with
      | None -> ""
      | Some w -> Printf.sprintf {|,"witness":%s|} (witness_json report.interface w)
    in
    Printf.sprintf {|{"severity":"%s","check":"%s","location":%s,"message":"%s"%s}|}
      (severity_to_string f.severity)
      (json_escape f.check) (location_json f.location) (json_escape f.message)
      witness
  in
  let s = report.stats in
  Printf.sprintf
    {|{"schema":1,"findings":[%s],"stats":{"propositions":%d,"atoms":%d,"infeasible_props":%d,"disjoint_pairs_proved":%d,"guard_pairs_proved":%d,"transitions_checked":%d,"coverage_gaps":%d,"coverage_complete":%b}}|}
    (String.concat "," (List.map finding_json report.findings))
    s.propositions s.atoms s.infeasible_props s.disjoint_pairs_proved
    s.guard_pairs_proved s.transitions_checked s.coverage_gaps
    s.coverage_complete

(* ---------- semantic model diff ---------- *)

type equiv_report = {
  equivalent : bool;
  blocks : (int list * int list) list;
  only_left : int list;
  only_right : int list;
  initial_match : bool;
  mismatch : string option;
}

let all_ids psm = List.map (fun (s : Psm.state) -> s.Psm.id) (Psm.states psm)

let incompatible a b msg =
  {
    equivalent = false;
    blocks = [];
    only_left = all_ids a;
    only_right = all_ids b;
    initial_match = false;
    mismatch = Some msg;
  }

let interfaces_compatible ia ib =
  Interface.arity ia = Interface.arity ib
  && List.for_all
       (fun i ->
         let sa = Interface.signal ia i and sb = Interface.signal ib i in
         sa.Signal.width = sb.Signal.width
         && sa.Signal.direction = sb.Signal.direction)
       (List.init (Interface.arity ia) Fun.id)

(* Guard alphabet: propositions of the two machines mapped into one
   symbol space. Equal vocabularies let the packed truth-row key be the
   symbol directly; otherwise propositions are matched semantically by
   mutual theory implication (and infeasible rows map to a dead symbol
   whose transitions can never fire and are dropped). *)
let make_symbolizer iface ctxa ctxb =
  let va = Vocabulary.atoms ctxa.voc and vb = Vocabulary.atoms ctxb.voc in
  let same_vocab =
    Array.length va = Array.length vb
    && Array.for_all2 (fun x y -> Atomic.equal x y) va vb
  in
  if same_vocab then begin
    let syms = Hashtbl.create 64 and next = ref 0 in
    let of_key key =
      match Hashtbl.find_opt syms key with
      | Some s -> s
      | None ->
          let s = !next in
          incr next;
          Hashtbl.replace syms key s;
          s
    in
    fun side p ->
      let ctx = if side = 0 then ctxa else ctxb in
      of_key ctx.keys.(p)
  end
  else begin
    let reps = ref [] (* (literals, symbol) in first-seen order *) in
    let next = ref 0 in
    let memo = Hashtbl.create 64 in
    fun side p ->
      match Hashtbl.find_opt memo (side, p) with
      | Some s -> s
      | None ->
          let ctx = if side = 0 then ctxa else ctxb in
          let literals = prop_literals ctx p in
          let s =
            match Theory.solve ~minimize_core:false iface literals with
            | Theory.Unsat _ -> -1 (* dead: this guard can never fire *)
            | Theory.Sat _ -> (
                let matches (other, _) =
                  List.for_all (Theory.implies iface literals) other
                  && List.for_all (Theory.implies iface other) literals
                in
                match List.find_opt matches !reps with
                | Some (_, s) -> s
                | None ->
                    let s = !next in
                    incr next;
                    reps := !reps @ [ (literals, s) ];
                    s)
          in
          Hashtbl.replace memo (side, p) s;
          s
  end

let label_of (st : Psm.state) =
  match st.Psm.output with
  | Psm.Const mu -> (0, 0., mu)
  | Psm.Affine { slope; intercept } -> (1, slope, intercept)

let equiv ?(epsilon = 1e-9) a b =
  let ctxa = make_ctx a and ctxb = make_ctx b in
  if not (interfaces_compatible ctxa.iface ctxb.iface) then
    incompatible a b "interfaces differ (arity, widths or directions)"
  else
    let voc_defect ctx =
      Array.exists
        (fun atom -> Theory.validate ctx.iface atom <> None)
        (Vocabulary.atoms ctx.voc)
    in
    if voc_defect ctxa || voc_defect ctxb then
      incompatible a b "a vocabulary is ill-formed for its interface"
    else begin
      let sym = make_symbolizer ctxa.iface ctxa ctxb in
      let sa = Psm.states a and sb = Psm.states b in
      let universe =
        Array.of_list
          (List.map (fun s -> (0, s)) sa @ List.map (fun s -> (1, s)) sb)
      in
      let n = Array.length universe in
      let uidx = Hashtbl.create n in
      Array.iteri
        (fun u (side, (st : Psm.state)) ->
          Hashtbl.replace uidx (side, st.Psm.id) u)
        universe;
      (* Initial partition: power labels, grouped with epsilon chaining so
         float noise between the two trainings doesn't split blocks. *)
      let labels =
        Array.map (fun (_, st) -> label_of st) universe
      in
      let order = Array.init n Fun.id in
      Array.sort (fun u v -> compare labels.(u) labels.(v)) order;
      let block = Array.make n 0 in
      let nblocks = ref 0 in
      Array.iteri
        (fun i u ->
          if i = 0 then nblocks := 1
          else begin
            let (k1, s1, m1) = labels.(order.(i - 1)) and (k2, s2, m2) = labels.(u) in
            if
              not
                (k1 = k2
                && Float.abs (s1 -. s2) <= epsilon
                && Float.abs (m1 -. m2) <= epsilon)
            then incr nblocks
          end;
          block.(u) <- !nblocks - 1)
        order;
      (* Outgoing (symbol, destination) per universe index, dead symbols
         dropped — an infeasible guard constrains nothing. *)
      let trans =
        Array.map
          (fun (side, (st : Psm.state)) ->
            let psm = if side = 0 then a else b in
            List.filter_map
              (fun (t : Psm.transition) ->
                let s = sym side t.Psm.guard in
                if s < 0 then None
                else Some (s, Hashtbl.find uidx (side, t.Psm.dst)))
              (Psm.successors psm st.Psm.id))
          universe
      in
      (* Kanellakis–Smolka refinement: the signature of a state is its
         block plus its (symbol, successor block) set; equal counts before
         and after means the partition is stable (each pass refines). *)
      let stable = ref false in
      while not !stable do
        let table = Hashtbl.create n and next = ref 0 in
        let newblock =
          Array.mapi
            (fun u _ ->
              let signature =
                ( block.(u),
                  List.sort_uniq compare
                    (List.map (fun (s, d) -> (s, block.(d))) trans.(u)) )
              in
              match Hashtbl.find_opt table signature with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.replace table signature id;
                  id)
            universe
        in
        stable := !next = !nblocks;
        nblocks := !next;
        Array.blit newblock 0 block 0 n
      done;
      let members = Array.make !nblocks ([], []) in
      for u = n - 1 downto 0 do
        let side, (st : Psm.state) = universe.(u) in
        let l, r = members.(block.(u)) in
        members.(block.(u)) <-
          (if side = 0 then (st.Psm.id :: l, r) else (l, st.Psm.id :: r))
      done;
      let blocks = Array.to_list members in
      let only_left =
        List.concat_map (fun (l, r) -> if r = [] then l else []) blocks
      in
      let only_right =
        List.concat_map (fun (l, r) -> if l = [] then r else []) blocks
      in
      let initial_blocks side psm =
        List.sort compare
          (List.map (fun id -> block.(Hashtbl.find uidx (side, id))) (Psm.initial psm))
      in
      let initial_match = initial_blocks 0 a = initial_blocks 1 b in
      {
        equivalent = only_left = [] && only_right = [] && initial_match;
        blocks;
        only_left = List.sort compare only_left;
        only_right = List.sort compare only_right;
        initial_match;
        mismatch = None;
      }
    end
