(** An exact satisfiability decision procedure for the atom fragment.

    The mined atom language ({!Psm_mining.Atomic}) is unsigned [=]/[<]/[>]
    between a bitvector signal and an equal-width constant or signal —
    a decidable theory. A conjunction of {e literals} (atoms with a
    polarity) is decided exactly:

    - per-signal domains are unions of inclusive intervals seeded from the
      {!Psm_trace.Interface} widths, narrowed by the constant literals
      ([x = c], [x ≠ c] as a hole, [x < c], [¬(x < c)], …);
    - signal–signal equalities merge signals into union-find classes
      (intersecting their domains);
    - signal–signal [<]/[≤] literals become edges of an order graph whose
      strongly connected components are collapsed (a strict edge inside an
      SCC is an immediate contradiction; a non-strict cycle forces
      equality);
    - lower bounds propagate forward in topological order over the
      condensed DAG — the minimal assignment this computes is itself the
      witness, so the forward pass alone decides satisfiability;
    - signal–signal disequalities the minimal witness happens to violate
      are case-split ([x ≠ y] ⇔ [x < y] ∨ [y < x]) and each arm re-solved.

    The procedure is exact on the fragment: [Sat w] means [w] satisfies
    every literal under {!Psm_mining.Atomic.eval}, and [Unsat core] means
    the core's literals (a subset of the input) admit no valuation at
    all. Literal sets are tiny (≤ ~64 atoms), so exactness costs
    microseconds, not model checking. *)

type literal = Psm_mining.Atomic.t * bool
(** An atom asserted ([true]) or denied ([false]). Denial flips the
    comparison semantically ([¬(x < c)] ⇔ [x ≥ c]); no extra atoms are
    needed — see {!Psm_mining.Atomic.negate} for the atom-level
    disjunction. *)

type verdict =
  | Sat of Psm_bits.Bits.t array
      (** A complete valuation, one value per interface signal (signals
          no literal mentions default to zero). *)
  | Unsat of literal list
      (** A conflicting subset of the input literals; minimal (removing
          any literal makes it satisfiable) unless core minimization was
          disabled. *)

val solve :
  ?minimize_core:bool -> Psm_trace.Interface.t -> literal list -> verdict
(** Decide the conjunction. [minimize_core] (default [true]) shrinks the
    Unsat core by deletion (one re-solve per literal); pass [false] on
    hot paths that only need the verdict.

    Raises [Invalid_argument] when a literal's atom is ill-formed for the
    interface (signal index out of range, width mismatch, self
    comparison) — use {!validate} first when the input is untrusted. *)

val validate : Psm_trace.Interface.t -> Psm_mining.Atomic.t -> string option
(** [None] when the atom is well-formed for the interface, otherwise a
    description of the defect. *)

val implies : Psm_trace.Interface.t -> literal list -> literal -> bool
(** [implies iface premises l]: does every valuation satisfying
    [premises] satisfy [l]? Decided as [premises ∧ ¬l] unsatisfiable.
    Raises like {!solve} on ill-formed atoms. *)

val pp_literal :
  Psm_trace.Interface.t -> Format.formatter -> literal -> unit
(** Renders like [we = 1] or [!(wdata > rdata)]. *)

val literal_to_string : Psm_trace.Interface.t -> literal -> string
