module Bits = Psm_bits.Bits
module Atomic = Psm_mining.Atomic
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal

type literal = Atomic.t * bool

type verdict = Sat of Bits.t array | Unsat of literal list

let pp_literal iface fmt ((atom, polarity) : literal) =
  if polarity then Atomic.pp iface fmt atom
  else Format.fprintf fmt "!(%a)" (Atomic.pp iface) atom

let literal_to_string iface l = Format.asprintf "%a" (pp_literal iface) l

let sig_width iface i = (Interface.signal iface i).Signal.width

let validate iface (atom : Atomic.t) =
  let arity = Interface.arity iface in
  if atom.Atomic.lhs < 0 || atom.Atomic.lhs >= arity then
    Some
      (Printf.sprintf "lhs signal %d out of range (interface arity %d)"
         atom.Atomic.lhs arity)
  else
    let w = sig_width iface atom.Atomic.lhs in
    match atom.Atomic.rhs with
    | Atomic.Const c ->
        if Bits.width c <> w then
          Some
            (Printf.sprintf "constant width %d does not match signal width %d"
               (Bits.width c) w)
        else None
    | Atomic.Sig j ->
        if j < 0 || j >= arity then
          Some (Printf.sprintf "rhs signal %d out of range (interface arity %d)" j arity)
        else if j = atom.Atomic.lhs then Some "signal compared to itself"
        else if sig_width iface j <> w then
          Some
            (Printf.sprintf "signal widths differ (%d vs %d)" w (sig_width iface j))
        else None

(* ---------- interval-union domains ---------- *)

(* A domain is a sorted list of disjoint inclusive [lo, hi] intervals of
   one width. Endpoints stay [Bits.t]: [Bits.to_int] fails above 62 bits
   and the mined interfaces carry 128-bit data buses. *)
module Dom = struct
  let full w = [ (Bits.zero w, Bits.ones w) ]
  let is_empty d = d = []
  let le a b = Bits.compare a b <= 0
  let lt a b = Bits.compare a b < 0

  let succ v =
    if Bits.equal v (Bits.ones (Bits.width v)) then None
    else Some (Bits.add v (Bits.of_int ~width:(Bits.width v) 1))

  let pred v =
    if Bits.is_zero v then None
    else Some (Bits.sub v (Bits.of_int ~width:(Bits.width v) 1))

  (* Keep values >= c. *)
  let inter_ge d c =
    List.filter_map
      (fun (lo, hi) ->
        if lt hi c then None else if lt lo c then Some (c, hi) else Some (lo, hi))
      d

  (* Keep values <= c. *)
  let inter_le d c =
    List.filter_map
      (fun (lo, hi) ->
        if lt c lo then None else if lt c hi then Some (lo, c) else Some (lo, hi))
      d

  let inter_gt d c = match succ c with None -> [] | Some c' -> inter_ge d c'
  let inter_lt d c = match pred c with None -> [] | Some c' -> inter_le d c'
  let mem d c = List.exists (fun (lo, hi) -> le lo c && le c hi) d
  let inter_eq d c = if mem d c then [ (c, c) ] else []

  let remove_point d c =
    List.concat_map
      (fun (lo, hi) ->
        if lt c lo || lt hi c then [ (lo, hi) ]
        else
          let left = match pred c with Some p when le lo p -> [ (lo, p) ] | _ -> [] in
          let right = match succ c with Some s when le s hi -> [ (s, hi) ] | _ -> [] in
          left @ right)
      d

  let rec inter d1 d2 =
    match (d1, d2) with
    | [], _ | _, [] -> []
    | (lo1, hi1) :: r1, (lo2, hi2) :: r2 ->
        let lo = if le lo1 lo2 then lo2 else lo1 in
        let hi = if le hi1 hi2 then hi1 else hi2 in
        let rest = if le hi1 hi2 then inter r1 d2 else inter d1 r2 in
        if le lo hi then (lo, hi) :: rest else rest

  let min_elt = function [] -> invalid_arg "Dom.min_elt: empty" | (lo, _) :: _ -> lo
end

(* ---------- union-find over interface signal indices ---------- *)

let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  (* Path compression. *)
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

(* ---------- the core procedure ---------- *)

(* Parsed shape of one solve: per-root interval domains, order edges
   between roots and the remaining var–var disequalities (with the
   literal each came from, for case splitting). *)

exception Empty_domain

let solve_raw iface (literals : literal list) =
  let arity = Interface.arity iface in
  let parent = Array.init arity (fun i -> i) in
  (* Pass 1: equalities first, so every other constraint lands on the
     final class roots. *)
  List.iter
    (fun ((atom : Atomic.t), polarity) ->
      match (atom.Atomic.rhs, atom.Atomic.cmp, polarity) with
      | Atomic.Sig j, Atomic.Eq, true -> uf_union parent atom.Atomic.lhs j
      | _ -> ())
    literals;
  (* Pass 2: constant constraints narrow the root domains; var–var
     order/disequality constraints collect for the graph phase. *)
  let domains = Hashtbl.create 8 in
  let dom root =
    match Hashtbl.find_opt domains root with
    | Some d -> d
    | None -> Dom.full (sig_width iface root)
  in
  let narrow root f =
    let d = f (dom root) in
    if Dom.is_empty d then raise Empty_domain;
    Hashtbl.replace domains root d
  in
  let edges = ref [] (* (src root, dst root, strict) : val src < / <= val dst *) in
  let diseqs = ref [] (* (root a, root b, originating literal) *) in
  try
    List.iter
      (fun (((atom : Atomic.t), polarity) as lit) ->
        let x = uf_find parent atom.Atomic.lhs in
        match atom.Atomic.rhs with
        | Atomic.Const c -> (
            match (atom.Atomic.cmp, polarity) with
            | Atomic.Eq, true -> narrow x (fun d -> Dom.inter_eq d c)
            | Atomic.Eq, false -> narrow x (fun d -> Dom.remove_point d c)
            | Atomic.Lt, true -> narrow x (fun d -> Dom.inter_lt d c)
            | Atomic.Lt, false -> narrow x (fun d -> Dom.inter_ge d c)
            | Atomic.Gt, true -> narrow x (fun d -> Dom.inter_gt d c)
            | Atomic.Gt, false -> narrow x (fun d -> Dom.inter_le d c))
        | Atomic.Sig j -> (
            let y = uf_find parent j in
            match (atom.Atomic.cmp, polarity) with
            | Atomic.Eq, true -> () (* merged in pass 1 *)
            | Atomic.Eq, false -> diseqs := (x, y, lit) :: !diseqs
            | Atomic.Lt, true -> edges := (x, y, true) :: !edges
            | Atomic.Lt, false -> edges := (y, x, false) :: !edges (* x >= y *)
            | Atomic.Gt, true -> edges := (y, x, true) :: !edges
            | Atomic.Gt, false -> edges := (x, y, false) :: !edges (* x <= y *)))
      literals;
    (* A disequality inside one equivalence class is already false. *)
    if List.exists (fun (a, b, _) -> a = b) !diseqs then `Unsat
    else begin
      (* Order graph on the roots. Collapse SCCs: a strict edge inside a
         cycle is a contradiction (x < … < x); a non-strict cycle forces
         the whole component equal, i.e. one more class merge. *)
      let nodes =
        List.sort_uniq compare
          (List.concat_map (fun (a, b, _) -> [ a; b ]) !edges)
      in
      let index = Hashtbl.create 8 in
      List.iteri (fun i n -> Hashtbl.replace index n i) nodes;
      let n = List.length nodes in
      let node = Array.of_list nodes in
      let adj = Array.make n [] in
      List.iter
        (fun (a, b, strict) ->
          let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
          adj.(ia) <- (ib, strict) :: adj.(ia))
        !edges;
      (* Tarjan. Node counts are bounded by the literal count, so the
         recursion depth is tiny. *)
      let comp = Array.make n (-1) in
      let low = Array.make n 0 and num = Array.make n (-1) in
      let on_stack = Array.make n false in
      let stack = ref [] and counter = ref 0 and ncomp = ref 0 in
      let rec strongconnect v =
        num.(v) <- !counter;
        low.(v) <- !counter;
        incr counter;
        stack := v :: !stack;
        on_stack.(v) <- true;
        List.iter
          (fun (w, _) ->
            if num.(w) = -1 then begin
              strongconnect w;
              low.(v) <- min low.(v) low.(w)
            end
            else if on_stack.(w) then low.(v) <- min low.(v) num.(w))
          adj.(v);
        if low.(v) = num.(v) then begin
          let rec pop () =
            match !stack with
            | [] -> ()
            | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- !ncomp;
                if w <> v then pop ()
          in
          pop ();
          incr ncomp
        end
      in
      for v = 0 to n - 1 do
        if num.(v) = -1 then strongconnect v
      done;
      let strict_in_scc =
        Array.exists
          (fun v ->
            List.exists (fun (w, strict) -> strict && comp.(v) = comp.(w)) adj.(v))
          (Array.init n (fun i -> i))
      in
      if strict_in_scc then `Unsat
      else begin
        (* Merge each multi-node SCC into one union-find class. *)
        let members = Array.make !ncomp [] in
        Array.iteri (fun v c -> members.(c) <- node.(v) :: members.(c)) comp;
        Array.iter
          (function
            | [] | [ _ ] -> ()
            | first :: rest -> List.iter (fun m -> uf_union parent first m) rest)
          members;
        (* Re-root the domains and condense the edges. *)
        let fold_domains () =
          let merged = Hashtbl.create 8 in
          Hashtbl.iter
            (fun root d ->
              let r = uf_find parent root in
              let d' =
                match Hashtbl.find_opt merged r with
                | Some existing -> Dom.inter existing d
                | None -> d
              in
              if Dom.is_empty d' then raise Empty_domain;
              Hashtbl.replace merged r d')
            domains;
          merged
        in
        let merged = fold_domains () in
        Hashtbl.reset domains;
        Hashtbl.iter (Hashtbl.replace domains) merged;
        let condensed = Hashtbl.create 8 in
        List.iter
          (fun (a, b, strict) ->
            let ra = uf_find parent a and rb = uf_find parent b in
            if ra <> rb then
              let prev =
                Option.value ~default:false (Hashtbl.find_opt condensed (ra, rb))
              in
              Hashtbl.replace condensed (ra, rb) (prev || strict))
          !edges;
        (* Kahn topological order over the condensed DAG, then one
           forward pass computing the minimal feasible value of every
           class: visiting u with all predecessors final, its domain
           already holds every lower bound, so min_elt is u's value, and
           pushing it through u's out-edges bounds the successors. The
           minimal assignment satisfies every edge by construction, so
           this single pass is a decision procedure, not a heuristic. *)
        let dag_nodes = List.sort_uniq compare (List.map (uf_find parent) nodes) in
        let indeg = Hashtbl.create 8 in
        List.iter (fun r -> Hashtbl.replace indeg r 0) dag_nodes;
        Hashtbl.iter
          (fun (_, dst) _ ->
            Hashtbl.replace indeg dst (1 + Hashtbl.find indeg dst))
          condensed;
        let out = Hashtbl.create 8 in
        Hashtbl.iter
          (fun (src, dst) strict ->
            Hashtbl.replace out src
              ((dst, strict) :: Option.value ~default:[] (Hashtbl.find_opt out src)))
          condensed;
        let value = Hashtbl.create 8 in
        let ready =
          ref (List.filter (fun r -> Hashtbl.find indeg r = 0) dag_nodes)
        in
        let visited = ref 0 in
        while !ready <> [] do
          (* Smallest root first: deterministic order, deterministic witness. *)
          let sorted = List.sort compare !ready in
          let u = List.hd sorted in
          ready := List.tl sorted;
          incr visited;
          let d = dom u in
          if Dom.is_empty d then raise Empty_domain;
          let v = Dom.min_elt d in
          Hashtbl.replace value u v;
          List.iter
            (fun (dst, strict) ->
              narrow dst (fun d ->
                  if strict then
                    match Dom.succ v with
                    | None -> []
                    | Some bound -> Dom.inter_ge d bound
                  else Dom.inter_ge d v);
              let deg = Hashtbl.find indeg dst - 1 in
              Hashtbl.replace indeg dst deg;
              if deg = 0 then ready := dst :: !ready)
            (Option.value ~default:[] (Hashtbl.find_opt out u))
        done;
        if !visited <> List.length dag_nodes then
          (* Unreachable: the condensation is acyclic by construction. *)
          `Unsat
        else begin
          (* Classes outside the order graph take their domain minimum;
             untouched signals take zero. *)
          let class_value root =
            match Hashtbl.find_opt value root with
            | Some v -> v
            | None -> (
                match Hashtbl.find_opt domains root with
                | Some d -> Dom.min_elt d
                | None -> Bits.zero (sig_width iface root))
          in
          let witness =
            Array.init arity (fun i -> class_value (uf_find parent i))
          in
          (* Var–var disequalities: the minimal witness either already
             separates the pair or we case-split the offending literal
             into its two strict arms and re-solve. *)
          let violated =
            List.find_opt
              (fun (a, b, _) -> Bits.equal witness.(a) witness.(b))
              !diseqs
          in
          match violated with
          | None -> `Sat witness
          | Some (_, _, ((atom : Atomic.t), _)) ->
              let arm cmp =
                List.map
                  (fun (l : literal) ->
                    let a, p = l in
                    if (not p) && Atomic.equal a atom then
                      ({ a with Atomic.cmp }, true)
                    else l)
                  literals
              in
              `Split (arm Atomic.Lt, arm Atomic.Gt)
        end
      end
    end
  with Empty_domain -> `Unsat

let rec decide iface literals =
  match solve_raw iface literals with
  | `Sat w -> Some w
  | `Unsat -> None
  | `Split (left, right) -> (
      match decide iface left with Some w -> Some w | None -> decide iface right)

(* Deletion-based core minimization: drop each literal in turn and keep
   it only when the remainder turns satisfiable. The result is 1-minimal
   and costs one re-solve per literal. *)
let minimize iface literals =
  let rec shrink kept = function
    | [] -> List.rev kept
    | l :: rest -> (
        match decide iface (List.rev_append kept rest) with
        | None -> shrink kept rest
        | Some _ -> shrink (l :: kept) rest)
  in
  shrink [] literals

let check_literals iface literals =
  List.iter
    (fun ((atom, _) : literal) ->
      match validate iface atom with
      | None -> ()
      | Some msg -> invalid_arg ("Theory.solve: ill-formed atom: " ^ msg))
    literals

let solve ?(minimize_core = true) iface literals =
  check_literals iface literals;
  match decide iface literals with
  | Some w -> Sat w
  | None -> Unsat (if minimize_core then minimize iface literals else literals)

let implies iface premises ((atom, polarity) : literal) =
  match solve ~minimize_core:false iface ((atom, not polarity) :: premises) with
  | Unsat _ -> true
  | Sat _ -> false
