(** Static verification of mined PSM artifacts over the atom theory.

    Every check here is a {e proof}, not a replay: the {!Theory} decision
    procedure is exact on the atom fragment, so a clean report means the
    property holds for {e all} input valuations — including ones the
    training traces never exercised — and every refutation carries a
    concrete witness valuation an IP workload can replay.

    The four checks mirror the paper's structural invariants:

    - {b feasibility} — every interned proposition (complete truth row,
      Sec. III-A) admits at least one input valuation, and every
      transition's guard can actually start the destination's assertion;
    - {b disjointness} — distinct propositions are pairwise mutually
      exclusive ("exactly one proposition per instant", Def. 2), and the
      guards leaving each state are pairwise non-co-satisfiable
      (semantic guard determinism — strictly stronger than comparing
      observed truth rows bitwise);
    - {b coverage} — valuations no proposition covers are statically
      predicted resync regions (paper Sec. V); reported with witnesses;
    - {b vacuity} — degenerate assertion patterns, references to
      unsatisfiable propositions, [Alt] branches subsumed by a sibling,
      and [Seq] steps that cannot chain. *)

type severity = Error | Warning | Info

type location =
  | Model
  | Prop of int  (** Interned proposition id. *)
  | State of int
  | Transition of { src : int; guard : int; dst : int }

type finding = {
  check : string;  (** Rule name, e.g. ["static-disjointness"]. *)
  severity : severity;
  location : location;
  message : string;
  witness : Psm_bits.Bits.t array option;
      (** Concrete input valuation demonstrating the finding (one value
          per interface signal), when the refutation has a model. *)
}

type stats = {
  propositions : int;
  atoms : int;
  infeasible_props : int;
  disjoint_pairs_proved : int;
      (** Proposition pairs proved mutually exclusive. *)
  guard_pairs_proved : int;
      (** Same-state guard pairs proved non-co-satisfiable. *)
  transitions_checked : int;
  coverage_gaps : int;
  coverage_complete : bool;
      (** [false] when the gap search hit its node budget or gap limit
          before exhausting the space. *)
}

type report = {
  interface : Psm_trace.Interface.t;
  findings : finding list;
  stats : stats;
}

val severity_to_string : severity -> string

(** {1 Checks}

    Each check is total: a vocabulary whose atoms are ill-formed for the
    interface yields a single [Error] finding instead of raising. *)

val feasibility : Psm_core.Psm.t -> finding list
val disjointness : Psm_core.Psm.t -> finding list

val coverage : ?budget:int -> ?max_gaps:int -> Psm_core.Psm.t -> finding list
(** Searches the truth-assignment trie for satisfiable cubes no interned
    proposition covers. [budget] (default 4096) bounds trie nodes
    visited, [max_gaps] (default 4) bounds reported gaps. *)

val vacuity : Psm_core.Psm.t -> finding list

val run : ?coverage_budget:int -> ?max_gaps:int -> Psm_core.Psm.t -> report
(** All four checks over one shared feasibility pass. *)

(** {1 Witness export} *)

val witnesses : report -> Psm_bits.Bits.t array list
(** Every witness valuation in the report, in finding order — the hook
    {!Psm_ips.Workloads.of_witnesses} replays. *)

val bindings :
  Psm_trace.Interface.t -> Psm_bits.Bits.t array -> (string * string) list
(** Signal-name/value rendering of a witness, e.g.
    [("we", "1"); ("addr", "0x7")]. *)

val pp_witness :
  Psm_trace.Interface.t -> Format.formatter -> Psm_bits.Bits.t array -> unit

(** {1 Rendering} *)

val errors : report -> finding list
val text : report -> string
val json : report -> string

(** {1 Semantic model diff} *)

type equiv_report = {
  equivalent : bool;
  blocks : (int list * int list) list;
      (** Bisimulation classes as (left state ids, right state ids). *)
  only_left : int list;  (** Left states no right state simulates. *)
  only_right : int list;
  initial_match : bool;
      (** Initial-state multisets fall in matching classes. *)
  mismatch : string option;
      (** Interface/vocabulary-level incompatibility, when the machines
          cannot even be compared state-wise. *)
}

val equiv : ?epsilon:float -> Psm_core.Psm.t -> Psm_core.Psm.t -> equiv_report
(** Power-label-aware partition-refinement bisimulation. States start
    partitioned by power output (labels within [epsilon], default 1e-9,
    coincide); blocks split until every pair of states in a block agrees,
    per guard proposition (matched semantically across the two
    vocabularies via mutual theory implication when the vocabularies
    differ), on the block of the destination. [equivalent] holds when
    every class has members on both sides and the initial multisets
    match — a semantic statement, indifferent to state numbering and
    merge history. *)
