(** SAIF (Switching Activity Interchange Format) backward-annotation
    writer.

    SAIF is what real gate-level power flows (Synopsys PrimeTime PX,
    DesignCompiler) consume as their switching-activity input; emitting it
    from a functional trace closes the loop with the EDA ecosystem this
    reproduction substitutes for. For every bit of every interface signal
    the writer reports the standard counters over the trace:

    - [T0]/[T1] — simulation time (in cycles) spent at 0 / at 1;
    - [TC] — number of 0↔1 transitions;
    - [TX]/[IG] — always 0 (two-valued simulation, no glitches).  *)

val to_string :
  ?design:string -> ?timescale:string -> Functional_trace.t -> string

val write_file :
  ?design:string -> ?timescale:string -> string -> Functional_trace.t -> unit

type counters = { t0 : int; t1 : int; tc : int }

val bit_counters : Functional_trace.t -> signal:int -> bit:int -> counters
(** The counters the writer emits for one bit — exposed for tests. *)
