(** SAIF (Switching Activity Interchange Format) backward-annotation
    writer and reader.

    SAIF is what real gate-level power flows (Synopsys PrimeTime PX,
    DesignCompiler) consume as their switching-activity input; emitting it
    from a functional trace closes the loop with the EDA ecosystem this
    reproduction substitutes for. For every bit of every interface signal
    the writer reports the standard counters over the trace:

    - [T0]/[T1] — simulation time (in cycles) spent at 0 / at 1;
    - [TC] — number of 0↔1 transitions;
    - [TX]/[IG] — always 0 (two-valued simulation, no glitches).

    The reader is a streaming s-expression walk over {!Reader.t} that
    recovers the per-net counters (ours or a third-party tool's),
    skipping constructs it does not model. *)

val to_string :
  ?design:string -> ?timescale:string -> Functional_trace.t -> string

val write_file :
  ?design:string -> ?timescale:string -> string -> Functional_trace.t -> unit

type counters = { t0 : int; t1 : int; tc : int }

val bit_counters : Functional_trace.t -> signal:int -> bit:int -> counters
(** The counters the writer emits for one bit — exposed for tests. *)

(** {1 Reading} *)

exception Parse_error of Reader.error

type parsed = {
  design : string option;  (** the [DESIGN] header, unquoted *)
  duration : int option;  (** the [DURATION] header *)
  nets : (string * counters) list;
      (** per-net counters in file order; names are instance-path
          qualified ([inst/sub/net\[3\]] with SAIF escapes removed) *)
  stats : Reader.stats;
}

val read : Reader.t -> parsed
(** Raises {!Parse_error} (with position and snippet) on malformed
    input. *)

val parse : string -> parsed

val parse_file : string -> parsed
(** {!read} over a channel — constant-memory streaming. *)
