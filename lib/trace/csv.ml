module Bits = Psm_bits.Bits

exception Parse_error of Reader.error

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some ("Csv.Parse_error: " ^ Reader.error_to_string e)
    | _ -> None)

let power_column = "power"

let header ?power iface =
  let cols =
    Interface.signals iface
    |> Array.to_list
    |> List.map (fun (s : Signal.t) ->
           Printf.sprintf "%s:%d:%s" s.name s.width
             (if Signal.is_input s then "in" else "out"))
  in
  let cols = ("time" :: cols) @ (if power = None then [] else [ power_column ]) in
  String.concat "," cols

let to_string ?power trace =
  let iface = Functional_trace.interface trace in
  (match power with
  | Some p when Power_trace.length p <> Functional_trace.length trace ->
      invalid_arg "Csv.to_string: power trace length differs from functional trace"
  | _ -> ());
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ?power iface);
  Buffer.add_char buf '\n';
  Functional_trace.iter
    (fun t sample ->
      Buffer.add_string buf (string_of_int t);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Bits.to_hex_string v))
        sample;
      (match power with
      | Some p -> Buffer.add_string buf (Printf.sprintf ",%.17g" (Power_trace.get p t))
      | None -> ());
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let write_file ?power path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?power trace))

type parsed = {
  trace : Functional_trace.t;
  power : Power_trace.t option;
  stats : Reader.stats;
}

let fail_at r msg = raise (Parse_error (Reader.error_at r msg))

let parse_column_title r title =
  match String.split_on_char ':' title with
  | [ name; w; dir ] -> (
      let width =
        match int_of_string_opt w with
        | Some w when w > 0 -> w
        | _ -> fail_at r ("bad width in column " ^ title)
      in
      match dir with
      | "in" -> Signal.input name width
      | "out" -> Signal.output name width
      | _ -> fail_at r ("bad direction in column " ^ title))
  | _ -> fail_at r ("bad column title " ^ title)

(* Lines are consumed one at a time: live memory is one row plus the
   trace being built. *)
let read r =
  let rec next_data_line () =
    match Reader.next_line r with
    | None -> None
    | Some line ->
        let line = String.trim line in
        if line = "" then next_data_line () else Some line
  in
  match next_data_line () with
  | None -> fail_at r "empty CSV"
  | Some header -> (
      let cols = String.split_on_char ',' header in
      match cols with
      | "time" :: rest ->
          let has_power =
            match List.rev rest with last :: _ -> last = power_column | [] -> false
          in
          let signal_cols =
            if has_power then List.filteri (fun i _ -> i < List.length rest - 1) rest
            else rest
          in
          if signal_cols = [] then fail_at r "no signal columns";
          let iface = Interface.create (List.map (parse_column_title r) signal_cols) in
          let builder = Functional_trace.Builder.create iface in
          let powers = ref [] in
          let expect = 1 + List.length rest in
          let changes = ref 0 in
          let rec rows () =
            match next_data_line () with
            | None -> ()
            | Some row ->
                let cells = String.split_on_char ',' row in
                if List.length cells <> expect then
                  fail_at r
                    (Printf.sprintf "row has %d cells, expected %d"
                       (List.length cells) expect);
                let cells = Array.of_list cells in
                let sample =
                  Array.init (Interface.arity iface) (fun i ->
                      let s = Interface.signal iface i in
                      try Bits.of_hex_string ~width:s.Signal.width cells.(i + 1)
                      with Invalid_argument m -> fail_at r m)
                in
                changes := !changes + Interface.arity iface;
                Functional_trace.Builder.append builder sample;
                if has_power then begin
                  match float_of_string_opt cells.(Array.length cells - 1) with
                  | Some f ->
                      incr changes;
                      powers := f :: !powers
                  | None -> fail_at r "bad power value"
                end;
                rows ()
          in
          rows ();
          let trace = Functional_trace.Builder.finish builder in
          let power =
            if has_power then
              Some (Power_trace.of_array (Array.of_list (List.rev !powers)))
            else None
          in
          { trace;
            power;
            stats =
              { Reader.bytes = Reader.bytes_read r;
                samples = Functional_trace.length trace;
                value_changes = !changes;
                unknowns_coerced = 0 } }
      | _ -> fail_at r "first column must be 'time'")

let parse text =
  let p = read (Reader.of_string text) in
  (p.trace, p.power)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let p = read (Reader.of_channel ic) in
      (p.trace, p.power))

let power_to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,energy\n";
  for t = 0 to Power_trace.length p - 1 do
    Buffer.add_string buf (Printf.sprintf "%d,%.17g\n" t (Power_trace.get p t))
  done;
  Buffer.contents buf

let power_write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (power_to_string p))
