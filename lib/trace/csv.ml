module Bits = Psm_bits.Bits

exception Parse_error of string

let power_column = "power"

let header ?power iface =
  let cols =
    Interface.signals iface
    |> Array.to_list
    |> List.map (fun (s : Signal.t) ->
           Printf.sprintf "%s:%d:%s" s.name s.width
             (if Signal.is_input s then "in" else "out"))
  in
  let cols = ("time" :: cols) @ (if power = None then [] else [ power_column ]) in
  String.concat "," cols

let to_string ?power trace =
  let iface = Functional_trace.interface trace in
  (match power with
  | Some p when Power_trace.length p <> Functional_trace.length trace ->
      invalid_arg "Csv.to_string: power trace length differs from functional trace"
  | _ -> ());
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ?power iface);
  Buffer.add_char buf '\n';
  Functional_trace.iter
    (fun t sample ->
      Buffer.add_string buf (string_of_int t);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Bits.to_hex_string v))
        sample;
      (match power with
      | Some p -> Buffer.add_string buf (Printf.sprintf ",%.17g" (Power_trace.get p t))
      | None -> ());
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let write_file ?power path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?power trace))

let parse_column_title title =
  match String.split_on_char ':' title with
  | [ name; w; dir ] -> (
      let width =
        match int_of_string_opt w with
        | Some w when w > 0 -> w
        | _ -> raise (Parse_error ("bad width in column " ^ title))
      in
      match dir with
      | "in" -> Signal.input name width
      | "out" -> Signal.output name width
      | _ -> raise (Parse_error ("bad direction in column " ^ title)))
  | _ -> raise (Parse_error ("bad column title " ^ title))

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> raise (Parse_error "empty CSV")
  | header :: rows ->
      let cols = String.split_on_char ',' header in
      (match cols with
      | "time" :: rest ->
          let has_power =
            match List.rev rest with last :: _ -> last = power_column | [] -> false
          in
          let signal_cols =
            if has_power then List.filteri (fun i _ -> i < List.length rest - 1) rest
            else rest
          in
          if signal_cols = [] then raise (Parse_error "no signal columns");
          let iface = Interface.create (List.map parse_column_title signal_cols) in
          let builder = Functional_trace.Builder.create iface in
          let powers = ref [] in
          List.iter
            (fun row ->
              let cells = String.split_on_char ',' row in
              let expect = 1 + List.length rest in
              if List.length cells <> expect then
                raise
                  (Parse_error
                     (Printf.sprintf "row has %d cells, expected %d"
                        (List.length cells) expect));
              let cells = Array.of_list cells in
              let sample =
                Array.init (Interface.arity iface) (fun i ->
                    let s = Interface.signal iface i in
                    try Bits.of_hex_string ~width:s.Signal.width cells.(i + 1)
                    with Invalid_argument m -> raise (Parse_error m))
              in
              Functional_trace.Builder.append builder sample;
              if has_power then begin
                match float_of_string_opt cells.(Array.length cells - 1) with
                | Some f -> powers := f :: !powers
                | None -> raise (Parse_error "bad power value")
              end)
            rows;
          let trace = Functional_trace.Builder.finish builder in
          let power =
            if has_power then
              Some (Power_trace.of_array (Array.of_list (List.rev !powers)))
            else None
          in
          (trace, power)
      | _ -> raise (Parse_error "first column must be 'time'"))

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse (really_input_string ic len))

let power_to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,energy\n";
  for t = 0 to Power_trace.length p - 1 do
    Buffer.add_string buf (Printf.sprintf "%d,%.17g\n" t (Power_trace.get p t))
  done;
  Buffer.contents buf

let power_write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (power_to_string p))
