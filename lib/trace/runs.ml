(* Run-length structure of a trace: the maximal stretches of identical
   samples. Power traces are overwhelmingly run-structured (idle gaps,
   steady compute phases), and every run-aware pipeline stage — row
   interning, pair mining, Xu extension, serve-side classification —
   collapses its per-cycle work to one unit of work per run. The
   structure is descriptive only: consumers must prove (and the test
   suite pins) that their per-run arithmetic replicates the per-cycle
   reference bit-for-bit. *)

(* The global escape hatch. Default on; PSM_NO_RLE=1 (or --no-rle on the
   CLI) switches every consumer back to the per-cycle reference path. *)
let enabled =
  ref
    (match Sys.getenv_opt "PSM_NO_RLE" with
    | None | Some ("" | "0" | "false") -> true
    | Some _ -> false)

let use () = !enabled
let set_enabled b = enabled := b

let with_enabled b f =
  let saved = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(* [starts] has one sentinel past the end: run [i] covers instants
   [starts.(i), starts.(i+1)). An empty trace is [| 0 |]. *)
type t = { starts : int array }

let count t = Array.length t.starts - 1
let total t = t.starts.(count t)

let check_run t i =
  if i < 0 || i >= count t then invalid_arg "Runs: run index out of range"

let start t i =
  check_run t i;
  t.starts.(i)

let length_at t i =
  check_run t i;
  t.starts.(i + 1) - t.starts.(i)

let compression t =
  if total t = 0 then 1. else float_of_int (count t) /. float_of_int (total t)

let mean_run t = if count t = 0 then 0. else float_of_int (total t) /. float_of_int (count t)

let max_run t =
  let m = ref 0 in
  for i = 0 to count t - 1 do
    let l = t.starts.(i + 1) - t.starts.(i) in
    if l > !m then m := l
  done;
  !m

let iter t f =
  for i = 0 to count t - 1 do
    f ~index:i ~start:t.starts.(i) ~len:(t.starts.(i + 1) - t.starts.(i))
  done

let of_rev_starts ~length rev_starts =
  let k = List.length rev_starts in
  let starts = Array.make (k + 1) length in
  let i = ref (k - 1) in
  List.iter
    (fun s ->
      starts.(!i) <- s;
      decr i)
    rev_starts;
  if k > 0 && starts.(0) <> 0 then invalid_arg "Runs: first run must start at 0";
  if k = 0 && length <> 0 then invalid_arg "Runs: no runs over a non-empty trace";
  for i = 0 to k - 1 do
    if starts.(i) >= starts.(i + 1) then invalid_arg "Runs: starts not increasing"
  done;
  { starts }

let scan ~equal n =
  if n < 0 then invalid_arg "Runs.scan: negative length";
  let rev = ref [] in
  for i = 0 to n - 1 do
    if i = 0 || not (equal (i - 1) i) then rev := i :: !rev
  done;
  of_rev_starts ~length:n !rev

(* Run-length histogram in power-of-two buckets: entry (b, c) counts the
   [c] runs whose length lies in [2^b, 2^(b+1)). *)
let histogram t =
  let buckets = Hashtbl.create 8 in
  for i = 0 to count t - 1 do
    let l = t.starts.(i + 1) - t.starts.(i) in
    let b = ref 0 in
    while l lsr (!b + 1) > 0 do
      incr b
    done;
    Hashtbl.replace buckets !b
      (1 + Option.value ~default:0 (Hashtbl.find_opt buckets !b))
  done;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) buckets [] |> List.sort compare

let pp fmt t =
  Format.fprintf fmt "%d runs over %d instants (%.4f runs/cycle, mean run %.1f, max %d)"
    (count t) (total t) (compression t) (mean_run t) (max_run t)
