type t = float array

let of_array a =
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then
        invalid_arg "Power_trace.of_array: energies must be non-negative")
    a;
  Array.copy a

let length = Array.length
let get t i = t.(i)
let to_array = Array.copy

let attributes t ~start ~stop =
  let mu = Psm_stats.Descriptive.mean_slice t ~start ~stop in
  let sigma = Psm_stats.Descriptive.stddev_slice t ~start ~stop in
  (mu, sigma, stop - start + 1)

let total_energy = Array.fold_left ( +. ) 0.

let mean t =
  if Array.length t = 0 then invalid_arg "Power_trace.mean: empty trace";
  total_energy t /. float_of_int (Array.length t)

let sub t ~start ~stop =
  if start < 0 || stop >= Array.length t || stop < start then
    invalid_arg "Power_trace.sub: bad range";
  Array.sub t start (stop - start + 1)

let append = Array.append

let mean_relative_error ~reference ~estimate =
  let n = Array.length reference in
  if n <> Array.length estimate then
    invalid_arg "Power_trace.mean_relative_error: traces of different lengths";
  if n = 0 then invalid_arg "Power_trace.mean_relative_error: empty traces";
  let mu_ref = mean reference in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let err = abs_float (estimate.(i) -. reference.(i)) in
    (* Zero-reference instants are normalized by the trace-wide mean rather
       than dropped: dropping them would reward models that guess wildly
       exactly where the design is quiescent. *)
    let denom = if reference.(i) > 0. then reference.(i) else mu_ref in
    acc := !acc +. (if denom > 0. then err /. denom else 0.)
  done;
  !acc /. float_of_int n

let pp_summary fmt t =
  if Array.length t = 0 then Format.fprintf fmt "empty power trace"
  else
    Format.fprintf fmt "power trace of %d instants, mean %.4g, total %.4g"
      (Array.length t) (mean t) (total_energy t)
