(** Signal declarations: the observable variables of an IP.

    Per the paper (Def. 2), the mining procedure predicates only over the
    primary inputs (PIs) and primary outputs (POs) of the model under
    analysis — no instrumentation of internals is required. *)

type direction = Input | Output

type t = { name : string; width : int; direction : direction }

val input : string -> int -> t
(** [input name width]. Raises [Invalid_argument] on non-positive width or
    empty name. *)

val output : string -> int -> t

val is_input : t -> bool
val is_output : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
