type t = {
  refill : bytes -> int;  (* refills [buf] from the start; 0 means EOF *)
  buf : bytes;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable eof : bool;
  mutable base : int;  (* bytes consumed in previous buffer fills *)
  mutable cur_line : int;
  mutable cur_column : int;
  tok_buf : Buffer.t;
  mutable tok_line : int;
  mutable tok_column : int;
  mutable last_lexeme : string;
}

let make ?(line = 1) ~buf ~pos ~len ~refill () =
  { refill;
    buf;
    pos;
    len;
    eof = false;
    base = -pos;
    cur_line = line;
    cur_column = 1;
    tok_buf = Buffer.create 64;
    tok_line = line;
    tok_column = 1;
    last_lexeme = "" }

let of_channel ?(buffer = 65536) ic =
  let buf = Bytes.create (max 1 buffer) in
  make ~buf ~pos:0 ~len:0 ~refill:(fun b -> input ic b 0 (Bytes.length b)) ()

let of_string s =
  make ~buf:(Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
    ~refill:(fun _ -> 0) ()

let of_substring ?(line = 1) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Reader.of_substring";
  make ~line ~buf:(Bytes.unsafe_of_string s) ~pos ~len:(pos + len)
    ~refill:(fun _ -> 0) ()

let peek t =
  if t.pos < t.len then Some (Bytes.unsafe_get t.buf t.pos)
  else if t.eof then None
  else begin
    t.base <- t.base + t.len;
    t.pos <- 0;
    let n = t.refill t.buf in
    t.len <- n;
    if n = 0 then begin
      t.eof <- true;
      None
    end
    else Some (Bytes.unsafe_get t.buf 0)
  end

let advance t c =
  t.pos <- t.pos + 1;
  if c = '\n' then begin
    t.cur_line <- t.cur_line + 1;
    t.cur_column <- 1
  end
  else t.cur_column <- t.cur_column + 1

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let mark_token t =
  t.tok_line <- t.cur_line;
  t.tok_column <- t.cur_column;
  Buffer.clear t.tok_buf

let finish_token t =
  let s = Buffer.contents t.tok_buf in
  t.last_lexeme <- s;
  Some s

let next_token t =
  let rec skip () =
    match peek t with
    | Some c when is_space c ->
        advance t c;
        skip ()
    | other -> other
  in
  match skip () with
  | None -> None
  | Some _ ->
      mark_token t;
      let rec take () =
        match peek t with
        | Some c when not (is_space c) ->
            Buffer.add_char t.tok_buf c;
            advance t c;
            take ()
        | _ -> ()
      in
      take ();
      finish_token t

let next_sexp_token t =
  let rec skip () =
    match peek t with
    | Some c when is_space c ->
        advance t c;
        skip ()
    | other -> other
  in
  match skip () with
  | None -> None
  | Some (('(' | ')') as c) ->
      mark_token t;
      advance t c;
      Buffer.add_char t.tok_buf c;
      finish_token t
  | Some _ ->
      mark_token t;
      let rec take () =
        match peek t with
        | Some c when (not (is_space c)) && c <> '(' && c <> ')' ->
            Buffer.add_char t.tok_buf c;
            advance t c;
            take ()
        | _ -> ()
      in
      take ();
      finish_token t

let next_line t =
  match peek t with
  | None -> None
  | Some _ ->
      mark_token t;
      let rec take () =
        match peek t with
        | None -> ()
        | Some '\n' -> advance t '\n'
        | Some c ->
            Buffer.add_char t.tok_buf c;
            advance t c;
            take ()
      in
      take ();
      let n = Buffer.length t.tok_buf in
      if n > 0 && Buffer.nth t.tok_buf (n - 1) = '\r' then
        Buffer.truncate t.tok_buf (n - 1);
      finish_token t

let position t = (t.tok_line, t.tok_column)
let line t = t.tok_line
let bytes_read t = t.base + t.pos

type error = { line : int; column : int; message : string; snippet : string }

let error_at t message =
  let snippet =
    let s = t.last_lexeme in
    if String.length s > 60 then String.sub s 0 57 ^ "..." else s
  in
  { line = t.tok_line; column = t.tok_column; message; snippet }

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s%s" e.line e.column e.message
    (if e.snippet = "" then "" else Printf.sprintf " (near %S)" e.snippet)

type unknown_policy = Zero | Reject | Count

type stats = {
  bytes : int;
  samples : int;
  value_changes : int;
  unknowns_coerced : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d samples, %d value changes, %d unknown bits coerced, %.2f MiB" s.samples
    s.value_changes s.unknowns_coerced
    (float_of_int s.bytes /. (1024. *. 1024.))
