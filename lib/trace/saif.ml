module Bits = Psm_bits.Bits

type counters = { t0 : int; t1 : int; tc : int }

let bit_counters trace ~signal ~bit =
  let n = Functional_trace.length trace in
  let t1 = ref 0 and tc = ref 0 in
  let prev = ref None in
  for time = 0 to n - 1 do
    let v = Bits.get (Functional_trace.value trace ~time ~signal) bit in
    if v then incr t1;
    (match !prev with Some p when p <> v -> incr tc | Some _ | None -> ());
    prev := Some v
  done;
  { t0 = n - !t1; t1 = !t1; tc = !tc }

(* SAIF identifiers escape brackets in bit selects. *)
let bit_name (s : Signal.t) bit =
  if s.Signal.width = 1 then s.Signal.name
  else Printf.sprintf "%s\\[%d\\]" s.Signal.name bit

let to_string ?(design = "dut") ?(timescale = "1 ns") trace =
  let iface = Functional_trace.interface trace in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "(SAIFILE\n";
  addf "  (SAIFVERSION \"2.0\")\n";
  addf "  (DIRECTION \"backward\")\n";
  addf "  (DESIGN \"%s\")\n" design;
  addf "  (VENDOR \"psm-repro\")\n";
  addf "  (DIVIDER / )\n";
  addf "  (TIMESCALE %s)\n" timescale;
  addf "  (DURATION %d)\n" (Functional_trace.length trace);
  addf "  (INSTANCE %s\n" design;
  addf "    (NET\n";
  Array.iteri
    (fun signal (s : Signal.t) ->
      for bit = 0 to s.Signal.width - 1 do
        let c = bit_counters trace ~signal ~bit in
        addf "      (%s\n" (bit_name s bit);
        addf "        (T0 %d) (T1 %d) (TX 0)\n" c.t0 c.t1;
        addf "        (TC %d) (IG 0)\n" c.tc;
        addf "      )\n"
      done)
    (Interface.signals iface);
  addf "    )\n  )\n)\n";
  Buffer.contents buf

let write_file ?design ?timescale path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?design ?timescale trace))

(* ---------------------------------------------------------------- *)
(* Reading: streaming s-expression walk over [Reader.t].             *)
(* ---------------------------------------------------------------- *)

exception Parse_error of Reader.error

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some ("Saif.Parse_error: " ^ Reader.error_to_string e)
    | _ -> None)

type parsed = {
  design : string option;
  duration : int option;
  nets : (string * counters) list;
  stats : Reader.stats;
}

let fail_at r msg = raise (Parse_error (Reader.error_at r msg))

let next r what =
  match Reader.next_sexp_token r with
  | Some tok -> tok
  | None -> fail_at r ("unexpected end of input (expected " ^ what ^ ")")

let expect r what =
  let tok = next r what in
  if tok <> what then fail_at r (Printf.sprintf "expected %s, got %s" what tok)

(* Consume the rest of an already-open list, ignoring its contents. *)
let rec skip_list r =
  match next r "')'" with
  | ")" -> ()
  | "(" ->
      skip_list r;
      skip_list r
  | _ -> skip_list r

(* Iterate the elements of an already-open list: [onlist] runs with the
   sub-list's head token already consumed and must consume its ")". *)
let elements r ~onatom ~onlist =
  let rec go () =
    match next r "element or ')'" with
    | ")" -> ()
    | "(" ->
        let key = next r "list head" in
        if key = ")" then fail_at r "empty list"
        else if key = "(" then begin
          (* Headless nested list: nothing we model, skip it whole. *)
          skip_list r;
          skip_list r
        end
        else onlist key;
        go ()
    | atom ->
        onatom atom;
        go ()
  in
  go ()

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

(* "data\[7\]" -> "data[7]" *)
let unescape s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      (if s.[!i] = '\\' && !i + 1 < String.length s then begin
         Buffer.add_char b s.[!i + 1];
         incr i
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

let int_atom r key =
  match int_of_string_opt (next r ("integer after " ^ key)) with
  | Some n -> n
  | None -> fail_at r ("bad integer after " ^ key)

(* One net entry: the head (its name) is consumed; read the counter
   lists up to the closing ")". *)
let net r ~path name =
  let t0 = ref 0 and t1 = ref 0 and tc = ref 0 in
  elements r
    ~onatom:(fun a -> fail_at r ("unexpected atom " ^ a ^ " in net"))
    ~onlist:(fun key ->
      match key with
      | "T0" ->
          t0 := int_atom r key;
          expect r ")"
      | "T1" ->
          t1 := int_atom r key;
          expect r ")"
      | "TC" ->
          tc := int_atom r key;
          expect r ")"
      | _ -> skip_list r);
  let full = String.concat "/" (List.rev (unescape name :: path)) in
  (full, { t0 = !t0; t1 = !t1; tc = !tc })

let read r =
  expect r "(";
  expect r "SAIFILE";
  let design = ref None and duration = ref None in
  let nets = ref [] in
  let rec instance path =
    elements r
      ~onatom:(fun _ -> ())
      ~onlist:(fun key ->
        match key with
        | "INSTANCE" ->
            let name = next r "instance name" in
            if name = "(" || name = ")" then fail_at r "bad INSTANCE name";
            instance (name :: path)
        | "NET" | "PORT" ->
            elements r
              ~onatom:(fun a -> fail_at r ("unexpected atom " ^ a ^ " in NET"))
              ~onlist:(fun name -> nets := net r ~path name :: !nets)
        | _ -> skip_list r)
  in
  elements r
    ~onatom:(fun a -> fail_at r ("unexpected atom " ^ a ^ " in SAIFILE"))
    ~onlist:(fun key ->
      match key with
      | "DESIGN" ->
          design := Some (unquote (next r "design name"));
          expect r ")"
      | "DURATION" ->
          duration := Some (int_atom r key);
          expect r ")"
      | "INSTANCE" ->
          let name = next r "instance name" in
          if name = "(" || name = ")" then fail_at r "bad INSTANCE name";
          instance [ name ]
      | _ -> skip_list r);
  (match Reader.next_sexp_token r with
  | None -> ()
  | Some tok -> fail_at r ("trailing input " ^ tok ^ " after SAIFILE"));
  { design = !design;
    duration = !duration;
    nets = List.rev !nets;
    stats =
      { Reader.bytes = Reader.bytes_read r;
        samples = (match !duration with Some d -> d | None -> 0);
        value_changes = List.fold_left (fun a (_, c) -> a + c.tc) 0 !nets;
        unknowns_coerced = 0 } }

let parse text = read (Reader.of_string text)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read (Reader.of_channel ic))
