module Bits = Psm_bits.Bits

type counters = { t0 : int; t1 : int; tc : int }

let bit_counters trace ~signal ~bit =
  let n = Functional_trace.length trace in
  let t1 = ref 0 and tc = ref 0 in
  let prev = ref None in
  for time = 0 to n - 1 do
    let v = Bits.get (Functional_trace.value trace ~time ~signal) bit in
    if v then incr t1;
    (match !prev with Some p when p <> v -> incr tc | Some _ | None -> ());
    prev := Some v
  done;
  { t0 = n - !t1; t1 = !t1; tc = !tc }

(* SAIF identifiers escape brackets in bit selects. *)
let bit_name (s : Signal.t) bit =
  if s.Signal.width = 1 then s.Signal.name
  else Printf.sprintf "%s\\[%d\\]" s.Signal.name bit

let to_string ?(design = "dut") ?(timescale = "1 ns") trace =
  let iface = Functional_trace.interface trace in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "(SAIFILE\n";
  addf "  (SAIFVERSION \"2.0\")\n";
  addf "  (DIRECTION \"backward\")\n";
  addf "  (DESIGN \"%s\")\n" design;
  addf "  (VENDOR \"psm-repro\")\n";
  addf "  (DIVIDER / )\n";
  addf "  (TIMESCALE %s)\n" timescale;
  addf "  (DURATION %d)\n" (Functional_trace.length trace);
  addf "  (INSTANCE %s\n" design;
  addf "    (NET\n";
  Array.iteri
    (fun signal (s : Signal.t) ->
      for bit = 0 to s.Signal.width - 1 do
        let c = bit_counters trace ~signal ~bit in
        addf "      (%s\n" (bit_name s bit);
        addf "        (T0 %d) (T1 %d) (TX 0)\n" c.t0 c.t1;
        addf "        (TC %d) (IG 0)\n" c.tc;
        addf "      )\n"
      done)
    (Interface.signals iface);
  addf "    )\n  )\n)\n";
  Buffer.contents buf

let write_file ?design ?timescale path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?design ?timescale trace))
