(** Power traces (paper Def. 2): the dynamic energy consumption of the model
    at each simulation instant, δᵢ = ½·V²dd·f·C·α(tᵢ). *)

type t

val of_array : float array -> t
(** The array is copied. Raises [Invalid_argument] on a negative entry. *)

val length : t -> int
val get : t -> int -> float

val to_array : t -> float array
(** A copy. *)

val attributes : t -> start:int -> stop:int -> float * float * int
(** [attributes t ~start ~stop] is the power-attribute triplet ⟨μ, σ, n⟩ of
    the inclusive interval: mean, sample standard deviation and number of
    instants (paper Sec. III-B, [getPowerAttributes]). *)

val total_energy : t -> float

val mean : t -> float

val sub : t -> start:int -> stop:int -> t

val append : t -> t -> t

val mean_relative_error : reference:t -> estimate:t -> float
(** MRE between a reference trace and an estimated one of the same length:
    mean over instants of |est − ref| / |ref|, skipping instants where the
    reference is zero (they contribute only through the absolute term
    |est|/μ_ref to avoid division by zero). This is the accuracy metric of
    the paper's Tables II and III. *)

val pp_summary : Format.formatter -> t -> unit
