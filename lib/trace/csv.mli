(** CSV import/export of functional and power traces.

    Layout: a header row [time,<sig>,...,<sig>[,power]] where each signal
    column is titled [name:width:dir] (dir ∈ {in, out}); one row per
    instant; signal values rendered as hexadecimal. This gives a
    spreadsheet-friendly counterpart to the VCD format.

    The reader streams rows through {!Reader.t} — one line is live at a
    time on top of the trace being built. *)

val to_string : ?power:Power_trace.t -> Functional_trace.t -> string

val write_file : ?power:Power_trace.t -> string -> Functional_trace.t -> unit

exception Parse_error of Reader.error

type parsed = {
  trace : Functional_trace.t;
  power : Power_trace.t option;
  stats : Reader.stats;
}

val read : Reader.t -> parsed
(** Raises {!Parse_error} (with line/column and the offending row) on
    malformed input. *)

val parse : string -> Functional_trace.t * Power_trace.t option
(** [read] over an in-memory string, keeping the historical signature. *)

val parse_file : string -> Functional_trace.t * Power_trace.t option
(** [read] over a channel — constant-memory row streaming. *)

val power_to_string : Power_trace.t -> string
(** Two columns, [time,energy]. *)

val power_write_file : string -> Power_trace.t -> unit
