(** CSV import/export of functional and power traces.

    Layout: a header row [time,<sig>,...,<sig>[,power]] where each signal
    column is titled [name:width:dir] (dir ∈ {in, out}); one row per
    instant; signal values rendered as hexadecimal. This gives a
    spreadsheet-friendly counterpart to the VCD format. *)

val to_string : ?power:Power_trace.t -> Functional_trace.t -> string

val write_file : ?power:Power_trace.t -> string -> Functional_trace.t -> unit

exception Parse_error of string

val parse : string -> Functional_trace.t * Power_trace.t option
(** Raises [Parse_error] on malformed input. *)

val parse_file : string -> Functional_trace.t * Power_trace.t option

val power_to_string : Power_trace.t -> string
(** Two columns, [time,energy]. *)

val power_write_file : string -> Power_trace.t -> unit
