type direction = Input | Output

type t = { name : string; width : int; direction : direction }

let make direction name width =
  if width <= 0 then invalid_arg "Signal: width must be positive";
  if name = "" then invalid_arg "Signal: name must be non-empty";
  { name; width; direction }

let input name width = make Input name width
let output name width = make Output name width

let is_input s = s.direction = Input
let is_output s = s.direction = Output

let equal a b = a.name = b.name && a.width = b.width && a.direction = b.direction

let pp fmt s =
  Format.fprintf fmt "%s %s[%d]"
    (match s.direction with Input -> "in" | Output -> "out")
    s.name s.width
