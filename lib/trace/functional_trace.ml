module Bits = Psm_bits.Bits

type t = {
  interface : Interface.t;
  samples : Bits.t array array; (* time-major *)
  mutable runs_cache : Runs.t option;
}

let same_sample a b = Array.length a = Array.length b && Array.for_all2 Bits.equal a b

let check_sample iface sample =
  let n = Interface.arity iface in
  if Array.length sample <> n then
    invalid_arg
      (Printf.sprintf "Functional_trace: sample arity %d, interface arity %d"
         (Array.length sample) n);
  Array.iteri
    (fun i v ->
      let s = Interface.signal iface i in
      if Bits.width v <> s.Signal.width then
        invalid_arg
          (Printf.sprintf
             "Functional_trace: signal %s has width %d, sample value width %d"
             s.Signal.name s.Signal.width (Bits.width v)))
    sample

module Builder = struct
  type trace = t

  type t = {
    iface : Interface.t;
    mutable rev : Bits.t array list;
    mutable n : int;
    (* Run starts in reverse order, maintained with one sample comparison
       per append so ingestion yields the run structure at zero extra pass. *)
    mutable rev_starts : int list;
  }

  let create iface = { iface; rev = []; n = 0; rev_starts = [] }

  let append b sample =
    check_sample b.iface sample;
    (match b.rev with
    | prev :: _ when same_sample prev sample -> ()
    | _ -> b.rev_starts <- b.n :: b.rev_starts);
    b.rev <- Array.copy sample :: b.rev;
    b.n <- b.n + 1

  let length b = b.n

  let finish b : trace =
    let samples = Array.make b.n [||] in
    List.iteri (fun i s -> samples.(b.n - 1 - i) <- s) b.rev;
    {
      interface = b.iface;
      samples;
      runs_cache = Some (Runs.of_rev_starts ~length:b.n b.rev_starts);
    }
end

let of_samples iface samples =
  Array.iter (check_sample iface) samples;
  { interface = iface; samples = Array.map Array.copy samples; runs_cache = None }

let interface t = t.interface
let length t = Array.length t.samples

let check_time t time =
  if time < 0 || time >= length t then
    invalid_arg (Printf.sprintf "Functional_trace: instant %d outside [0,%d)" time (length t))

let value t ~time ~signal =
  check_time t time;
  t.samples.(time).(signal)

let value_by_name t ~time name =
  value t ~time ~signal:(Interface.index t.interface name)

let sample t ~time =
  check_time t time;
  Array.copy t.samples.(time)

let iter f t = Array.iteri f t.samples

let runs t =
  match t.runs_cache with
  | Some r -> r
  | None ->
      let r =
        Runs.scan ~equal:(fun i j -> same_sample t.samples.(i) t.samples.(j)) (length t)
      in
      t.runs_cache <- Some r;
      r

let iter_runs f t =
  let r = runs t in
  Runs.iter r (fun ~index:_ ~start ~len -> f ~start ~len t.samples.(start))

let sub t ~start ~stop =
  check_time t start;
  check_time t stop;
  if stop < start then invalid_arg "Functional_trace.sub: stop < start";
  {
    interface = t.interface;
    samples = Array.sub t.samples start (stop - start + 1);
    runs_cache = None;
  }

let append a b =
  if not (Interface.equal a.interface b.interface) then
    invalid_arg "Functional_trace.append: different interfaces";
  { interface = a.interface; samples = Array.append a.samples b.samples; runs_cache = None }

let input_hamming_series t =
  let input_idx = List.map fst (Interface.inputs t.interface) in
  let n = length t in
  let series = Array.make (max n 0) 0. in
  for time = 1 to n - 1 do
    let d =
      List.fold_left
        (fun acc i ->
          acc + Bits.hamming_distance t.samples.(time).(i) t.samples.(time - 1).(i))
        0 input_idx
    in
    series.(time) <- float_of_int d
  done;
  series

let equal a b =
  Interface.equal a.interface b.interface
  && Array.length a.samples = Array.length b.samples
  && Array.for_all2 (fun x y -> Array.for_all2 Bits.equal x y) a.samples b.samples

let pp_summary fmt t =
  Format.fprintf fmt "trace of %d instants over %d signals" (length t)
    (Interface.arity t.interface)
