(** The ordered set of observable signals of an IP.

    Signal order is significant: functional-trace samples are arrays aligned
    with it, and signals are addressed by index on hot paths. *)

type t

val create : Signal.t list -> t
(** Raises [Invalid_argument] on duplicate signal names or an empty list. *)

val signals : t -> Signal.t array
val arity : t -> int

val index : t -> string -> int
(** Raises [Not_found] for an unknown signal name. *)

val signal : t -> int -> Signal.t

val inputs : t -> (int * Signal.t) list
(** Indexes and declarations of the primary inputs, in declaration order. *)

val outputs : t -> (int * Signal.t) list

val total_input_width : t -> int
(** Sum of PI widths — the denominator of input switching density and the
    "PIs" column of the paper's Table I. *)

val total_output_width : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
