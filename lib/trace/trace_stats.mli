(** Descriptive statistics over traces: per-signal toggle activity and
    interface-level switching density. Used for workload sanity checks and
    by the experiment reports. *)

type signal_activity = {
  signal : Signal.t;
  toggles : int;  (** Total bit flips across the trace. *)
  toggle_rate : float;  (** Toggles / (width × (length − 1)). *)
}

val per_signal : Functional_trace.t -> signal_activity array

val total_toggles : Functional_trace.t -> int

val switching_density : Functional_trace.t -> float
(** Fraction of observable bits that flip per cycle, averaged over the
    trace. *)

val distinct_samples : Functional_trace.t -> int
(** Number of distinct full interface valuations — an upper bound on how
    many propositions the miner can distinguish. *)

val pp_report : Format.formatter -> Functional_trace.t -> unit
