(** Run-length structure of a trace: the maximal stretches of identical
    samples, as run start offsets. Built incrementally during ingestion
    (see {!Functional_trace.Builder}) or lazily on demand; consumed by
    the run-aware mining/training/classification paths, which must stay
    bit-identical to the per-cycle reference. *)

(** {1 The global escape hatch} *)

val use : unit -> bool
(** Whether the run-length-compacted pipeline paths are enabled. Defaults
    to [true]; the [PSM_NO_RLE] environment variable (any value other
    than empty, ["0"] or ["false"]) or {!set_enabled}[ false] (the CLI's
    [--no-rle]) selects the per-cycle reference paths everywhere. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run [f] with the toggle forced to [b], restoring the previous value
    afterwards (exception-safe). For tests and benches. *)

(** {1 Run structure} *)

type t

val count : t -> int
(** Number of maximal runs. *)

val total : t -> int
(** Number of instants covered (the trace length). *)

val start : t -> int -> int
val length_at : t -> int -> int

val compression : t -> float
(** [count / total] — 1.0 means incompressible, small means long runs.
    1.0 for the empty trace. *)

val mean_run : t -> float
val max_run : t -> int

val iter : t -> (index:int -> start:int -> len:int -> unit) -> unit
(** Runs in time order. *)

val histogram : t -> (int * int) list
(** Power-of-two run-length histogram: [(b, c)] counts the [c] runs with
    length in [2^b, 2^(b+1)), ascending in [b]. *)

val scan : equal:(int -> int -> bool) -> int -> t
(** [scan ~equal n] computes the run structure of a length-[n] sequence,
    where [equal i j] decides whether instants [i] and [j] carry the same
    sample. *)

val of_rev_starts : length:int -> int list -> t
(** Run starts in reverse order (the incremental builder's accumulator);
    validates coverage of [0, length). *)

val pp : Format.formatter -> t -> unit
