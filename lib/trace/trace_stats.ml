module Bits = Psm_bits.Bits

type signal_activity = {
  signal : Signal.t;
  toggles : int;
  toggle_rate : float;
}

let per_signal trace =
  let iface = Functional_trace.interface trace in
  let n = Functional_trace.length trace in
  let counters = Array.make (Interface.arity iface) 0 in
  for t = 1 to n - 1 do
    for i = 0 to Interface.arity iface - 1 do
      counters.(i) <-
        counters.(i)
        + Bits.hamming_distance
            (Functional_trace.value trace ~time:t ~signal:i)
            (Functional_trace.value trace ~time:(t - 1) ~signal:i)
    done
  done;
  Array.mapi
    (fun i toggles ->
      let s = Interface.signal iface i in
      let cycles = max (n - 1) 1 in
      { signal = s;
        toggles;
        toggle_rate = float_of_int toggles /. float_of_int (s.Signal.width * cycles) })
    counters

let total_toggles trace =
  Array.fold_left (fun acc a -> acc + a.toggles) 0 (per_signal trace)

let switching_density trace =
  let iface = Functional_trace.interface trace in
  let bits = Interface.total_input_width iface + Interface.total_output_width iface in
  let cycles = max (Functional_trace.length trace - 1) 1 in
  float_of_int (total_toggles trace) /. float_of_int (bits * cycles)

let distinct_samples trace =
  let seen = Hashtbl.create 1024 in
  Functional_trace.iter
    (fun _ sample ->
      let key = Array.map Bits.to_hex_string sample |> Array.to_list |> String.concat "," in
      Hashtbl.replace seen key ())
    trace;
  Hashtbl.length seen

let pp_report fmt trace =
  Format.fprintf fmt "@[<v>%a@,distinct samples: %d@,switching density: %.4f@,"
    Functional_trace.pp_summary trace (distinct_samples trace)
    (switching_density trace);
  Array.iter
    (fun a ->
      Format.fprintf fmt "  %-24s toggles %8d  rate %.4f@," (a.signal.Signal.name)
        a.toggles a.toggle_rate)
    (per_signal trace);
  Format.fprintf fmt "@]"
