(** Functional traces (paper Def. 2): the evaluation of every interface
    signal at each simulation instant. *)

type t

(** {1 Construction} *)

module Builder : sig
  type trace := t
  type t

  val create : Interface.t -> t

  val append : t -> Psm_bits.Bits.t array -> unit
  (** Append one sample; the array must be aligned with the interface
      (length and per-signal widths are checked). The array is copied. *)

  val length : t -> int
  val finish : t -> trace
end

val of_samples : Interface.t -> Psm_bits.Bits.t array array -> t
(** Validates every sample as {!Builder.append} does. *)

(** {1 Observation} *)

val interface : t -> Interface.t

val length : t -> int
(** Number of simulation instants. *)

val value : t -> time:int -> signal:int -> Psm_bits.Bits.t
(** Value of signal index [signal] at instant [time]. *)

val value_by_name : t -> time:int -> string -> Psm_bits.Bits.t

val sample : t -> time:int -> Psm_bits.Bits.t array
(** Copy of the full sample at [time]. *)

val iter : (int -> Psm_bits.Bits.t array -> unit) -> t -> unit
(** [iter f t] calls [f time sample] in time order; the sample array must
    not be mutated. *)

val runs : t -> Runs.t
(** Run-length structure of the trace (maximal stretches of identical
    samples). Computed incrementally during {!Builder} ingestion; derived
    lazily (one O(T) equality scan, then cached) for traces assembled any
    other way. *)

val iter_runs : (start:int -> len:int -> Psm_bits.Bits.t array -> unit) -> t -> unit
(** [iter_runs f t] calls [f ~start ~len sample] once per maximal run of
    identical samples, in time order; [sample] is the shared row for the
    [len] instants [start, start + len) and must not be mutated. *)

val sub : t -> start:int -> stop:int -> t
(** Inclusive time window as a new trace. *)

val append : t -> t -> t
(** Concatenate two traces over the same interface. *)

val input_hamming_series : t -> float array
(** Element [i] is the Hamming distance between the concatenated
    primary-input values at instants [i] and [i - 1]; element 0 is 0.
    This is the regressor of the data-dependent-state calibration. *)

val equal : t -> t -> bool
val pp_summary : Format.formatter -> t -> unit
