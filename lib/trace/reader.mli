(** Shared incremental lexer for the trace readers (VCD, CSV, SAIF) and
    the model loader.

    A {!t} pulls characters from an [in_channel] through a fixed-size
    buffer (or walks an in-memory string without copying it), hands out
    whitespace-separated tokens, s-expression tokens or whole lines, and
    tracks the line/column position and the total byte count as it goes.
    Live memory is the buffer plus the token being assembled — a reader
    over a channel never materializes the file as a string or a token
    list, so ingestion of arbitrarily long traces runs in O(#signals)
    space on top of whatever the consumer itself retains.

    The reader also owns the two pieces of policy every trace format
    shares: structured {!error}s (position + snippet, wrapped by each
    format's [Parse_error]) and the {!unknown_policy} for 4-state
    values, together with the per-parse ingestion {!stats} record. *)

type t

val of_channel : ?buffer:int -> in_channel -> t
(** Stream from a channel through a [buffer]-byte window (default
    64 KiB). The channel stays owned by the caller. *)

val of_string : string -> t
(** Walk an in-memory string. No copy is made. *)

val of_substring : ?line:int -> string -> pos:int -> len:int -> t
(** Walk [len] bytes of [s] starting at [pos], reporting positions as if
    the slice began on line [line] (default 1). Used by the parallel VCD
    body lexer to lex one timestamp-aligned chunk. *)

(** {1 Lexing} *)

val next_token : t -> string option
(** The next whitespace-delimited token, or [None] at end of input.
    Never returns the empty string. *)

val next_sexp_token : t -> string option
(** Like {!next_token} but ['('] and [')'] are delimiters returned as
    single-character tokens — the lexing mode of the SAIF reader. *)

val next_line : t -> string option
(** The next line (without the trailing newline; a trailing ['\r'] is
    dropped), or [None] at end of input. *)

(** {1 Positions, errors, totals} *)

val position : t -> int * int
(** Line and column (both 1-based) where the most recently returned
    token or line started. *)

val line : t -> int
(** First component of {!position}. *)

val bytes_read : t -> int
(** Total bytes consumed so far; after the input is exhausted this is
    the ingested size. *)

type error = { line : int; column : int; message : string; snippet : string }
(** A structured parse error: where it happened and the offending
    lexeme. Each format wraps this in its own [Parse_error]. *)

val error_at : t -> string -> error
(** An {!error} at the position of the last token/line returned, with
    that lexeme as the snippet. *)

val error_to_string : error -> string
(** ["line L, column C: message (near \"snippet\")"]. *)

(** {1 Shared reader policy} *)

type unknown_policy =
  | Zero   (** coerce [x]/[z] to 0 silently (legacy behaviour) *)
  | Reject (** raise the format's [Parse_error] on any [x]/[z] *)
  | Count  (** coerce to 0 and tally the bits in {!stats} (default) *)

type stats = {
  bytes : int;  (** bytes ingested *)
  samples : int;  (** simulation instants produced *)
  value_changes : int;  (** value-change records applied *)
  unknowns_coerced : int;  (** unknown ([x]/[z]) bits coerced to 0 *)
}
(** Per-parse ingestion statistics. *)

val pp_stats : Format.formatter -> stats -> unit
