type t = {
  signals : Signal.t array;
  by_name : (string, int) Hashtbl.t;
}

let create sigs =
  if sigs = [] then invalid_arg "Interface.create: empty signal list";
  let signals = Array.of_list sigs in
  let by_name = Hashtbl.create (Array.length signals) in
  Array.iteri
    (fun i (s : Signal.t) ->
      if Hashtbl.mem by_name s.name then
        invalid_arg ("Interface.create: duplicate signal name " ^ s.name);
      Hashtbl.add by_name s.name i)
    signals;
  { signals; by_name }

let signals t = Array.copy t.signals
let arity t = Array.length t.signals

let index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let signal t i = t.signals.(i)

let filtered p t =
  t.signals
  |> Array.to_list
  |> List.mapi (fun i s -> (i, s))
  |> List.filter (fun (_, s) -> p s)

let inputs t = filtered Signal.is_input t
let outputs t = filtered Signal.is_output t

let total_width p t =
  List.fold_left (fun acc (_, (s : Signal.t)) -> acc + s.width) 0 (filtered p t)

let total_input_width t = total_width Signal.is_input t
let total_output_width t = total_width Signal.is_output t

let equal a b =
  Array.length a.signals = Array.length b.signals
  && Array.for_all2 Signal.equal a.signals b.signals

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut Signal.pp)
    t.signals
