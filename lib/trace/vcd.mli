(** Value Change Dump (IEEE 1364) writer and reader.

    The writer emits a standard four-state-free (two-state) VCD with one
    [$var] per interface signal, plus an optional [real] variable carrying
    the per-cycle dynamic energy, so a functional trace and its power trace
    travel in a single artifact that standard waveform viewers can open.

    The reader accepts the subset the writer emits (scalar and vector [wire]
    and [real] variables, [#]-timestamped change records, [$dumpvars]
    blocks) — enough to round-trip our own traces and to import traces
    produced by other tools that stick to common VCD. *)

val write :
  ?timescale:string ->
  ?power:Power_trace.t ->
  Buffer.t ->
  Functional_trace.t ->
  unit
(** [write buf trace] appends the VCD text to [buf]. [timescale] defaults to
    ["1ns"]. When [power] is given it must have the same length as the
    trace. Only value *changes* are dumped after the initial [$dumpvars]
    block, per the VCD convention. *)

val to_string : ?timescale:string -> ?power:Power_trace.t -> Functional_trace.t -> string

val write_file :
  ?timescale:string -> ?power:Power_trace.t -> string -> Functional_trace.t -> unit

type parsed = {
  trace : Functional_trace.t;
  power : Power_trace.t option;
  timescale : string;
}

exception Parse_error of string

val parse : string -> parsed
(** Parses VCD text. The signal directions cannot be recovered from VCD
    (which has no port-direction concept), so every wire is declared as an
    input unless its name carries the writer's [" $direction"]-free
    convention: the writer stores directions in a [$comment] block that the
    parser honours when present. The real variable named [__power__] (if
    any) becomes the power trace. Raises [Parse_error] on malformed
    input. *)

val parse_file : string -> parsed
