(** Value Change Dump (IEEE 1364) writer and streaming reader.

    The writer emits a standard two-state VCD with one [$var] per
    interface signal, plus an optional [real] variable carrying the
    per-cycle dynamic energy, so a functional trace and its power trace
    travel in a single artifact that standard waveform viewers can open.

    The reader is a streaming parser over {!Reader.t}: declarations and
    the value-change section are lexed incrementally, so a channel-backed
    read never materializes the file as a string or token list. It
    implements real VCD semantics, not just the writer's subset:

    - timestamps are {e decoded}, values are held across gaps, and one
      sample is produced per sampling-grid instant (stride = explicit
      [?period] or the GCD of the timestamp deltas); time going backwards
      is a {!Parse_error};
    - 4-state values follow the spec: undersized vectors left-extend with
      [x]/[z] when the leftmost digit is [x]/[z] (0 otherwise), and every
      unknown bit is routed through the {!Reader.unknown_policy};
    - errors carry line/column positions and the offending lexeme. *)

val write :
  ?timescale:string ->
  ?power:Power_trace.t ->
  Buffer.t ->
  Functional_trace.t ->
  unit
(** [write buf trace] appends the VCD text to [buf]. [timescale] defaults to
    ["1ns"]. When [power] is given it must have the same length as the
    trace. Only value *changes* are dumped after the initial [$dumpvars]
    block, per the VCD convention. *)

val to_string : ?timescale:string -> ?power:Power_trace.t -> Functional_trace.t -> string

val write_file :
  ?timescale:string -> ?power:Power_trace.t -> string -> Functional_trace.t -> unit

exception Parse_error of Reader.error

type parsed = {
  trace : Functional_trace.t;
  power : Power_trace.t option;
  timescale : string;
  stats : Reader.stats;
}

val read : ?unknowns:Reader.unknown_policy -> ?period:int -> Reader.t -> parsed
(** Stream a full VCD out of [r]. Signal directions cannot be recovered
    from VCD (which has no port-direction concept) unless the writer's
    [$comment directions:] block is present; wires default to inputs.
    The real variable (conventionally named [__power__]) becomes the
    power trace. [period] forces the sampling stride; otherwise it is
    the GCD of the timestamp deltas. Raises {!Parse_error} (with
    position and snippet) on malformed input, backwards time, or — under
    [~unknowns:Reject] — any [x]/[z] bit. *)

val parse :
  ?unknowns:Reader.unknown_policy ->
  ?period:int ->
  ?parallel:bool ->
  string ->
  parsed
(** Like {!read} over an in-memory string. Large inputs (≥ 4 MiB body by
    default; force with [~parallel]) lex the value-change section in
    timestamp-aligned chunks across the {!Psm_par} pool — results,
    including error positions and which error is reported first, are
    identical to the sequential path. *)

val parse_file : ?unknowns:Reader.unknown_policy -> ?period:int -> string -> parsed
(** {!read} over a channel: constant-memory ingestion of files of any
    length (plus the trace being built). *)

(** {1 Constant-memory streaming} *)

type header = { interface : Interface.t; timescale : string; has_power : bool }

val stream :
  ?unknowns:Reader.unknown_policy ->
  Reader.t ->
  init:(header -> unit) ->
  sample:(time:int -> Psm_bits.Bits.t array -> power:float -> unit) ->
  Reader.stats
(** Push-mode reading: [init] receives the declared header, then [sample]
    is called once per distinct timestamp (raw, un-resampled — gaps are
    the caller's business) with the held signal values and latest power.
    The value array is reused between calls and must not be retained.
    Nothing proportional to the trace length is allocated, which is what
    the bench harness uses to demonstrate O(#signals) ingestion. *)

(** {1 Writer internals exposed for tests} *)

val power_var_name : string

val id_code : int -> string
(** Identifier code for the [n]-th variable ('!'..'~', then multi-char). *)

val vector_value : Psm_bits.Bits.t -> string
