(* Telemetry with a switchable sink. The disabled (default) sink costs one
   atomic load and a conditional branch per instrumentation point — no
   allocation, no clock read — so the library can stay threaded through the
   hot paths of a release build. The recording sink appends to per-domain
   buffers (no locking on the record path) that are merged into one
   canonical summary at export time. *)

(* ---------- the sink switch ---------- *)

let enabled = Atomic.make false

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let () =
  match Sys.getenv_opt "PSM_OBS" with
  | Some ("1" | "true" | "yes" | "on") -> enable ()
  | Some _ | None -> ()

(* ---------- clock ---------- *)

(* Wall clock clamped to be non-decreasing per domain: spans never report
   negative durations even if the system clock steps backwards. *)
let clock_key : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.)

let now_us () =
  let last = Domain.DLS.get clock_key in
  let t = Unix.gettimeofday () *. 1e6 in
  let t = if t > !last then t else !last in
  last := t;
  t

(* ---------- per-domain buffers ---------- *)

type span_event = {
  span_name : string;
  domain : int; (* Domain.self of the recording domain *)
  seq : int; (* per-domain completion order *)
  depth : int; (* nesting depth at start; 0 = top level *)
  start_us : float;
  dur_us : float;
}

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_sumsq : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* 64 log2-width buckets, see [bucket_index] *)
}

(* Power-of-two buckets spanning [2^-32, 2^31]: observation [v] lands in
   the bucket whose upper bound is the smallest power of two >= v, so a
   percentile read off the bucket bounds overestimates by at most 2x —
   plenty for tail-latency reporting without storing observations. *)
let n_buckets = 64

let bucket_index v =
  if not (v > 0.) then 0
  else begin
    let _, e = Float.frexp v in
    (* v in (2^(e-1), 2^e]; frexp returns e with v = m * 2^e, m in [0.5,1) *)
    let idx = e + 32 in
    if idx < 0 then 0 else if idx >= n_buckets then n_buckets - 1 else idx
  end

let bucket_upper idx = Float.ldexp 1. (idx - 32)

type buffer = {
  buf_domain : int;
  mutable spans : span_event list; (* reverse completion order *)
  mutable seq : int;
  mutable depth : int;
  counters : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

(* All buffers ever created, in registration order. Buffers outlive their
   domain (pool shutdown does not lose telemetry); the mutex guards only
   registration and snapshot/reset, never the record path. *)
let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { buf_domain = (Domain.self () :> int);
          spans = [];
          seq = 0;
          depth = 0;
          counters = Hashtbl.create 16;
          histograms = Hashtbl.create 16 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let my_buffer () = Domain.DLS.get buffer_key

(* ---------- recording ---------- *)

let span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let b = my_buffer () in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = now_us () in
    (* Exception-safe: a span is closed (and recorded) even when [f]
       raises, so partial profiles survive a failing pipeline stage. *)
    Fun.protect
      ~finally:(fun () ->
        let dur = now_us () -. t0 in
        b.depth <- depth;
        b.seq <- b.seq + 1;
        b.spans <-
          { span_name = name; domain = b.buf_domain; seq = b.seq; depth;
            start_us = t0; dur_us = dur }
          :: b.spans)
      f
  end

let count name v =
  if Atomic.get enabled then begin
    let b = my_buffer () in
    match Hashtbl.find_opt b.counters name with
    | Some r -> r := !r +. float_of_int v
    | None -> Hashtbl.add b.counters name (ref (float_of_int v))
  end

let incr name = count name 1

let observe name v =
  if Atomic.get enabled then begin
    let b = my_buffer () in
    match Hashtbl.find_opt b.histograms name with
    | Some h ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_sumsq <- h.h_sumsq +. (v *. v);
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let i = bucket_index v in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1
    | None ->
        let buckets = Array.make n_buckets 0 in
        buckets.(bucket_index v) <- 1;
        Hashtbl.add b.histograms name
          { h_count = 1; h_sum = v; h_sumsq = v *. v; h_min = v; h_max = v;
            h_buckets = buckets }
  end

let gc_snapshot label =
  if Atomic.get enabled then begin
    let s = Gc.quick_stat () in
    observe ("gc." ^ label ^ ".heap_words") (float_of_int s.Gc.heap_words);
    observe ("gc." ^ label ^ ".allocated_words")
      (s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words);
    observe ("gc." ^ label ^ ".minor_collections")
      (float_of_int s.Gc.minor_collections);
    observe ("gc." ^ label ^ ".major_collections")
      (float_of_int s.Gc.major_collections)
  end

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.spans <- [];
      b.seq <- 0;
      b.depth <- 0;
      Hashtbl.reset b.counters;
      Hashtbl.reset b.histograms)
    !registry;
  Mutex.unlock registry_mutex

(* ---------- merge and summarize ---------- *)

type span_stat = {
  total_s : float;
  calls : int;
  mean_s : float;
  max_s : float;
}

type hist_stat = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

(* Smallest bucket upper bound covering fraction [q] of the count, clamped
   into the observed [min, max] range (so p99 never exceeds the true max
   and the 2x bucket-bound overestimate is bounded by reality). *)
let percentile_of_buckets h q =
  if h.h_count = 0 then 0.
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if t < 1 then 1 else if t > h.h_count then h.h_count else t
    in
    let rec scan i acc =
      if i >= n_buckets then h.h_max
      else
        let acc = acc + h.h_buckets.(i) in
        if acc >= target then bucket_upper i else scan (i + 1) acc
    in
    Float.max h.h_min (Float.min (scan 0 0) h.h_max)
  end

type summary = {
  events : span_event list; (* canonical order, see [snapshot] *)
  span_stats : (string * span_stat) list; (* sorted by name *)
  counters : (string * float) list; (* sorted by name *)
  histograms : (string * hist_stat) list; (* sorted by name *)
}

(* The merge is deterministic in the sense that the summary depends only on
   the multiset of recorded events, never on registry order, hashtable
   iteration order, or which domain performs the merge: counter and
   histogram merging is commutative and associative, and the event list is
   sorted by a total order (start time, then recording domain, then
   per-domain sequence). *)
let snapshot () =
  Mutex.lock registry_mutex;
  let buffers = List.rev !registry in
  let events =
    List.concat_map (fun b -> List.rev b.spans) buffers
    |> List.stable_sort (fun a b ->
           let c = Float.compare a.start_us b.start_us in
           if c <> 0 then c
           else
             let c = Int.compare a.domain b.domain in
             if c <> 0 then c else Int.compare a.seq b.seq)
  in
  let counter_acc = Hashtbl.create 32 in
  List.iter
    (fun (b : buffer) ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counter_acc name with
          | Some total -> Hashtbl.replace counter_acc name (total +. !r)
          | None -> Hashtbl.add counter_acc name !r)
        b.counters)
    buffers;
  let hist_acc : (string, histogram) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (b : buffer) ->
      Hashtbl.iter
        (fun name (h : histogram) ->
          match Hashtbl.find_opt hist_acc name with
          | Some acc ->
              acc.h_count <- acc.h_count + h.h_count;
              acc.h_sum <- acc.h_sum +. h.h_sum;
              acc.h_sumsq <- acc.h_sumsq +. h.h_sumsq;
              if h.h_min < acc.h_min then acc.h_min <- h.h_min;
              if h.h_max > acc.h_max then acc.h_max <- h.h_max;
              Array.iteri
                (fun i c -> acc.h_buckets.(i) <- acc.h_buckets.(i) + c)
                h.h_buckets
          | None ->
              Hashtbl.add hist_acc name
                { h_count = h.h_count; h_sum = h.h_sum; h_sumsq = h.h_sumsq;
                  h_min = h.h_min; h_max = h.h_max;
                  h_buckets = Array.copy h.h_buckets })
        b.histograms)
    buffers;
  Mutex.unlock registry_mutex;
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let total, calls, maxd =
        Option.value ~default:(0., 0, 0.) (Hashtbl.find_opt by_name e.span_name)
      in
      Hashtbl.replace by_name e.span_name
        (total +. e.dur_us, calls + 1, Float.max maxd e.dur_us))
    events;
  let sorted_assoc fold table =
    fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let span_stats =
    sorted_assoc Hashtbl.fold by_name
    |> List.map (fun (name, (total_us, calls, max_us)) ->
           ( name,
             { total_s = total_us /. 1e6;
               calls;
               mean_s = total_us /. 1e6 /. float_of_int (max 1 calls);
               max_s = max_us /. 1e6 } ))
  in
  let counters = sorted_assoc Hashtbl.fold counter_acc in
  let histograms =
    sorted_assoc Hashtbl.fold hist_acc
    |> List.map (fun (name, h) ->
           let nf = float_of_int (max 1 h.h_count) in
           let mean = h.h_sum /. nf in
           let var = Float.max 0. ((h.h_sumsq /. nf) -. (mean *. mean)) in
           ( name,
             { n = h.h_count; mean; stddev = sqrt var; min = h.h_min;
               max = h.h_max;
               p50 = percentile_of_buckets h 0.50;
               p99 = percentile_of_buckets h 0.99 } ))
  in
  { events; span_stats; counters; histograms }

let span_totals () =
  List.map (fun (name, s) -> (name, s.total_s)) (snapshot ()).span_stats

let span_total name =
  match List.assoc_opt name (span_totals ()) with Some s -> s | None -> 0.

(* ---------- exporters ---------- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_text summary =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "spans (by name):\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-32s total %9.3f ms  calls %6d  mean %9.3f ms  max %9.3f ms\n"
           name (s.total_s *. 1e3) s.calls (s.mean_s *. 1e3) (s.max_s *. 1e3)))
    summary.span_stats;
  if summary.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %.0f\n" name v))
      summary.counters
  end;
  if summary.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-32s n %6d  mean %.6g  stddev %.6g  min %.6g  p50 %.6g  p99 %.6g  max %.6g\n"
             name h.n h.mean h.stddev h.min h.p50 h.p99 h.max))
      summary.histograms
  end;
  Buffer.contents buf

let to_json summary =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": 1,\n  \"spans\": {\n";
  List.iteri
    (fun i (name, s) ->
      out
        "    \"%s\": { \"total_s\": %.9f, \"calls\": %d, \"mean_s\": %.9f, \"max_s\": %.9f }%s\n"
        (escape_json name) s.total_s s.calls s.mean_s s.max_s
        (if i = List.length summary.span_stats - 1 then "" else ","))
    summary.span_stats;
  out "  },\n  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      out "    \"%s\": %.6f%s\n" (escape_json name) v
        (if i = List.length summary.counters - 1 then "" else ","))
    summary.counters;
  out "  },\n  \"histograms\": {\n";
  List.iteri
    (fun i (name, h) ->
      out
        "    \"%s\": { \"n\": %d, \"mean\": %.9g, \"stddev\": %.9g, \"min\": %.9g, \"p50\": %.9g, \"p99\": %.9g, \"max\": %.9g }%s\n"
        (escape_json name) h.n h.mean h.stddev h.min h.p50 h.p99 h.max
        (if i = List.length summary.histograms - 1 then "" else ","))
    summary.histograms;
  out "  }\n}\n";
  Buffer.contents buf

(* Chrome trace-event format (the JSON Array Format wrapped in an object),
   loadable by chrome://tracing and Perfetto: one complete ("X") event per
   span, one metadata thread-name event per recording domain, and one final
   counter ("C") event per counter. Timestamps are microseconds rebased to
   the earliest recorded event. *)
let to_chrome summary =
  let base =
    match summary.events with [] -> 0. | e :: _ -> e.start_us
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let first = ref true in
  let emit fmt =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    ";
    Printf.ksprintf (Buffer.add_string buf) fmt
  in
  out "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  let domains =
    List.sort_uniq Int.compare (List.map (fun e -> e.domain) summary.events)
  in
  List.iter
    (fun d ->
      emit
        "{ \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \"thread_name\", \"args\": { \"name\": \"domain-%d\" } }"
        d d)
    domains;
  List.iter
    (fun e ->
      emit
        "{ \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": \"%s\", \"cat\": \"psm\", \"ts\": %.3f, \"dur\": %.3f }"
        e.domain (escape_json e.span_name) (e.start_us -. base) e.dur_us)
    summary.events;
  let end_ts =
    List.fold_left
      (fun acc e -> Float.max acc (e.start_us -. base +. e.dur_us))
      0. summary.events
  in
  List.iter
    (fun (name, v) ->
      emit
        "{ \"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"name\": \"%s\", \"ts\": %.3f, \"args\": { \"value\": %.6f } }"
        (escape_json name) end_ts v)
    summary.counters;
  out "\n  ]\n}\n";
  Buffer.contents buf

let write_chrome_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome (snapshot ())))

let write_json_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json (snapshot ())))
