(** Zero-third-party-dependency observability: hierarchical spans, counters
    and histograms, exported as a text summary, JSON, or a Chrome
    trace-event file (loadable in [chrome://tracing] and Perfetto).

    {2 Sink model}

    There is one global switch. When {e disabled} (the default) every
    instrumentation point — {!span}, {!count}, {!observe}, {!gc_snapshot} —
    costs exactly one atomic load and a branch: no allocation, no clock
    read, no buffer write. [span name f] on the disabled sink is
    observably [f ()]. When {e enabled} (via {!enable} or the [PSM_OBS=1]
    environment variable, read at module initialization) events are
    appended to a per-domain buffer with no locking on the record path.

    {2 Domain safety}

    Each domain records into its own buffer (domain-local storage), so
    {!Psm_par} workers can record concurrently with the submitting domain.
    Buffers are registered globally and outlive their domain; {!snapshot}
    merges them into one canonical summary. The merge is deterministic in
    the summary it produces: counters and histograms combine
    commutatively, and span events are sorted by (start time, recording
    domain, per-domain sequence) — never by registry or hashtable order.
    Take snapshots at quiescent points (after a parallel section has
    joined); snapshotting while workers are actively recording may miss
    in-flight events, though it never crashes.

    {2 Span taxonomy}

    Dotted names group phases: [flow.*] (pipeline stages), [mine.*]
    (vocabulary mining and proposition classification), [generate.*] (the
    XU segmentation and chain builder), [combine.*] (simplify / join /
    optimize), [hmm.*] (HMM construction and simulation), [ingest.*]
    (trace readers), [analyze.*] (static-analysis rules). *)

(** {1 The sink switch} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] on the monotonic-per-domain clock and
    records a completed span. Nestable; the recorded depth is the nesting
    level at entry. Exception-safe: the span is closed and recorded even
    when [f] raises (the exception propagates), so partial profiles
    survive failing pipeline stages. *)

val count : string -> int -> unit
(** Add to a named counter (created at zero). *)

val incr : string -> unit
(** [incr name] is [count name 1]. *)

val observe : string -> float -> unit
(** Record one observation into a named histogram. Count, mean, stddev,
    min and max are exact; p50/p99 come from 64 power-of-two buckets
    (each observation counted by the smallest power of two above it), so
    a reported percentile overestimates by at most 2x and is clamped to
    the observed range. *)

val gc_snapshot : string -> unit
(** Record allocation telemetry from [Gc.quick_stat] into histograms
    [gc.<label>.heap_words], [gc.<label>.allocated_words],
    [gc.<label>.minor_collections] and [gc.<label>.major_collections]. *)

val reset : unit -> unit
(** Clear every registered buffer. Call between profiled runs. *)

(** {1 Snapshots} *)

type span_event = {
  span_name : string;
  domain : int;
  seq : int;
  depth : int;
  start_us : float;
  dur_us : float;
}

type span_stat = { total_s : float; calls : int; mean_s : float; max_s : float }
type hist_stat = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float; (** median, from 64 power-of-two buckets: <= 2x true value *)
  p99 : float; (** tail latency, same bucket bound, clamped to [min, max] *)
}

type summary = {
  events : span_event list;
  span_stats : (string * span_stat) list;
  counters : (string * float) list;
  histograms : (string * hist_stat) list;
}

val snapshot : unit -> summary
(** Merge all per-domain buffers into one canonical summary (see the
    determinism note above). Does not clear the buffers. *)

val span_totals : unit -> (string * float) list
(** [(name, total seconds)] per distinct span name, sorted by name. *)

val span_total : string -> float
(** Total seconds recorded under one span name (0. if never recorded). *)

(** {1 Exporters} *)

val to_text : summary -> string
val to_json : summary -> string

val to_chrome : summary -> string
(** Chrome trace-event JSON: an object with a [traceEvents] array holding
    one ["X"] (complete) event per span — [ts]/[dur] in microseconds,
    [ts] rebased to the earliest event, [tid] = recording domain — plus
    thread-name metadata and one final ["C"] event per counter. *)

val write_chrome_file : string -> unit
(** [to_chrome (snapshot ())] written to a file. *)

val write_json_file : string -> unit
