(** The session checkpoint wire format (version 2).

    A checkpoint is [version line \n payload digest \n payload], where
    the payload is one JSON object carrying the model name and the
    session's {!Psm_flow.Estimate.portable} state field by field. The
    digest detects accidental corruption; it is no integrity proof — the
    blob is client-supplied, so {!decode} treats every field as hostile:
    shape validation here, semantic validation against the target model
    in {!Psm_flow.Estimate.import}. Nothing in this path ever
    [Marshal]-decodes untrusted bytes (version 1 did, and is rejected by
    its version line). *)

val version : string

val encode : model:string -> Psm_flow.Estimate.portable -> string

val decode : string -> (string * Psm_flow.Estimate.portable, string) result
(** The (model name, portable session) of a blob, or a description of
    the first framing/shape problem. *)
