(** The multi-session estimation engine behind [psmgen serve] — pure
    in-process logic, no sockets, so tests and the bench drive thousands
    of simulated clients directly.

    {2 Model}

    An engine owns a fleet of persisted models and a table of live
    sessions ({!Psm_flow.Estimate} each). Clients feed sessions through
    {!submit} (classified propositions + input Hamming distances) or
    {!vcd_chunk} (raw VCD text, classified server-side through the
    streaming reader); feeding only enqueues. {!tick} is the scheduler's
    unit of work: every session with a pending observation advances
    exactly one cycle. Sessions are grouped by (model, mode); filter
    groups advance in {e one batched sparse sweep}
    ({!Psm_hmm.Filtering.Stream.step_many} over the model's shared CSR
    kernel) and groups shard across the {!Psm_par} pool. {!drain} ticks
    until idle.

    {2 Determinism}

    The schedule is a function of the session set alone: sessions advance
    in open order within a group, groups in first-opened order, and the
    pool returns group results in input order — so served outputs are
    independent of client arrival interleaving, job count, and the
    [batch] flag (the batched sweep is bit-identical to the per-session
    loop, which is itself bit-identical to offline inference).

    {2 Sessions are server-owned}

    A session survives its client's disconnect — it is keyed by id, not
    by connection — until {!close_session} or {!evict_idle} (driven by
    the injected clock, so tests inject time instead of sleeping). *)

type t

type stats = {
  sessions : int;
  cycles_served : int;
  ticks : int;
  sweeps : int;
  opened : int;
  evicted : int;
  closed : int;
}

type session_stats = {
  cycles : int;
  wrong_instants : int;
  wsp : float;
  resync_events : int;
  log_likelihood : float;
}

type model_info = { name : string; states : int; props : int }

val create :
  ?pool:Psm_par.Pool.t ->
  ?idle_timeout:float ->
  ?batch:bool ->
  ?now:(unit -> float) ->
  (string * Psm_flow.Persist.model) list ->
  t
(** [idle_timeout] (default 300 s; <= 0 disables) bounds how long an
    unfed session survives; [batch] (default true) selects the batched
    sweep over the per-session reference loop; [now] (default
    [Unix.gettimeofday]) is the eviction clock.
    @raise Invalid_argument on duplicate model names. *)

val models : t -> model_info list
val session_count : t -> int
val has_session : t -> string -> bool

val open_session :
  t -> id:string -> model:string -> mode:Psm_flow.Estimate.mode -> (unit, string) result

val close_session : t -> id:string -> (unit, string) result

val submit : t -> id:string -> (int option * float) array -> (int, string) result
(** Enqueue (proposition, input Hamming) pairs, one per cycle. Rejects
    out-of-vocabulary propositions. Returns the cycles enqueued. *)

val vcd_chunk : t -> id:string -> chunk:string -> last:bool -> (int, string) result
(** Buffer a VCD fragment; [last:true] parses the whole upload
    ({!Psm_trace.Vcd.parse} — malformed text returns the reader's
    positioned error), checks the interface against the session's model,
    classifies every sample and enqueues it. Returns cycles enqueued
    (0 while buffering). The error is per-session: the buffer is reset
    and the session remains usable. *)

val tick : t -> int
(** One scheduler step: every session with a pending observation advances
    one cycle (filter groups in one batched sweep each, groups sharded
    across the pool). Returns sessions advanced; 0 = nothing pending. *)

val drain : t -> int
(** {!tick} until idle; total cycles served. *)

val available_results : t -> id:string -> (int, string) result

val take_results : t -> id:string -> count:int -> ((float * int) array, string) result
(** Pop up to [count] (power, PSM state id) results in cycle order. *)

val session_stats : t -> id:string -> (session_stats, string) result
val stats : t -> stats

val evict_idle : t -> string list
(** Drop sessions idle past the timeout; returns their ids (sorted). *)

val checkpoint_version : string
(** = {!Checkpoint.version}. *)

val checkpoint : t -> id:string -> (string, string) result
(** A self-contained resumable blob in the {!Checkpoint} wire format
    (explicit field-by-field JSON — never [Marshal] bytes). Restoring it
    — in this engine or a fresh one holding the same model — resumes
    bit-identically to never having stopped. *)

val restore_session : t -> id:string -> string -> (unit, string) result
(** Checkpoints arrive from clients and are treated as hostile: the blob
    is validated structurally ({!Checkpoint.decode}) and then
    semantically against the named model ({!Psm_flow.Estimate.import});
    anything that does not fit earns an [Error], never daemon state. *)
