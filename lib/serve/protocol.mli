(** The line-delimited JSON wire protocol of [psmgen serve] (schema 1).

    Every frame is one JSON object on one line. Requests carry an ["op"]
    field; responses carry ["ok"] plus op-specific fields, and failures
    are [{"ok":false,"error":...}] — always per-request, never a dropped
    connection: a malformed line poisons nothing but itself.

    Ops: [hello] (server + model inventory), [open] (create a session on
    a model, mode [filter]|[sim]), [observe] (an array of classified
    propositions — integers or null — plus optional per-cycle input
    Hamming distances; the response returns per-cycle power, state ids
    and the session's WSP/resync counters), [vcd] (raw VCD text in
    chunks; [last:true] parses and enqueues the whole upload),
    [checkpoint]/[restore] (hex-encoded resumable session state),
    [close], [stats], [shutdown]. *)

type mode = [ `Filter | `Sim ]

type request =
  | Hello
  | Open of { session : string; model : string; mode : mode }
  | Observe of { session : string; obs : (int option * float) array }
  | Vcd of { session : string; chunk : string; last : bool }
  | Checkpoint of { session : string }
  | Restore of { session : string; model : string; checkpoint : string }
  | Close of { session : string }
  | Stats
  | Shutdown

val schema : int

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

val parse_request : string -> (request, string) result
(** One line → one request; the error is a human-readable reason safe to
    echo back to the client. *)

val ok : (string * Json.t) list -> string
(** [{"ok":true, ...fields}] as a wire line. *)

val error : ?session:string -> string -> string
(** [{"ok":false, "error":msg}] as a wire line. *)

val hex_encode : string -> string
val hex_decode : string -> (string, string) result
