(** Minimal JSON values for the line-delimited serve protocol — parser,
    printer and accessors, no third-party dependency. The printer emits
    one line with no internal newlines (strings are escaped), which is
    what makes a value a legal protocol frame; numbers print as the
    shortest decimal that round-trips, so golden transcripts are stable
    and exact. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. Field order is preserved. *)

val of_string : string -> (t, string) result
(** Whole-input parse; the error names the byte offset. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
