type mode = [ `Filter | `Sim ]

type request =
  | Hello
  | Open of { session : string; model : string; mode : mode }
  | Observe of { session : string; obs : (int option * float) array }
  | Vcd of { session : string; chunk : string; last : bool }
  | Checkpoint of { session : string }
  | Restore of { session : string; model : string; checkpoint : string }
  | Close of { session : string }
  | Stats
  | Shutdown

let schema = 1

let mode_to_string = function `Filter -> "filter" | `Sim -> "sim"

let mode_of_string = function
  | "filter" -> Ok `Filter
  | "sim" -> Ok `Sim
  | other -> Error (Printf.sprintf "unknown mode %S (expected filter|sim)" other)

let field name json = Json.member name json

let string_field name json =
  match Option.bind (field name json) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let parse_observe json session =
  match Option.bind (field "props" json) Json.to_list with
  | None -> Error "observe: missing \"props\" array"
  | Some props -> (
      let parse_prop = function
        | Json.Null -> Ok None
        | v -> (
            match Json.to_int v with
            | Some p -> Ok (Some p)
            | None -> Error "observe: props entries must be integers or null")
      in
      let rec map_props acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match parse_prop v with
            | Ok p -> map_props (p :: acc) rest
            | Error _ as e -> e)
      in
      match map_props [] props with
      | Error e -> Error e
      | Ok props -> (
          let n = List.length props in
          let hd_result =
            match field "hd" json with
            | None -> Ok (List.init n (fun _ -> 0.))
            | Some hd_json -> (
                match Json.to_list hd_json with
                | None -> Error "observe: \"hd\" must be an array"
                | Some items ->
                    let rec map_hd acc = function
                      | [] -> Ok (List.rev acc)
                      | v :: rest -> (
                          match Json.to_float v with
                          | Some f -> map_hd (f :: acc) rest
                          | None -> Error "observe: hd entries must be numbers")
                    in
                    map_hd [] items)
          in
          match hd_result with
          | Error e -> Error e
          | Ok hd ->
              if List.length hd <> n then
                Error "observe: props and hd lengths differ"
              else
                Ok
                  (Observe
                     { session;
                       obs = Array.of_list (List.map2 (fun p h -> (p, h)) props hd) })))

let parse_request line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
  | Ok json -> (
      match Option.bind (field "op" json) Json.to_string_opt with
      | None -> Error "missing \"op\" field"
      | Some op -> (
          let with_session k =
            match string_field "session" json with
            | Error e -> Error e
            | Ok session -> k session
          in
          match op with
          | "hello" -> Ok Hello
          | "stats" -> Ok Stats
          | "shutdown" -> Ok Shutdown
          | "open" ->
              with_session (fun session ->
                  match string_field "model" json with
                  | Error e -> Error e
                  | Ok model -> (
                      let mode_name =
                        match string_field "mode" json with
                        | Ok m -> m
                        | Error _ -> "filter"
                      in
                      match mode_of_string mode_name with
                      | Error e -> Error e
                      | Ok mode -> Ok (Open { session; model; mode })))
          | "observe" -> with_session (fun session -> parse_observe json session)
          | "vcd" ->
              with_session (fun session ->
                  match string_field "chunk" json with
                  | Error e -> Error e
                  | Ok chunk ->
                      let last =
                        match Option.bind (field "last" json) Json.to_bool with
                        | Some b -> b
                        | None -> false
                      in
                      Ok (Vcd { session; chunk; last }))
          | "checkpoint" -> with_session (fun session -> Ok (Checkpoint { session }))
          | "restore" ->
              with_session (fun session ->
                  match string_field "model" json with
                  | Error e -> Error e
                  | Ok model -> (
                      match string_field "checkpoint" json with
                      | Error e -> Error e
                      | Ok checkpoint -> Ok (Restore { session; model; checkpoint })))
          | "close" -> with_session (fun session -> Ok (Close { session }))
          | other -> Error (Printf.sprintf "unknown op %S" other)))

(* ---------- responses ---------- *)

let ok fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))

let error ?session msg =
  let fields =
    match session with
    | Some s -> [ ("session", Json.Str s); ("error", Json.Str msg) ]
    | None -> [ ("error", Json.Str msg) ]
  in
  Json.to_string (Json.Obj (("ok", Json.Bool false) :: fields))

(* ---------- hex (checkpoints on the wire) ---------- *)

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex digit"
