type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal that round-trips: integers print as integers (the
   golden transcripts stay readable), everything else tries %.15g before
   falling back to the always-exact %.17g. *)
let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      if Float.is_nan v || Float.is_integer (v /. 0.) then
        (* NaN/inf are not JSON; the protocol never produces them, but a
           diagnostic dump must not emit an unparseable line. *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string v)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of string

type parser_state = { text : string; mutable pos : int; mutable depth : int }

let error p msg = raise (Bad (Printf.sprintf "%s at byte %d" msg p.pos))

(* The recursive-descent parser consumes one stack frame per nesting
   level; without a bound, a request line of a few thousand '['s raises
   [Stack_overflow] — an exception the request loop does not treat as a
   parse error — and kills the daemon. The protocol never nests past
   depth 4. *)
let max_depth = 100

let enter p =
  p.depth <- p.depth + 1;
  if p.depth > max_depth then error p "nesting too deep"

let peek p = if p.pos < String.length p.text then Some p.text.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.text
    &&
    match p.text.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some d when d = c -> p.pos <- p.pos + 1
  | _ -> error p (Printf.sprintf "expected '%c'" c)

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.text
    && String.sub p.text p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else error p (Printf.sprintf "expected %s" word)

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if p.pos >= String.length p.text then error p "unterminated string";
    let c = p.text.[p.pos] in
    p.pos <- p.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if p.pos >= String.length p.text then error p "unterminated escape";
         let e = p.text.[p.pos] in
         p.pos <- p.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             if p.pos + 4 > String.length p.text then error p "bad \\u escape";
             let code =
               try int_of_string ("0x" ^ String.sub p.text p.pos 4)
               with _ -> error p "bad \\u escape"
             in
             p.pos <- p.pos + 4;
             (* UTF-8 encode the BMP code point (the protocol is ASCII;
                this is completeness, not a performance path). *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
         | _ -> error p "bad escape");
        loop ()
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while p.pos < String.length p.text && is_num_char p.text.[p.pos] do
    p.pos <- p.pos + 1
  done;
  if p.pos = start then error p "expected a number";
  match float_of_string_opt (String.sub p.text start (p.pos - start)) with
  | Some v -> v
  | None -> error p "malformed number"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> error p "unexpected end of input"
  | Some '"' -> Str (parse_string p)
  | Some '{' ->
      expect p '{';
      enter p;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        p.depth <- p.depth - 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws p;
          let key = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              fields ((key, v) :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> error p "expected ',' or '}'"
        in
        let fields = fields [] in
        p.depth <- p.depth - 1;
        Obj fields
      end
  | Some '[' ->
      expect p '[';
      enter p;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        p.depth <- p.depth - 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              items (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> error p "expected ',' or ']'"
        in
        let items = items [] in
        p.depth <- p.depth - 1;
        List items
      end
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> Num (parse_number p)

let of_string text =
  let p = { text; pos = 0; depth = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length text then
        Error (Printf.sprintf "trailing garbage at byte %d" p.pos)
      else Ok v
  | exception Bad msg -> Error msg
  (* Belt and braces under [max_depth]: never let a parse crash the
     process. *)
  | exception Stack_overflow -> Error "nesting too deep"

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List items -> Some items | _ -> None
