(** The [psmgen serve] daemon: a single-threaded select loop carrying the
    line-delimited JSON protocol ({!Protocol}) over a Unix-domain or
    loopback TCP socket, in front of an {!Engine}.

    Frames are processed in {e waves}: per wave, each connection executes
    its leading non-stream requests immediately and contributes at most
    one stream request ([observe] / final [vcd]); one engine drain then
    advances every contributor together — this is where concurrent
    clients on the same model merge into batched sparse sweeps — and the
    deferred responses are emitted in per-connection request order. A
    malformed frame earns an error response on that frame alone; a
    dropped connection closes the transport but leaves the client's
    sessions live in the engine (reconnect and keep observing, or let the
    idle timeout evict them). *)

type listen = [ `Tcp of int | `Unix of string ]
(** [`Tcp port] binds loopback ([port] 0 picks an ephemeral port — read it
    back with {!port}); [`Unix path] binds a filesystem socket (an
    existing file at [path] is replaced, and removed again on exit). *)

type t

val create :
  ?pool:Psm_par.Pool.t ->
  ?idle_timeout:float ->
  ?batch:bool ->
  ?now:(unit -> float) ->
  listen:listen ->
  (string * Psm_flow.Persist.model) list ->
  t
(** Bind and listen; optional parameters configure the {!Engine}. *)

val engine : t -> Engine.t
val port : t -> int
(** The bound TCP port (0 for Unix-domain sockets). *)

val run : t -> unit
(** Serve until a [shutdown] request (or {!request_shutdown}); flushes and
    closes every connection, the listener, and the Unix socket path on
    the way out. *)

val request_shutdown : t -> unit
(** Make {!run} exit after its current round — safe to call from the
    request path of the same domain; from another domain prefer the
    protocol's [shutdown] op. *)

val shutdown_requested : t -> bool
