module Psm = Psm_core.Psm
module Table = Psm_mining.Prop_trace.Table
module Vocabulary = Psm_mining.Vocabulary
module Interface = Psm_trace.Interface
module Functional_trace = Psm_trace.Functional_trace
module Reader = Psm_trace.Reader
module Vcd = Psm_trace.Vcd
module Hmm = Psm_hmm.Hmm
module Filtering = Psm_hmm.Filtering
module Persist = Psm_flow.Persist
module Estimate = Psm_flow.Estimate

(* Unboxed growable ring of (int, float) pairs. The per-cycle hot loop
   pushes and pops one pair per session; a [Queue.t] of tuples would cost
   two minor allocations per operation, which at thousands of sessions
   per tick is most of the non-kernel time. Codes are plain ints so the
   caller picks the encoding (pending: proposition or -1 for unknown;
   results: PSM state id). *)
module Ring = struct
  type t = {
    mutable code : int array;
    mutable value : float array;
    mutable head : int; (* index of the oldest element *)
    mutable len : int;
  }

  let create () =
    { code = Array.make 16 0; value = Array.make 16 0.; head = 0; len = 0 }

  let length q = q.len
  let is_empty q = q.len = 0

  let ensure q extra =
    let cap = Array.length q.code in
    if q.len + extra > cap then begin
      let ncap = max (q.len + extra) (cap * 2) in
      let code = Array.make ncap 0 and value = Array.make ncap 0. in
      for i = 0 to q.len - 1 do
        let src = (q.head + i) mod cap in
        code.(i) <- q.code.(src);
        value.(i) <- q.value.(src)
      done;
      q.code <- code;
      q.value <- value;
      q.head <- 0
    end

  let push q c v =
    ensure q 1;
    let cap = Array.length q.code in
    let tail = (q.head + q.len) mod cap in
    q.code.(tail) <- c;
    q.value.(tail) <- v;
    q.len <- q.len + 1

  (* Pop the oldest pair into the two refs — no tuple materialized. *)
  let pop q ~code ~value =
    if q.len = 0 then invalid_arg "Ring.pop: empty";
    code := q.code.(q.head);
    value := q.value.(q.head);
    q.head <- (q.head + 1) mod Array.length q.code;
    q.len <- q.len - 1
end

type session = {
  id : string;
  model_name : string;
  mode : Estimate.mode;
  est : Estimate.t;
  nprops : int; (* the model's vocabulary size, resolved at open *)
  fstate : (Filtering.t * Filtering.Stream.state) option; (* filter hot path *)
  seq : int; (* open order: the deterministic processing order *)
  queue : Ring.t; (* pending (proposition | -1 = unknown, hd) *)
  results : Ring.t; (* produced (state id, power) *)
  some_props : int option array; (* interned [Some p] per proposition *)
  vcd_buf : Buffer.t; (* partial VCD upload *)
  mutable last_active : float;
}

(* A scheduling block: at most [shard_size] sessions of one (model, mode)
   group, in open order. Shards are rebuilt only when the session set
   changes; the per-tick scratch arrays live here so the hot path
   allocates nothing. A shard is processed by exactly one domain per
   tick, so reusing its scratch across ticks is race-free. *)
type shard = {
  members : session array;
  sh_states : Filtering.Stream.state array; (* filter shards; [||] for sim *)
  sh_obss : int option array;
  sh_hds : float array;
  sh_powers : float array;
  sh_rows : int array;
}

type stats = {
  sessions : int;
  cycles_served : int;
  ticks : int;
  sweeps : int;
  opened : int;
  evicted : int;
  closed : int;
}

type session_stats = {
  cycles : int;
  wrong_instants : int;
  wsp : float;
  resync_events : int;
  log_likelihood : float;
}

type model_info = { name : string; states : int; props : int }

type t = {
  models : (string * Persist.model) list; (* sorted by name, unique *)
  filters : (string, Filtering.t) Hashtbl.t; (* lazily shared per model *)
  sessions : (string, session) Hashtbl.t;
  idle_timeout : float; (* seconds; <= 0 disables eviction *)
  batch : bool;
  now : unit -> float;
  pool : Psm_par.Pool.t option;
  (* All sessions grouped by (model, mode) — groups in first-opened order,
     members in open order — split into shards and rebuilt only when the
     session set changes, so a tick pays one pending scan, no sort. *)
  mutable shards_cache : shard list;
  mutable groups_dirty : bool;
  mutable next_seq : int;
  mutable cycles_served : int;
  mutable ticks : int;
  mutable sweeps : int;
  mutable opened : int;
  mutable evicted : int;
  mutable closed : int;
}

let create ?pool ?(idle_timeout = 300.) ?(batch = true) ?now models =
  let models =
    List.sort (fun (a, _) (b, _) -> String.compare a b) models
  in
  let rec check_unique = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Engine.create: duplicate model %S" a);
        check_unique rest
    | _ -> ()
  in
  check_unique models;
  { models;
    filters = Hashtbl.create 8;
    sessions = Hashtbl.create 64;
    idle_timeout;
    batch;
    now = (match now with Some f -> f | None -> Unix.gettimeofday);
    pool;
    shards_cache = [];
    groups_dirty = false;
    next_seq = 0;
    cycles_served = 0;
    ticks = 0;
    sweeps = 0;
    opened = 0;
    evicted = 0;
    closed = 0 }

let find_model t name = List.assoc_opt name t.models

let prop_count (model : Persist.model) = Table.prop_count model.Persist.table

let filtering_for t name model =
  match Hashtbl.find_opt t.filters name with
  | Some f -> f
  | None ->
      let f = Filtering.create model.Persist.hmm in
      Hashtbl.replace t.filters name f;
      f

let models t =
  List.map
    (fun (name, (m : Persist.model)) ->
      { name; states = Psm.state_count m.Persist.psm; props = prop_count m })
    t.models

let session_count t = Hashtbl.length t.sessions
let has_session t id = Hashtbl.mem t.sessions id

let find_session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown session %S" id)

let add_session t ~id ~model_name ~nprops est =
  let session =
    { id;
      model_name;
      mode = Estimate.mode est;
      est;
      nprops;
      fstate = Estimate.filter_state est;
      seq = t.next_seq;
      queue = Ring.create ();
      results = Ring.create ();
      some_props = Array.init nprops (fun p -> Some p);
      vcd_buf = Buffer.create 0;
      last_active = t.now () }
  in
  t.next_seq <- t.next_seq + 1;
  t.opened <- t.opened + 1;
  t.groups_dirty <- true;
  Psm_obs.incr "serve.sessions_opened";
  Hashtbl.replace t.sessions id session

let open_session t ~id ~model ~mode =
  if Hashtbl.mem t.sessions id then
    Error (Printf.sprintf "session %S already exists" id)
  else
    match find_model t model with
    | None -> Error (Printf.sprintf "unknown model %S" model)
    | Some m ->
        let est =
          match mode with
          | `Sim -> Estimate.of_model ~mode m
          | `Filter ->
              Estimate.of_model ~filtering:(filtering_for t model m) ~mode m
        in
        add_session t ~id ~model_name:model ~nprops:(prop_count m) est;
        Ok ()

let close_session t ~id =
  match find_session t id with
  | Error _ as e -> e
  | Ok _ ->
      Hashtbl.remove t.sessions id;
      t.groups_dirty <- true;
      t.closed <- t.closed + 1;
      Ok ()

(* ---------- feeding ---------- *)

let submit t ~id obs =
  match find_session t id with
  | Error _ as e -> e
  | Ok session ->
      let nprops = session.nprops in
      let bad = ref None in
      Array.iter
        (function
          | Some p, _ when p < 0 || p >= nprops ->
              if !bad = None then bad := Some p
          | _ -> ())
        obs;
      match !bad with
      | Some p ->
          Error
            (Printf.sprintf "proposition %d out of range (model has %d)" p
               nprops)
      | None ->
          Array.iter
            (fun (p, hd) ->
              Ring.push session.queue
                (match p with Some p -> p | None -> -1)
                hd)
            obs;
          session.last_active <- t.now ();
          Ok (Array.length obs)

let vcd_chunk t ~id ~chunk ~last =
  match find_session t id with
  | Error e -> Error e
  | Ok session ->
      session.last_active <- t.now ();
      Buffer.add_string session.vcd_buf chunk;
      if not last then Ok 0
      else begin
        let text = Buffer.contents session.vcd_buf in
        Buffer.clear session.vcd_buf;
        match Vcd.parse text with
        | exception Vcd.Parse_error err ->
            Error (Printf.sprintf "vcd: %s" (Reader.error_to_string err))
        | exception Failure msg -> Error (Printf.sprintf "vcd: %s" msg)
        | parsed ->
            let model = Option.get (find_model t session.model_name) in
            let table = model.Persist.table in
            let model_iface = Vocabulary.interface (Table.vocabulary table) in
            let trace = parsed.Vcd.trace in
            if not (Interface.equal (Functional_trace.interface trace) model_iface)
            then
              Error
                (Printf.sprintf
                   "vcd: interface mismatch (model %S expects different \
                    signals)"
                   session.model_name)
            else begin
              (* Classification and input-Hamming tracking happen here,
                 exactly as the offline evaluators compute them, then the
                 upload rides the same proposition queue as [observe]. *)
              let hd = Functional_trace.input_hamming_series trace in
              let n = Functional_trace.length trace in
              if Psm_trace.Runs.use () then
                (* One classification per run of identical samples; the
                   queued codes and Hamming values are exactly the
                   per-cycle loop's (identical samples classify
                   identically, and [hd] is still read per instant). *)
                Functional_trace.iter_runs
                  (fun ~start ~len sample ->
                    let code =
                      match Table.classify table sample with
                      | Some p -> p
                      | None -> -1
                    in
                    for time = start to start + len - 1 do
                      Ring.push session.queue code hd.(time)
                    done)
                  trace
              else
                for time = 0 to n - 1 do
                  let sample = Functional_trace.sample trace ~time in
                  let code =
                    match Table.classify table sample with
                    | Some p -> p
                    | None -> -1
                  in
                  Ring.push session.queue code hd.(time)
                done;
              Ok n
            end
      end

(* ---------- the batched tick ---------- *)

(* Advance a block of sessions (same model, same mode, ascending open
   order) by one cycle each. Runs on one domain; distinct blocks touch
   disjoint state. Returns (sessions advanced, batched sweep?) and leaves
   the engine-wide counters to the coordinator — this may run inside a
   pool worker, where mutating shared ints would race. *)
let run_batched (members : session array) states obss hds powers rows =
  let n = Array.length members in
  let code = ref 0 and value = ref 0. in
  for k = 0 to n - 1 do
    let s = members.(k) in
    Ring.pop s.queue ~code ~value;
    obss.(k) <- (if !code >= 0 then s.some_props.(!code) else None);
    hds.(k) <- !value
  done;
  let filt, _ = Option.get members.(0).fstate in
  Filtering.Stream.sweep filt states obss ~hds ~powers ~rows;
  let hmm = (Estimate.model members.(0).est).Persist.hmm in
  for k = 0 to n - 1 do
    Ring.push members.(k).results (Hmm.state_of_row hmm rows.(k)) powers.(k)
  done;
  (n, true)

let run_loop (members : session array) =
  let code = ref 0 and value = ref 0. in
  Array.iter
    (fun s ->
      Ring.pop s.queue ~code ~value;
      let obs = if !code >= 0 then s.some_props.(!code) else None in
      let power, state = Estimate.step s.est ~hd:!value obs in
      Ring.push s.results state power)
    members;
  (Array.length members, false)

(* A tick's work item: a whole shard (every member has a pending
   observation — the cached scratch arrays apply directly), or the
   pending subset of one (fresh right-sized arrays; rare). *)
let process_work t = function
  | `Full sh ->
      if sh.members.(0).mode = `Filter && t.batch then
        run_batched sh.members sh.sh_states sh.sh_obss sh.sh_hds
          sh.sh_powers sh.sh_rows
      else run_loop sh.members
  | `Subset (members : session array) ->
      if members.(0).mode = `Filter && t.batch then begin
        let n = Array.length members in
        run_batched members
          (Array.map (fun s -> snd (Option.get s.fstate)) members)
          (Array.make n None) (Array.make n 0.) (Array.make n 0.)
          (Array.make n 0)
      end
      else run_loop members

(* Sessions are grouped by (model, mode) — groups ordered by their
   first-opened member, members in open order, so the schedule is a
   function of the session set alone — then split into shards of at most
   [shard_size]. Sharding spreads one big group across the pool, and it
   keeps the sweep's working set (every member's alpha/scratch pair)
   inside the cache; sessions are independent, so it never changes any
   result. Rebuilt only when the session set changes. *)
let shard_size = 128

let rebuild_shards t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
  let sorted = List.sort (fun a b -> Int.compare a.seq b.seq) all in
  let groups = ref [] in
  List.iter
    (fun s ->
      let key = (s.model_name, s.mode) in
      match List.assoc_opt key !groups with
      | Some cell -> cell := s :: !cell
      | None -> groups := !groups @ [ (key, ref [ s ]) ])
    sorted;
  let shards_of_group members =
    let arr = Array.of_list (List.rev members) in
    let total = Array.length arr in
    let nblocks = (total + shard_size - 1) / shard_size in
    List.init nblocks (fun b ->
        let lo = b * shard_size in
        let members = Array.sub arr lo (min shard_size (total - lo)) in
        let n = Array.length members in
        let is_filter = members.(0).mode = `Filter in
        { members;
          sh_states =
            (if is_filter then
               Array.map (fun s -> snd (Option.get s.fstate)) members
             else [||]);
          sh_obss = Array.make n None;
          sh_hds = Array.make n 0.;
          sh_powers = Array.make n 0.;
          sh_rows = Array.make n 0 })
  in
  t.shards_cache <-
    List.concat_map (fun (_, cell) -> shards_of_group !cell) !groups;
  t.groups_dirty <- false

let pending_work t =
  if t.groups_dirty then rebuild_shards t;
  List.filter_map
    (fun sh ->
      let n = Array.length sh.members in
      let pending = ref 0 in
      Array.iter
        (fun s -> if not (Ring.is_empty s.queue) then incr pending)
        sh.members;
      if !pending = 0 then None
      else if !pending = n then Some (`Full sh)
      else begin
        let sub = Array.make !pending sh.members.(0) in
        let k = ref 0 in
        Array.iter
          (fun s ->
            if not (Ring.is_empty s.queue) then begin
              sub.(!k) <- s;
              incr k
            end)
          sh.members;
        Some (`Subset sub)
      end)
    t.shards_cache

let tick t =
  let work = pending_work t in
  if work = [] then 0
  else begin
    let t0 = Unix.gettimeofday () in
    (* Shards spread across the pool; each shard's sweep stays on one
       domain, and results come back in shard order. Shards of the same
       (model, mode) group share one [Filtering.t], which is sound
       because Stream operations are documented (and required) to treat
       [t] as read-only — see the contract in [Filtering.Stream]. *)
    let counts =
      match work with
      | [ one ] -> [ process_work t one ]
      | many -> Psm_par.parallel_map ?pool:t.pool (process_work t) many
    in
    let advanced =
      List.fold_left
        (fun acc (n, swept) ->
          if swept then begin
            t.sweeps <- t.sweeps + 1;
            Psm_obs.incr "serve.batch_sweeps"
          end;
          acc + n)
        0 counts
    in
    t.ticks <- t.ticks + 1;
    t.cycles_served <- t.cycles_served + advanced;
    Psm_obs.count "serve.cycles" advanced;
    Psm_obs.observe "serve.tick_seconds" (Unix.gettimeofday () -. t0);
    advanced
  end

let drain t =
  let total = ref 0 in
  let rec loop () =
    let n = tick t in
    if n > 0 then begin
      total := !total + n;
      loop ()
    end
  in
  loop ();
  !total

(* ---------- results & stats ---------- *)

let available_results t ~id =
  match find_session t id with
  | Error _ as e -> e
  | Ok s -> Ok (Ring.length s.results)

let take_results t ~id ~count =
  match find_session t id with
  | Error _ as e -> e
  | Ok s ->
      let n = min count (Ring.length s.results) in
      let code = ref 0 and value = ref 0. in
      (* Explicit ascending fill: [Array.init]'s application order is
         unspecified, and the popping closure must run oldest-first. *)
      let out = Array.make n (0., 0) in
      for i = 0 to n - 1 do
        Ring.pop s.results ~code ~value;
        out.(i) <- (!value, !code)
      done;
      Ok out

let session_stats t ~id =
  match find_session t id with
  | Error _ as e -> e
  | Ok s ->
      Ok
        { cycles = Estimate.cycles s.est;
          wrong_instants = Estimate.wrong_instants s.est;
          wsp = Estimate.wsp s.est;
          resync_events = Estimate.resync_events s.est;
          log_likelihood = Estimate.log_likelihood s.est }

let stats t =
  { sessions = session_count t;
    cycles_served = t.cycles_served;
    ticks = t.ticks;
    sweeps = t.sweeps;
    opened = t.opened;
    evicted = t.evicted;
    closed = t.closed }

(* ---------- idle eviction ---------- *)

let evict_idle t =
  if t.idle_timeout <= 0. then []
  else begin
    let deadline = t.now () -. t.idle_timeout in
    let stale =
      Hashtbl.fold
        (fun _ s acc -> if s.last_active < deadline then s.id :: acc else acc)
        t.sessions []
      |> List.sort String.compare
    in
    List.iter
      (fun id ->
        Hashtbl.remove t.sessions id;
        t.evicted <- t.evicted + 1;
        Psm_obs.incr "serve.sessions_evicted")
      stale;
    if stale <> [] then t.groups_dirty <- true;
    stale
  end

(* ---------- checkpoints ---------- *)

let checkpoint_version = Checkpoint.version

let checkpoint t ~id =
  match find_session t id with
  | Error _ as e -> e
  | Ok s -> Ok (Checkpoint.encode ~model:s.model_name (Estimate.export s.est))

let restore_session t ~id data =
  if Hashtbl.mem t.sessions id then
    Error (Printf.sprintf "session %S already exists" id)
  else
    match Checkpoint.decode data with
    | Error _ as e -> e
    | Ok (model_name, portable) -> (
        match find_model t model_name with
        | None ->
            Error
              (Printf.sprintf "checkpoint names unknown model %S" model_name)
        | Some m -> (
            (* The shared per-model filter only matters (and only gets
               built) for filter sessions; a sim checkpoint must not pay
               for it. *)
            let filtering =
              match portable.Estimate.portable_backend with
              | Estimate.Portable_filter _ ->
                  Some (filtering_for t model_name m)
              | Estimate.Portable_sim _ -> None
            in
            match Estimate.import ?filtering m portable with
            | Error e -> Error ("checkpoint: " ^ e)
            | Ok est ->
                add_session t ~id ~model_name ~nprops:(prop_count m) est;
                Ok ()))
