type listen = [ `Tcp of int | `Unix of string ]

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t; (* raw bytes until the next newline *)
  lines : string Queue.t; (* complete frames awaiting processing *)
  outbuf : Buffer.t; (* responses awaiting the socket *)
  mutable closed : bool;
  mutable write_blocked : bool;
      (* the last write filled the socket buffer (EAGAIN); don't try
         again until select reports the fd writable *)
}

type t = {
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  listen_spec : listen;
  port : int;
  mutable conns : conn list; (* accept order: the wave iteration order *)
  mutable shutdown : bool;
}

let create ?pool ?idle_timeout ?batch ?now ~listen models =
  let engine = Engine.create ?pool ?idle_timeout ?batch ?now models in
  let listen_fd, port =
    match listen with
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 128;
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, bound)
    | `Unix path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 128;
        (fd, 0)
  in
  { engine; listen_fd; listen_spec = listen; port; conns = []; shutdown = false }

let engine t = t.engine
let port t = t.port
let request_shutdown t = t.shutdown <- true
let shutdown_requested t = t.shutdown

(* ---------- connection plumbing ---------- *)

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

let extract_lines conn =
  let s = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let rec loop start =
    match String.index_from_opt s start '\n' with
    | Some nl ->
        let stop = if nl > start && s.[nl - 1] = '\r' then nl - 1 else nl in
        Queue.add (String.sub s start (stop - start)) conn.lines;
        loop (nl + 1)
    | None -> Buffer.add_substring conn.inbuf s start (String.length s - start)
  in
  loop 0

let respond conn line =
  Buffer.add_string conn.outbuf line;
  Buffer.add_char conn.outbuf '\n'

(* A stalled client that never reads can buffer responses without bound;
   past this the connection is dropped (its sessions live on in the
   engine until close/eviction, like any disconnect). *)
let max_outbuf = 64 * 1024 * 1024

(* One bounded non-blocking write ([single_write] on an fd accept marked
   non-blocking, so it can never retry internally): a partial write keeps
   the rest buffered for the next round, and a full socket buffer
   (EAGAIN) parks the connection until select reports the fd writable —
   one slow client never wedges the loop. *)
let flush_out conn =
  let len = Buffer.length conn.outbuf in
  if len > 0 && (not conn.closed) && not conn.write_blocked then begin
    let bytes = Buffer.to_bytes conn.outbuf in
    match Unix.single_write conn.fd bytes 0 len with
    | n ->
        Buffer.clear conn.outbuf;
        if n < len then Buffer.add_subbytes conn.outbuf bytes n (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        conn.write_blocked <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        close_conn conn
  end;
  if Buffer.length conn.outbuf > max_outbuf then begin
    Psm_obs.incr "serve.slow_client_drops";
    close_conn conn
  end

(* ---------- request handling ---------- *)

let num_int n = Json.Num (float_of_int n)

let hello_response engine =
  Protocol.ok
    [ ("server", Json.Str "psmgen-serve");
      ("schema", num_int Protocol.schema);
      ( "models",
        Json.List
          (List.map
             (fun (m : Engine.model_info) ->
               Json.Obj
                 [ ("name", Json.Str m.Engine.name);
                   ("states", num_int m.Engine.states);
                   ("props", num_int m.Engine.props) ])
             (Engine.models engine)) ) ]

let stats_response engine =
  let s = Engine.stats engine in
  Protocol.ok
    [ ("sessions", num_int s.Engine.sessions);
      ("cycles_served", num_int s.Engine.cycles_served);
      ("ticks", num_int s.Engine.ticks);
      ("sweeps", num_int s.Engine.sweeps);
      ("opened", num_int s.Engine.opened);
      ("evicted", num_int s.Engine.evicted);
      ("closed", num_int s.Engine.closed) ]

(* Execute one request right now, or hand back a deferral: stream requests
   ([observe] / final [vcd]) only enqueue here, and answer after the wave's
   shared drain so concurrent sessions advance in batched sweeps. *)
let handle_immediate t (req : Protocol.request) =
  match req with
  | Protocol.Hello -> `Respond (hello_response t.engine)
  | Protocol.Stats -> `Respond (stats_response t.engine)
  | Protocol.Shutdown ->
      t.shutdown <- true;
      `Respond (Protocol.ok [ ("bye", Json.Bool true) ])
  | Protocol.Open { session; model; mode } -> (
      match Engine.open_session t.engine ~id:session ~model ~mode with
      | Ok () ->
          `Respond
            (Protocol.ok
               [ ("session", Json.Str session);
                 ("mode", Json.Str (Protocol.mode_to_string mode)) ])
      | Error e -> `Respond (Protocol.error ~session e))
  | Protocol.Close { session } -> (
      match Engine.close_session t.engine ~id:session with
      | Ok () -> `Respond (Protocol.ok [ ("session", Json.Str session) ])
      | Error e -> `Respond (Protocol.error ~session e))
  | Protocol.Observe { session; obs } -> (
      match Engine.submit t.engine ~id:session obs with
      | Ok cycles -> `Defer (session, cycles)
      | Error e -> `Respond (Protocol.error ~session e))
  | Protocol.Vcd { session; chunk; last } -> (
      match Engine.vcd_chunk t.engine ~id:session ~chunk ~last with
      | Ok _ when not last ->
          `Respond
            (Protocol.ok
               [ ("session", Json.Str session); ("buffered", Json.Bool true) ])
      | Ok cycles -> `Defer (session, cycles)
      | Error e -> `Respond (Protocol.error ~session e))
  | Protocol.Checkpoint { session } -> (
      match Engine.checkpoint t.engine ~id:session with
      | Ok data ->
          `Respond
            (Protocol.ok
               [ ("session", Json.Str session);
                 ("checkpoint", Json.Str (Protocol.hex_encode data)) ])
      | Error e -> `Respond (Protocol.error ~session e))
  | Protocol.Restore { session; model = _; checkpoint } -> (
      match Protocol.hex_decode checkpoint with
      | Error e -> `Respond (Protocol.error ~session ("checkpoint: " ^ e))
      | Ok data -> (
          match Engine.restore_session t.engine ~id:session data with
          | Ok () -> `Respond (Protocol.ok [ ("session", Json.Str session) ])
          | Error e -> `Respond (Protocol.error ~session e)))

let deferred_response t ~session ~cycles =
  match Engine.take_results t.engine ~id:session ~count:cycles with
  | Error e -> Protocol.error ~session e
  | Ok results -> (
      match Engine.session_stats t.engine ~id:session with
      | Error e -> Protocol.error ~session e
      | Ok st ->
          Protocol.ok
            [ ("session", Json.Str session);
              ("cycles", num_int (Array.length results));
              ( "power",
                Json.List
                  (Array.to_list (Array.map (fun (p, _) -> Json.Num p) results))
              );
              ( "states",
                Json.List
                  (Array.to_list (Array.map (fun (_, s) -> num_int s) results))
              );
              ("wsp", Json.Num st.Engine.wsp);
              ("wrong_instants", num_int st.Engine.wrong_instants);
              ("resync_events", num_int st.Engine.resync_events);
              ("log_lik", Json.Num st.Engine.log_likelihood) ])

(* Drain every complete frame from every connection, in waves. Within a
   wave each connection executes its leading non-stream requests at once
   and contributes at most one stream request; one engine drain then
   advances all contributors together (that is where cross-client batching
   happens), and their responses are emitted in per-connection request
   order. Waves repeat until no frames remain. *)
let process_waves t =
  let progress = ref true in
  while !progress do
    progress := false;
    let deferred = ref [] in
    List.iter
      (fun conn ->
        if not conn.closed then begin
          let streaming = ref false in
          while (not !streaming) && not (Queue.is_empty conn.lines) do
            let line = Queue.pop conn.lines in
            progress := true;
            if String.trim line <> "" then begin
              let outcome =
                match Protocol.parse_request line with
                | Error e -> `Respond (Protocol.error e)
                | Ok req -> (
                    try handle_immediate t req
                    with exn ->
                      `Respond
                        (Protocol.error
                           ("internal error: " ^ Printexc.to_string exn)))
              in
              match outcome with
              | `Respond r -> respond conn r
              | `Defer (session, cycles) ->
                  deferred := (conn, session, cycles) :: !deferred;
                  streaming := true
            end
          done
        end)
      t.conns;
    if !deferred <> [] then begin
      (try ignore (Engine.drain t.engine)
       with exn ->
         Psm_obs.incr "serve.drain_errors";
         ignore (Printexc.to_string exn));
      List.iter
        (fun (conn, session, cycles) ->
          respond conn (deferred_response t ~session ~cycles))
        (List.rev !deferred)
    end
  done

(* ---------- the select loop ---------- *)

let run t =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let buf = Bytes.create 65536 in
  while not t.shutdown do
    let readable_wanted =
      t.listen_fd
      :: List.filter_map
           (fun c -> if c.closed then None else Some c.fd)
           t.conns
    in
    let writable_wanted =
      List.filter_map
        (fun c ->
          if (not c.closed) && Buffer.length c.outbuf > 0 then Some c.fd
          else None)
        t.conns
    in
    match Unix.select readable_wanted writable_wanted [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        (* A writable report is the all-clear after a full socket buffer. *)
        List.iter
          (fun c -> if List.mem c.fd writable then c.write_blocked <- false)
          t.conns;
        if List.mem t.listen_fd readable then begin
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              Psm_obs.incr "serve.connections";
              t.conns <-
                t.conns
                @ [ { fd;
                      inbuf = Buffer.create 256;
                      lines = Queue.create ();
                      outbuf = Buffer.create 256;
                      closed = false;
                      write_blocked = false } ]
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun conn ->
            if (not conn.closed) && List.mem conn.fd readable then begin
              match Unix.read conn.fd buf 0 (Bytes.length buf) with
              (* A disconnect closes the transport only: the client's
                 sessions stay live in the engine until close/eviction. *)
              | 0 -> close_conn conn
              | n ->
                  Buffer.add_subbytes conn.inbuf buf 0 n;
                  extract_lines conn
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  () (* spurious readiness on a non-blocking fd *)
              | exception
                  Unix.Unix_error
                    ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                  close_conn conn
            end)
          t.conns;
        process_waves t;
        List.iter flush_out t.conns;
        t.conns <- List.filter (fun c -> not c.closed) t.conns;
        ignore (Engine.evict_idle t.engine)
  done;
  List.iter
    (fun c ->
      (try flush_out c with _ -> ());
      close_conn c)
    t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.listen_spec with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()
