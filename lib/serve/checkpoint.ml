module Estimate = Psm_flow.Estimate
module Stepper = Psm_hmm.Multi_sim.Stepper
module Stream = Psm_hmm.Filtering.Stream

(* Version 1 marshalled an OCaml value; [Marshal.from_string] on
   client-supplied bytes is unsafe (crafted input can corrupt the
   process), so v1 blobs are rejected outright rather than decoded. *)
let version = "psm-serve-session 2"

(* ---------- encoding ---------- *)

let num_int n = Json.Num (float_of_int n)

let pair_list pairs =
  Json.List
    (List.map (fun (a, b) -> Json.List [ num_int a; num_int b ]) pairs)

let strings_opt = function
  | None -> Json.Null
  | Some arr ->
      Json.List (Array.to_list (Array.map (fun s -> Json.Str s) arr))

let payload_of ~model (p : Estimate.portable) =
  let backend_fields =
    match p.Estimate.portable_backend with
    | Estimate.Portable_filter fp ->
        [ ("backend", Json.Str "filter");
          ("steps", num_int fp.Stream.p_steps);
          ("log_lik", Json.Num fp.Stream.p_log_lik);
          ( "belief",
            Json.List
              (Array.to_list
                 (Array.map (fun v -> Json.Num v) fp.Stream.p_belief)) ) ]
    | Estimate.Portable_sim sp ->
        [ ("backend", Json.Str "sim");
          ( "mode",
            match sp.Stepper.p_mode with
            | `Unstarted -> Json.Obj [ ("kind", Json.Str "unstarted") ]
            | `Synced (row, cursors) ->
                Json.Obj
                  [ ("kind", Json.Str "synced");
                    ("row", num_int row);
                    ("cursors", pair_list cursors) ]
            | `Desynced row ->
                Json.Obj
                  [ ("kind", Json.Str "desynced"); ("row", num_int row) ] );
          ("sim_prev_inputs", strings_opt sp.Stepper.p_prev_inputs);
          ( "entered_via",
            match sp.Stepper.p_entered_via with
            | None -> Json.Null
            | Some (src, dst) -> Json.List [ num_int src; num_int dst ] );
          ("progressed", Json.Bool sp.Stepper.p_progressed);
          ("cycles", num_int sp.Stepper.p_cycles);
          ("wrong_instants", num_int sp.Stepper.p_wrong_instants);
          ("resync_events", num_int sp.Stepper.p_resync_events);
          ("bans", pair_list sp.Stepper.p_bans) ]
  in
  Json.to_string
    (Json.Obj
       (("model", Json.Str model)
       :: ("prev_inputs", strings_opt p.Estimate.portable_prev_inputs)
       :: backend_fields))

let encode ~model portable =
  let payload = payload_of ~model portable in
  Printf.sprintf "%s\n%s\n%s" version
    (Digest.to_hex (Digest.string payload))
    payload

(* ---------- decoding ----------

   Shape-level validation only: every field must be present with the
   right JSON type (floats finite — the printer turns NaN/inf into
   [null], which fails here). Semantic validation against the target
   model (row bounds, belief length, sample widths, …) happens in
   {!Psm_flow.Estimate.import}, which rebuilds the session. *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error ("checkpoint: " ^ s)) fmt

let int_field j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> Ok v
  | None -> err "missing or non-integer field %S" name

let float_field j name =
  match Option.bind (Json.member name j) Json.to_float with
  | Some v -> Ok v
  | None -> err "missing or non-number field %S" name

let bool_field j name =
  match Option.bind (Json.member name j) Json.to_bool with
  | Some v -> Ok v
  | None -> err "missing or non-boolean field %S" name

let string_field j name =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some v -> Ok v
  | None -> err "missing or non-string field %S" name

let int_pair name = function
  | Json.List [ a; b ] -> (
      match (Json.to_int a, Json.to_int b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> err "%S entries must be integer pairs" name)
  | _ -> err "%S entries must be integer pairs" name

let pairs_field j name =
  match Option.bind (Json.member name j) Json.to_list with
  | None -> err "missing or non-array field %S" name
  | Some items ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* p = int_pair name item in
            loop (p :: acc) rest
      in
      loop [] items

let strings_opt_field j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) ->
      let rec loop acc = function
        | [] -> Ok (Some (Array.of_list (List.rev acc)))
        | Json.Str s :: rest -> loop (s :: acc) rest
        | _ -> err "%S entries must be strings" name
      in
      loop [] items
  | Some _ -> err "field %S must be an array or null" name

let filter_backend j =
  let* steps = int_field j "steps" in
  let* log_lik = float_field j "log_lik" in
  let* belief =
    match Option.bind (Json.member "belief" j) Json.to_list with
    | None -> err "missing or non-array field \"belief\""
    | Some items ->
        let rec loop acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | item :: rest -> (
              match Json.to_float item with
              | Some v -> loop (v :: acc) rest
              | None -> err "\"belief\" entries must be numbers")
        in
        loop [] items
  in
  Ok
    (Estimate.Portable_filter
       { Stream.p_steps = steps; p_log_lik = log_lik; p_belief = belief })

let sim_backend j =
  let* mode =
    match Json.member "mode" j with
    | None -> err "missing field \"mode\""
    | Some mj -> (
        let* kind = string_field mj "kind" in
        match kind with
        | "unstarted" -> Ok `Unstarted
        | "desynced" ->
            let* row = int_field mj "row" in
            Ok (`Desynced row)
        | "synced" ->
            let* row = int_field mj "row" in
            let* cursors = pairs_field mj "cursors" in
            Ok (`Synced (row, cursors))
        | other -> err "unknown mode kind %S" other)
  in
  let* prev_inputs = strings_opt_field j "sim_prev_inputs" in
  let* entered_via =
    match Json.member "entered_via" j with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* p = int_pair "entered_via" v in
        Ok (Some p)
  in
  let* progressed = bool_field j "progressed" in
  let* cycles = int_field j "cycles" in
  let* wrong_instants = int_field j "wrong_instants" in
  let* resync_events = int_field j "resync_events" in
  let* bans = pairs_field j "bans" in
  Ok
    (Estimate.Portable_sim
       { Stepper.p_prev_inputs = prev_inputs;
         p_mode = mode;
         p_entered_via = entered_via;
         p_progressed = progressed;
         p_cycles = cycles;
         p_wrong_instants = wrong_instants;
         p_resync_events = resync_events;
         p_bans = bans })

let parse_payload j =
  let* model = string_field j "model" in
  let* prev_inputs = strings_opt_field j "prev_inputs" in
  let* backend_kind = string_field j "backend" in
  let* backend =
    match backend_kind with
    | "filter" -> filter_backend j
    | "sim" -> sim_backend j
    | other -> err "unknown backend %S" other
  in
  Ok
    ( model,
      { Estimate.portable_backend = backend;
        portable_prev_inputs = prev_inputs } )

let decode data =
  match String.index_opt data '\n' with
  | None -> Error "checkpoint: truncated header"
  | Some nl1 -> (
      let found = String.sub data 0 nl1 in
      if not (String.equal found version) then
        err "version mismatch (%S, expected %S)" found version
      else
        match String.index_from_opt data (nl1 + 1) '\n' with
        | None -> Error "checkpoint: truncated digest"
        | Some nl2 ->
            let digest = String.sub data (nl1 + 1) (nl2 - nl1 - 1) in
            let payload =
              String.sub data (nl2 + 1) (String.length data - nl2 - 1)
            in
            if
              not
                (String.equal digest (Digest.to_hex (Digest.string payload)))
            then Error "checkpoint: digest mismatch (corrupted payload)"
            else
              let* j =
                Result.map_error (fun e -> "checkpoint: " ^ e)
                  (Json.of_string payload)
              in
              parse_payload j)
