module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface

let depth = 16
let width = 32

let interface =
  Interface.create
    [ Signal.input "wr_en" 1;
      Signal.input "rd_en" 1;
      Signal.input "wdata" 32;
      Signal.output "rdata" 32;
      Signal.output "full" 1;
      Signal.output "empty" 1 ]

let base_idle = 1.5
let base_write = 12.0
let base_read = 10.0
let w_bus = 1.2
let w_out = 0.8

type state = {
  mem : Bits.t array;
  mutable head : int; (* next pop *)
  mutable count : int;
  mutable rdata : Bits.t;
  mutable prev_wdata : Bits.t;
}

let create () =
  let st =
    { mem = Array.make depth (Bits.zero width);
      head = 0;
      count = 0;
      rdata = Bits.zero width;
      prev_wdata = Bits.zero width }
  in
  let reset () =
    Array.fill st.mem 0 depth (Bits.zero width);
    st.head <- 0;
    st.count <- 0;
    st.rdata <- Bits.zero width;
    st.prev_wdata <- Bits.zero width
  in
  let rec ip =
    { Ip.name = "FIFO";
      interface;
      memory_elements = (depth * width) + width + 10;
      reset;
      step =
        (fun pis ->
          Ip.check_step ip pis;
          (* Registered (Moore) outputs. *)
          let out =
            [| st.rdata;
               Bits.of_bool (st.count = depth);
               Bits.of_bool (st.count = 0) |]
          in
          let wr = Bits.get pis.(0) 0 and rd = Bits.get pis.(1) 0 in
          let wdata = pis.(2) in
          let activity = ref base_idle in
          let do_write = wr && st.count < depth in
          let do_read = rd && st.count > 0 in
          if do_write then begin
            let slot = (st.head + st.count) mod depth in
            st.mem.(slot) <- wdata;
            activity :=
              !activity +. base_write
              +. (w_bus *. float_of_int (Bits.hamming_distance wdata st.prev_wdata))
          end;
          if do_read then begin
            let next = st.mem.(st.head) in
            activity :=
              !activity +. base_read
              +. (w_out *. float_of_int (Bits.hamming_distance st.rdata next));
            st.rdata <- next;
            st.head <- (st.head + 1) mod depth
          end;
          (match (do_write, do_read) with
          | true, false -> st.count <- st.count + 1
          | false, true -> st.count <- st.count - 1
          | _ -> ());
          st.prev_wdata <- wdata;
          (out, !activity)) }
  in
  ip
