(** Deterministic workload (testbench) generators.

    Two testbench families per IP, mirroring the paper's experimental
    setup (Sec. VI):

    - *short-TS*: directed functional-verification-style sequences — reset,
      idle, every operating mode, corner data — sized by default to the
      paper's Table II trace lengths (RAM 34130, MultSum 12002, AES 16504,
      Camellia 78004 instants);
    - *long-TS*: the same phase structure repeated "several times with
      different sets of data" (seeded pseudo-random), default 500000
      instants.

    All generators are pure functions of their parameters: same arguments,
    same stimulus, bit for bit. *)

type stimulus = Psm_bits.Bits.t array array
(** One array of PI values (in interface input order) per cycle. *)

val ram_short : ?length:int -> ?seed:int64 -> unit -> stimulus
val ram_long : ?length:int -> ?seed:int64 -> unit -> stimulus

val multsum_short : ?length:int -> ?seed:int64 -> unit -> stimulus
val multsum_long : ?length:int -> ?seed:int64 -> unit -> stimulus

val aes_short : ?length:int -> ?seed:int64 -> unit -> stimulus
val aes_long : ?length:int -> ?seed:int64 -> unit -> stimulus

val camellia_short : ?length:int -> ?seed:int64 -> unit -> stimulus
val camellia_long : ?length:int -> ?seed:int64 -> unit -> stimulus

val fifo_short : ?length:int -> ?seed:int64 -> unit -> stimulus
(** For the extra (non-paper) FIFO IP: fill/drain/stream directed phases
    plus mixed producer/consumer traffic. *)

val fifo_long : ?length:int -> ?seed:int64 -> unit -> stimulus

val suite : ?parts:int -> total_length:int -> long:bool -> string -> stimulus list
(** [suite ~total_length ~long name] builds a verification suite of
    [parts] (default 4) independent testbenches for the named IP — each a
    complete, well-formed stimulus starting from reset, with its own data
    seed — totalling [total_length] instants. [long] selects the long-TS
    phase structure (random data repetition) over the short-TS one
    (directed phases first). This mirrors the paper's "set of test
    sequences": one PSM chain is generated per element. *)

val short_for : string -> stimulus
(** Dispatch by IP name ("RAM", "MultSum", "AES", "Camellia"; the
    structural and ablation variants map to their base IP). Raises
    [Invalid_argument] for an unknown name. *)

val long_for : ?length:int -> string -> stimulus

val paper_short_length : string -> int
(** The Table II short-TS trace length for the IP. *)

val of_witnesses :
  Psm_trace.Interface.t -> Psm_bits.Bits.t array list -> stimulus
(** Replay hook for the symbolic verifier: turn witness valuations
    (complete interface samples, e.g. [Psm_verify.Verify.witnesses]) into
    a stimulus, one cycle per witness, keeping only the primary-input
    values in interface input order. Raises [Invalid_argument] when a
    valuation's arity does not match the interface. *)
