(** Camellia-128 block cipher core (RFC 3713).

    Pure functions over 64-bit halves, exposed round-wise so the
    {!Camellia} IP can step one Feistel round per clock cycle. Pinned by
    the RFC 3713 test vector in the test suite. *)

type half = int64
(** One 64-bit half of the 128-bit state, unsigned interpretation. *)

type subkeys = {
  kw : half array;  (** 4 whitening keys. *)
  k : half array;  (** 18 round keys. *)
  ke : half array;  (** 4 FL/FL⁻¹ keys. *)
}

val rounds : int
(** 18 for Camellia-128. *)

val sbox1 : int array

val f : half -> half -> half
(** [f x ke] — the Feistel F-function (S-box layer + P permutation). *)

val fl : half -> half -> half
val flinv : half -> half -> half

val expand_key : half * half -> subkeys
(** Key schedule for a 128-bit key given as (most significant half, least
    significant half). *)

val decryption_subkeys : subkeys -> subkeys
(** The reversed schedule: running the encryption network with these
    subkeys decrypts. *)

val round : subkeys -> int -> half * half -> half * half
(** [round sk i (d1, d2)] applies Feistel round [i] (1-based, 1..18):
    odd rounds update d2 from d1, even rounds update d1 from d2. The FL
    layers that precede rounds 7 and 13 are NOT included — apply
    {!fl_layer} first on those rounds. *)

val fl_layer : subkeys -> int -> half * half -> half * half
(** [fl_layer sk j] applies the [j]-th FL/FL⁻¹ pair (j ∈ {0, 1}):
    d1 ← FL(d1, ke.(2j)), d2 ← FL⁻¹(d2, ke.(2j+1)). *)

val encrypt_block : key:half * half -> half * half -> half * half
val decrypt_block : key:half * half -> half * half -> half * half

val halves_of_bits : Psm_bits.Bits.t -> half * half
(** (most significant 64 bits, least significant 64 bits) of a 128-bit
    vector. *)

val bits_of_halves : half * half -> Psm_bits.Bits.t
val halves_of_hex : string -> half * half
val hex_of_halves : half * half -> string
