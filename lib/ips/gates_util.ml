open Psm_rtl
module Bits = Psm_bits.Bits

let enabled_reg nl ~enable ?init inputs =
  let q, connect = Netlist.dff_loop_vector nl ?init (Array.length inputs) in
  connect (Comb.mux2 nl ~sel:enable q inputs);
  q

let sbox_lut nl table byte =
  if Array.length table <> 256 then invalid_arg "Gates_util.sbox_lut: need 256 entries";
  if Array.length byte <> 8 then invalid_arg "Gates_util.sbox_lut: need an 8-bit input";
  Array.init 8 (fun bit ->
      let ways =
        Array.init 256 (fun v -> [| Netlist.const nl (table.(v) lsr bit land 1 = 1) |])
      in
      (Comb.mux_tree nl ~sel:byte ways).(0))

let xor_byte nl a b = Comb.xor_v nl a b

let xtime nl b =
  if Array.length b <> 8 then invalid_arg "Gates_util.xtime: need an 8-bit input";
  let msb = b.(7) in
  (* (b << 1) xor (msb ? 0x1B : 0): bits 1, 3, 4 of the shifted value are
     conditionally inverted; bit 0 becomes msb. *)
  [| msb;
     Netlist.gate nl Netlist.Xor [| b.(0); msb |];
     b.(1);
     Netlist.gate nl Netlist.Xor [| b.(2); msb |];
     Netlist.gate nl Netlist.Xor [| b.(3); msb |];
     b.(4);
     b.(5);
     b.(6) |]

let byte_const nl v = Comb.const_vector nl (Bits.of_int ~width:8 (v land 0xFF))

let gf_mul_const nl k b =
  if k <= 0 || k > 15 then invalid_arg "Gates_util.gf_mul_const: constant in 1..15";
  let x1 = b in
  let x2 = xtime nl x1 in
  let x4 = xtime nl x2 in
  let x8 = xtime nl x4 in
  let terms =
    List.filteri (fun i _ -> k lsr i land 1 = 1) [ x1; x2; x4; x8 ]
  in
  match terms with
  | [] -> assert false
  | first :: rest -> List.fold_left (fun acc t -> xor_byte nl acc t) first rest

let rotl_nets v n =
  let len = Array.length v in
  let n = ((n mod len) + len) mod len in
  Array.init len (fun i -> v.((i - n + len) mod len))
