module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface

let word_count = 256
let word_bits = 32

(* Activity weights (register-bit-toggle equivalents). The write path is
   dominated by the input-bus term so that power correlates strongly with
   the Hamming distance of consecutive inputs — the property the paper
   reports for RAM and exploits via linear regression. *)
let w_bus = 3.0
let w_addr = 3.0
let w_cell = 0.1
let w_read = 0.05
let base_idle = 2.0
let base_read = 30.0
let base_write = 40.0

type state = {
  mem : Bits.t array;
  mutable rdata : Bits.t;
  mutable prev_wdata : Bits.t;
  mutable prev_addr : Bits.t;
}

let interface =
  Interface.create
    [ Signal.input "ce" 1;
      Signal.input "we" 1;
      Signal.input "addr" 10;
      Signal.input "wdata" 32;
      Signal.output "rdata" 32 ]

let create_with_peek () =
  let st =
    { mem = Array.make word_count (Bits.zero word_bits);
      rdata = Bits.zero word_bits;
      prev_wdata = Bits.zero word_bits;
      prev_addr = Bits.zero 10 }
  in
  let reset () =
    Array.fill st.mem 0 word_count (Bits.zero word_bits);
    st.rdata <- Bits.zero word_bits;
    st.prev_wdata <- Bits.zero word_bits;
    st.prev_addr <- Bits.zero 10
  in
  let rec ip =
    { Ip.name = "RAM";
      interface;
      memory_elements = (word_count * word_bits) + word_bits;
      reset;
      step =
        (fun pis ->
          Ip.check_step ip pis;
          (* Registered (Moore) read port: rdata returned for this cycle is
             the register content entering it. *)
          let out = st.rdata in
          let ce = Bits.get pis.(0) 0 in
          let we = Bits.get pis.(1) 0 in
          let addr = Bits.to_int pis.(2) lsr 2 land (word_count - 1) in
          let wdata = pis.(3) in
          (* Address decoder and wordline drivers switch with the address
             bus on every enabled access. *)
          let addr_flips = Bits.hamming_distance pis.(2) st.prev_addr in
          let activity =
            if not ce then base_idle
            else if we then begin
              let bus_flips = Bits.hamming_distance wdata st.prev_wdata in
              let cell_flips = Bits.hamming_distance st.mem.(addr) wdata in
              st.mem.(addr) <- wdata;
              base_write
              +. (w_bus *. float_of_int bus_flips)
              +. (w_addr *. float_of_int addr_flips)
              +. (w_cell *. float_of_int cell_flips)
            end
            else begin
              let next = st.mem.(addr) in
              let out_flips = Bits.hamming_distance st.rdata next in
              st.rdata <- next;
              base_read
              +. (w_addr *. float_of_int addr_flips)
              +. (w_read *. float_of_int out_flips)
            end
          in
          st.prev_wdata <- wdata;
          st.prev_addr <- pis.(2);
          ([| out |], activity)) }
  in
  let peek i =
    if i < 0 || i >= word_count then invalid_arg "Ram.peek: word index out of range";
    st.mem.(i)
  in
  (ip, peek)

let create () = fst (create_with_peek ())
