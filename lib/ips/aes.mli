(** AES-128 encryption/decryption IP — round-per-cycle FSM over
    {!Aes_core}.

    Interface (PIs: 260 bits, POs: 129 bits, matching Table I):
    - [key]      (128) cipher key, sampled on [start];
    - [data_in]  (128) plaintext/ciphertext block, sampled on [start];
    - [start]    (1)   begin a new block (aborts any block in flight);
    - [decrypt]  (1)   0 = encrypt, 1 = decrypt, sampled on [start];
    - [enable]   (1)   clock gate: when 0 the IP holds all state;
    - [rst]      (1)   synchronous reset;
    - [data_out] (128) result block, held until the next block completes;
    - [done]     (1)   1 from result availability until the next [start].

    A block takes 11 cycles: the start cycle (key schedule + initial
    AddRoundKey) followed by 10 round cycles; [data_out] and [done] are
    published on the final round cycle.

    Power behaviour: per-round activity is the Hamming distance of the
    128-bit state transition plus a constant control/key-pipeline term, so
    round power concentrates tightly around its mean — AES behaves as a
    non-data-dependent IP, as in the paper (MRE ≈ 3%). *)

val create : unit -> Ip.t

val cycles_per_block : int
(** Cycles from [start] to [done] inclusive. *)
