(** Camellia-128 encryption/decryption IP — one Feistel round per cycle
    over {!Camellia_core}.

    Interface (PIs: 262 bits, POs: 129 bits, matching Table I):
    - [key]      (128) cipher key, sampled on [start];
    - [data_in]  (128) plaintext/ciphertext block, sampled on [start];
    - [start]    (1)   begin a new block;
    - [decrypt]  (1)   0 = encrypt, 1 = decrypt, sampled on [start];
    - [enable]   (1)   clock gate;
    - [rst]      (1)   synchronous reset;
    - [mode]     (2)   reserved configuration input (must be 0); present
                       for interface parity with the paper's 262-bit PI
                       count;
    - [data_out] (128) result block;
    - [done]     (1)   1 from result availability until the next [start].

    A block takes 19 cycles: start (key schedule) + 18 rounds (the FL/FL⁻¹
    layers execute within the cycles of rounds 7 and 13).

    Power behaviour — the paper's problem child. The model contains two
    subcomponents whose switching is poorly correlated: the Feistel data
    path (observable through PIs/POs) and an always-running key-schedule
    scrubber whose utilization follows a bounded random walk driven by an
    internal LFSR, invisible at the interface. The scrubber inflates every
    power state's variance with no PI/PO correlation, so neither
    constant-μ states nor the Hamming-distance regression can capture it —
    reproducing the mechanism the paper blames for Camellia's ≈32% MRE. *)

val create : unit -> Ip.t

val create_without_scrubber : unit -> Ip.t
(** Ablation: the same IP with the weakly-correlated subcomponent disabled
    (its activity replaced by the equivalent constant mean). Shows that the
    high MRE comes from the correlation structure, not the magnitude, of
    the hidden activity. *)

val cycles_per_block : int

val create_decomposed : unit -> Decomposed.t
(** Hierarchical view for {!Psm_flow.Hier}: the datapath observed at the
    top-level PIs/POs plus the scrubber observed at its internal boundary
    (its quantized utilization level). Implements the paper's
    concluding-remarks proposal — with subcomponent visibility, Camellia
    recovers AES-grade accuracy. *)
