(** Shared gate-level building blocks for the structural IP netlists:
    byte-wide S-box LUTs (balanced mux trees over constant leaves),
    GF(2⁸) xtime networks and register helpers. *)

open Psm_rtl

val enabled_reg :
  Netlist.t -> enable:Netlist.net -> ?init:Psm_bits.Bits.t -> Netlist.net array ->
  Netlist.net array
(** Register bank with enable recirculation: q holds when [enable] is 0. *)

val sbox_lut : Netlist.t -> int array -> Netlist.net array -> Netlist.net array
(** [sbox_lut nl table byte] — an 8-in/8-out lookup table materialized as
    eight 256-leaf mux trees over constants, driven by the 8 input nets
    (LSB first). [table] must have 256 entries in [0, 255]. *)

val xor_byte : Netlist.t -> Netlist.net array -> Netlist.net array -> Netlist.net array

val xtime : Netlist.t -> Netlist.net array -> Netlist.net array
(** GF(2⁸) multiplication by x modulo x⁸+x⁴+x³+x+1 (the AES polynomial),
    as pure wiring plus three XOR gates. *)

val gf_mul_const : Psm_rtl.Netlist.t -> int -> Netlist.net array -> Netlist.net array
(** Multiply a byte by a small constant (1..15) in AES's GF(2⁸), built
    from {!xtime} chains and XORs. *)

val byte_const : Netlist.t -> int -> Netlist.net array

val rotl_nets : 'a array -> int -> 'a array
(** Rotate a net vector left (toward higher indices) — pure wiring. *)
