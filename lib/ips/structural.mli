(** Gate-level structural netlists of the benchmark IPs.

    These play the role of the synthesized netlists in the paper's setup:
    they provide (i) elaboration times and gate counts for Table I's
    synthesis columns, (ii) genuine gate-level switching activity — the
    PrimeTime-PX-grade power reference — where tractable, and (iii) the
    structural-vs-behavioural ablation. *)

val netlist_for : string -> (unit -> Psm_rtl.Netlist.t) option
(** Builder for the named IP's structural netlist, when one exists. *)

val create_for : string -> (unit -> Ip.t) option
(** Gate-level IP model (netlist simulation; activity = net toggles). The
    cipher variants are cycle-exact against their behavioural models;
    Camellia's omits the hidden scrubber (a power-only artifact). *)

val available : string list
(** Names accepted by {!netlist_for} / {!create_for}: the four benchmark
    IPs. *)
