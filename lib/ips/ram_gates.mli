(** Gate-level structural netlist of the 1 KB RAM — 256 × 32 DFF cells with
    write-enable decoding and a registered read port, functionally
    equivalent to {!Ram} cycle for cycle. Provides the RAM's Table I
    synthesis columns and the gate-level power reference. *)

val netlist : unit -> Psm_rtl.Netlist.t

val create : unit -> Ip.t
(** IP wrapper over the netlist simulation; activity = per-cycle net
    toggles. *)
