let builders =
  [ ("RAM", Ram_gates.netlist);
    ("MultSum", Multsum.structural_netlist);
    ("AES", Aes_gates.netlist);
    ("Camellia", Camellia_gates.netlist) ]

let netlist_for name = List.assoc_opt name builders

let available = List.map fst builders

let ip_builders =
  [ ("RAM", Ram_gates.create);
    ("MultSum", Multsum.create_structural);
    ("AES", Aes_gates.create);
    ("Camellia", Camellia_gates.create) ]

let create_for name = List.assoc_opt name ip_builders
