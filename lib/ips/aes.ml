module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface

let interface =
  Interface.create
    [ Signal.input "key" 128;
      Signal.input "data_in" 128;
      Signal.input "start" 1;
      Signal.input "decrypt" 1;
      Signal.input "enable" 1;
      Signal.input "rst" 1;
      Signal.output "data_out" 128;
      Signal.output "done" 1 ]

let cycles_per_block = 11

(* Activity weights. [base_round] models the control logic and round-key
   pipeline that switch regardless of data; the state-transition Hamming
   term concentrates near 64 ± ~6 toggles, so total round power varies only
   a few percent — the non-data-dependent profile the paper reports. *)
let base_idle = 4.0
let base_hold = 1.0
let base_round = 110.0
let key_schedule_burst = 420.0
let w_state = 1.0

type phase = Idle | Rounds of int (* next round index, 1 .. rounds *)

type state = {
  mutable phase : phase;
  mutable block : Aes_core.block;
  mutable round_keys : Aes_core.block array;
  mutable decrypting : bool;
  mutable data_out : Bits.t;
  mutable done_flag : bool;
}

let fresh_state () =
  { phase = Idle;
    block = Array.make 16 0;
    round_keys = [||];
    decrypting = false;
    data_out = Bits.zero 128;
    done_flag = false }

let popcount8 =
  let count x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  Array.init 256 count

let block_hamming a b =
  let acc = ref 0 in
  for i = 0 to 15 do
    acc := !acc + popcount8.(a.(i) lxor b.(i))
  done;
  !acc

let create () =
  let st = fresh_state () in
  let reset () =
    st.phase <- Idle;
    st.block <- Array.make 16 0;
    st.round_keys <- [||];
    st.decrypting <- false;
    st.data_out <- Bits.zero 128;
    st.done_flag <- false
  in
  let rec ip =
    { Ip.name = "AES";
      interface;
      memory_elements = 128 (* state *) + (11 * 128) (* round keys *) + 128 (* out *) + 6;
      reset;
      step =
        (fun pis ->
          Ip.check_step ip pis;
          (* Registered (Moore) outputs: the values returned for this cycle
             are the ones entering it, as a netlist sampled before the clock
             edge would show. *)
          let out_data = st.data_out and out_done = st.done_flag in
          let key = pis.(0)
          and data_in = pis.(1)
          and start = Bits.get pis.(2) 0
          and decrypt = Bits.get pis.(3) 0
          and enable = Bits.get pis.(4) 0
          and rst = Bits.get pis.(5) 0 in
          let activity =
            if rst then begin
              let flips = block_hamming st.block (Array.make 16 0) in
              reset ();
              base_idle +. float_of_int flips
            end
            else if not enable then base_hold
            else if start then begin
              (* Key schedule and initial whitening in the start cycle. *)
              let rks = Aes_core.expand_key (Aes_core.block_of_bits key) in
              let first_rk = if decrypt then rks.(Aes_core.rounds) else rks.(0) in
              let next = Aes_core.add_round_key first_rk (Aes_core.block_of_bits data_in) in
              let flips = block_hamming st.block next in
              st.block <- next;
              st.round_keys <- rks;
              st.decrypting <- decrypt;
              st.phase <- Rounds 1;
              st.done_flag <- false;
              key_schedule_burst +. (w_state *. float_of_int flips)
            end
            else begin
              match st.phase with
              | Idle -> base_idle
              | Rounds r ->
                  let last = r = Aes_core.rounds in
                  let rk =
                    if st.decrypting then st.round_keys.(Aes_core.rounds - r)
                    else st.round_keys.(r)
                  in
                  let next =
                    if st.decrypting then Aes_core.decrypt_round ~last rk st.block
                    else Aes_core.encrypt_round ~last rk st.block
                  in
                  let flips = block_hamming st.block next in
                  st.block <- next;
                  if last then begin
                    st.data_out <- Aes_core.bits_of_block next;
                    st.done_flag <- true;
                    st.phase <- Idle
                  end
                  else st.phase <- Rounds (r + 1);
                  base_round +. (w_state *. float_of_int flips)
            end
          in
          ([| out_data; Bits.of_bool out_done |], activity)) }
  in
  ip
