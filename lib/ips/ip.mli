(** The common cycle-accurate IP model interface.

    An IP is a black box with primary inputs and outputs (sampled once per
    clock) plus a per-cycle *internal activity* figure — the weighted count
    of internal register bits that toggled — which feeds the reference
    power model and is deliberately NOT part of the observable interface:
    the mining methodology must recover power behaviour from PIs/POs and
    the power trace alone, exactly as the paper prescribes for black-box
    IPs. *)

type t = {
  name : string;
  interface : Psm_trace.Interface.t;
      (** All inputs precede all outputs, in declaration order. *)
  memory_elements : int;
      (** Internal register bits — Table I's "Memory elements". *)
  reset : unit -> unit;
  step : Psm_bits.Bits.t array -> Psm_bits.Bits.t array * float;
      (** [step pis] advances one clock cycle. [pis] is aligned with the
          interface's inputs (in order); the result is the outputs (in
          order) and the cycle's weighted internal activity. *)
}

val input_signals : t -> Psm_trace.Signal.t list
val output_signals : t -> Psm_trace.Signal.t list

val pi_bits : t -> int
(** Total primary-input width — Table I's "PIs". *)

val po_bits : t -> int

val check_step : t -> Psm_bits.Bits.t array -> unit
(** Validates a PI vector against the interface (arity and widths); raises
    [Invalid_argument] with the offending signal name. Model [step]
    functions call this on entry. *)

val pp : Format.formatter -> t -> unit
