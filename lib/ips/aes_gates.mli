(** Gate-level structural netlist of the AES-128 IP: SubBytes/InvSubBytes
    as 256-leaf LUT mux trees, MixColumns/InvMixColumns as xtime networks,
    the full key schedule materialized combinationally (latched into an
    11 × 128 round-key bank on [start]), and the same round-per-cycle
    control FSM as the behavioural {!Aes} model — cycle-exact against it.

    ~190k gates: this is the "synthesized netlist" whose per-net toggle
    simulation plays PrimeTime PX for AES. *)

val netlist : unit -> Psm_rtl.Netlist.t

val create : unit -> Ip.t
