(** AES-128 block cipher core (FIPS-197).

    Pure byte-level functions used by the round-per-cycle {!Aes} IP model.
    Blocks and round keys are 16-element byte arrays laid out as in FIPS-197
    (byte [i] is state element [row i mod 4, column i / 4]). The S-box is
    derived algebraically (GF(2⁸) inversion + affine map) rather than
    transcribed, and the whole core is pinned by the FIPS-197 Appendix C
    test vectors in the test suite. *)

type block = int array
(** 16 bytes, each in [0, 255]. *)

val rounds : int
(** 10 for AES-128. *)

val sbox : int array
val inv_sbox : int array

val expand_key : int array -> block array
(** [expand_key key] is the 11 round keys (AddRoundKey operands) derived
    from a 16-byte key. *)

val add_round_key : block -> block -> block

val encrypt_round : last:bool -> block -> block -> block
(** [encrypt_round ~last round_key state]: SubBytes, ShiftRows,
    MixColumns (skipped when [last]), AddRoundKey. *)

val decrypt_round : last:bool -> block -> block -> block
(** One InvCipher round: InvShiftRows, InvSubBytes, AddRoundKey,
    InvMixColumns (skipped when [last]). *)

val encrypt_block : key:int array -> block -> block
val decrypt_block : key:int array -> block -> block

val block_of_bits : Psm_bits.Bits.t -> block
(** Big-endian: byte 0 of the block is bits [127:120]. *)

val bits_of_block : block -> Psm_bits.Bits.t

val block_of_hex : string -> block
(** 32 hex digits. *)

val hex_of_block : block -> string
