(** Gate-level structural netlist of the Camellia-128 IP: the Feistel
    F-function (8 S-box LUT mux trees + the P byte-diffusion layer), the
    FL/FL⁻¹ layers, the full key schedule materialized combinationally
    (four more F instances) and latched into a 26 × 64 subkey bank —
    pre-reversed for decryption, so the round network is direction-
    agnostic — under the same round-per-cycle control FSM as the
    behavioural {!Camellia} model. Cycle-exact against it (the behavioural
    model's hidden scrubber contributes power only, never function).

    The netlist omits the scrubber subcomponent: it is a power-modelling
    artifact with no logic function (see DESIGN.md). *)

val netlist : unit -> Psm_rtl.Netlist.t

val create : unit -> Ip.t
