(** MultSum — a multiply-accumulate datapath (the paper's DesignWare MAC
    stand-in): [result = a × b + c] over a two-stage pipeline.

    Interface (PIs: 49 bits, POs: 32 bits, matching Table I):
    - [a], [b], [c] (16 each) operands;
    - [en]          (1)       pipeline advance; when 0 everything holds;
    - [result]      (32)      registered output, 2 cycles after the
                              operands entered.

    Two implementations share the same interface:
    - {!create}: behavioural, with a datapath-activity model whose
      multiplier term depends on operand values (not just input toggles) —
      making MultSum data-dependent in a way input-Hamming regression only
      partially captures, as in the paper (MRE ≈ 4%);
    - {!create_structural}: a real gate-level netlist (input registers,
      16×16 array multiplier, 32-bit adder, output register) simulated with
      {!Psm_rtl.Sim}; its activity is the exact per-cycle net toggle count.
      Used for the reference-granularity ablation and Table I's elaboration
      column. *)

val create : unit -> Ip.t

val create_structural : unit -> Ip.t

val structural_netlist : unit -> Psm_rtl.Netlist.t
(** The elaborated netlist (also used to time elaboration for Table I). *)

val model : a:int -> b:int -> c:int -> int
(** The golden function: [(a * b + c) mod 2^32] for 16-bit operands. *)
