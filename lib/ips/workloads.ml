module Bits = Psm_bits.Bits
module Prng = Psm_stats.Prng

type stimulus = Bits.t array array

let paper_short_length = function
  | "RAM" -> 34130
  | "FIFO" -> 12000 (* not in the paper; a convenient suite size *)
  | "MultSum" | "MultSum-gates" -> 12002
  | "AES" -> 16504
  | "Camellia" | "Camellia-noscrub" -> 78004
  | name -> invalid_arg ("Workloads.paper_short_length: unknown IP " ^ name)

let default_long_length = 500_000

(* Growable sample buffer; generators emit into it until the target length
   is reached, then it is truncated exactly. *)
module Vec = struct
  type t = { mutable rev : Bits.t array list; mutable n : int; target : int }

  let create target = { rev = []; n = 0; target }
  let full v = v.n >= v.target
  let push v sample = if not (full v) then begin v.rev <- sample :: v.rev; v.n <- v.n + 1 end

  let finish v =
    let out = Array.make v.n [||] in
    List.iteri (fun i s -> out.(v.n - 1 - i) <- s) v.rev;
    out
end

let b1 b = Bits.of_bool b
let i w n = Bits.of_int ~width:w n

(* ---------- RAM ---------- *)

(* The testbench mimics a bus master: between operations the address and
   write-data buses HOLD their last driven values rather than being forced
   to zero. Gratuitous bus clears would charge the RAM's power model with
   switching the operation never asked for and decorrelate power from the
   Hamming distance of consecutive inputs. *)
type ram_bus = { mutable addr : int; mutable wdata : Bits.t }

let ram_bus () = { addr = 0; wdata = Bits.zero 32 }

let ram_sample bus ~ce ~we = [| b1 ce; b1 we; i 10 (bus.addr land 0x3FF); bus.wdata |]

let ram_idle bus v cycles =
  for _ = 1 to cycles do
    Vec.push v (ram_sample bus ~ce:false ~we:false)
  done

let ram_write bus v ~addr ~wdata =
  bus.addr <- addr;
  bus.wdata <- wdata;
  Vec.push v (ram_sample bus ~ce:true ~we:true)

let ram_read bus v ~addr =
  bus.addr <- addr;
  Vec.push v (ram_sample bus ~ce:true ~we:false)

let ram_patterns w =
  [ Bits.zero 32; Bits.ones 32; i 32 0xAAAA5555; i 32 (1 lsl (w mod 32)) ]

let ram_directed bus v =
  ram_idle bus v 32;
  (* Write walk over the whole array with corner patterns, then read back. *)
  List.iteri
    (fun pass _ ->
      for w = 0 to Ram.word_count - 1 do
        ram_write bus v ~addr:(w lsl 2) ~wdata:(List.nth (ram_patterns w) pass)
      done)
    (ram_patterns 0);
  for pass = 0 to 3 do
    ignore pass;
    for w = 0 to Ram.word_count - 1 do
      ram_read bus v ~addr:(w lsl 2)
    done
  done;
  ram_idle bus v 16

let ram_mixed bus v rng =
  (* Bursts of sequential writes then reads (memcpy-like), with idle
     gaps. *)
  while not (Vec.full v) do
    let base = Prng.int rng Ram.word_count in
    let burst = 8 + Prng.int rng 24 in
    for k = 0 to burst - 1 do
      let addr = (base + k) mod Ram.word_count lsl 2 in
      ram_write bus v ~addr ~wdata:(Prng.bits rng ~width:32)
    done;
    for k = 0 to burst - 1 do
      let addr = (base + k) mod Ram.word_count lsl 2 in
      ram_read bus v ~addr
    done;
    ram_idle bus v (1 + Prng.int rng 8)
  done

let ram_short ?(length = paper_short_length "RAM") ?(seed = 0x5241_4D00L) () =
  let v = Vec.create length in
  let bus = ram_bus () in
  ram_directed bus v;
  ram_mixed bus v (Prng.create ~seed);
  Vec.finish v

let ram_long ?(length = default_long_length) ?(seed = 0x5241_4D01L) () =
  let v = Vec.create length in
  let bus = ram_bus () in
  ram_directed bus v;
  ram_mixed bus v (Prng.create ~seed);
  Vec.finish v

(* ---------- MultSum ---------- *)

let multsum_sample ~a ~b ~c ~en = [| a; b; c; b1 en |]

let multsum_idle v cycles =
  for _ = 1 to cycles do
    Vec.push v (multsum_sample ~a:(Bits.zero 16) ~b:(Bits.zero 16) ~c:(Bits.zero 16) ~en:false)
  done

let multsum_corners =
  let z = Bits.zero 16 and o = Bits.ones 16 and one = Bits.of_int ~width:16 1 in
  let h = Bits.of_int ~width:16 0x8000 in
  [ (z, z, z); (o, o, o); (one, o, z); (o, one, o); (h, h, z); (h, one, h);
    (one, one, one); (z, o, o) ]

let multsum_directed v =
  multsum_idle v 16;
  List.iter
    (fun (a, b, c) ->
      for _ = 1 to 2 do
        Vec.push v (multsum_sample ~a ~b ~c ~en:true)
      done)
    multsum_corners;
  (* Walking-ones sweep (diagonal): enough to exercise every operand bit
     without dominating the suite with atypically low-activity vectors. *)
  for bit = 0 to 15 do
    Vec.push v
      (multsum_sample
         ~a:(i 16 (1 lsl bit))
         ~b:(i 16 (1 lsl ((bit + 5) mod 16)))
         ~c:(i 16 (bit lor (bit lsl 8)))
         ~en:true)
  done;
  multsum_idle v 8

let multsum_mixed v rng =
  while not (Vec.full v) do
    let burst = 16 + Prng.int rng 48 in
    for _ = 1 to burst do
      Vec.push v
        (multsum_sample ~a:(Prng.bits rng ~width:16) ~b:(Prng.bits rng ~width:16)
           ~c:(Prng.bits rng ~width:16) ~en:true)
    done;
    multsum_idle v (1 + Prng.int rng 6)
  done

let multsum_short ?(length = paper_short_length "MultSum") ?(seed = 0x4D41_4300L) () =
  let v = Vec.create length in
  multsum_directed v;
  multsum_mixed v (Prng.create ~seed);
  Vec.finish v

let multsum_long ?(length = default_long_length) ?(seed = 0x4D41_4301L) () =
  let v = Vec.create length in
  multsum_directed v;
  multsum_mixed v (Prng.create ~seed);
  Vec.finish v

(* ---------- FIFO ---------- *)

type fifo_bus = { mutable wdata : Bits.t }

let fifo_sample bus ~wr ~rd = [| b1 wr; b1 rd; bus.wdata |]

let fifo_idle bus v cycles =
  for _ = 1 to cycles do
    Vec.push v (fifo_sample bus ~wr:false ~rd:false)
  done

let fifo_push bus v rng =
  bus.wdata <- Prng.bits rng ~width:32;
  Vec.push v (fifo_sample bus ~wr:true ~rd:false)

let fifo_pop bus v = Vec.push v (fifo_sample bus ~wr:false ~rd:true)

let fifo_stream bus v rng cycles =
  (* Balanced producer/consumer: push and pop in the same cycle. *)
  for _ = 1 to cycles do
    bus.wdata <- Prng.bits rng ~width:32;
    Vec.push v (fifo_sample bus ~wr:true ~rd:true)
  done

let fifo_directed bus v rng =
  fifo_idle bus v 16;
  (* Fill to full (plus attempted overflow), drain to empty (plus
     attempted underflow). *)
  for _ = 1 to Fifo.depth + 4 do
    fifo_push bus v rng
  done;
  for _ = 1 to Fifo.depth + 4 do
    fifo_pop bus v
  done;
  fifo_idle bus v 8;
  fifo_stream bus v rng 64;
  fifo_idle bus v 8

let fifo_mixed bus v rng =
  while not (Vec.full v) do
    (match Prng.int rng 4 with
    | 0 ->
        (* Producer burst. *)
        for _ = 1 to 4 + Prng.int rng 12 do
          fifo_push bus v rng
        done
    | 1 ->
        for _ = 1 to 4 + Prng.int rng 12 do
          fifo_pop bus v
        done
    | 2 -> fifo_stream bus v rng (8 + Prng.int rng 24)
    | _ -> fifo_idle bus v (1 + Prng.int rng 8));
    ()
  done

let fifo_short ?(length = 12000) ?(seed = 0x4649_464FL) () =
  let v = Vec.create length in
  let bus = { wdata = Bits.zero 32 } in
  let rng = Prng.create ~seed in
  fifo_directed bus v rng;
  fifo_mixed bus v rng;
  Vec.finish v

let fifo_long ?(length = default_long_length) ?(seed = 0x4649_4650L) () =
  let v = Vec.create length in
  let bus = { wdata = Bits.zero 32 } in
  let rng = Prng.create ~seed in
  fifo_directed bus v rng;
  fifo_mixed bus v rng;
  Vec.finish v

(* ---------- Block ciphers (shared shape) ---------- *)

type cipher_spec = {
  pad_inputs : Bits.t array -> Bits.t array;
      (** Extend (key, data, start, decrypt, enable, rst) with any extra
          trailing inputs (Camellia's [mode]). *)
  block_cycles : int;  (** Cycles from start to done, inclusive. *)
  directed_vectors : (string * string) list;  (** (key, data) hex pairs. *)
}

let cipher_sample spec ~key ~data ~start ~decrypt ~enable ~rst =
  spec.pad_inputs [| key; data; b1 start; b1 decrypt; b1 enable; b1 rst |]

let cipher_idle spec v ~enable cycles =
  let z = Bits.zero 128 in
  for _ = 1 to cycles do
    Vec.push v (cipher_sample spec ~key:z ~data:z ~start:false ~decrypt:false ~enable ~rst:false)
  done

let cipher_block spec v ~key ~data ~decrypt =
  Vec.push v (cipher_sample spec ~key ~data ~start:true ~decrypt ~enable:true ~rst:false);
  (* Buses realistically hold their values while the core runs. *)
  for _ = 2 to spec.block_cycles do
    Vec.push v (cipher_sample spec ~key ~data ~start:false ~decrypt ~enable:true ~rst:false)
  done

let cipher_reset spec v =
  let z = Bits.zero 128 in
  Vec.push v (cipher_sample spec ~key:z ~data:z ~start:false ~decrypt:false ~enable:true ~rst:true)

let cipher_directed spec v =
  cipher_reset spec v;
  (* The core stays clock-gated until first use: a freshly reset datapath
     is indistinguishable from a computing one at the interface (all flags
     low), so a realistic testbench keeps it disabled. *)
  cipher_idle spec v ~enable:false 8;
  List.iter
    (fun (key_hex, data_hex) ->
      let key = Bits.of_hex_string ~width:128 key_hex in
      let data = Bits.of_hex_string ~width:128 data_hex in
      cipher_block spec v ~key ~data ~decrypt:false;
      cipher_idle spec v ~enable:true 3;
      cipher_block spec v ~key ~data ~decrypt:true;
      cipher_idle spec v ~enable:false 2;
      cipher_idle spec v ~enable:true 2)
    spec.directed_vectors

let cipher_mixed spec v rng =
  while not (Vec.full v) do
    let key = Prng.bits rng ~width:128 in
    (* Several blocks under the same key, as a real session would. *)
    let blocks = 1 + Prng.int rng 6 in
    for _ = 1 to blocks do
      let data = Prng.bits rng ~width:128 in
      cipher_block spec v ~key ~data ~decrypt:(Prng.bool rng)
    done;
    cipher_idle spec v ~enable:true (Prng.int rng 6);
    if Prng.int rng 4 = 0 then cipher_idle spec v ~enable:false (1 + Prng.int rng 4)
  done

let cipher_vectors =
  [ ("000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff");
    ("00000000000000000000000000000000", "00000000000000000000000000000000");
    ("ffffffffffffffffffffffffffffffff", "ffffffffffffffffffffffffffffffff");
    ("0123456789abcdeffedcba9876543210", "0123456789abcdeffedcba9876543210");
    ("00000000000000000000000000000000", "80000000000000000000000000000000");
    ("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "55555555555555555555555555555555") ]

let aes_spec =
  { pad_inputs = (fun a -> a);
    block_cycles = Aes.cycles_per_block;
    directed_vectors = cipher_vectors }

let camellia_spec =
  { pad_inputs = (fun a -> Array.append a [| Bits.zero 2 |]);
    block_cycles = Camellia.cycles_per_block;
    directed_vectors = cipher_vectors }

let cipher_short spec ~length ~seed =
  let v = Vec.create length in
  cipher_directed spec v;
  cipher_mixed spec v (Prng.create ~seed);
  Vec.finish v

let cipher_long spec ~length ~seed =
  let v = Vec.create length in
  cipher_reset spec v;
  cipher_idle spec v ~enable:false 4;
  cipher_mixed spec v (Prng.create ~seed);
  Vec.finish v

let aes_short ?(length = paper_short_length "AES") ?(seed = 0x4145_5300L) () =
  cipher_short aes_spec ~length ~seed

let aes_long ?(length = default_long_length) ?(seed = 0x4145_5301L) () =
  cipher_long aes_spec ~length ~seed

let camellia_short ?(length = paper_short_length "Camellia") ?(seed = 0x4341_4D00L) () =
  cipher_short camellia_spec ~length ~seed

let camellia_long ?(length = default_long_length) ?(seed = 0x4341_4D01L) () =
  cipher_long camellia_spec ~length ~seed

(* ---------- Dispatch ---------- *)

let generator_for name ~long =
  let pick short long_gen = if long then long_gen else short in
  match name with
  | "RAM" -> pick (fun ~length ~seed -> ram_short ~length ~seed ())
               (fun ~length ~seed -> ram_long ~length ~seed ())
  | "FIFO" -> pick (fun ~length ~seed -> fifo_short ~length ~seed ())
                (fun ~length ~seed -> fifo_long ~length ~seed ())
  | "MultSum" | "MultSum-gates" ->
      pick (fun ~length ~seed -> multsum_short ~length ~seed ())
        (fun ~length ~seed -> multsum_long ~length ~seed ())
  | "AES" -> pick (fun ~length ~seed -> aes_short ~length ~seed ())
               (fun ~length ~seed -> aes_long ~length ~seed ())
  | "Camellia" | "Camellia-noscrub" ->
      pick (fun ~length ~seed -> camellia_short ~length ~seed ())
        (fun ~length ~seed -> camellia_long ~length ~seed ())
  | name -> invalid_arg ("Workloads.suite: unknown IP " ^ name)

let suite ?(parts = 4) ~total_length ~long name =
  if parts <= 0 then invalid_arg "Workloads.suite: parts must be positive";
  let gen = generator_for name ~long in
  let base = max 1 (total_length / parts) in
  List.init parts (fun k ->
      let length = if k = parts - 1 then total_length - (base * (parts - 1)) else base in
      gen ~length:(max 1 length) ~seed:(Int64.add 0x1234_5678L (Int64.of_int (k * 7919))))

let short_for = function
  | "RAM" -> ram_short ()
  | "FIFO" -> fifo_short ()
  | "MultSum" | "MultSum-gates" -> multsum_short ()
  | "AES" -> aes_short ()
  | "Camellia" | "Camellia-noscrub" -> camellia_short ()
  | name -> invalid_arg ("Workloads.short_for: unknown IP " ^ name)

let long_for ?(length = default_long_length) = function
  | "RAM" -> ram_long ~length ()
  | "FIFO" -> fifo_long ~length ()
  | "MultSum" | "MultSum-gates" -> multsum_long ~length ()
  | "AES" -> aes_long ~length ()
  | "Camellia" | "Camellia-noscrub" -> camellia_long ~length ()
  | name -> invalid_arg ("Workloads.long_for: unknown IP " ^ name)

(* Witness valuations from the symbolic verifier are full interface
   samples (PIs and POs); a stimulus drives PIs only, so project each
   valuation onto the input indices in interface order. *)
let of_witnesses iface witnesses =
  let inputs = Psm_trace.Interface.inputs iface in
  let arity = Psm_trace.Interface.arity iface in
  Array.of_list
    (List.map
       (fun w ->
         if Array.length w <> arity then
           invalid_arg
             (Printf.sprintf
                "Workloads.of_witnesses: valuation has %d values, interface \
                 arity is %d"
                (Array.length w) arity);
         Array.of_list (List.map (fun (i, _) -> w.(i)) inputs))
       witnesses)
