open Psm_rtl
module Bits = Psm_bits.Bits
module U = Gates_util
module Core = Camellia_core

(* Net conventions: a 64-bit half is an LSB-first net vector; byte i of
   the RFC's t1..t8 numbering (t1 most significant) is nets
   [8*(7-i) .. 8*(7-i)+7]. A 128-bit quantity is hi @ lo with hi in nets
   [64..127]. *)

let half_byte h i = Array.sub h (8 * (7 - i)) 8

let half_of_bytes bytes =
  let h = Array.make 64 0 in
  Array.iteri
    (fun i byte -> Array.iteri (fun b net -> h.((8 * (7 - i)) + b) <- net) byte)
    bytes;
  h

let const_half nl v = Comb.const_vector nl (Bits.of_int64 ~width:64 v)

let xor_half nl a b = Comb.xor_v nl a b

(* Precomputed S-box tables (same derivations as Camellia_core). *)
let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xFF
let sbox2 = Array.map (fun s -> rotl8 s 1) Core.sbox1
let sbox3 = Array.map (fun s -> rotl8 s 7) Core.sbox1
let sbox4 = Array.init 256 (fun x -> Core.sbox1.(rotl8 x 1))

let f_function nl x ke =
  let x = xor_half nl x ke in
  let s tbl i = U.sbox_lut nl tbl (half_byte x i) in
  let t = [| s Core.sbox1 0; s sbox2 1; s sbox3 2; s sbox4 3;
             s sbox2 4; s sbox3 5; s sbox4 6; s Core.sbox1 7 |] in
  let xor_list nets =
    match nets with
    | [] -> assert false
    | first :: rest -> List.fold_left (fun acc n -> U.xor_byte nl acc n) first rest
  in
  (* P layer (RFC 3713): y1..y8 from t1..t8 (arrays are 0-based). *)
  let y =
    [| xor_list [ t.(0); t.(2); t.(3); t.(5); t.(6); t.(7) ];
       xor_list [ t.(0); t.(1); t.(3); t.(4); t.(6); t.(7) ];
       xor_list [ t.(0); t.(1); t.(2); t.(4); t.(5); t.(7) ];
       xor_list [ t.(1); t.(2); t.(3); t.(4); t.(5); t.(6) ];
       xor_list [ t.(0); t.(1); t.(5); t.(6); t.(7) ];
       xor_list [ t.(1); t.(2); t.(4); t.(6); t.(7) ];
       xor_list [ t.(2); t.(3); t.(4); t.(5); t.(7) ];
       xor_list [ t.(0); t.(3); t.(4); t.(5); t.(6) ] |]
  in
  half_of_bytes y

(* FL / FL⁻¹ on a 64-bit half: x1 = high 32 bits (nets 32..63). *)
let fl nl x ke =
  let x1 = Array.sub x 32 32 and x2 = Array.sub x 0 32 in
  let k1 = Array.sub ke 32 32 and k2 = Array.sub ke 0 32 in
  let x2' = Comb.xor_v nl x2 (U.rotl_nets (Comb.and_v nl x1 k1) 1) in
  let x1' = Comb.xor_v nl x1 (Comb.or_v nl x2' k2) in
  Array.append x2' x1'

let flinv nl y ke =
  let y1 = Array.sub y 32 32 and y2 = Array.sub y 0 32 in
  let k1 = Array.sub ke 32 32 and k2 = Array.sub ke 0 32 in
  let y1' = Comb.xor_v nl y1 (Comb.or_v nl y2 k2) in
  let y2' = Comb.xor_v nl y2 (U.rotl_nets (Comb.and_v nl y1' k1) 1) in
  Array.append y2' y1'

(* Combinational key schedule: returns the 26 subkeys (kw1..4, k1..18,
   ke1..4) in encryption order, as (hi, lo are folded: each subkey is a
   64-net vector). *)
let key_schedule nl kl_hi kl_lo =
  let d2 = xor_half nl kl_lo (f_function nl kl_hi (const_half nl 0xA09E667F3BCC908BL)) in
  let d1 = xor_half nl kl_hi (f_function nl d2 (const_half nl 0xB67AE8584CAA73B2L)) in
  let d1 = xor_half nl d1 kl_hi and d2 = xor_half nl d2 kl_lo in
  let d2 = xor_half nl d2 (f_function nl d1 (const_half nl 0xC6EF372FE94F82BEL)) in
  let d1 = xor_half nl d1 (f_function nl d2 (const_half nl 0x54FF53A5F1D36F1CL)) in
  let ka = Array.append d2 d1 (* 128 nets, lo first *) in
  let kl = Array.append kl_lo kl_hi in
  let hi q = Array.sub q 64 64 and lo q = Array.sub q 0 64 in
  let rot q n = U.rotl_nets q n in
  let kw = [| hi (rot kl 0); lo (rot kl 0); hi (rot ka 111); lo (rot ka 111) |] in
  let k =
    [| hi (rot ka 0); lo (rot ka 0); hi (rot kl 15); lo (rot kl 15);
       hi (rot ka 15); lo (rot ka 15); hi (rot kl 45); lo (rot kl 45);
       hi (rot ka 45); lo (rot kl 60); hi (rot ka 60); lo (rot ka 60);
       hi (rot kl 94); lo (rot kl 94); hi (rot ka 94); lo (rot ka 94);
       hi (rot kl 111); lo (rot kl 111) |]
  in
  let ke = [| hi (rot ka 30); lo (rot ka 30); hi (rot kl 77); lo (rot kl 77) |] in
  (kw, k, ke)

let netlist () =
  let nl = Netlist.create "Camellia" in
  let key = Netlist.input nl "key" 128 in
  let data_in = Netlist.input nl "data_in" 128 in
  let start = (Netlist.input nl "start" 1).(0) in
  let decrypt = (Netlist.input nl "decrypt" 1).(0) in
  let enable = (Netlist.input nl "enable" 1).(0) in
  let rst = (Netlist.input nl "rst" 1).(0) in
  let _mode = Netlist.input nl "mode" 2 in
  let zero = Netlist.const nl false in
  let not_ n = Netlist.gate nl Netlist.Not [| n |] in
  let and_ a b = Netlist.gate nl Netlist.And [| a; b |] in
  let or_ a b = Netlist.gate nl Netlist.Or [| a; b |] in
  let mux1 b0 b1 sel = Netlist.gate nl Netlist.Mux [| sel; b0; b1 |] in
  let reg width =
    let q, connect = Netlist.dff_loop_vector nl width in
    let finish next =
      let held = Comb.mux2 nl ~sel:enable q next in
      connect (Comb.mux2 nl ~sel:rst held (Array.make width zero))
    in
    (q, finish)
  in

  (* Schedule in both orders; the bank latches the right one on start. *)
  let kl_hi = Array.sub key 64 64 and kl_lo = Array.sub key 0 64 in
  let kw, k, ke = key_schedule nl kl_hi kl_lo in
  let enc = Array.concat [ kw; k; ke ] in
  let dec_kw = [| kw.(2); kw.(3); kw.(0); kw.(1) |] in
  let dec_k = Array.init 18 (fun i -> k.(17 - i)) in
  let dec_ke = [| ke.(3); ke.(2); ke.(1); ke.(0) |] in
  let dec = Array.concat [ dec_kw; dec_k; dec_ke ] in
  let bank =
    Array.init 26 (fun i ->
        let q, finish = reg 64 in
        let loaded = Comb.mux2 nl ~sel:decrypt enc.(i) dec.(i) in
        finish (Comb.mux2 nl ~sel:start q loaded);
        q)
  in
  let bkw i = bank.(i) and bk i = bank.(4 + i) and bke i = bank.(22 + i) in

  (* State registers. *)
  let d1_q, d1_connect = reg 64 in
  let d2_q, d2_connect = reg 64 in
  let out_q, out_connect = reg 128 in
  let r_q, r_connect = reg 5 in
  let running_q, running_connect = reg 1 in
  let done_q, done_connect = reg 1 in

  (* Control. *)
  let start_fire = start in
  let is_round = and_ running_q.(0) (not_ start_fire) in
  let r_is v = Comb.eq_const nl r_q (Bits.of_int ~width:5 v) in
  let r7 = r_is 7 and r13 = r_is 13 and r18 = r_is 18 in
  let last_fire = and_ is_round r18 in

  (* FL layer (active before rounds 7 and 13). *)
  let fl_active = or_ r7 r13 in
  let ke_d1 = Comb.mux2 nl ~sel:r13 (bke 0) (bke 2) in
  let ke_d2 = Comb.mux2 nl ~sel:r13 (bke 1) (bke 3) in
  let d1_fl = Comb.mux2 nl ~sel:fl_active d1_q (fl nl d1_q ke_d1) in
  let d2_fl = Comb.mux2 nl ~sel:fl_active d2_q (flinv nl d2_q ke_d2) in

  (* Round: odd r updates d2 from d1, even r updates d1 from d2. *)
  let odd = r_q.(0) in
  let k_ways = Array.init 32 (fun i -> bk (max 0 (min 17 (i - 1)))) in
  let k_r = Comb.mux_tree nl ~sel:r_q k_ways in
  let f_in = Comb.mux2 nl ~sel:odd d2_fl d1_fl in
  let f_out = f_function nl f_in k_r in
  let d1_round = Comb.mux2 nl ~sel:odd (Comb.xor_v nl d1_fl f_out) d1_fl in
  let d2_round = Comb.mux2 nl ~sel:odd d2_fl (Comb.xor_v nl d2_fl f_out) in

  (* Start: pre-whitening with kw1/kw2 straight from the schedule (order
     muxed by the live decrypt input, as the bank is loaded this cycle). *)
  let kw1_live = Comb.mux2 nl ~sel:decrypt kw.(0) dec_kw.(0) in
  let kw2_live = Comb.mux2 nl ~sel:decrypt kw.(1) dec_kw.(1) in
  let data_hi = Array.sub data_in 64 64 and data_lo = Array.sub data_in 0 64 in
  let d1_init = xor_half nl data_hi kw1_live in
  let d2_init = xor_half nl data_lo kw2_live in

  (* Output: C = (d2 ^ kw3) | (d1 ^ kw4) at the last round. *)
  let out_next =
    Array.append (xor_half nl d1_round (bkw 3)) (xor_half nl d2_round (bkw 2))
  in

  let pick ~on_start ~on_round ~otherwise =
    Array.init (Array.length on_start) (fun i ->
        mux1 (mux1 otherwise.(i) on_round.(i) is_round) on_start.(i) start_fire)
  in
  d1_connect (pick ~on_start:d1_init ~on_round:d1_round ~otherwise:d1_q);
  d2_connect (pick ~on_start:d2_init ~on_round:d2_round ~otherwise:d2_q);
  out_connect
    (pick ~on_start:out_q ~on_round:(Comb.mux2 nl ~sel:r18 out_q out_next) ~otherwise:out_q);
  let one5 = Comb.const_vector nl (Bits.of_int ~width:5 1) in
  let r_plus, _ = Comb.adder nl r_q one5 in
  r_connect (pick ~on_start:one5 ~on_round:r_plus ~otherwise:r_q);
  running_connect
    (pick ~on_start:[| Netlist.const nl true |] ~on_round:[| not_ r18 |]
       ~otherwise:running_q);
  done_connect
    (pick ~on_start:[| zero |] ~on_round:[| or_ done_q.(0) last_fire |] ~otherwise:done_q);

  Netlist.output nl "data_out" out_q;
  Netlist.output nl "done" done_q;
  nl

let create () =
  let sim = Sim.create (netlist ()) in
  let rec ip =
    { Ip.name = "Camellia-gates";
      interface = Sim.interface sim;
      memory_elements = Sim.memory_elements sim;
      reset = (fun () -> Sim.reset sim);
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let outs =
            Sim.step sim
              [ ("key", pis.(0)); ("data_in", pis.(1)); ("start", pis.(2));
                ("decrypt", pis.(3)); ("enable", pis.(4)); ("rst", pis.(5));
                ("mode", pis.(6)) ]
          in
          ([| List.assoc "data_out" outs; List.assoc "done" outs |],
           float_of_int (Sim.last_toggles sim))) }
  in
  ip
