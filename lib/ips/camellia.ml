module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module Core = Camellia_core

let interface =
  Interface.create
    [ Signal.input "key" 128;
      Signal.input "data_in" 128;
      Signal.input "start" 1;
      Signal.input "decrypt" 1;
      Signal.input "enable" 1;
      Signal.input "rst" 1;
      Signal.input "mode" 2;
      Signal.output "data_out" 128;
      Signal.output "done" 1 ]

let cycles_per_block = 19

let base_idle = 30.0
let base_hold = 8.0
let base_round = 60.0
let key_schedule_burst = 380.0
let w_state = 1.0

(* The key-schedule scrubber: a second subcomponent that re-derives and
   re-masks the expanded key material at a pace set by an internal LFSR.
   Its utilization follows a bounded random walk — slowly varying, never
   observable at PIs/POs, and of the same magnitude as the datapath — so
   every power state's variance inflates with no PI/PO correlation the
   regression could latch onto. *)
let scrub_max = 100.0
let scrub_step = 15.0

type phase = Idle | Rounds of int

type state = {
  mutable phase : phase;
  mutable d : Core.half * Core.half;
  mutable sk : Core.subkeys option;
  mutable data_out : Bits.t;
  mutable done_flag : bool;
  mutable lfsr : int64;
  mutable scrub_level : float;
  mutable scrub_phase : int;
}

let lfsr_seed = 0xC0FFEE123456789L

let step_lfsr x =
  (* xorshift64. *)
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  Int64.logxor x (Int64.shift_left x 17)

let popcount64 x =
  let rec go acc x =
    if Int64.equal x 0L then acc
    else go (acc + Int64.to_int (Int64.logand x 1L)) (Int64.shift_right_logical x 1)
  in
  go 0 x

let half_hamming a b = popcount64 (Int64.logxor a b)

let scrub_mean = scrub_max /. 2.

let pair_hamming (a1, a2) (b1, b2) = half_hamming a1 b1 + half_hamming a2 b2

(* One step of the model, split into datapath and scrubber contributions;
   shared by the flat IP models and the decomposed (hierarchical) view. *)
let step_split ~scrubber st ~scrubber_activity pis =
  let key = pis.(0)
  and data_in = pis.(1)
  and start = Bits.get pis.(2) 0
  and decrypt = Bits.get pis.(3) 0
  and enable = Bits.get pis.(4) 0
  and rst = Bits.get pis.(5) 0 in
  ignore scrubber;
  let out_data = st.data_out and out_done = st.done_flag in
  let datapath, scrub =
    if rst then begin
      let flips = pair_hamming st.d (0L, 0L) in
      st.phase <- Idle;
      st.d <- (0L, 0L);
      st.sk <- None;
      st.data_out <- Bits.zero 128;
      st.done_flag <- false;
      st.lfsr <- lfsr_seed;
      st.scrub_level <- scrub_mean;
      st.scrub_phase <- 0;
      (base_idle +. float_of_int flips, 0.)
    end
    else if not enable then
      (* The scrubber lives in an always-on power domain: clock-gating the
         datapath does not stop it (that is what makes it invisible to a
         top-level observer). *)
      (base_hold, scrubber_activity ())
    else begin
      let datapath =
        if start then begin
          let sk = Core.expand_key (Core.halves_of_bits key) in
          let sk = if decrypt then Core.decryption_subkeys sk else sk in
          let m1, m2 = Core.halves_of_bits data_in in
          let next = (Int64.logxor m1 sk.Core.kw.(0), Int64.logxor m2 sk.Core.kw.(1)) in
          let flips = pair_hamming st.d next in
          st.d <- next;
          st.sk <- Some sk;
          st.phase <- Rounds 1;
          st.done_flag <- false;
          key_schedule_burst +. (w_state *. float_of_int flips)
        end
        else begin
          match (st.phase, st.sk) with
          | Idle, _ | _, None -> base_idle
          | Rounds r, Some sk ->
              let d = st.d in
              let d = if r = 7 then Core.fl_layer sk 0 d else d in
              let d = if r = 13 then Core.fl_layer sk 1 d else d in
              let next = Core.round sk r d in
              let flips = pair_hamming st.d next in
              st.d <- next;
              if r = Core.rounds then begin
                let d1, d2 = next in
                let out =
                  (Int64.logxor d2 sk.Core.kw.(2), Int64.logxor d1 sk.Core.kw.(3))
                in
                st.data_out <- Core.bits_of_halves out;
                st.done_flag <- true;
                st.phase <- Idle
              end
              else st.phase <- Rounds (r + 1);
              base_round +. (w_state *. float_of_int flips)
        end
      in
      (datapath, scrubber_activity ())
    end
  in
  ((out_data, out_done), datapath, scrub)

let create_internal ~scrubber name =
  let st =
    { phase = Idle;
      d = (0L, 0L);
      sk = None;
      data_out = Bits.zero 128;
      done_flag = false;
      lfsr = lfsr_seed;
      scrub_level = scrub_mean;
      scrub_phase = 0 }
  in
  let reset () =
    st.phase <- Idle;
    st.d <- (0L, 0L);
    st.sk <- None;
    st.data_out <- Bits.zero 128;
    st.done_flag <- false;
    st.lfsr <- lfsr_seed;
    st.scrub_level <- scrub_mean;
    st.scrub_phase <- 0
  in
  (* The ablation variant replaces the walk by its mean: same average
     power, none of the hidden variance. *)
  let scrubber_activity () =
    st.lfsr <- step_lfsr st.lfsr;
    st.scrub_phase <- st.scrub_phase + 1;
    if not scrubber then scrub_mean
    else begin
      (* The re-masking pipeline works in 4-cycle epochs: its utilization
         holds within an epoch and moves by one step between epochs. *)
      if st.scrub_phase mod 4 = 0 then begin
        let direction = if Int64.logand st.lfsr 1L = 0L then -1. else 1. in
        st.scrub_level <-
          Float.min scrub_max (Float.max 0. (st.scrub_level +. (direction *. scrub_step)))
      end;
      st.scrub_level
    end
  in
  let rec ip =
    { Ip.name;
      interface;
      memory_elements =
        128 (* state *) + (26 * 64) (* expanded key *) + 128 (* out *) + 64 (* lfsr *) + 7;
      reset;
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let (out_data, out_done), datapath, scrub =
            step_split ~scrubber st ~scrubber_activity pis
          in
          ([| out_data; Bits.of_bool out_done |], datapath +. scrub)) }
  in
  ip

let create () = create_internal ~scrubber:true "Camellia"
let create_without_scrubber () = create_internal ~scrubber:false "Camellia-noscrub"

(* Hierarchical (decomposed) view: the Feistel datapath observed at the
   top-level PIs/POs, and the key-schedule scrubber observed at its
   internal boundary — the quantized utilization level of its re-masking
   pipeline, the "internal signal connecting the subcomponents" whose
   absence the paper blames for Camellia's MRE. *)
let create_decomposed () =
  let st =
    { phase = Idle;
      d = (0L, 0L);
      sk = None;
      data_out = Bits.zero 128;
      done_flag = false;
      lfsr = lfsr_seed;
      scrub_level = scrub_mean;
      scrub_phase = 0 }
  in
  let reset () =
    st.phase <- Idle;
    st.d <- (0L, 0L);
    st.sk <- None;
    st.data_out <- Bits.zero 128;
    st.done_flag <- false;
    st.lfsr <- lfsr_seed;
    st.scrub_level <- scrub_mean;
    st.scrub_phase <- 0
  in
  let scrubber_activity () =
    st.lfsr <- step_lfsr st.lfsr;
    st.scrub_phase <- st.scrub_phase + 1;
    if st.scrub_phase mod 4 = 0 then begin
      let direction = if Int64.logand st.lfsr 1L = 0L then -1. else 1. in
      st.scrub_level <-
        Float.min scrub_max (Float.max 0. (st.scrub_level +. (direction *. scrub_step)))
    end;
    st.scrub_level
  in
  let scrub_interface =
    Interface.create [ Signal.input "scrub_level" 4 ]
  in
  { Decomposed.ip_name = "Camellia";
    components =
      [ { Decomposed.comp_name = "datapath"; comp_interface = interface };
        { Decomposed.comp_name = "scrubber"; comp_interface = scrub_interface } ];
    reset;
    step =
      (fun pis ->
        let (out_data, out_done), datapath, scrub =
          step_split ~scrubber:true st ~scrubber_activity pis
        in
        let pos = [| out_data; Bits.of_bool out_done |] in
        let top_sample = Array.append pis pos in
        (* The boundary reports the utilization actually applied this
           cycle: 0 while the IP is clock-gated or in reset. *)
        let level = int_of_float (scrub /. scrub_step) in
        let scrub_sample = [| Bits.of_int ~width:4 level |] in
        (pos, [ (top_sample, datapath); (scrub_sample, scrub) ])) }
