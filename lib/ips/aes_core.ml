module Bits = Psm_bits.Bits

type block = int array

let rounds = 10

(* GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1. *)
let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then b lxor 0x11B else b

let gf_mul a b =
  let rec go acc a b =
    if b = 0 then acc
    else go (if b land 1 = 1 then acc lxor a else acc) (xtime a) (b lsr 1)
  in
  go 0 a b

(* Multiplicative inverse by Fermat: x^254 (0 maps to 0). *)
let gf_inv x =
  if x = 0 then 0
  else begin
    let rec pow acc base e =
      if e = 0 then acc
      else pow (if e land 1 = 1 then gf_mul acc base else acc) (gf_mul base base) (e lsr 1)
    in
    pow 1 x 254
  end

let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xFF

(* S-box: affine transform of the field inverse (FIPS-197 Sec. 5.1.1). *)
let sbox =
  Array.init 256 (fun x ->
      let b = gf_inv x in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

let check_block name b =
  if Array.length b <> 16 then invalid_arg ("Aes_core." ^ name ^ ": block must be 16 bytes");
  Array.iter
    (fun x -> if x < 0 || x > 255 then invalid_arg ("Aes_core." ^ name ^ ": byte out of range"))
    b

(* State layout: s.(r + 4*c). *)
let sub_bytes s = Array.map (fun b -> sbox.(b)) s
let inv_sub_bytes s = Array.map (fun b -> inv_sbox.(b)) s

let shift_rows s =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      s.(r + (4 * ((c + r) mod 4))))

let inv_shift_rows s =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      s.(r + (4 * ((c - r + 4) mod 4))))

let mix_single column coeffs =
  Array.init 4 (fun r ->
      let acc = ref 0 in
      for k = 0 to 3 do
        acc := !acc lxor gf_mul coeffs.((k - r + 4) mod 4) column.(k)
      done;
      !acc)

let mix_with coeffs s =
  Array.init 16 (fun i ->
      let c = i / 4 in
      let column = Array.init 4 (fun r -> s.(r + (4 * c))) in
      (mix_single column coeffs).(i mod 4))

let mix_columns = mix_with [| 2; 3; 1; 1 |]
let inv_mix_columns = mix_with [| 14; 11; 13; 9 |]

let add_round_key rk s =
  check_block "add_round_key" rk;
  Array.map2 ( lxor ) s rk

let expand_key key =
  if Array.length key <> 16 then invalid_arg "Aes_core.expand_key: key must be 16 bytes";
  check_block "expand_key" key;
  let words = Array.make 44 [||] in
  for i = 0 to 3 do
    words.(i) <- Array.init 4 (fun b -> key.((4 * i) + b))
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let prev = words.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rotated = Array.init 4 (fun b -> prev.((b + 1) mod 4)) in
        let substituted = Array.map (fun b -> sbox.(b)) rotated in
        substituted.(0) <- substituted.(0) lxor !rcon;
        rcon := xtime !rcon;
        substituted
      end
      else Array.copy prev
    in
    words.(i) <- Array.map2 ( lxor ) words.(i - 4) temp
  done;
  Array.init 11 (fun round ->
      Array.init 16 (fun i ->
          let r = i mod 4 and c = i / 4 in
          words.((4 * round) + c).(r)))

let encrypt_round ~last rk s =
  let s = sub_bytes s in
  let s = shift_rows s in
  let s = if last then s else mix_columns s in
  add_round_key rk s

let decrypt_round ~last rk s =
  let s = inv_shift_rows s in
  let s = inv_sub_bytes s in
  let s = add_round_key rk s in
  if last then s else inv_mix_columns s

let encrypt_block ~key plaintext =
  check_block "encrypt_block" plaintext;
  let rks = expand_key key in
  let s = ref (add_round_key rks.(0) plaintext) in
  for round = 1 to rounds do
    s := encrypt_round ~last:(round = rounds) rks.(round) !s
  done;
  !s

let decrypt_block ~key ciphertext =
  check_block "decrypt_block" ciphertext;
  let rks = expand_key key in
  let s = ref (add_round_key rks.(rounds) ciphertext) in
  for round = rounds - 1 downto 0 do
    s := decrypt_round ~last:(round = 0) rks.(round) !s
  done;
  !s

(* The FIPS input byte sequence in0..in15 fills the state column-major
   (s.(r + 4c) = in.(r + 4c)), so the block array IS the byte sequence.
   Byte 0 is the most significant byte of the 128-bit value. *)
let block_of_bits v =
  if Bits.width v <> 128 then invalid_arg "Aes_core.block_of_bits: width must be 128";
  Array.init 16 (fun i ->
      Bits.to_int (Bits.slice v ~hi:(127 - (8 * i)) ~lo:(120 - (8 * i))))

let bits_of_block b =
  check_block "bits_of_block" b;
  Bits.concat_list (Array.to_list (Array.map (fun byte -> Bits.of_int ~width:8 byte) b))

let block_of_hex s =
  if String.length s <> 32 then invalid_arg "Aes_core.block_of_hex: need 32 hex digits";
  block_of_bits (Bits.of_hex_string ~width:128 s)

let hex_of_block b = Bits.to_hex_string (bits_of_block b)
