(** Training-trace capture: runs an IP over a stimulus and records the
    functional trace (PIs and POs per cycle) together with the reference
    power trace (the PrimeTime-PX substitute of this reproduction).

    The IP is reset before the run. *)

val run :
  ?config:Psm_rtl.Power_model.config ->
  Ip.t ->
  Workloads.stimulus ->
  Psm_trace.Functional_trace.t * Psm_trace.Power_trace.t
(** Functional and power trace of the run. *)

val run_functional :
  Ip.t -> Workloads.stimulus -> Psm_trace.Functional_trace.t
(** Functional trace only — the "IP sim." baseline of Table III: the IP is
    stepped and observed, but no power bookkeeping beyond the step function
    itself is performed. *)

val run_timed : Ip.t -> Workloads.stimulus -> float
(** Seconds of wall-clock time to step the IP over the stimulus without
    recording anything (pure simulation speed). *)

val run_power_timed :
  ?config:Psm_rtl.Power_model.config ->
  Ip.t ->
  Workloads.stimulus ->
  Psm_trace.Power_trace.t * float
(** Power trace plus the wall-clock seconds the reference power simulation
    took — Table II's "PX" column. *)
