(** 1 KB synchronous single-port RAM (256 words × 32 bits).

    Interface (PIs: 44 bits, POs: 32 bits, as in the paper's Table I):
    - [ce]    (1)  chip enable; when 0 the RAM holds state and only clock
                   activity is consumed;
    - [we]    (1)  write enable (qualified by [ce]);
    - [addr]  (10) byte address; bits [9:2] select the word;
    - [wdata] (32) write data;
    - [rdata] (32) registered read data (unchanged during writes).

    Power behaviour: the RAM is data-dependent in write mode — bus and
    write-driver switching is proportional to the Hamming distance between
    consecutive [wdata] values, plus a cell-flip term. This is the IP on
    which the paper's linear-regression calibration shines (MRE 0.30%). *)

val create : unit -> Ip.t

val create_with_peek : unit -> Ip.t * (int -> Psm_bits.Bits.t)
(** Also returns a test hook reading the backing store by word index. *)

val word_count : int
val word_bits : int
