open Psm_rtl

let netlist () =
  let nl = Netlist.create "RAM" in
  let ce = Netlist.input nl "ce" 1 in
  let we = Netlist.input nl "we" 1 in
  let addr = Netlist.input nl "addr" 10 in
  let wdata = Netlist.input nl "wdata" 32 in
  let word_sel = Array.sub addr 2 8 in
  let write_access = Netlist.gate nl Netlist.And [| ce.(0); we.(0) |] in
  let read_access =
    Netlist.gate nl Netlist.And [| ce.(0); Netlist.gate nl Netlist.Not [| we.(0) |] |]
  in
  let decode = Comb.decoder nl word_sel in
  (* The cell array: per word, 32 DFFs sampling wdata when selected. *)
  let words =
    Array.init Ram.word_count (fun w ->
        let en = Netlist.gate nl Netlist.And [| decode.(w); write_access |] in
        Gates_util.enabled_reg nl ~enable:en wdata)
  in
  (* Registered read port. *)
  let read_data = Comb.mux_tree nl ~sel:word_sel words in
  let rdata = Gates_util.enabled_reg nl ~enable:read_access read_data in
  Netlist.output nl "rdata" rdata;
  nl

let create () =
  let sim = Sim.create (netlist ()) in
  let rec ip =
    { Ip.name = "RAM-gates";
      interface = Sim.interface sim;
      memory_elements = Sim.memory_elements sim;
      reset = (fun () -> Sim.reset sim);
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let outs =
            Sim.step sim
              [ ("ce", pis.(0)); ("we", pis.(1)); ("addr", pis.(2)); ("wdata", pis.(3)) ]
          in
          ([| List.assoc "rdata" outs |], float_of_int (Sim.last_toggles sim))) }
  in
  ip
