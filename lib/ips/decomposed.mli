(** Subcomponent-decomposed IP models — the substrate for hierarchical
    PSMs (the paper's concluding-remarks future work).

    The paper attributes Camellia's poor accuracy to switching activity
    "distributed among subcomponents that could present power behaviours
    poorly correlated to each other", without "visibility on internal
    signals connecting the subcomponents", and proposes hierarchical PSMs
    that distinguish among subcomponents as the remedy.

    A decomposed model exposes, per clock cycle, one observation sample
    and one activity figure for EACH subcomponent: the sample ranges over
    that subcomponent's boundary signals (top-level PIs/POs for the main
    datapath; internal interconnect signals for buried blocks), which is
    exactly the extra visibility hierarchy buys. {!Psm_flow.Hier} trains
    one PSM set per subcomponent from these and sums their estimates. *)

type component = {
  comp_name : string;
  comp_interface : Psm_trace.Interface.t;
      (** The subcomponent's observable boundary. *)
}

type t = {
  ip_name : string;
  components : component list;
  reset : unit -> unit;
  step :
    Psm_bits.Bits.t array ->
    Psm_bits.Bits.t array * (Psm_bits.Bits.t array * float) list;
      (** [step pis] returns the top-level POs plus, per component (in
          [components] order), the component's boundary sample (aligned
          with its interface) and its activity this cycle. The summed
          activities equal the flat model's activity. *)
}

val top_interface : t -> Psm_trace.Interface.t
(** The first component's interface must be the IP's top-level PI/PO
    interface (the main datapath); this accessor returns it. *)
