open Psm_rtl
module Bits = Psm_bits.Bits
module U = Gates_util

(* Byte views over 128-bit buses. The FIPS block byte j occupies bus bits
   [127-8j .. 120-8j]; net index = bit index (LSB first), so byte j's nets
   start at 120 - 8j. State layout follows Aes_core: byte i sits at
   row (i mod 4), column (i / 4). *)
let bytes_of_bus bus = Array.init 16 (fun j -> Array.sub bus (120 - (8 * j)) 8)

let bus_of_bytes bytes =
  let bus = Array.make 128 0 in
  Array.iteri
    (fun j byte -> Array.iteri (fun b net -> bus.((120 - (8 * j)) + b) <- net) byte)
    bytes;
  bus

let xor_state nl a b = Array.map2 (U.xor_byte nl) a b

let sub_bytes nl table state = Array.map (U.sbox_lut nl table) state

let shift_rows state =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      state.(r + (4 * ((c + r) mod 4))))

let inv_shift_rows state =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      state.(r + (4 * ((c - r + 4) mod 4))))

let mix_with nl coeffs state =
  Array.init 16 (fun i ->
      let c = i / 4 and r = i mod 4 in
      let term k =
        U.gf_mul_const nl coeffs.((k - r + 4) mod 4) state.(k + (4 * c))
      in
      let acc = ref (term 0) in
      for k = 1 to 3 do
        acc := U.xor_byte nl !acc (term k)
      done;
      !acc)

let mix_columns nl state = mix_with nl [| 2; 3; 1; 1 |] state
let inv_mix_columns nl state = mix_with nl [| 14; 11; 13; 9 |] state

let mux_state nl ~sel a b = Array.map2 (fun x y -> Comb.mux2 nl ~sel x y) a b

(* Combinational key schedule: 44 words of 4 bytes from the key bytes,
   regrouped into 11 round keys in state layout. *)
let key_schedule nl key_bytes =
  let words = Array.make 44 [||] in
  for i = 0 to 3 do
    words.(i) <- Array.init 4 (fun b -> key_bytes.((4 * i) + b))
  done;
  let rcon = ref 1 in
  let xtime_int v = let v = v lsl 1 in if v land 0x100 <> 0 then v lxor 0x11B else v in
  for i = 4 to 43 do
    let prev = words.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rotated = Array.init 4 (fun b -> prev.((b + 1) mod 4)) in
        let substituted = Array.map (U.sbox_lut nl Aes_core.sbox) rotated in
        substituted.(0) <- U.xor_byte nl substituted.(0) (U.byte_const nl !rcon);
        rcon := xtime_int !rcon;
        substituted
      end
      else prev
    in
    words.(i) <- Array.init 4 (fun b -> U.xor_byte nl words.(i - 4).(b) temp.(b))
  done;
  Array.init 11 (fun round ->
      Array.init 16 (fun i ->
          let r = i mod 4 and c = i / 4 in
          words.((4 * round) + c).(r)))

let netlist () =
  let nl = Netlist.create "AES" in
  let key = Netlist.input nl "key" 128 in
  let data_in = Netlist.input nl "data_in" 128 in
  let start = (Netlist.input nl "start" 1).(0) in
  let decrypt = (Netlist.input nl "decrypt" 1).(0) in
  let enable = (Netlist.input nl "enable" 1).(0) in
  let rst = (Netlist.input nl "rst" 1).(0) in
  let zero = Netlist.const nl false in
  let not_ n = Netlist.gate nl Netlist.Not [| n |] in
  let and_ a b = Netlist.gate nl Netlist.And [| a; b |] in
  let or_ a b = Netlist.gate nl Netlist.Or [| a; b |] in
  let mux b0 b1 sel = Netlist.gate nl Netlist.Mux [| sel; b0; b1 |] in

  (* State registers, connected after the next-state logic exists.
     Update discipline (mirrors the behavioural model): rst clears
     unconditionally; !enable holds; otherwise the next-state applies. *)
  let reg width =
    let q, connect = Netlist.dff_loop_vector nl width in
    let finish next =
      let held = Comb.mux2 nl ~sel:enable q next in
      connect (Comb.mux2 nl ~sel:rst held (Array.make width zero))
    in
    (q, finish)
  in
  let s_q, s_connect = reg 128 in
  let out_q, out_connect = reg 128 in
  let bank =
    Array.init 11 (fun _ -> reg 128)
  in
  let r_q, r_connect = reg 4 in
  let running_q, running_connect = reg 1 in
  let done_q, done_connect = reg 1 in
  let decrypting_q, decrypting_connect = reg 1 in

  (* Control. *)
  let start_fire = start in
  let running = running_q.(0) in
  let is_round = and_ running (not_ start_fire) in
  let r_is_10 = Comb.eq_const nl r_q (Bits.of_int ~width:4 10) in
  let last_fire = and_ is_round r_is_10 in

  (* Key schedule (combinational from the key bus) and the round-key
     bank. *)
  let schedule = key_schedule nl (bytes_of_bus key) in
  let schedule_bus = Array.map bus_of_bytes schedule in
  Array.iteri
    (fun i (q, connect) ->
      connect (Comb.mux2 nl ~sel:start_fire q schedule_bus.(i)))
    bank;

  (* Round-key selection: r indexes the bank (encrypt: r, decrypt: 10-r). *)
  let bank_q = Array.map fst bank in
  let pad16 ways = Array.init 16 (fun i -> ways.(min i 10)) in
  let rk_enc = Comb.mux_tree nl ~sel:r_q (pad16 bank_q) in
  let rk_dec =
    Comb.mux_tree nl ~sel:r_q (pad16 (Array.init 11 (fun i -> bank_q.(10 - i))))
  in
  let decrypting = decrypting_q.(0) in
  let rk = mux_state nl ~sel:decrypting (bytes_of_bus rk_enc) (bytes_of_bus rk_dec) in

  (* The two round datapaths over the state register. *)
  let s = bytes_of_bus s_q in
  let enc =
    let sb = sub_bytes nl Aes_core.sbox s in
    let sr = shift_rows sb in
    let mc = mix_columns nl sr in
    let pre_ark = mux_state nl ~sel:r_is_10 mc sr in
    xor_state nl pre_ark rk
  in
  let dec =
    let isr = inv_shift_rows s in
    let isb = sub_bytes nl Aes_core.inv_sbox isr in
    let ark = xor_state nl isb rk in
    let imc = inv_mix_columns nl ark in
    mux_state nl ~sel:r_is_10 imc ark
  in
  let round_out = mux_state nl ~sel:decrypting enc dec in

  (* Initial whitening on start: data xor (decrypt ? rk10 : rk0), straight
     from the combinational schedule. *)
  let first_rk = mux_state nl ~sel:decrypt schedule.(0) schedule.(10) in
  let s_init = xor_state nl (bytes_of_bus data_in) first_rk in

  (* Next-state equations. *)
  let pick ~on_start ~on_round ~otherwise =
    Array.init (Array.length on_start) (fun i ->
        mux (mux otherwise.(i) on_round.(i) is_round) on_start.(i) start_fire)
  in
  s_connect
    (pick ~on_start:(bus_of_bytes s_init) ~on_round:(bus_of_bytes round_out) ~otherwise:s_q);
  out_connect
    (pick ~on_start:out_q
       ~on_round:(Comb.mux2 nl ~sel:r_is_10 out_q (bus_of_bytes round_out))
       ~otherwise:out_q);
  let one4 = Comb.const_vector nl (Bits.of_int ~width:4 1) in
  let r_plus, _ = Comb.adder nl r_q one4 in
  r_connect (pick ~on_start:one4 ~on_round:r_plus ~otherwise:r_q);
  running_connect
    (pick
       ~on_start:[| Netlist.const nl true |]
       ~on_round:[| not_ r_is_10 |]
       ~otherwise:running_q);
  done_connect
    (pick ~on_start:[| zero |] ~on_round:[| or_ done_q.(0) last_fire |] ~otherwise:done_q);
  decrypting_connect (pick ~on_start:[| decrypt |] ~on_round:decrypting_q ~otherwise:decrypting_q);

  Netlist.output nl "data_out" out_q;
  Netlist.output nl "done" done_q;
  nl

let create () =
  let sim = Sim.create (netlist ()) in
  let rec ip =
    { Ip.name = "AES-gates";
      interface = Sim.interface sim;
      memory_elements = Sim.memory_elements sim;
      reset = (fun () -> Sim.reset sim);
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let outs =
            Sim.step sim
              [ ("key", pis.(0)); ("data_in", pis.(1)); ("start", pis.(2));
                ("decrypt", pis.(3)); ("enable", pis.(4)); ("rst", pis.(5)) ]
          in
          ([| List.assoc "data_out" outs; List.assoc "done" outs |],
           float_of_int (Sim.last_toggles sim))) }
  in
  ip
