module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Power_model = Psm_rtl.Power_model

let run ?(config = Power_model.default) (ip : Ip.t) stimulus =
  ip.Ip.reset ();
  let builder = Functional_trace.Builder.create ip.Ip.interface in
  let energies = Array.make (Array.length stimulus) 0. in
  Array.iteri
    (fun t pis ->
      let pos, activity = ip.Ip.step pis in
      energies.(t) <- Power_model.energy_of_weighted_activity config activity;
      Functional_trace.Builder.append builder (Array.append pis pos))
    stimulus;
  (Functional_trace.Builder.finish builder, Power_trace.of_array energies)

let run_functional (ip : Ip.t) stimulus =
  ip.Ip.reset ();
  let builder = Functional_trace.Builder.create ip.Ip.interface in
  Array.iter
    (fun pis ->
      let pos, _activity = ip.Ip.step pis in
      Functional_trace.Builder.append builder (Array.append pis pos))
    stimulus;
  Functional_trace.Builder.finish builder

let run_timed (ip : Ip.t) stimulus =
  ip.Ip.reset ();
  (* Settle the heap so the measurement does not pay for garbage created
     by whoever ran before us. *)
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  Array.iter (fun pis -> ignore (ip.Ip.step pis)) stimulus;
  Unix.gettimeofday () -. t0

let run_power_timed ?(config = Power_model.default) (ip : Ip.t) stimulus =
  ip.Ip.reset ();
  let energies = Array.make (Array.length stimulus) 0. in
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun t pis ->
      let _pos, activity = ip.Ip.step pis in
      energies.(t) <- Power_model.energy_of_weighted_activity config activity)
    stimulus;
  let elapsed = Unix.gettimeofday () -. t0 in
  (Power_trace.of_array energies, elapsed)
