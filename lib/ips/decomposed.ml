type component = {
  comp_name : string;
  comp_interface : Psm_trace.Interface.t;
}

type t = {
  ip_name : string;
  components : component list;
  reset : unit -> unit;
  step :
    Psm_bits.Bits.t array ->
    Psm_bits.Bits.t array * (Psm_bits.Bits.t array * float) list;
}

let top_interface t =
  match t.components with
  | [] -> invalid_arg "Decomposed.top_interface: no components"
  | first :: _ -> first.comp_interface
