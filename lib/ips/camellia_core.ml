module Bits = Psm_bits.Bits

type half = int64

type subkeys = { kw : half array; k : half array; ke : half array }

let rounds = 18

(* SBOX1 of RFC 3713; SBOX2-4 are rotations derived below. The encrypt/
   decrypt round-trip and the RFC test vector in the test suite pin this
   table. *)
let sbox1 =
  [| 0x70; 0x82; 0x2c; 0xec; 0xb3; 0x27; 0xc0; 0xe5; 0xe4; 0x85; 0x57; 0x35;
     0xea; 0x0c; 0xae; 0x41; 0x23; 0xef; 0x6b; 0x93; 0x45; 0x19; 0xa5; 0x21;
     0xed; 0x0e; 0x4f; 0x4e; 0x1d; 0x65; 0x92; 0xbd; 0x86; 0xb8; 0xaf; 0x8f;
     0x7c; 0xeb; 0x1f; 0xce; 0x3e; 0x30; 0xdc; 0x5f; 0x5e; 0xc5; 0x0b; 0x1a;
     0xa6; 0xe1; 0x39; 0xca; 0xd5; 0x47; 0x5d; 0x3d; 0xd9; 0x01; 0x5a; 0xd6;
     0x51; 0x56; 0x6c; 0x4d; 0x8b; 0x0d; 0x9a; 0x66; 0xfb; 0xcc; 0xb0; 0x2d;
     0x74; 0x12; 0x2b; 0x20; 0xf0; 0xb1; 0x84; 0x99; 0xdf; 0x4c; 0xcb; 0xc2;
     0x34; 0x7e; 0x76; 0x05; 0x6d; 0xb7; 0xa9; 0x31; 0xd1; 0x17; 0x04; 0xd7;
     0x14; 0x58; 0x3a; 0x61; 0xde; 0x1b; 0x11; 0x1c; 0x32; 0x0f; 0x9c; 0x16;
     0x53; 0x18; 0xf2; 0x22; 0xfe; 0x44; 0xcf; 0xb2; 0xc3; 0xb5; 0x7a; 0x91;
     0x24; 0x08; 0xe8; 0xa8; 0x60; 0xfc; 0x69; 0x50; 0xaa; 0xd0; 0xa0; 0x7d;
     0xa1; 0x89; 0x62; 0x97; 0x54; 0x5b; 0x1e; 0x95; 0xe0; 0xff; 0x64; 0xd2;
     0x10; 0xc4; 0x00; 0x48; 0xa3; 0xf7; 0x75; 0xdb; 0x8a; 0x03; 0xe6; 0xda;
     0x09; 0x3f; 0xdd; 0x94; 0x87; 0x5c; 0x83; 0x02; 0xcd; 0x4a; 0x90; 0x33;
     0x73; 0x67; 0xf6; 0xf3; 0x9d; 0x7f; 0xbf; 0xe2; 0x52; 0x9b; 0xd8; 0x26;
     0xc8; 0x37; 0xc6; 0x3b; 0x81; 0x96; 0x6f; 0x4b; 0x13; 0xbe; 0x63; 0x2e;
     0xe9; 0x79; 0xa7; 0x8c; 0x9f; 0x6e; 0xbc; 0x8e; 0x29; 0xf5; 0xf9; 0xb6;
     0x2f; 0xfd; 0xb4; 0x59; 0x78; 0x98; 0x06; 0x6a; 0xe7; 0x46; 0x71; 0xba;
     0xd4; 0x25; 0xab; 0x42; 0x88; 0xa2; 0x8d; 0xfa; 0x72; 0x07; 0xb9; 0x55;
     0xf8; 0xee; 0xac; 0x0a; 0x36; 0x49; 0x2a; 0x68; 0x3c; 0x38; 0xf1; 0xa4;
     0x40; 0x28; 0xd3; 0x7b; 0xbb; 0xc9; 0x43; 0xc1; 0x15; 0xe3; 0xad; 0xf4;
     0x77; 0xc7; 0x80; 0x9e |]

let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xFF

let sbox2 = Array.map (fun s -> rotl8 s 1) sbox1
let sbox3 = Array.map (fun s -> rotl8 s 7) sbox1
let sbox4 = Array.init 256 (fun x -> sbox1.(rotl8 x 1))

let mask8 = 0xFFL

let byte x i = Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * (7 - i))) mask8)

let of_bytes b =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (b.(i) land 0xFF))
  done;
  !acc

let f x ke =
  let x = Int64.logxor x ke in
  let t1 = sbox1.(byte x 0)
  and t2 = sbox2.(byte x 1)
  and t3 = sbox3.(byte x 2)
  and t4 = sbox4.(byte x 3)
  and t5 = sbox2.(byte x 4)
  and t6 = sbox3.(byte x 5)
  and t7 = sbox4.(byte x 6)
  and t8 = sbox1.(byte x 7) in
  let ( ^ ) = ( lxor ) in
  let y1 = t1 ^ t3 ^ t4 ^ t6 ^ t7 ^ t8
  and y2 = t1 ^ t2 ^ t4 ^ t5 ^ t7 ^ t8
  and y3 = t1 ^ t2 ^ t3 ^ t5 ^ t6 ^ t8
  and y4 = t2 ^ t3 ^ t4 ^ t5 ^ t6 ^ t7
  and y5 = t1 ^ t2 ^ t6 ^ t7 ^ t8
  and y6 = t2 ^ t3 ^ t5 ^ t7 ^ t8
  and y7 = t3 ^ t4 ^ t5 ^ t6 ^ t8
  and y8 = t1 ^ t4 ^ t5 ^ t6 ^ t7 in
  of_bytes [| y1; y2; y3; y4; y5; y6; y7; y8 |]

let mask32 = 0xFFFFFFFFL

let rotl32 x n =
  let n = n mod 32 in
  Int64.logand
    (Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (32 - n)))
    mask32

let fl x ke =
  let x1 = Int64.shift_right_logical x 32 and x2 = Int64.logand x mask32 in
  let k1 = Int64.shift_right_logical ke 32 and k2 = Int64.logand ke mask32 in
  let x2 = Int64.logxor x2 (rotl32 (Int64.logand x1 k1) 1) in
  let x1 = Int64.logxor x1 (Int64.logor x2 k2) in
  Int64.logor (Int64.shift_left x1 32) x2

let flinv y ke =
  let y1 = Int64.shift_right_logical y 32 and y2 = Int64.logand y mask32 in
  let k1 = Int64.shift_right_logical ke 32 and k2 = Int64.logand ke mask32 in
  let y1 = Int64.logxor y1 (Int64.logor y2 k2) in
  let y2 = Int64.logxor y2 (rotl32 (Int64.logand y1 k1) 1) in
  Int64.logor (Int64.shift_left y1 32) y2

let sigma1 = 0xA09E667F3BCC908BL
let sigma2 = 0xB67AE8584CAA73B2L
let sigma3 = 0xC6EF372FE94F82BEL
let sigma4 = 0x54FF53A5F1D36F1CL

(* Rotate the 128-bit quantity (hi, lo) left by n (0 <= n < 128). *)
let rec rotl128 (hi, lo) n =
  let n = n mod 128 in
  if n = 0 then (hi, lo)
  else if n < 64 then
    ( Int64.logor (Int64.shift_left hi n) (Int64.shift_right_logical lo (64 - n)),
      Int64.logor (Int64.shift_left lo n) (Int64.shift_right_logical hi (64 - n)) )
  else rotl128 (lo, hi) (n - 64)

let expand_key (kl_hi, kl_lo) =
  (* KR = 0 for 128-bit keys. *)
  let d1 = kl_hi and d2 = kl_lo in
  let d2 = Int64.logxor d2 (f d1 sigma1) in
  let d1 = Int64.logxor d1 (f d2 sigma2) in
  let d1 = Int64.logxor d1 kl_hi and d2 = Int64.logxor d2 kl_lo in
  let d2 = Int64.logxor d2 (f d1 sigma3) in
  let d1 = Int64.logxor d1 (f d2 sigma4) in
  let ka = (d1, d2) in
  let kl = (kl_hi, kl_lo) in
  let hi (h, _) = h and lo (_, l) = l in
  { kw =
      [| hi (rotl128 kl 0); lo (rotl128 kl 0);
         hi (rotl128 ka 111); lo (rotl128 ka 111) |];
    k =
      [| hi (rotl128 ka 0); lo (rotl128 ka 0);
         hi (rotl128 kl 15); lo (rotl128 kl 15);
         hi (rotl128 ka 15); lo (rotl128 ka 15);
         hi (rotl128 kl 45); lo (rotl128 kl 45);
         hi (rotl128 ka 45); lo (rotl128 kl 60);
         hi (rotl128 ka 60); lo (rotl128 ka 60);
         hi (rotl128 kl 94); lo (rotl128 kl 94);
         hi (rotl128 ka 94); lo (rotl128 ka 94);
         hi (rotl128 kl 111); lo (rotl128 kl 111) |];
    ke =
      [| hi (rotl128 ka 30); lo (rotl128 ka 30);
         hi (rotl128 kl 77); lo (rotl128 kl 77) |] }

let decryption_subkeys sk =
  { kw = [| sk.kw.(2); sk.kw.(3); sk.kw.(0); sk.kw.(1) |];
    k = Array.init rounds (fun i -> sk.k.(rounds - 1 - i));
    ke = [| sk.ke.(3); sk.ke.(2); sk.ke.(1); sk.ke.(0) |] }

let round sk i (d1, d2) =
  if i < 1 || i > rounds then invalid_arg "Camellia_core.round: index in 1..18";
  let kr = sk.k.(i - 1) in
  if i mod 2 = 1 then (d1, Int64.logxor d2 (f d1 kr))
  else (Int64.logxor d1 (f d2 kr), d2)

let fl_layer sk j (d1, d2) =
  if j < 0 || j > 1 then invalid_arg "Camellia_core.fl_layer: index in 0..1";
  (fl d1 sk.ke.(2 * j), flinv d2 sk.ke.((2 * j) + 1))

let run sk (m1, m2) =
  let d1 = Int64.logxor m1 sk.kw.(0) and d2 = Int64.logxor m2 sk.kw.(1) in
  let state = ref (d1, d2) in
  for i = 1 to rounds do
    if i = 7 then state := fl_layer sk 0 !state;
    if i = 13 then state := fl_layer sk 1 !state;
    state := round sk i !state
  done;
  let d1, d2 = !state in
  (Int64.logxor d2 sk.kw.(2), Int64.logxor d1 sk.kw.(3))

let encrypt_block ~key m = run (expand_key key) m
let decrypt_block ~key c = run (decryption_subkeys (expand_key key)) c

let halves_of_bits v =
  if Bits.width v <> 128 then invalid_arg "Camellia_core.halves_of_bits: width must be 128";
  (Bits.to_int64 (Bits.slice v ~hi:127 ~lo:64), Bits.to_int64 (Bits.slice v ~hi:63 ~lo:0))

let bits_of_halves (hi, lo) =
  Bits.concat (Bits.of_int64 ~width:64 hi) (Bits.of_int64 ~width:64 lo)

let halves_of_hex s =
  if String.length s <> 32 then invalid_arg "Camellia_core.halves_of_hex: need 32 hex digits";
  halves_of_bits (Bits.of_hex_string ~width:128 s)

let hex_of_halves h = Bits.to_hex_string (bits_of_halves h)
