module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module Netlist = Psm_rtl.Netlist
module Comb = Psm_rtl.Comb
module Sim = Psm_rtl.Sim

let interface =
  Interface.create
    [ Signal.input "a" 16;
      Signal.input "b" 16;
      Signal.input "c" 16;
      Signal.input "en" 1;
      Signal.output "result" 32 ]

let model ~a ~b ~c = ((a * b) + c) land 0xFFFFFFFF

(* Activity weights for the behavioural model. The multiplier term scales
   with the number of active partial products (popcount a × popcount b),
   a genuine data dependence that the Hamming distance of consecutive
   inputs does not fully explain — the source of MultSum's residual MRE in
   the paper. *)
let base_idle = 3.0
let base_busy = 25.0
let w_in = 2.0
let w_mul = 0.15
let w_out = 1.0

type state = {
  mutable ra : Bits.t;
  mutable rb : Bits.t;
  mutable rc : Bits.t;
  mutable product : Bits.t; (* stage-2 register: a*b+c of the stage-1 operands *)
  mutable result : Bits.t;
}

let zero16 = Bits.zero 16
let zero32 = Bits.zero 32

let create () =
  let st = { ra = zero16; rb = zero16; rc = zero16; product = zero32; result = zero32 } in
  let reset () =
    st.ra <- zero16;
    st.rb <- zero16;
    st.rc <- zero16;
    st.product <- zero32;
    st.result <- zero32
  in
  let rec ip =
    { Ip.name = "MultSum";
      interface;
      memory_elements = 16 + 16 + 16 + 32 + 32;
      reset;
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let en = Bits.get pis.(3) 0 in
          (* Output is sampled on the same edge that advances the pipeline,
             as in the structural netlist: the value returned for cycle t
             is the register content entering the cycle. *)
          let out = st.result in
          let activity =
            if not en then base_idle
            else begin
              let a = pis.(0) and b = pis.(1) and c = pis.(2) in
              let in_flips =
                Bits.hamming_distance a st.ra
                + Bits.hamming_distance b st.rb
                + Bits.hamming_distance c st.rc
              in
              let mul_activity =
                float_of_int (Bits.popcount st.ra * Bits.popcount st.rb) /. 4.
              in
              let next_product =
                Bits.of_int ~width:32
                  (model ~a:(Bits.to_int st.ra) ~b:(Bits.to_int st.rb)
                     ~c:(Bits.to_int st.rc))
              in
              let out_flips =
                Bits.hamming_distance st.product next_product
                + Bits.hamming_distance st.result st.product
              in
              st.result <- st.product;
              st.product <- next_product;
              st.ra <- a;
              st.rb <- b;
              st.rc <- c;
              base_busy
              +. (w_in *. float_of_int in_flips)
              +. (w_mul *. mul_activity)
              +. (w_out *. float_of_int out_flips)
            end
          in
          ([| out |], activity)) }
  in
  ip

let structural_netlist () =
  let nl = Netlist.create "MultSum" in
  let a = Netlist.input nl "a" 16 in
  let b = Netlist.input nl "b" 16 in
  let c = Netlist.input nl "c" 16 in
  let en = Netlist.input nl "en" 1 in
  (* Register with enable recirculation: q holds when [en] is low. *)
  let enabled_reg inputs =
    let q, connect = Netlist.dff_loop_vector nl (Array.length inputs) in
    connect (Comb.mux2 nl ~sel:en.(0) q inputs);
    q
  in
  let ra = enabled_reg a in
  let rb = enabled_reg b in
  let rc = enabled_reg c in
  let product = Comb.multiplier nl ra rb in
  let sum, _carry = Comb.adder nl product (Comb.zero_extend nl rc 32) in
  let rproduct = enabled_reg sum in
  let rresult = enabled_reg rproduct in
  Netlist.output nl "result" rresult;
  nl

let create_structural () =
  let sim = Sim.create (structural_netlist ()) in
  let rec ip =
    { Ip.name = "MultSum-gates";
      interface;
      memory_elements = Sim.memory_elements sim;
      reset = (fun () -> Sim.reset sim);
      step =
        (fun pis ->
          Ip.check_step ip pis;
          let outs =
            Sim.step sim
              [ ("a", pis.(0)); ("b", pis.(1)); ("c", pis.(2)); ("en", pis.(3)) ]
          in
          let result = List.assoc "result" outs in
          ([| result |], float_of_int (Sim.last_toggles sim))) }
  in
  ip
