(** A synchronous FIFO (16 × 32) — a fifth IP beyond the paper's benchmark
    set, exercising the flow on the kind of interconnect block the paper's
    introduction motivates (SoC virtual prototyping).

    Interface (PIs: 34 bits, POs: 34 bits):
    - [wr_en]  (1)  push [wdata] when not full;
    - [rd_en]  (1)  pop when not empty;
    - [wdata]  (32) write data;
    - [rdata]  (32) registered head-of-queue data;
    - [full]   (1)  registered status flags;
    - [empty]  (1).

    Power behaviour: writes cost bus-switching-proportional energy (like
    the RAM), reads cost output-driver energy, and the occupancy-dependent
    status logic adds a small constant — a multi-mode block whose states
    (idle / streaming / back-pressure) the miner must discover. *)

val create : unit -> Ip.t

val depth : int
val width : int
