module Bits = Psm_bits.Bits
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal

type t = {
  name : string;
  interface : Interface.t;
  memory_elements : int;
  reset : unit -> unit;
  step : Bits.t array -> Bits.t array * float;
}

let input_signals t = List.map snd (Interface.inputs t.interface)
let output_signals t = List.map snd (Interface.outputs t.interface)

let pi_bits t = Interface.total_input_width t.interface
let po_bits t = Interface.total_output_width t.interface

let check_step t pis =
  let ins = Interface.inputs t.interface in
  if Array.length pis <> List.length ins then
    invalid_arg
      (Printf.sprintf "%s.step: %d input values for %d inputs" t.name
         (Array.length pis) (List.length ins));
  List.iteri
    (fun i (_, (s : Signal.t)) ->
      if Bits.width pis.(i) <> s.width then
        invalid_arg
          (Printf.sprintf "%s.step: input %s expects width %d, got %d" t.name
             s.name s.width (Bits.width pis.(i))))
    ins

let pp fmt t =
  Format.fprintf fmt "%s: %d PI bits, %d PO bits, %d memory elements" t.name
    (pi_bits t) (po_bits t) t.memory_elements
