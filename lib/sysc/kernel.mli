(** A miniature SystemC-like discrete-event simulation kernel.

    The paper delivers its PSMs "implemented into a SystemC module … to
    allow their efficient and effective simulation concurrently with the
    simulation of the IP functional model"; this kernel is the
    reproduction's stand-in for that substrate: signals with
    evaluate/update (delta-cycle) semantics, processes with sensitivity
    lists, and timed events — enough to wire an IP module and a PSM
    observer to the same clock and let them run concurrently.

    Semantics (the SystemC evaluate/update subset):
    - [Signal.write] does not change the visible value immediately; the
      new value is published at the end of the current delta cycle, and
      processes sensitive to the signal run in the next delta cycle iff
      the published value differs from the old one.
    - Timed events fire in timestamp order; all events at one timestamp
      execute before delta propagation settles, and time only advances
      once no delta work remains. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulation time in ticks. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run a thunk [delay] ticks from now ([delay] ≥ 0; 0 = this timestamp's
    next delta). *)

val run : t -> until:int -> unit
(** Advance simulation time up to and including tick [until]. Raises
    [Failure] if a delta loop fails to settle within 10000 iterations
    (a combinational oscillation). *)

val delta_count : t -> int
(** Total delta cycles executed — exposed for tests. *)

(** Typed signals with evaluate/update semantics. *)
module Signal : sig
  type kernel := t
  type 'a t

  val create : kernel -> ?equal:('a -> 'a -> bool) -> name:string -> 'a -> 'a t
  (** [equal] defaults to structural equality; it decides whether a
      published write counts as a change. *)

  val name : 'a t -> string
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit

  val on_change : 'a t -> (unit -> unit) -> unit
  (** Register a process triggered whenever the published value changes. *)
end

(** A periodic boolean clock built on the kernel. *)
module Clock : sig
  type kernel := t
  type t

  val create : kernel -> ?name:string -> period:int -> unit -> t
  (** Starts low; rises at period/2, falls at period, … ([period] ≥ 2 and
      even). *)

  val signal : t -> bool Signal.t

  val on_posedge : t -> (unit -> unit) -> unit
  (** Convenience: trigger only on the rising edge. *)
end
