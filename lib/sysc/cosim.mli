(** IP + PSM co-simulation on the {!Kernel} — the paper's deployment
    scenario: the functional model and the PSM power model run as two
    modules of one discrete-event simulation, connected by signals.

    Structure (mirroring the SystemC setup of the paper's Fig. 1 output):

    - a testbench process drives the IP's primary-input signals on the
      falling clock edge;
    - the IP module samples its inputs on the rising edge, steps the
      cycle-accurate model, and drives the primary-output signals plus an
      analysis port carrying the joint PI/PO sample (and, for validation
      only, the reference energy);
    - the PSM module listens on the analysis port and publishes its power
      estimate one delta later — fully decoupled from the IP's internals,
      as a black-box power monitor must be. *)

type t

val build :
  Kernel.t ->
  clock:Kernel.Clock.t ->
  ip:Psm_ips.Ip.t ->
  hmm:Psm_hmm.Hmm.t ->
  stimulus:Psm_ips.Workloads.stimulus ->
  t
(** Instantiate the three modules and wire them. The IP is reset. Run the
    kernel for [Array.length stimulus] clock periods to exhaust the
    stimulus. *)

val pi_signals : t -> Psm_bits.Bits.t Kernel.Signal.t list
val po_signals : t -> Psm_bits.Bits.t Kernel.Signal.t list

val power_estimate : t -> float Kernel.Signal.t
(** The PSM module's output signal (joules for the current cycle). *)

val cycles_done : t -> int

val estimates : t -> float array
(** Per-cycle PSM estimates collected so far. *)

val references : t -> float array
(** Per-cycle reference energies (from the IP model's activity). *)
