module IntMap = Map.Make (Int)

type t = {
  mutable time : int;
  mutable agenda : (unit -> unit) Queue.t IntMap.t; (* timed events *)
  runnable : (unit -> unit) Queue.t; (* processes for the current delta *)
  mutable updates : (unit -> unit) list; (* pending signal publications *)
  mutable deltas : int;
}

let create () =
  { time = 0; agenda = IntMap.empty; runnable = Queue.create (); updates = []; deltas = 0 }

let now t = t.time

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Kernel.schedule: negative delay";
  let at = t.time + delay in
  let queue =
    match IntMap.find_opt at t.agenda with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        t.agenda <- IntMap.add at q t.agenda;
        q
  in
  Queue.add thunk queue

let max_deltas_per_instant = 10_000

(* One delta cycle: run every runnable process, then publish every pending
   signal write (which may enqueue more runnables for the next delta). *)
let settle t =
  let rounds = ref 0 in
  while (not (Queue.is_empty t.runnable)) || t.updates <> [] do
    incr rounds;
    if !rounds > max_deltas_per_instant then
      failwith
        (Printf.sprintf "Kernel: delta loop did not settle at time %d (oscillation?)"
           t.time);
    t.deltas <- t.deltas + 1;
    (* Evaluate phase. *)
    while not (Queue.is_empty t.runnable) do
      (Queue.take t.runnable) ()
    done;
    (* Update phase. *)
    let pending = List.rev t.updates in
    t.updates <- [];
    List.iter (fun publish -> publish ()) pending
  done

let run t ~until =
  if until < t.time then invalid_arg "Kernel.run: until is in the past";
  let continue = ref true in
  while !continue do
    settle t;
    match IntMap.min_binding_opt t.agenda with
    | Some (at, queue) when at <= until ->
        t.agenda <- IntMap.remove at t.agenda;
        t.time <- at;
        Queue.transfer queue t.runnable;
        settle t
    | Some _ | None ->
        t.time <- until;
        continue := false
  done

let delta_count t = t.deltas

module Signal = struct
  type kernel = t

  type 'a t = {
    kernel : kernel;
    sig_name : string;
    equal : 'a -> 'a -> bool;
    mutable current : 'a;
    mutable next : 'a option;
    mutable listeners : (unit -> unit) list;
  }

  let create (kernel : kernel) ?(equal = ( = )) ~name initial =
    { kernel; sig_name = name; equal; current = initial; next = None; listeners = [] }

  let name s = s.sig_name
  let read s = s.current

  let publish s () =
    match s.next with
    | None -> ()
    | Some v ->
        s.next <- None;
        if not (s.equal s.current v) then begin
          s.current <- v;
          List.iter (fun p -> Queue.add p s.kernel.runnable) s.listeners
        end

  let write s v =
    (* Last write in a delta wins (SystemC semantics). Register the
       publication only once per delta. *)
    let fresh = s.next = None in
    s.next <- Some v;
    if fresh then s.kernel.updates <- publish s :: s.kernel.updates

  let on_change s p = s.listeners <- p :: s.listeners
end

module Clock = struct
  type kernel = t

  type t = { signal : bool Signal.t }

  let create (kernel : kernel) ?(name = "clk") ~period () =
    if period < 2 || period mod 2 <> 0 then
      invalid_arg "Clock.create: period must be even and >= 2";
    let signal = Signal.create kernel ~name false in
    let half = period / 2 in
    let rec toggle value () =
      Signal.write signal value;
      schedule kernel ~delay:half (toggle (not value))
    in
    schedule kernel ~delay:half (toggle true);
    { signal }

  let signal t = t.signal

  let on_posedge t p =
    Signal.on_change t.signal (fun () -> if Signal.read t.signal then p ())
end
