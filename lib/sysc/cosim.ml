module Bits = Psm_bits.Bits
module Interface = Psm_trace.Interface
module Signal_decl = Psm_trace.Signal
module Ip = Psm_ips.Ip
module Multi_sim = Psm_hmm.Multi_sim
module Power_model = Psm_rtl.Power_model

type t = {
  pis : Bits.t Kernel.Signal.t list;
  pos : Bits.t Kernel.Signal.t list;
  power : float Kernel.Signal.t;
  mutable cycle : int;
  est : float array;
  refs : float array;
}

let build kernel ~clock ~ip ~hmm ~stimulus =
  ip.Ip.reset ();
  let iface = ip.Ip.interface in
  let mk_sig (s : Signal_decl.t) =
    Kernel.Signal.create kernel ~equal:Bits.equal ~name:s.Signal_decl.name
      (Bits.zero s.Signal_decl.width)
  in
  let pis = List.map (fun (_, s) -> mk_sig s) (Interface.inputs iface) in
  let pos = List.map (fun (_, s) -> mk_sig s) (Interface.outputs iface) in
  let power = Kernel.Signal.create kernel ~name:"psm_power" 0. in
  (* Analysis port: fires every cycle even when values repeat. *)
  let analysis =
    Kernel.Signal.create kernel ~equal:(fun _ _ -> false) ~name:"analysis" [||]
  in
  let total = Array.length stimulus in
  let t =
    { pis; pos; power; cycle = 0; est = Array.make total 0.; refs = Array.make total 0. }
  in
  (* Testbench: drive PIs on the falling edge for the next rising edge. *)
  let drive_cycle = ref 0 in
  Kernel.Signal.on_change (Kernel.Clock.signal clock) (fun () ->
      if not (Kernel.Signal.read (Kernel.Clock.signal clock)) then
        if !drive_cycle < total then begin
          List.iteri
            (fun i s -> Kernel.Signal.write s stimulus.(!drive_cycle).(i))
            pis;
          incr drive_cycle
        end);
  (* Drive the first cycle's inputs before the first rising edge. *)
  List.iteri (fun i s -> Kernel.Signal.write s stimulus.(0).(i)) pis;
  incr drive_cycle;
  (* IP module: sample on the rising edge. *)
  Kernel.Clock.on_posedge clock (fun () ->
      if t.cycle < total then begin
        let pi_values = Array.of_list (List.map Kernel.Signal.read pis) in
        let po_values, activity = ip.Ip.step pi_values in
        List.iteri (fun i s -> Kernel.Signal.write s po_values.(i)) pos;
        t.refs.(t.cycle) <-
          Power_model.energy_of_weighted_activity Power_model.default activity;
        Kernel.Signal.write analysis (Array.append pi_values po_values)
      end);
  (* PSM module: a pure observer on the analysis port. *)
  let stepper = Multi_sim.Stepper.create hmm in
  Kernel.Signal.on_change analysis (fun () ->
      if t.cycle < total then begin
        let sample = Kernel.Signal.read analysis in
        let estimate, _state = Multi_sim.Stepper.step stepper sample in
        Kernel.Signal.write power estimate;
        t.est.(t.cycle) <- estimate;
        t.cycle <- t.cycle + 1
      end);
  t

let pi_signals t = t.pis
let po_signals t = t.pos
let power_estimate t = t.power
let cycles_done t = t.cycle
let estimates t = Array.sub t.est 0 t.cycle
let references t = Array.sub t.refs 0 t.cycle
