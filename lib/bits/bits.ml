(* Bit vectors stored as little-endian 32-bit limbs held in OCaml ints.
   Invariant: bits of the top limb above [width mod 32] are zero, so
   structural equality of the limb arrays coincides with value equality. *)

type t = { width : int; limbs : int array }

let limb_bits = 32
let limb_mask = 0xFFFF_FFFF

let nlimbs width = (width + limb_bits - 1) / limb_bits

(* Mask applicable to the top limb of a vector of width [w]. *)
let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let check_width w = if w <= 0 then invalid_arg "Bits: width must be positive"

let zero w =
  check_width w;
  { width = w; limbs = Array.make (nlimbs w) 0 }

let normalize v =
  let n = Array.length v.limbs in
  v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let ones w =
  check_width w;
  normalize { width = w; limbs = Array.make (nlimbs w) limb_mask }

let of_int ~width n =
  check_width width;
  if n < 0 then invalid_arg "Bits.of_int: negative value";
  let v = zero width in
  let rec fill i n = if n <> 0 && i < Array.length v.limbs then begin
      v.limbs.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end in
  fill 0 n;
  normalize v

let of_int64 ~width n =
  check_width width;
  let v = zero width in
  let lo = Int64.to_int (Int64.logand n 0xFFFF_FFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical n 32) 0xFFFF_FFFFL) in
  if Array.length v.limbs > 0 then v.limbs.(0) <- lo;
  if Array.length v.limbs > 1 then v.limbs.(1) <- hi;
  normalize v

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let width v = v.width

let get v i =
  if i < 0 || i >= v.width then invalid_arg "Bits.get: index out of range";
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set v i b =
  if i < 0 || i >= v.width then invalid_arg "Bits.set: index out of range";
  let limbs = Array.copy v.limbs in
  let j = i / limb_bits and k = i mod limb_bits in
  limbs.(j) <- (if b then limbs.(j) lor (1 lsl k) else limbs.(j) land lnot (1 lsl k));
  { v with limbs }

let init ~width f =
  check_width width;
  let v = zero width in
  for i = 0 to width - 1 do
    if f i then begin
      let j = i / limb_bits and k = i mod limb_bits in
      v.limbs.(j) <- v.limbs.(j) lor (1 lsl k)
    end
  done;
  v

let of_binary_string s =
  let digits = ref [] in
  String.iter
    (fun c -> match c with
      | '0' -> digits := false :: !digits
      | '1' -> digits := true :: !digits
      | '_' -> ()
      | _ -> invalid_arg "Bits.of_binary_string: expected 0, 1 or _")
    s;
  (* [digits] is now little-endian: last character pushed first ... actually
     head of the list is the last character of [s], i.e. the LSB. *)
  let bits = Array.of_list !digits in
  if Array.length bits = 0 then invalid_arg "Bits.of_binary_string: empty";
  init ~width:(Array.length bits) (fun i -> bits.(i))

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bits.of_hex_string: invalid hex digit"

let of_hex_string ~width s =
  check_width width;
  let v = zero width in
  let pos = ref 0 in
  (* Iterate characters from the end of the string: least significant
     nibble first. *)
  for i = String.length s - 1 downto 0 do
    let c = s.[i] in
    if c <> '_' then begin
      let d = hex_digit c in
      for b = 0 to 3 do
        if d lsr b land 1 = 1 then begin
          let bit = !pos + b in
          if bit >= width then
            invalid_arg "Bits.of_hex_string: value wider than requested width";
          let j = bit / limb_bits and k = bit mod limb_bits in
          v.limbs.(j) <- v.limbs.(j) lor (1 lsl k)
        end
      done;
      pos := !pos + 4
    end
  done;
  v

let to_int v =
  let n = Array.length v.limbs in
  if n > 2 then begin
    for i = 2 to n - 1 do
      if v.limbs.(i) <> 0 then failwith "Bits.to_int: value too wide"
    done
  end;
  let lo = v.limbs.(0) in
  let hi = if n > 1 then v.limbs.(1) else 0 in
  if hi lsr 30 <> 0 then failwith "Bits.to_int: value too wide";
  lo lor (hi lsl limb_bits)

let to_int64 v =
  let n = Array.length v.limbs in
  for i = 2 to n - 1 do
    if v.limbs.(i) <> 0 then failwith "Bits.to_int64: value too wide"
  done;
  let lo = Int64.of_int v.limbs.(0) in
  let hi = if n > 1 then Int64.of_int v.limbs.(1) else 0L in
  Int64.logor lo (Int64.shift_left hi 32)

let to_binary_string v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let to_hex_string v =
  let ndigits = (v.width + 3) / 4 in
  String.init ndigits (fun i ->
      let nib = ndigits - 1 - i in
      let d = ref 0 in
      for b = 0 to 3 do
        let bit = (nib * 4) + b in
        if bit < v.width && get v bit then d := !d lor (1 lsl b)
      done;
      "0123456789abcdef".[!d])

let popcount_int n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

(* Precomputed popcounts for bytes keep the per-cycle switching-activity
   computation cheap; it sits on the hot path of the power reference. *)
let byte_popcount = Array.init 256 popcount_int

let popcount v =
  let acc = ref 0 in
  Array.iter
    (fun limb ->
      acc := !acc
             + byte_popcount.(limb land 0xFF)
             + byte_popcount.(limb lsr 8 land 0xFF)
             + byte_popcount.(limb lsr 16 land 0xFF)
             + byte_popcount.(limb lsr 24 land 0xFF))
    v.limbs;
  !acc

let is_zero v = Array.for_all (fun l -> l = 0) v.limbs

let check_same_width op a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" op a.width b.width)

let map2 op a b =
  { width = a.width; limbs = Array.map2 op a.limbs b.limbs }

let logand a b = check_same_width "logand" a b; map2 (land) a b
let logor a b = check_same_width "logor" a b; map2 (lor) a b
let logxor a b = check_same_width "logxor" a b; map2 (lxor) a b

let lognot a =
  normalize { width = a.width; limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs }

let add a b =
  check_same_width "add" a b;
  let v = zero a.width in
  let carry = ref 0 in
  for i = 0 to Array.length v.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    v.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize v

let sub a b =
  check_same_width "sub" a b;
  let v = zero a.width in
  let borrow = ref 0 in
  for i = 0 to Array.length v.limbs - 1 do
    let s = a.limbs.(i) - b.limbs.(i) - !borrow in
    if s < 0 then begin v.limbs.(i) <- s + (1 lsl limb_bits); borrow := 1 end
    else begin v.limbs.(i) <- s; borrow := 0 end
  done;
  normalize v

let mul a b =
  check_same_width "mul" a b;
  let n = Array.length a.limbs in
  let v = zero a.width in
  (* Schoolbook with 16-bit half-limbs so partial products fit in an int. *)
  let halves x = [| x land 0xFFFF; x lsr 16 |] in
  let acc = Array.make (2 * n * 2) 0 in
  for i = 0 to n - 1 do
    let ah = halves a.limbs.(i) in
    for j = 0 to n - 1 do
      let bh = halves b.limbs.(j) in
      for p = 0 to 1 do
        for q = 0 to 1 do
          let pos = (2 * i) + p + (2 * j) + q in
          if pos < Array.length acc then acc.(pos) <- acc.(pos) + (ah.(p) * bh.(q))
        done
      done
    done
  done;
  (* Carry-propagate the 16-bit columns, then pack into 32-bit limbs. *)
  let carry = ref 0 in
  for k = 0 to Array.length acc - 1 do
    let s = acc.(k) + !carry in
    acc.(k) <- s land 0xFFFF;
    carry := s lsr 16
  done;
  for i = 0 to n - 1 do
    v.limbs.(i) <- acc.(2 * i) lor (acc.((2 * i) + 1) lsl 16)
  done;
  normalize v

let shift_left v k =
  if k < 0 then invalid_arg "Bits.shift_left: negative shift";
  if k = 0 then v
  else if k >= v.width then zero v.width
  else init ~width:v.width (fun i -> i >= k && get v (i - k))

let shift_right v k =
  if k < 0 then invalid_arg "Bits.shift_right: negative shift";
  if k = 0 then v
  else if k >= v.width then zero v.width
  else init ~width:v.width (fun i -> i + k < v.width && get v (i + k))

let rotate_left v k =
  let k = ((k mod v.width) + v.width) mod v.width in
  if k = 0 then v else init ~width:v.width (fun i -> get v (((i - k) mod v.width + v.width) mod v.width))

let rotate_right v k = rotate_left v (-k)

let slice v ~hi ~lo =
  if lo < 0 || hi >= v.width || hi < lo then
    invalid_arg (Printf.sprintf "Bits.slice: bad range [%d:%d] of width %d" hi lo v.width);
  init ~width:(hi - lo + 1) (fun i -> get v (lo + i))

let concat hi lo =
  init ~width:(hi.width + lo.width) (fun i ->
      if i < lo.width then get lo i else get hi (i - lo.width))

let concat_list = function
  | [] -> invalid_arg "Bits.concat_list: empty list"
  | v :: vs -> List.fold_left (fun acc x -> concat acc x) v vs

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c
  else begin
    (* Unsigned magnitude comparison: most significant limb first. *)
    let rec go i =
      if i < 0 then 0
      else
        let c = Int.compare a.limbs.(i) b.limbs.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length a.limbs - 1)
  end

let ult a b =
  check_same_width "ult" a b;
  compare a b < 0

let hamming_distance a b =
  check_same_width "hamming_distance" a b;
  popcount (logxor a b)

let hash v = Hashtbl.hash (v.width, v.limbs)

let pp fmt v = Format.fprintf fmt "%d'h%s" v.width (to_hex_string v)
let pp_binary fmt v = Format.fprintf fmt "%d'b%s" v.width (to_binary_string v)
