(** Arbitrary-width bit vectors.

    A [Bits.t] is an immutable vector of [width] bits interpreted, where a
    numeric reading is needed, as an unsigned integer in little-endian limb
    order. All binary operations require operands of equal width and raise
    [Invalid_argument] otherwise. Arithmetic is performed modulo [2^width].

    This is the value domain of every signal in the reproduction: primary
    inputs and outputs of the IP models, nets of the structural netlists and
    samples of functional traces. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. Raises [Invalid_argument]
    if [w <= 0]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] is the low [width] bits of [n]. [n] must be
    non-negative. *)

val of_int64 : width:int -> int64 -> t
(** [of_int64 ~width n] is the low [width] bits of [n] read as an unsigned
    64-bit value. *)

val of_bool : bool -> t
(** [of_bool b] is the 1-bit vector holding [b]. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] builds a vector from a big-endian binary
    literal (most significant bit first); underscores are ignored. The width
    is the number of binary digits. *)

val of_hex_string : width:int -> string -> t
(** [of_hex_string ~width s] parses a big-endian hexadecimal literal;
    underscores are ignored. Raises [Invalid_argument] if the value does not
    fit in [width] bits. *)

val init : width:int -> (int -> bool) -> t
(** [init ~width f] is the vector whose bit [i] is [f i]. *)

(** {1 Observation} *)

val width : t -> int

val get : t -> int -> bool
(** [get v i] is bit [i] (bit 0 is the least significant). Raises
    [Invalid_argument] when out of range. *)

val to_int : t -> int
(** Unsigned value as an OCaml [int]. Raises [Failure] if the value does not
    fit in 62 bits. *)

val to_int64 : t -> int64
(** Unsigned value as an [int64] (the low 64 bits when wider). Raises
    [Failure] if a bit above position 63 is set. *)

val to_binary_string : t -> string
(** Big-endian binary rendering, exactly [width] characters. *)

val to_hex_string : t -> string
(** Big-endian hexadecimal rendering, [ceil (width/4)] characters. *)

val popcount : t -> int
(** Number of set bits. *)

val is_zero : t -> bool

(** {1 Bitwise and arithmetic operations} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val add : t -> t -> t
(** Modulo [2^width]. *)

val sub : t -> t -> t
(** Modulo [2^width]. *)

val mul : t -> t -> t
(** Modulo [2^width]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val rotate_left : t -> int -> t
val rotate_right : t -> int -> t

(** {1 Structure} *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] extracts bits [lo..hi] inclusive as a vector of width
    [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] above [lo]: the result has width
    [width hi + width lo] and its low bits are [lo]. *)

val concat_list : t list -> t
(** [concat_list [a; b; c]] is [concat a (concat b c)]: head is most
    significant. Raises [Invalid_argument] on the empty list. *)

val set : t -> int -> bool -> t
(** Functional single-bit update. *)

(** {1 Comparisons and metrics} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison; vectors of different widths compare by width
    first. *)

val ult : t -> t -> bool
(** Unsigned less-than; requires equal widths. *)

val hamming_distance : t -> t -> int
(** [popcount (logxor a b)]; requires equal widths. This drives both the
    reference power model's switching activity and the paper's
    linear-regression calibration of data-dependent states. *)

val hash : t -> int

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal with a width prefix, e.g. [8'h3a]. *)

val pp_binary : Format.formatter -> t -> unit
