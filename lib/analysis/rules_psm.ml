module Psm = Psm_core.Psm
module Power_attr = Psm_core.Power_attr
module Table = Psm_mining.Prop_trace.Table
module Prop_trace = Psm_mining.Prop_trace
module Power_trace = Psm_trace.Power_trace
module Vocabulary = Psm_mining.Vocabulary

let v = Finding.v

(* ---------- determinism ---------- *)

let check_determinism (ctx : Rule.context) =
  let psm = ctx.Rule.psm in
  let table = Psm.prop_table psm in
  let nprops = Table.prop_count table in
  let findings = ref [] in
  let emit x = findings := x :: !findings in
  List.iter
    (fun (s : Psm.state) ->
      let out = Scan.successors ctx.Rule.scan s.Psm.id in
      List.iter
        (fun (tr : Psm.transition) ->
          if tr.Psm.guard < 0 || tr.Psm.guard >= nprops then
            emit
              (v ~rule:"determinism" ~severity:Finding.Error
                 ~location:
                   (Finding.Transition
                      { src = tr.Psm.src; guard = tr.Psm.guard; dst = tr.Psm.dst })
                 (Printf.sprintf
                    "guard %s is not an interned proposition (table holds %d)"
                    (Rule.prop_name ctx tr.Psm.guard)
                    nprops)))
        out;
      (* Same guard enabling several transitions: nondeterministic, but by
         design after [join] — the HMM resolves the choice (paper Sec. V). *)
      let by_guard = Hashtbl.create 8 in
      List.iter
        (fun (tr : Psm.transition) ->
          Hashtbl.replace by_guard tr.Psm.guard
            (tr.Psm.dst :: Option.value ~default:[] (Hashtbl.find_opt by_guard tr.Psm.guard)))
        out;
      Hashtbl.iter
        (fun guard dsts ->
          let dsts = List.sort_uniq compare dsts in
          if List.length dsts > 1 then
            emit
              (v ~rule:"determinism" ~severity:Finding.Warning
                 ~location:(Finding.State s.Psm.id)
                 (Printf.sprintf
                    "nondeterministic fan-out: %s enables transitions to %s \
                     (resolved stochastically by the HMM)"
                    (Rule.prop_describe ctx guard)
                    (String.concat ", "
                       (List.map (fun d -> Printf.sprintf "s%d" d) dsts)))))
        by_guard;
      (* Distinct guard ids whose packed truth rows coincide would be
         simultaneously satisfiable — impossible through [classify_or_add]
         interning, so finding one means the table itself is corrupt. *)
      let in_range =
        List.sort_uniq compare (List.map (fun (tr : Psm.transition) -> tr.Psm.guard) out)
        |> List.filter (fun g -> g >= 0 && g < nprops)
      in
      let keyed = List.map (fun g -> (g, Vocabulary.row_key (Table.row table g))) in_range in
      let rec pairs = function
        | [] -> ()
        | (g1, k1) :: rest ->
            List.iter
              (fun (g2, k2) ->
                if String.equal k1 k2 then
                  emit
                    (v ~rule:"determinism" ~severity:Finding.Error
                       ~location:(Finding.State s.Psm.id)
                       (Printf.sprintf
                          "guards %s and %s have identical truth rows: both are \
                           satisfied by the same samples"
                          (Rule.prop_name ctx g1) (Rule.prop_name ctx g2))))
              rest;
            pairs rest
      in
      pairs keyed)
    (Psm.states psm);
  List.rev !findings

(* ---------- reachability ---------- *)

let check_reachability (ctx : Rule.context) =
  let psm = ctx.Rule.psm in
  let states = Psm.states psm in
  if states = [] then []
  else
    let initial = Psm.initial psm in
    if initial = [] then
      [ v ~rule:"reachability" ~severity:Finding.Error ~location:Finding.Model
          "S₀ is empty: no state is reachable and the HMM's π is uniform noise" ]
    else begin
      let succ = Hashtbl.create 64 in
      List.iter
        (fun (tr : Psm.transition) ->
          Hashtbl.replace succ tr.Psm.src
            (tr.Psm.dst :: Option.value ~default:[] (Hashtbl.find_opt succ tr.Psm.src)))
        (Psm.transitions psm);
      let visited = Hashtbl.create 64 in
      let rec visit id =
        if not (Hashtbl.mem visited id) then begin
          Hashtbl.replace visited id ();
          List.iter visit (Option.value ~default:[] (Hashtbl.find_opt succ id))
        end
      in
      List.iter visit initial;
      List.concat_map
        (fun (s : Psm.state) ->
          let unreachable =
            if Hashtbl.mem visited s.Psm.id then []
            else
              [ v ~rule:"reachability" ~severity:Finding.Warning
                  ~location:(Finding.State s.Psm.id)
                  "unreachable from every initial state" ]
          in
          let sink =
            if Hashtbl.mem succ s.Psm.id then []
            else
              [ v ~rule:"reachability" ~severity:Finding.Info
                  ~location:(Finding.State s.Psm.id)
                  "sink state without outgoing transitions (the HMM treats it \
                   as absorbing via a self-loop)" ]
          in
          unreachable @ sink)
        states
    end

(* ---------- stall / input-completeness ---------- *)

(* Activation runs come precomputed from the scan ({!Scan.activations});
   the rule only replays each run's exit instant against Γ. *)
let check_stall (ctx : Rule.context) =
  match ctx.Rule.gammas with
  | None -> []
  | Some gammas ->
      let psm = ctx.Rule.psm in
      List.concat_map
        (fun (s : Psm.state) ->
          let guards =
            List.map (fun (tr : Psm.transition) -> tr.Psm.guard)
              (Scan.successors ctx.Rule.scan s.Psm.id)
          in
          List.concat_map
            (fun (trace, runs) ->
              if trace < 0 || trace >= Array.length gammas then []
              else
                let gamma = gammas.(trace) in
                let len = Prop_trace.length gamma in
                List.filter_map
                  (fun (_, stop) ->
                    if stop < 0 || stop + 1 >= len then None
                    else
                      let p = Prop_trace.prop_at gamma (stop + 1) in
                      if List.mem p guards then None
                      else
                        Some
                          (v ~rule:"stall" ~severity:Finding.Error
                             ~location:(Finding.State s.Psm.id)
                             (Printf.sprintf
                                "stalls after trace %d instant %d: the training \
                                 run continues with %s but no outgoing guard \
                                 covers it"
                                trace stop (Rule.prop_describe ctx p))))
                  runs)
            (Scan.activations ctx.Rule.scan s.Psm.id))
        (Psm.states psm)

(* ---------- power-attribute sanity ---------- *)

let trace_length (ctx : Rule.context) trace =
  match (ctx.Rule.powers, ctx.Rule.gammas) with
  | Some powers, _ when trace >= 0 && trace < Array.length powers ->
      Some (Power_trace.length powers.(trace))
  | _, Some gammas when trace >= 0 && trace < Array.length gammas ->
      Some (Prop_trace.length gammas.(trace))
  | Some _, _ | _, Some _ -> Some (-1) (* traces known, index out of range *)
  | None, None -> None

let check_one_attr (ctx : Rule.context) ~location ~what (a : Power_attr.t) =
  let findings = ref [] in
  let emit severity msg = findings := v ~rule:"attr-sanity" ~severity ~location msg :: !findings in
  let not_finite x = Float.is_nan x || x = Float.infinity || x = Float.neg_infinity in
  if not_finite a.Power_attr.mu then
    emit Finding.Error (Printf.sprintf "%s: μ = %g is not finite" what a.Power_attr.mu)
  else if a.Power_attr.mu < 0. then
    emit Finding.Warning
      (Printf.sprintf "%s: μ = %g is negative (energy per instant should be ≥ 0)" what
         a.Power_attr.mu);
  if not_finite a.Power_attr.sigma then
    emit Finding.Error (Printf.sprintf "%s: σ = %g is not finite" what a.Power_attr.sigma)
  else if a.Power_attr.sigma < 0. then
    emit Finding.Error (Printf.sprintf "%s: σ = %g is negative" what a.Power_attr.sigma);
  if a.Power_attr.n < 1 then
    emit Finding.Error
      (Printf.sprintf "%s: n = %d (every state covers ≥ 1 instant)" what a.Power_attr.n);
  (* Interval well-formedness; [intervals = []] is legitimate for
     persisted component attributes, which drop their provenance. *)
  if a.Power_attr.intervals <> [] then begin
    List.iter
      (fun (iv : Power_attr.interval) ->
        if iv.Power_attr.trace < 0 then
          emit Finding.Error
            (Printf.sprintf "%s: interval names negative trace %d" what iv.Power_attr.trace);
        if iv.Power_attr.start < 0 || iv.Power_attr.stop < iv.Power_attr.start then
          emit Finding.Error
            (Printf.sprintf "%s: malformed interval [%d..%d]" what iv.Power_attr.start
               iv.Power_attr.stop);
        match trace_length ctx iv.Power_attr.trace with
        | Some len when len >= 0 && iv.Power_attr.stop >= len ->
            emit Finding.Error
              (Printf.sprintf "%s: interval [%d..%d] exceeds trace %d (length %d)" what
                 iv.Power_attr.start iv.Power_attr.stop iv.Power_attr.trace len)
        | Some len when len < 0 ->
            emit Finding.Error
              (Printf.sprintf "%s: interval names unknown trace %d" what
                 iv.Power_attr.trace)
        | Some _ | None -> ())
      a.Power_attr.intervals;
    (* Per-trace overlap. *)
    let by_trace = Hashtbl.create 4 in
    List.iter
      (fun (iv : Power_attr.interval) ->
        Hashtbl.replace by_trace iv.Power_attr.trace
          ((iv.Power_attr.start, iv.Power_attr.stop)
          :: Option.value ~default:[] (Hashtbl.find_opt by_trace iv.Power_attr.trace)))
      a.Power_attr.intervals;
    Hashtbl.iter
      (fun trace ivs ->
        let sorted = List.sort compare ivs in
        ignore
          (List.fold_left
             (fun prev (start, stop) ->
               (match prev with
               | Some (_, pstop) when start <= pstop ->
                   emit Finding.Error
                     (Printf.sprintf "%s: intervals overlap at trace %d instant %d" what
                        trace start)
               | Some _ | None -> ());
               Some (start, stop))
             None sorted))
      by_trace;
    let covered =
      List.fold_left
        (fun acc (iv : Power_attr.interval) ->
          acc + max 0 (iv.Power_attr.stop - iv.Power_attr.start + 1))
        0 a.Power_attr.intervals
    in
    if covered <> a.Power_attr.n then
      emit Finding.Error
        (Printf.sprintf "%s: intervals cover %d instants but n = %d" what covered
           a.Power_attr.n)
  end;
  List.rev !findings

let check_attr_sanity (ctx : Rule.context) =
  List.concat_map
    (fun (s : Psm.state) ->
      let location = Finding.State s.Psm.id in
      let own = check_one_attr ctx ~location ~what:"attributes" s.Psm.attr in
      let comps =
        if s.Psm.components = [] then
          [ v ~rule:"attr-sanity" ~severity:Finding.Warning ~location
              "no provenance components: the HMM's B row for this state is empty" ]
        else
          List.concat
            (List.mapi
               (fun k (_, attr) ->
                 check_one_attr ctx ~location ~what:(Printf.sprintf "component %d" k) attr)
               s.Psm.components)
      in
      own @ comps)
    (Psm.states ctx.Rule.psm)

(* ---------- merge conservation ---------- *)

let close ~eps ~scale a b =
  a = b || abs_float (a -. b) <= eps *. Float.max scale (Float.max (abs_float a) (abs_float b))

let check_conservation (ctx : Rule.context) =
  match ctx.Rule.powers with
  | None -> []
  | Some powers ->
      let psm = ctx.Rule.psm in
      let scan = ctx.Rule.scan in
      let eps = ctx.Rule.epsilon in
      let findings = ref [] in
      let emit x = findings := x :: !findings in
      List.iter
        (fun (s : Psm.state) ->
          let a = s.Psm.attr in
          (* [Scan.recomputed_attr] is present exactly when the intervals
             are non-empty and all in bounds, and holds the same
             list-order Welford rescan [Power_attr.recompute] produces. *)
          match Scan.recomputed_attr scan s.Psm.id with
          | None -> ()
          | Some r ->
            let location = Finding.State s.Psm.id in
            if r.Power_attr.n <> a.Power_attr.n then
              emit
                (v ~rule:"conservation" ~severity:Finding.Error ~location
                   (Printf.sprintf "n = %d but the intervals hold %d instants"
                      a.Power_attr.n r.Power_attr.n));
            if not (close ~eps ~scale:0. a.Power_attr.mu r.Power_attr.mu) then
              emit
                (v ~rule:"conservation" ~severity:Finding.Error ~location
                   (Printf.sprintf
                      "μ = %.17g but rescanning the intervals gives %.17g"
                      a.Power_attr.mu r.Power_attr.mu));
            (* σ noise from the Chan combination is relative to μ's scale,
               so tolerate eps·μ even when both σ are ~0. *)
            if
              not
                (close ~eps
                   ~scale:(abs_float a.Power_attr.mu)
                   a.Power_attr.sigma r.Power_attr.sigma)
            then
              emit
                (v ~rule:"conservation" ~severity:Finding.Error ~location
                   (Printf.sprintf
                      "σ = %.17g but rescanning the intervals gives %.17g"
                      a.Power_attr.sigma r.Power_attr.sigma)))
        (Psm.states psm);
      (* Every training instant belongs to exactly one state: walk the
         per-trace union of all states' intervals (pooled and sorted by
         the scan). *)
      Array.iteri
        (fun trace power ->
          let len = Power_trace.length power in
          let ivs = Scan.claims scan ~trace in
          let report_gap a b =
            emit
              (v ~rule:"conservation" ~severity:Finding.Error ~location:Finding.Model
                 (Printf.sprintf "trace %d instants [%d..%d] belong to no state" trace a b))
          in
          let last =
            List.fold_left
              (fun expected (start, stop, state) ->
                if start > expected then report_gap expected (start - 1)
                else if start < expected then
                  emit
                    (v ~rule:"conservation" ~severity:Finding.Error
                       ~location:(Finding.State state)
                       (Printf.sprintf
                          "trace %d instant %d is claimed by more than one state" trace
                          start));
                max expected (stop + 1))
              0 ivs
          in
          if last < len then report_gap last (len - 1))
        powers;
      if Scan.total_n scan <> Scan.instants_total scan then
        emit
          (v ~rule:"conservation" ~severity:Finding.Error ~location:Finding.Model
             (Printf.sprintf
                "total n across states is %d but the training traces hold %d instants"
                (Scan.total_n scan) (Scan.instants_total scan)));
      List.rev !findings

let rules =
  [ { Rule.name = "determinism";
      description =
        "guards out of one state must not be simultaneously satisfiable; \
         same-guard fan-out is flagged as HMM-resolved nondeterminism";
      check = check_determinism };
    { Rule.name = "reachability";
      description = "every state is reachable from S₀; sinks are reported";
      check = check_reachability };
    { Rule.name = "stall";
      description =
        "input-completeness against the training Γ: every proposition that \
         follows a state's activation is covered by an outgoing guard";
      check = check_stall };
    { Rule.name = "attr-sanity";
      description = "σ ≥ 0, n ≥ 1, finite μ, well-formed disjoint intervals summing to n";
      check = check_attr_sanity };
    { Rule.name = "conservation";
      description =
        "pooled ⟨μ, σ, n⟩ equals a rescan of the reference power traces; every \
         training instant is covered exactly once";
      check = check_conservation } ]
