(* Symbolic rules: adapters lifting the {!Psm_verify.Verify} proofs into
   the analyzer registry, so Flow.train / psmgen lint / strict CI pick
   them up alongside the dynamic rules. Unlike the replay rules these
   decide properties for ALL input valuations, and refutations carry a
   concrete witness valuation.

   Like every rule they must be pure, total and deterministic — the
   Verify checks are (validation failures become findings, never
   exceptions), so parallel analyzer reports stay byte-identical. *)

module Verify = Psm_verify.Verify

let severity = function
  | Verify.Error -> Finding.Error
  | Verify.Warning -> Finding.Warning
  | Verify.Info -> Finding.Info

let location = function
  | Verify.Model -> Finding.Model
  | Verify.Prop p -> Finding.Prop p
  | Verify.State s -> Finding.State s
  | Verify.Transition { src; guard; dst } -> Finding.Transition { src; guard; dst }

let lift iface (f : Verify.finding) =
  let witness =
    Option.map
      (fun values ->
        { Finding.values; bindings = Verify.bindings iface values })
      f.Verify.witness
  in
  Finding.v ?witness ~rule:f.Verify.check ~severity:(severity f.Verify.severity)
    ~location:(location f.Verify.location) f.Verify.message

let iface_of (ctx : Rule.context) =
  Psm_mining.Vocabulary.interface
    (Psm_mining.Prop_trace.Table.vocabulary (Psm_core.Psm.prop_table ctx.Rule.psm))

let lift_all ctx fs = List.map (lift (iface_of ctx)) fs

let rules : Rule.t list =
  [
    {
      Rule.name = "static-feasibility";
      description =
        "every proposition and transition guard admits an input valuation, \
         and guards can start their destination's assertion (theory proof)";
      check = (fun ctx -> lift_all ctx (Verify.feasibility ctx.Rule.psm));
    };
    {
      Rule.name = "static-disjointness";
      description =
        "propositions are pairwise mutually exclusive and same-state guards \
         deterministic, for all input valuations (theory proof)";
      check = (fun ctx -> lift_all ctx (Verify.disjointness ctx.Rule.psm));
    };
    {
      Rule.name = "static-coverage";
      description =
        "input valuations no proposition covers — statically predicted \
         resync regions, with witnesses";
      check = (fun ctx -> lift_all ctx (Verify.coverage ctx.Rule.psm));
    };
    {
      Rule.name = "static-vacuity";
      description =
        "degenerate assertion patterns: unsatisfiable propositions, \
         unchainable Seq steps, Alt branches subsumed by a sibling";
      check = (fun ctx -> lift_all ctx (Verify.vacuity ctx.Rule.psm));
    };
  ]
