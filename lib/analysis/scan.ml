module Psm = Psm_core.Psm
module Power_attr = Psm_core.Power_attr
module Power_trace = Psm_trace.Power_trace

(* The profiled hot path of the analyzer was not the trace arithmetic but
   the per-state [Psm.successors] calls: that accessor filters the full
   transition list per call, so the determinism and stall rules together
   were O(states × edges) — ~7.4 s of Camellia's 7.9 s analyze, whose raw
   chains hold ~9k states. The scan builds every shared derivative once:
   successor adjacency, per-state activation runs, the Welford rescan of
   each state's intervals (list order preserved, so results are
   bit-identical to [Power_attr.recompute]), and the per-trace interval
   claims the conservation walk consumes. One pass per (trace, power)
   pair in total, because states partition the training instants. *)

type t = {
  successors : (int, Psm.transition list) Hashtbl.t;
  activations : (int, (int * (int * int) list) list) Hashtbl.t;
  recomputed : (int, Power_attr.t) Hashtbl.t;
      (* states whose intervals are non-empty and all within the power
         traces — exactly the conservation rule's precondition *)
  claims : (int * int * int) list array;
      (* per power trace: sorted (start, stop, state id) of in-bounds
         intervals, all states pooled *)
  total_n : int; (* Σ states' attr.n *)
  instants_total : int; (* Σ power trace lengths *)
}

(* Per-trace maximal activations of one interval list: sorted and
   coalesced (a state merged by [simplify] holds member intervals that
   abut — the run is one activation). Overlapping (corrupt) intervals
   coalesce too; [attr-sanity] reports them. *)
let merge_sorted ivs =
  List.rev
    (List.fold_left
       (fun acc (start, stop) ->
         match acc with
         | (s0, e0) :: rest when start <= e0 + 1 -> (s0, max e0 stop) :: rest
         | _ -> (start, stop) :: acc)
       [] ivs)

(* Intervals already in (trace, start, stop) order — the shape the
   generator emits and merges preserve. *)
let rec sorted_by_trace_start = function
  | (a : Power_attr.interval) :: (b :: _ as rest) ->
      (a.Power_attr.trace < b.Power_attr.trace
      || (a.Power_attr.trace = b.Power_attr.trace
         && (a.Power_attr.start < b.Power_attr.start
            || (a.Power_attr.start = b.Power_attr.start
               && a.Power_attr.stop <= b.Power_attr.stop))))
      && sorted_by_trace_start rest
  | _ -> true

let activation_runs intervals =
  match intervals with
  | [] -> []
  | [ iv ] -> [ (iv.Power_attr.trace, [ (iv.Power_attr.start, iv.Power_attr.stop) ]) ]
  | _ when sorted_by_trace_start intervals ->
      (* Single-pass grouping: the interval list is itself the
         materialized run structure (most states' intervals arrive in
         canonical order), so the hashtable and the sorts disappear.
         Output is structurally identical to the general path. *)
      let rec split groups cur cur_ivs = function
        | [] -> List.rev ((cur, merge_sorted (List.rev cur_ivs)) :: groups)
        | (iv : Power_attr.interval) :: rest ->
            if iv.Power_attr.trace = cur then
              split groups cur ((iv.Power_attr.start, iv.Power_attr.stop) :: cur_ivs) rest
            else
              split
                ((cur, merge_sorted (List.rev cur_ivs)) :: groups)
                iv.Power_attr.trace
                [ (iv.Power_attr.start, iv.Power_attr.stop) ]
                rest
      in
      (match intervals with
      | iv :: rest ->
          split [] iv.Power_attr.trace [ (iv.Power_attr.start, iv.Power_attr.stop) ] rest
      | [] -> [])
  | _ ->
      let by_trace = Hashtbl.create 4 in
      List.iter
        (fun (iv : Power_attr.interval) ->
          Hashtbl.replace by_trace iv.Power_attr.trace
            ((iv.Power_attr.start, iv.Power_attr.stop)
            :: Option.value ~default:[] (Hashtbl.find_opt by_trace iv.Power_attr.trace)))
        intervals;
      Hashtbl.fold
        (fun trace ivs acc -> (trace, merge_sorted (List.sort compare ivs)) :: acc)
        by_trace []
      |> List.sort compare

let create ?powers psm =
  Psm_obs.span "analyze.scan" @@ fun () ->
  let states = Psm.states psm in
  let successors = Hashtbl.create 64 in
  (* The global transition list is ordered; grouping in encounter order
     reproduces [Psm.successors]'s per-source sublists exactly. *)
  List.iter
    (fun (tr : Psm.transition) ->
      Hashtbl.replace successors tr.Psm.src
        (tr :: Option.value ~default:[] (Hashtbl.find_opt successors tr.Psm.src)))
    (Psm.transitions psm);
  Hashtbl.filter_map_inplace (fun _ trs -> Some (List.rev trs)) successors;
  let activations = Hashtbl.create 64 in
  List.iter
    (fun (s : Psm.state) ->
      Hashtbl.replace activations s.Psm.id
        (activation_runs s.Psm.attr.Power_attr.intervals))
    states;
  let recomputed = Hashtbl.create 64 in
  let total_n =
    List.fold_left (fun acc (s : Psm.state) -> acc + s.Psm.attr.Power_attr.n) 0 states
  in
  let claims, instants_total =
    match powers with
    | None -> ([||], 0)
    | Some powers ->
        let in_bounds (iv : Power_attr.interval) =
          iv.Power_attr.trace >= 0
          && iv.Power_attr.trace < Array.length powers
          && iv.Power_attr.start >= 0
          && iv.Power_attr.stop >= iv.Power_attr.start
          && iv.Power_attr.stop < Power_trace.length powers.(iv.Power_attr.trace)
        in
        let claims = Array.make (Array.length powers) [] in
        List.iter
          (fun (s : Psm.state) ->
            let a = s.Psm.attr in
            if a.Power_attr.intervals <> [] && List.for_all in_bounds a.Power_attr.intervals
            then Hashtbl.replace recomputed s.Psm.id (Power_attr.recompute powers a);
            List.iter
              (fun (iv : Power_attr.interval) ->
                if in_bounds iv then
                  claims.(iv.Power_attr.trace) <-
                    (iv.Power_attr.start, iv.Power_attr.stop, s.Psm.id)
                    :: claims.(iv.Power_attr.trace))
              a.Power_attr.intervals)
          states;
        ( Array.map (List.sort compare) claims,
          Array.fold_left (fun acc p -> acc + Power_trace.length p) 0 powers )
  in
  { successors; activations; recomputed; claims; total_n; instants_total }

let successors t id = Option.value ~default:[] (Hashtbl.find_opt t.successors id)
let activations t id = Option.value ~default:[] (Hashtbl.find_opt t.activations id)
let recomputed_attr t id = Hashtbl.find_opt t.recomputed id
let claims t ~trace = if trace < Array.length t.claims then t.claims.(trace) else []
let total_n t = t.total_n
let instants_total t = t.instants_total
