(** Shared single-pass trace/model statistics for the analyzer rules.

    Built once per {!Rule.context}; rules read it instead of re-deriving
    per-state data (the per-state [Psm.successors] filter made the
    determinism + stall rules O(states × edges) before). All fields are
    immutable after {!create}, so a scan can be read concurrently from
    the analyzer's worker domains.

    Field consumers: [successors] — determinism, stall; [activations] —
    stall; [recomputed_attr], [claims], [total_n], [instants_total] —
    conservation. *)

type t

val create : ?powers:Psm_trace.Power_trace.t array -> Psm_core.Psm.t -> t

val successors : t -> int -> Psm_core.Psm.transition list
(** Outgoing transitions of a state, in [Psm.successors] order. *)

val activations : t -> int -> (int * (int * int) list) list
(** Per-trace maximal activation runs of a state's intervals: sorted by
    trace, runs sorted and coalesced (abutting or overlapping intervals
    merge). *)

val recomputed_attr : t -> int -> Psm_core.Power_attr.t option
(** The Welford rescan of the state's intervals against the power
    traces — bit-identical to [Power_attr.recompute] (same interval
    order). [None] when the state has no intervals, any interval is out
    of bounds, or no power traces were given. *)

val claims : t -> trace:int -> (int * int * int) list
(** Sorted [(start, stop, state id)] in-bounds claims on one power
    trace, all states pooled — the conservation coverage walk. *)

val total_n : t -> int
(** Σ over states of [attr.n]. *)

val instants_total : t -> int
(** Σ of the power trace lengths ([0] without power traces). *)
