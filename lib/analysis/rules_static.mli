(** Symbolic verification rules (over the atom theory).

    Adapters exposing the {!Psm_verify.Verify} checks as analyzer rules:

    - [static-feasibility] — every interned proposition and every
      transition guard admits at least one input valuation, and each
      guard is an entry proposition of its destination's assertion;
    - [static-disjointness] — propositions are pairwise mutually
      exclusive and the guards leaving each state deterministic, proved
      for {e all} valuations (strictly stronger than the replay-based
      [determinism] rule);
    - [static-coverage] — satisfiable input regions no proposition
      covers (predicted resync regions), each with a witness valuation;
    - [static-vacuity] — degenerate assertion structure.

    Refutation findings carry {!Finding.witness} valuations replayable
    via [Psm_ips.Workloads.of_witnesses]. *)

val rules : Rule.t list
