(** Text and JSON rendering of analyzer findings. *)

val summary : Finding.t list -> string
(** One line: ["2 errors, 1 warning, 3 infos"] (or ["clean"]). *)

val text : Finding.t list -> string
(** The summary followed by one line per finding, most severe first. *)

val json : Finding.t list -> string
(** A stable machine-readable rendering:
    [{ "schema": 1, "errors": n, "warnings": n, "infos": n,
       "findings": [ { "severity", "rule", "location", "message" }, … ] }]
    where ["location"] is one of
    [{"kind":"model"}], [{"kind":"state","id":i}],
    [{"kind":"transition","src":i,"guard":p,"dst":j}],
    [{"kind":"hmm-row","row":i}], [{"kind":"prop","id":p}].
    Findings carrying a witness valuation additionally get
    [{"witness":{"values":[…],"bindings":["we = 1",…]}}] with values in
    width-prefixed hex. *)
