(** Diagnostics emitted by the static analyzer.

    A finding pins one rule violation to one location of the model under
    analysis — a state, a transition (with its guard proposition), an HMM
    row, an interned proposition, or the model as a whole — with a
    severity and a human-readable message (propositions already rendered
    through the prop table by the rule that produced the finding).
    Refutation-style findings from the symbolic rules additionally carry
    a concrete {!witness} input valuation that replays the violation. *)

type severity = Error | Warning | Info

type location =
  | Model  (** A whole-model property (e.g. instant-count conservation). *)
  | State of int  (** A PSM state id. *)
  | Transition of { src : int; guard : int; dst : int }
  | Hmm_row of int  (** A dense HMM row index. *)
  | Prop of int  (** An interned proposition id. *)

type witness = {
  values : Psm_bits.Bits.t array;
      (** One value per interface signal — replayable as a stimulus
          cycle via [Psm_ips.Workloads.of_witnesses]. *)
  bindings : (string * string) list;
      (** Rendered (signal name, value) pairs for display. *)
}

type t = {
  rule : string;  (** Name of the rule that fired. *)
  severity : severity;
  location : location;
  message : string;
  witness : witness option;
}

val v :
  ?witness:witness ->
  rule:string ->
  severity:severity ->
  location:location ->
  string ->
  t
(** [v ~rule ~severity ~location message] builds a finding. *)

val severity_to_string : severity -> string

val compare_severity : severity -> severity -> int
(** Most severe first: [Error < Warning < Info]. *)

val sort : t list -> t list
(** Stable order: severity (errors first), then rule name, then location. *)

val errors : t list -> t list
val count : severity -> t list -> int

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit
