(** The diagnostics engine: runs the rule registry over a model and
    collects sorted findings.

    The registry starts with the built-in rules ({!Rules_psm.rules} then
    {!Rules_hmm.rules}); {!register} extends or replaces it. *)

type config = {
  strict : bool;
      (** Raise {!Strict_failure} when any [Error]-severity finding
          survives. *)
  epsilon : float;  (** Numeric tolerance fed to the rule context. *)
  rules : string list option;
      (** Restrict the run to these rule names ([None] = all). Unknown
          names raise [Invalid_argument]. *)
  max_analyze_fraction : float;
      (** {!overhead_check} warns when static analysis exceeded this
          fraction of the generation pipeline's wall time. *)
}

val default : config
(** [{ strict = false; epsilon = 1e-6; rules = None;
       max_analyze_fraction = 0.5 }] *)

exception Strict_failure of Finding.t list
(** Carries the [Error]-severity findings only. *)

val register : Rule.t -> unit
(** Add a rule (replacing any registered rule of the same name). *)

val rules : unit -> Rule.t list
(** The registry, in registration order. *)

val run : ?config:config -> Rule.context -> Finding.t list
(** Run the enabled rules over the context; findings come back sorted by
    severity. In strict mode, raises {!Strict_failure} if any [Error]
    finding was produced (after returning-none rules ran too, so the
    exception carries the complete error list).

    Rules fan out across the {!Psm_par} pool only when the work proxy
    (rule count × (states + transitions)) reaches
    {!parallel_work_cutoff}; small models run inline — cheaper than a
    pool dispatch — with a byte-identical report either way. *)

val parallel_work_cutoff : int
(** See {!run}. *)

val analyze :
  ?config:config ->
  ?hmm:Psm_hmm.Hmm.t ->
  ?gammas:Psm_mining.Prop_trace.t array ->
  ?powers:Psm_trace.Power_trace.t array ->
  Psm_core.Psm.t ->
  Finding.t list
(** Convenience: build the context (with [config.epsilon]) and {!run}. *)

val check_strict : Finding.t list -> unit
(** Raise {!Strict_failure} if the findings contain an [Error]. *)

(** {1 Analyzer self-accounting}

    The analyzer gate-checks generated models, so its own cost must stay
    small next to the pipeline it checks. These produce at most one
    [Warning]-severity [analyzer-overhead] finding located on the model. *)

val overhead_check :
  ?config:config -> analyze_s:float -> generation_s:float -> unit -> Finding.t list
(** Compare explicit wall times (e.g. a {!Psm_flow.Flow.timings} record)
    against [config.max_analyze_fraction]. Zero or negative times never
    warn. *)

val overhead_findings : ?config:config -> unit -> Finding.t list
(** {!overhead_check} fed from the {!Psm_obs} span totals ([flow.analyze]
    vs [flow.mine] + [flow.generate] + [flow.combine]); returns [[]]
    unless profiling was enabled and the flow spans were recorded. *)
