module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm
module Assertion = Psm_core.Assertion
module Table = Psm_mining.Prop_trace.Table

let v = Finding.v

let with_hmm (ctx : Rule.context) k =
  match ctx.Rule.hmm with None -> [] | Some hmm -> k hmm

(* ---------- consistency with the PSM ---------- *)

let check_consistency ctx =
  with_hmm ctx @@ fun hmm ->
  let psm = ctx.Rule.psm in
  let findings = ref [] in
  let emit x = findings := x :: !findings in
  if Hmm.state_count hmm <> Psm.state_count psm then
    emit
      (v ~rule:"hmm-consistency" ~severity:Finding.Error ~location:Finding.Model
         (Printf.sprintf "HMM has %d hidden states but the PSM has %d"
            (Hmm.state_count hmm) (Psm.state_count psm)));
  List.iter
    (fun (s : Psm.state) ->
      match Hmm.row_of_state hmm s.Psm.id with
      | _ -> ()
      | exception Not_found ->
          emit
            (v ~rule:"hmm-consistency" ~severity:Finding.Error
               ~location:(Finding.State s.Psm.id)
               "PSM state has no HMM row"))
    (Psm.states psm);
  List.rev !findings

(* ---------- stochasticity ---------- *)

let check_stochastic_row ~eps ~location ~what row =
  let findings = ref [] in
  let emit severity msg =
    findings := v ~rule:"hmm-stochastic" ~severity ~location msg :: !findings
  in
  let bad = ref false in
  Array.iteri
    (fun j x ->
      if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then begin
        bad := true;
        emit Finding.Error (Printf.sprintf "%s[%d] = %g is not finite" what j x)
      end
      else if x < 0. then begin
        bad := true;
        emit Finding.Error (Printf.sprintf "%s[%d] = %g is negative" what j x)
      end)
    row;
  if not !bad then begin
    let total = Array.fold_left ( +. ) 0. row in
    if total = 0. then
      emit Finding.Warning (Printf.sprintf "%s is all-zero (no probability mass)" what)
    else if abs_float (total -. 1.) > eps then
      emit Finding.Error (Printf.sprintf "%s sums to %.17g, not 1" what total)
  end;
  List.rev !findings

let check_stochastic ctx =
  with_hmm ctx @@ fun hmm ->
  let eps = ctx.Rule.epsilon in
  let m = Hmm.state_count hmm in
  let nprops = Table.prop_count (Psm.prop_table ctx.Rule.psm) in
  let a_rows =
    List.concat
      (List.init m (fun i ->
           let row = Hmm.a_row hmm i in
           let what = Printf.sprintf "A[s%d]" (Hmm.state_of_row hmm i) in
           (* A rows must never be all-zero: build gives absorbing states a
              self-loop, so promote the all-zero Warning to an Error. *)
           check_stochastic_row ~eps ~location:(Finding.Hmm_row i) ~what row
           |> List.map (fun (f : Finding.t) ->
                  if f.Finding.severity = Finding.Warning then
                    { f with Finding.severity = Finding.Error }
                  else f)))
  in
  let pi_row =
    check_stochastic_row ~eps ~location:Finding.Model ~what:"π" (Hmm.pi hmm)
    |> List.map (fun (f : Finding.t) ->
           if f.Finding.severity = Finding.Warning then
             { f with Finding.severity = Finding.Error }
           else f)
  in
  let b_rows =
    List.concat
      (List.init m (fun i ->
           let state = Hmm.state_of_row hmm i in
           let full = Array.init nprops (fun p -> Hmm.b_obs hmm i p) in
           let entry = Array.init nprops (fun p -> Hmm.b_entry hmm i p) in
           check_stochastic_row ~eps ~location:(Finding.Hmm_row i)
             ~what:(Printf.sprintf "B[s%d]" state)
             full
           @ check_stochastic_row ~eps ~location:(Finding.Hmm_row i)
               ~what:(Printf.sprintf "B-entry[s%d]" state)
               entry))
  in
  a_rows @ pi_row @ b_rows

(* ---------- emission support vs components ---------- *)

let check_emission ctx =
  with_hmm ctx @@ fun hmm ->
  let psm = ctx.Rule.psm in
  let nprops = Table.prop_count (Psm.prop_table psm) in
  List.concat_map
    (fun (s : Psm.state) ->
      match Hmm.row_of_state hmm s.Psm.id with
      | exception Not_found -> [] (* hmm-consistency reports it *)
      | row ->
          List.concat_map
            (fun (assertion, _) ->
              List.filter_map
                (fun p ->
                  if p < 0 || p >= nprops then
                    Some
                      (v ~rule:"hmm-emission" ~severity:Finding.Error
                         ~location:(Finding.State s.Psm.id)
                         (Printf.sprintf
                            "component assertion enters through %s, which is not \
                             an interned proposition"
                            (Rule.prop_name ctx p)))
                  else if Hmm.b_entry hmm row p <= 0. then
                    Some
                      (v ~rule:"hmm-emission" ~severity:Finding.Warning
                         ~location:(Finding.State s.Psm.id)
                         (Printf.sprintf
                            "component entry proposition %s carries no emission \
                             mass in B-entry"
                            (Rule.prop_name ctx p)))
                  else None)
                (Assertion.entry_props assertion))
            s.Psm.components)
    (Psm.states psm)

let rules =
  [ { Rule.name = "hmm-consistency";
      description = "the HMM's hidden states are exactly the PSM's states";
      check = check_consistency };
    { Rule.name = "hmm-stochastic";
      description = "A rows, π and emission rows are probability distributions";
      check = check_stochastic };
    { Rule.name = "hmm-emission";
      description = "emission support is consistent with the characterizing components";
      check = check_emission } ]
