type config = {
  strict : bool;
  epsilon : float;
  rules : string list option;
  max_analyze_fraction : float;
}

let default =
  { strict = false; epsilon = 1e-6; rules = None; max_analyze_fraction = 0.5 }

exception Strict_failure of Finding.t list

(* Registration order is the run order; names are unique. *)
let registry : Rule.t list ref = ref []

let register (rule : Rule.t) =
  if List.exists (fun (r : Rule.t) -> r.Rule.name = rule.Rule.name) !registry then
    registry :=
      List.map
        (fun (r : Rule.t) -> if r.Rule.name = rule.Rule.name then rule else r)
        !registry
  else registry := !registry @ [ rule ]

let () =
  List.iter register (Rules_psm.rules @ Rules_hmm.rules @ Rules_static.rules)

let rules () = !registry

(* Work proxy below which [run] skips the pool: rule count × (states +
   transitions). Optimized PSMs (tens of states, ~10² proxy per rule)
   lint in well under a pool dispatch; raw mined chains (10³..10⁴
   states) clear it comfortably. *)
let parallel_work_cutoff = 20_000

let check_strict findings =
  match Finding.errors findings with [] -> () | errors -> raise (Strict_failure errors)

let run ?(config = default) ctx =
  let enabled =
    match config.rules with
    | None -> !registry
    | Some names ->
        List.map
          (fun name ->
            match List.find_opt (fun (r : Rule.t) -> r.Rule.name = name) !registry with
            | Some r -> r
            | None ->
                let available =
                  String.concat ", "
                    (List.map (fun (r : Rule.t) -> r.Rule.name) !registry)
                in
                invalid_arg
                  (Printf.sprintf
                     "Analyzer.run: unknown rule %s (available: %s)" name
                     available))
          names
  in
  (* Rules are independent and the context (scan included) is immutable,
     so they fan out across the Psm_par pool. [parallel_map] returns in
     input order and [Finding.sort] is stable, so the report is
     byte-identical for any PSM_JOBS value; per-rule spans land in each
     worker domain's DLS buffer and merge deterministically.

     Cutoff: a rule pass over a mined PSM (tens of states) runs in
     microseconds, below the pool's dispatch cost — linting Camellia was
     measurably SLOWER parallel than sequential. Only models big enough
     to amortize the fan-out take the pool; the report is byte-identical
     either way. *)
  let states = List.length (Psm_core.Psm.states ctx.Rule.psm) in
  let transitions = List.length (Psm_core.Psm.transitions ctx.Rule.psm) in
  let work = List.length enabled * (states + transitions) in
  let check (r : Rule.t) =
    Psm_obs.span ("analyze." ^ r.Rule.name) (fun () -> r.Rule.check ctx)
  in
  let per_rule =
    if work < parallel_work_cutoff then List.map check enabled
    else Psm_par.parallel_map check enabled
  in
  let findings = Finding.sort (List.concat per_rule) in
  if config.strict then check_strict findings;
  findings

let analyze ?(config = default) ?hmm ?gammas ?powers psm =
  run ~config (Rule.context ?hmm ?gammas ?powers ~epsilon:config.epsilon psm)

(* The analyzer is bookkeeping, not methodology: it must stay cheap
   relative to the generation pipeline it gate-checks. *)
let overhead_check ?(config = default) ~analyze_s ~generation_s () =
  if analyze_s > 0. && generation_s > 0.
     && analyze_s > config.max_analyze_fraction *. generation_s
  then
    [ Finding.v ~rule:"analyzer-overhead" ~severity:Finding.Warning
        ~location:Finding.Model
        (Printf.sprintf
           "static analysis took %.3fs, over %.0f%% of the %.3fs generation time"
           analyze_s
           (100. *. config.max_analyze_fraction)
           generation_s) ]
  else []

let overhead_findings ?(config = default) () =
  let analyze_s = Psm_obs.span_total "flow.analyze" in
  let generation_s =
    Psm_obs.span_total "flow.mine"
    +. Psm_obs.span_total "flow.generate"
    +. Psm_obs.span_total "flow.combine"
  in
  overhead_check ~config ~analyze_s ~generation_s ()
