(** The built-in structural rules over {!Psm_core.Psm.t}:

    - [determinism] — dangling guard ids (Error), two guards out of one
      state with bitwise-identical truth rows (Error: simultaneously
      satisfiable), and same-guard fan-out to distinct states (Warning:
      the join-induced nondeterminism the HMM resolves);
    - [reachability] — empty S₀ (Error), states unreachable from any
      initial state (Warning), sink states (Info: the HMM self-loops
      them);
    - [stall] — input-completeness against the training Γ: a state whose
      activation is followed by a proposition no outgoing guard covers
      (Error); needs [gammas];
    - [attr-sanity] — σ ≥ 0, n ≥ 1, finite μ, well-formed non-overlapping
      intervals whose lengths sum to n (Errors), negative μ or missing
      components (Warnings);
    - [conservation] — each state's pooled ⟨μ, σ, n⟩ equals
      {!Psm_core.Power_attr.recompute} over its intervals, every training
      instant is covered exactly once, and total n is conserved (Errors);
      needs [powers]. *)

val rules : Rule.t list
(** In severity-relevant order: determinism, reachability, stall,
    attr-sanity, conservation. *)
