type severity = Error | Warning | Info

type location =
  | Model
  | State of int
  | Transition of { src : int; guard : int; dst : int }
  | Hmm_row of int
  | Prop of int

type witness = {
  values : Psm_bits.Bits.t array;
  bindings : (string * string) list;
}

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  witness : witness option;
}

let v ?witness ~rule ~severity ~location message =
  { rule; severity; location; message; witness }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let location_key = function
  | Model -> (0, 0, 0, 0)
  | State id -> (1, id, 0, 0)
  | Transition { src; guard; dst } -> (2, src, guard, dst)
  | Hmm_row row -> (3, row, 0, 0)
  | Prop id -> (4, id, 0, 0)

let sort findings =
  List.stable_sort
    (fun a b ->
      let c = compare_severity a.severity b.severity in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else compare (location_key a.location) (location_key b.location))
    findings

let errors findings = List.filter (fun f -> f.severity = Error) findings

let count severity findings = List.length (List.filter (fun f -> f.severity = severity) findings)

let pp_location fmt = function
  | Model -> Format.fprintf fmt "model"
  | State id -> Format.fprintf fmt "s%d" id
  | Transition { src; guard; dst } -> Format.fprintf fmt "s%d --[p%d]--> s%d" src guard dst
  | Hmm_row row -> Format.fprintf fmt "A-row %d" row
  | Prop id -> Format.fprintf fmt "prop %d" id

let pp fmt f =
  Format.fprintf fmt "%s[%s] %a: %s" (severity_to_string f.severity) f.rule pp_location
    f.location f.message;
  match f.witness with
  | None -> ()
  | Some w ->
      Format.fprintf fmt " [witness: %s]"
        (String.concat ", " (List.map (fun (n, v) -> n ^ " = " ^ v) w.bindings))
