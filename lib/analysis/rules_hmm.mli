(** The built-in rules over {!Psm_hmm.Hmm.t} (all skipped when the
    context carries no HMM):

    - [hmm-consistency] — the HMM's hidden states are exactly the PSM's
      states (Errors);
    - [hmm-stochastic] — A rows, π and the emission rows are probability
      distributions: finite, non-negative, summing to 1 within ε
      (Errors); an all-zero emission row is a Warning;
    - [hmm-emission] — emission support is consistent with the states'
      characterizing components: every component's entry propositions are
      interned (Error) and carry emission mass (Warning). *)

val rules : Rule.t list

val check_stochastic_row :
  eps:float -> location:Finding.location -> what:string -> float array -> Finding.t list
(** The row primitive behind [hmm-stochastic], exposed so tests (and
    external tooling) can lint raw probability rows directly: Errors for
    NaN/infinite/negative entries and for a row sum off 1 by more than
    [eps]; an all-zero row yields a single Warning instead. *)
