let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary findings =
  if findings = [] then "clean"
  else
    let e = Finding.count Finding.Error findings in
    let w = Finding.count Finding.Warning findings in
    let i = Finding.count Finding.Info findings in
    String.concat ", "
      (List.filter_map
         (fun (n, what) -> if n = 0 then None else Some (plural n what))
         [ (e, "error"); (w, "warning"); (i, "info") ])

let text findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (summary findings);
  Buffer.add_char buf '\n';
  List.iter
    (fun f -> Buffer.add_string buf (Format.asprintf "  %a@." Finding.pp f))
    (Finding.sort findings);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_json = function
  | Finding.Model -> "{\"kind\":\"model\"}"
  | Finding.State id -> Printf.sprintf "{\"kind\":\"state\",\"id\":%d}" id
  | Finding.Transition { src; guard; dst } ->
      Printf.sprintf "{\"kind\":\"transition\",\"src\":%d,\"guard\":%d,\"dst\":%d}" src
        guard dst
  | Finding.Hmm_row row -> Printf.sprintf "{\"kind\":\"hmm-row\",\"row\":%d}" row
  | Finding.Prop id -> Printf.sprintf "{\"kind\":\"prop\",\"id\":%d}" id

let witness_json (w : Finding.witness) =
  let values =
    Array.to_list
      (Array.map
         (fun v -> Printf.sprintf "\"%s\"" (Format.asprintf "%a" Psm_bits.Bits.pp v))
         w.Finding.values)
  in
  let bindings =
    List.map
      (fun (n, v) -> Printf.sprintf "\"%s = %s\"" (json_escape n) (json_escape v))
      w.Finding.bindings
  in
  Printf.sprintf "{\"values\":[%s],\"bindings\":[%s]}" (String.concat "," values)
    (String.concat "," bindings)

let json findings =
  let findings = Finding.sort findings in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 1,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"errors\": %d,\n  \"warnings\": %d,\n  \"infos\": %d,\n"
       (Finding.count Finding.Error findings)
       (Finding.count Finding.Warning findings)
       (Finding.count Finding.Info findings));
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      let witness =
        match f.Finding.witness with
        | None -> ""
        | Some w -> Printf.sprintf ",\"witness\":%s" (witness_json w)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"severity\":\"%s\",\"rule\":\"%s\",\"location\":%s,\"message\":\"%s\"%s}"
           (Finding.severity_to_string f.Finding.severity)
           (json_escape f.Finding.rule)
           (location_json f.Finding.location)
           (json_escape f.Finding.message)
           witness))
    findings;
  Buffer.add_string buf (if findings = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf
