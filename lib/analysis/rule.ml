module Table = Psm_mining.Prop_trace.Table

type context = {
  psm : Psm_core.Psm.t;
  hmm : Psm_hmm.Hmm.t option;
  gammas : Psm_mining.Prop_trace.t array option;
  powers : Psm_trace.Power_trace.t array option;
  epsilon : float;
  scan : Scan.t;
}

(* The scan is built eagerly: rules may run on the analyzer's worker
   domains, and an immutable structure needs no synchronization there. *)
let context ?hmm ?gammas ?powers ?(epsilon = 1e-6) psm =
  { psm; hmm; gammas; powers; epsilon; scan = Scan.create ?powers psm }

type t = {
  name : string;
  description : string;
  check : context -> Finding.t list;
}

let prop_name ctx p =
  let table = Psm_core.Psm.prop_table ctx.psm in
  if p >= 0 && p < Table.prop_count table then Table.name table p
  else Printf.sprintf "p%d?" p

let prop_describe ctx p =
  let table = Psm_core.Psm.prop_table ctx.psm in
  if p >= 0 && p < Table.prop_count table then
    Format.asprintf "%a" (Table.pp_prop table) p
  else Printf.sprintf "p%d? (not in the prop table)" p
