(** Analyzer rules: named checks over a model-analysis context.

    A rule inspects the context and returns findings; it must be pure
    (no mutation of the model) and total (never raise on malformed
    models — malformedness is exactly what it reports). *)

type context = {
  psm : Psm_core.Psm.t;
  hmm : Psm_hmm.Hmm.t option;
      (** When present, the HMM rules run against it. *)
  gammas : Psm_mining.Prop_trace.t array option;
      (** Training proposition traces (indexed like
          {!Psm_core.Power_attr.interval.trace}); enables the
          input-completeness / stall rule. *)
  powers : Psm_trace.Power_trace.t array option;
      (** Training power traces; enables the merge-conservation rule. *)
  epsilon : float;
      (** Numeric tolerance for conservation and stochasticity checks. *)
  scan : Scan.t;
      (** Shared single-pass statistics, built eagerly by {!context};
          immutable, so safe to read from parallel rule runs. *)
}

val context :
  ?hmm:Psm_hmm.Hmm.t ->
  ?gammas:Psm_mining.Prop_trace.t array ->
  ?powers:Psm_trace.Power_trace.t array ->
  ?epsilon:float ->
  Psm_core.Psm.t ->
  context
(** Default [epsilon] is [1e-6]. *)

type t = {
  name : string;
  description : string;
  check : context -> Finding.t list;
}

val prop_name : context -> int -> string
(** Display name of a proposition rendered through the model's prop
    table, or ["p<id>?"] when the id is out of range — rules use this so
    findings never raise on dangling ids. *)

val prop_describe : context -> int -> string
(** [prop_name] plus the positive literals of the proposition's truth
    row (Fig. 3 style), for self-contained messages. *)
