(** Combinational building blocks over {!Netlist}: the word-level operators
    a synthesis tool would map to gates. All vectors are LSB-first net
    arrays; binary operators require equal widths. *)

open Netlist

val const_vector : t -> Psm_bits.Bits.t -> net array

val not_v : t -> net array -> net array
val and_v : t -> net array -> net array -> net array
val or_v : t -> net array -> net array -> net array
val xor_v : t -> net array -> net array -> net array

val mux2 : t -> sel:net -> net array -> net array -> net array
(** Bitwise 2:1 mux: selects the first vector when [sel] is 0. *)

val adder : t -> ?carry_in:net -> net array -> net array -> net array * net
(** Ripple-carry adder; returns (sum, carry-out). *)

val subtractor : t -> net array -> net array -> net array * net
(** Two's-complement subtraction a − b; returns (difference, borrow-free
    carry-out). *)

val multiplier : t -> net array -> net array -> net array
(** Unsigned array multiplier; the product has width |a| + |b|. *)

val eq_const : t -> net array -> Psm_bits.Bits.t -> net
(** 1 when the vector equals the constant. *)

val eq_v : t -> net array -> net array -> net

val decoder : t -> net array -> net array
(** [decoder t a] is the full one-hot decode of [a]: output [i] is 1 iff
    the input vector's value is [i] (2^|a| outputs). *)

val mux_tree : t -> sel:net array -> net array array -> net array
(** [mux_tree t ~sel ways] selects [ways.(value of sel)]; [ways] must have
    exactly [2^|sel|] entries of equal width. *)

val zero_extend : t -> net array -> int -> net array
(** Pad with constant-0 nets up to the requested width. *)
