type net = int

type gate_op = Buf | Not | And | Or | Xor | Nand | Nor | Mux

type gate = { op : gate_op; inputs : net array; output : net }

type dff = { d : net; q : net; init : bool }

(* Internal representation: [d] may be pending until [dff_loop]'s connect
   function is called. *)
type internal_dff = { mutable d_opt : net option; iq : net; iinit : bool }

type t = {
  nl_name : string;
  mutable next_net : int;
  mutable rev_gates : gate list;
  mutable n_gates : int;
  mutable rev_dffs : internal_dff list;
  mutable rev_inputs : (string * net array) list;
  mutable rev_outputs : (string * net array) list;
  mutable const0 : net option;
  mutable const1 : net option;
}

let create nl_name =
  { nl_name;
    next_net = 0;
    rev_gates = [];
    n_gates = 0;
    rev_dffs = [];
    rev_inputs = [];
    rev_outputs = [];
    const0 = None;
    const1 = None }

let name t = t.nl_name

let fresh t =
  let n = t.next_net in
  t.next_net <- n + 1;
  n

let fresh_vector t w =
  if w <= 0 then invalid_arg "Netlist.fresh_vector: width must be positive";
  Array.init w (fun _ -> fresh t)

let const t b =
  match (b, t.const0, t.const1) with
  | false, Some n, _ | true, _, Some n -> n
  | false, None, _ ->
      let n = fresh t in
      t.const0 <- Some n;
      n
  | true, _, None ->
      let n = fresh t in
      t.const1 <- Some n;
      n

let arity = function Buf | Not -> 1 | Mux -> 3 | And | Or | Xor | Nand | Nor -> 2

let gate t op inputs =
  if Array.length inputs <> arity op then
    invalid_arg "Netlist.gate: wrong arity for gate";
  Array.iter
    (fun n -> if n < 0 || n >= t.next_net then invalid_arg "Netlist.gate: unknown input net")
    inputs;
  let output = fresh t in
  t.rev_gates <- { op; inputs = Array.copy inputs; output } :: t.rev_gates;
  t.n_gates <- t.n_gates + 1;
  output

let dff t ?(init = false) d =
  if d < 0 || d >= t.next_net then invalid_arg "Netlist.dff: unknown d net";
  let q = fresh t in
  t.rev_dffs <- { d_opt = Some d; iq = q; iinit = init } :: t.rev_dffs;
  q

let dff_loop t ?(init = false) () =
  let q = fresh t in
  let cell = { d_opt = None; iq = q; iinit = init } in
  t.rev_dffs <- cell :: t.rev_dffs;
  let connect d =
    if d < 0 || d >= t.next_net then invalid_arg "Netlist.dff_loop: unknown d net";
    match cell.d_opt with
    | Some _ -> invalid_arg "Netlist.dff_loop: d already connected"
    | None -> cell.d_opt <- Some d
  in
  (q, connect)

let dff_vector t ?init d =
  let module Bits = Psm_bits.Bits in
  (match init with
  | Some v when Bits.width v <> Array.length d ->
      invalid_arg "Netlist.dff_vector: init width mismatch"
  | _ -> ());
  Array.mapi
    (fun i di ->
      let init = match init with None -> false | Some v -> Bits.get v i in
      dff t ~init di)
    d

let dff_loop_vector t ?init width =
  let module Bits = Psm_bits.Bits in
  (match init with
  | Some v when Bits.width v <> width ->
      invalid_arg "Netlist.dff_loop_vector: init width mismatch"
  | _ -> ());
  let cells =
    Array.init width (fun i ->
        let init = match init with None -> false | Some v -> Bits.get v i in
        dff_loop t ~init ())
  in
  let qs = Array.map fst cells in
  let connect ds =
    if Array.length ds <> width then
      invalid_arg "Netlist.dff_loop_vector: connect width mismatch";
    Array.iteri (fun i d -> (snd cells.(i)) d) ds
  in
  (qs, connect)

let check_port_name t portname =
  let taken =
    List.exists (fun (n, _) -> n = portname) t.rev_inputs
    || List.exists (fun (n, _) -> n = portname) t.rev_outputs
  in
  if taken then invalid_arg ("Netlist: duplicate port name " ^ portname)

let input t portname w =
  check_port_name t portname;
  let nets = fresh_vector t w in
  t.rev_inputs <- (portname, nets) :: t.rev_inputs;
  nets

let output t portname nets =
  check_port_name t portname;
  if Array.length nets = 0 then invalid_arg "Netlist.output: empty port";
  Array.iter
    (fun n -> if n < 0 || n >= t.next_net then invalid_arg "Netlist.output: unknown net")
    nets;
  t.rev_outputs <- (portname, Array.copy nets) :: t.rev_outputs

let net_count t = t.next_net
let gate_count t = t.n_gates
let memory_elements t = List.length t.rev_dffs

let gates t = Array.of_list (List.rev t.rev_gates)

let freeze_dff (f : internal_dff) =
  match f.d_opt with
  | Some d -> { d; q = f.iq; init = f.iinit }
  | None -> invalid_arg "Netlist: dff_loop left unconnected"

(* rev_dffs is newest-first; rev_map restores creation order. *)
let dffs t = Array.of_list (List.rev_map freeze_dff t.rev_dffs)

let inputs t = List.rev t.rev_inputs
let outputs t = List.rev t.rev_outputs

let const_nets t =
  (match t.const0 with None -> [] | Some n -> [ (n, false) ])
  @ (match t.const1 with None -> [] | Some n -> [ (n, true) ])

let interface t =
  let ins =
    List.map (fun (n, nets) -> Psm_trace.Signal.input n (Array.length nets)) (inputs t)
  in
  let outs =
    List.map (fun (n, nets) -> Psm_trace.Signal.output n (Array.length nets)) (outputs t)
  in
  Psm_trace.Interface.create (ins @ outs)

let validate t =
  let drivers = Array.make t.next_net 0 in
  let drive what n =
    drivers.(n) <- drivers.(n) + 1;
    if drivers.(n) > 1 then
      invalid_arg (Printf.sprintf "Netlist.validate: net %d driven more than once (%s)" n what)
  in
  List.iter (fun (n, _) -> drive "const" n) (const_nets t);
  List.iter (fun g -> drive "gate" g.output) (List.rev t.rev_gates);
  List.iter (fun f -> drive "dff" (freeze_dff f).q) (List.rev t.rev_dffs);
  List.iter (fun (_, nets) -> Array.iter (drive "input") nets) (inputs t);
  Array.iteri
    (fun n c ->
      if c = 0 then invalid_arg (Printf.sprintf "Netlist.validate: net %d undriven" n))
    drivers
