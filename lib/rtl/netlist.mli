(** Structural gate-level netlists.

    This is the reproduction's stand-in for a synthesized design: a flat
    network of primitive gates and D flip-flops identified by integer nets.
    It supplies (i) genuine gate-level switching activity for the reference
    power model, (ii) the "memory elements" and "synthesis (elaboration)
    time" columns of Table I, and (iii) a structural-vs-behavioural ablation
    for MultSum.

    Netlists are built imperatively through this module and then frozen into
    a {!Sim.t} for simulation. *)

type net = int
(** Nets are dense non-negative integers, suitable as array indexes. *)

type gate_op =
  | Buf
  | Not
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Mux  (** [inputs = [| sel; a; b |]]: output is [a] when [sel] is 0, [b] when 1. *)

type gate = { op : gate_op; inputs : net array; output : net }

type dff = { d : net; q : net; init : bool }

type t

val create : string -> t
(** [create name] is an empty netlist. *)

val name : t -> string

(** {1 Building} *)

val const : t -> bool -> net
(** Constant driver (deduplicated: at most two constant nets exist). *)

val fresh : t -> net
(** A new undriven net. Every net must end up driven by exactly one of:
    a constant, a gate output, a DFF q, or an input port bit. *)

val fresh_vector : t -> int -> net array
(** [fresh_vector t w]: bit 0 of the array is the LSB. *)

val gate : t -> gate_op -> net array -> net
(** [gate t op inputs] creates a gate driving a fresh net, returned.
    Arities are checked: 1 for [Buf]/[Not], 3 for [Mux], 2 otherwise. *)

val dff : t -> ?init:bool -> net -> net
(** [dff t d] registers [d]; returns the [q] net. *)

val dff_vector : t -> ?init:Psm_bits.Bits.t -> net array -> net array

val dff_loop : t -> ?init:bool -> unit -> net * (net -> unit)
(** [dff_loop t ()] allocates a DFF whose [d] is connected later: returns
    the [q] net and a one-shot connect function. Enables feedback
    structures (enable recirculation, FSM state registers). {!validate}
    fails on a DFF left unconnected. *)

val dff_loop_vector : t -> ?init:Psm_bits.Bits.t -> int -> net array * (net array -> unit)

val input : t -> string -> int -> net array
(** Declare an input port of the given width; returns its nets (LSB
    first). Port names must be unique across inputs and outputs. *)

val output : t -> string -> net array -> unit
(** Declare an output port made of existing nets. *)

(** {1 Observation} *)

val net_count : t -> int
val gate_count : t -> int

val memory_elements : t -> int
(** Number of DFF bits — the Table I "memory elements" figure. *)

val gates : t -> gate array
val dffs : t -> dff array
val inputs : t -> (string * net array) list
val outputs : t -> (string * net array) list
val const_nets : t -> (net * bool) list

val interface : t -> Psm_trace.Interface.t
(** The PI/PO view of the netlist, in declaration order. *)

val validate : t -> unit
(** Checks that every net is driven exactly once and every gate/DFF input
    refers to an existing net. Raises [Invalid_argument] describing the
    first violation. *)
