open Netlist
module Bits = Psm_bits.Bits

let const_vector t v =
  Array.init (Bits.width v) (fun i -> const t (Bits.get v i))

let check_same op a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Comb." ^ op ^ ": width mismatch")

let not_v t a = Array.map (fun n -> gate t Not [| n |]) a

let map2 t op a b = Array.map2 (fun x y -> gate t op [| x; y |]) a b

let and_v t a b = check_same "and_v" a b; map2 t And a b
let or_v t a b = check_same "or_v" a b; map2 t Or a b
let xor_v t a b = check_same "xor_v" a b; map2 t Xor a b

let mux2 t ~sel a b =
  check_same "mux2" a b;
  Array.map2 (fun x y -> gate t Mux [| sel; x; y |]) a b

let full_adder t a b cin =
  let axb = gate t Xor [| a; b |] in
  let sum = gate t Xor [| axb; cin |] in
  let carry = gate t Or [| gate t And [| a; b |]; gate t And [| axb; cin |] |] in
  (sum, carry)

let adder t ?carry_in a b =
  check_same "adder" a b;
  let cin = match carry_in with Some c -> c | None -> const t false in
  let w = Array.length a in
  let sum = Array.make w (const t false) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder t a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let subtractor t a b =
  (* a − b = a + ~b + 1. *)
  adder t ~carry_in:(const t true) a (not_v t b)

let multiplier t a b =
  let wa = Array.length a and wb = Array.length b in
  if wa = 0 || wb = 0 then invalid_arg "Comb.multiplier: empty operand";
  let w = wa + wb in
  let zero = const t false in
  let pad v = Array.init w (fun i -> if i < Array.length v then v.(i) else zero) in
  (* Sum of shifted partial products, each gated by one multiplier bit. *)
  let acc = ref (Array.make w zero) in
  for j = 0 to wb - 1 do
    let partial =
      Array.init w (fun i ->
          if i >= j && i - j < wa then gate t And [| a.(i - j); b.(j) |] else zero)
    in
    let sum, _ = adder t !acc (pad partial) in
    acc := sum
  done;
  !acc

let eq_const t a v =
  if Array.length a <> Bits.width v then invalid_arg "Comb.eq_const: width mismatch";
  let lits =
    Array.mapi (fun i n -> if Bits.get v i then n else gate t Not [| n |]) a
  in
  Array.fold_left
    (fun acc n -> gate t And [| acc; n |])
    lits.(0)
    (Array.sub lits 1 (Array.length lits - 1))

let eq_v t a b =
  check_same "eq_v" a b;
  let bitwise = Array.map2 (fun x y -> gate t Not [| gate t Xor [| x; y |] |]) a b in
  Array.fold_left
    (fun acc n -> gate t And [| acc; n |])
    bitwise.(0)
    (Array.sub bitwise 1 (Array.length bitwise - 1))

let decoder t a =
  let w = Array.length a in
  if w > 16 then invalid_arg "Comb.decoder: address too wide";
  Array.init (1 lsl w) (fun v -> eq_const t a (Bits.of_int ~width:w v))

let mux_tree t ~sel ways =
  let w = Array.length sel in
  if Array.length ways <> 1 lsl w then
    invalid_arg "Comb.mux_tree: need exactly 2^|sel| ways";
  (* Pair adjacent ways so that selection level [l] consumes sel bit [l]
     (the LSB distinguishes even from odd indexes). *)
  let rec reduce level ways =
    match Array.length ways with
    | 1 -> ways.(0)
    | n ->
        let next =
          Array.init (n / 2) (fun i ->
              mux2 t ~sel:sel.(level) ways.(2 * i) ways.((2 * i) + 1))
        in
        reduce (level + 1) next
  in
  reduce 0 ways

let zero_extend t a w =
  if w < Array.length a then invalid_arg "Comb.zero_extend: narrower than input";
  let zero = const t false in
  Array.init w (fun i -> if i < Array.length a then a.(i) else zero)
