module Bits = Psm_bits.Bits

type t = {
  netlist : Netlist.t;
  gates : Netlist.gate array;
  level : int array; (* per gate *)
  max_level : int;
  consumers : int list array; (* net -> consuming gate indexes *)
  dffs : Netlist.dff array;
  input_ports : (string * Netlist.net array) list;
  output_ports : (string * Netlist.net array) list;
  values : bool array;
  state : bool array;
  buckets : int list array; (* level -> dirty gates *)
  in_bucket : bool array;
  mutable force_full : bool; (* evaluate everything on the next step *)
  mutable last_toggles : int;
  mutable total_toggles : int;
  mutable cycle : int;
  mutable gate_evaluations : int;
}

let build_levels netlist =
  let gates = Netlist.gates netlist in
  let n_nets = Netlist.net_count netlist in
  let driver = Array.make n_nets (-1) in
  Array.iteri (fun i (g : Netlist.gate) -> driver.(g.Netlist.output) <- i) gates;
  let level = Array.make (Array.length gates) (-1) in
  let net_level = Array.make n_nets 0 in
  (* Kahn order, assigning levels. *)
  let indegree = Array.make (Array.length gates) 0 in
  let consumers = Array.make n_nets [] in
  Array.iteri
    (fun i (g : Netlist.gate) ->
      Array.iter
        (fun input ->
          consumers.(input) <- i :: consumers.(input);
          if driver.(input) >= 0 then indegree.(i) <- indegree.(i) + 1)
        g.Netlist.inputs)
    gates;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    incr processed;
    let g = gates.(i) in
    let l =
      1 + Array.fold_left (fun acc input -> max acc net_level.(input)) 0 g.Netlist.inputs
    in
    level.(i) <- l;
    net_level.(g.Netlist.output) <- l;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      consumers.(g.Netlist.output)
  done;
  if !processed <> Array.length gates then
    failwith
      (Printf.sprintf "Event_sim.create: combinational cycle in netlist %s"
         (Netlist.name netlist));
  let max_level = Array.fold_left max 0 level in
  (gates, level, max_level, consumers)

let create netlist =
  Netlist.validate netlist;
  let gates, level, max_level, consumers = build_levels netlist in
  let t =
    { netlist;
      gates;
      level;
      max_level;
      consumers;
      dffs = Netlist.dffs netlist;
      input_ports = Netlist.inputs netlist;
      output_ports = Netlist.outputs netlist;
      values = Array.make (Netlist.net_count netlist) false;
      state = Array.make (Netlist.memory_elements netlist) false;
      buckets = Array.make (max_level + 1) [];
      in_bucket = Array.make (Array.length gates) false;
      force_full = true;
      last_toggles = 0;
      total_toggles = 0;
      cycle = 0;
      gate_evaluations = 0 }
  in
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- f.Netlist.init) t.dffs;
  List.iter (fun (n, b) -> t.values.(n) <- b) (Netlist.const_nets netlist);
  t

let reset t =
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- f.Netlist.init) t.dffs;
  Array.fill t.values 0 (Array.length t.values) false;
  List.iter (fun (n, b) -> t.values.(n) <- b) (Netlist.const_nets t.netlist);
  Array.fill t.in_bucket 0 (Array.length t.in_bucket) false;
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.force_full <- true;
  t.last_toggles <- 0;
  t.total_toggles <- 0;
  t.cycle <- 0;
  t.gate_evaluations <- 0

let eval_gate values (g : Netlist.gate) =
  let v i = values.(g.Netlist.inputs.(i)) in
  match g.Netlist.op with
  | Netlist.Buf -> v 0
  | Netlist.Not -> not (v 0)
  | Netlist.And -> v 0 && v 1
  | Netlist.Or -> v 0 || v 1
  | Netlist.Xor -> v 0 <> v 1
  | Netlist.Nand -> not (v 0 && v 1)
  | Netlist.Nor -> not (v 0 || v 1)
  | Netlist.Mux -> if v 0 then v 2 else v 1

let step t ins =
  let toggles = ref 0 in
  let enqueue i =
    if not t.in_bucket.(i) then begin
      t.in_bucket.(i) <- true;
      let l = t.level.(i) in
      t.buckets.(l) <- i :: t.buckets.(l)
    end
  in
  let set_net n v =
    if t.values.(n) <> v then begin
      t.values.(n) <- v;
      incr toggles;
      List.iter enqueue t.consumers.(n)
    end
  in
  (* Drive input ports. *)
  List.iter
    (fun (portname, nets) ->
      match List.assoc_opt portname ins with
      | None -> invalid_arg ("Event_sim.step: missing input " ^ portname)
      | Some v ->
          if Bits.width v <> Array.length nets then
            invalid_arg ("Event_sim.step: width mismatch on input " ^ portname);
          Array.iteri (fun i n -> set_net n (Bits.get v i)) nets)
    t.input_ports;
  if List.length ins <> List.length t.input_ports then
    invalid_arg "Event_sim.step: unexpected extra inputs";
  (* Present DFF state. *)
  Array.iteri (fun i (f : Netlist.dff) -> set_net f.Netlist.q t.state.(i)) t.dffs;
  if t.force_full then begin
    (* First cycle after reset: every gate settles, as the levelized
       simulator does. *)
    Array.iteri (fun i _ -> enqueue i) t.gates;
    t.force_full <- false
  end;
  (* Propagate by level. *)
  for l = 1 to t.max_level do
    let dirty = t.buckets.(l) in
    t.buckets.(l) <- [];
    List.iter
      (fun i ->
        t.in_bucket.(i) <- false;
        t.gate_evaluations <- t.gate_evaluations + 1;
        let g = t.gates.(i) in
        set_net g.Netlist.output (eval_gate t.values g))
      dirty
  done;
  t.last_toggles <- !toggles;
  t.total_toggles <- t.total_toggles + !toggles;
  t.cycle <- t.cycle + 1;
  let outs =
    List.map
      (fun (portname, nets) ->
        (portname, Bits.init ~width:(Array.length nets) (fun i -> t.values.(nets.(i)))))
      t.output_ports
  in
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- t.values.(f.Netlist.d)) t.dffs;
  outs

let last_toggles t = t.last_toggles
let total_toggles t = t.total_toggles
let cycle t = t.cycle
let gate_evaluations t = t.gate_evaluations
let interface t = Netlist.interface t.netlist
