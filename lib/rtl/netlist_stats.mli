(** Synthesis-report-style statistics over a {!Netlist}: gate histograms,
    combinational logic depth and fan-out — the numbers a DesignCompiler
    report would show next to Table I's area/timing columns. *)

type t = {
  gates_total : int;
  gates_by_op : (Netlist.gate_op * int) list;  (** Descending by count. *)
  dff_bits : int;
  nets : int;
  logic_depth : int;
      (** Longest combinational path, in gates, between a source (port,
          constant or DFF output) and a sink (DFF input or output port). *)
  max_fanout : int;
  average_fanout : float;
}

val analyze : Netlist.t -> t
(** Validates and levelizes; raises like {!Sim.create} on malformed
    netlists. *)

val pp : Format.formatter -> t -> unit

val op_name : Netlist.gate_op -> string
