(** Structural Verilog export of a {!Netlist}.

    The reproduction substitutes OCaml netlists for the paper's
    synthesized Verilog; this module closes the loop in the other
    direction, emitting a synthesizable structural Verilog-2001 module
    (continuous assignments for gates, one always-block per DFF with a
    synchronous init via initial block) so the generated designs can be
    fed to standard simulators and synthesis tools.

    Net [n] becomes wire [n_<n>]; ports keep their declared names. *)

val to_string : Netlist.t -> string
(** Raises [Invalid_argument] (via {!Netlist.validate}) on malformed
    netlists. *)

val write_file : string -> Netlist.t -> unit
