type config = { vdd : float; freq_hz : float; cap_per_toggle : float }

let default = { vdd = 1.0; freq_hz = 100e6; cap_per_toggle = 5e-15 }

let check cfg =
  if cfg.vdd <= 0. || cfg.freq_hz <= 0. || cfg.cap_per_toggle <= 0. then
    invalid_arg "Power_model: config parameters must be positive"

let energy_of_weighted_activity cfg alpha =
  check cfg;
  if alpha < 0. then invalid_arg "Power_model: negative activity";
  0.5 *. cfg.vdd *. cfg.vdd *. cfg.freq_hz *. cfg.cap_per_toggle *. alpha

let energy_of_activity cfg alpha =
  energy_of_weighted_activity cfg (float_of_int alpha)

let trace_of_activity cfg alphas =
  Psm_trace.Power_trace.of_array (Array.map (energy_of_activity cfg) alphas)

let trace_of_weighted_activity cfg alphas =
  Psm_trace.Power_trace.of_array (Array.map (energy_of_weighted_activity cfg) alphas)

let pp_config fmt cfg =
  Format.fprintf fmt "Vdd=%.2fV f=%.3gHz C/toggle=%.3gF" cfg.vdd cfg.freq_hz
    cfg.cap_per_toggle
