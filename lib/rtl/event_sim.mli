(** Event-driven netlist simulation.

    {!Sim} evaluates every gate every cycle (levelized full evaluation) —
    robust, and the right cost model for a PrimeTime-PX-grade reference.
    This simulator instead propagates only from *changed* nets through
    their fan-out cones in levelized order, the classic event-driven
    speed-up: cycles that touch little logic cost little.

    Functionally identical to {!Sim} — same two-valued semantics, same
    toggle counts — which the test suite checks by lockstep equivalence
    on random circuits and on the benchmark netlists. The bench compares
    their throughput on the RAM (where activity is sparse and
    event-driven wins big). *)

type t

val create : Netlist.t -> t
(** Validates and levelizes; raises like {!Sim.create}. *)

val reset : t -> unit

val step : t -> (string * Psm_bits.Bits.t) list -> (string * Psm_bits.Bits.t) list
(** Same contract as {!Sim.step}. *)

val last_toggles : t -> int
val total_toggles : t -> int
val cycle : t -> int

val gate_evaluations : t -> int
(** Total gate evaluations performed — the work metric the event queue
    saves on (compare with [cycles × gate count] for {!Sim}). *)

val interface : t -> Psm_trace.Interface.t
