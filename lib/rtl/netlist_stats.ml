type t = {
  gates_total : int;
  gates_by_op : (Netlist.gate_op * int) list;
  dff_bits : int;
  nets : int;
  logic_depth : int;
  max_fanout : int;
  average_fanout : float;
}

let op_name = function
  | Netlist.Buf -> "BUF"
  | Netlist.Not -> "NOT"
  | Netlist.And -> "AND"
  | Netlist.Or -> "OR"
  | Netlist.Xor -> "XOR"
  | Netlist.Nand -> "NAND"
  | Netlist.Nor -> "NOR"
  | Netlist.Mux -> "MUX"

let analyze nl =
  Netlist.validate nl;
  let gates = Netlist.gates nl in
  let n_nets = Netlist.net_count nl in
  (* Histogram. *)
  let histogram = Hashtbl.create 8 in
  Array.iter
    (fun (g : Netlist.gate) ->
      Hashtbl.replace histogram g.Netlist.op
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram g.Netlist.op)))
    gates;
  let gates_by_op =
    Hashtbl.fold (fun op c acc -> (op, c) :: acc) histogram []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  (* Depth: longest path through gates, computed over the topological
     order (a net driven by a gate has depth = 1 + max input depth). *)
  let driver = Array.make n_nets (-1) in
  Array.iteri (fun i (g : Netlist.gate) -> driver.(g.Netlist.output) <- i) gates;
  let depth_of_net = Array.make n_nets 0 in
  let order =
    (* Reuse Sim's levelization through a throwaway simulator; cheaper to
       recompute topological order locally via Kahn over gate deps. *)
    let indegree = Array.make (Array.length gates) 0 in
    let consumers = Array.make n_nets [] in
    Array.iteri
      (fun i (g : Netlist.gate) ->
        Array.iter
          (fun input ->
            if driver.(input) >= 0 then begin
              indegree.(i) <- indegree.(i) + 1;
              consumers.(input) <- i :: consumers.(input)
            end)
          g.Netlist.inputs)
      gates;
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
    let order = Queue.create () in
    while not (Queue.is_empty queue) do
      let i = Queue.take queue in
      Queue.add i order;
      List.iter
        (fun j ->
          indegree.(j) <- indegree.(j) - 1;
          if indegree.(j) = 0 then Queue.add j queue)
        consumers.(gates.(i).Netlist.output)
    done;
    if Queue.length order <> Array.length gates then
      failwith "Netlist_stats.analyze: combinational cycle";
    order
  in
  let logic_depth = ref 0 in
  Queue.iter
    (fun i ->
      let g = gates.(i) in
      let d =
        1
        + Array.fold_left
            (fun acc input -> max acc depth_of_net.(input))
            0 g.Netlist.inputs
      in
      depth_of_net.(g.Netlist.output) <- d;
      if d > !logic_depth then logic_depth := d)
    order;
  (* Fanout: how many gate/DFF inputs each net feeds. *)
  let fanout = Array.make n_nets 0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      Array.iter (fun input -> fanout.(input) <- fanout.(input) + 1) g.Netlist.inputs)
    gates;
  Array.iter
    (fun (f : Netlist.dff) -> fanout.(f.Netlist.d) <- fanout.(f.Netlist.d) + 1)
    (Netlist.dffs nl);
  let max_fanout = Array.fold_left max 0 fanout in
  let total_fanout = Array.fold_left ( + ) 0 fanout in
  { gates_total = Array.length gates;
    gates_by_op;
    dff_bits = Netlist.memory_elements nl;
    nets = n_nets;
    logic_depth = !logic_depth;
    max_fanout;
    average_fanout =
      (if n_nets = 0 then 0. else float_of_int total_fanout /. float_of_int n_nets) }

let pp fmt t =
  Format.fprintf fmt "@[<v>gates: %d  dffs: %d  nets: %d@," t.gates_total t.dff_bits t.nets;
  Format.fprintf fmt "logic depth: %d  max fanout: %d  avg fanout: %.2f@," t.logic_depth
    t.max_fanout t.average_fanout;
  List.iter
    (fun (op, c) -> Format.fprintf fmt "  %-4s %8d@," (op_name op) c)
    t.gates_by_op;
  Format.fprintf fmt "@]"
