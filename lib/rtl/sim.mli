(** Cycle-accurate two-valued simulation of a {!Netlist} with per-cycle
    toggle counting.

    The netlist is frozen and its combinational gates levelized once
    (topological order); each [step] then evaluates every gate in order,
    captures the outputs and counts how many nets changed value with respect
    to the previous settled cycle — the switching activity α(t) consumed by
    {!Power_model}. *)

type t

val create : Netlist.t -> t
(** Validates and levelizes. Raises [Invalid_argument] on an undriven or
    multiply-driven net, or [Failure] on a combinational cycle. *)

val reset : t -> unit
(** Restore every DFF to its init value and clear toggle statistics. *)

val step : t -> (string * Psm_bits.Bits.t) list -> (string * Psm_bits.Bits.t) list
(** [step t ins] applies one clock cycle: drive the input ports from [ins]
    (every input port must be given exactly once, with the right width),
    settle the combinational logic, return the output-port values, then
    latch the DFFs. *)

val last_toggles : t -> int
(** Nets that changed during the most recent [step] — the activity α(t). *)

val total_toggles : t -> int

val cycle : t -> int
(** Number of steps since the last [reset] (or creation). *)

val net_count : t -> int
val memory_elements : t -> int
val interface : t -> Psm_trace.Interface.t
