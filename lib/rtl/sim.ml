module Bits = Psm_bits.Bits

type t = {
  netlist : Netlist.t;
  order : Netlist.gate array; (* topological order *)
  dffs : Netlist.dff array;
  input_ports : (string * Netlist.net array) list;
  output_ports : (string * Netlist.net array) list;
  values : bool array;
  prev : bool array; (* settled values of the previous cycle *)
  state : bool array; (* q value per dff, latched at the end of step *)
  mutable last_toggles : int;
  mutable total_toggles : int;
  mutable cycle : int;
}

let levelize netlist =
  let gates = Netlist.gates netlist in
  let n_nets = Netlist.net_count netlist in
  (* consumers.(net) = indexes of gates reading it; indegree counts only
     inputs driven by other gates (DFF outputs, ports and constants are
     already available when a cycle starts). *)
  let driver = Array.make n_nets (-1) in
  Array.iteri (fun i (g : Netlist.gate) -> driver.(g.output) <- i) gates;
  let indegree = Array.make (Array.length gates) 0 in
  let consumers = Array.make n_nets [] in
  Array.iteri
    (fun i (g : Netlist.gate) ->
      Array.iter
        (fun input ->
          if driver.(input) >= 0 then begin
            indegree.(i) <- indegree.(i) + 1;
            consumers.(input) <- i :: consumers.(input)
          end)
        g.inputs)
    gates;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = Array.make (Array.length gates) gates.(0) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    order.(!filled) <- gates.(i);
    incr filled;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      consumers.(gates.(i).output)
  done;
  if !filled <> Array.length gates then
    failwith
      (Printf.sprintf "Sim.create: combinational cycle in netlist %s"
         (Netlist.name netlist));
  order

let create netlist =
  Netlist.validate netlist;
  let n_nets = Netlist.net_count netlist in
  let order = if Netlist.gate_count netlist = 0 then [||] else levelize netlist in
  let t =
    { netlist;
      order;
      dffs = Netlist.dffs netlist;
      input_ports = Netlist.inputs netlist;
      output_ports = Netlist.outputs netlist;
      values = Array.make n_nets false;
      prev = Array.make n_nets false;
      state = Array.make (Netlist.memory_elements netlist) false;
      last_toggles = 0;
      total_toggles = 0;
      cycle = 0 }
  in
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- f.init) t.dffs;
  List.iter (fun (n, b) -> t.values.(n) <- b; t.prev.(n) <- b) (Netlist.const_nets netlist);
  t

let reset t =
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- f.init) t.dffs;
  Array.fill t.values 0 (Array.length t.values) false;
  Array.fill t.prev 0 (Array.length t.prev) false;
  List.iter (fun (n, b) -> t.values.(n) <- b; t.prev.(n) <- b) (Netlist.const_nets t.netlist);
  t.last_toggles <- 0;
  t.total_toggles <- 0;
  t.cycle <- 0

let eval_gate values (g : Netlist.gate) =
  let v i = values.(g.inputs.(i)) in
  match g.op with
  | Netlist.Buf -> v 0
  | Netlist.Not -> not (v 0)
  | Netlist.And -> v 0 && v 1
  | Netlist.Or -> v 0 || v 1
  | Netlist.Xor -> v 0 <> v 1
  | Netlist.Nand -> not (v 0 && v 1)
  | Netlist.Nor -> not (v 0 || v 1)
  | Netlist.Mux -> if v 0 then v 2 else v 1

let step t ins =
  (* Drive input ports. *)
  let drive (portname, nets) =
    match List.assoc_opt portname ins with
    | None -> invalid_arg ("Sim.step: missing input " ^ portname)
    | Some v ->
        if Bits.width v <> Array.length nets then
          invalid_arg ("Sim.step: width mismatch on input " ^ portname);
        Array.iteri (fun i n -> t.values.(n) <- Bits.get v i) nets
  in
  List.iter drive t.input_ports;
  if List.length ins <> List.length t.input_ports then
    invalid_arg "Sim.step: unexpected extra inputs";
  (* Present DFF state. *)
  Array.iteri (fun i (f : Netlist.dff) -> t.values.(f.q) <- t.state.(i)) t.dffs;
  (* Settle combinational logic in topological order. *)
  Array.iter (fun g -> t.values.(g.Netlist.output) <- eval_gate t.values g) t.order;
  (* Switching activity vs the previous settled cycle. *)
  let toggles = ref 0 in
  for n = 0 to Array.length t.values - 1 do
    if t.values.(n) <> t.prev.(n) then incr toggles;
    t.prev.(n) <- t.values.(n)
  done;
  t.last_toggles <- !toggles;
  t.total_toggles <- t.total_toggles + !toggles;
  t.cycle <- t.cycle + 1;
  (* Sample outputs before the clock edge. *)
  let outs =
    List.map
      (fun (portname, nets) ->
        (portname, Bits.init ~width:(Array.length nets) (fun i -> t.values.(nets.(i)))))
      t.output_ports
  in
  (* Clock edge: latch next state. *)
  Array.iteri (fun i (f : Netlist.dff) -> t.state.(i) <- t.values.(f.d)) t.dffs;
  outs

let last_toggles t = t.last_toggles
let total_toggles t = t.total_toggles
let cycle t = t.cycle
let net_count t = Array.length t.values
let memory_elements t = Array.length t.state
let interface t = Netlist.interface t.netlist
