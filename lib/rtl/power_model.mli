(** The reference dynamic power model — the reproduction's stand-in for a
    gate-level power simulator such as Synopsys PrimeTime PX.

    Per the paper's Def. 2, the dynamic energy at instant tᵢ is

      δᵢ = ½ · V²dd · f · C · α(tᵢ)

    with C the total switched capacitance, Vdd the supply voltage, f the
    clock frequency and α(tᵢ) the switching activity. Here α(tᵢ) is a
    per-cycle toggle count supplied by either a structural {!Sim} (every
    net) or a behavioural IP model (every internal register bit), and C is
    expressed as an effective capacitance per toggled bit. *)

type config = {
  vdd : float;  (** Supply voltage in volts. *)
  freq_hz : float;  (** Clock frequency. *)
  cap_per_toggle : float;  (** Effective switched capacitance per bit toggle, farads. *)
}

val default : config
(** 1.0 V, 100 MHz, 5 fF per toggled bit — representative of a small
    65–90 nm block; only relative magnitudes matter to the methodology. *)

val energy_of_activity : config -> int -> float
(** [energy_of_activity cfg alpha] is δ for one cycle with [alpha] bit
    toggles, in joules. *)

val energy_of_weighted_activity : config -> float -> float
(** Same, for fractional activity (behavioural models may weight register
    classes by different capacitance factors). *)

val trace_of_activity : config -> int array -> Psm_trace.Power_trace.t
(** Map a per-cycle toggle series to a power trace. *)

val trace_of_weighted_activity : config -> float array -> Psm_trace.Power_trace.t

val pp_config : Format.formatter -> config -> unit
