(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic element of the reproduction — workload data, HMM
    tie-breaking — draws from an explicitly seeded [Prng.t], so all
    experiments are bit-for-bit repeatable. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bits : t -> width:int -> Psm_bits.Bits.t
(** A uniformly random bit vector. *)
