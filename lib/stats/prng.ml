(* splitmix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality for simulation workloads, trivially seedable and splittable. *)

type t = { mutable state : int64 }

let create ~seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create ~seed:(next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible because
     bound << 2^63 in every call site. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  if bound <= 0. then invalid_arg "Prng.float: bound must be positive";
  let mantissa = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992. *. bound

let bits t ~width =
  (* Build from 64-bit chunks rather than per-bit draws: one PRNG step per
     64 bits keeps wide-vector workload generation fast. *)
  if width <= 0 then invalid_arg "Prng.bits: width must be positive";
  let nchunks = ((width - 1) / 64) + 1 in
  let chunks = Array.init nchunks (fun _ -> next_int64 t) in
  Psm_bits.Bits.init ~width (fun i ->
      let c = chunks.(i / 64) in
      Int64.logand (Int64.shift_right_logical c (i mod 64)) 1L = 1L)
