(* Lanczos approximation, g = 7, n = 9 coefficients (Godfrey's values). *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let beta a b = exp (log_gamma a +. log_gamma b -. log_gamma (a +. b))

(* Continued fraction for the incomplete beta function (Lentz's method). *)
let betacf a b x =
  let max_iter = 300 in
  let eps = 3e-14 in
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    (* Even step. *)
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    (* Odd step. *)
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.) < eps then finished := true;
    incr m
  done;
  !h

let regularized_incomplete_beta ~a ~b ~x =
  if a <= 0. || b <= 0. then invalid_arg "Special.regularized_incomplete_beta: a, b > 0";
  if x < 0. || x > 1. then invalid_arg "Special.regularized_incomplete_beta: x in [0,1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1. -. x)))
    in
    (* Use the continued fraction directly where it converges fast, and the
       symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere. *)
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)
  end
