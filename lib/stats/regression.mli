(** Simple linear regression and correlation.

    Used by the data-dependent-state optimization (paper Sec. IV): the power
    of a high-σ state is re-expressed as an affine function of the Hamming
    distance between consecutive primary-input values, provided the Pearson
    correlation is strong enough. *)

type fit = {
  slope : float;
  intercept : float;
  r : float;  (** Pearson correlation coefficient. *)
  r2 : float;  (** Coefficient of determination. *)
  n : int;
}

val pearson : float array -> float array -> float
(** Pearson correlation of two equal-length arrays ([n >= 2]). Returns [0.]
    when either side has zero variance. *)

val fit : x:float array -> y:float array -> fit
(** Least-squares fit of [y = slope * x + intercept]. Requires equal lengths
    and [n >= 2]. A zero-variance [x] yields slope [0.] and intercept
    [mean y]. *)

val pearson_of_sums :
  n:int -> sx:float -> sy:float -> sxx:float -> syy:float -> sxy:float -> float
(** {!pearson} from externally accumulated sums ⟨n, Σx, Σy, Σx², Σy²,
    Σxy⟩ — the streaming form: no samples retained. Raises
    [Invalid_argument] when [n < 2]. *)

val fit_of_sums :
  n:int -> sx:float -> sy:float -> sxx:float -> syy:float -> sxy:float -> fit
(** {!fit} from accumulated sums; see {!pearson_of_sums}. *)

val predict : fit -> float -> float

val residual_stddev : fit -> x:float array -> y:float array -> float
(** Sample standard deviation of the residuals [y - predict fit x]. *)
