let check_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty array")

let sum a = Array.fold_left ( +. ) 0. a

let mean a =
  check_nonempty "mean" a;
  sum a /. float_of_int (Array.length a)

let check_slice name a ~start ~stop =
  if start < 0 || stop >= Array.length a || stop < start then
    invalid_arg
      (Printf.sprintf "Descriptive.%s: bad range [%d..%d] for length %d" name
         start stop (Array.length a))

let mean_slice a ~start ~stop =
  check_slice "mean_slice" a ~start ~stop;
  let acc = ref 0. in
  for i = start to stop do acc := !acc +. a.(i) done;
  !acc /. float_of_int (stop - start + 1)

let variance_slice a ~start ~stop =
  check_slice "variance_slice" a ~start ~stop;
  let n = stop - start + 1 in
  if n < 2 then 0.
  else begin
    let m = mean_slice a ~start ~stop in
    let acc = ref 0. in
    for i = start to stop do
      let d = a.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int (n - 1)
  end

let variance a =
  check_nonempty "variance" a;
  variance_slice a ~start:0 ~stop:(Array.length a - 1)

let stddev a = sqrt (variance a)

let stddev_slice a ~start ~stop = sqrt (variance_slice a ~start ~stop)

let min_max a =
  check_nonempty "min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (a.(0), a.(0)) a

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let delta = b.mean -. a.mean in
      let n = a.n + b.n in
      let nf = na +. nb in
      { n;
        mean = a.mean +. (delta *. nb /. nf);
        m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. nf) }
    end
end
