(** Special functions needed by the Student-t distribution.

    Implementations follow the classical Lanczos / continued-fraction
    formulations (Numerical Recipes style) and are accurate to well beyond
    the needs of a significance test (absolute error < 1e-10 over the ranges
    exercised here). *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0]. *)

val beta : float -> float -> float
(** [beta a b] is the Euler beta function B(a, b). *)

val regularized_incomplete_beta : a:float -> b:float -> x:float -> float
(** [regularized_incomplete_beta ~a ~b ~x] is I_x(a, b) for [0 <= x <= 1],
    [a > 0], [b > 0]. The Student-t CDF is expressed through this. *)
