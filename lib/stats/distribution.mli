(** Cumulative distribution functions used by the significance tests. *)

val student_t_cdf : df:float -> float -> float
(** [student_t_cdf ~df t] is P(T <= t) for a Student-t variable with [df]
    degrees of freedom ([df > 0]; fractional degrees of freedom, as produced
    by the Welch–Satterthwaite formula, are supported). *)

val student_t_sf_two_sided : df:float -> float -> float
(** [student_t_sf_two_sided ~df t] is the two-sided p-value
    P(|T| >= |t|). *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Standard parameters default to [mu = 0.], [sigma = 1.]. *)
