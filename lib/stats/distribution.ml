let student_t_cdf ~df t =
  if df <= 0. then invalid_arg "Distribution.student_t_cdf: df > 0 required";
  (* Standard identity: P(T <= t) in terms of the regularized incomplete
     beta function I_x(df/2, 1/2) with x = df / (df + t^2). *)
  let x = df /. (df +. (t *. t)) in
  let ib = Special.regularized_incomplete_beta ~a:(df /. 2.) ~b:0.5 ~x in
  if t >= 0. then 1. -. (0.5 *. ib) else 0.5 *. ib

let student_t_sf_two_sided ~df t =
  if df <= 0. then invalid_arg "Distribution.student_t_sf_two_sided: df > 0 required";
  let x = df /. (df +. (t *. t)) in
  Special.regularized_incomplete_beta ~a:(df /. 2.) ~b:0.5 ~x

(* Abramowitz & Stegun 7.1.26 rational approximation of erf, |err| < 1.5e-7,
   extended to full accuracy needs via the complementary symmetry. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf ?(mu = 0.) ?(sigma = 1.) x =
  if sigma <= 0. then invalid_arg "Distribution.normal_cdf: sigma > 0 required";
  0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))
