type result = {
  t_statistic : float;
  degrees_of_freedom : float;
  p_value : float;
}

let degenerate_equal mean1 mean2 =
  (* No variance on either side: the test reduces to exact comparison. *)
  if mean1 = mean2 then { t_statistic = 0.; degrees_of_freedom = 1.; p_value = 1. }
  else { t_statistic = infinity; degrees_of_freedom = 1.; p_value = 0. }

let welch ~mean1 ~stddev1 ~n1 ~mean2 ~stddev2 ~n2 =
  if n1 < 2 || n2 < 2 then invalid_arg "Ttest.welch: both samples need n >= 2";
  let v1 = stddev1 *. stddev1 and v2 = stddev2 *. stddev2 in
  let nf1 = float_of_int n1 and nf2 = float_of_int n2 in
  let se2 = (v1 /. nf1) +. (v2 /. nf2) in
  if se2 <= 0. then degenerate_equal mean1 mean2
  else begin
    let t = (mean1 -. mean2) /. sqrt se2 in
    let df =
      se2 *. se2
      /. ((v1 *. v1 /. (nf1 *. nf1 *. (nf1 -. 1.)))
         +. (v2 *. v2 /. (nf2 *. nf2 *. (nf2 -. 1.))))
    in
    { t_statistic = t;
      degrees_of_freedom = df;
      p_value = Distribution.student_t_sf_two_sided ~df t }
  end

let one_sample ~mean ~stddev ~n ~value =
  if n < 2 then invalid_arg "Ttest.one_sample: population needs n >= 2";
  let nf = float_of_int n in
  if stddev <= 0. then degenerate_equal mean value
  else begin
    let se = stddev *. sqrt (1. +. (1. /. nf)) in
    let t = (value -. mean) /. se in
    let df = nf -. 1. in
    { t_statistic = t;
      degrees_of_freedom = df;
      p_value = Distribution.student_t_sf_two_sided ~df t }
  end

let equal_means ?(alpha = 0.05) r =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Ttest.equal_means: alpha in (0,1)";
  r.p_value >= alpha
