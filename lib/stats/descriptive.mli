(** Descriptive statistics over float arrays and an online accumulator.

    Variances are the unbiased sample variances (divisor [n - 1]), matching
    the inputs expected by Welch's t-test in {!Ttest}. *)

val mean : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val mean_slice : float array -> start:int -> stop:int -> float
(** Mean of the inclusive index range [start..stop]. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val stddev : float array -> float

val stddev_slice : float array -> start:int -> stop:int -> float
(** Sample standard deviation of the inclusive range [start..stop]. *)

val sum : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

(** Welford's online algorithm: numerically stable single-pass mean and
    variance. Power attributes ⟨μ, σ, n⟩ of PSM states are accumulated with
    this as traces stream by. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased; [0.] when fewer than two samples. *)

  val stddev : t -> float

  val merge : t -> t -> t
  (** Combine two accumulators as if all their samples had been added to a
      single one (parallel-variance formula). Neither input is mutated. *)
end
