(** Significance tests used to decide mergeability of power states
    (paper Sec. IV-A).

    All tests work from summary statistics ⟨μ, σ, n⟩ — the power attributes
    stored on PSM states — so no raw samples need to be retained. *)

type result = {
  t_statistic : float;
  degrees_of_freedom : float;
  p_value : float;  (** Two-sided. *)
}

val welch : mean1:float -> stddev1:float -> n1:int -> mean2:float -> stddev2:float -> n2:int -> result
(** Welch's unequal-variances two-sample t-test (paper Case 2: two
    until-pattern states). Degrees of freedom follow the Welch–Satterthwaite
    approximation. Requires [n1 >= 2] and [n2 >= 2].

    When both sample variances are zero the test degenerates: the p-value is
    [1.] if the means are equal and [0.] otherwise. *)

val one_sample : mean:float -> stddev:float -> n:int -> value:float -> result
(** One-sample t-test of a single observation [value] against a population
    summarized by ⟨mean, stddev, n⟩ (paper Case 3: merging a next-pattern
    state, n = 1, into an until-pattern state). Requires [n >= 2].

    The statistic is the prediction-flavoured form
    t = (value − mean) / (s·√(1 + 1/n)), which asks whether the single
    sample is plausible as one more draw from the population. *)

val equal_means : ?alpha:float -> result -> bool
(** [equal_means ~alpha r] is [true] when the test fails to reject equality
    of means at significance level [alpha] (default [0.05]), i.e. when
    [r.p_value >= alpha]. This is the paper's "mergeable" verdict. *)
