type fit = { slope : float; intercept : float; r : float; r2 : float; n : int }

let check_pair name x y =
  let n = Array.length x in
  if n <> Array.length y then
    invalid_arg ("Regression." ^ name ^ ": arrays of different lengths");
  if n < 2 then invalid_arg ("Regression." ^ name ^ ": need at least 2 points");
  n

(* One pass computing the five sums needed by both Pearson and LSQ. *)
let sums x y =
  let n = Array.length x in
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    sx := !sx +. x.(i);
    sy := !sy +. y.(i);
    sxx := !sxx +. (x.(i) *. x.(i));
    syy := !syy +. (y.(i) *. y.(i));
    sxy := !sxy +. (x.(i) *. y.(i))
  done;
  (float_of_int n, !sx, !sy, !sxx, !syy, !sxy)

let pearson x y =
  let _ = check_pair "pearson" x y in
  let nf, sx, sy, sxx, syy, sxy = sums x y in
  let cov = (nf *. sxy) -. (sx *. sy) in
  let vx = (nf *. sxx) -. (sx *. sx) in
  let vy = (nf *. syy) -. (sy *. sy) in
  if vx <= 0. || vy <= 0. then 0. else cov /. sqrt (vx *. vy)

let fit ~x ~y =
  let n = check_pair "fit" x y in
  let nf, sx, sy, sxx, _, sxy = sums x y in
  let vx = (nf *. sxx) -. (sx *. sx) in
  if vx <= 0. then
    { slope = 0.; intercept = sy /. nf; r = 0.; r2 = 0.; n }
  else begin
    let slope = ((nf *. sxy) -. (sx *. sy)) /. vx in
    let intercept = (sy -. (slope *. sx)) /. nf in
    let r = pearson x y in
    { slope; intercept; r; r2 = r *. r; n }
  end

(* Sum-form entry points: the same estimators computed from externally
   accumulated ⟨n, Σx, Σy, Σx², Σy², Σxy⟩ — what a streaming consumer
   can maintain without retaining the samples. Formulas are shared with
   [pearson]/[fit] above, so both paths agree up to the float-summation
   order of the inputs. *)
let pearson_of_sums ~n ~sx ~sy ~sxx ~syy ~sxy =
  if n < 2 then invalid_arg "Regression.pearson_of_sums: need at least 2 points";
  let nf = float_of_int n in
  let cov = (nf *. sxy) -. (sx *. sy) in
  let vx = (nf *. sxx) -. (sx *. sx) in
  let vy = (nf *. syy) -. (sy *. sy) in
  if vx <= 0. || vy <= 0. then 0. else cov /. sqrt (vx *. vy)

let fit_of_sums ~n ~sx ~sy ~sxx ~syy ~sxy =
  if n < 2 then invalid_arg "Regression.fit_of_sums: need at least 2 points";
  let nf = float_of_int n in
  let vx = (nf *. sxx) -. (sx *. sx) in
  if vx <= 0. then { slope = 0.; intercept = sy /. nf; r = 0.; r2 = 0.; n }
  else begin
    let slope = ((nf *. sxy) -. (sx *. sy)) /. vx in
    let intercept = (sy -. (slope *. sx)) /. nf in
    let r = pearson_of_sums ~n ~sx ~sy ~sxx ~syy ~sxy in
    { slope; intercept; r; r2 = r *. r; n }
  end

let predict f x = (f.slope *. x) +. f.intercept

let residual_stddev f ~x ~y =
  let n = check_pair "residual_stddev" x y in
  let residuals = Array.init n (fun i -> y.(i) -. predict f x.(i)) in
  Descriptive.stddev residuals
