(** Forward filtering over the PSM HMM — the paper's "state-of-the-art
    procedure to predict the distribution of the next (hidden) states
    according to a sequence of observations" (Sec. V), in its textbook
    form: the normalized α recursion

      α₀(j) ∝ π(j)·b_j(o₀)
      αₜ(j) ∝ b_j(oₜ) · Σᵢ αₜ₋₁(i)·A'(i,j)

    over the interned propositions as observations, with the same
    dwell-corrected per-instant transition matrix A' as {!Offline} (the
    PSM's A counts state *changes*; per-instant dynamics need the
    self-dwell mass). Unknown observations are uninformative.

    {!Multi_sim} keeps its cheaper assertion-cursor machinery for live
    co-simulation; this module provides the probabilistic view — state
    posteriors, smoothed power expectation — for analysis. *)

type t

val create : ?kernel:Hmm.kernel_choice -> Hmm.t -> t
(** Builds the dwell-corrected A' and its CSR mirror once. [`Auto]
    (default) resolves through {!Kernel_cost.forward} on A's shape;
    both kernels are bit-identical.

    A [t] carries reusable scratch buffers: it is cheap to query
    repeatedly but must not be shared across domains or re-entered from
    a callback. *)

val kernel : t -> Hmm.kernel

val posteriors : t -> int option array -> float array array
(** [posteriors f observations] — one normalized belief vector (over state
    rows) per instant. *)

val map_states : t -> int option array -> int array
(** Per-instant marginal MAP state rows (argmax of each posterior). *)

val expected_power : t -> Psm_trace.Functional_trace.t -> float array
(** Power estimate as the posterior-weighted mean of the state outputs —
    a soft alternative to committing to one state per instant. *)

val log_likelihood : t -> int option array -> float
(** Log observation likelihood under the model (from the normalization
    constants) — a model-fit diagnostic: a trace from a different workload
    family scores visibly lower per instant. *)

(** Streaming per-session filtering — the serve hot path. A [state] is
    one session's belief; {!Stream.step} advances it by one observation
    with exactly {!forward_iter}'s arithmetic, so a session stepped
    observation by observation is bit-identical to the offline recursion
    on the whole sequence. {!Stream.step_many} advances many sessions
    sharing one {!t} in a single batched kernel sweep (CSR traversal
    amortized across sessions, fused monomorphic emission/normalize) —
    bit-identical to calling {!Stream.step} on each session, measurably
    faster per session·cycle.

    A [state] owns its buffers and holds no closures; {!Stream.export} /
    {!Stream.import} expose it as validated plain data for checkpointing
    (never [Marshal]-decode a [state] from an untrusted source). Stream
    operations treat the shared [t] as read-only — they consult the
    precomputed A' / emission tables but write only through the [state]s
    passed in — so disjoint [state] sets may be stepped concurrently from
    distinct domains even when they share one [t]; this is a contract the
    serve engine relies on to shard one model's sessions across the pool.
    Any future Stream change that writes to [t] (e.g. borrowing its
    scratch buffers, which belong to the batch-analysis entry points and
    keep their single-domain rule) breaks that contract. *)
module Stream : sig
  type state

  val make : t -> state
  (** A fresh session: no observation consumed yet. *)

  val copy : state -> state
  (** Deep copy (checkpointing; the original keeps streaming). *)

  type portable = { p_steps : int; p_log_lik : float; p_belief : float array }
  (** A [state] as plain validated data — the only way session
      checkpoints cross a trust boundary (the serve wire encodes this,
      never [Marshal] bytes). *)

  val export : state -> portable
  (** Copies; the original keeps streaming. *)

  val import : t -> portable -> (state, string) result
  (** Validates every field against [t]'s model (belief length, finite
      non-negative mass, step count) before building the session;
      importing an {!export} resumes bit-identically. *)

  val steps : state -> int
  (** Observations consumed so far. *)

  val log_likelihood : state -> float
  (** Cumulative log likelihood of the consumed observations. *)

  val belief : state -> float array
  (** The current normalized belief over state rows — borrowed, reused by
      the next step; copy what you keep. Meaningless before the first
      step. *)

  val step : t -> state -> int option -> unit
  (** Advance one observation ([None] = unclassified sample,
      uninformative). *)

  val step_many : t -> state array -> int option array -> unit
  (** [step_many t states obss] — one batched sweep: [states.(k)]
      consumes [obss.(k)]. Bit-identical to stepping each session alone.
      @raise Invalid_argument on length mismatch. *)

  val map_state : t -> state -> int
  (** Marginal MAP state row of the current belief (ties to the lowest
      row, as {!map_states}). *)

  val power : t -> state -> hamming:float -> float
  (** Posterior-weighted mean of the state outputs at this instant — the
      streaming counterpart of one {!expected_power} sample. *)

  val sweep :
    t ->
    state array ->
    int option array ->
    hds:float array ->
    powers:float array ->
    rows:int array ->
    unit
  (** One scored batched sweep: advance every session one observation
      ({!step_many}'s arithmetic exactly) and fill [powers.(k)] /
      [rows.(k)] with what {!power} [~hamming:hds.(k)] / {!map_state}
      would return afterwards — computed inside the normalize pass, same
      visit order and guards, so all three outputs are bit-identical to
      the unfused pipeline. This is the serve hot path.
      @raise Invalid_argument on length mismatch. *)
end
