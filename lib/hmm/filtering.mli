(** Forward filtering over the PSM HMM — the paper's "state-of-the-art
    procedure to predict the distribution of the next (hidden) states
    according to a sequence of observations" (Sec. V), in its textbook
    form: the normalized α recursion

      α₀(j) ∝ π(j)·b_j(o₀)
      αₜ(j) ∝ b_j(oₜ) · Σᵢ αₜ₋₁(i)·A'(i,j)

    over the interned propositions as observations, with the same
    dwell-corrected per-instant transition matrix A' as {!Offline} (the
    PSM's A counts state *changes*; per-instant dynamics need the
    self-dwell mass). Unknown observations are uninformative.

    {!Multi_sim} keeps its cheaper assertion-cursor machinery for live
    co-simulation; this module provides the probabilistic view — state
    posteriors, smoothed power expectation — for analysis. *)

type t

val create : ?kernel:Hmm.kernel_choice -> Hmm.t -> t
(** Builds the dwell-corrected A' and its CSR mirror once. [`Auto]
    (default) resolves through {!Kernel_cost.forward} on A's shape;
    both kernels are bit-identical.

    A [t] carries reusable scratch buffers: it is cheap to query
    repeatedly but must not be shared across domains or re-entered from
    a callback. *)

val kernel : t -> Hmm.kernel

val posteriors : t -> int option array -> float array array
(** [posteriors f observations] — one normalized belief vector (over state
    rows) per instant. *)

val map_states : t -> int option array -> int array
(** Per-instant marginal MAP state rows (argmax of each posterior). *)

val expected_power : t -> Psm_trace.Functional_trace.t -> float array
(** Power estimate as the posterior-weighted mean of the state outputs —
    a soft alternative to committing to one state per instant. *)

val log_likelihood : t -> int option array -> float
(** Log observation likelihood under the model (from the normalization
    constants) — a model-fit diagnostic: a trace from a different workload
    family scores visibly lower per instant. *)
