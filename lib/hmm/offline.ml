module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

(* Smoothing floor: keeps the lattice connected through observations or
   transitions absent from training, at negligible cost to likelihoods
   that training does support. *)
let floor_p = 1e-9

let viterbi hmm observations =
  let m = Hmm.state_count hmm in
  let n = Array.length observations in
  if n = 0 then [||]
  else begin
    let log_f v = log (Float.max v floor_p) in
    (* The PSM's A matrix is defined over state CHANGES (segment
       boundaries); a per-instant lattice additionally needs the
       probability of staying put. Expected dwell time per state comes
       from its power attributes: n instants over k training visits. *)
    let psm = Hmm.psm hmm in
    let dwell =
      Array.init m (fun row ->
          let s = Psm.state psm (Hmm.state_of_row hmm row) in
          let visits = max 1 (List.length s.Psm.attr.Psm_core.Power_attr.intervals) in
          Float.max 1.5 (float_of_int s.Psm.attr.Psm_core.Power_attr.n /. float_of_int visits))
    in
    let log_a =
      Array.init m (fun i ->
          let stay = 1. -. (1. /. dwell.(i)) in
          Array.init m (fun j ->
              if i = j then log_f (Float.max stay (Hmm.a hmm i j))
              else log_f ((1. -. stay) *. Hmm.a hmm i j)))
    in
    let emission row t =
      match observations.(t) with
      | None -> 0. (* uninformative *)
      | Some prop -> log_f (Hmm.b_obs hmm row prop)
    in
    let score = Array.make_matrix n m neg_infinity in
    let back = Array.make_matrix n m 0 in
    let pi = Hmm.pi hmm in
    for j = 0 to m - 1 do
      score.(0).(j) <- log_f pi.(j) +. emission j 0
    done;
    for t = 1 to n - 1 do
      for j = 0 to m - 1 do
        let best = ref neg_infinity and arg = ref 0 in
        for i = 0 to m - 1 do
          let candidate = score.(t - 1).(i) +. log_a.(i).(j) in
          if candidate > !best then begin
            best := candidate;
            arg := i
          end
        done;
        score.(t).(j) <- !best +. emission j t;
        back.(t).(j) <- !arg
      done
    done;
    let path = Array.make n 0 in
    let best = ref neg_infinity in
    for j = 0 to m - 1 do
      if score.(n - 1).(j) > !best then begin
        best := score.(n - 1).(j);
        path.(n - 1) <- j
      end
    done;
    for t = n - 2 downto 0 do
      path.(t) <- back.(t + 1).(path.(t + 1))
    done;
    path
  end

let classify_trace hmm trace =
  let table = Psm.prop_table (Hmm.psm hmm) in
  Array.init (Functional_trace.length trace) (fun time ->
      Table.classify table (Functional_trace.sample trace ~time))

let decode hmm trace =
  let rows = viterbi hmm (classify_trace hmm trace) in
  Array.map (Hmm.state_of_row hmm) rows

let estimate hmm trace =
  let psm = Hmm.psm hmm in
  let hd = Functional_trace.input_hamming_series trace in
  let ids = decode hmm trace in
  Array.mapi
    (fun t id -> Psm.eval_output (Psm.state psm id).Psm.output ~hamming:hd.(t))
    ids

let evaluate hmm trace ~reference =
  Accuracy.of_estimate ~reference ~estimate:(estimate hmm trace) ~wsp:0.
