module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

(* Smoothing floor: keeps the lattice connected through observations or
   transitions absent from training, at negligible cost to likelihoods
   that training does support. *)
let floor_p = 1e-9

(* The PSM's A matrix is defined over state CHANGES (segment
   boundaries); a per-instant lattice additionally needs the
   probability of staying put. Expected dwell time per state comes
   from its power attributes: n instants over k training visits. *)
let dwell_of hmm =
  let m = Hmm.state_count hmm in
  let psm = Hmm.psm hmm in
  Array.init m (fun row ->
      let s = Psm.state psm (Hmm.state_of_row hmm row) in
      let visits = max 1 (List.length s.Psm.attr.Psm_core.Power_attr.intervals) in
      Float.max 1.5
        (float_of_int s.Psm.attr.Psm_core.Power_attr.n /. float_of_int visits))

let log_f v = log (Float.max v floor_p)

let viterbi_dense hmm observations =
  let m = Hmm.state_count hmm in
  let n = Array.length observations in
  let dwell = dwell_of hmm in
  let log_a =
    Array.init m (fun i ->
        let stay = 1. -. (1. /. dwell.(i)) in
        Array.init m (fun j ->
            if i = j then log_f (Float.max stay (Hmm.a hmm i j))
            else log_f ((1. -. stay) *. Hmm.a hmm i j)))
  in
  let emission row t =
    match observations.(t) with
    | None -> 0. (* uninformative *)
    | Some prop -> log_f (Hmm.b_obs hmm row prop)
  in
  let score = Array.make_matrix n m neg_infinity in
  let back = Array.make_matrix n m 0 in
  let pi = Hmm.pi hmm in
  for j = 0 to m - 1 do
    score.(0).(j) <- log_f pi.(j) +. emission j 0
  done;
  for t = 1 to n - 1 do
    for j = 0 to m - 1 do
      let best = ref neg_infinity and arg = ref 0 in
      for i = 0 to m - 1 do
        let candidate = score.(t - 1).(i) +. log_a.(i).(j) in
        if candidate > !best then begin
          best := candidate;
          arg := i
        end
      done;
      score.(t).(j) <- !best +. emission j t;
      back.(t).(j) <- !arg
    done
  done;
  let path = Array.make n 0 in
  let best = ref neg_infinity in
  for j = 0 to m - 1 do
    if score.(n - 1).(j) > !best then begin
      best := score.(n - 1).(j);
      path.(n - 1) <- j
    end
  done;
  for t = n - 2 downto 0 do
    path.(t) <- back.(t + 1).(path.(t + 1))
  done;
  path

(* Sparse max-product. Key observation: every ABSENT edge (i, j) has the
   same log weight c = log floor_p (its dense entry is log_f 0.), so the
   best absent predecessor of ANY column is determined by the previous
   scores alone. The best absent predecessor of column j is the first row
   NOT stored in column j when rows are ranked by (score desc, index
   asc) — and since column j stores at most [max_in] rows, that first
   absent row always sits within the top [max_in + 1] of the ranking. So
   per step we select only those top-K rows (one O(m) pass with an O(K)
   bounded insertion — K is the max in-degree plus one, a small constant
   on chain-sparse models) instead of sorting all m rows; per column we
   scan the stored incoming edges (CSC, diagonal always present) and take
   the first unstored row of the top-K list, reproducing the dense scan's
   lowest-index-strict-max tie-breaking exactly. *)
let viterbi_sparse hmm observations =
  let m = Hmm.state_count hmm in
  let n = Array.length observations in
  let dwell = dwell_of hmm in
  let c = log_f 0. in
  let csr = Hmm.a_sparse hmm in
  (* CSC of the log lattice: incoming (i, log weight) per column j,
     ascending i, with the dwell diagonal inserted where A has none. *)
  let counts = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    let has_diag = ref false in
    Sparse.iter_row csr i (fun j _ ->
        if j = i then has_diag := true;
        counts.(j + 1) <- counts.(j + 1) + 1);
    if not !has_diag then counts.(i + 1) <- counts.(i + 1) + 1
  done;
  for j = 0 to m - 1 do
    counts.(j + 1) <- counts.(j + 1) + counts.(j)
  done;
  let col_ptr = counts in
  let in_rows = Array.make (max col_ptr.(m) 1) 0 in
  let in_vals = Array.make (max col_ptr.(m) 1) 0. in
  let cursor = Array.copy col_ptr in
  for i = 0 to m - 1 do
    let stay = 1. -. (1. /. dwell.(i)) in
    let emit j la =
      let slot = cursor.(j) in
      in_rows.(slot) <- i;
      in_vals.(slot) <- la;
      cursor.(j) <- slot + 1
    in
    let has_diag = ref false in
    Sparse.iter_row csr i (fun j v ->
        if j = i then begin
          has_diag := true;
          emit j (log_f (Float.max stay v))
        end
        else emit j (log_f ((1. -. stay) *. v)));
    if not !has_diag then emit i (log_f stay)
  done;
  let emission row t =
    match observations.(t) with
    | None -> 0.
    | Some prop -> log_f (Hmm.b_obs hmm row prop)
  in
  let back = Array.make_matrix n m 0 in
  let prev = Array.make m neg_infinity in
  let cur = Array.make m neg_infinity in
  let pi = Hmm.pi hmm in
  for j = 0 to m - 1 do
    prev.(j) <- log_f pi.(j) +. emission j 0
  done;
  (* Top-K selection bound: a column stores at most [max_in] incoming
     rows, so its best absent predecessor is always within the best
     [max_in + 1] rows of the (score desc, index asc) ranking. *)
  let max_in = ref 0 in
  for j = 0 to m - 1 do
    max_in := max !max_in (col_ptr.(j + 1) - col_ptr.(j))
  done;
  let cap = min m (!max_in + 1) in
  let top = Array.make cap 0 in
  let top_score = Array.make cap neg_infinity in
  let stored = Array.make m 0 in (* column stamp: marks stored rows *)
  let stamp = ref 0 in
  for t = 1 to n - 1 do
    (* The best [cap] rows by (prev score desc, index asc): one linear
       pass with an O(cap) bounded insertion — O(m) total on the
       chain-sparse matrices this kernel exists for, replacing the old
       full O(m log m) sort. Scanning i ascending makes equal scores
       land in ascending-index order without comparing indices. *)
    let len = ref 0 in
    for i = 0 to m - 1 do
      let s = Array.unsafe_get prev i in
      if !len < cap || s > top_score.(cap - 1) then begin
        let p = ref !len in
        while !p > 0 && s > top_score.(!p - 1) do
          decr p
        done;
        let last = min !len (cap - 1) in
        for k = last downto !p + 1 do
          top.(k) <- top.(k - 1);
          top_score.(k) <- top_score.(k - 1)
        done;
        if !p < cap then begin
          top.(!p) <- i;
          top_score.(!p) <- s;
          if !len < cap then incr len
        end
      end
    done;
    for j = 0 to m - 1 do
      let lo = col_ptr.(j) and hi = col_ptr.(j + 1) in
      (* Stored incoming edges, ascending i: dense tie-break is strict >. *)
      let best = ref neg_infinity and arg = ref 0 in
      for k = lo to hi - 1 do
        let candidate = prev.(in_rows.(k)) +. in_vals.(k) in
        if candidate > !best then begin
          best := candidate;
          arg := in_rows.(k)
        end
      done;
      (* Absent edges all weigh c: the first row of the top-K ranking
         not stored in this column is the dense scan's winner among
         them — highest floored score, lowest index among its ties. *)
      if hi - lo < m then begin
        incr stamp;
        for k = lo to hi - 1 do
          stored.(in_rows.(k)) <- !stamp
        done;
        let k = ref 0 in
        while !k < !len && stored.(top.(!k)) = !stamp do
          incr k
        done;
        if !k < !len then begin
          let i = top.(!k) in
          let best_a = top_score.(!k) +. c in
          if best_a > !best || (best_a = !best && i < !arg) then begin
            best := best_a;
            arg := i
          end
        end
      end;
      cur.(j) <- !best +. emission j t;
      back.(t).(j) <- !arg
    done;
    Array.blit cur 0 prev 0 m
  done;
  let path = Array.make n 0 in
  let best = ref neg_infinity in
  for j = 0 to m - 1 do
    if prev.(j) > !best then begin
      best := prev.(j);
      path.(n - 1) <- j
    end
  done;
  for t = n - 2 downto 0 do
    path.(t) <- back.(t + 1).(path.(t + 1))
  done;
  path

let viterbi ?kernel hmm observations =
  if Array.length observations = 0 then [||]
  else
    let kernel =
      match kernel with
      | Some k -> k
      | None -> (
          match Hmm.kernel_pref hmm with
          | (`Dense | `Sparse) as k -> k
          | `Auto ->
              let csr = Hmm.a_sparse hmm in
              Kernel_cost.viterbi ~steps:(Array.length observations)
                ~m:(Hmm.state_count hmm) ~nnz:(Sparse.nnz csr) ())
    in
    Kernel_cost.record "viterbi"
      (kernel :> [ `Dense | `Sparse | `Reference | `Indexed ]);
    match kernel with
    | `Dense -> viterbi_dense hmm observations
    | `Sparse -> viterbi_sparse hmm observations

let classify_trace hmm trace =
  let table = Psm.prop_table (Hmm.psm hmm) in
  Array.init (Functional_trace.length trace) (fun time ->
      Table.classify table (Functional_trace.sample trace ~time))

let decode hmm trace =
  let rows = viterbi hmm (classify_trace hmm trace) in
  Array.map (Hmm.state_of_row hmm) rows

let estimate hmm trace =
  let psm = Hmm.psm hmm in
  let hd = Functional_trace.input_hamming_series trace in
  let ids = decode hmm trace in
  Array.mapi
    (fun t id -> Psm.eval_output (Psm.state psm id).Psm.output ~hamming:hd.(t))
    ids

let evaluate hmm trace ~reference =
  Accuracy.of_estimate ~reference ~estimate:(estimate hmm trace) ~wsp:0.
