(** The Hidden Markov Model λ = ⟨A, B, π⟩ built from a PSM set
    (paper Sec. V).

    - Q (hidden states) are the PSM states;
    - E (observations) are the characterizing assertions — one observation
      symbol per distinct component assertion;
    - A[i][j] is derived from the number of transitions exiting state i to
      reach state j;
    - B[i][k] from the number of times assertion k was folded (by [join])
      into state i's characterizing set;
    - π[i] from the number of training traces whose PSM starts in state i.

    Rows are normalized to probability distributions; states with no
    outgoing transition self-loop. *)

type t

type kernel = [ `Dense | `Sparse ]

type kernel_choice = [ `Auto | `Dense | `Sparse ]
(** [`Auto] resolves per algorithm through the measured cost model
    ({!Kernel_cost}): forward filtering, Viterbi decoding and the
    simulator each pick dense or sparse/indexed from (m, nnz, steps)
    independently. Both kernels produce bit-identical results; [`Dense]
    is kept as the reference implementation. *)

val build :
  ?kernel:kernel_choice ->
  ?transition_counts:((int * int) * float) list ->
  ?emission_counts:((int * int) * float) list ->
  Psm_core.Psm.t ->
  t
(** [transition_counts] — training-trace frequencies of (src state id, dst
    state id) crossings, as projected from the raw chains through the
    simplify/join redirect maps. When supplied, A is estimated from these
    frequencies (the statistically meaningful reading of the paper's
    "number of transitions exiting from state i to reach state j");
    without it, A falls back to counting the distinct transitions of the
    PSM graph. Pairs naming unknown state ids are ignored; (i, i) entries
    are honoured only when the graph has a self-loop at i.

    [emission_counts] — training-trace frequencies of (state id,
    proposition id) observation pairs: how often each proposition was
    observed while each state was active. When supplied they define the
    full emission matrix used by offline (Viterbi) decoding; without them
    emission falls back to the entry-proposition projection. *)

val copy : t -> t
(** An independent transition state: {!ban}, {!reset_bans} and
    {!unsafe_set_a} on the copy leave the original untouched (and vice
    versa). The PSM, emission matrices and π are shared — the API never
    mutates them. Concurrent estimation sessions each simulate on their
    own copy so one session's resynchronization bans cannot leak into a
    sibling's A. *)

val psm : t -> Psm_core.Psm.t

val state_count : t -> int
val observation_count : t -> int

val row_of_state : t -> int -> int
(** Dense row index of a PSM state id. Raises [Not_found]. *)

val state_of_row : t -> int -> int

val a : t -> int -> int -> float
(** [a t i j] — transition probability between dense rows. *)

val a_row : t -> int -> float array
(** A copy of row [i] of A. *)

val a_sparse : t -> Sparse.t
(** The CSR mirror of A. Rebuilt on every mutation ({!ban},
    {!reset_bans}, {!unsafe_set_a}); do not hold across them. *)

val kernel : t -> kernel
(** The generic (predict-step) kernel resolution. Inference loops that
    know their own cost profile — {!Filtering}, {!Offline},
    {!Multi_sim} — re-resolve [`Auto] through {!Kernel_cost} instead. *)

val kernel_pref : t -> kernel_choice
(** The caller's preference as set by {!build} or {!set_kernel} —
    [`Auto] unless a kernel was forced. *)

val set_kernel : t -> kernel_choice -> unit
(** Override the kernel choice (benchmarks and equivalence tests). *)

val b_entry : t -> int -> int -> float
(** [b_entry t i prop] — probability mass of state row [i]'s
    characterizing assertions whose entry proposition is [prop]; the
    emission term used when filtering on an observed proposition. *)

val b_obs : t -> int -> int -> float
(** [b_obs t i prop] — P[observe prop | state i]: the full emission
    probability, from [emission_counts] when available (else the
    entry-proposition projection). Used by Viterbi decoding. *)

val pi : t -> float array
(** A copy of π. *)

val initial_belief : t -> float array
(** π as a belief vector (copy). *)

val predict : t -> float array -> float array
(** One filtering prediction step: belief × A, normalized. *)

val update_entry : t -> float array -> prop:int -> float array
(** Condition the belief on observing entry proposition [prop]
    (multiply by [b_entry], normalize). An all-zero result (observation
    impossible everywhere) is returned as all-zero rather than
    normalized. *)

val ban : t -> src_row:int -> dst_row:int -> unit
(** Set A[src][dst] to 0 and renormalize the row (the paper's "fixing to 0
    the probability of reaching again the same wrong state"). If the row
    becomes all-zero it is reset to uniform-over-others. *)

val reset_bans : t -> unit

val pp : Format.formatter -> t -> unit

(**/**)

val unsafe_set_a : t -> row:int -> col:int -> float -> unit
(** Fault injection for the analyzer tests: overwrite A[row][col] without
    renormalizing. Never use outside tests — [build] and [ban] are the
    only legitimate writers of A. *)
