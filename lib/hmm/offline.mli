(** Offline power estimation by Viterbi decoding.

    The paper's simulator is causal: filtering picks the next state from
    past observations only, because the PSM runs live alongside the IP.
    When the whole functional trace is already recorded (post-simulation
    power analysis — exactly how PrimeTime PX is used in practice), the
    maximum-likelihood *sequence* of hidden states can be decoded instead:
    classic Viterbi over λ = ⟨A, B, π⟩ with the interned propositions as
    observations. Instants whose proposition was never seen in training
    contribute an uninformative emission factor.

    This is an extension beyond the paper; the bench compares it against
    the online simulator. *)

val viterbi : ?kernel:Hmm.kernel -> Hmm.t -> int option array -> int array
(** [viterbi hmm observations] — the most likely state-row sequence for a
    per-instant (optional) proposition sequence. Log-domain max-product
    with a small smoothing floor so one unseen transition cannot zero an
    entire path.

    [kernel] defaults to the HMM's selected kernel. The sparse kernel
    iterates stored incoming edges per column and resolves the
    constant-floor absent edges from one per-step score sort; it
    reproduces the dense scan's lowest-index tie-breaking exactly, so
    both kernels return identical paths. *)

val decode : Hmm.t -> Psm_trace.Functional_trace.t -> int array
(** Classify every instant of the trace and Viterbi-decode; returns PSM
    state ids per instant. *)

val estimate : Hmm.t -> Psm_trace.Functional_trace.t -> float array
(** Per-instant power estimate from the decoded state sequence (regression
    outputs use the trace's input Hamming distances, as online). *)

val evaluate :
  Hmm.t ->
  Psm_trace.Functional_trace.t ->
  reference:Psm_trace.Power_trace.t ->
  Accuracy.report
