module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion
module Functional_trace = Psm_trace.Functional_trace
module Interface = Psm_trace.Interface
module Table = Psm_mining.Prop_trace.Table
module Bits = Psm_bits.Bits
module Runs = Psm_trace.Runs

let same_sample a b = Array.length a = Array.length b && Array.for_all2 Bits.equal a b

type config = {
  resync_enabled : bool;
  on_resync : (cycle:int -> state:int -> prop:int option -> unit) option;
}

let default = { resync_enabled = true; on_resync = None }

type result = {
  estimate : float array;
  state_trace : int array;
  wrong_instants : int;
  wsp : float;
  resync_events : int;
}

(* A cursor tracks progress through one alternative of a state's assertion:
   the array of primitive patterns of that alternative and the current
   position. Invariant: the entry instant of the pattern at [pos] has
   already been consumed (it coincides with the exit instant of the
   previous pattern, or with the state-entry instant for pos = 0). *)
type cursor = { prims : Assertion.t array; pos : int }

let primitives_of_alternative = function
  | (Assertion.Until _ | Assertion.Next _) as p -> [| p |]
  | Assertion.Seq parts -> Array.of_list parts
  | Assertion.Alt _ -> invalid_arg "Multi_sim: nested alternative"

let entry_of_alternative alternative =
  match Assertion.entry_props alternative with
  | [ p ] -> p
  | _ -> invalid_arg "Multi_sim: alternative without unique entry"

let start_cursors assertion o =
  Assertion.alternatives assertion
  |> List.filter (fun alternative -> entry_of_alternative alternative = o)
  |> List.map (fun alternative -> { prims = primitives_of_alternative alternative; pos = 0 })

type step_outcome = Stays of cursor | Completes

let step_cursor cursor o =
  let advance () =
    if cursor.pos + 1 < Array.length cursor.prims then
      Some (Stays { cursor with pos = cursor.pos + 1 })
    else Some Completes
  in
  match cursor.prims.(cursor.pos) with
  | Assertion.Until (p, q) ->
      if o = p then Some (Stays cursor) else if o = q then advance () else None
  | Assertion.Next (_, q) -> if o = q then advance () else None
  | Assertion.Seq _ | Assertion.Alt _ -> assert false

type mode =
  | Unstarted
  | Synced of { row : int; cursors : cursor list }
  | Desynced of { origin_row : int }

module Stepper = struct
  type t = {
    config : config;
    reference : bool; (* executable spec: pre-index scan paths disabled *)
    hmm : Hmm.t;
    psm : Psm.t;
    table : Table.t;
    input_indexes : int list;
    assertions : Assertion.t array; (* row -> state assertion *)
    outputs : Psm.output array; (* row -> state output *)
    succ_by_guard : (int * int, int list) Hashtbl.t;
    (* (src row, guard) -> dst rows, sorted uniq; every graph transition,
       regardless of the current (bannable) A mass *)
    rows_by_entry : (int, int list) Hashtbl.t;
    (* entry prop -> rows (ascending) with a matching alternative *)
    mutable prev_inputs : Bits.t array option;
    (* Classification memo owned by [step]: the previous sample (a
       private copy) and its classification. A repeated sample has
       Hamming distance 0 and the same truth row, so the classify and
       the copy collapse to one array comparison. Pure cache — never
       exported in portable checkpoints. *)
    mutable memo : (Bits.t array * int option) option;
    mutable mode : mode;
    mutable entered_via : (int * int) option;
    mutable progressed : bool; (* the current state matched at least one
                                  instant beyond its entry *)
    mutable bans_active : bool;
    mutable ban_log : (int * int) list;
    (* (src row, dst row) of every [Hmm.ban] since the last reset, newest
       first — replayed in order by [restore], which reproduces the
       banned A float-for-float (each ban renormalizes its row, so order
       matters). *)
    mutable cycles : int;
    mutable wrong_instants : int;
    mutable resync_events : int;
  }

  let create ?(config = default) ?steps ?reference hmm =
    let reference =
      match reference with
      | Some r -> r
      | None -> (
          (* Cost-based like the offline kernels: the indexed path wins
             whenever scanning successor lists beats an O(m²) predict per
             step, which is every mined chain; [`Reference] remains the
             executable spec for near-dense tiny machines. *)
          let nnz = Sparse.nnz (Hmm.a_sparse hmm) in
          match Kernel_cost.multi_sim ?steps ~m:(Hmm.state_count hmm) ~nnz () with
          | `Reference -> true
          | `Indexed -> false)
    in
    Kernel_cost.record "multi_sim" (if reference then `Reference else `Indexed);
    Hmm.reset_bans hmm;
    let psm = Hmm.psm hmm in
    let table = Psm.prop_table psm in
    let iface = Psm_mining.Vocabulary.interface (Table.vocabulary table) in
    let m = Hmm.state_count hmm in
    let state_of_row row = Psm.state psm (Hmm.state_of_row hmm row) in
    let assertions = Array.init m (fun row -> (state_of_row row).Psm.assertion) in
    let outputs = Array.init m (fun row -> (state_of_row row).Psm.output) in
    let succ_by_guard = Hashtbl.create 64 in
    List.iter
      (fun (tr : Psm.transition) ->
        let key = (Hmm.row_of_state hmm tr.Psm.src, tr.Psm.guard) in
        let dst = Hmm.row_of_state hmm tr.Psm.dst in
        let prev = Option.value ~default:[] (Hashtbl.find_opt succ_by_guard key) in
        Hashtbl.replace succ_by_guard key (dst :: prev))
      (Psm.transitions psm);
    Hashtbl.filter_map_inplace
      (fun _ dsts -> Some (List.sort_uniq Int.compare dsts))
      succ_by_guard;
    let rows_by_entry = Hashtbl.create 64 in
    for row = m - 1 downto 0 do
      (* downto: each bucket ends up in ascending row order *)
      Assertion.alternatives assertions.(row)
      |> List.map entry_of_alternative
      |> List.sort_uniq Int.compare
      |> List.iter (fun o ->
             let prev = Option.value ~default:[] (Hashtbl.find_opt rows_by_entry o) in
             Hashtbl.replace rows_by_entry o (row :: prev))
    done;
    { config;
      reference;
      hmm;
      psm;
      table;
      input_indexes = List.map fst (Interface.inputs iface);
      assertions;
      outputs;
      succ_by_guard;
      rows_by_entry;
      prev_inputs = None;
      memo = None;
      mode = Unstarted;
      entered_via = None;
      progressed = false;
      bans_active = false;
      ban_log = [];
      cycles = 0;
      wrong_instants = 0;
      resync_events = 0 }

  let assertion_of_row t row = t.assertions.(row)
  let output_of_row t row = t.outputs.(row)

  (* Choose among candidate rows by filtered belief from [origin]. The
     indexed path exploits the one-hot belief: predict's output before
     normalization is exactly row [origin] of A, so predicted.(r) is
     A(origin, r) over the full ascending row sum — bit-identical to the
     reference's predict-and-normalize, without the O(m²) product or the
     two belief allocations. *)
  let filtered_choice t ~origin_row ~prop ~candidates =
    match candidates with
    | [] -> None
    | [ single ] -> Some single
    | _ ->
        let score =
          if t.reference then begin
            let belief = Array.make (Hmm.state_count t.hmm) 0. in
            belief.(origin_row) <- 1.;
            let predicted = Hmm.predict t.hmm belief in
            fun r -> predicted.(r) *. Hmm.b_entry t.hmm r prop
          end
          else begin
            let m = Hmm.state_count t.hmm in
            let total = ref 0. in
            for j = 0 to m - 1 do
              total := !total +. Hmm.a t.hmm origin_row j
            done;
            let total = !total in
            fun r ->
              let p =
                if total > 0. then Hmm.a t.hmm origin_row r /. total else 0.
              in
              p *. Hmm.b_entry t.hmm r prop
          end
        in
        let scored = List.map (fun r -> (r, score r)) candidates in
        let best =
          List.fold_left
            (fun acc (r, score) ->
              match acc with
              | Some (_, best_score) when best_score >= score -> acc
              | _ -> Some (r, score))
            None scored
        in
        Option.map fst best

  (* Graph successors of [row] through guard [o] (any A mass), ascending. *)
  let successor_rows t ~row ~o =
    if t.reference then
      List.filter_map
        (fun (tr : Psm.transition) ->
          if Hmm.row_of_state t.hmm tr.Psm.src = row && tr.Psm.guard = o then
            Some (Hmm.row_of_state t.hmm tr.Psm.dst)
          else None)
        (Psm.transitions t.psm)
      |> List.sort_uniq Int.compare
    else Option.value ~default:[] (Hashtbl.find_opt t.succ_by_guard (row, o))

  (* Rows with an alternative entered by [o], ascending. *)
  let entry_rows t ~o =
    if t.reference then
      List.init (Hmm.state_count t.hmm) Fun.id
      |> List.filter (fun r -> start_cursors (assertion_of_row t r) o <> [])
    else Option.value ~default:[] (Hashtbl.find_opt t.rows_by_entry o)

  (* Enter some state reachable from [origin_row] (or, failing that,
     anywhere) on entry proposition [o]. *)
  let try_jump t ~origin_row ~o =
    let reachable =
      successor_rows t ~row:origin_row ~o
      |> List.filter (fun dst -> Hmm.a t.hmm origin_row dst > 0.)
      |> List.filter (fun r -> start_cursors (assertion_of_row t r) o <> [])
    in
    let candidates =
      if reachable <> [] then reachable
      else entry_rows t ~o |> List.filter (fun r -> Hmm.b_entry t.hmm r o > 0.)
    in
    match filtered_choice t ~origin_row ~prop:o ~candidates with
    | Some r -> Some (Synced { row = r; cursors = start_cursors (assertion_of_row t r) o })
    | None -> None

  (* First instant: the π-weighted choice among states recognizing o. *)
  let initialize t o =
    let pi = Hmm.initial_belief t.hmm in
    let candidates = entry_rows t ~o in
    let scored =
      List.map (fun r -> (r, pi.(r) +. (1e-9 *. Hmm.b_entry t.hmm r o))) candidates
    in
    match
      List.fold_left
        (fun acc (r, score) ->
          match acc with
          | Some (_, best) when best >= score -> acc
          | _ -> Some (r, score))
        None scored
    with
    | Some (r, _) -> Synced { row = r; cursors = start_cursors (assertion_of_row t r) o }
    | None -> Desynced { origin_row = 0 }

  let notify t ~row ~o_opt =
    match t.config.on_resync with
    | Some hook -> hook ~cycle:t.cycles ~state:(Hmm.state_of_row t.hmm row) ~prop:o_opt
    | None -> ()

  (* Exit [row] through a transition guarded by o; ban wrong predictions
     (chosen states that cannot recognize the entry) and re-predict.
     [`No_edge] reports that the graph has no transition guarded by [o]
     out of [row] at all — the completed alternative was a chain tail, so
     the machine should remain in place (the paper: the simulation
     "proceeds by remaining in the last valid state"). *)
  let take_transition t ~row ~o =
    let successors = successor_rows t ~row ~o in
    if successors = [] then `No_edge
    else begin
      let rec attempt banned =
        let candidates =
          List.filter
            (fun dst ->
              Hmm.a t.hmm row dst > 0. && not (List.mem dst banned))
            successors
        in
        match filtered_choice t ~origin_row:row ~prop:o ~candidates with
        | None -> `All_failed
        | Some dst -> (
            match start_cursors (assertion_of_row t dst) o with
            | [] ->
                Hmm.ban t.hmm ~src_row:row ~dst_row:dst;
                t.ban_log <- (row, dst) :: t.ban_log;
                t.bans_active <- true;
                t.resync_events <- t.resync_events + 1;
                notify t ~row:dst ~o_opt:(Some o);
                attempt (dst :: banned)
            | cursors ->
                t.entered_via <- Some (row, dst);
                `Chosen (Synced { row = dst; cursors }))
      in
      attempt []
    end

  (* Unknown behaviour in state [row]: revert to the last valid state, ban
     the edge that brought us here, attempt a filtered jump. *)
  let handle_failure t ~row ~o_opt =
    Psm_obs.incr "hmm.resync_events";
    t.resync_events <- t.resync_events + 1;
    notify t ~row ~o_opt;
    if not t.config.resync_enabled then Desynced { origin_row = row }
    else begin
      (* Revert-and-ban only applies to a freshly predicted state that
         failed before matching anything (the paper's wrong prediction);
         a state that ran fine for a while and then saw an unknown
         behaviour is not a wrong prediction, and banning its entry edge
         would poison A for the rest of the simulation. *)
      let origin_row =
        match t.entered_via with
        | Some (src, dst) when dst = row && not t.progressed ->
            Hmm.ban t.hmm ~src_row:src ~dst_row:dst;
            t.ban_log <- (src, dst) :: t.ban_log;
            t.bans_active <- true;
            t.entered_via <- None;
            src
        | Some _ | None -> row
      in
      match o_opt with
      | Some o -> (
          match try_jump t ~origin_row ~o with
          | Some next -> next
          | None -> Desynced { origin_row })
      | None -> Desynced { origin_row }
    end

  let input_hamming t sample =
    let hd =
      match t.prev_inputs with
      | None -> 0
      | Some prev ->
          List.fold_left
            (fun acc i -> acc + Bits.hamming_distance sample.(i) prev.(i))
            0 t.input_indexes
    in
    t.prev_inputs <- Some (Array.copy sample);
    float_of_int hd

  let classify t sample = Table.classify t.table sample

  (* The cursor/transition state machine after sample classification —
     the entry point for proposition-level streaming (serve sessions
     whose client sends classified observations plus input Hamming
     distances instead of raw samples). [step] is this preceded by
     [input_hamming] and [classify]; feeding the same trace through
     either path is bit-identical. *)
  let step_classified t ~hamming:hd o_opt =
    let initialized_now =
      match (t.mode, o_opt) with
      | Unstarted, Some o ->
          t.mode <- initialize t o;
          true
      | Unstarted, None ->
          t.mode <- Desynced { origin_row = 0 };
          true
      | (Synced _ | Desynced _), _ -> false
    in
    let next_mode =
      match (t.mode, o_opt) with
      | Unstarted, _ -> assert false
      | Synced _, _ when initialized_now ->
          (* The initial observation was consumed as the state's entry;
             stepping the cursors again would read it twice. *)
          t.mode
      | Synced { row; cursors }, Some o -> (
          let stepped = List.filter_map (fun c -> step_cursor c o) cursors in
          let stays =
            List.filter_map (function Stays c -> Some c | Completes -> None) stepped
          in
          let completes =
            List.exists (function Completes -> true | Stays _ -> false) stepped
          in
          (* Exits take precedence: a completed alternative whose guard
             leads somewhere wins over alternatives that merely survive
             (simplify can produce cascades spanning several behaviours,
             and following them past a legitimate exit strands the
             machine when the cascade eventually diverges). When no exit
             is possible, surviving cursors keep the machine in place. *)
          if completes then begin
            match take_transition t ~row ~o with
            | `Chosen next ->
                if t.bans_active then begin
                  (* Normal operation resumed: the bans did their job of
                     steering the re-prediction; keeping them would
                     permanently distort A. *)
                  Hmm.reset_bans t.hmm;
                  t.bans_active <- false;
                  t.ban_log <- []
                end;
                t.progressed <- false;
                next
            | `No_edge ->
                (* Chain-tail completion: absorb, as the training fold
                   attributed the trailing instants to this state. *)
                if stays <> [] then begin
                  t.progressed <- true;
                  Synced { row; cursors = stays }
                end
                else Synced { row; cursors }
            | `All_failed ->
                if stays <> [] then begin
                  t.progressed <- true;
                  Synced { row; cursors = stays }
                end
                else handle_failure t ~row ~o_opt
          end
          else if stays <> [] then begin
            t.progressed <- true;
            Synced { row; cursors = stays }
          end
          else handle_failure t ~row ~o_opt)
      | Synced { row; _ }, None -> handle_failure t ~row ~o_opt
      | Desynced { origin_row }, Some o ->
          if t.config.resync_enabled then begin
            match try_jump t ~origin_row ~o with
            | Some next ->
                t.progressed <- false;
                t.entered_via <- None;
                next
            | None -> Desynced { origin_row }
          end
          else begin
            (* Sec. III-C behaviour: only the origin state itself can
               recapture the trace. *)
            match start_cursors (assertion_of_row t origin_row) o with
            | [] -> Desynced { origin_row }
            | cursors -> Synced { row = origin_row; cursors }
          end
      | Desynced { origin_row }, None -> Desynced { origin_row }
    in
    t.mode <- next_mode;
    t.cycles <- t.cycles + 1;
    match next_mode with
    | Synced { row; _ } ->
        (Psm.eval_output (output_of_row t row) ~hamming:hd, Hmm.state_of_row t.hmm row)
    | Desynced { origin_row } ->
        t.wrong_instants <- t.wrong_instants + 1;
        (Psm.eval_output (output_of_row t origin_row) ~hamming:hd, -1)
    | Unstarted -> assert false

  let step t sample =
    match t.memo with
    | Some (prev, obs) when Runs.use () && same_sample prev sample ->
        (* Identical sample: inputs unchanged (Hamming 0) and the same
           truth row classifies identically; [prev_inputs] already holds
           an equal array, so the reference updates are all no-ops. *)
        step_classified t ~hamming:0. obs
    | _ ->
        let hd = input_hamming t sample in
        let obs = classify t sample in
        (* [input_hamming] just stored a private copy of [sample]. *)
        (match t.prev_inputs with
        | Some copy -> t.memo <- Some (copy, obs)
        | None -> t.memo <- None);
        step_classified t ~hamming:hd obs

  let cycles t = t.cycles
  let wrong_instants t = t.wrong_instants
  let resync_events t = t.resync_events

  (* ---------- portable checkpoints ----------

     The stepper's resumable state as plain validated data. No internal
     structure crosses the boundary: cursors travel as (alternative
     index, position) into the state's assertion and are rebuilt from
     the target model on import, samples travel as binary strings. The
     serve wire encodes this — never [Marshal] bytes, which a hostile
     client could craft to corrupt the daemon. *)

  type portable_mode =
    [ `Unstarted | `Synced of int * (int * int) list | `Desynced of int ]

  type portable = {
    p_prev_inputs : string array option;
    p_mode : portable_mode;
    p_entered_via : (int * int) option;
    p_progressed : bool;
    p_cycles : int;
    p_wrong_instants : int;
    p_resync_events : int;
    p_bans : (int * int) list; (* oldest first *)
  }

  (* The first alternative whose primitive sequence equals the cursor's:
     live cursors are built from the row's own alternatives, so this
     always succeeds, and equal-prims alternatives are behaviourally
     interchangeable ([step_cursor] reads only [prims]). *)
  let alt_index_of_cursor t ~row cursor =
    let rec find i = function
      | [] -> invalid_arg "Multi_sim: cursor matches no alternative"
      | alt :: rest ->
          if primitives_of_alternative alt = cursor.prims then i
          else find (i + 1) rest
    in
    find 0 (Assertion.alternatives t.assertions.(row))

  let export t =
    { p_prev_inputs =
        Option.map (Array.map Bits.to_binary_string) t.prev_inputs;
      p_mode =
        (match t.mode with
        | Unstarted -> `Unstarted
        | Desynced { origin_row } -> `Desynced origin_row
        | Synced { row; cursors } ->
            `Synced
              ( row,
                List.map
                  (fun c -> (alt_index_of_cursor t ~row c, c.pos))
                  cursors ));
      p_entered_via = t.entered_via;
      p_progressed = t.progressed;
      p_cycles = t.cycles;
      p_wrong_instants = t.wrong_instants;
      p_resync_events = t.resync_events;
      p_bans = List.rev t.ban_log }

  let decode_prev_inputs t = function
    | None -> Ok None
    | Some strs ->
        let iface =
          Psm_mining.Vocabulary.interface (Table.vocabulary t.table)
        in
        let arity = Interface.arity iface in
        if Array.length strs <> arity then
          Error
            (Printf.sprintf "previous sample has %d signals, interface has %d"
               (Array.length strs) arity)
        else begin
          try
            Ok
              (Some
                 (Array.mapi
                    (fun i s ->
                      let b = Bits.of_binary_string s in
                      let w = (Interface.signal iface i).Psm_trace.Signal.width in
                      if Bits.width b <> w then
                        failwith
                          (Printf.sprintf
                             "previous sample signal %d is %d bits wide, \
                              expected %d"
                             i (Bits.width b) w);
                      b)
                    strs))
          with
          | Failure msg -> Error msg
          | Invalid_argument _ -> Error "previous sample is not a bit string"
        end

  let import ?config ?steps ?reference hmm p =
    let t = create ?config ?steps ?reference hmm in
    let m = Hmm.state_count hmm in
    let row_ok r = r >= 0 && r < m in
    if p.p_cycles < 0 || p.p_resync_events < 0 then
      Error "negative counter"
    else if p.p_wrong_instants < 0 || p.p_wrong_instants > p.p_cycles then
      Error "wrong_instants outside [0, cycles]"
    else if List.compare_length_with p.p_bans (m * m) > 0 then
      Error "ban log longer than A has entries"
    else if
      List.exists (fun (src, dst) -> not (row_ok src && row_ok dst)) p.p_bans
    then Error "ban row out of range"
    else if
      match p.p_entered_via with
      | Some (src, dst) -> not (row_ok src && row_ok dst)
      | None -> false
    then Error "entered_via row out of range"
    else
      let mode =
        match p.p_mode with
        | `Unstarted -> Ok Unstarted
        | `Desynced origin_row ->
            if row_ok origin_row then Ok (Desynced { origin_row })
            else Error "desynced origin row out of range"
        | `Synced (row, pcursors) ->
            if not (row_ok row) then Error "synced row out of range"
            else if pcursors = [] then Error "synced state with no cursors"
            else begin
              let alternatives =
                Array.of_list (Assertion.alternatives t.assertions.(row))
              in
              if
                List.compare_length_with pcursors (Array.length alternatives)
                > 0
              then Error "more cursors than the state has alternatives"
              else begin
                try
                  Ok
                    (Synced
                       { row;
                         cursors =
                           List.map
                             (fun (ai, pos) ->
                               if ai < 0 || ai >= Array.length alternatives
                               then failwith "cursor alternative out of range";
                               let prims =
                                 primitives_of_alternative alternatives.(ai)
                               in
                               if pos < 0 || pos >= Array.length prims then
                                 failwith "cursor position out of range";
                               { prims; pos })
                             pcursors })
                with Failure msg -> Error msg
              end
            end
      in
      match mode with
      | Error _ as e -> e
      | Ok mode -> (
          match decode_prev_inputs t p.p_prev_inputs with
          | Error _ as e -> e
          | Ok prev_inputs ->
              (* [create] reset the bans, so replaying the validated log
                 in its original order rebuilds the banned A
                 float-for-float (each ban renormalizes its source row
                 sequentially). *)
              List.iter
                (fun (src, dst) -> Hmm.ban hmm ~src_row:src ~dst_row:dst)
                p.p_bans;
              t.ban_log <- List.rev p.p_bans;
              t.bans_active <- p.p_bans <> [];
              t.prev_inputs <- prev_inputs;
              t.mode <- mode;
              t.entered_via <- p.p_entered_via;
              t.progressed <- p.p_progressed;
              t.cycles <- p.p_cycles;
              t.wrong_instants <- p.p_wrong_instants;
              t.resync_events <- p.p_resync_events;
              Ok t)
end

let simulate ?config ?reference hmm trace =
  Psm_obs.span "hmm.multi_sim" @@ fun () ->
  let stepper =
    Stepper.create ?config ~steps:(Functional_trace.length trace) ?reference hmm
  in
  let n = Functional_trace.length trace in
  let estimate = Array.make n 0. in
  let state_trace = Array.make n (-1) in
  Functional_trace.iter
    (fun t sample ->
      let e, sid = Stepper.step stepper sample in
      estimate.(t) <- e;
      state_trace.(t) <- sid)
    trace;
  let wrong = Stepper.wrong_instants stepper in
  { estimate;
    state_trace;
    wrong_instants = wrong;
    wsp = (if n = 0 then 0. else float_of_int wrong /. float_of_int n);
    resync_events = Stepper.resync_events stepper }

let simulate_timed ?config hmm trace =
  let t0 = Unix.gettimeofday () in
  let result = simulate ?config hmm trace in
  (result, Unix.gettimeofday () -. t0)
