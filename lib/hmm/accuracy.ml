module Power_trace = Psm_trace.Power_trace

type report = {
  mre : float;
  rmse : float;
  total_energy_error : float;
  wsp : float;
}

let of_estimate ~reference ~estimate ~wsp =
  let n = Power_trace.length reference in
  if n <> Array.length estimate then
    invalid_arg "Accuracy: estimate length differs from reference";
  if n = 0 then invalid_arg "Accuracy: empty traces";
  let est = Power_trace.of_array (Array.map (fun x -> Float.max x 0.) estimate) in
  let mre = Power_trace.mean_relative_error ~reference ~estimate:est in
  let se = ref 0. in
  for i = 0 to n - 1 do
    let d = Array.get estimate i -. Power_trace.get reference i in
    se := !se +. (d *. d)
  done;
  let rmse = sqrt (!se /. float_of_int n) in
  let ref_total = Power_trace.total_energy reference in
  let est_total = Array.fold_left ( +. ) 0. estimate in
  let total_energy_error =
    if ref_total > 0. then abs_float (est_total -. ref_total) /. ref_total else 0.
  in
  { mre; rmse; total_energy_error; wsp }

let of_result ~reference (r : Multi_sim.result) =
  of_estimate ~reference ~estimate:r.Multi_sim.estimate ~wsp:r.Multi_sim.wsp

let pp fmt r =
  Format.fprintf fmt "MRE %.2f%%  RMSE %.4g  total-energy err %.2f%%  WSP %.2f%%"
    (100. *. r.mre) r.rmse (100. *. r.total_energy_error) (100. *. r.wsp)
