(** Per-algorithm kernel cost model.

    Replaces the single {!Sparse.dense_threshold} density cut: forward
    filtering, Viterbi decoding and multi-simulation pay different
    per-entry prices for their sparse variants, so [`Auto] resolves each
    independently from (m, nnz, expected step count). Coefficients are
    calibrated against bench/probe.ml measurements on the bundled IPs;
    see DESIGN.md §13 for the measured crossovers. *)

type choice = [ `Dense | `Sparse ]
type sim_choice = [ `Reference | `Indexed ]

val default_steps : int
(** Assumed step count when the caller cannot know T (streaming
    filters, steppers created before the trace length is known). *)

val forward : ?steps:int -> m:int -> nnz:int -> unit -> choice
(** Kernel for forward filtering / prediction: dense m² row loop vs
    CSR scatter over m + nnz entries. *)

val viterbi : ?steps:int -> m:int -> nnz:int -> unit -> choice
(** Kernel for max-product decoding: dense m² scan vs CSC scan plus
    top-K predecessor selection, ~2(m + nnz) per step. *)

val multi_sim : ?steps:int -> m:int -> nnz:int -> unit -> sim_choice
(** Stepper path: full-matrix HMM prediction per step ([`Reference])
    vs precomputed successor/entry indexes ([`Indexed]). *)

val record : string -> [ `Dense | `Sparse | `Reference | `Indexed ] -> unit
(** [record algorithm choice] bumps the [hmm.kernel.<algorithm>.<kernel>]
    {!Psm_obs} counter; call at each resolution site so runs expose which
    kernels actually executed. *)
