(** Compressed-sparse-row square matrices backing the HMM inference
    kernels. Mined PSM transition matrices are chain-sparse, so the
    kernels iterate stored entries only; the dense reference path is
    kept for matrices denser than {!dense_threshold}. *)

type t

(** Fill fraction above which the dense kernels are preferred. *)
val dense_threshold : float

(** Build from a square dense matrix (entries exactly [0.] are dropped).
    @raise Invalid_argument on a ragged matrix. *)
val of_dense : float array array -> t

val dim : t -> int
val nnz : t -> int

(** [nnz / (m * m)]; [0.] for the empty matrix. *)
val density : t -> float

(** [iter_row t i f] calls [f j v] for every stored entry [(i, j)] in
    ascending column order. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

val row_nnz : t -> int -> int

(** [scatter_product t x out] accumulates [out.(j) <- out.(j) +. x.(i) *. a.(i).(j)]
    over stored entries with [x.(i) > 0.]. Contributions reach each
    [out.(j)] in ascending-[i] order, making the result bit-identical to
    the dense product (which only adds exact [+0.] terms on top).
    [out] is not cleared first.
    @raise Invalid_argument on size mismatch. *)
val scatter_product : t -> float array -> float array -> unit

(** Column-compressed view for max-product recursions. *)
type csc

val transpose : t -> csc

(** [gather_product c x out] overwrites [out.(j)] with
    [Σ_i x.(i) *. a.(i).(j)] over column [j]'s stored entries,
    register-accumulated in ascending-[i] order — bit-identical to
    {!scatter_product} into a cleared buffer, without the clear or the
    per-entry load/store traffic on [out].
    @raise Invalid_argument on size mismatch. *)
val gather_product : csc -> float array -> float array -> unit

(** [iter_col c j f] calls [f i v] for every stored entry [(i, j)] in
    ascending row order. *)
val iter_col : csc -> int -> (int -> float -> unit) -> unit

(** [col_mem c j i] — is entry [(i, j)] stored? *)
val col_mem : csc -> int -> int -> bool
