(** Accuracy metrics comparing a PSM power estimate against the reference
    power trace (Tables II and III). *)

type report = {
  mre : float;  (** Mean relative error, as a fraction (0.0345 = 3.45%). *)
  rmse : float;
  total_energy_error : float;
      (** |ΣE_est − ΣE_ref| / ΣE_ref — how well cumulative energy (the
          quantity a power manager integrates) is tracked. *)
  wsp : float;  (** Wrong-state-prediction fraction, from the simulator. *)
}

val of_result :
  reference:Psm_trace.Power_trace.t -> Multi_sim.result -> report

val of_estimate :
  reference:Psm_trace.Power_trace.t -> estimate:float array -> wsp:float -> report

val pp : Format.formatter -> report -> unit
