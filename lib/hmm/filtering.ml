module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

let floor_p = 1e-9

type t = {
  hmm : Hmm.t;
  a_instant : float array array; (* dwell-corrected per-instant transitions *)
  a_instant_csr : Sparse.t;
  kernel : Hmm.kernel;
  outputs : Psm.output array; (* row -> state output, resolved once *)
  alpha : float array; (* scratch: current belief *)
  scratch : float array; (* scratch: next belief accumulator *)
}

let create ?(kernel = `Auto) hmm =
  let m = Hmm.state_count hmm in
  let psm = Hmm.psm hmm in
  let dwell =
    Array.init m (fun row ->
        let s = Psm.state psm (Hmm.state_of_row hmm row) in
        let visits = max 1 (List.length s.Psm.attr.Psm_core.Power_attr.intervals) in
        Float.max 1.5
          (float_of_int s.Psm.attr.Psm_core.Power_attr.n /. float_of_int visits))
  in
  let a_instant =
    Array.init m (fun i ->
        let stay = 1. -. (1. /. dwell.(i)) in
        let row =
          Array.init m (fun j ->
              if i = j then Float.max stay (Hmm.a hmm i j)
              else (1. -. stay) *. Hmm.a hmm i j)
        in
        let total = Array.fold_left ( +. ) 0. row in
        if total > 0. then Array.map (fun v -> v /. total) row else row)
  in
  let a_instant_csr = Sparse.of_dense a_instant in
  let kernel =
    match kernel with
    | (`Dense | `Sparse) as k -> k
    | `Auto ->
        (* Stream length unknown at creation; the per-step cost decides
           (it does on every real T — setup is O(m²) either way here,
           the dense a_instant is materialized regardless). *)
        Kernel_cost.forward ~m ~nnz:(Sparse.nnz a_instant_csr) ()
  in
  Kernel_cost.record "forward"
    (kernel :> [ `Dense | `Sparse | `Reference | `Indexed ]);
  { hmm;
    a_instant;
    a_instant_csr;
    kernel;
    outputs =
      Array.init m (fun row ->
          (Psm.state psm (Hmm.state_of_row hmm row)).Psm.output);
    alpha = Array.make m 0.;
    scratch = Array.make m 0. }

let kernel t = t.kernel

let emission t row = function
  | None -> 1.
  | Some prop -> Float.max floor_p (Hmm.b_obs t.hmm row prop)

(* The α recursion, streamed: [emit time alpha] sees each normalized
   belief in turn (the array is reused — consumers must copy what they
   keep). Returns the log likelihood from the normalization constants.
   Not reentrant: the scratch buffers live in [t]. *)
let forward_iter t observations ~emit =
  Psm_obs.span "hmm.forward" @@ fun () ->
  let m = Hmm.state_count t.hmm in
  let n = Array.length observations in
  let log_lik = ref 0. in
  if n > 0 then begin
    let alpha = t.alpha and scratch = t.scratch in
    let pi = Hmm.pi t.hmm in
    for j = 0 to m - 1 do
      alpha.(j) <- pi.(j) *. emission t j observations.(0)
    done;
    let normalize v =
      let total = Array.fold_left ( +. ) 0. v in
      if total > 0. then begin
        Array.iteri (fun i x -> v.(i) <- x /. total) v;
        total
      end
      else begin
        (* Impossible observation everywhere: reset to uniform. *)
        Array.iteri (fun i _ -> v.(i) <- 1. /. float_of_int m) v;
        floor_p
      end
    in
    log_lik := log (normalize alpha);
    emit 0 alpha;
    for time = 1 to n - 1 do
      (match t.kernel with
      | `Sparse ->
          Array.fill scratch 0 m 0.;
          Sparse.scatter_product t.a_instant_csr alpha scratch;
          for j = 0 to m - 1 do
            scratch.(j) <- scratch.(j) *. emission t j observations.(time)
          done
      | `Dense ->
          for j = 0 to m - 1 do
            let acc = ref 0. in
            for i = 0 to m - 1 do
              acc := !acc +. (alpha.(i) *. t.a_instant.(i).(j))
            done;
            scratch.(j) <- !acc *. emission t j observations.(time)
          done);
      Array.blit scratch 0 alpha 0 m;
      log_lik := !log_lik +. log (normalize alpha);
      emit time alpha
    done
  end;
  !log_lik

let posteriors t observations =
  let m = Hmm.state_count t.hmm in
  let post = Array.make_matrix (Array.length observations) m 0. in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        Array.blit alpha 0 post.(time) 0 m)
  in
  post

let map_states t observations =
  let states = Array.make (Array.length observations) 0 in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        let best = ref 0 in
        Array.iteri (fun j v -> if v > alpha.(!best) then best := j) alpha;
        states.(time) <- !best)
  in
  states

let classify t trace =
  let table = Psm.prop_table (Hmm.psm t.hmm) in
  Array.init (Functional_trace.length trace) (fun time ->
      Table.classify table (Functional_trace.sample trace ~time))

let expected_power t trace =
  let hd = Functional_trace.input_hamming_series trace in
  let observations = classify t trace in
  let power = Array.make (Array.length observations) 0. in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        let acc = ref 0. in
        Array.iteri
          (fun row p ->
            if p > 0. then
              acc := !acc +. (p *. Psm.eval_output t.outputs.(row) ~hamming:hd.(time)))
          alpha;
        power.(time) <- !acc)
  in
  power

(* Likelihood without materializing the O(T×m) posterior matrix. *)
let log_likelihood t observations = forward_iter t observations ~emit:(fun _ _ -> ())
