module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

let floor_p = 1e-9

type t = {
  hmm : Hmm.t;
  a_instant : float array array; (* dwell-corrected per-instant transitions *)
}

let create hmm =
  let m = Hmm.state_count hmm in
  let psm = Hmm.psm hmm in
  let dwell =
    Array.init m (fun row ->
        let s = Psm.state psm (Hmm.state_of_row hmm row) in
        let visits = max 1 (List.length s.Psm.attr.Psm_core.Power_attr.intervals) in
        Float.max 1.5
          (float_of_int s.Psm.attr.Psm_core.Power_attr.n /. float_of_int visits))
  in
  let a_instant =
    Array.init m (fun i ->
        let stay = 1. -. (1. /. dwell.(i)) in
        let row =
          Array.init m (fun j ->
              if i = j then Float.max stay (Hmm.a hmm i j)
              else (1. -. stay) *. Hmm.a hmm i j)
        in
        let total = Array.fold_left ( +. ) 0. row in
        if total > 0. then Array.map (fun v -> v /. total) row else row)
  in
  { hmm; a_instant }

let emission t row = function
  | None -> 1.
  | Some prop -> Float.max floor_p (Hmm.b_obs t.hmm row prop)

(* Returns (posteriors, log likelihood). *)
let forward t observations =
  Psm_obs.span "hmm.forward" @@ fun () ->
  let m = Hmm.state_count t.hmm in
  let n = Array.length observations in
  let posteriors = Array.make_matrix n m 0. in
  let log_lik = ref 0. in
  if n > 0 then begin
    let pi = Hmm.pi t.hmm in
    let alpha = Array.init m (fun j -> pi.(j) *. emission t j observations.(0)) in
    let normalize v =
      let total = Array.fold_left ( +. ) 0. v in
      if total > 0. then begin
        Array.iteri (fun i x -> v.(i) <- x /. total) v;
        total
      end
      else begin
        (* Impossible observation everywhere: reset to uniform. *)
        Array.iteri (fun i _ -> v.(i) <- 1. /. float_of_int m) v;
        floor_p
      end
    in
    log_lik := log (normalize alpha);
    Array.blit alpha 0 posteriors.(0) 0 m;
    let scratch = Array.make m 0. in
    for time = 1 to n - 1 do
      for j = 0 to m - 1 do
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (alpha.(i) *. t.a_instant.(i).(j))
        done;
        scratch.(j) <- !acc *. emission t j observations.(time)
      done;
      Array.blit scratch 0 alpha 0 m;
      log_lik := !log_lik +. log (normalize alpha);
      Array.blit alpha 0 posteriors.(time) 0 m
    done
  end;
  (posteriors, !log_lik)

let posteriors t observations = fst (forward t observations)

let map_states t observations =
  let post = posteriors t observations in
  Array.map
    (fun belief ->
      let best = ref 0 in
      Array.iteri (fun j v -> if v > belief.(!best) then best := j) belief;
      !best)
    post

let classify t trace =
  let table = Psm.prop_table (Hmm.psm t.hmm) in
  Array.init (Functional_trace.length trace) (fun time ->
      Table.classify table (Functional_trace.sample trace ~time))

let expected_power t trace =
  let psm = Hmm.psm t.hmm in
  let hd = Functional_trace.input_hamming_series trace in
  let post = posteriors t (classify t trace) in
  Array.mapi
    (fun time belief ->
      let acc = ref 0. in
      Array.iteri
        (fun row p ->
          if p > 0. then begin
            let s = Psm.state psm (Hmm.state_of_row t.hmm row) in
            acc := !acc +. (p *. Psm.eval_output s.Psm.output ~hamming:hd.(time))
          end)
        belief;
      !acc)
    post

let log_likelihood t observations = snd (forward t observations)
