module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

let floor_p = 1e-9

type t = {
  hmm : Hmm.t;
  a_instant : float array array; (* dwell-corrected per-instant transitions *)
  a_instant_csr : Sparse.t;
  a_instant_csc : Sparse.csc; (* gather form for the batched sweep *)
  kernel : Hmm.kernel;
  outputs : Psm.output array; (* row -> state output, resolved once *)
  alpha : float array; (* scratch: current belief *)
  scratch : float array; (* scratch: next belief accumulator *)
  emissions : float array array;
      (* [0] -> all-ones (unknown observation); [p + 1] -> per-row
         emission of proposition p, floored. Same values as [emission] —
         precomputed so the batched sweep reads a row instead of calling
         through [Hmm.b_obs] per state per session. *)
}

let create ?(kernel = `Auto) hmm =
  let m = Hmm.state_count hmm in
  let psm = Hmm.psm hmm in
  let dwell =
    Array.init m (fun row ->
        let s = Psm.state psm (Hmm.state_of_row hmm row) in
        let visits = max 1 (List.length s.Psm.attr.Psm_core.Power_attr.intervals) in
        Float.max 1.5
          (float_of_int s.Psm.attr.Psm_core.Power_attr.n /. float_of_int visits))
  in
  let a_instant =
    Array.init m (fun i ->
        let stay = 1. -. (1. /. dwell.(i)) in
        let row =
          Array.init m (fun j ->
              if i = j then Float.max stay (Hmm.a hmm i j)
              else (1. -. stay) *. Hmm.a hmm i j)
        in
        let total = Array.fold_left ( +. ) 0. row in
        if total > 0. then Array.map (fun v -> v /. total) row else row)
  in
  let a_instant_csr = Sparse.of_dense a_instant in
  let kernel =
    match kernel with
    | (`Dense | `Sparse) as k -> k
    | `Auto ->
        (* Stream length unknown at creation; the per-step cost decides
           (it does on every real T — setup is O(m²) either way here,
           the dense a_instant is materialized regardless). *)
        Kernel_cost.forward ~m ~nnz:(Sparse.nnz a_instant_csr) ()
  in
  Kernel_cost.record "forward"
    (kernel :> [ `Dense | `Sparse | `Reference | `Indexed ]);
  { hmm;
    a_instant;
    a_instant_csr;
    a_instant_csc = Sparse.transpose a_instant_csr;
    kernel;
    outputs =
      Array.init m (fun row ->
          (Psm.state psm (Hmm.state_of_row hmm row)).Psm.output);
    alpha = Array.make m 0.;
    scratch = Array.make m 0.;
    emissions =
      (let nprops = Table.prop_count (Psm.prop_table psm) in
       Array.init (nprops + 1) (fun k ->
           if k = 0 then Array.make m 1.
           else
             Array.init m (fun row ->
                 Float.max floor_p (Hmm.b_obs hmm row (k - 1))))) }

let kernel t = t.kernel

let emission t row = function
  | None -> 1.
  | Some prop -> Float.max floor_p (Hmm.b_obs t.hmm row prop)

(* The precomputed emission row for an observation; out-of-vocabulary
   propositions (a hostile client can send any integer) fall back to the
   scalar [emission], which floors them everywhere. *)
let emission_row t = function
  | None -> t.emissions.(0)
  | Some p when p >= 0 && p + 1 < Array.length t.emissions -> t.emissions.(p + 1)
  | Some _ as obs ->
      Array.init (Array.length t.alpha) (fun row -> emission t row obs)

(* The α recursion, streamed: [emit time alpha] sees each normalized
   belief in turn (the array is reused — consumers must copy what they
   keep). Returns the log likelihood from the normalization constants.
   Not reentrant: the scratch buffers live in [t]. *)
let forward_iter t observations ~emit =
  Psm_obs.span "hmm.forward" @@ fun () ->
  let m = Hmm.state_count t.hmm in
  let n = Array.length observations in
  let log_lik = ref 0. in
  if n > 0 then begin
    let alpha = t.alpha and scratch = t.scratch in
    let pi = Hmm.pi t.hmm in
    for j = 0 to m - 1 do
      alpha.(j) <- pi.(j) *. emission t j observations.(0)
    done;
    let normalize v =
      let total = Array.fold_left ( +. ) 0. v in
      if total > 0. then begin
        Array.iteri (fun i x -> v.(i) <- x /. total) v;
        total
      end
      else begin
        (* Impossible observation everywhere: reset to uniform. *)
        Array.iteri (fun i _ -> v.(i) <- 1. /. float_of_int m) v;
        floor_p
      end
    in
    log_lik := log (normalize alpha);
    emit 0 alpha;
    for time = 1 to n - 1 do
      (match t.kernel with
      | `Sparse ->
          Array.fill scratch 0 m 0.;
          Sparse.scatter_product t.a_instant_csr alpha scratch;
          for j = 0 to m - 1 do
            scratch.(j) <- scratch.(j) *. emission t j observations.(time)
          done
      | `Dense ->
          for j = 0 to m - 1 do
            let acc = ref 0. in
            for i = 0 to m - 1 do
              acc := !acc +. (alpha.(i) *. t.a_instant.(i).(j))
            done;
            scratch.(j) <- !acc *. emission t j observations.(time)
          done);
      Array.blit scratch 0 alpha 0 m;
      log_lik := !log_lik +. log (normalize alpha);
      emit time alpha
    done
  end;
  !log_lik

let posteriors t observations =
  let m = Hmm.state_count t.hmm in
  let post = Array.make_matrix (Array.length observations) m 0. in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        Array.blit alpha 0 post.(time) 0 m)
  in
  post

let map_states t observations =
  let states = Array.make (Array.length observations) 0 in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        let best = ref 0 in
        Array.iteri (fun j v -> if v > alpha.(!best) then best := j) alpha;
        states.(time) <- !best)
  in
  states

let classify t trace =
  let table = Psm.prop_table (Hmm.psm t.hmm) in
  Array.init (Functional_trace.length trace) (fun time ->
      Table.classify table (Functional_trace.sample trace ~time))

let expected_power t trace =
  let hd = Functional_trace.input_hamming_series trace in
  let observations = classify t trace in
  let power = Array.make (Array.length observations) 0. in
  let (_ : float) =
    forward_iter t observations ~emit:(fun time alpha ->
        let acc = ref 0. in
        Array.iteri
          (fun row p ->
            if p > 0. then
              acc := !acc +. (p *. Psm.eval_output t.outputs.(row) ~hamming:hd.(time)))
          alpha;
        power.(time) <- !acc)
  in
  power

(* Likelihood without materializing the O(T×m) posterior matrix. *)
let log_likelihood t observations = forward_iter t observations ~emit:(fun _ _ -> ())

(* ---------- Streaming sessions (the serve hot path) ---------- *)

(* CONTRACT (see the mli): everything in this module reads [t] but never
   writes it — not even [t.alpha]/[t.scratch], which belong to
   [forward_iter] above. The serve engine steps shards sharing one [t]
   from distinct domains in parallel; a write to [t] here is a data
   race. *)
module Stream = struct
  type state = {
    alpha : float array;
    scratch : float array;
    mutable steps : int;
    mutable log_lik : float;
  }

  let make t =
    let m = Hmm.state_count t.hmm in
    { alpha = Array.make m 0.; scratch = Array.make m 0.; steps = 0; log_lik = 0. }

  type portable = { p_steps : int; p_log_lik : float; p_belief : float array }

  let export s =
    { p_steps = s.steps; p_log_lik = s.log_lik; p_belief = Array.copy s.alpha }

  (* Checkpoints travel over the wire, so every field is validated
     against the target model before a session is built from it: a
     hostile blob must earn an [Error], never out-of-bounds state. *)
  let import t p =
    let m = Hmm.state_count t.hmm in
    if p.p_steps < 0 then Error "negative step count"
    else if not (Float.is_finite p.p_log_lik) then
      Error "non-finite log likelihood"
    else if Array.length p.p_belief <> m then
      Error
        (Printf.sprintf "belief has %d entries, model has %d states"
           (Array.length p.p_belief) m)
    else if
      Array.exists (fun v -> (not (Float.is_finite v)) || v < 0.) p.p_belief
    then Error "belief entry outside [0, +inf)"
    else if p.p_steps > 0 && Array.for_all (fun v -> v = 0.) p.p_belief then
      Error "belief of a started session has no mass"
    else
      Ok
        { alpha = Array.copy p.p_belief;
          scratch = Array.make m 0.; (* transient: overwritten each step *)
          steps = p.p_steps;
          log_lik = p.p_log_lik }

  let copy s = { s with alpha = Array.copy s.alpha; scratch = Array.copy s.scratch }
  let steps s = s.steps
  let log_likelihood s = s.log_lik
  let belief s = s.alpha

  (* Scalar step: one [forward_iter] iteration verbatim — same kernels,
     same fold/normalize order — so a session stepped observation by
     observation holds exactly the belief forward_iter would have emitted
     at the same instant. This is also the per-session reference loop the
     batched sweep is measured (and tested bit-identical) against. *)
  let step t s obs =
    let m = Hmm.state_count t.hmm in
    let alpha = s.alpha and scratch = s.scratch in
    let normalize v =
      let total = Array.fold_left ( +. ) 0. v in
      if total > 0. then begin
        Array.iteri (fun i x -> v.(i) <- x /. total) v;
        total
      end
      else begin
        Array.iteri (fun i _ -> v.(i) <- 1. /. float_of_int m) v;
        floor_p
      end
    in
    if s.steps = 0 then begin
      let pi = Hmm.pi t.hmm in
      for j = 0 to m - 1 do
        alpha.(j) <- pi.(j) *. emission t j obs
      done
    end
    else begin
      (match t.kernel with
      | `Sparse ->
          Array.fill scratch 0 m 0.;
          Sparse.scatter_product t.a_instant_csr alpha scratch;
          for j = 0 to m - 1 do
            scratch.(j) <- scratch.(j) *. emission t j obs
          done
      | `Dense ->
          for j = 0 to m - 1 do
            let acc = ref 0. in
            for i = 0 to m - 1 do
              acc := !acc +. (alpha.(i) *. t.a_instant.(i).(j))
            done;
            scratch.(j) <- !acc *. emission t j obs
          done);
      Array.blit scratch 0 alpha 0 m
    end;
    s.log_lik <- s.log_lik +. log (normalize alpha);
    s.steps <- s.steps + 1

  (* One batched sweep: every session advances one observation. Per
     session the arithmetic is [step]'s exactly — contributions reach its
     scratch in [Sparse.scatter_product]'s ascending-(i, j) order, the
     normalizing sum accumulates in the scalar fold's ascending-j order —
     so the batched belief is bit-identical to stepping each session
     alone. Only the loop structure differs: the CSR traversal is
     amortized across all sessions (entry-outer, session-inner), the
     emission multiply / sum / normalize are fused into two monomorphic
     unsafe passes, and emission rows come from the precomputed table.
     That structural difference is the serve hot path's throughput edge
     over the per-session loop. *)
  let step_many t states obss =
    let n = Array.length states in
    if Array.length obss <> n then
      invalid_arg "Filtering.Stream.step_many: length mismatch";
    let m = Hmm.state_count t.hmm in
    let started = Array.make n false in
    let any_started = ref false in
    for s = 0 to n - 1 do
      if states.(s).steps = 0 then step t states.(s) obss.(s)
      else begin
        started.(s) <- true;
        any_started := true
      end
    done;
    if !any_started then begin
      for s = 0 to n - 1 do
        if started.(s) then Array.fill states.(s).scratch 0 m 0.
      done;
      (match t.kernel with
      | `Sparse ->
          for i = 0 to m - 1 do
            Sparse.iter_row t.a_instant_csr i (fun j v ->
                for s = 0 to n - 1 do
                  if Array.unsafe_get started s then begin
                    let st = Array.unsafe_get states s in
                    let ai = Array.unsafe_get st.alpha i in
                    if ai > 0. then
                      Array.unsafe_set st.scratch j
                        (Array.unsafe_get st.scratch j +. (ai *. v))
                  end
                done)
          done
      | `Dense ->
          for s = 0 to n - 1 do
            if started.(s) then begin
              let st = states.(s) in
              for j = 0 to m - 1 do
                let acc = ref 0. in
                for i = 0 to m - 1 do
                  acc :=
                    !acc
                    +. (Array.unsafe_get st.alpha i
                       *. Array.unsafe_get (Array.unsafe_get t.a_instant i) j)
                done;
                Array.unsafe_set st.scratch j !acc
              done
            end
          done);
      for s = 0 to n - 1 do
        if started.(s) then begin
          let st = states.(s) in
          let ev = emission_row t obss.(s) in
          let total = ref 0. in
          for j = 0 to m - 1 do
            let x = Array.unsafe_get st.scratch j *. Array.unsafe_get ev j in
            Array.unsafe_set st.alpha j x;
            total := !total +. x
          done;
          let total = !total in
          if total > 0. then begin
            for j = 0 to m - 1 do
              Array.unsafe_set st.alpha j (Array.unsafe_get st.alpha j /. total)
            done;
            st.log_lik <- st.log_lik +. log total
          end
          else begin
            Array.fill st.alpha 0 m (1. /. float_of_int m);
            st.log_lik <- st.log_lik +. log floor_p
          end;
          st.steps <- st.steps + 1
        end
      done
    end

  (* [map_state]/[power] run once per session-cycle on the serve path —
     monomorphic loops (no closure, [eval_output] inlined by constructor)
     with the exact arithmetic and visit order of the [Array.iteri]
     originals, so the reported state and power stay bit-identical to
     {!map_states} / {!expected_power} on the whole trace. *)
  let map_state _t s =
    let alpha = s.alpha in
    let best = ref 0 in
    let best_v = ref (Array.unsafe_get alpha 0) in
    for j = 1 to Array.length alpha - 1 do
      let v = Array.unsafe_get alpha j in
      if v > !best_v then begin
        best := j;
        best_v := v
      end
    done;
    !best

  let power t s ~hamming =
    let alpha = s.alpha and outputs = t.outputs in
    let acc = ref 0. in
    for row = 0 to Array.length alpha - 1 do
      let p = Array.unsafe_get alpha row in
      if p > 0. then
        acc :=
          !acc
          +. p
             *.
             match Array.unsafe_get outputs row with
             | Psm.Const mu -> mu
             | Psm.Affine { slope; intercept } -> (slope *. hamming) +. intercept
    done;
    !acc

  (* The serve fast path: [step_many] with the per-session scoring folded
     into the normalize pass. Per session the stored belief is
     [step_many]'s exactly (same propagation, same emission multiply,
     same normalizing sum and division), and [powers]/[rows] accumulate
     over the *stored* normalized values in the same ascending-row order
     — with the same [p > 0.] guard and strict-[>] argmax — as a separate
     {!power} / {!map_state} pass would. Fusing merely removes two extra
     O(m) traversals per session-cycle; every float op and comparison it
     performs is one the unfused pipeline performs on identical inputs,
     so the results stay bit-identical. *)
  let sweep t states obss ~hds ~powers ~rows =
    let n = Array.length states in
    if
      Array.length obss <> n || Array.length hds <> n
      || Array.length powers <> n
      || Array.length rows <> n
    then invalid_arg "Filtering.Stream.sweep: length mismatch";
    let m = Hmm.state_count t.hmm in
    let outputs = t.outputs in
    let started = Array.make n false in
    let any_started = ref false in
    for s = 0 to n - 1 do
      if states.(s).steps = 0 then begin
        step t states.(s) obss.(s);
        powers.(s) <- power t states.(s) ~hamming:hds.(s);
        rows.(s) <- map_state t states.(s)
      end
      else begin
        started.(s) <- true;
        any_started := true
      end
    done;
    if !any_started then begin
      (match t.kernel with
      | `Sparse ->
          (* Gather form: the CSC metadata stays cache-hot while the
             whole shard streams through it back to back — the batching
             win the per-session loop (scatter + clear per step) never
             sees. Bit-identical: see {!Sparse.gather_product}. *)
          for s = 0 to n - 1 do
            if started.(s) then begin
              let st = states.(s) in
              Sparse.gather_product t.a_instant_csc st.alpha st.scratch
            end
          done
      | `Dense ->
          for s = 0 to n - 1 do
            if started.(s) then begin
              let st = states.(s) in
              for j = 0 to m - 1 do
                let acc = ref 0. in
                for i = 0 to m - 1 do
                  acc :=
                    !acc
                    +. (Array.unsafe_get st.alpha i
                       *. Array.unsafe_get (Array.unsafe_get t.a_instant i) j)
                done;
                Array.unsafe_set st.scratch j !acc
              done
            end
          done);
      for s = 0 to n - 1 do
        if started.(s) then begin
          let st = Array.unsafe_get states s in
          let ev = emission_row t obss.(s) in
          let total = ref 0. in
          for j = 0 to m - 1 do
            let x = Array.unsafe_get st.scratch j *. Array.unsafe_get ev j in
            Array.unsafe_set st.alpha j x;
            total := !total +. x
          done;
          let total = !total in
          if total > 0. then begin
            st.log_lik <- st.log_lik +. log total;
            let alpha = st.alpha in
            let hamming = Array.unsafe_get hds s in
            let acc = ref 0. in
            let best = ref 0 in
            let best_v = ref 0. in
            for j = 0 to m - 1 do
              let p = Array.unsafe_get alpha j /. total in
              Array.unsafe_set alpha j p;
              if p > 0. then
                acc :=
                  !acc
                  +. p
                     *. (match Array.unsafe_get outputs j with
                        | Psm.Const mu -> mu
                        | Psm.Affine { slope; intercept } ->
                            (slope *. hamming) +. intercept);
              if j = 0 || p > !best_v then begin
                best := j;
                best_v := p
              end
            done;
            Array.unsafe_set powers s !acc;
            Array.unsafe_set rows s !best
          end
          else begin
            (* Degenerate instant (zero likelihood mass): fall back to the
               uniform belief exactly as [step] does, then score it with
               the reference passes — this path is cold. *)
            Array.fill st.alpha 0 m (1. /. float_of_int m);
            st.log_lik <- st.log_lik +. log floor_p;
            powers.(s) <- power t st ~hamming:hds.(s);
            rows.(s) <- map_state t st
          end;
          st.steps <- st.steps + 1
        end
      done
    end
end
