(* Per-algorithm kernel cost model.

   A single density threshold cannot arbitrate for all three inference
   loops: their sparse variants do different amounts of work per stored
   entry. Per step (of T total):

   - dense forward/Viterbi/predict touch all m² entries;
   - sparse forward scatters over the CSR rows: m + nnz entries, each a
     little dearer than a dense one (indirection);
   - sparse Viterbi adds a top-K score selection and per-column stamp
     marking on top of the CSC scan: ~2(m + nnz) comparable ops;
   - the indexed simulator touches the active row's successor lists
     instead of predicting over the full matrix: ~2(m + nnz/m).

   Setup costs differ too — the dense kernels materialize an m² log/dwell
   matrix, the sparse ones an O(m + nnz) CSR/CSC — which is why the
   expected step count [steps] is part of the decision: at tiny T the
   setup dominates and sparse wins even where its steps are dearer.

   The step coefficients below are calibrated on the bundled IPs with
   bench/probe.ml (m = 3..12, nnz = 4..60, T = 60k/120k, best of three):
   they reproduce every measured winner — sparse forward on all four IPs,
   sparse Viterbi on Camellia (m=12) but dense on the small near-dense
   models (AES m=4 at 0.5 density), indexed simulation everywhere — and
   fall back to dense/reference on genuinely dense matrices where the
   sparse detour only adds indirection. *)

type choice = [ `Dense | `Sparse ]
type sim_choice = [ `Reference | `Indexed ]

(* When the caller cannot know T (streaming filters, steppers): long
   enough that per-step cost decides, as it does on every real workload. *)
let default_steps = 10_000

let forward_step_coeff = 1.25
let viterbi_step_coeff = 1.8
let sim_step_coeff = 2.0

let fsteps steps = float_of_int (max 1 (Option.value steps ~default:default_steps))

let pick ~dense ~sparse = if sparse <= dense then `Sparse else `Dense

let forward ?steps ~m ~nnz () : choice =
  let t = fsteps steps in
  let mm = float_of_int (m * m) in
  let work = float_of_int (m + nnz) in
  pick
    ~dense:(mm +. (t *. mm))
    ~sparse:(work +. (t *. forward_step_coeff *. work))

let viterbi ?steps ~m ~nnz () : choice =
  let t = fsteps steps in
  let mm = float_of_int (m * m) in
  let work = float_of_int (m + nnz) in
  pick
    ~dense:(mm +. (t *. mm))
    ~sparse:((2. *. work) +. (t *. viterbi_step_coeff *. work))

let multi_sim ?steps ~m ~nnz () : sim_choice =
  let t = fsteps steps in
  let mm = float_of_int (m * m) in
  let work = float_of_int m +. (float_of_int nnz /. float_of_int (max 1 m)) in
  let reference = t *. mm in
  let indexed = work +. (t *. sim_step_coeff *. work) in
  if indexed <= reference then `Indexed else `Reference

(* Every resolution — forced or cost-based — lands in a Psm_obs counter,
   so a bench or trace dump shows which kernels actually ran. *)
let record algorithm (choice : [ `Dense | `Sparse | `Reference | `Indexed ]) =
  let kernel =
    match choice with
    | `Dense -> "dense"
    | `Sparse -> "sparse"
    | `Reference -> "reference"
    | `Indexed -> "indexed"
  in
  Psm_obs.incr (Printf.sprintf "hmm.kernel.%s.%s" algorithm kernel)
