(* Compressed-sparse-row square matrices for the HMM kernels. The PSM
   flow produces transition matrices that are chain-sparse by
   construction (the generator emits chains; simplify/join add few
   extra edges), so iterating only the stored entries beats the dense
   O(m²) row products on every realistic model. *)

type t = {
  m : int;
  row_ptr : int array; (* length m + 1 *)
  cols : int array; (* length nnz, ascending within each row *)
  vals : float array; (* length nnz *)
}

(* Above this fill fraction the flat dense product wins on cache
   behaviour and the indirection costs more than it saves. *)
let dense_threshold = 0.75

let of_dense a =
  let m = Array.length a in
  let row_ptr = Array.make (m + 1) 0 in
  let nnz = ref 0 in
  Array.iteri
    (fun i row ->
      if Array.length row <> m then invalid_arg "Sparse.of_dense: ragged matrix";
      Array.iter (fun v -> if v <> 0. then incr nnz) row;
      row_ptr.(i + 1) <- !nnz)
    a;
  let cols = Array.make (max !nnz 1) 0 in
  let vals = Array.make (max !nnz 1) 0. in
  let k = ref 0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          if v <> 0. then begin
            cols.(!k) <- j;
            vals.(!k) <- v;
            incr k
          end)
        row)
    a;
  { m; row_ptr; cols; vals }

let dim t = t.m
let nnz t = t.row_ptr.(t.m)

let density t =
  if t.m = 0 then 0. else float_of_int (nnz t) /. float_of_int (t.m * t.m)

let iter_row t i f =
  let stop = t.row_ptr.(i + 1) in
  for k = t.row_ptr.(i) to stop - 1 do
    f (Array.unsafe_get t.cols k) (Array.unsafe_get t.vals k)
  done

let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

(* out(j) += x(i) · A(i,j), skipping zero belief entries exactly like the
   dense loop does; contributions to each out(j) arrive in ascending-i
   order, so the floating-point sums are bit-identical to the dense
   product (the dense loop's extra terms are exact +0. additions). *)
let scatter_product t x out =
  if Array.length x <> t.m || Array.length out <> t.m then
    invalid_arg "Sparse.scatter_product: size mismatch";
  for i = 0 to t.m - 1 do
    let xi = Array.unsafe_get x i in
    if xi > 0. then begin
      let stop = Array.unsafe_get t.row_ptr (i + 1) in
      for k = Array.unsafe_get t.row_ptr i to stop - 1 do
        let j = Array.unsafe_get t.cols k in
        Array.unsafe_set out j
          (Array.unsafe_get out j +. (xi *. Array.unsafe_get t.vals k))
      done
    end
  done

(* Column-oriented view: incoming entries per column, ascending row index
   within each column — what max-product (Viterbi) iterates. *)
type csc = { col_ptr : int array; rows : int array; cvals : float array }

let transpose t =
  let m = t.m in
  let n = nnz t in
  let col_ptr = Array.make (m + 1) 0 in
  for k = 0 to n - 1 do
    let j = t.cols.(k) in
    col_ptr.(j + 1) <- col_ptr.(j + 1) + 1
  done;
  for j = 0 to m - 1 do
    col_ptr.(j + 1) <- col_ptr.(j + 1) + col_ptr.(j)
  done;
  let rows = Array.make (max n 1) 0 in
  let cvals = Array.make (max n 1) 0. in
  let cursor = Array.copy col_ptr in
  (* Row-major traversal fills each column in ascending row order. *)
  for i = 0 to m - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.cols.(k) in
      let slot = cursor.(j) in
      rows.(slot) <- i;
      cvals.(slot) <- t.vals.(k);
      cursor.(j) <- slot + 1
    done
  done;
  { col_ptr; rows; cvals }

(* out(j) <- Σ_i x(i) · A(i,j) over the stored entries of column [j],
   accumulated in a register in ascending-i order — the same contribution
   order [scatter_product] produces (its zero-x skips only drop exact
   [+0.] terms), so the two forms are bit-identical. Gathering overwrites
   [out] (no pre-clear) and never re-reads it, which is what makes it the
   cheaper form when one source is swept against many columns. *)
let gather_product c x out =
  let m = Array.length out in
  if Array.length x <> m || Array.length c.col_ptr <> m + 1 then
    invalid_arg "Sparse.gather_product: size mismatch";
  for j = 0 to m - 1 do
    let stop = Array.unsafe_get c.col_ptr (j + 1) in
    let acc = ref 0. in
    for k = Array.unsafe_get c.col_ptr j to stop - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get x (Array.unsafe_get c.rows k)
           *. Array.unsafe_get c.cvals k)
    done;
    Array.unsafe_set out j !acc
  done

let iter_col c j f =
  let stop = c.col_ptr.(j + 1) in
  for k = c.col_ptr.(j) to stop - 1 do
    f (Array.unsafe_get c.rows k) (Array.unsafe_get c.cvals k)
  done

let col_mem c j i =
  let rec go k stop = k < stop && (c.rows.(k) = i || go (k + 1) stop) in
  go c.col_ptr.(j) c.col_ptr.(j + 1)
