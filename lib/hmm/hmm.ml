module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion

type kernel = [ `Dense | `Sparse ]
type kernel_choice = [ `Auto | `Dense | `Sparse ]

type t = {
  psm : Psm.t;
  ids : int array; (* row -> state id *)
  rows : (int, int) Hashtbl.t; (* state id -> row *)
  a : float array array; (* mutable via ban *)
  a_original : float array array;
  b_by_prop : float array array; (* row -> prop id -> entry-observation mass *)
  b_full : float array array; (* row -> prop id -> emission probability *)
  pi : float array;
  observations : Assertion.t array;
  (* CSR mirror of [a], rebuilt on every mutation (bans are rare relative
     to predict steps). The dense rows stay the source of truth. *)
  mutable a_csr : Sparse.t;
  mutable kernel : kernel;
  mutable kernel_pref : kernel_choice;
}

let resolve_kernel pref csr : kernel =
  match pref with
  | `Dense -> `Dense
  | `Sparse -> `Sparse
  | `Auto ->
      (* Generic (predict-step) resolution; the inference loops that know
         their own cost profile re-resolve per algorithm. *)
      Kernel_cost.forward ~m:(Sparse.dim csr) ~nnz:(Sparse.nnz csr) ()

let refresh_a_cache t =
  t.a_csr <- Sparse.of_dense t.a;
  t.kernel <- resolve_kernel t.kernel_pref t.a_csr

let normalize_row row =
  Psm_obs.incr "hmm.rows_normalized";
  let total = Array.fold_left ( +. ) 0. row in
  if total > 0. then Array.iteri (fun i v -> row.(i) <- v /. total) row

let build ?(kernel = `Auto) ?transition_counts ?emission_counts psm =
  Psm_obs.span "hmm.build" @@ fun () ->
  let states = Psm.states psm in
  let ids = Array.of_list (List.map (fun (s : Psm.state) -> s.Psm.id) states) in
  let m = Array.length ids in
  if m = 0 then invalid_arg "Hmm.build: empty PSM set";
  let rows = Hashtbl.create m in
  Array.iteri (fun row id -> Hashtbl.replace rows id row) ids;
  let row id = Hashtbl.find rows id in
  let a = Array.make_matrix m m 0. in
  let structural_edge = Hashtbl.create 64 in
  List.iter
    (fun (tr : Psm.transition) ->
      Hashtbl.replace structural_edge (tr.Psm.src, tr.Psm.dst) ())
    (Psm.transitions psm);
  (match transition_counts with
  | Some counts ->
      (* Training-trace frequencies, restricted to edges that survived in
         the graph (simplify absorbs its internal edges). *)
      List.iter
        (fun ((src, dst), count) ->
          match (Hashtbl.find_opt rows src, Hashtbl.find_opt rows dst) with
          | Some i, Some j when Hashtbl.mem structural_edge (src, dst) ->
              a.(i).(j) <- a.(i).(j) +. count
          | _ -> ())
        counts
  | None ->
      (* Structural fallback: distinct transitions, guards counted
         separately. *)
      List.iter
        (fun (tr : Psm.transition) ->
          let i = row tr.Psm.src and j = row tr.Psm.dst in
          a.(i).(j) <- a.(i).(j) +. 1.)
        (Psm.transitions psm));
  (* Any edge present in the graph keeps a small floor probability so a
     zero-frequency path stays reachable for resynchronization. *)
  Hashtbl.iter
    (fun (src, dst) () ->
      let i = row src and j = row dst in
      if a.(i).(j) = 0. then a.(i).(j) <- 0.5)
    structural_edge;
  Array.iteri
    (fun i r ->
      let total = Array.fold_left ( +. ) 0. r in
      if total = 0. then r.(i) <- 1. (* absorbing: self-loop *)
      else normalize_row r)
    a;
  (* Observation alphabet: distinct component assertions. *)
  let module AMap = Map.Make (struct
    type t = Assertion.t

    let compare = Assertion.compare
  end) in
  let alphabet = ref AMap.empty in
  List.iter
    (fun (s : Psm.state) ->
      List.iter
        (fun (assertion, _) ->
          if not (AMap.mem assertion !alphabet) then
            alphabet := AMap.add assertion (AMap.cardinal !alphabet) !alphabet)
        s.Psm.components)
    states;
  let observations = Array.make (AMap.cardinal !alphabet) (Assertion.Until (0, 0)) in
  AMap.iter (fun assertion k -> observations.(k) <- assertion) !alphabet;
  (* B from component multiplicity, then projected onto entry propositions
     for proposition-level filtering. *)
  let nprops = Psm_mining.Prop_trace.Table.prop_count (Psm.prop_table psm) in
  let b_by_prop = Array.make_matrix m (max nprops 1) 0. in
  List.iteri
    (fun _ (s : Psm.state) ->
      let i = row s.Psm.id in
      let total = float_of_int (List.length s.Psm.components) in
      List.iter
        (fun (assertion, _) ->
          let entries = Assertion.entry_props assertion in
          let share = 1. /. (total *. float_of_int (List.length entries)) in
          List.iter
            (fun p -> if p < nprops then b_by_prop.(i).(p) <- b_by_prop.(i).(p) +. share)
            entries)
        s.Psm.components)
    states;
  (* Full emission matrix: training observation frequencies per state, or
     the entry projection as fallback. *)
  let b_full =
    match emission_counts with
    | None -> Array.map Array.copy b_by_prop
    | Some counts ->
        let b = Array.make_matrix m (max nprops 1) 0. in
        List.iter
          (fun ((state_id, prop), count) ->
            match Hashtbl.find_opt rows state_id with
            | Some i when prop >= 0 && prop < nprops -> b.(i).(prop) <- b.(i).(prop) +. count
            | Some _ | None -> ())
          counts;
        Array.iter normalize_row b;
        b
  in
  (* π from initial-state multiplicity. *)
  let pi = Array.make m 0. in
  List.iter (fun id -> pi.(row id) <- pi.(row id) +. 1.) (Psm.initial psm);
  if Array.for_all (fun v -> v = 0.) pi then Array.fill pi 0 m (1. /. float_of_int m)
  else normalize_row pi;
  let a_csr = Sparse.of_dense a in
  { psm;
    ids;
    rows;
    a;
    a_original = Array.map Array.copy a;
    b_by_prop;
    b_full;
    pi;
    observations;
    a_csr;
    kernel = resolve_kernel kernel a_csr;
    kernel_pref = kernel }

let copy t =
  (* Only the transition state is session-local: [ban] / [reset_bans] /
     [unsafe_set_a] mutate [a] (and replace the CSR mirror), so the copy
     gets its own rows while sharing everything the API never mutates —
     the PSM, emissions, π, and the row interning tables. *)
  { t with
    a = Array.map Array.copy t.a;
    a_original = Array.map Array.copy t.a_original;
    a_csr = Sparse.of_dense t.a }

let psm t = t.psm
let state_count t = Array.length t.ids
let observation_count t = Array.length t.observations

let row_of_state t id =
  match Hashtbl.find_opt t.rows id with Some r -> r | None -> raise Not_found

let state_of_row t row = t.ids.(row)

let a t i j = t.a.(i).(j)
let a_row t i = Array.copy t.a.(i)
let a_sparse t = t.a_csr
let kernel t = t.kernel
let kernel_pref t = t.kernel_pref

let set_kernel t pref =
  t.kernel_pref <- pref;
  t.kernel <- resolve_kernel pref t.a_csr

let b_entry t i prop =
  if prop < 0 || prop >= Array.length t.b_by_prop.(i) then 0. else t.b_by_prop.(i).(prop)

let b_obs t i prop =
  if prop < 0 || prop >= Array.length t.b_full.(i) then 0. else t.b_full.(i).(prop)

let pi t = Array.copy t.pi
let initial_belief t = Array.copy t.pi

let predict t belief =
  let m = state_count t in
  if Array.length belief <> m then invalid_arg "Hmm.predict: belief size mismatch";
  let out = Array.make m 0. in
  (match t.kernel with
  | `Sparse -> Sparse.scatter_product t.a_csr belief out
  | `Dense ->
      for i = 0 to m - 1 do
        if belief.(i) > 0. then
          for j = 0 to m - 1 do
            out.(j) <- out.(j) +. (belief.(i) *. t.a.(i).(j))
          done
      done);
  normalize_row out;
  out

let update_entry t belief ~prop =
  let m = Array.length belief in
  let out = Array.make m 0. in
  let total = ref 0. in
  for i = 0 to m - 1 do
    if belief.(i) > 0. then begin
      let v = belief.(i) *. b_entry t i prop in
      out.(i) <- v;
      total := !total +. v
    end
  done;
  if !total > 0. then
    for i = 0 to m - 1 do
      out.(i) <- out.(i) /. !total
    done;
  out

let ban t ~src_row ~dst_row =
  let row = t.a.(src_row) in
  row.(dst_row) <- 0.;
  let total = Array.fold_left ( +. ) 0. row in
  if total > 0. then normalize_row row
  else begin
    (* Every successor was banned: fall back to uniform over the others so
       filtering can still propose a jump. *)
    let m = Array.length row in
    for j = 0 to m - 1 do
      row.(j) <- (if j = dst_row then 0. else 1. /. float_of_int (max 1 (m - 1)))
    done
  end;
  refresh_a_cache t

let unsafe_set_a t ~row ~col v =
  t.a.(row).(col) <- v;
  refresh_a_cache t

let reset_bans t =
  Array.iteri (fun i r -> Array.blit t.a_original.(i) 0 r 0 (Array.length r)) t.a;
  refresh_a_cache t

let pp fmt t =
  let m = state_count t in
  Format.fprintf fmt "@[<v>HMM over %d states, %d observations@," m
    (observation_count t);
  Format.fprintf fmt "pi = [%a]@,"
    (fun fmt -> Array.iter (fun v -> Format.fprintf fmt " %.3f" v))
    t.pi;
  for i = 0 to m - 1 do
    Format.fprintf fmt "A[s%d] =" (state_of_row t i);
    for j = 0 to m - 1 do
      Format.fprintf fmt " %.3f" t.a.(i).(j)
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
