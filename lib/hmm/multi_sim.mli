(** Concurrent simulation of the combined PSM set under HMM control
    (paper Sec. V).

    At each instant the observed PI/PO sample is classified into a
    proposition; the current state's assertion — possibly a [simplify]
    cascade {p;q;…} tracked position by position, possibly a [join]
    alternative set {p‖q‖…} tracked as a set of live alternatives — decides
    whether the machine stays, advances inside the cascade, or exits
    through a transition. Non-deterministic exits and resynchronization
    jumps are resolved by HMM filtering (predict along A, condition on the
    observed entry proposition through B).

    When no alternative accepts the observation (an unknown behaviour),
    the machine reverts to the last valid state, bans the offending A
    entry, and attempts a filtered jump to a state that can recognize the
    observation; failing that it remains in the last valid state — whose
    power output keeps being emitted but is counted as unreliable — until
    a known behaviour reappears. These unreliable instants over the total
    gives the WSP (wrong-state prediction) metric of Table III. *)

type config = {
  resync_enabled : bool;
      (** Ablation switch: when false, a desynchronized machine can only
          recover by accidentally re-matching its current state (the
          Sec. III-C behaviour). Default true. *)
  on_resync : (cycle:int -> state:int -> prop:int option -> unit) option;
      (** Diagnostic hook invoked at each resynchronization event with the
          PSM state id and the observed proposition. Default [None]. *)
}

val default : config

type result = {
  estimate : float array;  (** Power estimate per instant. *)
  state_trace : int array;  (** PSM state id per instant; -1 = desynced. *)
  wrong_instants : int;
  wsp : float;  (** wrong_instants / length. *)
  resync_events : int;
}

val simulate :
  ?config:config -> ?reference:bool -> Hmm.t -> Psm_trace.Functional_trace.t -> result
(** [reference] forces the stepper path: [true] disables the precomputed
    successor/entry indexes and runs the original transition-list scans —
    the executable specification the equivalence tests compare against.
    When omitted, {!Kernel_cost.multi_sim} decides from (m, nnz, trace
    length); on every mined chain that is the indexed path. *)

val simulate_timed :
  ?config:config -> Hmm.t -> Psm_trace.Functional_trace.t -> result * float
(** Result plus wall-clock seconds (Table III's IP+PSMs overhead
    accounting). *)

(** Streaming interface for cycle-by-cycle co-simulation with a live IP
    model ({!simulate} is implemented on top of it). *)
module Stepper : sig
  type t

  val create : ?config:config -> ?steps:int -> ?reference:bool -> Hmm.t -> t
  (** Resets the HMM's banned transitions. [reference] as in {!simulate};
      [steps] is the expected cycle count, used only by the cost model
      when [reference] is omitted. *)

  val step : t -> Psm_bits.Bits.t array -> float * int
  (** [step t sample] consumes one full interface sample (inputs then
      outputs, in interface order) and returns (power estimate, current
      PSM state id or -1 when desynchronized). *)

  val classify : t -> Psm_bits.Bits.t array -> int option
  (** The proposition the model's table assigns to a sample ([None] =
      unknown behaviour) — what {!step} feeds the state machine. *)

  val step_classified : t -> hamming:float -> int option -> float * int
  (** Proposition-level step: the state machine after classification.
      [step t sample] ≡ [step_classified t ~hamming:(input Hamming
      distance to the previous sample) (classify t sample)] — serve
      sessions streaming classified observations take this entry and are
      bit-identical to sample-level stepping of the same trace. *)

  val cycles : t -> int
  val wrong_instants : t -> int
  val resync_events : t -> int

  type portable_mode =
    [ `Unstarted
    | `Synced of int * (int * int) list
      (** state row, live cursors as (alternative index, position) into
          that row's assertion *)
    | `Desynced of int  (** origin state row *) ]

  type portable = {
    p_prev_inputs : string array option;
        (** previous interface sample as big-endian binary strings, in
            interface order *)
    p_mode : portable_mode;
    p_entered_via : (int * int) option;  (** (src row, dst row) *)
    p_progressed : bool;
    p_cycles : int;
    p_wrong_instants : int;
    p_resync_events : int;
    p_bans : (int * int) list;  (** (src row, dst row), oldest first *)
  }
  (** The stepper's complete resumable state as plain data: mode and
      live cursors, previous inputs, counters, and the ordered log of A
      bans since the last reset. This — not [Marshal] bytes, which are
      unsafe to decode from an untrusted source — is what session
      checkpoints serialize. *)

  val export : t -> portable

  val import :
    ?config:config -> ?steps:int -> ?reference:bool -> Hmm.t -> portable ->
    (t, string) Stdlib.result
  (** A stepper continuing exactly where {!export} was taken: every
      field is validated against [hmm]'s model (row bounds, cursor
      alternative/position bounds, ban-log bounds, sample widths) before
      any state is built, then the logged bans are replayed in order
      onto [hmm] (whose bans are reset first), reproducing the banned A
      float-for-float — stepping the imported stepper is bit-identical
      to never having stopped. [hmm] must be (a {!Hmm.copy} of) the
      model the export was taken on. *)
end
