type t = { interface : Psm_trace.Interface.t; atoms : Atomic.t array }

let create interface atom_list =
  let sorted = List.sort_uniq Atomic.compare atom_list in
  { interface; atoms = Array.of_list sorted }

let interface t = t.interface
let size t = Array.length t.atoms

let atom t i =
  if i < 0 || i >= size t then invalid_arg "Vocabulary.atom: index out of range";
  t.atoms.(i)

let atoms t = Array.copy t.atoms

let eval_sample t sample = Array.map (fun a -> Atomic.eval a sample) t.atoms

let packed_size t = (Array.length t.atoms + 7) / 8

let eval_into t buf sample =
  let n = Array.length t.atoms in
  if Bytes.length buf <> (n + 7) / 8 then
    invalid_arg "Vocabulary.eval_into: buffer size mismatch";
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  for i = 0 to n - 1 do
    if Atomic.eval (Array.unsafe_get t.atoms i) sample then begin
      let j = i lsr 3 in
      Bytes.unsafe_set buf j
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get buf j) lor (1 lsl (i land 7))))
    end
  done

let key_of_sample t sample =
  let buf = Bytes.create (packed_size t) in
  eval_into t buf sample;
  (* [buf] is uniquely owned and never mutated again. *)
  Bytes.unsafe_to_string buf

let row_key row =
  let n = Array.length row in
  let bytes = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri
    (fun i b ->
      if b then
        Bytes.set bytes (i / 8)
          (Char.chr (Char.code (Bytes.get bytes (i / 8)) lor (1 lsl (i mod 8)))))
    row;
  Bytes.unsafe_to_string bytes

let unpack_key t key =
  if String.length key <> packed_size t then
    invalid_arg "Vocabulary.unpack_key: key size mismatch";
  Array.init (Array.length t.atoms) (fun i ->
      Char.code key.[i lsr 3] land (1 lsl (i land 7)) <> 0)

let literals_of_key t key =
  let row = unpack_key t key in
  Array.to_list (Array.mapi (fun i b -> (t.atoms.(i), b)) row)

let pp fmt t =
  Format.fprintf fmt "@[<v>vocabulary of %d atoms:@," (size t);
  Array.iteri
    (fun i a -> Format.fprintf fmt "  a%d: %a@," i (Atomic.pp t.interface) a)
    t.atoms;
  Format.fprintf fmt "@]"
