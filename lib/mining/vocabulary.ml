type t = { interface : Psm_trace.Interface.t; atoms : Atomic.t array }

let create interface atom_list =
  let sorted = List.sort_uniq Atomic.compare atom_list in
  { interface; atoms = Array.of_list sorted }

let interface t = t.interface
let size t = Array.length t.atoms

let atom t i =
  if i < 0 || i >= size t then invalid_arg "Vocabulary.atom: index out of range";
  t.atoms.(i)

let atoms t = Array.copy t.atoms

let eval_sample t sample = Array.map (fun a -> Atomic.eval a sample) t.atoms

let row_key row =
  let n = Array.length row in
  let bytes = Bytes.make ((n + 7) / 8) '\000' in
  Array.iteri
    (fun i b ->
      if b then
        Bytes.set bytes (i / 8)
          (Char.chr (Char.code (Bytes.get bytes (i / 8)) lor (1 lsl (i mod 8)))))
    row;
  Bytes.unsafe_to_string bytes

let pp fmt t =
  Format.fprintf fmt "@[<v>vocabulary of %d atoms:@," (size t);
  Array.iteri
    (fun i a -> Format.fprintf fmt "  a%d: %a@," i (Atomic.pp t.interface) a)
    t.atoms;
  Format.fprintf fmt "@]"
