(** Phase 2 of the mining procedure: propositions and proposition traces.

    A proposition is the AND-composition of one complete row of the truth
    matrix [m] — every atom of the vocabulary appears either positively or
    negated — so distinct propositions are mutually exclusive and, over the
    rows actually observed, exactly one holds at each instant (paper
    Def. 2's requirement on [Prop]).

    Propositions are interned in a {!Table}: equal truth rows are the same
    proposition across all traces of the same IP, which is what later
    makes temporal assertions comparable across PSMs during [join]. *)

module Table : sig
  type t

  val create : Vocabulary.t -> t
  val vocabulary : t -> Vocabulary.t

  val prop_count : t -> int

  val classify_or_add : t -> Psm_bits.Bits.t array -> int
  (** Proposition id of the sample's truth row, interning it if new
      (training-time use). *)

  val classify : t -> Psm_bits.Bits.t array -> int option
  (** [None] when the row was never seen during training — an unknown
      functional behaviour (simulation-time use). *)

  val intern_row : t -> bool array -> int
  (** Intern a truth row directly (model reload); the row must have
      exactly [Vocabulary.size] entries. Idempotent on equal rows. *)

  val row : t -> int -> bool array
  (** The truth row of a proposition. *)

  val true_atoms : t -> int -> Atomic.t list

  val name : t -> int -> string
  (** Stable display name in first-interned order: p_a, p_b, …, p_z,
      p_aa, … *)

  val pp_prop : t -> Format.formatter -> int -> unit
  (** Renders the positive literals, Fig. 3 style:
      [p_a: we = 1 & ce = 1]. *)
end

type t
(** A proposition trace Γ: one proposition id per instant. *)

val of_functional : ?pool:Psm_par.Pool.t -> Table.t -> Psm_trace.Functional_trace.t -> t
(** Classifies (and interns) every instant. On traces long enough to be
    worth it, truth rows are packed in parallel over [pool] (default:
    the global {!Psm_par} pool) and then interned sequentially in time
    order — proposition ids, and hence Γ, are identical to a
    [PSM_JOBS=1] run. *)

val table : t -> Table.t
val length : t -> int
val prop_at : t -> int -> int

val prop_ids : t -> int array
(** A copy of Γ as raw ids. *)

val segments : t -> (int * int * int) list
(** Maximal constant runs as [(prop, start, stop)] triples, in order —
    a convenience view used by tests and reports. Cached: the RLE
    classification path produces it as a by-product, other paths compute
    it once on first use. *)

val iter_prop_runs : t -> start:int -> stop:int -> (int -> start:int -> len:int -> unit) -> unit
(** [iter_prop_runs t ~start ~stop f] calls [f prop ~start ~len] once per
    maximal constant stretch of Γ intersected with the inclusive window
    [start, stop], in time order. O(log #segments + #covered segments)
    via the cached segment view. *)

val holds_exactly_one : t -> Psm_trace.Functional_trace.t -> bool
(** Validates the Def. 2 invariant against the originating functional
    trace: at every instant the recorded proposition (and no other
    interned proposition) holds. *)

val pp : Format.formatter -> t -> unit
