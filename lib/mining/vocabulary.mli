(** The mined atomic-proposition vocabulary of an IP: the fixed, ordered
    set of atoms over which the truth matrix [m] (paper Sec. III-A) and all
    propositions are expressed. *)

type t

val create : Psm_trace.Interface.t -> Atomic.t list -> t
(** Deduplicates and orders the atoms canonically. *)

val interface : t -> Psm_trace.Interface.t
val size : t -> int
val atom : t -> int -> Atomic.t
val atoms : t -> Atomic.t array

val eval_sample : t -> Psm_bits.Bits.t array -> bool array
(** One row of the truth matrix: the truth of every atom on the sample. *)

val packed_size : t -> int
(** Bytes needed to pack one truth row: [ceil (size / 8)]. *)

val eval_into : t -> Bytes.t -> Psm_bits.Bits.t array -> unit
(** [eval_into t buf sample] evaluates every atom on the sample directly
    into the packed row buffer [buf] (bit [i] of the row is bit
    [i mod 8] of byte [i / 8], as in {!row_key}), without allocating.
    [buf] must be exactly [packed_size t] bytes. *)

val key_of_sample : t -> Psm_bits.Bits.t array -> string
(** The packed truth row of a sample as a fresh key:
    [key_of_sample t s = row_key (eval_sample t s)], with a single
    allocation. *)

val row_key : bool array -> string
(** Packed representation of a truth row, usable as a hash key: two rows
    have equal keys iff they are equal. *)

val unpack_key : t -> string -> bool array
(** Inverse of {!row_key} for keys of this vocabulary's size. *)

val literals_of_key : t -> string -> (Atomic.t * bool) list
(** The packed truth row as a conjunction of polarized atoms, in atom
    order: the semantic content of the proposition behind the key, ready
    for a theory solver. Raises [Invalid_argument] on a key of the wrong
    size. *)

val pp : Format.formatter -> t -> unit
