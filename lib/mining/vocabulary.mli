(** The mined atomic-proposition vocabulary of an IP: the fixed, ordered
    set of atoms over which the truth matrix [m] (paper Sec. III-A) and all
    propositions are expressed. *)

type t

val create : Psm_trace.Interface.t -> Atomic.t list -> t
(** Deduplicates and orders the atoms canonically. *)

val interface : t -> Psm_trace.Interface.t
val size : t -> int
val atom : t -> int -> Atomic.t
val atoms : t -> Atomic.t array

val eval_sample : t -> Psm_bits.Bits.t array -> bool array
(** One row of the truth matrix: the truth of every atom on the sample. *)

val row_key : bool array -> string
(** Packed representation of a truth row, usable as a hash key: two rows
    have equal keys iff they are equal. *)

val pp : Format.formatter -> t -> unit
