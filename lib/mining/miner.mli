(** Phase 1 of the mining procedure (paper Sec. III-A, after [9]): extract
    atomic propositions that hold frequently — and stably, i.e. over
    subtraces rather than flickering — on a set of functional traces.

    Candidates are
    - [signal = constant] for every value a signal exhibits, and
    - [signal ⋈ signal] (=, <, >) for same-width signal pairs,

    filtered by three criteria over the training traces:
    - *support*: the fraction of instants where the atom holds must be at
      least [min_support];
    - *stability*: the mean length of its runs of consecutive true instants
      must be at least [min_mean_run];
    - *uniform stability*: at most [max_short_run_fraction] of its runs may
      be shorter than [min_mean_run]. Mean run length alone is fooled by an
      atom that is rock-stable in one workload phase and flickers every
      cycle in another (e.g. a comparison between a random data bus and a
      registered output); the short-run fraction catches exactly that.

    Together the stability criteria are what "holds in a set of subtraces"
    (paper Sec. III-A) means operationally.

    The [support] of the *false* polarity needs no separate atom: the
    proposition construction of {!Prop_trace} works on complete truth rows,
    so a single atom distinguishes both polarities. *)

type config = {
  min_support : float;  (** In (0, 1]; default 0.01. *)
  min_mean_run : float;  (** Default 4.0. *)
  max_consts_per_signal : int;  (** Top-k by support; default 4. *)
  max_short_run_fraction : float;  (** Default 0.25. *)
  max_const_signal_width : int;
      (** Signals wider than this never produce [signal = constant] atoms:
          enumerating the values of a wide data bus both explodes the
          proposition space and encodes workload data into the PSM
          structure. Default 32. *)
  mine_pairs : bool;  (** Default true. *)
  max_pair_signal_width : int;  (** Default 64. *)
}

val default : config

val mine_vocabulary :
  ?pool:Psm_par.Pool.t ->
  ?config:config ->
  Psm_trace.Functional_trace.t list ->
  Vocabulary.t
(** One shared vocabulary over all training traces (they must share an
    interface). Raises [Invalid_argument] on an empty list or mismatched
    interfaces.

    Pair mining is a single fused pass per chunk of signal pairs —
    every sample pays one three-way comparison per pair, scoring the
    [=], [<] and [>] atoms at once — and chunks are fanned out over
    [pool] (default: the global {!Psm_par} pool). Chunk results merge
    in pair order, so the mined vocabulary is identical at any job
    count. *)

type atom_stats = {
  atom : Atomic.t;
  support : float;
  mean_run : float;
  occurrences : int;
  runs : int;
  short_runs : int;  (** Runs shorter than [min_mean_run]. *)
}

val candidate_stats :
  ?pool:Psm_par.Pool.t ->
  ?config:config ->
  Psm_trace.Functional_trace.t list ->
  atom_stats list
(** The scored candidate list before filtering — kept for inspection and
    for the mining-threshold ablation. *)

(** {1 Push-mode mining}

    The same counters the batch passes use, fed one sample at a time —
    the vocabulary-mining half of the streaming trainer. Feeding every
    training trace in order (with {!Incremental.end_trace} between and
    after them) reproduces {!mine_vocabulary} bit-for-bit. *)
module Incremental : sig
  type t

  val create : ?config:config -> Psm_trace.Interface.t -> t
  val observe : t -> Psm_bits.Bits.t array -> unit
  (** One training sample, in time order. O(#narrow signals + #pairs). *)

  val observe_run : t -> Psm_bits.Bits.t array -> int -> unit
  (** [observe_run t sample len] is exactly [len] successive
      [observe t sample] calls, collapsed to one bulk counter update per
      signal and one comparison per pair. Raises [Invalid_argument] on
      [len <= 0]. *)

  val end_trace : t -> unit
  (** Close the current trace: open runs end here and cannot bridge into
      the next trace's samples. *)

  val interface : t -> Psm_trace.Interface.t
  val total : t -> int
  (** Samples observed so far. *)

  val candidate_stats : t -> atom_stats list
  (** Scored candidates so far, in batch order; reentrant (observation
      may continue afterwards). *)

  val vocabulary : t -> Vocabulary.t
  (** Filter + cap {!candidate_stats} exactly as {!mine_vocabulary}
      does. Raises [Invalid_argument] before any sample was observed. *)
end

(** Occurrence and run counting for one signal's values, with periodic
    pruning of hapax values so wide random buses cannot blow up memory.
    Exposed for testing; {!mine_vocabulary} is the real entry point. *)
module Value_counter : sig
  type cell = {
    mutable occ : int;
    mutable runs : int;
    mutable short_runs : int;
    mutable run_len : int;
    mutable last : int;
  }

  type t

  val create : ?prune_at:int -> short_below:int -> unit -> t
  (** [prune_at] (default 100_000) caps the number of distinct tracked
      values: when exceeded, values observed only once are dropped. *)

  val observe : t -> int -> Psm_bits.Bits.t -> unit
  (** [observe t time v]: the signal held value [v] at [time]. Times must
      be strictly increasing across calls. *)

  val observe_run : t -> int -> Psm_bits.Bits.t -> int -> unit
  (** [observe_run t time v len] is exactly [len] successive [observe]s
      of [v] at [time, time + len): the repeated cycles collapse to bulk
      cell arithmetic, falling back to the per-cycle loop when hapax
      pruning could interfere. *)

  val fold : (Psm_bits.Bits.t -> cell -> 'a -> 'a) -> t -> 'a -> 'a
  (** Folds over snapshot cells with each value's still-open final run
      closed; never mutates the counter, so folding is reentrant and
      [observe] may continue afterwards. *)
end
