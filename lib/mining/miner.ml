module Bits = Psm_bits.Bits
module Functional_trace = Psm_trace.Functional_trace
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal
module Runs = Psm_trace.Runs

type config = {
  min_support : float;
  min_mean_run : float;
  max_consts_per_signal : int;
  max_short_run_fraction : float;
  max_const_signal_width : int;
  mine_pairs : bool;
  max_pair_signal_width : int;
}

let default =
  { min_support = 0.01;
    min_mean_run = 4.0;
    max_consts_per_signal = 4;
    max_short_run_fraction = 0.25;
    max_const_signal_width = 32;
    mine_pairs = true;
    max_pair_signal_width = 64 }

type atom_stats = {
  atom : Atomic.t;
  support : float;
  mean_run : float;
  occurrences : int;
  runs : int;
  short_runs : int;
}

let check_traces traces =
  match traces with
  | [] -> invalid_arg "Miner: no training traces"
  | first :: rest ->
      let iface = Functional_trace.interface first in
      List.iter
        (fun t ->
          if not (Interface.equal (Functional_trace.interface t) iface) then
            invalid_arg "Miner: traces with different interfaces")
        rest;
      iface

(* Occurrence and run counting for one signal's values, with periodic
   pruning of hapax values so wide random buses cannot blow up memory. *)
module Value_counter = struct
  type cell = {
    mutable occ : int;
    mutable runs : int;
    mutable short_runs : int;
    mutable run_len : int;
    mutable last : int;
  }

  type t = {
    table : (Bits.t, cell) Hashtbl.t;
    short_below : int;
    prune_at : int;
  }

  let create ?(prune_at = 100_000) ~short_below () =
    { table = Hashtbl.create 256; short_below; prune_at }

  let observe t time v =
    (match Hashtbl.find_opt t.table v with
    | Some c ->
        c.occ <- c.occ + 1;
        if c.last <> time - 1 then begin
          if c.run_len < t.short_below then c.short_runs <- c.short_runs + 1;
          c.runs <- c.runs + 1;
          c.run_len <- 1
        end
        else c.run_len <- c.run_len + 1;
        c.last <- time
    | None ->
        Hashtbl.add t.table v { occ = 1; runs = 1; short_runs = 0; run_len = 1; last = time });
    if Hashtbl.length t.table > t.prune_at then begin
      (* Values seen once so far can never dominate a long trace; dropping
         them only risks losing atoms far below any sane support level. *)
      let doomed =
        Hashtbl.fold (fun v c acc -> if c.occ <= 1 then v :: acc else acc) t.table []
      in
      List.iter (Hashtbl.remove t.table) doomed
    end

  (* [observe_run t time v len]: the signal held [v] over the [len]
     instants [time, time + len). Exact w.r.t. [len] successive
     [observe] calls: the first cycle goes through [observe] (including
     its prune), and the remaining [len - 1] cycles only ever extend the
     just-touched cell's run — occ, run_len and last advance by bulk
     arithmetic, and the reference's per-cycle prune checks in that
     stretch are no-ops (no new hapax cell appears between them). When
     the table is beyond [prune_at], or the first observe's prune evicted
     [v] itself, fall back to the literal per-cycle loop. *)
  let observe_run t time v len =
    if len = 1 then observe t time v
    else begin
      observe t time v;
      if Hashtbl.length t.table <= t.prune_at then
        match Hashtbl.find_opt t.table v with
        | Some c when c.last = time ->
            c.occ <- c.occ + len - 1;
            c.run_len <- c.run_len + len - 1;
            c.last <- time + len - 1
        | _ ->
            for i = 1 to len - 1 do
              observe t (time + i) v
            done
      else
        for i = 1 to len - 1 do
          observe t (time + i) v
        done
    end

  let fold f t init =
    (* Each value's final run is still open; close it into a snapshot
       cell rather than mutating the live one, so folding is reentrant
       (folding twice gives identical results) and observation may
       continue correctly afterwards. *)
    Hashtbl.fold
      (fun v c acc ->
        let short_runs =
          if c.run_len < t.short_below then c.short_runs + 1 else c.short_runs
        in
        f v { c with short_runs } acc)
      t.table init
end

let total_length traces =
  List.fold_left (fun acc t -> acc + Functional_trace.length t) 0 traces

let stats_of ~total atom occ runs short_runs =
  { atom;
    support = float_of_int occ /. float_of_int total;
    mean_run = (if runs = 0 then 0. else float_of_int occ /. float_of_int runs);
    occurrences = occ;
    runs;
    short_runs }

let narrow_signal config iface s =
  (Interface.signal iface s).Signal.width <= config.max_const_signal_width

let short_below_of config = int_of_float (ceil config.min_mean_run)

(* Candidate extraction from finished per-signal counters. The fold
   order (and hence the candidate list order) is a function of the
   observation sequence only, so any path that feeds the counters the
   same samples in the same order yields the same list. *)
let consts_of_counters ~total counters =
  let candidates = ref [] in
  Array.iteri
    (fun s counter ->
      Value_counter.fold
        (fun v (c : Value_counter.cell) () ->
          candidates :=
            stats_of ~total (Atomic.eq_const s v) c.occ c.runs c.short_runs :: !candidates)
        counter ())
    counters;
  !candidates

let const_candidates config traces iface total =
  Psm_obs.span "mine.consts" @@ fun () ->
  let arity = Interface.arity iface in
  let short_below = short_below_of config in
  let counters = Array.init arity (fun _ -> Value_counter.create ~short_below ()) in
  let narrow = narrow_signal config iface in
  (* Offset the per-trace times so that runs cannot bridge traces. *)
  let offset = ref 0 in
  List.iter
    (fun trace ->
      if Runs.use () then
        (* A run of identical samples is a run of identical values on
           every signal; one bulk observation per signal per run. *)
        Functional_trace.iter_runs
          (fun ~start ~len sample ->
            Array.iteri
              (fun s v ->
                if narrow s then
                  Value_counter.observe_run counters.(s) (!offset + start) v len)
              sample)
          trace
      else
        Functional_trace.iter
          (fun time sample ->
            Array.iteri
              (fun s v -> if narrow s then Value_counter.observe counters.(s) (!offset + time) v)
              sample)
          trace;
      offset := !offset + Functional_trace.length trace + 2)
    traces;
  consts_of_counters ~total counters

(* Mutable run accumulator mirroring [predicate_stats]'s counters, one per
   atom, so a single trace pass can score many atoms at once. *)
module Run_acc = struct
  type t = {
    mutable occ : int;
    mutable runs : int;
    mutable short_runs : int;
    mutable run_len : int;
    mutable prev : bool;
  }

  let create () = { occ = 0; runs = 0; short_runs = 0; run_len = 0; prev = false }

  let close_pending ~short_below a =
    if a.run_len > 0 && a.run_len < short_below then a.short_runs <- a.short_runs + 1

  let step ~short_below a holds =
    if holds then begin
      a.occ <- a.occ + 1;
      if a.prev then a.run_len <- a.run_len + 1
      else begin
        close_pending ~short_below a;
        a.runs <- a.runs + 1;
        a.run_len <- 1
      end
    end;
    a.prev <- holds

  (* [len] successive [step]s with the same truth value, collapsed to
     bulk arithmetic. Exact: a true stretch extends (or opens, closing
     any pending short run) one run by [len]; a false stretch only
     clears [prev] — short-run closing stays lazy, as in [step]. *)
  let step_run ~short_below a holds len =
    if len = 1 then step ~short_below a holds
    else if holds then begin
      a.occ <- a.occ + len;
      if a.prev then a.run_len <- a.run_len + len
      else begin
        close_pending ~short_below a;
        a.runs <- a.runs + 1;
        a.run_len <- len
      end;
      a.prev <- true
    end
    else a.prev <- false

  (* Trace boundary: an open run ends here and must not bridge traces. *)
  let boundary ~short_below a =
    if a.prev then begin
      close_pending ~short_below a;
      a.run_len <- 0;
      a.prev <- false
    end
end

(* One fused pass over all traces scoring every (pair x {=,<,>}) atom of
   [pairs]: each sample costs one three-way [Bits.compare] per pair
   instead of three predicate evaluations in three separate trace
   passes. Produces exactly [predicate_stats]'s counts per atom. *)
(* Stats list construction shared by the chunked batch path and the
   incremental accumulator: ⟨=, <, >⟩ per pair, in pair order. *)
let pair_stats_list ~total (pairs : (int * int) array) eqs lts gts =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun j (a, b) ->
            List.map
              (fun (cmp, (acc : Run_acc.t)) ->
                stats_of ~total (Atomic.compare_signals cmp a b) acc.Run_acc.occ
                  acc.Run_acc.runs acc.Run_acc.short_runs)
              [ (Atomic.Eq, eqs.(j)); (Atomic.Lt, lts.(j)); (Atomic.Gt, gts.(j)) ])
          pairs))

let pair_chunk_stats ~short_below ~total traces (pairs : (int * int) array) =
  Psm_obs.span "mine.pair_chunk" @@ fun () ->
  let k = Array.length pairs in
  let eqs = Array.init k (fun _ -> Run_acc.create ()) in
  let lts = Array.init k (fun _ -> Run_acc.create ()) in
  let gts = Array.init k (fun _ -> Run_acc.create ()) in
  List.iter
    (fun trace ->
      if Runs.use () then
        (* Identical samples compare identically: one three-way compare
           per pair per run, bulk-stepped over the run length. *)
        Functional_trace.iter_runs
          (fun ~start:_ ~len sample ->
            for j = 0 to k - 1 do
              let a, b = Array.unsafe_get pairs j in
              let c = Bits.compare (Array.unsafe_get sample a) (Array.unsafe_get sample b) in
              Run_acc.step_run ~short_below (Array.unsafe_get eqs j) (c = 0) len;
              Run_acc.step_run ~short_below (Array.unsafe_get lts j) (c < 0) len;
              Run_acc.step_run ~short_below (Array.unsafe_get gts j) (c > 0) len
            done)
          trace
      else
        Functional_trace.iter
          (fun _ sample ->
            for j = 0 to k - 1 do
              let a, b = Array.unsafe_get pairs j in
              let c = Bits.compare (Array.unsafe_get sample a) (Array.unsafe_get sample b) in
              Run_acc.step ~short_below (Array.unsafe_get eqs j) (c = 0);
              Run_acc.step ~short_below (Array.unsafe_get lts j) (c < 0);
              Run_acc.step ~short_below (Array.unsafe_get gts j) (c > 0)
            done)
          trace;
      Array.iter (Run_acc.boundary ~short_below) eqs;
      Array.iter (Run_acc.boundary ~short_below) lts;
      Array.iter (Run_acc.boundary ~short_below) gts)
    traces;
  Array.iter (Run_acc.close_pending ~short_below) eqs;
  Array.iter (Run_acc.close_pending ~short_below) lts;
  Array.iter (Run_acc.close_pending ~short_below) gts;
  pair_stats_list ~total pairs eqs lts gts

let signal_pairs config iface =
  let signals = Interface.signals iface in
  let pairs = ref [] in
  Array.iteri
    (fun a (sa : Signal.t) ->
      Array.iteri
        (fun b (sb : Signal.t) ->
          if a < b && sa.width = sb.width && sa.width > 1
             && sa.width <= config.max_pair_signal_width
          then pairs := (a, b) :: !pairs)
        signals)
    signals;
  Array.of_list !pairs

let pair_candidates ?pool config traces iface total =
  Psm_obs.span "mine.pairs" @@ fun () ->
  let pair_arr = signal_pairs config iface in
  let npairs = Array.length pair_arr in
  if npairs = 0 then []
  else begin
    let short_below = short_below_of config in
    (* Materialize the lazy run caches before fanning out: domains share
       the trace values, and the cache write is not synchronized. *)
    if Runs.use () then
      List.iter (fun trace -> ignore (Functional_trace.runs trace)) traces;
    (* Parallelize by chunking the pair set across domains; every chunk
       makes its own fused trace pass, and chunk results concatenate in
       pair order, so the output is identical at any job count. *)
    let jobs = min (Psm_par.effective_jobs ?pool ()) npairs in
    let chunk = (npairs + jobs - 1) / jobs in
    let nchunks = (npairs + chunk - 1) / chunk in
    let chunks =
      Array.init nchunks (fun c ->
          Array.sub pair_arr (c * chunk) (min chunk (npairs - (c * chunk))))
    in
    Psm_par.parallel_map_array ?pool (pair_chunk_stats ~short_below ~total traces) chunks
    |> Array.to_list |> List.concat
  end

let candidate_stats ?pool ?(config = default) traces =
  let iface = check_traces traces in
  let total = total_length traces in
  if total = 0 then invalid_arg "Miner: empty training traces";
  let consts = const_candidates config traces iface total in
  let pairs =
    if config.mine_pairs then pair_candidates ?pool config traces iface total else []
  in
  consts @ pairs

let passes config s =
  s.support >= config.min_support
  && s.mean_run >= config.min_mean_run
  && (s.runs = 0
     || float_of_int s.short_runs /. float_of_int s.runs
        <= config.max_short_run_fraction)

(* Filtering and per-signal capping over a scored candidate list; shared
   verbatim by the batch and incremental paths so both produce the same
   vocabulary from the same statistics. *)
let vocabulary_of_candidates config iface all =
  let kept = List.filter (passes config) all in
  Psm_obs.count "mine.candidates" (List.length all);
  Psm_obs.count "mine.atoms_kept" (List.length kept);
  (* Cap the per-signal constant atoms at the top-k by support. *)
  let by_signal = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.atom.Atomic.rhs with
      | Atomic.Const _ ->
          let key = s.atom.Atomic.lhs in
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_signal key) in
          Hashtbl.replace by_signal key (s :: existing)
      | Atomic.Sig _ -> ())
    kept;
  let capped_consts =
    Hashtbl.fold
      (fun _ entries acc ->
        let sorted =
          List.sort (fun x y -> Float.compare y.support x.support) entries
        in
        List.filteri (fun i _ -> i < config.max_consts_per_signal) sorted @ acc)
      by_signal []
  in
  let pair_atoms =
    List.filter
      (fun s -> match s.atom.Atomic.rhs with Atomic.Sig _ -> true | Atomic.Const _ -> false)
      kept
  in
  Vocabulary.create iface (List.map (fun s -> s.atom) (capped_consts @ pair_atoms))

let mine_vocabulary ?pool ?(config = default) traces =
  Psm_obs.span "mine.vocabulary" @@ fun () ->
  let iface = check_traces traces in
  let all = candidate_stats ?pool ~config traces in
  vocabulary_of_candidates config iface all

(* Push-mode candidate scoring: the same counters the batch passes use,
   fed one sample at a time. Feeding every training trace in order (with
   [end_trace] between them) leaves every counter in the exact state the
   batch passes produce, so [vocabulary] is bit-identical to
   {!mine_vocabulary} — asserted by a QCheck property in the tests. *)
module Incremental = struct
  type t = {
    config : config;
    iface : Interface.t;
    counters : Value_counter.t array;
    narrow : bool array;
    pairs : (int * int) array;
    eqs : Run_acc.t array;
    lts : Run_acc.t array;
    gts : Run_acc.t array;
    short_below : int;
    mutable time : int; (* next global instant (trace gaps = 2) *)
    mutable total : int;
  }

  let create ?(config = default) iface =
    let arity = Interface.arity iface in
    let short_below = short_below_of config in
    let pairs = if config.mine_pairs then signal_pairs config iface else [||] in
    let k = Array.length pairs in
    { config;
      iface;
      counters = Array.init arity (fun _ -> Value_counter.create ~short_below ());
      narrow = Array.init arity (narrow_signal config iface);
      pairs;
      eqs = Array.init k (fun _ -> Run_acc.create ());
      lts = Array.init k (fun _ -> Run_acc.create ());
      gts = Array.init k (fun _ -> Run_acc.create ());
      short_below;
      time = 0;
      total = 0 }

  let interface t = t.iface
  let total t = t.total

  let observe t sample =
    if Array.length sample <> Array.length t.counters then
      invalid_arg "Miner.Incremental.observe: sample arity mismatch";
    Array.iteri
      (fun s v ->
        if Array.unsafe_get t.narrow s then Value_counter.observe t.counters.(s) t.time v)
      sample;
    let short_below = t.short_below in
    for j = 0 to Array.length t.pairs - 1 do
      let a, b = Array.unsafe_get t.pairs j in
      let c = Bits.compare (Array.unsafe_get sample a) (Array.unsafe_get sample b) in
      Run_acc.step ~short_below (Array.unsafe_get t.eqs j) (c = 0);
      Run_acc.step ~short_below (Array.unsafe_get t.lts j) (c < 0);
      Run_acc.step ~short_below (Array.unsafe_get t.gts j) (c > 0)
    done;
    t.time <- t.time + 1;
    t.total <- t.total + 1

  (* [observe_run t sample len]: [len] successive [observe]s of the same
     sample, collapsed to one bulk observation per counter and one
     comparison + bulk step per pair. *)
  let observe_run t sample len =
    if len <= 0 then invalid_arg "Miner.Incremental.observe_run: non-positive length";
    if len = 1 then observe t sample
    else begin
      if Array.length sample <> Array.length t.counters then
        invalid_arg "Miner.Incremental.observe_run: sample arity mismatch";
      Array.iteri
        (fun s v ->
          if Array.unsafe_get t.narrow s then
            Value_counter.observe_run t.counters.(s) t.time v len)
        sample;
      let short_below = t.short_below in
      for j = 0 to Array.length t.pairs - 1 do
        let a, b = Array.unsafe_get t.pairs j in
        let c = Bits.compare (Array.unsafe_get sample a) (Array.unsafe_get sample b) in
        Run_acc.step_run ~short_below (Array.unsafe_get t.eqs j) (c = 0) len;
        Run_acc.step_run ~short_below (Array.unsafe_get t.lts j) (c < 0) len;
        Run_acc.step_run ~short_below (Array.unsafe_get t.gts j) (c > 0) len
      done;
      t.time <- t.time + len;
      t.total <- t.total + len
    end

  (* Trace boundary: runs must not bridge traces. The +2 time gap breaks
     const-value runs exactly as the batch pass's per-trace offset does. *)
  let end_trace t =
    let short_below = t.short_below in
    Array.iter (Run_acc.boundary ~short_below) t.eqs;
    Array.iter (Run_acc.boundary ~short_below) t.lts;
    Array.iter (Run_acc.boundary ~short_below) t.gts;
    t.time <- t.time + 2

  (* Candidates in batch order: consts (counter fold order) then pairs
     (pair order). Run_accs are snapshotted before the pending-run close
     so scoring is reentrant and observation may continue. *)
  let candidate_stats t =
    let total = t.total in
    let consts = consts_of_counters ~total t.counters in
    let snap (a : Run_acc.t array) = Array.map (fun r -> { r with Run_acc.occ = r.Run_acc.occ }) a in
    let eqs = snap t.eqs and lts = snap t.lts and gts = snap t.gts in
    let short_below = t.short_below in
    Array.iter (Run_acc.close_pending ~short_below) eqs;
    Array.iter (Run_acc.close_pending ~short_below) lts;
    Array.iter (Run_acc.close_pending ~short_below) gts;
    consts @ pair_stats_list ~total t.pairs eqs lts gts

  let vocabulary t =
    if t.total = 0 then invalid_arg "Miner: empty training traces";
    vocabulary_of_candidates t.config t.iface (candidate_stats t)
end
