module Bits = Psm_bits.Bits
module Functional_trace = Psm_trace.Functional_trace
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal

type config = {
  min_support : float;
  min_mean_run : float;
  max_consts_per_signal : int;
  max_short_run_fraction : float;
  max_const_signal_width : int;
  mine_pairs : bool;
  max_pair_signal_width : int;
}

let default =
  { min_support = 0.01;
    min_mean_run = 4.0;
    max_consts_per_signal = 4;
    max_short_run_fraction = 0.25;
    max_const_signal_width = 32;
    mine_pairs = true;
    max_pair_signal_width = 64 }

type atom_stats = {
  atom : Atomic.t;
  support : float;
  mean_run : float;
  occurrences : int;
  runs : int;
  short_runs : int;
}

let check_traces traces =
  match traces with
  | [] -> invalid_arg "Miner: no training traces"
  | first :: rest ->
      let iface = Functional_trace.interface first in
      List.iter
        (fun t ->
          if not (Interface.equal (Functional_trace.interface t) iface) then
            invalid_arg "Miner: traces with different interfaces")
        rest;
      iface

(* Occurrence and run counting for one signal's values, with periodic
   pruning of hapax values so wide random buses cannot blow up memory. *)
module Value_counter = struct
  type cell = {
    mutable occ : int;
    mutable runs : int;
    mutable short_runs : int;
    mutable run_len : int;
    mutable last : int;
  }

  type t = {
    table : (Bits.t, cell) Hashtbl.t;
    short_below : int;
    mutable seen : int;
    prune_at : int;
  }

  let create ~short_below =
    { table = Hashtbl.create 256; short_below; seen = 0; prune_at = 100_000 }

  let close_run t c = if c.run_len < t.short_below then c.short_runs <- c.short_runs + 1

  let observe t time v =
    (match Hashtbl.find_opt t.table v with
    | Some c ->
        c.occ <- c.occ + 1;
        if c.last <> time - 1 then begin
          close_run t c;
          c.runs <- c.runs + 1;
          c.run_len <- 1
        end
        else c.run_len <- c.run_len + 1;
        c.last <- time
    | None ->
        Hashtbl.add t.table v { occ = 1; runs = 1; short_runs = 0; run_len = 1; last = time });
    t.seen <- t.seen + 1;
    if Hashtbl.length t.table > t.prune_at then begin
      (* Values seen once so far can never dominate a long trace; dropping
         them only risks losing atoms far below any sane support level. *)
      let doomed =
        Hashtbl.fold (fun v c acc -> if c.occ <= 1 then v :: acc else acc) t.table []
      in
      List.iter (Hashtbl.remove t.table) doomed
    end

  let fold f t init =
    (* Account for each value's still-open final run. *)
    Hashtbl.iter (fun _ c -> close_run t c; c.run_len <- max_int) t.table;
    Hashtbl.fold f t.table init
end

let total_length traces =
  List.fold_left (fun acc t -> acc + Functional_trace.length t) 0 traces

(* Run/occurrence stats of an arbitrary predicate over the traces; runs do
   not continue across trace boundaries. *)
let predicate_stats ~short_below traces pred =
  let occ = ref 0 and runs = ref 0 and short_runs = ref 0 and run_len = ref 0 in
  let close () = if !run_len > 0 && !run_len < short_below then incr short_runs in
  List.iter
    (fun trace ->
      let prev = ref false in
      Functional_trace.iter
        (fun _ sample ->
          let holds = pred sample in
          if holds then begin
            incr occ;
            if not !prev then begin
              close ();
              incr runs;
              run_len := 1
            end
            else incr run_len
          end;
          prev := holds)
        trace;
      (* Trace boundary ends any open run. *)
      if !prev then begin close (); run_len := 0 end)
    traces;
  close ();
  (!occ, !runs, !short_runs)

let stats_of ~total atom occ runs short_runs =
  { atom;
    support = float_of_int occ /. float_of_int total;
    mean_run = (if runs = 0 then 0. else float_of_int occ /. float_of_int runs);
    occurrences = occ;
    runs;
    short_runs }

let const_candidates config traces iface total =
  let arity = Interface.arity iface in
  let short_below = int_of_float (ceil config.min_mean_run) in
  let counters = Array.init arity (fun _ -> Value_counter.create ~short_below) in
  let narrow s = (Interface.signal iface s).Signal.width <= config.max_const_signal_width in
  (* Offset the per-trace times so that runs cannot bridge traces. *)
  let offset = ref 0 in
  List.iter
    (fun trace ->
      Functional_trace.iter
        (fun time sample ->
          Array.iteri
            (fun s v -> if narrow s then Value_counter.observe counters.(s) (!offset + time) v)
            sample)
        trace;
      offset := !offset + Functional_trace.length trace + 2)
    traces;
  let candidates = ref [] in
  Array.iteri
    (fun s counter ->
      Value_counter.fold
        (fun v (c : Value_counter.cell) () ->
          candidates :=
            stats_of ~total (Atomic.eq_const s v) c.occ c.runs c.short_runs :: !candidates)
        counter ())
    counters;
  !candidates

let pair_candidates config traces iface total =
  let signals = Interface.signals iface in
  let pairs = ref [] in
  Array.iteri
    (fun a (sa : Signal.t) ->
      Array.iteri
        (fun b (sb : Signal.t) ->
          if a < b && sa.width = sb.width && sa.width > 1
             && sa.width <= config.max_pair_signal_width
          then pairs := (a, b) :: !pairs)
        signals)
    signals;
  let short_below = int_of_float (ceil config.min_mean_run) in
  List.concat_map
    (fun (a, b) ->
      List.map
        (fun cmp ->
          let atom = Atomic.compare_signals cmp a b in
          let occ, runs, short_runs =
            predicate_stats ~short_below traces (fun s -> Atomic.eval atom s)
          in
          stats_of ~total atom occ runs short_runs)
        [ Atomic.Eq; Atomic.Lt; Atomic.Gt ])
    !pairs

let candidate_stats ?(config = default) traces =
  let iface = check_traces traces in
  let total = total_length traces in
  if total = 0 then invalid_arg "Miner: empty training traces";
  let consts = const_candidates config traces iface total in
  let pairs = if config.mine_pairs then pair_candidates config traces iface total else [] in
  consts @ pairs

let passes config s =
  s.support >= config.min_support
  && s.mean_run >= config.min_mean_run
  && (s.runs = 0
     || float_of_int s.short_runs /. float_of_int s.runs
        <= config.max_short_run_fraction)

let mine_vocabulary ?(config = default) traces =
  let iface = check_traces traces in
  let all = candidate_stats ~config traces in
  let kept = List.filter (passes config) all in
  (* Cap the per-signal constant atoms at the top-k by support. *)
  let by_signal = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.atom.Atomic.rhs with
      | Atomic.Const _ ->
          let key = s.atom.Atomic.lhs in
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_signal key) in
          Hashtbl.replace by_signal key (s :: existing)
      | Atomic.Sig _ -> ())
    kept;
  let capped_consts =
    Hashtbl.fold
      (fun _ entries acc ->
        let sorted =
          List.sort (fun x y -> Float.compare y.support x.support) entries
        in
        List.filteri (fun i _ -> i < config.max_consts_per_signal) sorted @ acc)
      by_signal []
  in
  let pair_atoms =
    List.filter
      (fun s -> match s.atom.Atomic.rhs with Atomic.Sig _ -> true | Atomic.Const _ -> false)
      kept
  in
  Vocabulary.create iface (List.map (fun s -> s.atom) (capped_consts @ pair_atoms))
