(** Atomic propositions (paper Def. 1): logic formulas over the PIs/POs of
    the model with no logic connectives — relations between one signal and
    a constant, or between two signals of equal width (e.g. the paper's
    Fig. 3 atoms [v1 = true], [v2 = false], [v3 > v4]). *)

type comparison = Eq | Lt | Gt

type operand =
  | Const of Psm_bits.Bits.t
  | Sig of int  (** Interface signal index. *)

type t = {
  lhs : int;  (** Interface signal index. *)
  cmp : comparison;
  rhs : operand;
}

val eq_const : int -> Psm_bits.Bits.t -> t
val compare_signals : comparison -> int -> int -> t

val eval : t -> Psm_bits.Bits.t array -> bool
(** Truth of the atom on one functional-trace sample (unsigned
    comparisons). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val negate : t -> t list
(** The negation of the atom as a disjunction of atoms over the same
    operands: unsigned trichotomy gives [¬(a = b) ⇔ a < b ∨ a > b],
    [¬(a < b) ⇔ a = b ∨ a > b] and [¬(a > b) ⇔ a = b ∨ a < b]. [Eq] has
    no single-atom negation in the fragment, hence the list. *)

val pp : Psm_trace.Interface.t -> Format.formatter -> t -> unit
(** Renders like [we = 1] or [wdata > rdata]. *)

val to_string : Psm_trace.Interface.t -> t -> string
