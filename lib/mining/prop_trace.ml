module Functional_trace = Psm_trace.Functional_trace
module Runs = Psm_trace.Runs

module Table = struct
  (* Truth rows are stored packed (one bit per atom, {!Vocabulary.row_key}
     layout): the interning key and the stored row are the same string.
     Classification evaluates atoms straight into a per-table scratch
     buffer, so classifying an already-interned sample allocates
     nothing — on a 500k-instant trace the previous representation
     allocated a [bool array] and a key string per instant. The scratch
     buffer makes a table single-domain; parallel classification goes
     through {!Vocabulary.key_of_sample} (fresh buffers) and the
     sequential interning loop of {!of_functional}. *)
  type t = {
    vocabulary : Vocabulary.t;
    index : (string, int) Hashtbl.t; (* packed truth row -> prop id *)
    mutable rows : string array; (* prop id -> packed truth row *)
    mutable count : int;
    scratch : Bytes.t;
  }

  let create vocabulary =
    { vocabulary;
      index = Hashtbl.create 64;
      rows = Array.make 16 "";
      count = 0;
      scratch = Bytes.create (Vocabulary.packed_size vocabulary) }

  let vocabulary t = t.vocabulary
  let prop_count t = t.count

  let add_key t key =
    if t.count = Array.length t.rows then begin
      let bigger = Array.make (2 * t.count) "" in
      Array.blit t.rows 0 bigger 0 t.count;
      t.rows <- bigger
    end;
    t.rows.(t.count) <- key;
    Hashtbl.add t.index key t.count;
    t.count <- t.count + 1;
    t.count - 1

  let intern_key t key =
    match Hashtbl.find_opt t.index key with
    | Some id -> id
    | None -> add_key t key

  let classify_or_add t sample =
    Vocabulary.eval_into t.vocabulary t.scratch sample;
    (* Ephemeral unsafe view: used only for the lookup below, never
       retained, and [scratch] is not mutated while it is live. *)
    match Hashtbl.find_opt t.index (Bytes.unsafe_to_string t.scratch) with
    | Some id -> id
    | None -> add_key t (Bytes.to_string t.scratch)

  let classify t sample =
    Vocabulary.eval_into t.vocabulary t.scratch sample;
    Hashtbl.find_opt t.index (Bytes.unsafe_to_string t.scratch)

  let intern_row t row =
    if Array.length row <> Vocabulary.size t.vocabulary then
      invalid_arg "Prop_trace.Table.intern_row: row size mismatch";
    intern_key t (Vocabulary.row_key row)

  let check_id t id =
    if id < 0 || id >= t.count then invalid_arg "Prop_trace.Table: unknown proposition id"

  let row t id =
    check_id t id;
    Vocabulary.unpack_key t.vocabulary t.rows.(id)

  let true_atoms t id =
    check_id t id;
    let key = t.rows.(id) in
    let atoms = ref [] in
    for i = 0 to Vocabulary.size t.vocabulary - 1 do
      if Char.code key.[i lsr 3] land (1 lsl (i land 7)) <> 0 then
        atoms := Vocabulary.atom t.vocabulary i :: !atoms
    done;
    List.rev !atoms

  (* p_a .. p_z, p_aa, p_ab, ... *)
  let name t id =
    check_id t id;
    let rec letters n acc =
      let acc = String.make 1 (Char.chr (Char.code 'a' + (n mod 26))) ^ acc in
      if n < 26 then acc else letters ((n / 26) - 1) acc
    in
    "p_" ^ letters id ""

  let pp_prop t fmt id =
    check_id t id;
    let iface = Vocabulary.interface t.vocabulary in
    let positives = true_atoms t id in
    Format.fprintf fmt "%s:" (name t id);
    if positives = [] then Format.fprintf fmt " (all atoms false)"
    else
      List.iteri
        (fun i a ->
          Format.fprintf fmt "%s %a" (if i = 0 then "" else " &") (Atomic.pp iface) a)
        positives
end

type t = {
  table : Table.t;
  ids : int array;
  (* Maximal constant segments as (prop, start, stop), cached: the RLE
     classification path gets them for free, and the per-run consumers
     (flow's emission projection, reports) reuse them. *)
  mutable segs : (int * int * int) array option;
}

(* Parallelism threshold: below this many instants the fan-out overhead
   is not worth paying. Kept low so the determinism tests exercise the
   parallel path on modest traces. *)
let min_parallel_length = 64

let of_functional ?pool table trace =
  Psm_obs.span "mine.classify" @@ fun () ->
  let n = Functional_trace.length trace in
  let before = Table.prop_count table in
  let ids = Array.make n 0 in
  let segs = ref None in
  let jobs = Psm_par.effective_jobs ?pool () in
  let use_rle =
    Runs.use ()
    && (jobs <= 1
       || n < min_parallel_length
       || Runs.count (Functional_trace.runs trace) * jobs <= n)
  in
  if use_rle then begin
    (* One classification per run of identical samples; ids fill in
       bulk, in time order, so interning order (and hence every id)
       matches the sequential per-cycle path. Adjacent runs with equal
       ids (distinct samples, same truth row) merge into one segment. *)
    let rev = ref [] in
    Functional_trace.iter_runs
      (fun ~start ~len sample ->
        let id = Table.classify_or_add table sample in
        Array.fill ids start len id;
        match !rev with
        | (p, s0, _) :: tl when p = id -> rev := (p, s0, start + len - 1) :: tl
        | _ -> rev := (id, start, start + len - 1) :: !rev)
      trace;
    segs := Some (Array.of_list (List.rev !rev))
  end
  else if jobs <= 1 || n < min_parallel_length then
    Functional_trace.iter
      (fun time sample -> ids.(time) <- Table.classify_or_add table sample)
      trace
  else begin
    (* Phase 1 (parallel, pure): pack every instant's truth row into a
       key. Phase 2 (sequential): intern the keys in time order, so ids
       are assigned in first-occurrence order exactly as the sequential
       path assigns them. *)
    let vocabulary = Table.vocabulary table in
    let keys = Array.make n "" in
    let chunk = max 32 ((n + (4 * jobs) - 1) / (4 * jobs)) in
    let chunks = (n + chunk - 1) / chunk in
    ignore
      (Psm_par.parallel_map_array ?pool
         (fun c ->
           let start = c * chunk in
           let stop = min n (start + chunk) - 1 in
           for time = start to stop do
             keys.(time) <-
               Vocabulary.key_of_sample vocabulary
                 (Functional_trace.sample trace ~time)
           done)
         (Array.init chunks Fun.id)
        : unit array);
    for time = 0 to n - 1 do
      ids.(time) <- Table.intern_key table keys.(time)
    done
  end;
  Psm_obs.count "mine.props_interned" (Table.prop_count table - before);
  { table; ids; segs = !segs }

let table t = t.table
let length t = Array.length t.ids

let prop_at t i =
  if i < 0 || i >= length t then invalid_arg "Prop_trace.prop_at: instant out of range";
  t.ids.(i)

let prop_ids t = Array.copy t.ids

let seg_array t =
  match t.segs with
  | Some a -> a
  | None ->
      let n = length t in
      let rec go acc start =
        if start >= n then List.rev acc
        else begin
          let p = t.ids.(start) in
          let stop = ref start in
          while !stop + 1 < n && t.ids.(!stop + 1) = p do incr stop done;
          go ((p, start, !stop) :: acc) (!stop + 1)
        end
      in
      let a = Array.of_list (go [] 0) in
      t.segs <- Some a;
      a

let segments t = Array.to_list (seg_array t)

let iter_prop_runs t ~start ~stop f =
  if start < 0 || stop >= length t || stop < start then
    invalid_arg "Prop_trace.iter_prop_runs: window out of range";
  let segs = seg_array t in
  (* First segment whose stop reaches the window. *)
  let lo = ref 0 and hi = ref (Array.length segs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let _, _, s_stop = segs.(mid) in
    if s_stop < start then lo := mid + 1 else hi := mid
  done;
  let i = ref !lo in
  let continue = ref true in
  while !continue && !i < Array.length segs do
    let p, s_start, s_stop = segs.(!i) in
    if s_start > stop then continue := false
    else begin
      let a = max s_start start and b = min s_stop stop in
      f p ~start:a ~len:(b - a + 1);
      incr i
    end
  done

let holds_exactly_one t trace =
  length t = Functional_trace.length trace
  && begin
       let ok = ref true in
       Functional_trace.iter
         (fun time sample ->
           match Table.classify t.table sample with
           | Some id -> if id <> t.ids.(time) then ok := false
           | None -> ok := false)
         trace;
       (* Mutual exclusion is structural: rows are complete conjunctions,
          so a sample matches exactly the row of its own truth vector. *)
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "@[<v>proposition trace, %d instants, %d propositions:@,"
    (length t) (Table.prop_count t.table);
  List.iter
    (fun (p, start, stop) ->
      Format.fprintf fmt "  [%d,%d] %s@," start stop (Table.name t.table p))
    (segments t);
  Format.fprintf fmt "@]"
