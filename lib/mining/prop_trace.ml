module Functional_trace = Psm_trace.Functional_trace

module Table = struct
  type t = {
    vocabulary : Vocabulary.t;
    index : (string, int) Hashtbl.t; (* packed truth row -> prop id *)
    mutable rows : bool array array; (* prop id -> truth row *)
    mutable count : int;
  }

  let create vocabulary =
    { vocabulary; index = Hashtbl.create 64; rows = Array.make 16 [||]; count = 0 }

  let vocabulary t = t.vocabulary
  let prop_count t = t.count

  let add_row t row key =
    if t.count = Array.length t.rows then begin
      let bigger = Array.make (2 * t.count) [||] in
      Array.blit t.rows 0 bigger 0 t.count;
      t.rows <- bigger
    end;
    t.rows.(t.count) <- Array.copy row;
    Hashtbl.add t.index key t.count;
    t.count <- t.count + 1;
    t.count - 1

  let classify_or_add t sample =
    let row = Vocabulary.eval_sample t.vocabulary sample in
    let key = Vocabulary.row_key row in
    match Hashtbl.find_opt t.index key with
    | Some id -> id
    | None -> add_row t row key

  let classify t sample =
    let row = Vocabulary.eval_sample t.vocabulary sample in
    Hashtbl.find_opt t.index (Vocabulary.row_key row)

  let intern_row t row =
    if Array.length row <> Vocabulary.size t.vocabulary then
      invalid_arg "Prop_trace.Table.intern_row: row size mismatch";
    let key = Vocabulary.row_key row in
    match Hashtbl.find_opt t.index key with
    | Some id -> id
    | None -> add_row t row key

  let check_id t id =
    if id < 0 || id >= t.count then invalid_arg "Prop_trace.Table: unknown proposition id"

  let row t id =
    check_id t id;
    Array.copy t.rows.(id)

  let true_atoms t id =
    check_id t id;
    let atoms = ref [] in
    Array.iteri
      (fun i b -> if b then atoms := Vocabulary.atom t.vocabulary i :: !atoms)
      t.rows.(id);
    List.rev !atoms

  (* p_a .. p_z, p_aa, p_ab, ... *)
  let name t id =
    check_id t id;
    let rec letters n acc =
      let acc = String.make 1 (Char.chr (Char.code 'a' + (n mod 26))) ^ acc in
      if n < 26 then acc else letters ((n / 26) - 1) acc
    in
    "p_" ^ letters id ""

  let pp_prop t fmt id =
    check_id t id;
    let iface = Vocabulary.interface t.vocabulary in
    let positives = true_atoms t id in
    Format.fprintf fmt "%s:" (name t id);
    if positives = [] then Format.fprintf fmt " (all atoms false)"
    else
      List.iteri
        (fun i a ->
          Format.fprintf fmt "%s %a" (if i = 0 then "" else " &") (Atomic.pp iface) a)
        positives
end

type t = { table : Table.t; ids : int array }

let of_functional table trace =
  let n = Functional_trace.length trace in
  let ids = Array.make n 0 in
  Functional_trace.iter (fun time sample -> ids.(time) <- Table.classify_or_add table sample) trace;
  { table; ids }

let table t = t.table
let length t = Array.length t.ids

let prop_at t i =
  if i < 0 || i >= length t then invalid_arg "Prop_trace.prop_at: instant out of range";
  t.ids.(i)

let prop_ids t = Array.copy t.ids

let segments t =
  let n = length t in
  let rec go acc start =
    if start >= n then List.rev acc
    else begin
      let p = t.ids.(start) in
      let stop = ref start in
      while !stop + 1 < n && t.ids.(!stop + 1) = p do incr stop done;
      go ((p, start, !stop) :: acc) (!stop + 1)
    end
  in
  go [] 0

let holds_exactly_one t trace =
  length t = Functional_trace.length trace
  && begin
       let ok = ref true in
       Functional_trace.iter
         (fun time sample ->
           match Table.classify t.table sample with
           | Some id -> if id <> t.ids.(time) then ok := false
           | None -> ok := false)
         trace;
       (* Mutual exclusion is structural: rows are complete conjunctions,
          so a sample matches exactly the row of its own truth vector. *)
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "@[<v>proposition trace, %d instants, %d propositions:@,"
    (length t) (Table.prop_count t.table);
  List.iter
    (fun (p, start, stop) ->
      Format.fprintf fmt "  [%d,%d] %s@," start stop (Table.name t.table p))
    (segments t);
  Format.fprintf fmt "@]"
