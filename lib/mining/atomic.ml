module Bits = Psm_bits.Bits

type comparison = Eq | Lt | Gt

type operand = Const of Bits.t | Sig of int

type t = { lhs : int; cmp : comparison; rhs : operand }

let eq_const lhs v = { lhs; cmp = Eq; rhs = Const v }

let compare_signals cmp lhs rhs =
  if lhs = rhs then invalid_arg "Atomic.compare_signals: signal compared to itself";
  { lhs; cmp; rhs = Sig rhs }

let eval t sample =
  let a = sample.(t.lhs) in
  let b = match t.rhs with Const v -> v | Sig i -> sample.(i) in
  match t.cmp with
  | Eq -> Bits.equal a b
  | Lt -> Bits.ult a b
  | Gt -> Bits.ult b a

let equal a b =
  a.lhs = b.lhs && a.cmp = b.cmp
  && (match (a.rhs, b.rhs) with
     | Const x, Const y -> Bits.equal x y
     | Sig x, Sig y -> x = y
     | Const _, Sig _ | Sig _, Const _ -> false)

let compare a b =
  let rank = function Eq -> 0 | Lt -> 1 | Gt -> 2 in
  let c = Int.compare a.lhs b.lhs in
  if c <> 0 then c
  else begin
    let c = Int.compare (rank a.cmp) (rank b.cmp) in
    if c <> 0 then c
    else
      match (a.rhs, b.rhs) with
      | Const x, Const y -> Bits.compare x y
      | Sig x, Sig y -> Int.compare x y
      | Const _, Sig _ -> -1
      | Sig _, Const _ -> 1
  end

let negate t =
  match t.cmp with
  | Eq -> [ { t with cmp = Lt }; { t with cmp = Gt } ]
  | Lt -> [ { t with cmp = Eq }; { t with cmp = Gt } ]
  | Gt -> [ { t with cmp = Eq }; { t with cmp = Lt } ]

let cmp_symbol = function Eq -> "=" | Lt -> "<" | Gt -> ">"

let pp iface fmt t =
  let name i = (Psm_trace.Interface.signal iface i).Psm_trace.Signal.name in
  let rhs =
    match t.rhs with
    | Const v ->
        if Bits.width v = 1 then (if Bits.get v 0 then "1" else "0")
        else "0x" ^ Bits.to_hex_string v
    | Sig i -> name i
  in
  Format.fprintf fmt "%s %s %s" (name t.lhs) (cmp_symbol t.cmp) rhs

let to_string iface t = Format.asprintf "%a" (pp iface) t
