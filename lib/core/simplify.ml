(* One pass: collect disjoint maximal runs of adjacent mergeable states,
   merge them, and report whether anything changed. *)
let pass config psm =
  let out_deg = Hashtbl.create 64 and in_deg = Hashtbl.create 64 in
  let bump table k = Hashtbl.replace table k (1 + Option.value ~default:0 (Hashtbl.find_opt table k)) in
  List.iter
    (fun (tr : Psm.transition) ->
      bump out_deg tr.src;
      bump in_deg tr.dst)
    (Psm.transitions psm);
  let degree table k = Option.value ~default:0 (Hashtbl.find_opt table k) in
  (* unique_next s = Some t when s -> t is a chain link. *)
  let unique_next = Hashtbl.create 64 in
  List.iter
    (fun (tr : Psm.transition) ->
      if tr.src <> tr.dst && degree out_deg tr.src = 1 && degree in_deg tr.dst = 1 then
        Hashtbl.replace unique_next tr.src tr.dst)
    (Psm.transitions psm);
  let has_unique_prev = Hashtbl.create 64 in
  Hashtbl.iter (fun _ dst -> Hashtbl.replace has_unique_prev dst ()) unique_next;
  (* Walk each run head, greedily accumulating mergeable members. *)
  let clustered = Hashtbl.create 64 in
  let clusters = ref [] in
  let try_run head =
    if not (Hashtbl.mem clustered head) then begin
      let rec extend members attr last =
        match Hashtbl.find_opt unique_next last with
        | Some next
          when (not (Hashtbl.mem clustered next))
               && Merge.mergeable config attr (Psm.state psm next).Psm.attr ->
            extend (next :: members)
              (Power_attr.merge attr (Psm.state psm next).Psm.attr)
              next
        | Some _ | None -> (List.rev members, attr)
      in
      let members, attr = extend [ head ] (Psm.state psm head).Psm.attr head in
      if List.length members >= 2 then begin
        List.iter (fun m -> Hashtbl.replace clustered m ()) members;
        let member_states = List.map (Psm.state psm) members in
        let assertion =
          Assertion.seq (List.map (fun (s : Psm.state) -> s.Psm.assertion) member_states)
        in
        clusters :=
          { Psm.members; new_assertion = assertion; new_attr = attr;
            new_components = [ (assertion, attr) ] }
          :: !clusters
      end
    end
  in
  (* Heads: states that are not the unique-continuation of another state,
     visited in id order for determinism; then any state reachable only
     mid-chain is picked up as runs are marked. *)
  List.iter
    (fun (s : Psm.state) ->
      if not (Hashtbl.mem has_unique_prev s.Psm.id) then try_run s.Psm.id)
    (Psm.states psm);
  List.iter (fun (s : Psm.state) -> try_run s.Psm.id) (Psm.states psm);
  match !clusters with
  | [] -> (psm, [], false)
  | cs ->
      let psm', mapping = Psm.merge_clusters psm ~internal_edges:`Drop cs in
      (psm', mapping, true)

(* Compose merge-pass mappings into one total redirect function. *)
let compose_passes pass_fn psm =
  let redirect = Hashtbl.create 64 in
  let rec fixpoint psm =
    let psm', mapping, changed = pass_fn psm in
    if not changed then psm'
    else begin
      List.iter (fun (m, id) -> Hashtbl.replace redirect m id) mapping;
      fixpoint psm'
    end
  in
  let final = fixpoint psm in
  let rec resolve id =
    match Hashtbl.find_opt redirect id with Some next -> resolve next | None -> id
  in
  (final, resolve)

let simplify_traced ?(config = Merge.default) psm =
  Psm_obs.span "combine.simplify" @@ fun () ->
  let before = Psm.state_count psm in
  let result = compose_passes (pass config) psm in
  Psm_obs.count "combine.simplify_merged" (before - Psm.state_count (fst result));
  result

let simplify ?config psm = fst (simplify_traced ?config psm)
