(* One pass: collect disjoint maximal runs of adjacent mergeable states,
   merge them, and report whether anything changed. *)
let pass config psm =
  let out_deg = Hashtbl.create 64 and in_deg = Hashtbl.create 64 in
  let bump table k = Hashtbl.replace table k (1 + Option.value ~default:0 (Hashtbl.find_opt table k)) in
  List.iter
    (fun (tr : Psm.transition) ->
      bump out_deg tr.src;
      bump in_deg tr.dst)
    (Psm.transitions psm);
  let degree table k = Option.value ~default:0 (Hashtbl.find_opt table k) in
  (* unique_next s = Some t when s -> t is a chain link. *)
  let unique_next = Hashtbl.create 64 in
  List.iter
    (fun (tr : Psm.transition) ->
      if tr.src <> tr.dst && degree out_deg tr.src = 1 && degree in_deg tr.dst = 1 then
        Hashtbl.replace unique_next tr.src tr.dst)
    (Psm.transitions psm);
  let has_unique_prev = Hashtbl.create 64 in
  Hashtbl.iter (fun _ dst -> Hashtbl.replace has_unique_prev dst ()) unique_next;
  (* Walk each run head, greedily accumulating mergeable members. *)
  let clustered = Hashtbl.create 64 in
  let clusters = ref [] in
  let try_run head =
    if not (Hashtbl.mem clustered head) then begin
      let rec extend members attr last =
        match Hashtbl.find_opt unique_next last with
        | Some next
          when (not (Hashtbl.mem clustered next))
               && Merge.mergeable config attr (Psm.state psm next).Psm.attr ->
            extend (next :: members)
              (Power_attr.merge attr (Psm.state psm next).Psm.attr)
              next
        | Some _ | None -> (List.rev members, attr)
      in
      let members, attr = extend [ head ] (Psm.state psm head).Psm.attr head in
      if List.length members >= 2 then begin
        List.iter (fun m -> Hashtbl.replace clustered m ()) members;
        let member_states = List.map (Psm.state psm) members in
        let assertion =
          Assertion.seq (List.map (fun (s : Psm.state) -> s.Psm.assertion) member_states)
        in
        clusters :=
          { Psm.members; new_assertion = assertion; new_attr = attr;
            new_components = [ (assertion, attr) ] }
          :: !clusters
      end
    end
  in
  (* Heads: states that are not the unique-continuation of another state,
     visited in id order for determinism; then any state reachable only
     mid-chain is picked up as runs are marked. *)
  List.iter
    (fun (s : Psm.state) ->
      if not (Hashtbl.mem has_unique_prev s.Psm.id) then try_run s.Psm.id)
    (Psm.states psm);
  List.iter (fun (s : Psm.state) -> try_run s.Psm.id) (Psm.states psm);
  match !clusters with
  | [] -> (psm, [], false)
  | cs ->
      let psm', mapping = Psm.merge_clusters psm ~internal_edges:`Drop cs in
      (psm', mapping, true)

(* Compose merge-pass mappings into one total redirect function. Each
   changed pass is followed by a canonical {!Psm.renumber}, so every
   intermediate machine (and the final one) keeps its states in training
   order regardless of how many clusters a pass created. Pass behaviour
   that iterates states in id order — the run heads here, join's
   first-fit — therefore scans in chain order on every iteration, which
   is what lets the streaming trainer replay the fixpoint one pass-level
   at a time and land on the same machine. *)
let compose_passes ?(max_passes = max_int) pass_fn psm =
  let total = Hashtbl.create 64 in
  List.iter
    (fun (s : Psm.state) -> Hashtbl.replace total s.Psm.id s.Psm.id)
    (Psm.states psm);
  let rec fixpoint remaining psm =
    if remaining <= 0 then psm
    else
      let psm', mapping, changed = pass_fn psm in
      if not changed then psm'
      else begin
        let merged = Hashtbl.create 16 in
        List.iter (fun (m, id) -> Hashtbl.replace merged m id) mapping;
        let psm'', renum = Psm.renumber psm' in
        let bindings = Hashtbl.fold (fun o cur acc -> (o, cur) :: acc) total [] in
        List.iter
          (fun (o, cur) ->
            let mid = Option.value ~default:cur (Hashtbl.find_opt merged cur) in
            Hashtbl.replace total o (renum mid))
          bindings;
        fixpoint (remaining - 1) psm''
      end
  in
  let final = fixpoint max_passes psm in
  let resolve id = Option.value ~default:id (Hashtbl.find_opt total id) in
  (final, resolve)

(* Sequential simplification runs a BOUNDED number of passes, not a full
   fixpoint. The bound exists for the streaming trainer: pass k+1's
   greedy runs can absorb a state that pass k had already committed (the
   merged blob's widened attributes change the verdict), so each extra
   pass can reach one commit further back into the chain. An unbounded
   fixpoint therefore needs the whole chain retained to replay online —
   O(trace) memory — while a fixed bound is replayed exactly by a static
   cascade of [max_simplify_passes] greedy levels holding one open run
   each. Real workloads converge in 2–3 passes, so the bound is not a
   practical loss; [pass] is a no-op once a machine is fully simplified,
   making early convergence identical to running all passes. *)
let max_simplify_passes = 4

let simplify_traced ?(config = Merge.default) psm =
  Psm_obs.span "combine.simplify" @@ fun () ->
  let before = Psm.state_count psm in
  let result = compose_passes ~max_passes:max_simplify_passes (pass config) psm in
  Psm_obs.count "combine.simplify_merged" (before - Psm.state_count (fst result));
  result

let simplify ?config psm = fst (simplify_traced ?config psm)
