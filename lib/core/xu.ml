module Prop_trace = Psm_mining.Prop_trace

type pattern = Until of int * int | Next of int * int

type t = {
  gamma : int array;
  mutable pos : int; (* index of f[0] in gamma *)
  mutable run_start : int; (* first instant of the current lhs run *)
  mutable state : [ `X | `U ];
  mutable exhausted : bool;
}

let initialize trace =
  { gamma = Prop_trace.prop_ids trace;
    pos = 0;
    run_start = 0;
    state = `X;
    exhausted = false }

let prop_at t i = if i >= 0 && i < Array.length t.gamma then Some t.gamma.(i) else None

let fifo t = (prop_at t t.pos, prop_at t (t.pos + 1))

let automaton_state t = t.state

let get_assertion t =
  let rec traverse () =
    match (prop_at t t.pos, prop_at t (t.pos + 1)) with
    | None, _ ->
        t.exhausted <- true;
        None
    | Some _, None ->
        (* nil entered the FIFO: the run [run_start ..] stays unattributed
           here; Generator folds it into the last state via trailing_stop. *)
        t.exhausted <- true;
        None
    | Some f0, Some f1 -> (
        match t.state with
        | `X ->
            if f1 = f0 then begin
              t.state <- `U;
              t.pos <- t.pos + 1;
              traverse ()
            end
            else begin
              let result = (Next (f0, f1), t.run_start, t.pos) in
              t.pos <- t.pos + 1;
              t.run_start <- t.pos;
              Some result
            end
        | `U ->
            if f1 = f0 then begin
              t.pos <- t.pos + 1;
              traverse ()
            end
            else begin
              let result = (Until (f0, f1), t.run_start, t.pos) in
              t.state <- `X;
              t.pos <- t.pos + 1;
              t.run_start <- t.pos;
              Some result
            end)
  in
  if t.exhausted then None else traverse ()

let trailing_stop t =
  let len = Array.length t.gamma in
  if (not t.exhausted) || len = 0 then None
  else if t.run_start <= len - 1 then Some (len - 1)
  else None
