(** The [simplify] procedure (paper Sec. IV, Fig. 6a): within each PSM,
    iteratively merge maximal runs of *adjacent* mergeable states into
    single states carrying the sequential assertion {pᵢ; pᵢ₊₁; …}.

    Adjacency means a transition s → t where s is t's only predecessor and
    t is s's only successor (always true inside the chains produced by
    {!Generator}; stated generally so simplify is safe on any PSM set).
    The chain's internal transitions are absorbed; the new state connects
    to the predecessor of the first and the successor of the last member.

    Runs at most {!max_simplify_passes} greedy passes rather than a full
    fixpoint: a later pass can reach one commit further *backwards* per
    pass (a merged run's widened attributes may newly absorb the state
    committed just before it), so an unbounded fixpoint would need the
    whole chain live to replay online. Bounding the pass count lets the
    streaming trainer ({!Psm_flow.Stream_train}) replicate simplify
    exactly with a static cascade of one open run per pass, in O(model)
    memory. Real machines converge in 2–3 passes, where the bound is
    indistinguishable from the fixpoint. *)

val max_simplify_passes : int
(** 4. *)

val simplify : ?config:Merge.config -> Psm.t -> Psm.t

val simplify_traced : ?config:Merge.config -> Psm.t -> Psm.t * (int -> int)
(** Also returns the total (original state id → final state id) mapping
    across all merge passes, used to project training-trace statistics
    onto the simplified machine. *)

(**/**)

val compose_passes :
  ?max_passes:int ->
  (Psm.t -> Psm.t * (int * int) list * bool) ->
  Psm.t ->
  Psm.t * (int -> int)
(** Internal: iterate a merge pass (to fixpoint by default, or at most
    [max_passes] times) while composing its redirect maps. Shared with
    {!Join}, whose cross-chain pass keeps the unbounded fixpoint. *)
