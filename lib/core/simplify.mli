(** The [simplify] procedure (paper Sec. IV, Fig. 6a): within each PSM,
    iteratively merge maximal runs of *adjacent* mergeable states into
    single states carrying the sequential assertion {pᵢ; pᵢ₊₁; …}.

    Adjacency means a transition s → t where s is t's only predecessor and
    t is s's only successor (always true inside the chains produced by
    {!Generator}; stated generally so simplify is safe on any PSM set).
    The chain's internal transitions are absorbed; the new state connects
    to the predecessor of the first and the successor of the last member.
    Runs until no mergeable adjacent pair remains. *)

val simplify : ?config:Merge.config -> Psm.t -> Psm.t

val simplify_traced : ?config:Merge.config -> Psm.t -> Psm.t * (int -> int)
(** Also returns the total (original state id → final state id) mapping
    across all merge passes, used to project training-trace statistics
    onto the simplified machine. *)

(**/**)

val compose_passes :
  (Psm.t -> Psm.t * (int * int) list * bool) -> Psm.t -> Psm.t * (int -> int)
(** Internal: fixpoint a merge pass while composing its redirect maps.
    Shared with {!Join}. *)
