module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Regression = Psm_stats.Regression

type config = { sigma_threshold : float; correlation_threshold : float }

let default = { sigma_threshold = 0.05; correlation_threshold = 0.7 }

type report = {
  state_id : int;
  relative_sigma : float;
  correlation : float;
  upgraded : bool;
}

let samples_of_state hamming_series powers (attr : Power_attr.t) =
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun { Power_attr.trace; start; stop } ->
      let hd : float array = hamming_series.(trace) in
      let p = powers.(trace) in
      for i = start to stop do
        xs := hd.(i) :: !xs;
        ys := Power_trace.get p i :: !ys
      done)
    attr.Power_attr.intervals;
  (Array.of_list !xs, Array.of_list !ys)

let optimize ?(config = default) ~traces ~powers psm =
  Psm_obs.span "combine.optimize" @@ fun () ->
  if Array.length traces <> Array.length powers then
    invalid_arg "Optimize.optimize: traces and powers differ in number";
  let hamming_series = Array.map Functional_trace.input_hamming_series traces in
  let consider (psm, reports) (s : Psm.state) =
    let rel = Power_attr.relative_sigma s.Psm.attr in
    if rel <= config.sigma_threshold || s.Psm.attr.Power_attr.n < 3 then (psm, reports)
    else begin
      let xs, ys = samples_of_state hamming_series powers s.Psm.attr in
      let r = Regression.pearson xs ys in
      if abs_float r >= config.correlation_threshold then begin
        let fit = Regression.fit ~x:xs ~y:ys in
        let psm =
          Psm.set_output psm s.Psm.id
            (Psm.Affine { slope = fit.Regression.slope; intercept = fit.Regression.intercept })
        in
        (psm, { state_id = s.Psm.id; relative_sigma = rel; correlation = r; upgraded = true } :: reports)
      end
      else
        (psm, { state_id = s.Psm.id; relative_sigma = rel; correlation = r; upgraded = false } :: reports)
    end
  in
  let psm, reports = List.fold_left consider (psm, []) (Psm.states psm) in
  (psm, List.rev reports)
