(** Graphviz export of PSM sets — regenerates the shapes of the paper's
    Fig. 2 (example PSM) and Fig. 5 (generated chain) and documents every
    mined PSM as a reviewable artifact. *)

val to_string : ?name:string -> ?show_sigma:bool -> Psm.t -> string
(** A [digraph] whose nodes are labelled with the state id, its temporal
    assertion (with proposition names) and its output function (μ in
    engineering notation, or the affine law for regression states), and
    whose edges are labelled with the enabling proposition. Initial states
    are marked with an entry arrow. *)

val write_file : ?name:string -> ?show_sigma:bool -> string -> Psm.t -> unit
