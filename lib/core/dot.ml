let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
          (* CR, tab and the other control characters have no portable DOT
             escape; a space keeps the quoted string well-formed. *)
          Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let si value =
  (* Engineering rendering for energies (joule scale). *)
  let abs = abs_float value in
  if abs = 0. then "0"
  else if abs >= 1e-3 then Printf.sprintf "%.3g mJ" (value *. 1e3)
  else if abs >= 1e-6 then Printf.sprintf "%.3g uJ" (value *. 1e6)
  else if abs >= 1e-9 then Printf.sprintf "%.3g nJ" (value *. 1e9)
  else if abs >= 1e-12 then Printf.sprintf "%.3g pJ" (value *. 1e12)
  else Printf.sprintf "%.3g fJ" (value *. 1e15)

let to_string ?(name = "psm") ?(show_sigma = true) psm =
  let table = Psm.prop_table psm in
  let prop_name = Psm_mining.Prop_trace.Table.name table in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, style=rounded];\n";
  List.iter
    (fun (s : Psm.state) ->
      let assertion = Assertion.to_string prop_name s.Psm.assertion in
      let output =
        match s.Psm.output with
        | Psm.Const mu ->
            if show_sigma then
              Printf.sprintf "%s (sigma %s, n=%d)" (si mu)
                (si s.Psm.attr.Power_attr.sigma) s.Psm.attr.Power_attr.n
            else si mu
        | Psm.Affine { slope; intercept } ->
            Printf.sprintf "%s*hd + %s" (si slope) (si intercept)
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d [label=\"s%d\\n%s\\n%s\"];\n" s.Psm.id s.Psm.id
           (escape assertion) (escape output)))
    (Psm.states psm);
  List.iteri
    (fun k init ->
      Buffer.add_string buf
        (Printf.sprintf "  entry%d [shape=point, label=\"\"];\n  entry%d -> s%d;\n" k k init))
    (Psm.initial psm);
  List.iter
    (fun (tr : Psm.transition) ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" tr.Psm.src tr.Psm.dst
           (escape (prop_name tr.Psm.guard))))
    (Psm.transitions psm);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?show_sigma path psm =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?show_sigma psm))
