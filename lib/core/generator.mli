(** PSMGenerator (paper Fig. 4): turn one proposition trace Γ and its
    dynamic power trace Δ into a chain-shaped PSM.

    Each pattern recognized by the {!Xu} automaton becomes a power state
    whose attributes ⟨μ, σ, n⟩ come from Δ over the pattern's interval
    ([getPowerAttributes] / [createPowerState]); consecutive states are
    linked by a transition whose enabling proposition is the entry
    proposition of the new state ([createTransition]). The chain's first
    state is recorded as an initial state.

    End-of-trace instants after the last complete pattern are folded into
    the final state's interval (the paper's Fig. 5 example: ⟨p_c X p_d, 6,
    7⟩), so every instant of Δ is attributed to exactly one state. *)

val generate :
  Psm.t -> trace:int -> Psm_mining.Prop_trace.t -> Psm_trace.Power_trace.t -> Psm.t
(** [generate psm ~trace gamma delta] appends one chain (built from Γ/Δ,
    which must have equal lengths) to [psm]; [trace] tags the power
    intervals with the training-trace index for later attribute
    recomputation. Γ must come from the same proposition table as [psm].
    A Γ with a single proposition run yields one state asserting
    [Until (p, p)] over the whole trace. Raises [Invalid_argument] on
    length mismatch or empty Γ. *)

val assertion_of_pattern : Xu.pattern -> Assertion.t
