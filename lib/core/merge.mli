(** Mergeability of power states (paper Sec. IV-A).

    Two states are mergeable when their power attributes are statistically
    indistinguishable, decided by three cases on the sample sizes:

    - {b Case 1} — nᵢ = nⱼ = 1 (two next-pattern states): mergeable when
      |μᵢ − μⱼ| < ε, with ε the designer tolerance. Here ε is expressed
      {e relative} to the larger mean, so one configuration works across
      IPs with different absolute power scales.
    - {b Case 2} — nᵢ > 1 and nⱼ > 1 (two until-pattern states): Welch's
      unequal-variances t-test; mergeable when equality of means is not
      rejected at significance [alpha].
    - {b Case 3} — nᵢ > 1, nⱼ = 1: one-sample t-test of the single
      observation against the larger population.

    [min_n_for_test]: below this population size the t-test is so weak
    that everything merges; such small states fall back to the Case-1 ε
    criterion on their means.

    [practical_equivalence]: with very large n the t-test detects — and
    rejects on — mean differences far too small to matter for power
    estimation, fragmenting the PSM. When set (the default), states whose
    means already satisfy the Case-1 ε criterion merge regardless of the
    test verdict: statistical significance is overridden by designer-
    declared practical equivalence. The pure-t-test behaviour (the paper's
    letter) is kept as an ablation configuration. *)

type config = {
  epsilon : float;  (** Relative tolerance, default 0.15. *)
  alpha : float;  (** Significance level, default 0.005. *)
  min_n_for_test : int;  (** Default 4. *)
  practical_equivalence : bool;  (** Default true. *)
}

val default : config

type case = Case1_next_next | Case2_until_until | Case3_until_next

val case_of : Power_attr.t -> Power_attr.t -> case

val mergeable : config -> Power_attr.t -> Power_attr.t -> bool
