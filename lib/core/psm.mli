(** Power State Machines (paper Def. 3).

    A PSM here is the 7-tuple ⟨I, O, S, S₀, E, λ, ω⟩ specialized to the
    mining flow: the input alphabet I is the set of interned propositions
    (complete truth rows over the atomic vocabulary), enabling functions E
    are single propositions guarding transitions, states S carry a temporal
    assertion and power attributes, and the output function ω is either a
    constant (the state's μ) or — after the data-dependent-state
    optimization — an affine function of the input Hamming distance.

    One [Psm.t] value can hold several machines (a set of chains after
    generation; a possibly-connected graph after [join]); S₀ lists the
    initial state of every constituent machine, with multiplicity — the
    HMM's π vector is derived from it. *)

type output =
  | Const of float
  | Affine of { slope : float; intercept : float }
      (** Power = slope × (Hamming distance of consecutive PI values) +
          intercept. *)

type state = {
  id : int;
  assertion : Assertion.t;
  attr : Power_attr.t;
  output : output;
  components : (Assertion.t * Power_attr.t) list;
      (** Provenance for the HMM's B matrix: the assertion/attribute pairs
          this state absorbed. A freshly generated or sequentially
          simplified state is a single component; a [join]ed state lists
          one component per merged member (multiplicity preserved). *)
}

type transition = { src : int; guard : int; dst : int }
(** Enabled when proposition [guard] holds. *)

type t

val empty : Psm_mining.Prop_trace.Table.t -> t

val prop_table : t -> Psm_mining.Prop_trace.Table.t

(** {1 Construction} *)

val add_state : t -> Assertion.t -> Power_attr.t -> t * int
(** The new state's output is [Const attr.mu] (createPowerState). *)

val add_state_full :
  t ->
  Assertion.t ->
  Power_attr.t ->
  output:output ->
  components:(Assertion.t * Power_attr.t) list ->
  t * int
(** Full-control constructor used when reloading persisted models. *)

val set_output : t -> int -> output -> t

val add_transition : t -> src:int -> guard:int -> dst:int -> t
(** Duplicate transitions (same triple) are kept once. Raises
    [Invalid_argument] on unknown state ids. *)

val add_initial : t -> int -> t
(** Appends to S₀ (multiplicity preserved: one entry per training trace
    that starts in this state). *)

(** {1 Observation} *)

val state : t -> int -> state
(** Raises [Not_found]. *)

val states : t -> state list
(** In id order. *)

val transitions : t -> transition list
val initial : t -> int list

val state_count : t -> int
val transition_count : t -> int

val successors : t -> int -> transition list
val predecessors : t -> int -> transition list

val machine_count : t -> int
(** Number of weakly-connected components — the number of constituent
    PSMs. *)

val eval_output : output -> hamming:float -> float

(** {1 Whole-set operations} *)

val union : t list -> t
(** Disjoint union (states renumbered). All constituents must share the
    same proposition table (physical equality). *)

val renumber : t -> t * (int -> int)
(** Canonical renumbering: dense ids 0..n-1 assigned in training-position
    order — states sorted by the (trace, start) of their earliest power
    interval, old id as tie-break for interval-less states. The returned
    function maps old ids to new ids (raising [Invalid_argument] on
    unknown ids). Merge history stops mattering: any two machines with
    the same states-by-content get the same ids, which is what makes the
    batch and streaming combine pipelines comparable state-for-state. *)

type cluster = {
  members : int list;  (** ≥ 2 distinct existing state ids. *)
  new_assertion : Assertion.t;
  new_attr : Power_attr.t;
  new_components : (Assertion.t * Power_attr.t) list;
}

val merge_clusters :
  t -> internal_edges:[ `Drop | `Self_loop ] -> cluster list -> t * (int * int) list
(** Also returns the (member id → replacement id) mapping.
    The surgery primitive behind [simplify] and [join]: each cluster's
    members are replaced by one fresh state carrying the given assertion
    and attributes (output = [Const new_attr.mu]); every transition
    endpoint and initial-state entry is redirected to the replacement
    (initial multiplicity preserved). Transitions that end up connecting a
    merged state to itself are dropped under [`Drop] (simplify: the chain's
    internal edges are absorbed into the sequential assertion) or kept as
    self-loops under [`Self_loop] (join). Duplicate transitions collapse.
    Clusters must be disjoint. *)

val pp : Format.formatter -> t -> unit
