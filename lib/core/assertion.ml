type t =
  | Until of int * int
  | Next of int * int
  | Seq of t list
  | Alt of t list

let seq parts =
  let flattened =
    List.concat_map (function Seq inner -> inner | other -> [ other ]) parts
  in
  match flattened with
  | [] -> invalid_arg "Assertion.seq: empty sequence"
  | [ single ] -> single
  | many -> Seq many

let rec equal a b =
  match (a, b) with
  | Until (p1, q1), Until (p2, q2) | Next (p1, q1), Next (p2, q2) -> p1 = p2 && q1 = q2
  | Seq xs, Seq ys | Alt xs, Alt ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Until _ | Next _ | Seq _ | Alt _), _ -> false

let rec compare a b =
  let rank = function Until _ -> 0 | Next _ -> 1 | Seq _ -> 2 | Alt _ -> 3 in
  match (a, b) with
  | Until (p1, q1), Until (p2, q2) | Next (p1, q1), Next (p2, q2) ->
      let c = Int.compare p1 p2 in
      if c <> 0 then c else Int.compare q1 q2
  | Seq xs, Seq ys | Alt xs, Alt ys -> List.compare compare xs ys
  | _ -> Int.compare (rank a) (rank b)

let alt parts =
  let flattened =
    List.concat_map (function Alt inner -> inner | other -> [ other ]) parts
  in
  let deduped = List.sort_uniq compare flattened in
  match deduped with
  | [] -> invalid_arg "Assertion.alt: empty alternative"
  | [ single ] -> single
  | many -> Alt many

let alternatives = function Alt xs -> xs | other -> [ other ]

let rec first_entry = function
  | Until (p, _) | Next (p, _) -> [ p ]
  | Seq [] | Alt [] -> assert false
  | Seq (first :: _) -> first_entry first
  | Alt xs -> List.concat_map first_entry xs

let entry_props t = List.sort_uniq Int.compare (first_entry t)

let rec last_exit = function
  | Until (_, q) | Next (_, q) -> [ q ]
  | Seq [] | Alt [] -> assert false
  | Seq parts -> last_exit (List.nth parts (List.length parts - 1))
  | Alt xs -> List.concat_map last_exit xs

let exit_props t = List.sort_uniq Int.compare (last_exit t)

let rec collect acc = function
  | Until (p, q) | Next (p, q) -> q :: p :: acc
  | Seq xs | Alt xs -> List.fold_left collect acc xs

let props t = List.sort_uniq Int.compare (collect [] t)

let rec subsumes a b =
  equal a b
  ||
  match (a, b) with
  (* p X q describes exactly the length-2 runs of p U q. *)
  | Next (p1, q1), Until (p2, q2) -> p1 = p2 && q1 = q2
  (* Every branch of [a] must be covered for the whole Alt to be. *)
  | Alt xs, _ -> List.for_all (fun x -> subsumes x b) xs
  | _, Alt ys -> List.exists (fun y -> subsumes a y) ys
  | Seq xs, Seq ys ->
      List.length xs = List.length ys && List.for_all2 subsumes xs ys
  | (Until _ | Next _ | Seq _), _ -> false

let hash t = Hashtbl.hash t

let rec pp_with name fmt = function
  | Until (p, q) -> Format.fprintf fmt "%s U %s" (name p) (name q)
  | Next (p, q) -> Format.fprintf fmt "%s X %s" (name p) (name q)
  | Seq parts ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
           (pp_with name))
        parts
  | Alt parts ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt " || ")
           (pp_with name))
        parts

let pp fmt t = pp_with (fun i -> "p" ^ string_of_int i) fmt t
let pp_named name fmt t = pp_with name fmt t
let to_string name t = Format.asprintf "%a" (pp_named name) t
