(** Simulation of a single chain-shaped PSM (paper Sec. III-C).

    The PSM is stepped in lockstep with a functional trace: at each instant
    the PI/PO values are classified into a proposition, the current state's
    assertion decides whether to stay or traverse the (unique) outgoing
    transition, and the state's output function produces the power
    estimate.

    This simulator intentionally reproduces the paper's Sec. III-C
    limitation: when the observed proposition matches neither the stay
    condition nor the exit condition of the current state, the PSM loses
    synchronization — it remains in the current state (whose estimate is
    no longer reliable) and records the event. Recovery requires the
    HMM-based multi-PSM simulation of {!Psm_hmm}. *)

type result = {
  estimate : float array;  (** Power estimate per instant. *)
  desyncs : int list;  (** Instants at which synchronization was lost. *)
  synchronized_fraction : float;
}

val simulate : Psm.t -> Psm_trace.Functional_trace.t -> result
(** The PSM must contain exactly one machine whose states carry only
    primitive assertions ([Until]/[Next]) — i.e. a chain fresh from
    {!Generator} — and exactly one initial state; raises
    [Invalid_argument] otherwise. *)
