module IntMap = Map.Make (Int)

module TransSet = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

type output = Const of float | Affine of { slope : float; intercept : float }

type state = {
  id : int;
  assertion : Assertion.t;
  attr : Power_attr.t;
  output : output;
  components : (Assertion.t * Power_attr.t) list;
}

type transition = { src : int; guard : int; dst : int }

type t = {
  table : Psm_mining.Prop_trace.Table.t;
  states : state IntMap.t;
  transitions : TransSet.t;
  initial : int list; (* insertion order, multiplicity significant *)
  next_id : int;
}

let empty table =
  { table; states = IntMap.empty; transitions = TransSet.empty; initial = []; next_id = 0 }

let prop_table t = t.table

let add_state_full t assertion attr ~output ~components =
  let id = t.next_id in
  let st = { id; assertion; attr; output; components } in
  ({ t with states = IntMap.add id st t.states; next_id = id + 1 }, id)

let add_state t assertion attr =
  add_state_full t assertion attr ~output:(Const attr.Power_attr.mu)
    ~components:[ (assertion, attr) ]

let check_state t id ctx =
  if not (IntMap.mem id t.states) then
    invalid_arg (Printf.sprintf "Psm.%s: unknown state %d" ctx id)

let set_output t id output =
  check_state t id "set_output";
  { t with states = IntMap.update id (Option.map (fun s -> { s with output })) t.states }

let add_transition t ~src ~guard ~dst =
  check_state t src "add_transition";
  check_state t dst "add_transition";
  { t with transitions = TransSet.add (src, guard, dst) t.transitions }

let add_initial t id =
  check_state t id "add_initial";
  { t with initial = t.initial @ [ id ] }

let state t id =
  match IntMap.find_opt id t.states with Some s -> s | None -> raise Not_found

let states t = IntMap.bindings t.states |> List.map snd

let transitions t =
  List.map (fun (src, guard, dst) -> { src; guard; dst }) (TransSet.elements t.transitions)

let initial t = t.initial

let state_count t = IntMap.cardinal t.states
let transition_count t = TransSet.cardinal t.transitions

let successors t id = List.filter (fun tr -> tr.src = id) (transitions t)
let predecessors t id = List.filter (fun tr -> tr.dst = id) (transitions t)

let machine_count t =
  (* Weakly-connected components by union-find over transition endpoints. *)
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let root = find p in
        Hashtbl.replace parent x root;
        root
    | Some _ -> x
    | None ->
        Hashtbl.replace parent x x;
        x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  IntMap.iter (fun id _ -> ignore (find id)) t.states;
  TransSet.iter (fun (src, _, dst) -> union src dst) t.transitions;
  let roots = Hashtbl.create 16 in
  IntMap.iter (fun id _ -> Hashtbl.replace roots (find id) ()) t.states;
  Hashtbl.length roots

let eval_output output ~hamming =
  match output with
  | Const mu -> mu
  | Affine { slope; intercept } -> (slope *. hamming) +. intercept

let union parts =
  match parts with
  | [] -> invalid_arg "Psm.union: empty list"
  | first :: rest ->
      List.iter
        (fun p ->
          if p.table != first.table then
            invalid_arg "Psm.union: constituents use different proposition tables")
        rest;
      List.fold_left
        (fun acc part ->
          let offset = acc.next_id in
          let states =
            IntMap.fold
              (fun id s acc_states ->
                IntMap.add (id + offset) { s with id = id + offset } acc_states)
              part.states acc.states
          in
          let transitions =
            TransSet.fold
              (fun (src, guard, dst) acc_tr ->
                TransSet.add (src + offset, guard, dst + offset) acc_tr)
              part.transitions acc.transitions
          in
          { acc with
            states;
            transitions;
            initial = acc.initial @ List.map (fun i -> i + offset) part.initial;
            next_id = offset + part.next_id })
        first rest

(* Canonical renumbering: states are reassigned dense ids 0..n-1 ordered
   by the training position of their earliest power interval — i.e. chain
   order, (trace, start)-lexicographic — independently of the merge
   history that produced them. Two distinct states can never share a
   first instant (intervals partition the training instants), but the old
   id breaks ties defensively for interval-less states (loaded models). *)
let renumber t =
  let first_interval (s : state) =
    match s.attr.Power_attr.intervals with
    | { Power_attr.trace; start; _ } :: _ -> (trace, start, s.id)
    | [] -> (max_int, max_int, s.id)
  in
  let ordered =
    List.sort
      (fun a b -> compare (first_interval a) (first_interval b))
      (IntMap.bindings t.states |> List.map snd)
  in
  let map = Hashtbl.create (List.length ordered) in
  List.iteri (fun i s -> Hashtbl.replace map s.id i) ordered;
  let renum id =
    match Hashtbl.find_opt map id with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Psm.renumber: unknown state %d" id)
  in
  let states =
    List.fold_left
      (fun acc s -> IntMap.add (renum s.id) { s with id = renum s.id } acc)
      IntMap.empty ordered
  in
  let transitions =
    TransSet.fold
      (fun (src, guard, dst) acc -> TransSet.add (renum src, guard, renum dst) acc)
      t.transitions TransSet.empty
  in
  ( { t with
      states;
      transitions;
      initial = List.map renum t.initial;
      next_id = List.length ordered },
    renum )

type cluster = {
  members : int list;
  new_assertion : Assertion.t;
  new_attr : Power_attr.t;
  new_components : (Assertion.t * Power_attr.t) list;
}

let merge_clusters t ~internal_edges clusters =
  (* Validate and build the redirect map. *)
  let redirect = Hashtbl.create 64 in
  let next_id = ref t.next_id in
  let merged_states = ref [] in
  List.iter
    (fun c ->
      if List.length c.members < 2 then
        invalid_arg "Psm.merge_clusters: cluster needs at least 2 members";
      let id = !next_id in
      incr next_id;
      List.iter
        (fun m ->
          check_state t m "merge_clusters";
          if Hashtbl.mem redirect m then
            invalid_arg "Psm.merge_clusters: clusters are not disjoint";
          Hashtbl.replace redirect m id)
        c.members;
      merged_states :=
        { id;
          assertion = c.new_assertion;
          attr = c.new_attr;
          output = Const c.new_attr.Power_attr.mu;
          components = c.new_components }
        :: !merged_states)
    clusters;
  let target id = match Hashtbl.find_opt redirect id with Some m -> m | None -> id in
  let states =
    IntMap.fold
      (fun id s acc -> if Hashtbl.mem redirect id then acc else IntMap.add id s acc)
      t.states IntMap.empty
  in
  let states =
    List.fold_left (fun acc s -> IntMap.add s.id s acc) states !merged_states
  in
  let transitions =
    TransSet.fold
      (fun (src0, guard, dst0) acc ->
        let src = target src0 and dst = target dst0 in
        let was_internal = src = dst && src0 <> dst0 in
        if was_internal && internal_edges = `Drop then acc
        else TransSet.add (src, guard, dst) acc)
      t.transitions TransSet.empty
  in
  ( { t with
      states;
      transitions;
      initial = List.map target t.initial;
      next_id = !next_id },
    Hashtbl.fold (fun m id acc -> (m, id) :: acc) redirect [] )

let pp fmt t =
  let name p = Psm_mining.Prop_trace.Table.name t.table p in
  Format.fprintf fmt "@[<v>PSM set: %d states, %d transitions, %d machine(s)@,"
    (state_count t) (transition_count t) (machine_count t);
  Format.fprintf fmt "initial:%a@,"
    (fun fmt -> List.iter (fun i -> Format.fprintf fmt " s%d" i))
    t.initial;
  List.iter
    (fun s ->
      Format.fprintf fmt "  s%d: %a  [%a]%s@," s.id (Assertion.pp_named name) s.assertion
        Power_attr.pp s.attr
        (match s.output with
        | Const _ -> ""
        | Affine { slope; intercept } ->
            Printf.sprintf "  out = %.4g*hd + %.4g" slope intercept))
    (states t);
  List.iter
    (fun tr -> Format.fprintf fmt "  s%d --[%s]--> s%d@," tr.src (name tr.guard) tr.dst)
    (transitions t);
  Format.fprintf fmt "@]"
