module Prop_trace = Psm_mining.Prop_trace
module Power_trace = Psm_trace.Power_trace
module Runs = Psm_trace.Runs

let assertion_of_pattern = function
  | Xu.Until (p, q) -> Assertion.Until (p, q)
  | Xu.Next (p, q) -> Assertion.Next (p, q)

(* The Xu walk, collapsed to one step per maximal Γ segment: for each
   consecutive segment pair ⟨p, s, e⟩, ⟨q, _, _⟩ the automaton emits
   (e > s ? p U q : p X q) over [s, e] — a multi-instant run passes
   through the `U state, a single instant stays in `X — and exhausts
   with the final segment pending, i.e. trailing_stop = len - 1. Pinned
   against the per-cycle automaton by the RLE equivalence tests. *)
let triplets_of_segments segs =
  let rec go acc = function
    | (p, s, e) :: ((q, _, _) :: _ as rest) ->
        let pat = if e > s then Xu.Until (p, q) else Xu.Next (p, q) in
        go ((pat, s, e) :: acc) rest
    | _ -> List.rev acc
  in
  go [] segs

let generate psm ~trace gamma delta =
  Psm_obs.span "generate.chain" @@ fun () ->
  let len = Prop_trace.length gamma in
  if len = 0 then invalid_arg "Generator.generate: empty proposition trace";
  if len <> Power_trace.length delta then
    invalid_arg "Generator.generate: proposition and power traces differ in length";
  if Prop_trace.table gamma != Psm.prop_table psm then
    invalid_arg "Generator.generate: proposition table mismatch";
  let triplets, trailing =
    if Runs.use () then
      (triplets_of_segments (Prop_trace.segments gamma), Some (len - 1))
    else begin
      let xu = Xu.initialize gamma in
      (* Collect ⟨pattern, start, stop⟩ triplets, then apply the trailing
         extension to the last one. *)
      let rec collect acc =
        match Xu.get_assertion xu with
        | Some triplet -> collect (triplet :: acc)
        | None -> List.rev acc
      in
      let triplets = collect [] in
      (triplets, Xu.trailing_stop xu)
    end
  in
  Psm_obs.count "generate.xu_triplets" (List.length triplets);
  let triplets =
    (* End-of-trace attribution. A trailing run of a single instant is
       folded into the last pattern's interval (the paper's own example:
       ⟨p_c X p_d, 6, 7⟩ covers p_d's instant); a longer trailing run —
       the trace was cut mid-behaviour — becomes its own absorbing state
       asserting the run persists, so its power cannot pollute the last
       recognized state's attributes. *)
    match (trailing, List.rev triplets) with
    | None, _ -> triplets
    | Some stop, ((pat, start, last_stop) :: earlier as all) ->
        let tail_start = last_stop + 1 in
        let tail_prop = Prop_trace.prop_at gamma tail_start in
        if stop = tail_start then List.rev ((pat, start, stop) :: earlier)
        else List.rev ((Xu.Until (tail_prop, tail_prop), tail_start, stop) :: all)
    | Some stop, [] ->
        (* Single-run trace: one state asserting the run persists. *)
        let p = Prop_trace.prop_at gamma 0 in
        [ (Xu.Until (p, p), 0, stop) ]
  in
  let add (psm, prev) (pattern, start, stop) =
    let attr = Power_attr.of_interval delta ~trace ~start ~stop in
    let psm, id = Psm.add_state psm (assertion_of_pattern pattern) attr in
    let psm =
      match prev with
      | None -> Psm.add_initial psm id
      | Some prev_id ->
          let entry = match pattern with Xu.Until (p, _) | Xu.Next (p, _) -> p in
          Psm.add_transition psm ~src:prev_id ~guard:entry ~dst:id
    in
    (psm, Some id)
  in
  fst (List.fold_left add (psm, None) triplets)
