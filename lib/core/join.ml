type cluster_acc = {
  mutable members : int list; (* reverse order *)
  mutable attr : Power_attr.t;
  mutable components : (Assertion.t * Power_attr.t) list; (* reverse order *)
}

let pass config psm =
  let clusters : cluster_acc list ref = ref [] in
  List.iter
    (fun (s : Psm.state) ->
      let rec place = function
        | [] ->
            clusters :=
              !clusters
              @ [ { members = [ s.Psm.id ];
                    attr = s.Psm.attr;
                    components = List.rev s.Psm.components } ]
        | c :: rest ->
            if Merge.mergeable config c.attr s.Psm.attr then begin
              c.members <- s.Psm.id :: c.members;
              c.attr <- Power_attr.merge c.attr s.Psm.attr;
              c.components <- List.rev_append s.Psm.components c.components
            end
            else place rest
      in
      place !clusters)
    (Psm.states psm);
  let real_clusters =
    List.filter_map
      (fun c ->
        match c.members with
        | [] | [ _ ] -> None
        | members ->
            let components = List.rev c.components in
            let assertion = Assertion.alt (List.map fst components) in
            Some
              { Psm.members = List.rev members;
                new_assertion = assertion;
                new_attr = c.attr;
                new_components = components })
      !clusters
  in
  match real_clusters with
  | [] -> (psm, [], false)
  | cs ->
      let psm', mapping = Psm.merge_clusters psm ~internal_edges:`Self_loop cs in
      (psm', mapping, true)

let join_traced ?(config = Merge.default) psm =
  Psm_obs.span "combine.join" @@ fun () ->
  let before = Psm.state_count psm in
  let result = Simplify.compose_passes (pass config) psm in
  Psm_obs.count "combine.join_merged" (before - Psm.state_count (fst result));
  result

let join ?config psm = fst (join_traced ?config psm)
