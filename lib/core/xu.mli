(** The XU automaton (paper Fig. 5, left): a two-state recognizer that
    scrolls a two-slot FIFO over a proposition trace Γ and emits the
    maximal [until]/[next] temporal patterns.

    Protocol (mirroring [XU_initialize] / [XU_getAssertion] of the paper's
    Fig. 4): create with {!initialize}, then call {!get_assertion}
    repeatedly; each call traverses the automaton until a pattern is
    recognized and returns ⟨assertion, start, stop⟩, where [start..stop] is
    the interval where the assertion's lhs proposition holds. [None] plays
    the role of the paper's nil result: the trace is exhausted.

    End-of-trace semantics (fixed by the paper's own worked example, where
    ⟨p_c X p_d, 6, 7⟩ covers p_d's trailing instant): instants after the
    last complete pattern belong to the last recognized pattern — query
    {!trailing_stop} after exhaustion and extend the final state's interval
    accordingly, as {!Generator} does. *)

type pattern =
  | Until of int * int
  | Next of int * int

type t

val initialize : Psm_mining.Prop_trace.t -> t

val get_assertion : t -> (pattern * int * int) option
(** Next recognized pattern, or [None] when Γ is exhausted. *)

val fifo : t -> (int option * int option)
(** Current FIFO contents (f[0], f[1]); [None] encodes nil. Exposed for the
    Fig. 5 walkthrough test. *)

val automaton_state : t -> [ `X | `U ]

val trailing_stop : t -> int option
(** After {!get_assertion} returns [None]: the last instant of Γ if any
    instants remained unattributed (the paper-example extension rule), else
    [None]. *)
