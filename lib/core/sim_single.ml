module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table

type result = {
  estimate : float array;
  desyncs : int list;
  synchronized_fraction : float;
}

type step_outcome = Stay | Advance | Desync

let simulate psm trace =
  if Psm.machine_count psm <> 1 then
    invalid_arg "Sim_single.simulate: PSM set must contain exactly one machine";
  (match Psm.initial psm with
  | [ _ ] -> ()
  | _ -> invalid_arg "Sim_single.simulate: need exactly one initial state");
  List.iter
    (fun (s : Psm.state) ->
      match s.Psm.assertion with
      | Assertion.Until _ | Assertion.Next _ -> ()
      | Assertion.Seq _ | Assertion.Alt _ ->
          invalid_arg "Sim_single.simulate: composite assertions need the HMM simulator")
    (Psm.states psm);
  let table = Psm.prop_table psm in
  let hd = Functional_trace.input_hamming_series trace in
  let n = Functional_trace.length trace in
  let estimate = Array.make n 0. in
  let desyncs = ref [] in
  let current = ref (List.hd (Psm.initial psm)) in
  let just_entered = ref true in
  let unique_successor id =
    match Psm.successors psm id with
    | [ tr ] -> Some tr.Psm.dst
    | [] -> None
    | _ -> invalid_arg "Sim_single.simulate: state with several successors (not a chain)"
  in
  Functional_trace.iter
    (fun t sample ->
      let observed = Table.classify table sample in
      let s = Psm.state psm !current in
      let outcome =
        match (observed, s.Psm.assertion) with
        | None, _ -> Desync
        | Some o, Assertion.Until (p, q) ->
            if o = p then Stay else if o = q then Advance else Desync
        | Some o, Assertion.Next (p, q) ->
            if !just_entered then if o = p then Stay else Desync
            else if o = q then Advance
            else Desync
        | Some _, (Assertion.Seq _ | Assertion.Alt _) -> assert false
      in
      (match outcome with
      | Stay -> just_entered := false
      | Advance -> (
          match unique_successor !current with
          | Some next ->
              current := next;
              just_entered := false
          | None ->
              (* Final state of the chain: it absorbs the rest of the
                 trace, as its training interval did. *)
              ())
      | Desync -> desyncs := t :: !desyncs);
      let s = Psm.state psm !current in
      estimate.(t) <- Psm.eval_output s.Psm.output ~hamming:hd.(t))
    trace;
  let desyncs = List.rev !desyncs in
  { estimate;
    desyncs;
    synchronized_fraction =
      (if n = 0 then 1.
       else 1. -. (float_of_int (List.length desyncs) /. float_of_int n)) }
