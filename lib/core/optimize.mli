(** Data-dependent-state optimization (paper Sec. IV, final step).

    States whose power standard deviation is "too high" relative to their
    mean are likely data-dependent: a constant μ misrepresents them. For
    such states, the per-instant power over the state's source intervals is
    regressed against the Hamming distance between consecutive primary-
    input values of the corresponding functional traces; when the linear
    correlation is strong (|Pearson r| ≥ [correlation_threshold] — the
    paper's necessary condition for an accurate regression), the state's
    output function is replaced by the fitted affine function. *)

type config = {
  sigma_threshold : float;
      (** Relative σ/μ above which a state is a candidate; default 0.05. *)
  correlation_threshold : float;  (** Default 0.7. *)
}

val default : config

type report = {
  state_id : int;
  relative_sigma : float;
  correlation : float;
  upgraded : bool;
}

val optimize :
  ?config:config ->
  traces:Psm_trace.Functional_trace.t array ->
  powers:Psm_trace.Power_trace.t array ->
  Psm.t ->
  Psm.t * report list
(** [traces] and [powers] are the training pairs indexed by the trace tags
    recorded in the states' power-attribute intervals. Returns the
    optimized PSM set and a per-candidate report. *)
