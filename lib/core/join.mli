(** The [join] procedure (paper Sec. IV, Fig. 6b): merge mergeable states
    regardless of adjacency, across all PSMs of the set, producing states
    that carry alternative assertions {pᵢ ‖ pⱼ ‖ …} and inherit every
    predecessor and successor transition of their members.

    Clustering is greedy in state-id order: each state joins the first
    existing cluster whose accumulated attributes it is mergeable with
    (O(S·C) instead of the quadratic all-pairs search; C is the number of
    distinct power modes, which is small). Transitions between members of
    one cluster become self-loops. The procedure iterates until no two
    clusters can merge.

    When a cluster absorbs states with identical assertions (and matching
    guards), the result is a non-deterministic PSM — resolved during
    simulation by the HMM (paper Sec. V). *)

val join : ?config:Merge.config -> Psm.t -> Psm.t

val join_traced : ?config:Merge.config -> Psm.t -> Psm.t * (int -> int)
(** Also returns the total (state id → final state id) mapping across all
    merge passes. *)
