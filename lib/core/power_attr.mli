(** Power attributes of a PSM state: the triplet ⟨μ, σ, n⟩ plus the source
    intervals it was computed from (the paper's ⟨p, start, stop⟩ bookkeeping,
    generalized to interval *lists* after [simplify]/[join] and tagged with
    the training trace each interval came from). *)

type interval = { trace : int; start : int; stop : int }
(** Inclusive instants [start..stop] of training trace number [trace]. *)

type t = {
  mu : float;  (** Mean energy per instant. *)
  sigma : float;  (** Sample standard deviation. *)
  n : int;  (** Number of instants. *)
  intervals : interval list;  (** In merge order. *)
}

val of_interval : Psm_trace.Power_trace.t -> trace:int -> start:int -> stop:int -> t
(** [getPowerAttributes] of the paper's Fig. 4. *)

val merge : t -> t -> t
(** Combined attributes over the union of the source intervals. μ and σ
    are produced by the exact parallel-variance (Chan) formula, which
    yields the same values as rescanning the reference power traces over
    [intervals a @ intervals b]. *)

val recompute : Psm_trace.Power_trace.t array -> t -> t
(** Rescan the reference power traces (indexed by [interval.trace]) over
    [t.intervals] — the paper's literal definition of merged attributes.
    Used by tests to confirm {!merge} is exact. *)

val relative_sigma : t -> float
(** σ/μ, or σ itself when μ = 0 — the "too high standard deviation"
    criterion of the data-dependent-state optimization. *)

val pp : Format.formatter -> t -> unit
