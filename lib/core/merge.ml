module Ttest = Psm_stats.Ttest

type config = {
  epsilon : float;
  alpha : float;
  min_n_for_test : int;
  practical_equivalence : bool;
}

let default =
  { epsilon = 0.15; alpha = 0.005; min_n_for_test = 4; practical_equivalence = true }

type case = Case1_next_next | Case2_until_until | Case3_until_next

let case_of (a : Power_attr.t) (b : Power_attr.t) =
  match (a.n, b.n) with
  | 1, 1 -> Case1_next_next
  | 1, _ | _, 1 -> Case3_until_next
  | _ -> Case2_until_until

let close_means config mu1 mu2 =
  let scale = Float.max (abs_float mu1) (abs_float mu2) in
  if scale = 0. then true else abs_float (mu1 -. mu2) < config.epsilon *. scale

let mergeable config (a : Power_attr.t) (b : Power_attr.t) =
  if config.epsilon <= 0. then invalid_arg "Merge: epsilon must be positive";
  let small x = x.Power_attr.n < config.min_n_for_test in
  let by_test =
    match case_of a b with
    | Case1_next_next -> close_means config a.mu b.mu
    | Case2_until_until ->
        if small a || small b then close_means config a.mu b.mu
        else
          Ttest.equal_means ~alpha:config.alpha
            (Ttest.welch ~mean1:a.mu ~stddev1:a.sigma ~n1:a.n ~mean2:b.mu
               ~stddev2:b.sigma ~n2:b.n)
    | Case3_until_next ->
        let pop, single = if a.n > 1 then (a, b) else (b, a) in
        if small pop then close_means config a.mu b.mu
        else
          Ttest.equal_means ~alpha:config.alpha
            (Ttest.one_sample ~mean:pop.mu ~stddev:pop.sigma ~n:pop.n
               ~value:single.mu)
  in
  by_test || (config.practical_equivalence && close_means config a.mu b.mu)
