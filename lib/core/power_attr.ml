module Power_trace = Psm_trace.Power_trace
module Online = Psm_stats.Descriptive.Online

type interval = { trace : int; start : int; stop : int }

type t = { mu : float; sigma : float; n : int; intervals : interval list }

let of_interval power ~trace ~start ~stop =
  let mu, sigma, n = Power_trace.attributes power ~start ~stop in
  { mu; sigma; n; intervals = [ { trace; start; stop } ] }

let merge a b =
  (* Chan et al. parallel combination of (μ, σ, n) summaries; exact. *)
  let na = float_of_int a.n and nb = float_of_int b.n in
  let n = a.n + b.n in
  let nf = na +. nb in
  let mu = ((a.mu *. na) +. (b.mu *. nb)) /. nf in
  let m2 a' =
    (* Back out the sum of squared deviations from the unbiased sigma. *)
    a'.sigma *. a'.sigma *. float_of_int (max (a'.n - 1) 0)
  in
  let delta = b.mu -. a.mu in
  let m2_total = m2 a +. m2 b +. (delta *. delta *. na *. nb /. nf) in
  let sigma = if n < 2 then 0. else sqrt (m2_total /. (nf -. 1.)) in
  { mu; sigma; n; intervals = a.intervals @ b.intervals }

let recompute powers t =
  let acc = Online.create () in
  List.iter
    (fun { trace; start; stop } ->
      let p = powers.(trace) in
      for i = start to stop do
        Online.add acc (Power_trace.get p i)
      done)
    t.intervals;
  { t with mu = Online.mean acc; sigma = Online.stddev acc; n = Online.count acc }

let relative_sigma t = if t.mu = 0. then t.sigma else t.sigma /. abs_float t.mu

let pp fmt t =
  Format.fprintf fmt "mu=%.4g sigma=%.4g n=%d (%d intervals)" t.mu t.sigma t.n
    (List.length t.intervals)
