(** Temporal assertions characterizing PSM states.

    The two primitive patterns are the paper's [until] and [next]
    (Sec. III-B), over interned proposition ids:

    - [Until (p, q)] — ((state = p) until (state = q)): the IP stays in a
      condition where [p] holds for one or more instants, then [q] holds;
    - [Next (p, q)] — ((state = p) → next (state = q)): [p] holds for
      exactly one instant, immediately followed by [q].

    [simplify] composes adjacent states' assertions sequentially
    ([Seq], the paper's "{pᵢ; pᵢ₊₁; …}") and [join] composes merged
    states' assertions as alternatives ([Alt], "{pᵢ ‖ pⱼ ‖ …}"). *)

type t =
  | Until of int * int
  | Next of int * int
  | Seq of t list  (** ≥ 2 elements, none of which is a [Seq]. *)
  | Alt of t list  (** ≥ 2 elements, none of which is an [Alt]. *)

val seq : t list -> t
(** Smart constructor: flattens nested [Seq]s, returns the single element
    unchanged for a one-element list. Raises [Invalid_argument] on []. *)

val alt : t list -> t
(** Smart constructor: flattens nested [Alt]s and deduplicates (keeping
    multiplicity information is the caller's concern — see the HMM B
    matrix); single element returned unchanged. *)

val alternatives : t -> t list
(** The list of alternatives ([t] itself when it is not an [Alt]). *)

val entry_props : t -> int list
(** Propositions that can hold on entering a state with this assertion:
    the lhs of the first pattern of each alternative. *)

val exit_props : t -> int list
(** Propositions whose occurrence completes the assertion (the rhs [q] of
    the final pattern of each alternative) — these guard the outgoing
    transitions. *)

val props : t -> int list
(** All proposition ids mentioned, without duplicates. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val subsumes : t -> t -> bool
(** [subsumes a b]: every proposition run matching [a] also matches [b]
    (sound, not complete). Holds for equal assertions, for
    [Next (p, q)] into [Until (p, q)] (the length-2 case), elementwise
    over equal-length [Seq]s, and through [Alt] (every branch of the
    left, some branch of the right). An [Alt] branch subsumed by a
    sibling is redundant — the vacuity rule's main client. *)

val pp : Format.formatter -> t -> unit
(** Abstract rendering with raw ids, e.g. [p3 U p5]. *)

val pp_named : (int -> string) -> Format.formatter -> t -> unit
(** Rendering with a proposition-name function. *)

val to_string : (int -> string) -> t -> string
