(** Reproduction harness for the paper's evaluation (Sec. VI): generators
    for each row of Tables I, II and III and for the worked examples of
    Figs. 2, 3 and 5. The bench executable prints these; EXPERIMENTS.md
    records the measured values against the paper's. *)

type ip_spec = {
  ip_name : string;
  make : unit -> Psm_ips.Ip.t;
  source_files : string list;  (** For the "Lines" column of Table I. *)
}

val benchmark_ips : ip_spec list
(** RAM, MultSum, AES, Camellia — the paper's Table I set. *)

(** {1 Table I — benchmark characteristics} *)

type table1_row = {
  t1_name : string;
  lines : int option;  (** LoC of our models; [None] outside the repo. *)
  pi_bits : int;
  po_bits : int;
  elaboration_s : float option;
      (** Gate-level elaboration time — the "Syn. time" substitute; [None]
          when no structural netlist exists for the IP. *)
  gates : int option;
  logic_depth : int option;
      (** Longest combinational path of the structural netlist. *)
  memory_elements : int;
}

val table1 : unit -> table1_row list

(** {1 Table II — generated-PSM characteristics} *)

type table2_row = {
  t2_name : string;
  ts : int;  (** Trace length (instants). *)
  px_s : float;
      (** Gate-level reference power simulation time over the suite — the
          PrimeTime-PX substitute. Measured on a sample of the suite and
          scaled linearly when the suite is long (the netlist simulator's
          per-cycle cost is constant); EXPERIMENTS.md records the sample
          size. *)
  capture_s : float;
      (** Behavioural capture time (the training traces actually used). *)
  gen_s : float;  (** PSM generation time (mining + generation + combine). *)
  states : int;
  transitions : int;
  mre : float;  (** On the training testset, as in the paper. *)
}

val table2_row : ?config:Flow.config -> total_length:int -> long:bool -> ip_spec -> table2_row

val table2 : ?short_lengths:bool -> ?long_length:int -> unit -> table2_row list
(** All eight rows: the four IPs with short-TS (paper trace lengths when
    [short_lengths], default true) then with long-TS ([long_length]
    defaults to 500000). *)

(** {1 Table III — simulation performance and accuracy} *)

type table3_row = {
  t3_name : string;
  ip_sim_s : float;  (** Bare IP simulation over the evaluation set. *)
  ip_psm_s : float;  (** IP + PSM/HMM lockstep co-simulation. *)
  overhead : float;  (** (ip_psm − ip_sim) / ip_sim. *)
  px_gate_s : float;
      (** Gate-level power simulation time over the same evaluation set
          (sampled + scaled) — what the PSMs replace. *)
  speedup : float;  (** px_gate_s / ip_psm_s: the paper's headline claim. *)
  t3_mre : float;  (** PSMs from short-TS, evaluated on long-TS. *)
  wsp : float;
}

val table3_row : ?config:Flow.config -> eval_length:int -> ip_spec -> table3_row

val table3 : ?eval_length:int -> unit -> table3_row list
(** [eval_length] defaults to 500000 instants, as in the paper. *)

(** {1 Worked examples (Figs. 2, 3, 5)} *)

val fig2_psm : unit -> Psm_core.Psm.t
(** The paper's Fig. 2 three-state off/idle/on example PSM, built by hand
    over a tiny vocabulary; render with {!Psm_core.Dot}. *)

type fig3 = {
  functional : Psm_trace.Functional_trace.t;
  power : Psm_trace.Power_trace.t;
  table : Psm_mining.Prop_trace.Table.t;
  gamma : Psm_mining.Prop_trace.t;
}

val fig3_example : unit -> fig3
(** The paper's Fig. 3 worked example: the 8-instant functional trace over
    v1..v4, its mined proposition trace (p_a..p_d over [0,2], [3,5], [6,6],
    [7,7]) and the power trace. *)

val fig5_psm : fig3 -> Psm_core.Psm.t
(** Runs PSMGenerator on the Fig. 3 traces, reproducing Fig. 5's chain:
    ⟨p_a U p_b, 0, 2⟩ → ⟨p_b U p_c, 3, 5⟩ → ⟨p_c X p_d, 6, 7⟩. *)
