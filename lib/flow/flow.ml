let log_src = Logs.Src.create "psm.flow" ~doc:"PSM generation flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm
module Multi_sim = Psm_hmm.Multi_sim
module Accuracy = Psm_hmm.Accuracy

module Analyzer = Psm_analysis.Analyzer

type config = {
  miner : Miner.config;
  merge : Psm_core.Merge.config;
  optimize : Psm_core.Optimize.config;
  power : Psm_rtl.Power_model.config;
  analysis : Analyzer.config;
}

let default =
  { miner = Miner.default;
    merge = Psm_core.Merge.default;
    optimize = Psm_core.Optimize.default;
    power = Psm_rtl.Power_model.default;
    analysis = Analyzer.default }

type timings = { mine_s : float; generate_s : float; combine_s : float; analyze_s : float }

let total_generation_s t = t.mine_s +. t.generate_s +. t.combine_s

type trained = {
  config : config;
  table : Prop_trace.Table.t;
  traces : Functional_trace.t array;
  powers : Power_trace.t array;
  gammas : Prop_trace.t array;
  raw : Psm.t;
  optimized : Psm.t;
  optimize_reports : Psm_core.Optimize.report list;
  hmm : Hmm.t;
  transition_counts : ((int * int) * float) list;
  emission_counts : ((int * int) * float) list;
  analysis : Psm_analysis.Finding.t list;
  timings : timings;
}

(* Exception-safe stage timing: the slot is written even when the stage
   raises, and the [Psm_obs] span closes too, so a failing pipeline still
   leaves a partial profile behind (the stages that did run keep their
   recorded durations). *)
let timed name slot f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> slot := Unix.gettimeofday () -. t0)
    (fun () -> Psm_obs.span name f)

let train ?(config = default) ~traces ~powers () =
  Psm_obs.span "flow.train" @@ fun () ->
  let mine_slot = ref 0. in
  let generate_slot = ref 0. in
  let combine_slot = ref 0. in
  let analyze_slot = ref 0. in
  if List.length traces <> List.length powers then
    invalid_arg "Flow.train: traces and powers differ in number";
  if traces = [] then invalid_arg "Flow.train: no training traces";
  List.iter2
    (fun t p ->
      if Functional_trace.length t <> Power_trace.length p then
        invalid_arg "Flow.train: functional/power trace length mismatch")
    traces powers;
  (* Mining: shared vocabulary, then one proposition trace per training
     trace against a shared interning table. *)
  let table, prop_traces =
    timed "flow.mine" mine_slot (fun () ->
        let vocabulary = Miner.mine_vocabulary ~config:config.miner traces in
        let table = Prop_trace.Table.create vocabulary in
        (table, List.map (Prop_trace.of_functional table) traces))
  in
  let mine_s = !mine_slot in
  Log.info (fun m ->
      m "mining: %d atoms, %d propositions over %d traces in %.3fs"
        (Psm_mining.Vocabulary.size (Prop_trace.Table.vocabulary table))
        (Prop_trace.Table.prop_count table) (List.length traces) mine_s);
  (* Generation: one chain per trace, accumulated into one PSM set. *)
  let raw =
    timed "flow.generate" generate_slot (fun () ->
        let psm = Psm.empty table in
        List.fold_left
          (fun (psm, idx) (gamma, delta) ->
            (Psm_core.Generator.generate psm ~trace:idx gamma delta, idx + 1))
          (psm, 0)
          (List.combine prop_traces powers)
        |> fst)
  in
  let generate_s = !generate_slot in
  Log.info (fun m ->
      m "generation: %d raw chain states in %.3fs" (Psm.state_count raw) generate_s);
  (* Combination and optimization. *)
  let traces_arr = Array.of_list traces in
  let powers_arr = Array.of_list powers in
  let gammas_arr = Array.of_list prop_traces in
  let optimized, optimize_reports, hmm, transition_counts, emission_counts =
    timed "flow.combine" combine_slot (fun () ->
        let simplified, simplify_map =
          Psm_core.Simplify.simplify_traced ~config:config.merge raw
        in
        let joined, join_map = Psm_core.Join.join_traced ~config:config.merge simplified in
        let optimized, reports =
          Psm_core.Optimize.optimize ~config:config.optimize ~traces:traces_arr
            ~powers:powers_arr joined
        in
        (* Project the raw chains' transition frequencies onto the final
           machine: every chain edge is one training occurrence. *)
        let final id = join_map (simplify_map id) in
        let counts = Hashtbl.create 64 in
        List.iter
          (fun (tr : Psm.transition) ->
            let key = (final tr.Psm.src, final tr.Psm.dst) in
            Hashtbl.replace counts key
              (1. +. Option.value ~default:0. (Hashtbl.find_opt counts key)))
          (Psm.transitions raw);
        let transition_counts =
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
        in
        (* Emission frequencies: which propositions were observed while
           each final state was active (for offline Viterbi decoding). *)
        let gammas = gammas_arr in
        let emission_counts =
          List.concat_map
            (fun (s : Psm.state) ->
              let per_prop = Hashtbl.create 8 in
              let bump p n =
                Hashtbl.replace per_prop p
                  (float_of_int n +. Option.value ~default:0. (Hashtbl.find_opt per_prop p))
              in
              List.iter
                (fun iv ->
                  let gamma = gammas.(iv.Psm_core.Power_attr.trace) in
                  if Psm_trace.Runs.use () then
                    (* One bump per Γ segment in the window; integer
                       counts accumulated in floats stay exact, and props
                       first appear in the same time order, so the table
                       (and its fold order) matches the per-cycle loop. *)
                    Prop_trace.iter_prop_runs gamma ~start:iv.Psm_core.Power_attr.start
                      ~stop:iv.Psm_core.Power_attr.stop
                      (fun p ~start:_ ~len -> bump p len)
                  else
                    for t = iv.Psm_core.Power_attr.start to iv.Psm_core.Power_attr.stop do
                      bump (Prop_trace.prop_at gamma t) 1
                    done)
                s.Psm.attr.Psm_core.Power_attr.intervals;
              Hashtbl.fold (fun p c acc -> ((s.Psm.id, p), c) :: acc) per_prop [])
            (Psm.states optimized)
          |> List.sort compare
        in
        ( optimized,
          reports,
          Hmm.build ~transition_counts ~emission_counts optimized,
          transition_counts,
          emission_counts ))
  in
  let combine_s = !combine_slot in
  Log.info (fun m ->
      m "combination: %d states, %d transitions, %d regression states in %.3fs"
        (Psm.state_count optimized) (Psm.transition_count optimized)
        (List.length (List.filter (fun r -> r.Psm_core.Optimize.upgraded) optimize_reports))
        combine_s);
  (* Gate-check the model like a compiler pass: the raw chains first (a
     generator bug must be blamed on the generator, not on simplify), then
     the combined model with the full training context. *)
  let analysis =
    timed "flow.analyze" analyze_slot (fun () ->
        let gammas = gammas_arr in
        let raw_findings =
          Analyzer.analyze ~config:config.analysis ~gammas ~powers:powers_arr raw
        in
        (* Raw-chain findings are re-located on states that no longer
           exist after combination; surface them but keep the combined
           model's findings as the record of truth. *)
        (match Psm_analysis.Finding.errors raw_findings with
        | [] -> ()
        | errors ->
            Log.warn (fun m ->
                m "analysis: raw chains have %d error finding(s): %a"
                  (List.length errors)
                  (Format.pp_print_list Psm_analysis.Finding.pp)
                  errors));
        Analyzer.analyze ~config:config.analysis ~hmm ~gammas ~powers:powers_arr
          optimized)
  in
  let analyze_s = !analyze_slot in
  Psm_obs.gc_snapshot "train";
  Log.info (fun m ->
      m "analysis: %s in %.3fs" (Psm_analysis.Report.summary analysis) analyze_s);
  { config;
    table;
    traces = traces_arr;
    powers = powers_arr;
    gammas = gammas_arr;
    raw;
    optimized;
    optimize_reports;
    hmm;
    transition_counts;
    emission_counts;
    analysis;
    timings = { mine_s; generate_s; combine_s; analyze_s } }

let lint trained =
  Psm_obs.span "flow.lint" @@ fun () ->
  (* The proposition traces were interned once at training time and ride
     along in [trained.gammas]; re-deriving them per lint call repeated
     the full classification pass for no benefit (the table is immutable
     after training). *)
  let gammas = trained.gammas in
  let findings =
    Analyzer.analyze ~config:trained.config.analysis ~hmm:trained.hmm ~gammas
      ~powers:trained.powers trained.optimized
  in
  (* Self-accounting: warn when the analyzer cost more than the allowed
     fraction of the generation pipeline it was checking. *)
  let overhead =
    Analyzer.overhead_check ~config:trained.config.analysis
      ~analyze_s:trained.timings.analyze_s
      ~generation_s:(total_generation_s trained.timings) ()
  in
  Psm_analysis.Finding.sort (findings @ overhead)

let verify ?coverage_budget ?max_gaps trained =
  Psm_obs.span "flow.verify" @@ fun () ->
  Psm_verify.Verify.run ?coverage_budget ?max_gaps trained.optimized

let split_stimulus stimulus ~parts =
  if parts <= 0 then invalid_arg "Flow.split_stimulus: parts must be positive";
  let n = Array.length stimulus in
  (* min n parts chunks: a stimulus shorter than the requested fan-out
     degrades to one single-sample chunk per sample instead of one
     unsplittable blob (which serialized the whole workload onto one
     worker). The empty stimulus keeps its single empty chunk. *)
  if n = 0 then [ stimulus ]
  else begin
    let parts = min parts n in
    let base = n / parts in
    List.init parts (fun k ->
        let start = k * base in
        let len = if k = parts - 1 then n - start else base in
        Array.sub stimulus start len)
  end

type ingested = {
  path : string;
  functional : Functional_trace.t;
  power : Power_trace.t;
  ingest : Psm_trace.Reader.stats;
}

let load_vcd ?unknowns ?period path =
  Psm_obs.span "flow.load_vcd" @@ fun () ->
  let parsed = Psm_trace.Vcd.parse_file ?unknowns ?period path in
  match parsed.Psm_trace.Vcd.power with
  | None ->
      invalid_arg
        (Printf.sprintf "Flow.load_vcd: %s carries no %s real variable" path
           Psm_trace.Vcd.power_var_name)
  | Some power ->
      Log.info (fun m ->
          m "ingested %s: %a" path Psm_trace.Reader.pp_stats
            parsed.Psm_trace.Vcd.stats);
      { path;
        functional = parsed.Psm_trace.Vcd.trace;
        power;
        ingest = parsed.Psm_trace.Vcd.stats }

let train_on_vcd_files ?config ?unknowns ?period paths =
  if paths = [] then invalid_arg "Flow.train_on_vcd_files: no files";
  let ingested = Psm_par.parallel_map (load_vcd ?unknowns ?period) paths in
  let trained =
    train ?config
      ~traces:(List.map (fun i -> i.functional) ingested)
      ~powers:(List.map (fun i -> i.power) ingested)
      ()
  in
  (trained, ingested)

let train_on_ip ?(config = default) ip stimuli =
  let pairs =
    List.map (fun stimulus -> Psm_ips.Capture.run ~config:config.power ip stimulus) stimuli
  in
  train ~config ~traces:(List.map fst pairs) ~powers:(List.map snd pairs) ()

let evaluate trained trace ~reference =
  Psm_obs.span "flow.evaluate" @@ fun () ->
  let result = Multi_sim.simulate trained.hmm trace in
  (Accuracy.of_result ~reference result, result)

let evaluate_on_ip trained ip stimulus =
  let trace, reference = Psm_ips.Capture.run ~config:trained.config.power ip stimulus in
  evaluate trained trace ~reference

let cosim_timed trained (ip : Psm_ips.Ip.t) stimulus =
  Psm_obs.span "flow.cosim" @@ fun () ->
  ip.Psm_ips.Ip.reset ();
  let stepper = Multi_sim.Stepper.create trained.hmm in
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun pis ->
      let pos, _activity = ip.Psm_ips.Ip.step pis in
      let sample = Array.append pis pos in
      ignore (Multi_sim.Stepper.step stepper sample))
    stimulus;
  Unix.gettimeofday () -. t0
