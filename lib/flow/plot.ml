module PT = Psm_trace.Power_trace
module Multi_sim = Psm_hmm.Multi_sim

let data_string ~reference ~(result : Multi_sim.result) =
  let n = PT.length reference in
  if n <> Array.length result.Multi_sim.estimate then
    invalid_arg "Plot.data_string: reference and estimate lengths differ";
  let buf = Buffer.create (n * 48) in
  Buffer.add_string buf "# time reference estimate relative_error state\n";
  for t = 0 to n - 1 do
    let r = PT.get reference t in
    let e = result.Multi_sim.estimate.(t) in
    let err = if r > 0. then abs_float (e -. r) /. r else 0. in
    Buffer.add_string buf
      (Printf.sprintf "%d %.9g %.9g %.6f %d\n" t r e err result.Multi_sim.state_trace.(t))
  done;
  Buffer.contents buf

let script_string ~basename ~title =
  String.concat "\n"
    [ "set terminal svg size 1200,600";
      Printf.sprintf "set output '%s.svg'" basename;
      Printf.sprintf "set title '%s'" title;
      "set multiplot layout 2,1";
      "set ylabel 'energy (J/cycle)'";
      Printf.sprintf
        "plot '%s.dat' using 1:2 with lines title 'reference', \\" basename;
      Printf.sprintf "     '%s.dat' using 1:3 with lines title 'PSM estimate'" basename;
      "set ylabel 'relative error'";
      "set yrange [0:*]";
      Printf.sprintf "plot '%s.dat' using 1:4 with impulses title 'error'" basename;
      "unset multiplot";
      "" ]

let write ~basename ~title ~reference ~result =
  let write_file path contents =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
  in
  write_file (basename ^ ".dat") (data_string ~reference ~result);
  write_file (basename ^ ".gp") (script_string ~basename ~title)
