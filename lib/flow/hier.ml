module Decomposed = Psm_ips.Decomposed
module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Power_model = Psm_rtl.Power_model
module Multi_sim = Psm_hmm.Multi_sim
module Accuracy = Psm_hmm.Accuracy

type trained = { parts : (string * Flow.trained) list }

(* Subcomponent boundaries are narrow internal buses whose whole value
   range is behaviourally meaningful (e.g. a pipeline utilization level),
   so the hierarchical flow lifts the per-signal constant-atom cap that
   protects top-level flows from bus-value explosion. *)
let default_config =
  { Flow.default with
    Flow.miner =
      { Psm_mining.Miner.default with Psm_mining.Miner.max_consts_per_signal = 16 };
    (* Subcomponent power levels sit much closer together than whole-IP
       modes; the merge tolerance tightens accordingly. *)
    merge = { Psm_core.Merge.default with Psm_core.Merge.epsilon = 0.05 } }

let capture ?(config = Power_model.default) (d : Decomposed.t) stimulus =
  d.Decomposed.reset ();
  let k = List.length d.Decomposed.components in
  let n = Array.length stimulus in
  let builders =
    List.map
      (fun (c : Decomposed.component) ->
        Functional_trace.Builder.create c.Decomposed.comp_interface)
      d.Decomposed.components
  in
  let energies = Array.init k (fun _ -> Array.make n 0.) in
  let totals = Array.make n 0. in
  Array.iteri
    (fun t pis ->
      let _pos, parts = d.Decomposed.step pis in
      if List.length parts <> k then
        invalid_arg "Hier.capture: component count mismatch";
      List.iteri
        (fun i (sample, activity) ->
          Functional_trace.Builder.append (List.nth builders i) sample;
          let e = Power_model.energy_of_weighted_activity config activity in
          (Array.get energies i).(t) <- e;
          totals.(t) <- totals.(t) +. e)
        parts)
    stimulus;
  let pairs =
    List.mapi
      (fun i b ->
        (Functional_trace.Builder.finish b, Power_trace.of_array energies.(i)))
      builders
  in
  (pairs, Power_trace.of_array totals)

let train ?(config = default_config) (d : Decomposed.t) stimuli =
  (* One capture per testbench; regroup by component. *)
  let runs = List.map (fun stimulus -> fst (capture ~config:config.Flow.power d stimulus)) stimuli in
  let parts =
    List.mapi
      (fun i (c : Decomposed.component) ->
        let traces = List.map (fun run -> fst (List.nth run i)) runs in
        let powers = List.map (fun run -> snd (List.nth run i)) runs in
        (c.Decomposed.comp_name, Flow.train ~config ~traces ~powers ()))
      d.Decomposed.components
  in
  { parts }

let evaluate trained (d : Decomposed.t) stimulus =
  let pairs, total = capture d stimulus in
  let n = Power_trace.length total in
  let estimate = Array.make n 0. in
  let worst_wsp = ref 0. in
  List.iter2
    (fun (_, part) (trace, _) ->
      let result = Multi_sim.simulate part.Flow.hmm trace in
      Array.iteri (fun t e -> estimate.(t) <- estimate.(t) +. e) result.Multi_sim.estimate;
      worst_wsp := Float.max !worst_wsp result.Multi_sim.wsp)
    trained.parts pairs;
  Accuracy.of_estimate ~reference:total ~estimate ~wsp:!worst_wsp

let total_states trained =
  List.fold_left
    (fun acc (_, part) -> acc + Psm_core.Psm.state_count part.Flow.optimized)
    0 trained.parts

(* ---------- persistence ---------- *)

let part_marker = "=== part "

let save trained =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "psm-repro-hier 1 %d\n" (List.length trained.parts));
  List.iter
    (fun (name, part) ->
      Buffer.add_string buf (Printf.sprintf "%s%s ===\n" part_marker name);
      Buffer.add_string buf (Persist.save part))
    trained.parts;
  Buffer.contents buf

let save_file path trained =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save trained))

type loaded_part = { part_name : string; model : Persist.model }

let load text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | header :: _ when String.length header >= 15
                     && String.sub header 0 15 = "psm-repro-hier " -> ()
  | _ -> raise (Persist.Parse_error "bad hierarchical model header"));
  (* Split on part markers. *)
  let parts = ref [] in
  let current_name = ref None in
  let current = Buffer.create 1024 in
  let flush () =
    match !current_name with
    | None -> ()
    | Some name ->
        parts := { part_name = name; model = Persist.load (Buffer.contents current) } :: !parts;
        Buffer.clear current
  in
  List.iteri
    (fun i line ->
      if i = 0 then ()
      else if String.length line > String.length part_marker
              && String.sub line 0 (String.length part_marker) = part_marker then begin
        flush ();
        let rest =
          String.sub line (String.length part_marker)
            (String.length line - String.length part_marker)
        in
        let name = String.trim (String.concat "" (String.split_on_char '=' rest)) in
        current_name := Some name
      end
      else begin
        Buffer.add_string current line;
        Buffer.add_char current '\n'
      end)
    lines;
  flush ();
  List.rev !parts

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      load (really_input_string ic len))

let evaluate_loaded parts (d : Decomposed.t) stimulus =
  let pairs, total = capture d stimulus in
  let n = Power_trace.length total in
  let estimate = Array.make n 0. in
  let worst_wsp = ref 0. in
  List.iteri
    (fun i (c : Decomposed.component) ->
      let part =
        match List.find_opt (fun p -> p.part_name = c.Decomposed.comp_name) parts with
        | Some p -> p
        | None ->
            raise
              (Persist.Parse_error
                 ("hierarchical model lacks part " ^ c.Decomposed.comp_name))
      in
      let trace, _ = List.nth pairs i in
      let result = Multi_sim.simulate part.model.Persist.hmm trace in
      Array.iteri (fun t e -> estimate.(t) <- estimate.(t) +. e) result.Multi_sim.estimate;
      worst_wsp := Float.max !worst_wsp result.Multi_sim.wsp)
    d.Decomposed.components;
  Accuracy.of_estimate ~reference:total ~estimate ~wsp:!worst_wsp
