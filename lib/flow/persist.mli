(** Model persistence: serialize a trained PSM power model so it can be
    trained once and shipped/loaded without the training traces.

    The format is a line-oriented text file (versioned header) carrying
    the interface, the atomic-proposition vocabulary, the interned
    proposition rows, every PSM state (assertion, power attributes,
    output function, components), transitions, initial states and the
    HMM's training frequencies — everything {!Psm_hmm.Multi_sim} and
    {!Psm_hmm.Offline} need at simulation time.

    Not persisted: the raw pre-combination chains, the training traces
    themselves and the optimization reports (re-running {!Flow.train} is
    the way to get those back). *)

type model = {
  table : Psm_mining.Prop_trace.Table.t;
  psm : Psm_core.Psm.t;
  hmm : Psm_hmm.Hmm.t;
}

val save : Flow.trained -> string
(** Serialize the combined (optimized) model. *)

val save_file : string -> Flow.trained -> unit

exception Parse_error of string

val load : string -> model
(** Raises {!Parse_error} on malformed input or version mismatch. The
    error names the offending source, the header found and the header
    expected (plus a redirect hint when the file is actually a
    streaming-trainer checkpoint). *)

val load_file : string -> model

val save_trainer_file : string -> Stream_train.Trainer.t -> unit
(** Checkpoint an in-flight streaming trainer. Alias of
    {!Stream_train.Checkpoint.save_file}, housed here so every on-disk
    artifact of the flow layer is reachable from one module. *)

val load_trainer_file : ?config:Flow.config -> string -> Stream_train.Trainer.t
(** Alias of {!Stream_train.Checkpoint.load_file}; raises
    {!Stream_train.Checkpoint.Restore_error} on a bad header or a
    corrupt payload. *)
