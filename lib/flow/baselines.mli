(** Baseline power models the paper's related work relies on, for
    comparison against the mined PSMs.

    - {!Constant}: a single average-power number — the crudest possible
      model, the implicit floor for any table.
    - {!Two_state}: the classical hand-written PSM of [Benini 1998] /
      [Bergamaschi 2003]: a designer partitions operation into idle vs
      active by a control signal and assigns each state a constant from
      the data sheet (here: the conditional means of the training power
      trace — the most charitable calibration such a model can get).

    Both trained from the same traces the mining flow uses, so the
    comparison isolates the value of the *automatic state discovery*. *)

module Constant : sig
  type t

  val train : Psm_trace.Power_trace.t list -> t
  val power : t -> float

  val evaluate :
    t -> reference:Psm_trace.Power_trace.t -> Psm_hmm.Accuracy.report
end

module Two_state : sig
  type t

  val train :
    control:string ->
    (Psm_trace.Functional_trace.t * Psm_trace.Power_trace.t) list ->
    t
  (** [control] is the input signal whose LSB separates idle (0) from
      active (1) — the designer's knowledge. Raises [Not_found] if the
      signal does not exist. *)

  val idle_power : t -> float
  val active_power : t -> float

  val estimate : t -> Psm_trace.Functional_trace.t -> float array

  val evaluate :
    t ->
    Psm_trace.Functional_trace.t ->
    reference:Psm_trace.Power_trace.t ->
    Psm_hmm.Accuracy.report
end
