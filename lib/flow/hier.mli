(** Hierarchical PSMs — the paper's concluding-remarks future work,
    implemented.

    "To mitigate the limitation highlighted by Camellia, we foresee, as
    future works, the automatic generation of a power model based on
    hierarchical PSMs that distinguishes among IP subcomponents."

    Given a {!Psm_ips.Decomposed.t} — an IP whose per-cycle observation is
    split across subcomponent boundaries, each with its own activity — the
    full mining/generation/combination flow runs once per subcomponent on
    that subcomponent's own traces, and simulation sums the per-component
    power estimates. Activity a constant or regression cannot explain at
    the top level (Camellia's scrubber) becomes perfectly explainable at
    the boundary where it is observable. *)

type trained = {
  parts : (string * Flow.trained) list;  (** One flow per subcomponent. *)
}

val capture :
  ?config:Psm_rtl.Power_model.config ->
  Psm_ips.Decomposed.t ->
  Psm_ips.Workloads.stimulus ->
  (Psm_trace.Functional_trace.t * Psm_trace.Power_trace.t) list * Psm_trace.Power_trace.t
(** Per-component (trace, power) pairs in component order, plus the total
    power trace (the sum — what a flat flow would have seen). *)

val train :
  ?config:Flow.config ->
  Psm_ips.Decomposed.t ->
  Psm_ips.Workloads.stimulus list ->
  trained
(** The default config differs from {!Flow.default}: subcomponent
    boundaries are narrow internal buses whose whole value range is
    meaningful, so the per-signal constant-atom cap is lifted (16) and the
    merge tolerance tightened (ε = 0.05). *)

val evaluate :
  trained ->
  Psm_ips.Decomposed.t ->
  Psm_ips.Workloads.stimulus ->
  Psm_hmm.Accuracy.report
(** Runs the decomposed IP over the stimulus, simulates every
    subcomponent's PSM set over its own boundary trace, sums the
    estimates and scores against the total reference power. The WSP
    reported is the maximum across subcomponents. *)

val total_states : trained -> int

val save : trained -> string
(** Serialize every subcomponent's model (see {!Persist}) under a part
    manifest. *)

val save_file : string -> trained -> unit

type loaded_part = { part_name : string; model : Persist.model }

val load : string -> loaded_part list
(** Raises {!Persist.Parse_error} on malformed input. *)

val load_file : string -> loaded_part list

val evaluate_loaded :
  loaded_part list ->
  Psm_ips.Decomposed.t ->
  Psm_ips.Workloads.stimulus ->
  Psm_hmm.Accuracy.report
(** Like {!evaluate}, over reloaded parts (matched to the decomposed IP's
    components by name). *)
