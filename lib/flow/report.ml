let seconds s = Printf.sprintf "%.2f" s
let percent f = Printf.sprintf "%.2f%%" (100. *. f)

let render_table ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render_row row =
    row
    |> List.mapi (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell)
    |> String.concat "  "
  in
  let separator =
    widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf separator;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let opt_int = function Some n -> string_of_int n | None -> "n/a"
let opt_seconds = function Some s -> seconds s | None -> "n/a"

let table1 rows =
  render_table
    ~header:
      [ "IP"; "Lines"; "PIs"; "POs"; "Elab. time (s)"; "Gates"; "Depth";
        "Memory elements" ]
    (List.map
       (fun (r : Experiment.table1_row) ->
         [ r.t1_name; opt_int r.lines; string_of_int r.pi_bits;
           string_of_int r.po_bits; opt_seconds r.elaboration_s; opt_int r.gates;
           opt_int r.logic_depth; string_of_int r.memory_elements ])
       rows)

let table2_cells (r : Experiment.table2_row) =
  [ r.t2_name; string_of_int r.ts; seconds r.px_s; seconds r.capture_s;
    seconds r.gen_s; string_of_int r.states; string_of_int r.transitions;
    percent r.mre ]

let table2 rows =
  let header =
    [ "IP"; "TS"; "PX (s)"; "Capture (s)"; "PSMs gen. (s)"; "States"; "Trans."; "MRE" ]
  in
  match rows with
  | [ _; _; _; _; _; _; _; _ ] ->
      let shorts = List.filteri (fun i _ -> i < 4) rows in
      let longs = List.filteri (fun i _ -> i >= 4) rows in
      let rendered = render_table ~header (List.map table2_cells shorts) in
      let width =
        match String.index_opt rendered '\n' with
        | Some i -> i
        | None -> 40
      in
      let dashed = String.make width '-' in
      let longs_rendered = render_table ~header (List.map table2_cells longs) in
      (* Drop the second header: keep rows only. *)
      let body =
        match String.split_on_char '\n' longs_rendered with
        | _ :: _ :: rest -> String.concat "\n" rest
        | _ -> longs_rendered
      in
      rendered ^ dashed ^ "\n" ^ body
  | _ -> render_table ~header (List.map table2_cells rows)

let table3 rows =
  render_table
    ~header:
      [ "IP"; "IP sim. (s)"; "IP+PSMs (s)"; "Overhead"; "PX-gate (s)"; "Speedup";
        "MRE"; "WSP" ]
    (List.map
       (fun (r : Experiment.table3_row) ->
         [ r.t3_name; seconds r.ip_sim_s; seconds r.ip_psm_s; percent r.overhead;
           seconds r.px_gate_s; Printf.sprintf "%.0fx" r.speedup; percent r.t3_mre;
           percent r.wsp ])
       rows)
