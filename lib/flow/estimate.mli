(** Session-facing online power estimation over a persisted model — the
    unit of work a serve session wraps.

    An estimate session consumes one observation per clock cycle — either
    a classified proposition plus the input Hamming distance, or a raw
    interface sample — and yields the per-cycle (power, PSM state id)
    pair. Two backends implement the paper's two online views:

    - [`Sim] — the assertion-cursor co-simulation ({!Psm_hmm.Multi_sim}):
      state ids are exact PSM states, -1 while desynchronized, and the
      WSP / resynchronization counters are live. Each session simulates
      on its own {!Psm_hmm.Hmm.copy}, so its A bans never touch siblings.
    - [`Filter] — the probabilistic α recursion
      ({!Psm_hmm.Filtering.Stream}): power is the posterior-weighted
      output mean, the state id is the marginal MAP state. Sessions can
      share one {!Psm_hmm.Filtering.t} (pass [?filtering]), which is what
      lets a server batch their forward steps into one kernel sweep.

    Both paths are bit-identical to their offline counterparts
    ({!Psm_hmm.Multi_sim.simulate} / {!Psm_hmm.Filtering.expected_power}
    and [map_states]) on the same trace. *)

type mode = [ `Filter | `Sim ]

type t

val of_model : ?filtering:Psm_hmm.Filtering.t -> mode:mode -> Persist.model -> t
(** [?filtering] (filter mode only): share a prebuilt filtering context
    across sessions of the same model; default builds a private one. *)

val mode : t -> mode
val model : t -> Persist.model

val step : t -> ?hd:float -> int option -> float * int
(** Consume one classified observation ([None] = unknown behaviour) with
    input Hamming distance [hd] (default 0): returns (power estimate,
    PSM state id; -1 = desynchronized). *)

val step_sample : t -> Psm_bits.Bits.t array -> float * int
(** Consume one raw interface sample: classification and input Hamming
    tracking happen inside, exactly as the offline evaluators do it. *)

val cycles : t -> int
val wrong_instants : t -> int
val resync_events : t -> int

val wsp : t -> float
(** wrong_instants / cycles (0 for filter sessions, which never
    desynchronize). *)

val log_likelihood : t -> float
(** Cumulative observation log likelihood (filter sessions; 0 for sim). *)

val filter_state : t -> (Psm_hmm.Filtering.t * Psm_hmm.Filtering.Stream.state) option
(** Filter sessions expose their shared context and belief state so a
    batch scheduler can sweep many sessions at once
    ({!Psm_hmm.Filtering.Stream.step_many}); [None] for sim sessions. *)

val batched_result : t -> hd:float -> float * int
(** The per-instant result after an external batched sweep advanced this
    session's belief — the same bookkeeping {!step} does, factored out so
    batched and per-session paths cannot drift.
    @raise Invalid_argument on a sim session. *)

type portable_backend =
  | Portable_sim of Psm_hmm.Multi_sim.Stepper.portable
  | Portable_filter of Psm_hmm.Filtering.Stream.portable

type portable = {
  portable_backend : portable_backend;
  portable_prev_inputs : string array option;
      (** sample-level tracking only: the previous interface sample as
          big-endian binary strings, in interface order *)
}
(** A complete resumable session state as plain data (belief or stepper
    mode, cursors, ban log, counters, previous inputs) — what a session
    checkpoint serializes, paired with the model name. Checkpoints cross
    a trust boundary, so this is explicit data to encode field by field,
    never a [Marshal] blob (crafted [Marshal] bytes can corrupt the
    decoding process). *)

val export : t -> portable

val import :
  ?filtering:Psm_hmm.Filtering.t -> Persist.model -> portable ->
  (t, string) result
(** A session continuing exactly where {!export} was taken — stepping it
    is bit-identical to never having stopped. Every field is validated
    against [model] before any session state is built; a checkpoint that
    does not fit the model earns an [Error]. [model] must be the model
    the export was taken on; [?filtering] as in {!of_model}. *)
