(** Plain-text rendering of the experiment tables, in the layout of the
    paper's Tables I–III. *)

val render_table : header:string list -> string list list -> string
(** Column-aligned table with a separator row under the header. *)

val table1 : Experiment.table1_row list -> string
val table2 : Experiment.table2_row list -> string
(** Short-TS rows first, then a dashed separator, then long-TS rows, as in
    the paper. [table2] expects the 8-row output of {!Experiment.table2};
    other shapes are rendered without the separator. *)

val table3 : Experiment.table3_row list -> string

val seconds : float -> string
val percent : float -> string
