module Ip = Psm_ips.Ip
module Workloads = Psm_ips.Workloads
module Capture = Psm_ips.Capture
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal
module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Psm = Psm_core.Psm
module Bits = Psm_bits.Bits

type ip_spec = {
  ip_name : string;
  make : unit -> Ip.t;
  source_files : string list;
}

let benchmark_ips =
  [ { ip_name = "RAM";
      make = Psm_ips.Ram.create;
      source_files = [ "lib/ips/ram.ml" ] };
    { ip_name = "MultSum";
      make = Psm_ips.Multsum.create;
      source_files = [ "lib/ips/multsum.ml" ] };
    { ip_name = "AES";
      make = Psm_ips.Aes.create;
      source_files = [ "lib/ips/aes.ml"; "lib/ips/aes_core.ml" ] };
    { ip_name = "Camellia";
      make = Psm_ips.Camellia.create;
      source_files = [ "lib/ips/camellia.ml"; "lib/ips/camellia_core.ml" ] } ]

(* Relative end-to-end cost of one experiment cell per IP, as measured by
   the committed bench stage timings (a Camellia flow costs roughly 20x a
   MultSum flow at equal trace length — wider interface, more mined
   atoms, bigger model). These feed the pool's longest-processing-time
   schedule; only the ordering they induce matters, not calibration. *)
let ip_cost_weight = function
  | "Camellia" -> 20.
  | "AES" -> 6.
  | "RAM" -> 2.
  | _ -> 1.

let cell_cost ~ip_name ~length = ip_cost_weight ip_name *. float_of_int length

(* ---------- Table I ---------- *)

type table1_row = {
  t1_name : string;
  lines : int option;
  pi_bits : int;
  po_bits : int;
  elaboration_s : float option;
  gates : int option;
  logic_depth : int option;
  memory_elements : int;
}

let count_lines path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        Some !n)
  end

let source_lines files =
  (* The bench may run from the repo root or from _build; try both. *)
  let prefixes = [ ""; "../"; "../../"; "../../../" ] in
  let counts =
    List.map
      (fun file ->
        List.find_map (fun prefix -> count_lines (prefix ^ file)) prefixes)
      files
  in
  if List.exists Option.is_none counts then None
  else Some (List.fold_left (fun acc c -> acc + Option.get c) 0 counts)

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let table1_row spec =
  let ip = spec.make () in
  let elaboration =
    match Psm_ips.Structural.netlist_for spec.ip_name with
    | None -> None
    | Some build ->
        let (nl, stats), seconds =
          timed (fun () ->
              let nl = build () in
              (nl, Psm_rtl.Netlist_stats.analyze nl))
        in
        ignore nl;
        Some (seconds, stats)
  in
  { t1_name = spec.ip_name;
    lines = source_lines spec.source_files;
    pi_bits = Ip.pi_bits ip;
    po_bits = Ip.po_bits ip;
    elaboration_s = Option.map fst elaboration;
    gates = Option.map (fun (_, s) -> s.Psm_rtl.Netlist_stats.gates_total) elaboration;
    logic_depth =
      Option.map (fun (_, s) -> s.Psm_rtl.Netlist_stats.logic_depth) elaboration;
    memory_elements = ip.Ip.memory_elements }

let table1 () =
  Psm_par.parallel_map_weighted
    ~cost:(fun spec -> ip_cost_weight spec.ip_name)
    table1_row benchmark_ips

(* ---------- Table II ---------- *)

type table2_row = {
  t2_name : string;
  ts : int;
  px_s : float;
  capture_s : float;
  gen_s : float;
  states : int;
  transitions : int;
  mre : float;
}

(* Gate-level power-simulation cost for [cycles] instants of the IP's
   workload: measured on up to [sample] cycles and scaled linearly (the
   levelized netlist simulator evaluates every gate every cycle, so its
   per-cycle cost is constant by construction). *)
let px_gate_seconds ?(sample = 6000) spec ~cycles ~long =
  match Psm_ips.Structural.create_for spec.ip_name with
  | None -> 0.
  | Some make ->
      let gate_ip = make () in
      let measured = min cycles sample in
      let stimulus =
        List.hd (Workloads.suite ~parts:1 ~total_length:measured ~long spec.ip_name)
      in
      let _, seconds = timed (fun () -> Capture.run gate_ip stimulus) in
      seconds *. (float_of_int cycles /. float_of_int measured)

let table2_row ?(config = Flow.default) ~total_length ~long spec =
  let suite = Workloads.suite ~total_length ~long spec.ip_name in
  let px_s = px_gate_seconds spec ~cycles:total_length ~long in
  (* One IP instance per workload so captures can run on separate domains
     (the behavioural models are stateful); [Capture.run] resets the IP,
     so a fresh instance observes exactly what a reused one would. *)
  let timed_captures =
    Psm_par.parallel_map
      (fun stimulus ->
        let ip = spec.make () in
        timed (fun () -> Capture.run ~config:config.Flow.power ip stimulus))
      suite
  in
  let capture_s = List.fold_left (fun acc (_, s) -> acc +. s) 0. timed_captures in
  let captures = List.map fst timed_captures in
  let traces = List.map fst captures and powers = List.map snd captures in
  let trained = Flow.train ~config ~traces ~powers () in
  (* Accuracy on the training testset, as Table II reports. *)
  let total, errsum =
    List.fold_left2
      (fun (total, errsum) trace reference ->
        let report, _ = Flow.evaluate trained trace ~reference in
        let n = Functional_trace.length trace in
        (total + n, errsum +. (report.Psm_hmm.Accuracy.mre *. float_of_int n)))
      (0, 0.) traces powers
  in
  { t2_name = spec.ip_name;
    ts = total_length;
    px_s;
    capture_s;
    gen_s = Flow.total_generation_s trained.Flow.timings;
    states = Psm.state_count trained.Flow.optimized;
    transitions = Psm.transition_count trained.Flow.optimized;
    mre = errsum /. float_of_int total }

let table2 ?(short_lengths = true) ?(long_length = 500_000) () =
  (* Fan the whole (benchmark x workload-length) grid out at once: eight
     independent end-to-end flows, each worth seconds to minutes of
     gate-level simulation, mining and training. The cells are wildly
     heterogeneous (a long-TS Camellia cell costs two orders of magnitude
     more than a short-TS MultSum cell), so the schedule is cost-weighted:
     heavy cells are claimed first and the cheap ones fill the tail,
     instead of a dominant cell serializing the whole fan-out behind the
     last domain to pick it up. *)
  let cases =
    List.map
      (fun spec ->
        let total_length =
          if short_lengths then Workloads.paper_short_length spec.ip_name else 8000
        in
        (spec, total_length, false))
      benchmark_ips
    @ List.map (fun spec -> (spec, long_length, true)) benchmark_ips
  in
  Psm_par.parallel_map_weighted
    ~cost:(fun (spec, total_length, _) ->
      cell_cost ~ip_name:spec.ip_name ~length:total_length)
    (fun (spec, total_length, long) -> table2_row ~total_length ~long spec)
    cases

(* ---------- Table III ---------- *)

type table3_row = {
  t3_name : string;
  ip_sim_s : float;
  ip_psm_s : float;
  overhead : float;
  px_gate_s : float;
  speedup : float;
  t3_mre : float;
  wsp : float;
}

let table3_row ?(config = Flow.default) ~eval_length spec =
  let ip = spec.make () in
  let short_suite =
    Workloads.suite ~total_length:(Workloads.paper_short_length spec.ip_name)
      ~long:false spec.ip_name
  in
  let trained = Flow.train_on_ip ~config ip short_suite in
  let long = Workloads.long_for ~length:eval_length spec.ip_name in
  let ip_sim_s = Capture.run_timed ip long in
  let ip_psm_s = Flow.cosim_timed trained ip long in
  let px_gate_s = px_gate_seconds spec ~cycles:eval_length ~long:true in
  let report, result = Flow.evaluate_on_ip trained ip long in
  { t3_name = spec.ip_name;
    ip_sim_s;
    ip_psm_s;
    overhead = (if ip_sim_s > 0. then (ip_psm_s -. ip_sim_s) /. ip_sim_s else 0.);
    px_gate_s;
    speedup = (if ip_psm_s > 0. then px_gate_s /. ip_psm_s else 0.);
    t3_mre = report.Psm_hmm.Accuracy.mre;
    wsp = result.Psm_hmm.Multi_sim.wsp }

let table3 ?(eval_length = 500_000) () =
  Psm_par.parallel_map_weighted
    ~cost:(fun spec -> ip_cost_weight spec.ip_name)
    (fun spec -> table3_row ~eval_length spec)
    benchmark_ips

(* ---------- Fig. 2 ---------- *)

let fig2_psm () =
  let iface =
    Interface.create [ Signal.input "on" 1; Signal.input "ready" 1; Signal.input "start" 1 ]
  in
  let atoms =
    [ Psm_mining.Atomic.eq_const 0 (Bits.of_bool true);
      Psm_mining.Atomic.eq_const 1 (Bits.of_bool true);
      Psm_mining.Atomic.eq_const 2 (Bits.of_bool true) ]
  in
  let table = Psm_mining.Prop_trace.Table.create (Psm_mining.Vocabulary.create iface atoms) in
  let sample bits = Array.map Bits.of_bool bits in
  let p_off = Psm_mining.Prop_trace.Table.classify_or_add table (sample [| false; false; false |]) in
  let p_idle = Psm_mining.Prop_trace.Table.classify_or_add table (sample [| true; true; false |]) in
  let p_on = Psm_mining.Prop_trace.Table.classify_or_add table (sample [| true; true; true |]) in
  let attr mu : Psm_core.Power_attr.t = { mu; sigma = 0.; n = 100; intervals = [] } in
  let psm = Psm.empty table in
  let psm, off = Psm.add_state psm (Psm_core.Assertion.Until (p_off, p_idle)) (attr 0.) in
  let psm, idle = Psm.add_state psm (Psm_core.Assertion.Until (p_idle, p_on)) (attr 15e-3) in
  let psm, on = Psm.add_state psm (Psm_core.Assertion.Until (p_on, p_idle)) (attr 100e-3) in
  let psm = Psm.add_initial psm off in
  let psm = Psm.add_transition psm ~src:off ~guard:p_idle ~dst:idle in
  let psm = Psm.add_transition psm ~src:idle ~guard:p_on ~dst:on in
  let psm = Psm.add_transition psm ~src:on ~guard:p_idle ~dst:idle in
  let psm = Psm.add_transition psm ~src:idle ~guard:p_off ~dst:off in
  psm

(* ---------- Fig. 3 / Fig. 5 ---------- *)

type fig3 = {
  functional : Functional_trace.t;
  power : Power_trace.t;
  table : Psm_mining.Prop_trace.Table.t;
  gamma : Psm_mining.Prop_trace.t;
}

let fig3_example () =
  let iface =
    Interface.create
      [ Signal.input "v1" 1; Signal.input "v2" 1; Signal.input "v3" 3;
        Signal.output "v4" 3 ]
  in
  let row v1 v2 v3 v4 =
    [| Bits.of_bool v1; Bits.of_bool v2; Bits.of_int ~width:3 v3; Bits.of_int ~width:3 v4 |]
  in
  let functional =
    Functional_trace.of_samples iface
      [| row true false 3 1; row true false 3 1; row true false 3 1;
         row false true 3 3; row false true 4 4; row false true 2 2;
         row true true 0 0; row true true 3 1 |]
  in
  let power =
    Power_trace.of_array
      [| 3.349; 3.339; 3.353; 1.902; 1.906; 1.944; 3.350; 3.343 |]
  in
  (* The paper's chosen atoms: v1 = true, v2 = false, plus the v3/v4
     comparisons. (v2 = false is expressed as an atom on v2 so that its
     truth column matches Fig. 3's m matrix.) *)
  let atoms =
    [ Psm_mining.Atomic.eq_const 0 (Bits.of_bool true);
      Psm_mining.Atomic.eq_const 1 (Bits.of_bool false);
      Psm_mining.Atomic.compare_signals Psm_mining.Atomic.Gt 2 3;
      Psm_mining.Atomic.compare_signals Psm_mining.Atomic.Eq 2 3 ]
  in
  let table = Psm_mining.Prop_trace.Table.create (Psm_mining.Vocabulary.create iface atoms) in
  let gamma = Psm_mining.Prop_trace.of_functional table functional in
  { functional; power; table; gamma }

let fig5_psm fig3 =
  Psm_core.Generator.generate (Psm.empty fig3.table) ~trace:0 fig3.gamma fig3.power
