(** Streaming incremental training on top of {!Psm_trace.Vcd.stream}.

    The batch {!Flow.train} holds every training trace in memory; this
    trainer consumes pushed cycles one at a time and keeps only O(model)
    state live:

    - mining counters ({!Psm_mining.Miner.Incremental}) during the first
      pass over the data,
    - during the second pass, the open XU run's sample buffers, a
      static cascade of {!Psm_core.Simplify.max_simplify_passes} levels
      replaying the bounded simplify iteration one greedy pass per
      level, and the join pass's open clusters — plus regression
      sufficient statistics and proposition-occurrence counts per
      segment, so the data-dependent-state optimization and the HMM need
      no retained traces either.

    Every [watermark] pushed cycles the pending simplified segments are
    compacted into the pipeline ([stream.compact] span) so live memory
    tracks the model size, not the trace length. The result is
    *bit-identical in structure* to the batch flow (same optimized PSM,
    same HMM inputs); the floating-point attributes agree to the exact
    Chan-merge arithmetic the batch path uses. *)

type result = {
  config : Flow.config;
  table : Psm_mining.Prop_trace.Table.t;
  optimized : Psm_core.Psm.t;  (** After simplify, join and optimize. *)
  optimize_reports : Psm_core.Optimize.report list;
  hmm : Psm_hmm.Hmm.t;
  transition_counts : ((int * int) * float) list;
  emission_counts : ((int * int) * float) list;
  analysis : Psm_analysis.Finding.t list;
      (** Analyzer findings over the final model. Streaming keeps no
          training traces, so Γ/power-dependent rules are skipped; the
          structural and HMM rules run in full. *)
  timings : Flow.timings;
  cycles : int;  (** Training-phase samples consumed. *)
  traces_seen : int;  (** Completed training traces. *)
  compactions : int;  (** Watermark compactions performed. *)
}

val default_watermark : int
(** 4096 cycles. *)

(** Two-phase push trainer. Phase 1 ([`Mining]) feeds the vocabulary
    miner; {!Trainer.finish_mining} freezes the proposition vocabulary;
    phase 2 ([`Training]) feeds the generation pipeline. Both phases
    consume the same trace stream — callers re-stream their source
    between the phases (mirroring the two passes every mining-based
    method needs over its training set). *)
module Trainer : sig
  type t

  val create :
    ?config:Flow.config ->
    ?watermark:int ->
    ?provenance:[ `Full | `Counts ] ->
    Psm_trace.Interface.t ->
    t
  (** Raises [Invalid_argument] when [watermark <= 0].

      [provenance] (default [`Full]) controls per-occurrence metadata.
      [`Full] matches the batch machine verbatim, including every
      {!Psm_core.Power_attr.t} interval and one component per merged
      member — which necessarily grows with the number of segment
      occurrences. [`Counts] keeps only the sufficient statistics:
      interval lists stay empty and components with equal assertions are
      folded together, so live memory (and the final model) is bounded
      by the number of distinct behaviors. States, transitions,
      assertions, ⟨μ, σ, n⟩ and the HMM counts are unaffected. *)

  val push : t -> Psm_bits.Bits.t array -> power:float -> unit
  (** One sample, in time order; the array is copied where retained, so
      callers may reuse it. [power] is ignored during [`Mining]. Raises
      [Invalid_argument] on an arity mismatch with the interface. *)

  val end_trace : t -> unit
  (** Close the current trace; runs and chain edges never bridge traces.
      Raises [Invalid_argument] on an empty training trace. *)

  val finish_mining : t -> unit
  (** Freeze the mined vocabulary and switch to the training phase. *)

  val finish : t -> result
  (** Close the pipeline and produce the final model. An open trace is
      closed implicitly. Raises [Invalid_argument] while still mining or
      when no training trace was consumed. *)

  val interface : t -> Psm_trace.Interface.t
  val phase : t -> [ `Mining | `Training ]
  val cycles : t -> int

  (** Traces completed in the current phase (reset by
      {!finish_mining}). *)
  val traces : t -> int
  val compactions : t -> int
  val watermark : t -> int

  val table : t -> Psm_mining.Prop_trace.Table.t
  (** Raises [Invalid_argument] while still mining. *)
end

(** Checkpoint / restore of an in-flight trainer, so a long capture can
    survive restarts. The format is a ["psm-repro-trainer 1"] version
    line, one human-readable summary line, then the marshaled trainer
    state (config excluded — it is re-supplied on restore, keeping the
    payload closure-free). Checkpoints are whole-process artifacts: they
    are not portable across architectures or compiler versions, unlike
    {!Persist} model files. *)
module Checkpoint : sig
  exception Restore_error of string

  val version_line : string

  val save_file : string -> Trainer.t -> unit

  val load_file : ?config:Flow.config -> string -> Trainer.t
  (** Raises {!Restore_error} on a bad header or corrupt payload. *)
end

val train_stream :
  ?config:Flow.config ->
  ?unknowns:Psm_trace.Reader.unknown_policy ->
  ?period:int ->
  ?watermark:int ->
  ?provenance:[ `Full | `Counts ] ->
  ?checkpoint:string ->
  string list ->
  result
(** Stream every VCD file (which must carry the [__power__] real
    variable and share one interface) through the trainer twice — a
    mining pass, then a training pass — without ever materializing a
    trace. Raw per-timestamp samples are re-expanded onto the uniform
    [period] grid (default 1) exactly as the batch {!Flow.load_vcd}
    resampler does, so the result matches
    {!Flow.train_on_vcd_files} on the same files.

    With [checkpoint], the trainer state is saved to that path after
    every completed file (and after the mining pass is sealed); if the
    path already exists the run resumes from it, skipping the files the
    checkpoint had fully consumed — pass the same file list in the same
    order. The checkpoint is deleted once training completes. *)

val train_traces :
  ?config:Flow.config ->
  ?watermark:int ->
  ?provenance:[ `Full | `Counts ] ->
  traces:Psm_trace.Functional_trace.t list ->
  powers:Psm_trace.Power_trace.t list ->
  unit ->
  result
(** In-memory variant (both phases over the given lists) — the streamed
    counterpart of {!Flow.train}, used by the equivalence tests. *)
