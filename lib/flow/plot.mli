(** Plot artifacts: gnuplot-ready dumps of reference-vs-estimated power.

    The paper's figures are tables, but anyone debugging a power model
    wants to *look* at the traces. [write ~basename] produces
    [basename.dat] (time, reference, estimate, per-instant relative
    error, PSM state id) and [basename.gp] (a gnuplot script rendering
    the overlay and the error track to [basename.svg]). *)

val data_string :
  reference:Psm_trace.Power_trace.t ->
  result:Psm_hmm.Multi_sim.result ->
  string
(** The .dat payload. Raises [Invalid_argument] on length mismatch. *)

val script_string : basename:string -> title:string -> string

val write :
  basename:string ->
  title:string ->
  reference:Psm_trace.Power_trace.t ->
  result:Psm_hmm.Multi_sim.result ->
  unit
(** Writes [basename.dat] and [basename.gp]. *)
