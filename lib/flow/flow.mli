(** The end-to-end methodology of the paper's Fig. 1:

    functional traces + power traces
      → assertion mining (shared vocabulary + proposition traces)
      → PSM generation (one chain per training trace)
      → simplify → join → data-dependent-state optimization
      → HMM construction
      → concurrent simulation / accuracy evaluation.  *)

type config = {
  miner : Psm_mining.Miner.config;
  merge : Psm_core.Merge.config;
  optimize : Psm_core.Optimize.config;
  power : Psm_rtl.Power_model.config;
  analysis : Psm_analysis.Analyzer.config;
      (** The static analyzer gate-checks the model after generation and
          again after combination; with [analysis.strict] set, an
          [Error]-severity finding raises
          {!Psm_analysis.Analyzer.Strict_failure} instead of silently
          degrading simulation. *)
}

val default : config

type timings = {
  mine_s : float;  (** Vocabulary mining + proposition-trace extraction. *)
  generate_s : float;  (** PSMGenerator over all traces. *)
  combine_s : float;  (** simplify + join + optimize + HMM build. *)
  analyze_s : float;
      (** Static analysis of the raw chains and the combined model.
          Deliberately excluded from {!total_generation_s}: Table II's
          "PSMs gen." column predates the analyzer. *)
}

val total_generation_s : timings -> float
(** Table II's "PSMs gen." column: everything after the training traces
    exist. *)

type trained = {
  config : config;
  table : Psm_mining.Prop_trace.Table.t;
  traces : Psm_trace.Functional_trace.t array;
  powers : Psm_trace.Power_trace.t array;
  gammas : Psm_mining.Prop_trace.t array;
      (** The interned proposition trace of every training trace, in
          training order — derived once during mining and cached here so
          {!lint} (and any other consumer of the training Γ) does not
          re-classify the functional traces. *)
  raw : Psm_core.Psm.t;  (** The generated chains, pre-combination. *)
  optimized : Psm_core.Psm.t;  (** After simplify, join and optimize. *)
  optimize_reports : Psm_core.Optimize.report list;
  hmm : Psm_hmm.Hmm.t;
  transition_counts : ((int * int) * float) list;
      (** Training transition frequencies the HMM's A was built from
          (persisted with the model). *)
  emission_counts : ((int * int) * float) list;
  analysis : Psm_analysis.Finding.t list;
      (** Findings of the post-combination analyzer run (full context:
          PSM + HMM + training Γ and power traces), sorted by severity.
          Empty means the model passed every registered rule. *)
  timings : timings;
}

val train :
  ?config:config ->
  traces:Psm_trace.Functional_trace.t list ->
  powers:Psm_trace.Power_trace.t list ->
  unit ->
  trained
(** All traces must share one interface; traces and powers are paired
    positionally and must have matching lengths. The static analyzer
    runs after generation and after combination (see {!config.analysis});
    with [analysis.strict] set it raises
    [Psm_analysis.Analyzer.Strict_failure] on any [Error] finding. *)

val lint : trained -> Psm_analysis.Finding.t list
(** Re-run the analyzer over the trained model with the full training
    context (reusing the proposition traces cached in [trained.gammas]).
    [trained.analysis] caches the result of the same run at training
    time. *)

val verify :
  ?coverage_budget:int ->
  ?max_gaps:int ->
  trained ->
  Psm_verify.Verify.report
(** Symbolic verification of the optimized model: run all
    {!Psm_verify.Verify} proofs (feasibility, disjointness, coverage,
    vacuity) and return the full report with stats and witnesses. The
    same checks also run inside {!lint} via the [static-*] analyzer
    rules; this entry point exposes the richer report. *)

(** {1 Training straight from VCD files} *)

type ingested = {
  path : string;
  functional : Psm_trace.Functional_trace.t;
  power : Psm_trace.Power_trace.t;
  ingest : Psm_trace.Reader.stats;  (** per-file ingestion statistics *)
}

val load_vcd :
  ?unknowns:Psm_trace.Reader.unknown_policy ->
  ?period:int ->
  string ->
  ingested
(** Stream one VCD (which must carry the [__power__] real variable) into
    a functional/power trace pair. Raises [Psm_trace.Vcd.Parse_error] on
    malformed input and [Invalid_argument] when the power variable is
    missing. *)

val train_on_vcd_files :
  ?config:config ->
  ?unknowns:Psm_trace.Reader.unknown_policy ->
  ?period:int ->
  string list ->
  trained * ingested list
(** Ingest every file (fanned out across the {!Psm_par} pool) and train
    on the result. The ingested list is returned in input order. *)

val train_on_ip :
  ?config:config ->
  Psm_ips.Ip.t ->
  Psm_ips.Workloads.stimulus list ->
  trained
(** Capture one training pair per testbench (the IP is reset before each)
    and train. Use {!Psm_ips.Workloads.suite} to build the testbench
    list. *)

val evaluate :
  trained ->
  Psm_trace.Functional_trace.t ->
  reference:Psm_trace.Power_trace.t ->
  Psm_hmm.Accuracy.report * Psm_hmm.Multi_sim.result
(** Simulate the combined PSMs over a (possibly unseen) functional trace
    and score against the reference power trace. *)

val evaluate_on_ip :
  trained ->
  Psm_ips.Ip.t ->
  Psm_ips.Workloads.stimulus ->
  Psm_hmm.Accuracy.report * Psm_hmm.Multi_sim.result

val cosim_timed :
  trained -> Psm_ips.Ip.t -> Psm_ips.Workloads.stimulus -> float
(** Wall-clock seconds to step the IP and the PSM/HMM simulator in
    lockstep — Table III's "IP+PSMs" column. *)

val split_stimulus : Psm_ips.Workloads.stimulus -> parts:int -> Psm_ips.Workloads.stimulus list
(** Split a stimulus into [min parts (length stimulus)] contiguous chunks
    (never more chunks than samples; a non-empty stimulus never comes
    back as a single unsplit blob unless [parts = 1]). Raises
    [Invalid_argument] when [parts <= 0]. *)
