module Bits = Psm_bits.Bits
module Interface = Psm_trace.Interface
module Vocabulary = Psm_mining.Vocabulary
module Table = Psm_mining.Prop_trace.Table
module Hmm = Psm_hmm.Hmm
module Filtering = Psm_hmm.Filtering
module Multi_sim = Psm_hmm.Multi_sim

type mode = [ `Filter | `Sim ]

type backend =
  | Sim of Multi_sim.Stepper.t
  | Filter of Filtering.t * Filtering.Stream.state

type t = {
  model : Persist.model;
  backend : backend;
  input_indexes : int list;
  mutable prev_inputs : Bits.t array option;
      (* sample-level filter stepping tracks its own input Hamming
         distances; the sim stepper tracks its own internally. *)
  mutable memo : (Bits.t array * int option) option;
      (* classification memo for [step_sample]'s filter arm: previous
         sample (private copy) and its classification. Pure cache, not
         part of portable checkpoints. *)
}

let same_sample a b = Array.length a = Array.length b && Array.for_all2 Bits.equal a b

let input_indexes_of (model : Persist.model) =
  let iface = Vocabulary.interface (Table.vocabulary model.Persist.table) in
  List.map fst (Interface.inputs iface)

let of_model ?filtering ~mode (model : Persist.model) =
  let backend =
    match mode with
    | `Sim ->
        (* Own transition state: this session's resynchronization bans
           must not leak into siblings sharing the model. *)
        Sim (Multi_sim.Stepper.create (Hmm.copy model.Persist.hmm))
    | `Filter ->
        let filt =
          match filtering with
          | Some f -> f
          | None -> Filtering.create model.Persist.hmm
        in
        Filter (filt, Filtering.Stream.make filt)
  in
  { model; backend; input_indexes = input_indexes_of model; prev_inputs = None; memo = None }

let mode t = match t.backend with Sim _ -> `Sim | Filter _ -> `Filter
let model t = t.model

let filter_state t =
  match t.backend with Sim _ -> None | Filter (f, s) -> Some (f, s)

(* The per-instant result once the belief/state machine has advanced:
   (power estimate, PSM state id; -1 = desynchronized). The filter arm is
   shared between [step] and the engine's batched sweep so both paths do
   the identical bookkeeping. *)
let filter_result t filt s ~hd =
  let row = Filtering.Stream.map_state filt s in
  ( Filtering.Stream.power filt s ~hamming:hd,
    Hmm.state_of_row t.model.Persist.hmm row )

let step t ?(hd = 0.) obs =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.step_classified st ~hamming:hd obs
  | Filter (filt, s) ->
      Filtering.Stream.step filt s obs;
      filter_result t filt s ~hd

let batched_result t ~hd =
  match t.backend with
  | Filter (filt, s) -> filter_result t filt s ~hd
  | Sim _ -> invalid_arg "Estimate.batched_result: sim sessions are not batched"

let step_sample t sample =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.step st sample
  | Filter (filt, s) -> (
      match t.memo with
      | Some (prev, obs) when Psm_trace.Runs.use () && same_sample prev sample ->
          (* Identical sample: Hamming 0 and the same classification; the
             numeric forward recursion still advances per cycle. *)
          Filtering.Stream.step filt s obs;
          filter_result t filt s ~hd:0.
      | _ ->
          let hd =
            match t.prev_inputs with
            | None -> 0.
            | Some prev ->
                float_of_int
                  (List.fold_left
                     (fun acc i -> acc + Bits.hamming_distance sample.(i) prev.(i))
                     0 t.input_indexes)
          in
          let copy = Array.copy sample in
          t.prev_inputs <- Some copy;
          let obs = Table.classify t.model.Persist.table sample in
          t.memo <- Some (copy, obs);
          Filtering.Stream.step filt s obs;
          filter_result t filt s ~hd)

let cycles t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.cycles st
  | Filter (_, s) -> Filtering.Stream.steps s

let wrong_instants t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.wrong_instants st
  | Filter _ -> 0

let resync_events t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.resync_events st
  | Filter _ -> 0

let wsp t =
  let n = cycles t in
  if n = 0 then 0. else float_of_int (wrong_instants t) /. float_of_int n

let log_likelihood t =
  match t.backend with
  | Sim _ -> 0.
  | Filter (_, s) -> Filtering.Stream.log_likelihood s

(* ---------- portable checkpoints ---------- *)

type portable_backend =
  | Portable_sim of Multi_sim.Stepper.portable
  | Portable_filter of Filtering.Stream.portable

type portable = {
  portable_backend : portable_backend;
  portable_prev_inputs : string array option;
}

let export t =
  { portable_backend =
      (match t.backend with
      | Sim st -> Portable_sim (Multi_sim.Stepper.export st)
      | Filter (_, s) -> Portable_filter (Filtering.Stream.export s));
    portable_prev_inputs =
      Option.map (Array.map Bits.to_binary_string) t.prev_inputs }

(* The sample-level tracker's previous inputs, validated against the
   model's interface (the serve path never populates it, but a
   checkpoint is untrusted input end to end). *)
let decode_prev_inputs (model : Persist.model) = function
  | None -> Ok None
  | Some strs ->
      let iface =
        Vocabulary.interface (Table.vocabulary model.Persist.table)
      in
      let arity = Interface.arity iface in
      if Array.length strs <> arity then
        Error
          (Printf.sprintf "previous sample has %d signals, interface has %d"
             (Array.length strs) arity)
      else begin
        try
          Ok
            (Some
               (Array.mapi
                  (fun i s ->
                    let b = Bits.of_binary_string s in
                    let w = (Interface.signal iface i).Psm_trace.Signal.width in
                    if Bits.width b <> w then
                      failwith
                        (Printf.sprintf
                           "previous sample signal %d is %d bits wide, \
                            expected %d"
                           i (Bits.width b) w);
                    b)
                  strs))
        with
        | Failure msg -> Error msg
        | Invalid_argument _ -> Error "previous sample is not a bit string"
      end

let import ?filtering (model : Persist.model) p =
  match decode_prev_inputs model p.portable_prev_inputs with
  | Error _ as e -> e
  | Ok prev_inputs -> (
      let finish backend =
        Ok
          { model;
            backend;
            input_indexes = input_indexes_of model;
            prev_inputs;
            memo = None }
      in
      match p.portable_backend with
      | Portable_sim sp -> (
          match
            Multi_sim.Stepper.import (Hmm.copy model.Persist.hmm) sp
          with
          | Error e -> Error ("sim state: " ^ e)
          | Ok st -> finish (Sim st))
      | Portable_filter fp -> (
          let filt =
            match filtering with
            | Some f -> f
            | None -> Filtering.create model.Persist.hmm
          in
          match Filtering.Stream.import filt fp with
          | Error e -> Error ("filter state: " ^ e)
          | Ok s -> finish (Filter (filt, s))))
