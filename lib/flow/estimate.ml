module Bits = Psm_bits.Bits
module Interface = Psm_trace.Interface
module Vocabulary = Psm_mining.Vocabulary
module Table = Psm_mining.Prop_trace.Table
module Hmm = Psm_hmm.Hmm
module Filtering = Psm_hmm.Filtering
module Multi_sim = Psm_hmm.Multi_sim

type mode = [ `Filter | `Sim ]

type backend =
  | Sim of Multi_sim.Stepper.t
  | Filter of Filtering.t * Filtering.Stream.state

type t = {
  model : Persist.model;
  backend : backend;
  input_indexes : int list;
  mutable prev_inputs : Bits.t array option;
      (* sample-level filter stepping tracks its own input Hamming
         distances; the sim stepper tracks its own internally. *)
}

let input_indexes_of (model : Persist.model) =
  let iface = Vocabulary.interface (Table.vocabulary model.Persist.table) in
  List.map fst (Interface.inputs iface)

let of_model ?filtering ~mode (model : Persist.model) =
  let backend =
    match mode with
    | `Sim ->
        (* Own transition state: this session's resynchronization bans
           must not leak into siblings sharing the model. *)
        Sim (Multi_sim.Stepper.create (Hmm.copy model.Persist.hmm))
    | `Filter ->
        let filt =
          match filtering with
          | Some f -> f
          | None -> Filtering.create model.Persist.hmm
        in
        Filter (filt, Filtering.Stream.make filt)
  in
  { model; backend; input_indexes = input_indexes_of model; prev_inputs = None }

let mode t = match t.backend with Sim _ -> `Sim | Filter _ -> `Filter
let model t = t.model

let filter_state t =
  match t.backend with Sim _ -> None | Filter (f, s) -> Some (f, s)

(* The per-instant result once the belief/state machine has advanced:
   (power estimate, PSM state id; -1 = desynchronized). The filter arm is
   shared between [step] and the engine's batched sweep so both paths do
   the identical bookkeeping. *)
let filter_result t filt s ~hd =
  let row = Filtering.Stream.map_state filt s in
  ( Filtering.Stream.power filt s ~hamming:hd,
    Hmm.state_of_row t.model.Persist.hmm row )

let step t ?(hd = 0.) obs =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.step_classified st ~hamming:hd obs
  | Filter (filt, s) ->
      Filtering.Stream.step filt s obs;
      filter_result t filt s ~hd

let batched_result t ~hd =
  match t.backend with
  | Filter (filt, s) -> filter_result t filt s ~hd
  | Sim _ -> invalid_arg "Estimate.batched_result: sim sessions are not batched"

let step_sample t sample =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.step st sample
  | Filter (filt, s) ->
      let hd =
        match t.prev_inputs with
        | None -> 0.
        | Some prev ->
            float_of_int
              (List.fold_left
                 (fun acc i -> acc + Bits.hamming_distance sample.(i) prev.(i))
                 0 t.input_indexes)
      in
      t.prev_inputs <- Some (Array.copy sample);
      let obs = Table.classify t.model.Persist.table sample in
      Filtering.Stream.step filt s obs;
      filter_result t filt s ~hd

let cycles t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.cycles st
  | Filter (_, s) -> Filtering.Stream.steps s

let wrong_instants t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.wrong_instants st
  | Filter _ -> 0

let resync_events t =
  match t.backend with
  | Sim st -> Multi_sim.Stepper.resync_events st
  | Filter _ -> 0

let wsp t =
  let n = cycles t in
  if n = 0 then 0. else float_of_int (wrong_instants t) /. float_of_int n

let log_likelihood t =
  match t.backend with
  | Sim _ -> 0.
  | Filter (_, s) -> Filtering.Stream.log_likelihood s

(* ---------- checkpoints ---------- *)

type snapshot_backend =
  | Sim_snap of Multi_sim.Stepper.snapshot
  | Filter_snap of Filtering.Stream.state

type snapshot = {
  snap_backend : snapshot_backend;
  snap_prev_inputs : Bits.t array option;
}

let snapshot t =
  { snap_backend =
      (match t.backend with
      | Sim st -> Sim_snap (Multi_sim.Stepper.snapshot st)
      | Filter (_, s) -> Filter_snap (Filtering.Stream.copy s));
    snap_prev_inputs = Option.map Array.copy t.prev_inputs }

let restore ?filtering (model : Persist.model) snap =
  let backend =
    match snap.snap_backend with
    | Sim_snap s ->
        Sim (Multi_sim.Stepper.restore (Hmm.copy model.Persist.hmm) s)
    | Filter_snap s ->
        let filt =
          match filtering with
          | Some f -> f
          | None -> Filtering.create model.Persist.hmm
        in
        Filter (filt, Filtering.Stream.copy s)
  in
  { model;
    backend;
    input_indexes = input_indexes_of model;
    prev_inputs = Option.map Array.copy snap.snap_prev_inputs }
