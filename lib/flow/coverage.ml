module Psm = Psm_core.Psm
module Functional_trace = Psm_trace.Functional_trace
module Table = Psm_mining.Prop_trace.Table
module Multi_sim = Psm_hmm.Multi_sim

type report = {
  instants : int;
  known_instants : int;
  known_fraction : float;
  states_visited : int;
  states_total : int;
  transitions_taken : int;
  transitions_total : int;
  unknown_row_samples : int list;
}

let of_trace hmm trace =
  let psm = Psm_hmm.Hmm.psm hmm in
  let table = Psm.prop_table psm in
  let n = Functional_trace.length trace in
  let known = ref 0 in
  let unknown_samples = ref [] in
  Functional_trace.iter
    (fun time sample ->
      match Table.classify table sample with
      | Some _ -> incr known
      | None ->
          if List.length !unknown_samples < 10 then
            unknown_samples := time :: !unknown_samples)
    trace;
  let result = Multi_sim.simulate hmm trace in
  let visited = Hashtbl.create 16 in
  let edges = Hashtbl.create 32 in
  let prev = ref (-1) in
  Array.iter
    (fun sid ->
      if sid >= 0 then begin
        Hashtbl.replace visited sid ();
        if !prev >= 0 && !prev <> sid then Hashtbl.replace edges (!prev, sid) ()
      end;
      prev := sid)
    result.Multi_sim.state_trace;
  (* Count only edges that exist in the machine (resync jumps may take
     paths the structure does not have). *)
  let structural = Hashtbl.create 32 in
  List.iter
    (fun (tr : Psm.transition) -> Hashtbl.replace structural (tr.Psm.src, tr.Psm.dst) ())
    (Psm.transitions psm);
  let transitions_taken =
    Hashtbl.fold
      (fun edge () acc -> if Hashtbl.mem structural edge then acc + 1 else acc)
      edges 0
  in
  let structural_pairs = Hashtbl.length structural in
  { instants = n;
    known_instants = !known;
    known_fraction = (if n = 0 then 1. else float_of_int !known /. float_of_int n);
    states_visited = Hashtbl.length visited;
    states_total = Psm.state_count psm;
    transitions_taken;
    transitions_total = structural_pairs;
    unknown_row_samples = List.rev !unknown_samples }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>instants: %d (known rows: %.1f%%)@,states: %d / %d visited@,\
     transitions: %d / %d taken@]"
    r.instants (100. *. r.known_fraction) r.states_visited r.states_total
    r.transitions_taken r.transitions_total;
  if r.unknown_row_samples <> [] then begin
    Format.fprintf fmt "@,unknown rows at:";
    List.iter (fun t -> Format.fprintf fmt " %d" t) r.unknown_row_samples
  end
