let log_src = Logs.Src.create "psm.stream" ~doc:"Streaming incremental training"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Interface = Psm_trace.Interface
module Vcd = Psm_trace.Vcd
module Reader = Psm_trace.Reader
module Runs = Psm_trace.Runs
module Bits = Psm_bits.Bits
module Miner = Psm_mining.Miner
module Table = Psm_mining.Prop_trace.Table
module Xu = Psm_core.Xu
module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Merge = Psm_core.Merge
module Join = Psm_core.Join
module Optimize = Psm_core.Optimize
module Regression = Psm_stats.Regression
module Hmm = Psm_hmm.Hmm
module Analyzer = Psm_analysis.Analyzer

let default_watermark = 4096

(* ---------- result ---------- *)

type result = {
  config : Flow.config;
  table : Table.t;
  optimized : Psm.t;
  optimize_reports : Optimize.report list;
  hmm : Hmm.t;
  transition_counts : ((int * int) * float) list;
  emission_counts : ((int * int) * float) list;
  analysis : Psm_analysis.Finding.t list;
  timings : Flow.timings;
  cycles : int;
  traces_seen : int;
  compactions : int;
}

(* ---------- growable slices with an absolute base index ---------- *)

(* The open-region buffers (power, input-Hamming, proposition per
   instant) are indexed by absolute trace time but only ever cover
   [base .. base+len), i.e. the instants from the start of the oldest
   unreleased Xu run to the present; [drop_to] reclaims the prefix when
   a triplet is released, so the live size is bounded by the run length,
   not the trace length. *)
module Fbuf = struct
  type t = { mutable data : float array; mutable base : int; mutable len : int }

  let create () = { data = Array.make 64 0.; base = 0; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let bigger = Array.make (2 * b.len) 0. in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let get b i = b.data.(i - b.base)

  let drop_to b new_base =
    let shift = new_base - b.base in
    if shift > 0 then begin
      let remaining = b.len - shift in
      if remaining > 0 then Array.blit b.data shift b.data 0 remaining;
      b.len <- max remaining 0;
      b.base <- new_base
    end

  let reset b =
    b.base <- 0;
    b.len <- 0
end

module Ibuf = struct
  type t = { mutable data : int array; mutable base : int; mutable len : int }

  let create () = { data = Array.make 64 0; base = 0; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let bigger = Array.make (2 * b.len) 0 in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let get b i = b.data.(i - b.base)

  let drop_to b new_base =
    let shift = new_base - b.base in
    if shift > 0 then begin
      let remaining = b.len - shift in
      if remaining > 0 then Array.blit b.data shift b.data 0 remaining;
      b.len <- max remaining 0;
      b.base <- new_base
    end

  let reset b =
    b.base <- 0;
    b.len <- 0
end

(* ---------- segments ---------- *)

(* Regression sufficient statistics ⟨n, Σx, Σy, Σx², Σy², Σxy⟩ of
   (input Hamming distance, power) over a segment's instants. *)
type sums = { sn : int; sx : float; sy : float; sxx : float; syy : float; sxy : float }

let zero_sums = { sn = 0; sx = 0.; sy = 0.; sxx = 0.; syy = 0.; sxy = 0. }

let add_sums a b =
  { sn = a.sn + b.sn;
    sx = a.sx +. b.sx;
    sy = a.sy +. b.sy;
    sxx = a.sxx +. b.sxx;
    syy = a.syy +. b.syy;
    sxy = a.sxy +. b.sxy }

(* One (possibly merged) state of the in-flight simplified machine.
   [entry] is the guard proposition of the chain edge entering the
   segment — the entry proposition of its first raw triplet; [skey] is
   the (trace, start) of that triplet, the canonical-order key (kept
   explicit so it survives [`Counts] provenance, which drops the
   interval lists). *)
type seg = {
  uid : int;
  strace : int;
  skey : int * int;
  assertion : Assertion.t;
  attr : Power_attr.t;
  entry : int;
  sums : sums;
  emissions : (int, float) Hashtbl.t; (* proposition id -> instants *)
}

(* ---------- the simplify level pipeline ---------- *)

(* Level k replays pass k+1 of the batch simplify iteration: a greedy
   run of adjacent mergeable segments, exactly as [Simplify.pass] walks
   a chain. There are exactly [Simplify.max_simplify_passes] levels —
   the same bound the batch path runs — each holding one open run.
   Every commit of level k arrives at level k+1 in canonical order; a
   commit leaving the last level is final and is absorbed straight into
   the join clusters. Identity passes cost nothing extra (a run that
   never merges passes each segment through verbatim), so a machine
   that converges in fewer passes emerges unchanged from the rest of
   the cascade, exactly as the batch early-stop does. *)
type level = { mutable run : seg option }

(* ---------- the join pass-1 absorber ---------- *)

(* Open first-fit clusters, exactly [Join.pass]'s accumulator state:
   any final simplified segment lands in the first cluster whose
   evolving merged attributes it is statistically compatible with, or
   opens a new one. Clusters never close, but there are only O(model)
   of them — this is where a cyclic workload's unbounded stream of
   simplified segments collapses to constant live memory. *)
type cluster = {
  cuid : int;
  mutable members : int;
  mutable cattr : Power_attr.t;
  mutable components : (Assertion.t * Power_attr.t) list; (* reverse order *)
  mutable csums : sums;
  cemissions : (int, float) Hashtbl.t;
  first_key : int * int; (* (trace, start) of the first member's first interval *)
}

type cluster_vec = { mutable items : cluster array; mutable cn : int }

let cluster_vec () = { items = [||]; cn = 0 }

let cluster_push v c =
  if v.cn = Array.length v.items then begin
    let bigger = Array.make (max 8 (2 * v.cn)) c in
    Array.blit v.items 0 bigger 0 v.cn;
    v.items <- bigger
  end;
  v.items.(v.cn) <- c;
  v.cn <- v.cn + 1

(* ---------- trainer ---------- *)

type triplet = { pat : Xu.pattern; tstart : int; tstop : int }

and phase = Mining | Training

(* Everything the trainer accumulates, kept free of closures and of the
   config so a checkpoint is one [Marshal] of this record. *)
type core = {
  iface : Interface.t;
  watermark : int;
  provenance : [ `Full | `Counts ];
  miner : Miner.Incremental.t;
  mutable table : Table.t option;
  mutable phase : phase;
  mutable cycles : int; (* training-phase samples *)
  mutable traces_done : int; (* completed training traces *)
  mutable compactions : int;
  input_idx : int list;
  (* per-trace scratch *)
  mutable cur_trace : int;
  mutable cur_len : int;
  mutable prev_inputs : Bits.t array option;
  mutable xu_in_until : bool;
  mutable run_start : int;
  mutable prev_prop : int;
  buf_power : Fbuf.t;
  buf_ham : Fbuf.t;
  buf_prop : Ibuf.t;
  mutable held_triplet : triplet option;
  mutable prev_uid : int; (* uid of the last released triplet, -1 at trace start *)
  (* raw-edge occurrence counts and uid redirection *)
  mutable next_uid : int;
  redirect : (int, int) Hashtbl.t;
  counts : (int * int, float) Hashtbl.t;
  (* pending raw segments awaiting the next compaction *)
  mutable pending : seg list; (* reverse order *)
  mutable pending_n : int;
  mutable since_compact : int;
  (* downstream pipeline *)
  levels : level array; (* Simplify.max_simplify_passes static levels *)
  clusters : cluster_vec;
  mutable last_absorbed : (int * int) option; (* trace, cluster index *)
  cedges : (int * int * int, unit) Hashtbl.t; (* cluster, guard, cluster *)
  mutable cinitials : int list; (* reverse order, one cluster per trace *)
  (* coarse stage timings *)
  mutable mine_s : float;
  mutable generate_s : float;
}

(* Mining-phase run coalescer. Lives on the wrapper, NOT in [core]: the
   checkpoint payload is one [Marshal] of [core] and must keep its
   layout. Pending runs are flushed at trace boundaries and before any
   checkpoint — flushing early is exact, because [observe_run] works in
   absolute time and a value re-observed at the next instant continues
   its run regardless of how the observations were batched. *)
and mine_rle = { mutable rsample : Bits.t array option; mutable rlen : int }

and trainer = { config : Flow.config; core : core; mine_rle : mine_rle }

let create_core ?(config = Flow.default) ?(watermark = default_watermark)
    ?(provenance = `Full) iface =
  if watermark <= 0 then invalid_arg "Stream_train: watermark must be positive";
  { iface;
    watermark;
    provenance;
    miner = Miner.Incremental.create ~config:config.Flow.miner iface;
    table = None;
    phase = Mining;
    cycles = 0;
    traces_done = 0;
    compactions = 0;
    input_idx = List.map fst (Interface.inputs iface);
    cur_trace = 0;
    cur_len = 0;
    prev_inputs = None;
    xu_in_until = false;
    run_start = 0;
    prev_prop = -1;
    buf_power = Fbuf.create ();
    buf_ham = Fbuf.create ();
    buf_prop = Ibuf.create ();
    held_triplet = None;
    prev_uid = -1;
    next_uid = 0;
    redirect = Hashtbl.create 256;
    counts = Hashtbl.create 256;
    pending = [];
    pending_n = 0;
    since_compact = 0;
    levels =
      Array.init Psm_core.Simplify.max_simplify_passes (fun _ -> { run = None });
    clusters = cluster_vec ();
    last_absorbed = None;
    cedges = Hashtbl.create 64;
    cinitials = [];
    mine_s = 0.;
    generate_s = 0. }

let resolve_uid core uid =
  let rec go u = match Hashtbl.find_opt core.redirect u with Some v -> go v | None -> u in
  go uid

let fresh_uid core =
  let u = core.next_uid in
  core.next_uid <- u + 1;
  u

(* Merge two adjacent segments, replicating one step of the batch pass's
   [extend]: Chan-merged attributes (left fold), flattened Seq
   assertion, the first member's entry proposition. The accumulator's
   emissions table is exclusively owned by the run, so it is extended in
   place. *)
let merge_seg core a b =
  Hashtbl.iter
    (fun p c ->
      Hashtbl.replace a.emissions p
        (c +. Option.value ~default:0. (Hashtbl.find_opt a.emissions p)))
    b.emissions;
  let uid = fresh_uid core in
  Hashtbl.replace core.redirect a.uid uid;
  Hashtbl.replace core.redirect b.uid uid;
  { uid;
    strace = a.strace;
    skey = a.skey;
    assertion = Assertion.seq [ a.assertion; b.assertion ];
    attr = Power_attr.merge a.attr b.attr;
    entry = a.entry;
    sums = add_sums a.sums b.sums;
    emissions = a.emissions }

(* Record one member's (assertion, attr) on a cluster. [`Full] keeps
   every member, matching the batch machine verbatim; [`Counts] folds
   members with equal assertions together so the component list is
   bounded by the number of distinct behaviors, not occurrences. *)
let add_component core c assertion attr =
  match core.provenance with
  | `Full -> c.components <- (assertion, attr) :: c.components
  | `Counts ->
      let rec fold = function
        | [] -> (assertion, attr) :: c.components
        | (a, _existing) :: _ when Assertion.equal a assertion ->
            List.map
              (fun (a', x) ->
                if Assertion.equal a' assertion then (a', Power_attr.merge x attr)
                else (a', x))
              c.components
        | _ :: rest -> fold rest
      in
      c.components <- fold c.components

(* Join pass-1 absorption of one final simplified segment (canonical
   order is the arrival order). Also accumulates the pass-1 output
   machine's transitions and initial states: the chain edge into this
   segment connects the clusters of two consecutive commits of the same
   trace, guarded by this segment's entry proposition. *)
let absorb config core seg =
  let v = core.clusters in
  let rec place i =
    if i >= v.cn then begin
      let c =
        { cuid = fresh_uid core;
          members = 1;
          cattr = seg.attr;
          components = [ (seg.assertion, seg.attr) ];
          csums = seg.sums;
          cemissions = Hashtbl.copy seg.emissions;
          first_key = seg.skey }
      in
      cluster_push v c;
      Hashtbl.replace core.redirect seg.uid c.cuid;
      v.cn - 1
    end
    else begin
      let c = v.items.(i) in
      if Merge.mergeable config c.cattr seg.attr then begin
        c.members <- c.members + 1;
        c.cattr <- Power_attr.merge c.cattr seg.attr;
        add_component core c seg.assertion seg.attr;
        c.csums <- add_sums c.csums seg.sums;
        Hashtbl.iter
          (fun p cnt ->
            Hashtbl.replace c.cemissions p
              (cnt +. Option.value ~default:0. (Hashtbl.find_opt c.cemissions p)))
          seg.emissions;
        Hashtbl.replace core.redirect seg.uid c.cuid;
        i
      end
      else place (i + 1)
    end
  in
  let ci = place 0 in
  (match core.last_absorbed with
  | Some (tr, prev_ci) when tr = seg.strace ->
      Hashtbl.replace core.cedges (prev_ci, seg.entry, ci) ()
  | _ -> core.cinitials <- ci :: core.cinitials);
  core.last_absorbed <- Some (seg.strace, ci)

let rec feed config core i seg =
  if i >= Array.length core.levels then absorb config core seg
  else
    let lvl = core.levels.(i) in
    match lvl.run with
    | None -> lvl.run <- Some seg
    | Some acc ->
        if acc.strace = seg.strace && Merge.mergeable config acc.attr seg.attr then
          lvl.run <- Some (merge_seg core acc seg)
        else begin
          lvl.run <- Some seg;
          feed config core (i + 1) acc
        end

let feed_pipeline config core seg = feed config core 0 seg

(* ---------- compaction ---------- *)

let compact config core =
  Psm_obs.span "stream.compact" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let batch = List.rev core.pending in
  core.pending <- [];
  core.pending_n <- 0;
  List.iter (feed_pipeline config.Flow.merge core) batch;
  (* Re-key the raw-edge counts through the accumulated merge
     redirections, then forget them: every uid a future edge or merge
     can mention is live again after [prev_uid] is itself resolved. *)
  let resolved = Hashtbl.create (Hashtbl.length core.counts) in
  Hashtbl.iter
    (fun (a, b) v ->
      let key = (resolve_uid core a, resolve_uid core b) in
      Hashtbl.replace resolved key
        (v +. Option.value ~default:0. (Hashtbl.find_opt resolved key)))
    core.counts;
  Hashtbl.reset core.counts;
  Hashtbl.iter (Hashtbl.replace core.counts) resolved;
  if core.prev_uid >= 0 then core.prev_uid <- resolve_uid core core.prev_uid;
  Hashtbl.reset core.redirect;
  core.compactions <- core.compactions + 1;
  core.since_compact <- 0;
  core.generate_s <- core.generate_s +. (Unix.gettimeofday () -. t0)

(* ---------- releasing triplets as raw segments ---------- *)

let mean_var_slice buf ~start ~stop =
  (* Replicates Descriptive.mean_slice / variance_slice arithmetic so
     the attributes are bit-identical to Power_attr.of_interval. *)
  let n = stop - start + 1 in
  let acc = ref 0. in
  for i = start to stop do
    acc := !acc +. Fbuf.get buf i
  done;
  let mu = !acc /. float_of_int n in
  if n < 2 then (mu, 0.)
  else begin
    let dev = ref 0. in
    for i = start to stop do
      let d = Fbuf.get buf i -. mu in
      dev := !dev +. (d *. d)
    done;
    (mu, sqrt (!dev /. float_of_int (n - 1)))
  end

let release_triplet core { pat; tstart; tstop } =
  let mu, sigma = mean_var_slice core.buf_power ~start:tstart ~stop:tstop in
  let intervals =
    match core.provenance with
    | `Full -> [ { Power_attr.trace = core.cur_trace; start = tstart; stop = tstop } ]
    | `Counts -> []
  in
  let attr = { Power_attr.mu; sigma; n = tstop - tstart + 1; intervals } in
  let assertion, entry =
    match pat with
    | Xu.Until (p, q) -> (Assertion.Until (p, q), p)
    | Xu.Next (p, q) -> (Assertion.Next (p, q), p)
  in
  let sums = ref zero_sums in
  let emissions = Hashtbl.create 4 in
  for i = tstart to tstop do
    let x = Fbuf.get core.buf_ham i and y = Fbuf.get core.buf_power i in
    sums :=
      { sn = !sums.sn + 1;
        sx = !sums.sx +. x;
        sy = !sums.sy +. y;
        sxx = !sums.sxx +. (x *. x);
        syy = !sums.syy +. (y *. y);
        sxy = !sums.sxy +. (x *. y) };
    let p = Ibuf.get core.buf_prop i in
    Hashtbl.replace emissions p
      (1. +. Option.value ~default:0. (Hashtbl.find_opt emissions p))
  done;
  let uid = fresh_uid core in
  let seg =
    { uid;
      strace = core.cur_trace;
      skey = (core.cur_trace, tstart);
      assertion;
      attr;
      entry;
      sums = !sums;
      emissions }
  in
  if core.prev_uid >= 0 then begin
    let key = (core.prev_uid, uid) in
    Hashtbl.replace core.counts key
      (1. +. Option.value ~default:0. (Hashtbl.find_opt core.counts key))
  end;
  core.prev_uid <- uid;
  core.pending <- seg :: core.pending;
  core.pending_n <- core.pending_n + 1;
  Fbuf.drop_to core.buf_power (tstop + 1);
  Fbuf.drop_to core.buf_ham (tstop + 1);
  Ibuf.drop_to core.buf_prop (tstop + 1)

(* A newly recognized triplet displaces the held-back previous one; the
   hold-back exists because the trace's *last* triplet may still be
   extended by the end-of-trace attribution. *)
let emit_triplet core pat tstart tstop =
  Psm_obs.span "stream.extend" @@ fun () ->
  (match core.held_triplet with
  | Some t -> release_triplet core t
  | None -> ());
  core.held_triplet <- Some { pat; tstart; tstop }

(* ---------- push / end_trace ---------- *)

let same_sample a b = Array.length a = Array.length b && Array.for_all2 Bits.equal a b

let push_training trainer sample ~power =
  let core = trainer.core in
  let table =
    match core.table with Some t -> t | None -> assert false
  in
  let t = core.cur_len in
  (* Classification memo: a sample equal to the previous one has the same
     truth row (hence the same proposition, with no interning to do) and
     an input Hamming distance of exactly 0 — the dominant self-loop
     cycles of an idle-heavy trace skip the classify and the copy. *)
  let memo_hit =
    Runs.use ()
    && (match core.prev_inputs with Some prev -> same_sample prev sample | None -> false)
  in
  let prop = if memo_hit then core.prev_prop else Table.classify_or_add table sample in
  let ham =
    match core.prev_inputs with
    | None -> 0.
    | Some _ when memo_hit -> 0.
    | Some prev ->
        let d =
          List.fold_left
            (fun acc i -> acc + Bits.hamming_distance sample.(i) prev.(i))
            0 core.input_idx
        in
        float_of_int d
  in
  Fbuf.push core.buf_power power;
  Fbuf.push core.buf_ham ham;
  Ibuf.push core.buf_prop prop;
  if t = 0 then begin
    core.xu_in_until <- false;
    core.run_start <- 0
  end
  else if prop = core.prev_prop then begin
    (* Same proposition entered the FIFO: the X state upgrades to U. *)
    if not core.xu_in_until then core.xu_in_until <- true
  end
  else begin
    let pat =
      if core.xu_in_until then Xu.Until (core.prev_prop, prop)
      else Xu.Next (core.prev_prop, prop)
    in
    emit_triplet core pat core.run_start (t - 1);
    core.xu_in_until <- false;
    core.run_start <- t
  end;
  core.prev_prop <- prop;
  if not memo_hit then core.prev_inputs <- Some (Array.copy sample);
  core.cur_len <- t + 1;
  core.cycles <- core.cycles + 1;
  core.since_compact <- core.since_compact + 1;
  if core.since_compact >= core.watermark then compact trainer.config core

let flush_mine_rle trainer =
  match trainer.mine_rle.rsample with
  | None -> ()
  | Some s ->
      Miner.Incremental.observe_run trainer.core.miner s trainer.mine_rle.rlen;
      trainer.mine_rle.rsample <- None;
      trainer.mine_rle.rlen <- 0

let push trainer sample ~power =
  let core = trainer.core in
  if Array.length sample <> Interface.arity core.iface then
    invalid_arg "Stream_train.push: sample arity mismatch";
  match core.phase with
  | Mining ->
      if Runs.use () then begin
        match trainer.mine_rle.rsample with
        | Some s when same_sample s sample ->
            trainer.mine_rle.rlen <- trainer.mine_rle.rlen + 1
        | _ ->
            flush_mine_rle trainer;
            trainer.mine_rle.rsample <- Some (Array.copy sample);
            trainer.mine_rle.rlen <- 1
      end
      else begin
        flush_mine_rle trainer;
        Miner.Incremental.observe core.miner sample
      end
  | Training -> push_training trainer sample ~power

let end_trace_training trainer =
  let core = trainer.core in
  let len = core.cur_len in
  if len = 0 then invalid_arg "Stream_train.end_trace: empty trace";
  (* End-of-trace attribution, mirroring Generator.generate: a trailing
     run of a single instant folds into the last triplet's interval; a
     longer one becomes its own absorbing Until(p, p) segment; a trace
     that never produced a triplet is one absorbing segment. *)
  (match core.held_triplet with
  | None ->
      let p = Ibuf.get core.buf_prop 0 in
      release_triplet core
        { pat = Xu.Until (p, p); tstart = 0; tstop = len - 1 }
  | Some held ->
      let tail_start = held.tstop + 1 in
      if len - 1 = tail_start then
        release_triplet core { held with tstop = len - 1 }
      else begin
        release_triplet core held;
        let p = Ibuf.get core.buf_prop tail_start in
        release_triplet core
          { pat = Xu.Until (p, p); tstart = tail_start; tstop = len - 1 }
      end);
  core.held_triplet <- None;
  core.prev_uid <- -1;
  core.cur_len <- 0;
  core.prev_inputs <- None;
  Fbuf.reset core.buf_power;
  Fbuf.reset core.buf_ham;
  Ibuf.reset core.buf_prop;
  core.cur_trace <- core.cur_trace + 1;
  core.traces_done <- core.traces_done + 1

let end_trace trainer =
  let core = trainer.core in
  match core.phase with
  | Mining ->
      flush_mine_rle trainer;
      Miner.Incremental.end_trace core.miner;
      core.traces_done <- core.traces_done + 1
  | Training -> end_trace_training trainer

let finish_mining trainer =
  let core = trainer.core in
  (match core.phase with
  | Training -> invalid_arg "Stream_train.finish_mining: already training"
  | Mining -> ());
  flush_mine_rle trainer;
  let t0 = Unix.gettimeofday () in
  let vocabulary =
    Psm_obs.span "stream.mine" @@ fun () -> Miner.Incremental.vocabulary core.miner
  in
  core.table <- Some (Table.create vocabulary);
  core.phase <- Training;
  core.traces_done <- 0;
  core.mine_s <- core.mine_s +. (Unix.gettimeofday () -. t0);
  Log.info (fun m ->
      m "stream mining: %d atoms over %d samples"
        (Psm_mining.Vocabulary.size vocabulary)
        (Miner.Incremental.total core.miner))

(* ---------- finalization ---------- *)

let close_pipeline (config : Merge.config) core =
  (* Flush the pending raw segments, then close every level's open run
     in pass order: level i's final run enters level i+1 before i+1's
     own run closes, exactly as pass i+1 sees pass i's complete output. *)
  let batch = List.rev core.pending in
  core.pending <- [];
  core.pending_n <- 0;
  List.iter (feed_pipeline config core) batch;
  Array.iteri
    (fun i lvl ->
      match lvl.run with
      | Some acc ->
          lvl.run <- None;
          feed config core (i + 1) acc
      | None -> ())
    core.levels

let finish trainer =
  let core = trainer.core in
  let config = trainer.config in
  (match core.phase with
  | Mining -> invalid_arg "Stream_train.finish: still mining (call finish_mining)"
  | Training -> ());
  if core.cur_len > 0 then end_trace_training trainer;
  if core.traces_done = 0 then invalid_arg "Stream_train.finish: no training traces";
  let table = match core.table with Some t -> t | None -> assert false in
  let combine_slot = ref 0. in
  let analyze_slot = ref 0. in
  let t0 = Unix.gettimeofday () in
  let optimized, optimize_reports, hmm, transition_counts, emission_counts =
    Psm_obs.span "stream.finalize" @@ fun () ->
    close_pipeline config.Flow.merge core;
    (* The absorber now holds the join pass-1 clustering of the final
       simplified machine. Materialize that pass's output machine in
       canonical (trace, start) order — merge_clusters + renumber would
       produce exactly this — and let the batch join fixpoint take over:
       iterating the same pass function from the pass-1 output IS the
       rest of the fixpoint. *)
    let v = core.clusters in
    let order = Array.init v.cn (fun i -> i) in
    Array.sort (fun a b -> compare v.items.(a).first_key v.items.(b).first_key) order;
    let id_of = Array.make v.cn 0 in
    Array.iteri (fun pos i -> id_of.(i) <- pos) order;
    let machine = ref (Psm.empty table) in
    Array.iter
      (fun i ->
        let c = v.items.(i) in
        let components = List.rev c.components in
        let assertion =
          if c.members >= 2 then Assertion.alt (List.map fst components)
          else fst (List.hd components)
        in
        let m, id =
          Psm.add_state_full !machine assertion c.cattr
            ~output:(Psm.Const c.cattr.Power_attr.mu) ~components
        in
        assert (id = id_of.(i));
        machine := m)
      order;
    Hashtbl.iter
      (fun (ci, guard, cj) () ->
        machine := Psm.add_transition !machine ~src:id_of.(ci) ~guard ~dst:id_of.(cj))
      core.cedges;
    List.iter
      (fun ci -> machine := Psm.add_initial !machine id_of.(ci))
      (List.rev core.cinitials);
    let joined, jmap = Join.join_traced ~config:config.Flow.merge !machine in
    let final_of_cluster = Array.map (fun i -> jmap id_of.(i)) (Array.init v.cn Fun.id) in
    (* Optimization from the streamed sufficient statistics: same
       decisions as Optimize.optimize, with the Pearson r and the fit
       computed from ⟨n, Σx, Σy, Σx², Σy², Σxy⟩. *)
    let fsums = Hashtbl.create 32 and femissions = Hashtbl.create 64 in
    Array.iteri
      (fun i c ->
        if i < v.cn then begin
          let fid = final_of_cluster.(i) in
          Hashtbl.replace fsums fid
            (add_sums
               (Option.value ~default:zero_sums (Hashtbl.find_opt fsums fid))
               c.csums);
          Hashtbl.iter
            (fun p cnt ->
              let key = (fid, p) in
              Hashtbl.replace femissions key
                (cnt +. Option.value ~default:0. (Hashtbl.find_opt femissions key)))
            c.cemissions
        end)
      v.items;
    let opt_config = config.Flow.optimize in
    let optimized, reports =
      List.fold_left
        (fun (psm, reports) (s : Psm.state) ->
          let rel = Power_attr.relative_sigma s.Psm.attr in
          if rel <= opt_config.Optimize.sigma_threshold || s.Psm.attr.Power_attr.n < 3
          then (psm, reports)
          else begin
            let { sn; sx; sy; sxx; syy; sxy } =
              Option.value ~default:zero_sums (Hashtbl.find_opt fsums s.Psm.id)
            in
            let r = Regression.pearson_of_sums ~n:sn ~sx ~sy ~sxx ~syy ~sxy in
            if abs_float r >= opt_config.Optimize.correlation_threshold then begin
              let fit = Regression.fit_of_sums ~n:sn ~sx ~sy ~sxx ~syy ~sxy in
              let psm =
                Psm.set_output psm s.Psm.id
                  (Psm.Affine
                     { slope = fit.Regression.slope; intercept = fit.Regression.intercept })
              in
              ( psm,
                { Optimize.state_id = s.Psm.id;
                  relative_sigma = rel;
                  correlation = r;
                  upgraded = true }
                :: reports )
            end
            else
              ( psm,
                { Optimize.state_id = s.Psm.id;
                  relative_sigma = rel;
                  correlation = r;
                  upgraded = false }
                :: reports )
          end)
        (joined, []) (Psm.states joined)
    in
    let reports = List.rev reports in
    (* Raw chain-edge occurrences onto the final machine. Every uid has
       been redirected into some cluster by now. *)
    let cluster_of_uid = Hashtbl.create v.cn in
    Array.iteri
      (fun i c -> if i < v.cn then Hashtbl.replace cluster_of_uid c.cuid i)
      v.items;
    let final_counts = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (a, b) cnt ->
        let fid u =
          match Hashtbl.find_opt cluster_of_uid (resolve_uid core u) with
          | Some ci -> final_of_cluster.(ci)
          | None -> invalid_arg "Stream_train.finish: unresolved raw edge"
        in
        let key = (fid a, fid b) in
        Hashtbl.replace final_counts key
          (cnt +. Option.value ~default:0. (Hashtbl.find_opt final_counts key)))
      core.counts;
    let transition_counts =
      List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) final_counts [])
    in
    let emission_counts =
      List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) femissions [])
    in
    let hmm = Hmm.build ~transition_counts ~emission_counts optimized in
    (optimized, reports, hmm, transition_counts, emission_counts)
  in
  combine_slot := Unix.gettimeofday () -. t0;
  let t1 = Unix.gettimeofday () in
  (* No stored training traces in streaming mode: the analyzer runs with
     the model-only context (Γ/power-dependent rules are skipped). *)
  let analysis =
    Psm_obs.span "stream.analyze" @@ fun () ->
    Analyzer.analyze ~config:config.Flow.analysis ~hmm optimized
  in
  analyze_slot := Unix.gettimeofday () -. t1;
  Psm_obs.count "stream.cycles" core.cycles;
  Psm_obs.count "stream.compactions" core.compactions;
  Psm_obs.gc_snapshot "train_stream";
  Log.info (fun m ->
      m "stream training: %d cycles over %d traces, %d compactions -> %d states"
        core.cycles core.traces_done core.compactions (Psm.state_count optimized));
  { config;
    table;
    optimized;
    optimize_reports;
    hmm;
    transition_counts;
    emission_counts;
    analysis;
    timings =
      { Flow.mine_s = core.mine_s;
        generate_s = core.generate_s;
        combine_s = !combine_slot;
        analyze_s = !analyze_slot };
    cycles = core.cycles;
    traces_seen = core.traces_done;
    compactions = core.compactions }

(* ---------- public trainer wrapper ---------- *)

module Trainer = struct
  type t = trainer

  let create ?config ?watermark ?provenance iface =
    { config = Option.value ~default:Flow.default config;
      core = create_core ?config ?watermark ?provenance iface;
      mine_rle = { rsample = None; rlen = 0 } }

  let push = push
  let end_trace = end_trace
  let finish_mining = finish_mining
  let finish = finish
  let interface t = t.core.iface
  let phase t = match t.core.phase with Mining -> `Mining | Training -> `Training
  let cycles t = t.core.cycles
  let traces t = t.core.traces_done
  let compactions t = t.core.compactions
  let watermark t = t.core.watermark

  let table t =
    match t.core.table with
    | Some table -> table
    | None -> invalid_arg "Stream_train.Trainer.table: still mining"
end

(* ---------- checkpoint / restore ---------- *)

module Checkpoint = struct
  let version_line = "psm-repro-trainer 1"

  exception Restore_error of string

  let save_channel oc (t : Trainer.t) =
    (* The pending mining run lives outside [core]; fold it into the
       miner's counters so the marshaled payload is self-contained.
       Early flushing is exact (absolute-time run continuity). *)
    flush_mine_rle t;
    output_string oc (version_line ^ "\n");
    output_string oc
      (Printf.sprintf "state %s watermark %d cycles %d\n"
         (match t.core.phase with Mining -> "mining" | Training -> "training")
         t.core.watermark t.core.cycles);
    Marshal.to_channel oc t.core []

  let save_file path t =
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save_channel oc t)

  let load_channel ?(config = Flow.default) ~source ic =
    let line () =
      match In_channel.input_line ic with
      | Some l -> String.trim l
      | None -> raise (Restore_error (source ^ ": truncated checkpoint"))
    in
    let header = line () in
    if header <> version_line then
      raise
        (Restore_error
           (Printf.sprintf "%s: bad version header: found %S, expected %S" source
              header version_line));
    let _summary = line () in
    let core : core =
      try Marshal.from_channel ic
      with Failure msg | Sys_error msg ->
        raise (Restore_error (source ^ ": corrupt checkpoint payload: " ^ msg))
    in
    { config; core; mine_rle = { rsample = None; rlen = 0 } }

  let load_file ?config path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> load_channel ?config ~source:path ic)
end

(* ---------- streaming straight from VCD files ---------- *)

(* Re-expansion of raw per-timestamp samples onto the uniform [period]
   grid, replicating Vcd's batch resampler: each grid point takes the
   latest values at or before it, and the grid extends one point past
   the final timestamp when that timestamp is off-grid. *)
type resample = {
  period : int;
  push_sample : Bits.t array -> power:float -> unit;
  mutable started : bool;
  mutable next_grid : int;
  mutable rheld : (Bits.t array * float) option;
  mutable tail_pending : bool;
}

let resampler ~period push_sample =
  if period <= 0 then invalid_arg "Stream_train: sample period must be positive";
  { period; push_sample; started = false; next_grid = 0; rheld = None;
    tail_pending = false }

let resample_push r ~time sample ~power =
  if not r.started then begin
    r.push_sample sample ~power;
    r.started <- true;
    r.next_grid <- time + r.period;
    r.rheld <- Some (Array.copy sample, power);
    r.tail_pending <- false
  end
  else begin
    (match r.rheld with
    | Some (held, held_power) ->
        while r.next_grid < time do
          r.push_sample held ~power:held_power;
          r.next_grid <- r.next_grid + r.period
        done
    | None -> ());
    if r.next_grid = time then begin
      r.push_sample sample ~power;
      r.next_grid <- r.next_grid + r.period;
      r.tail_pending <- false
    end
    else r.tail_pending <- true;
    r.rheld <- Some (Array.copy sample, power)
  end

let resample_finish r =
  if r.tail_pending then
    match r.rheld with
    | Some (held, held_power) -> r.push_sample held ~power:held_power
    | None -> ()

let stream_file ?unknowns ~period ~on_header ~push_sample path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let r = Reader.of_channel ic in
      let rs = resampler ~period push_sample in
      let stats =
        Vcd.stream ?unknowns r
          ~init:(fun header ->
            if not header.Vcd.has_power then
              invalid_arg
                (Printf.sprintf "Stream_train: %s carries no %s real variable" path
                   Vcd.power_var_name);
            on_header header)
          ~sample:(fun ~time sample ~power -> resample_push rs ~time sample ~power)
      in
      resample_finish rs;
      stats)

let train_stream ?(config = Flow.default) ?unknowns ?(period = 1) ?watermark
    ?provenance ?checkpoint paths =
  Psm_obs.span "flow.train_stream" @@ fun () ->
  if paths = [] then invalid_arg "Stream_train.train_stream: no files";
  let trainer = ref None in
  (match checkpoint with
  | Some path when Sys.file_exists path ->
      let t = Checkpoint.load_file ~config path in
      Log.info (fun m ->
          m "resuming from %s: %s phase, %d of %d file(s) done" path
            (match Trainer.phase t with
            | `Mining -> "mining"
            | `Training -> "training")
            (Trainer.traces t) (List.length paths));
      trainer := Some t
  | _ -> ());
  let get_trainer header =
    match !trainer with
    | Some t ->
        if not (Interface.equal (Trainer.interface t) header.Vcd.interface) then
          invalid_arg "Stream_train.train_stream: VCD interfaces differ"
    | None ->
        trainer :=
          Some (Trainer.create ~config ?watermark ?provenance header.Vcd.interface)
  in
  let save_checkpoint () =
    match (checkpoint, !trainer) with
    | Some path, Some t -> Checkpoint.save_file path t
    | _ -> ()
  in
  (* Checkpoints are taken only at file boundaries, so a resumed
     trainer's completed-trace count says exactly how many files of the
     current phase to skip. *)
  let pass label =
    let already = match !trainer with Some t -> Trainer.traces t | None -> 0 in
    List.iteri
      (fun i path ->
        if i >= already then begin
          let t0 = Unix.gettimeofday () in
          let stats =
            stream_file ?unknowns ~period ~on_header:get_trainer
              ~push_sample:(fun sample ~power ->
                match !trainer with
                | Some t -> Trainer.push t sample ~power
                | None -> assert false)
              path
          in
          (match !trainer with Some t -> Trainer.end_trace t | None -> assert false);
          save_checkpoint ();
          Log.info (fun m ->
              m "%s pass over %s: %a in %.3fs" label path Reader.pp_stats stats
                (Unix.gettimeofday () -. t0))
        end)
      paths
  in
  (match !trainer with
  | Some t when Trainer.phase t = `Training -> ()
  | _ ->
      pass "mining";
      let t =
        match !trainer with
        | Some t -> t
        | None -> invalid_arg "Stream_train.train_stream: no samples in any file"
      in
      Trainer.finish_mining t;
      save_checkpoint ());
  pass "training";
  let result =
    match !trainer with Some t -> Trainer.finish t | None -> assert false
  in
  (match checkpoint with
  | Some path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  result

(* In-memory variant for tests and for workloads captured outside VCD:
   both phases over the same functional/power trace lists. *)
let train_traces ?(config = Flow.default) ?watermark ?provenance ~traces ~powers () =
  if List.length traces <> List.length powers then
    invalid_arg "Stream_train.train_traces: traces and powers differ in number";
  if traces = [] then invalid_arg "Stream_train.train_traces: no training traces";
  let module Ft = Psm_trace.Functional_trace in
  let module Pt = Psm_trace.Power_trace in
  let iface = Ft.interface (List.hd traces) in
  let t = Trainer.create ~config ?watermark ?provenance iface in
  let feed () =
    List.iter2
      (fun trace power ->
        let n = Ft.length trace in
        if n <> Pt.length power then
          invalid_arg "Stream_train.train_traces: functional/power length mismatch";
        for i = 0 to n - 1 do
          Trainer.push t (Ft.sample trace ~time:i) ~power:(Pt.get power i)
        done;
        Trainer.end_trace t)
      traces powers
  in
  feed ();
  Trainer.finish_mining t;
  feed ();
  Trainer.finish t
