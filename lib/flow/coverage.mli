(** Trace-quality diagnostics.

    The paper (Sec. I): "if the functional traces were unable to cover all
    the functional behaviours of the IP, the PSMs would be incomplete,
    thus leading to a wrong estimation of the power consumption". This
    module makes that warning measurable, in both directions:

    - {!of_trace}: how much of a trained model does a trace exercise
      (state and transition coverage — a verification-style coverage
      report for the training suite);
    - how much of a trace does the model recognize (the fraction of
      instants whose proposition row was seen in training — a cheap
      upfront predictor of desynchronization before running the
      simulator). *)

type report = {
  instants : int;
  known_instants : int;
      (** Instants whose proposition row exists in the model's table. *)
  known_fraction : float;
  states_visited : int;
  states_total : int;
  transitions_taken : int;
  transitions_total : int;
  unknown_row_samples : int list;
      (** Up to 10 instants with unknown rows, for debugging. *)
}

val of_trace : Psm_hmm.Hmm.t -> Psm_trace.Functional_trace.t -> report
(** Simulates (online) and aggregates coverage. *)

val pp : Format.formatter -> report -> unit
