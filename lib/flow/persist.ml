module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module Reader = Psm_trace.Reader
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Table = Psm_mining.Prop_trace.Table
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm

type model = { table : Table.t; psm : Psm.t; hmm : Hmm.t }

exception Parse_error of string

let version_line = "psm-repro-model 1"

(* ---------- assertion text ---------- *)

let rec assertion_to_string = function
  | Assertion.Until (p, q) -> Printf.sprintf "(U %d %d)" p q
  | Assertion.Next (p, q) -> Printf.sprintf "(X %d %d)" p q
  | Assertion.Seq parts ->
      "(seq " ^ String.concat " " (List.map assertion_to_string parts) ^ ")"
  | Assertion.Alt parts ->
      "(alt " ^ String.concat " " (List.map assertion_to_string parts) ^ ")"

let tokenize_sexp text =
  let buf = Buffer.create 8 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | ' ' | '\t' -> flush ()
      | c -> Buffer.add_char buf c)
    text;
  flush ();
  List.rev !tokens

let parse_assertion text =
  let int_of tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> raise (Parse_error ("bad proposition id " ^ tok))
  in
  (* Recursive descent over the token list. *)
  let rec parse tokens =
    match tokens with
    | "(" :: "U" :: p :: q :: ")" :: rest -> (Assertion.Until (int_of p, int_of q), rest)
    | "(" :: "X" :: p :: q :: ")" :: rest -> (Assertion.Next (int_of p, int_of q), rest)
    | "(" :: "seq" :: rest ->
        let parts, rest = parse_list rest in
        (Assertion.seq parts, rest)
    | "(" :: "alt" :: rest ->
        let parts, rest = parse_list rest in
        (Assertion.alt parts, rest)
    | tok :: _ -> raise (Parse_error ("unexpected assertion token " ^ tok))
    | [] -> raise (Parse_error "truncated assertion")
  and parse_list tokens =
    match tokens with
    | ")" :: rest -> ([], rest)
    | _ ->
        let first, rest = parse tokens in
        let more, rest = parse_list rest in
        (first :: more, rest)
  in
  match parse (tokenize_sexp text) with
  | assertion, [] -> assertion
  | _, leftover :: _ -> raise (Parse_error ("trailing assertion token " ^ leftover))

(* ---------- save ---------- *)

let float_str f = Printf.sprintf "%.17g" f

let attr_line (a : Power_attr.t) =
  Printf.sprintf "%s %s %d" (float_str a.Power_attr.mu) (float_str a.Power_attr.sigma)
    a.Power_attr.n

let save (trained : Flow.trained) =
  let buf = Buffer.create 8192 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  addf "%s" version_line;
  let table = trained.Flow.table in
  let vocabulary = Table.vocabulary table in
  let iface = Vocabulary.interface vocabulary in
  let signals = Interface.signals iface in
  addf "interface %d" (Array.length signals);
  Array.iter
    (fun (s : Signal.t) ->
      if String.contains s.Signal.name ' ' then
        invalid_arg "Persist.save: signal names must not contain spaces";
      addf "%s %s %d"
        (if Signal.is_input s then "in" else "out")
        s.Signal.name s.Signal.width)
    signals;
  let atoms = Vocabulary.atoms vocabulary in
  addf "atoms %d" (Array.length atoms);
  Array.iter
    (fun (a : Atomic.t) ->
      let cmp =
        match a.Atomic.cmp with Atomic.Eq -> "eq" | Atomic.Lt -> "lt" | Atomic.Gt -> "gt"
      in
      match a.Atomic.rhs with
      | Atomic.Const v ->
          addf "atom %d %s const %d %s" a.Atomic.lhs cmp (Bits.width v)
            (Bits.to_hex_string v)
      | Atomic.Sig i -> addf "atom %d %s sig %d" a.Atomic.lhs cmp i)
    atoms;
  addf "props %d" (Table.prop_count table);
  for p = 0 to Table.prop_count table - 1 do
    let row = Table.row table p in
    addf "prop %s"
      (String.init (Array.length row) (fun i -> if row.(i) then '1' else '0'))
  done;
  (* States with compacted ids. *)
  let psm = trained.Flow.optimized in
  let states = Psm.states psm in
  let dense = Hashtbl.create 16 in
  List.iteri (fun i (s : Psm.state) -> Hashtbl.replace dense s.Psm.id i) states;
  let d id =
    match Hashtbl.find_opt dense id with
    | Some i -> i
    | None -> invalid_arg "Persist.save: dangling state id"
  in
  addf "states %d" (List.length states);
  List.iter
    (fun (s : Psm.state) ->
      let output =
        match s.Psm.output with
        | Psm.Const v -> "const " ^ float_str v
        | Psm.Affine { slope; intercept } ->
            Printf.sprintf "affine %s %s" (float_str slope) (float_str intercept)
      in
      addf "state %d %s %s" (d s.Psm.id) (attr_line s.Psm.attr) output;
      addf "assert %s" (assertion_to_string s.Psm.assertion);
      addf "intervals %d" (List.length s.Psm.attr.Power_attr.intervals);
      List.iter
        (fun (iv : Power_attr.interval) ->
          addf "iv %d %d %d" iv.Power_attr.trace iv.Power_attr.start iv.Power_attr.stop)
        s.Psm.attr.Power_attr.intervals;
      addf "components %d" (List.length s.Psm.components);
      List.iter
        (fun (assertion, (attr : Power_attr.t)) ->
          addf "comp %s ; %s" (attr_line attr) (assertion_to_string assertion))
        s.Psm.components)
    states;
  let transitions = Psm.transitions psm in
  addf "transitions %d" (List.length transitions);
  List.iter
    (fun (tr : Psm.transition) ->
      addf "t %d %d %d" (d tr.Psm.src) tr.Psm.guard (d tr.Psm.dst))
    transitions;
  let initial = Psm.initial psm in
  addf "initial %d" (List.length initial);
  List.iter (fun id -> addf "i %d" (d id)) initial;
  addf "counts-trans %d" (List.length trained.Flow.transition_counts);
  List.iter
    (fun ((src, dst), c) ->
      match (Hashtbl.find_opt dense src, Hashtbl.find_opt dense dst) with
      | Some s, Some dd -> addf "ct %d %d %s" s dd (float_str c)
      | _ -> addf "ct -1 -1 0" (* raw-chain id that did not survive; ignored *))
    trained.Flow.transition_counts;
  addf "counts-emit %d" (List.length trained.Flow.emission_counts);
  List.iter
    (fun ((state, prop), c) ->
      match Hashtbl.find_opt dense state with
      | Some s -> addf "ce %d %d %s" s prop (float_str c)
      | None -> addf "ce -1 -1 0")
    trained.Flow.emission_counts;
  addf "end";
  Buffer.contents buf

let save_file path trained =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save trained))

(* ---------- load ---------- *)

(* The cursor is a streaming [Reader.t]: one line of the model file is
   live at a time. *)
let next cursor =
  let rec go () =
    match Reader.next_line cursor with
    | None -> raise (Parse_error "unexpected end of model file")
    | Some line ->
        let line = String.trim line in
        if line = "" then go () else line
  in
  go ()

let fail cursor msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" (Reader.line cursor) msg))

let words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let expect_count cursor keyword =
  match words (next cursor) with
  | [ k; n ] when k = keyword -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> fail cursor ("bad count after " ^ keyword))
  | _ -> fail cursor ("expected '" ^ keyword ^ " <n>'")

let int_word cursor w =
  match int_of_string_opt w with Some v -> v | None -> fail cursor ("bad integer " ^ w)

let float_word cursor w =
  match float_of_string_opt w with Some v -> v | None -> fail cursor ("bad float " ^ w)

let read ?(source = "<string>") cursor =
  (match next cursor with
  | line when line = version_line -> ()
  | line ->
      let hint =
        if String.length line >= 17 && String.sub line 0 17 = "psm-repro-trainer" then
          " (this is a streaming-trainer checkpoint, not a model; resume it \
           with Persist.load_trainer_file instead)"
        else ""
      in
      raise
        (Parse_error
           (Printf.sprintf "%s: bad version header: found %S, expected %S%s"
              source line version_line hint)));
  (* Interface. *)
  let n_signals = expect_count cursor "interface" in
  let signals =
    List.init n_signals (fun _ ->
        match words (next cursor) with
        | [ "in"; name; w ] -> Signal.input name (int_word cursor w)
        | [ "out"; name; w ] -> Signal.output name (int_word cursor w)
        | _ -> fail cursor "bad signal line")
  in
  let iface = Interface.create signals in
  (* Atoms. *)
  let n_atoms = expect_count cursor "atoms" in
  let atoms =
    List.init n_atoms (fun _ ->
        let cmp_of = function
          | "eq" -> Atomic.Eq
          | "lt" -> Atomic.Lt
          | "gt" -> Atomic.Gt
          | w -> fail cursor ("bad comparison " ^ w)
        in
        match words (next cursor) with
        | [ "atom"; lhs; cmp; "const"; w; hex ] ->
            { Atomic.lhs = int_word cursor lhs;
              cmp = cmp_of cmp;
              rhs = Atomic.Const (Bits.of_hex_string ~width:(int_word cursor w) hex) }
        | [ "atom"; lhs; cmp; "sig"; rhs ] ->
            { Atomic.lhs = int_word cursor lhs;
              cmp = cmp_of cmp;
              rhs = Atomic.Sig (int_word cursor rhs) }
        | _ -> fail cursor "bad atom line")
  in
  let vocabulary = Vocabulary.create iface atoms in
  if Vocabulary.size vocabulary <> n_atoms then
    raise (Parse_error "duplicate atoms in model file");
  let table = Table.create vocabulary in
  (* Propositions: rows interned in saved order keep their ids. *)
  let n_props = expect_count cursor "props" in
  for expected = 0 to n_props - 1 do
    match words (next cursor) with
    | [ "prop"; bits ] ->
        if String.length bits <> n_atoms then fail cursor "row width mismatch";
        let row = Array.init n_atoms (fun i -> bits.[i] = '1') in
        let id = Table.intern_row table row in
        if id <> expected then fail cursor "duplicate proposition row"
    | _ -> fail cursor "bad prop line"
  done;
  (* States. *)
  let n_states = expect_count cursor "states" in
  let psm = ref (Psm.empty table) in
  for expected = 0 to n_states - 1 do
    let id, mu, sigma, n, output =
      match words (next cursor) with
      | "state" :: id :: mu :: sigma :: n :: rest ->
          let output =
            match rest with
            | [ "const"; v ] -> Psm.Const (float_word cursor v)
            | [ "affine"; a; b ] ->
                Psm.Affine { slope = float_word cursor a; intercept = float_word cursor b }
            | _ -> fail cursor "bad output spec"
          in
          (int_word cursor id, float_word cursor mu, float_word cursor sigma,
           int_word cursor n, output)
      | _ -> fail cursor "bad state line"
    in
    if id <> expected then fail cursor "states out of order";
    let assertion =
      match words (next cursor) with
      | "assert" :: rest -> parse_assertion (String.concat " " rest)
      | _ -> fail cursor "expected assert line"
    in
    let n_ivs = expect_count cursor "intervals" in
    let intervals =
      List.init n_ivs (fun _ ->
          match words (next cursor) with
          | [ "iv"; trace; start; stop ] ->
              { Power_attr.trace = int_word cursor trace;
                start = int_word cursor start;
                stop = int_word cursor stop }
          | _ -> fail cursor "bad interval line")
    in
    let n_comps = expect_count cursor "components" in
    let components =
      List.init n_comps (fun _ ->
          match words (next cursor) with
          | "comp" :: mu :: sigma :: n :: ";" :: rest ->
              let attr =
                { Power_attr.mu = float_word cursor mu;
                  sigma = float_word cursor sigma;
                  n = int_word cursor n;
                  intervals = [] }
              in
              (parse_assertion (String.concat " " rest), attr)
          | _ -> fail cursor "bad component line")
    in
    let attr = { Power_attr.mu; sigma; n; intervals } in
    let psm', new_id = Psm.add_state_full !psm assertion attr ~output ~components in
    if new_id <> expected then fail cursor "state id drift";
    psm := psm'
  done;
  (* Transitions / initial. *)
  let n_tr = expect_count cursor "transitions" in
  for _ = 1 to n_tr do
    match words (next cursor) with
    | [ "t"; src; guard; dst ] ->
        psm :=
          Psm.add_transition !psm ~src:(int_word cursor src)
            ~guard:(int_word cursor guard) ~dst:(int_word cursor dst)
    | _ -> fail cursor "bad transition line"
  done;
  let n_init = expect_count cursor "initial" in
  for _ = 1 to n_init do
    match words (next cursor) with
    | [ "i"; id ] -> psm := Psm.add_initial !psm (int_word cursor id)
    | _ -> fail cursor "bad initial line"
  done;
  (* Counts. *)
  let n_ct = expect_count cursor "counts-trans" in
  let transition_counts =
    List.init n_ct (fun _ ->
        match words (next cursor) with
        | [ "ct"; src; dst; c ] ->
            ((int_word cursor src, int_word cursor dst), float_word cursor c)
        | _ -> fail cursor "bad count line")
    |> List.filter (fun ((s, _), _) -> s >= 0)
  in
  let n_ce = expect_count cursor "counts-emit" in
  let emission_counts =
    List.init n_ce (fun _ ->
        match words (next cursor) with
        | [ "ce"; state; prop; c ] ->
            ((int_word cursor state, int_word cursor prop), float_word cursor c)
        | _ -> fail cursor "bad emission line")
    |> List.filter (fun ((s, _), _) -> s >= 0)
  in
  if next cursor <> "end" then raise (Parse_error "missing end marker");
  let psm = !psm in
  let hmm = Hmm.build ~transition_counts ~emission_counts psm in
  { table; psm; hmm }

let load text = read (Reader.of_string text)

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read ~source:path (Reader.of_channel ic))

(* ---------- streaming-trainer checkpoints ---------- *)

let save_trainer_file = Stream_train.Checkpoint.save_file
let load_trainer_file = Stream_train.Checkpoint.load_file
