module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Online = Psm_stats.Descriptive.Online
module Accuracy = Psm_hmm.Accuracy

module Constant = struct
  type t = { mu : float }

  let train powers =
    if powers = [] then invalid_arg "Baselines.Constant.train: no training traces";
    let acc = Online.create () in
    List.iter
      (fun p ->
        for i = 0 to PT.length p - 1 do
          Online.add acc (PT.get p i)
        done)
      powers;
    { mu = Online.mean acc }

  let power t = t.mu

  let evaluate t ~reference =
    let estimate = Array.make (PT.length reference) t.mu in
    Accuracy.of_estimate ~reference ~estimate ~wsp:0.
end

module Two_state = struct
  type t = { control_index : int; idle : float; active : float }

  let active_at trace ~control_index ~time =
    Psm_bits.Bits.get (FT.value trace ~time ~signal:control_index) 0

  let train ~control pairs =
    if pairs = [] then invalid_arg "Baselines.Two_state.train: no training traces";
    let iface = FT.interface (fst (List.hd pairs)) in
    let control_index = Psm_trace.Interface.index iface control in
    let idle = Online.create () and active = Online.create () in
    List.iter
      (fun (trace, power) ->
        FT.iter
          (fun time _sample ->
            let acc = if active_at trace ~control_index ~time then active else idle in
            Online.add acc (PT.get power time))
          trace)
      pairs;
    { control_index; idle = Online.mean idle; active = Online.mean active }

  let idle_power t = t.idle
  let active_power t = t.active

  let estimate t trace =
    Array.init (FT.length trace) (fun time ->
        if active_at trace ~control_index:t.control_index ~time then t.active else t.idle)

  let evaluate t trace ~reference =
    Accuracy.of_estimate ~reference ~estimate:(estimate t trace) ~wsp:0.
end
