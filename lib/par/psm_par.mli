(** A small, dependency-free domain pool for the OCaml 5 runtime.

    The pool fans work out over [Domain]s coordinated with [Mutex] and
    [Condition] — no Domainslib. It exists for the embarrassingly parallel
    stages of the PSM flow (per-benchmark experiments, per-atom-chunk
    mining passes, per-trace-chunk proposition classification), so the
    API is deliberately tiny: ordered map over lists and arrays plus a
    chunked fold.

    {2 Determinism}

    Every function returns results in input order, independent of worker
    scheduling: [parallel_map f xs] is observably [List.map f xs]
    whenever [f] is pure. With [jobs = 1] no domains are spawned at all
    and the sequential code path runs — [PSM_JOBS=1] therefore gives the
    exact allocation and evaluation order of a build without this
    library. [parallel_fold] is deterministic provided [merge] is
    associative over chunk results (chunks are merged left-to-right in
    chunk order).

    {2 Exceptions}

    If one or more applications of [f] raise, the exception of the
    {e lowest input index} is re-raised in the caller (with its
    backtrace), matching what the sequential run would have reported.
    Unlike the sequential run, later elements may already have been
    evaluated when the exception surfaces.

    {2 Nesting}

    Calls made from inside a worker task run sequentially instead of
    deadlocking or oversubscribing: the outer fan-out already owns the
    cores. Calls nested on the caller's own domain are safe too — the
    submitting domain always helps drain its own batch. *)

val default_jobs : unit -> int
(** The parallelism the global pool will use: [set_jobs]'s override if
    any, else the [PSM_JOBS] environment variable (clamped to >= 1), else
    [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Override the job count (clamped to >= 1) and shut down the current
    global pool so the next parallel call rebuilds it at the new width.
    Intended for the bench harness's jobs=1 baseline runs and for tests;
    not serialized against concurrent parallel calls. *)

module Pool : sig
  type t

  val create : jobs:int -> t
  (** A pool of [max 1 jobs] workers. [jobs - 1] domains are spawned
      eagerly; the caller of each batch acts as the remaining worker. *)

  val jobs : t -> int

  val shutdown : t -> unit
  (** Join all worker domains. Idempotent; using the pool afterwards
      raises [Invalid_argument]. *)
end

val get_pool : unit -> Pool.t
(** The global pool, created on first use with [default_jobs ()] and
    shut down automatically at exit. *)

val effective_jobs : ?pool:Pool.t -> unit -> int
(** The parallelism a parallel call would actually get right now: 1 when
    called from inside a pool worker (nested calls run sequentially),
    otherwise [pool]'s — or the global configuration's — job count.
    Never spawns domains; use it to size work chunks before fanning
    out. *)

val parallel_map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map. Uses [pool] (default: the global pool); falls
    back to [List.map] when the pool has one job, the list has fewer
    than two elements, or the caller is itself a pool worker. *)

val parallel_map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!parallel_map}. *)

val parallel_fold :
  ?pool:Pool.t ->
  ?chunk:int ->
  init:(unit -> 'acc) ->
  fold:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'a array ->
  'acc
(** [parallel_fold ~init ~fold ~merge xs] folds [xs] in chunks of
    [chunk] elements (default: array length / (4 * jobs), at least 1):
    each chunk is folded left-to-right from a fresh [init ()], and chunk
    accumulators are [merge]d left-to-right in chunk order. On the
    sequential path this is exactly
    [Array.fold_left fold (init ()) xs] — so parallel and sequential
    runs agree whenever [merge (fold a x) b = fold (merge a b) x]-style
    associativity holds, which it does for the independent-accumulator
    folds this library is used for. [init] must return a fresh
    accumulator on every call. *)
