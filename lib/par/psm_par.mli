(** A small, dependency-free domain pool for the OCaml 5 runtime, with an
    adaptive scheduler.

    The pool fans work out over [Domain]s coordinated with [Mutex] and
    [Condition] — no Domainslib. It exists for the embarrassingly parallel
    stages of the PSM flow (per-benchmark experiments, per-atom-chunk
    mining passes, per-trace-chunk proposition classification), so the
    API is deliberately tiny: ordered map over lists and arrays (plain
    and cost-weighted) plus a chunked fold.

    {2 Scheduling}

    Tasks are claimed dynamically through an atomic cursor — whichever
    domain finishes its task claims the next one, so heterogeneous task
    costs balance without static chunk assignment. {!parallel_map_weighted}
    additionally orders the claiming schedule heaviest-first
    (longest-processing-time), which bounds the makespan penalty of one
    dominant task landing last.

    {2 Domain budget}

    The pool never runs more domains than the machine can execute:
    [Pool.create ~jobs] grants [min jobs (recommended_domains ())]
    ({!recommended_domains} honours the process CPU affinity mask, so
    containers report their real allowance). Requesting more jobs than
    cores used to multiply stop-the-world GC synchronization latency by
    the oversubscription factor — the committed BENCH_1 run measured the
    Table-II fan-out at 0.26x sequential speed with 4 domains on 1 core.

    {2 Determinism}

    Every function returns results in input order, independent of worker
    scheduling: [parallel_map f xs] is observably [List.map f xs]
    whenever [f] is pure. With granted parallelism 1 no domains are
    spawned at all and the sequential code path runs — [PSM_JOBS=1]
    therefore gives the exact allocation and evaluation order of a build
    without this library. [parallel_fold] is deterministic provided
    [merge] is associative over chunk results (chunks are merged
    left-to-right in chunk order, and the chunk boundaries depend only on
    the array length — never on the job count — so even float-merging
    folds agree byte-for-byte at every PSM_JOBS).

    {2 Exceptions}

    If one or more applications of [f] raise, the exception of the
    {e lowest input index} is re-raised in the caller (with its
    backtrace), matching what the sequential run would have reported.
    Unlike the sequential run, later elements may already have been
    evaluated when the exception surfaces.

    {2 Nesting}

    Calls made from inside a worker task run sequentially instead of
    deadlocking or oversubscribing: the outer fan-out already owns the
    granted cores. Calls nested on the caller's own domain are safe too —
    the submitting domain always helps drain its own batch. *)

val recommended_domains : unit -> int
(** The number of domains this process can actually run in parallel:
    [Domain.recommended_domain_count ()] (which respects the CPU affinity
    mask on Linux), at least 1. This is the honest ceiling on useful pool
    width; requested jobs above it are granted but not backed by extra
    domains. *)

val default_jobs : unit -> int
(** The parallelism the global pool will be asked for: [set_jobs]'s
    override if any, else the [PSM_JOBS] environment variable (clamped to
    >= 1), else [recommended_domains ()]. The granted width additionally
    clamps to {!recommended_domains}. *)

val set_jobs : int -> unit
(** Override the requested job count (clamped to >= 1) and shut down the
    current global pool so the next parallel call rebuilds it at the new
    width. Intended for the bench harness's jobs=1 baseline runs and for
    tests; not serialized against concurrent parallel calls. *)

module Pool : sig
  type t

  val create : ?oversubscribe:bool -> jobs:int -> unit -> t
  (** A pool requested at [max 1 jobs] width and granted
      [min jobs (recommended_domains ())] — [granted - 1] domains are
      spawned eagerly; the caller of each batch acts as the remaining
      worker. [~oversubscribe:true] (default false) grants the full
      request even beyond the core count: only the determinism tests
      should use it, to force real domain interleaving on small
      machines. *)

  val jobs : t -> int
  (** The requested width. *)

  val parallelism : t -> int
  (** The granted width: 1 + the number of spawned worker domains. *)

  val shutdown : t -> unit
  (** Join all worker domains. Idempotent; using the pool afterwards
      raises [Invalid_argument]. *)
end

val get_pool : unit -> Pool.t
(** The global pool, created on first use with [default_jobs ()] and
    shut down automatically at exit. *)

val effective_jobs : ?pool:Pool.t -> unit -> int
(** The parallelism a parallel call would actually get right now: 1 when
    called from inside a pool worker (nested calls run sequentially),
    otherwise [pool]'s — or the global configuration's — granted width.
    Never spawns domains; use it to size work chunks before fanning
    out. *)

val parallel_map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map. Uses [pool] (default: the global pool); falls
    back to [List.map] when the pool's granted parallelism is 1, the list
    has fewer than two elements, or the caller is itself a pool worker. *)

val parallel_map_weighted :
  ?pool:Pool.t -> cost:('a -> float) -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} with a cost-weighted schedule: tasks are {e claimed}
    in descending [cost] order (ties by ascending index), so a dominant
    task starts first instead of serializing behind the cheap ones.
    Results are returned in input order and are identical to
    [parallel_map f xs] — only the wall-clock changes. [cost] need not
    be calibrated; only the ordering it induces matters. *)

val parallel_map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!parallel_map}. *)

val parallel_fold :
  ?pool:Pool.t ->
  ?chunk:int ->
  init:(unit -> 'acc) ->
  fold:('acc -> 'a -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'a array ->
  'acc
(** [parallel_fold ~init ~fold ~merge xs] folds [xs] in chunks of
    [chunk] elements (default: array length / 32, at least 1 — a function
    of the input alone, so chunk boundaries and hence float-merge results
    are identical at every job count): each chunk is folded left-to-right
    from a fresh [init ()], and chunk accumulators are [merge]d
    left-to-right in chunk order; chunks are claimed dynamically, so
    skewed chunk costs still balance. On the sequential path this is
    exactly [Array.fold_left fold (init ()) xs] — so parallel and
    sequential runs agree whenever [merge (fold a x) b = fold (merge a b) x]-style
    associativity holds, which it does for the independent-accumulator
    folds this library is used for. [init] must return a fresh
    accumulator on every call. *)
