(* A work-sharing domain pool. One [batch] is submitted per parallel call;
   workers and the submitting caller race over the batch's task indices via
   an atomic cursor, so no per-task queueing or locking happens on the hot
   path. The pool mutex only guards the batch queue and completion counts. *)

(* True on domains spawned by a pool: nested parallel calls from worker
   tasks run sequentially instead of deadlocking on a saturated pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

module Pool = struct
  type batch = {
    run : int -> unit; (* never raises; exceptions are captured by callers *)
    size : int;
    cursor : int Atomic.t;
    mutable pending : int; (* guarded by the pool mutex *)
    finished : Condition.t; (* signalled when [pending] reaches 0 *)
  }

  type t = {
    mutex : Mutex.t;
    work : Condition.t;
    mutable queue : batch list; (* FIFO of batches with unclaimed tasks *)
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    jobs : int;
  }

  let jobs t = t.jobs

  (* With the mutex held: claim a task index, dropping exhausted batches
     from the queue, or block until work arrives or the pool stops. *)
  let rec claim t =
    match t.queue with
    | [] -> if t.stop then None else begin Condition.wait t.work t.mutex; claim t end
    | b :: rest ->
        let i = Atomic.fetch_and_add b.cursor 1 in
        if i < b.size then Some (b, i)
        else begin
          t.queue <- rest;
          claim t
        end

  let finish_task t b =
    Mutex.lock t.mutex;
    b.pending <- b.pending - 1;
    if b.pending = 0 then Condition.broadcast b.finished;
    Mutex.unlock t.mutex

  let worker t () =
    Domain.DLS.set in_worker true;
    let rec loop () =
      Mutex.lock t.mutex;
      match claim t with
      | None -> Mutex.unlock t.mutex
      | Some (b, i) ->
          Mutex.unlock t.mutex;
          b.run i;
          finish_task t b;
          loop ()
    in
    loop ()

  let create ~jobs =
    let jobs = max 1 jobs in
    let t =
      { mutex = Mutex.create ();
        work = Condition.create ();
        queue = [];
        stop = false;
        domains = [];
        jobs }
    in
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
    t

  let check_alive t = if t.stop then invalid_arg "Psm_par.Pool: pool is shut down"

  let shutdown t =
    Mutex.lock t.mutex;
    let was_stopped = t.stop in
    t.stop <- true;
    Condition.broadcast t.work;
    let domains = t.domains in
    t.domains <- [];
    Mutex.unlock t.mutex;
    if not was_stopped then List.iter Domain.join domains

  (* Run [size] tasks to completion. The caller participates: it claims
     indices alongside the workers, then blocks until in-flight tasks
     finish. Safe to call with batches already queued (nested submission
     from the caller's domain): the caller drains its own batch. *)
  let run_batch t ~size run =
    if size > 0 then begin
      let b =
        { run;
          size;
          cursor = Atomic.make 0;
          pending = size;
          finished = Condition.create () }
      in
      Mutex.lock t.mutex;
      check_alive t;
      t.queue <- t.queue @ [ b ];
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add b.cursor 1 in
        if i < size then begin
          run i;
          finish_task t b
        end
        else continue := false
      done;
      Mutex.lock t.mutex;
      (* The batch is exhausted; drop it if a worker has not already. *)
      t.queue <- List.filter (fun b' -> b' != b) t.queue;
      while b.pending > 0 do
        Condition.wait b.finished t.mutex
      done;
      Mutex.unlock t.mutex
    end
end

(* ---------- the global pool ---------- *)

let jobs_override = ref None

let env_jobs () =
  match Sys.getenv_opt "PSM_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> Some (max 1 n)
    | None -> None)

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let global : Pool.t option ref = ref None
let global_mutex = Mutex.create ()
let exit_hook_installed = ref false

let shutdown_global () =
  Mutex.lock global_mutex;
  let pool = !global in
  global := None;
  Mutex.unlock global_mutex;
  Option.iter Pool.shutdown pool

let get_pool () =
  Mutex.lock global_mutex;
  let pool =
    match !global with
    | Some p -> p
    | None ->
        let p = Pool.create ~jobs:(default_jobs ()) in
        global := Some p;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit shutdown_global
        end;
        p
  in
  Mutex.unlock global_mutex;
  pool

let set_jobs n =
  jobs_override := Some (max 1 n);
  shutdown_global ()

(* ---------- parallel combinators ---------- *)

let resolve = function Some pool -> pool | None -> get_pool ()

let effective_jobs ?pool () =
  if Domain.DLS.get in_worker then 1
  else match pool with Some p -> Pool.jobs p | None -> default_jobs ()

(* Evaluate [f i] for every i in [0, n), in parallel, storing results in
   order and re-raising the lowest-index exception as the sequential run
   would have. *)
let run_indexed pool n (f : int -> 'b) : 'b array =
  let results : 'b option array = Array.make n None in
  let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
  Pool.run_batch pool ~size:n (fun i ->
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.map (function Some v -> v | None -> assert false) results

let sequential pool n = Pool.jobs pool <= 1 || n <= 1 || Domain.DLS.get in_worker

let parallel_map_array ?pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let pool = resolve pool in
    if sequential pool n then Array.map f arr
    else run_indexed pool n (fun i -> f arr.(i))
  end

let parallel_map ?pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let pool = resolve pool in
      if sequential pool 2 then List.map f xs
      else begin
        let arr = Array.of_list xs in
        Array.to_list (run_indexed pool (Array.length arr) (fun i -> f arr.(i)))
      end

let parallel_fold ?pool ?chunk ~init ~fold ~merge arr =
  let n = Array.length arr in
  let pool = resolve pool in
  if n = 0 then init ()
  else if sequential pool n then Array.fold_left fold (init ()) arr
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * Pool.jobs pool))
    in
    let chunks = (n + chunk - 1) / chunk in
    let partials =
      run_indexed pool chunks (fun c ->
          let start = c * chunk in
          let stop = min n (start + chunk) - 1 in
          let acc = ref (init ()) in
          for i = start to stop do
            acc := fold !acc arr.(i)
          done;
          !acc)
    in
    let acc = ref partials.(0) in
    for c = 1 to chunks - 1 do
      acc := merge !acc partials.(c)
    done;
    !acc
  end
