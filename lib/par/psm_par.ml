(* A work-sharing domain pool with an adaptive scheduler. One [batch] is
   submitted per parallel call; workers and the submitting caller race
   over the batch's schedule slots via an atomic cursor, so no per-task
   queueing or locking happens on the hot path — the atomic cursor IS the
   dynamic work queue: whichever domain is free claims the next slot, so
   load balances itself even when task costs are wildly skewed. A batch
   may carry a schedule permutation (cost-weighted ordering: heaviest
   tasks first, the classic longest-processing-time heuristic), which
   changes only the claiming order, never where results land.

   The pool never spawns more domains than the machine can actually run:
   requested jobs beyond [recommended_domains ()] add stop-the-world GC
   synchronization latency without adding compute (a 4-domain pool on a
   1-core box ran the Table-II fan-out at 0.26x the sequential speed),
   so [Pool.create] clamps. [~oversubscribe:true] disables the clamp for
   determinism tests that need real domain interleaving on small
   machines. *)

(* True on domains spawned by a pool: nested parallel calls from worker
   tasks run sequentially instead of deadlocking on a saturated pool —
   the outer fan-out already owns every usable core, so granting domains
   to an inner call could only oversubscribe. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The honest hardware probe: how many domains can make progress at
   once. [Domain.recommended_domain_count] respects the process CPU
   affinity mask on Linux, so a cgroup-pinned container reports its real
   allowance, not the host's core count. *)
let recommended_domains () = max 1 (Domain.recommended_domain_count ())

module Pool = struct
  type batch = {
    run : int -> unit; (* never raises; exceptions are captured by callers *)
    size : int;
    order : int array option; (* schedule slot -> task index; None = identity *)
    cursor : int Atomic.t; (* next unclaimed schedule slot *)
    mutable pending : int; (* guarded by the pool mutex *)
    finished : Condition.t; (* signalled when [pending] reaches 0 *)
  }

  let task_of_slot b slot =
    match b.order with None -> slot | Some order -> order.(slot)

  type t = {
    mutex : Mutex.t;
    work : Condition.t;
    mutable queue : batch list; (* FIFO of batches with unclaimed tasks *)
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    jobs : int; (* requested width *)
    parallelism : int; (* granted width: 1 + spawned domains *)
  }

  let jobs t = t.jobs
  let parallelism t = t.parallelism

  (* With the mutex held: claim a schedule slot, dropping exhausted
     batches from the queue, or block until work arrives or the pool
     stops. *)
  let rec claim t =
    match t.queue with
    | [] -> if t.stop then None else begin Condition.wait t.work t.mutex; claim t end
    | b :: rest ->
        let i = Atomic.fetch_and_add b.cursor 1 in
        if i < b.size then Some (b, i)
        else begin
          t.queue <- rest;
          claim t
        end

  let finish_task t b =
    Mutex.lock t.mutex;
    b.pending <- b.pending - 1;
    if b.pending = 0 then Condition.broadcast b.finished;
    Mutex.unlock t.mutex

  let worker t () =
    Domain.DLS.set in_worker true;
    let rec loop () =
      Mutex.lock t.mutex;
      match claim t with
      | None -> Mutex.unlock t.mutex
      | Some (b, slot) ->
          Mutex.unlock t.mutex;
          b.run (task_of_slot b slot);
          finish_task t b;
          loop ()
    in
    loop ()

  let create ?(oversubscribe = false) ~jobs () =
    let jobs = max 1 jobs in
    let parallelism = if oversubscribe then jobs else min jobs (recommended_domains ()) in
    let t =
      { mutex = Mutex.create ();
        work = Condition.create ();
        queue = [];
        stop = false;
        domains = [];
        jobs;
        parallelism }
    in
    t.domains <- List.init (parallelism - 1) (fun _ -> Domain.spawn (worker t));
    t

  let check_alive t = if t.stop then invalid_arg "Psm_par.Pool: pool is shut down"

  let shutdown t =
    Mutex.lock t.mutex;
    let was_stopped = t.stop in
    t.stop <- true;
    Condition.broadcast t.work;
    let domains = t.domains in
    t.domains <- [];
    Mutex.unlock t.mutex;
    if not was_stopped then List.iter Domain.join domains

  (* Run [size] tasks to completion, claiming in [order] if given. The
     caller participates: it claims slots alongside the workers, then
     blocks until in-flight tasks finish. Safe to call with batches
     already queued (nested submission from the caller's domain): the
     caller drains its own batch. *)
  let run_batch ?order t ~size run =
    if size > 0 then begin
      let b =
        { run;
          size;
          order;
          cursor = Atomic.make 0;
          pending = size;
          finished = Condition.create () }
      in
      Mutex.lock t.mutex;
      check_alive t;
      t.queue <- t.queue @ [ b ];
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      let continue = ref true in
      while !continue do
        let slot = Atomic.fetch_and_add b.cursor 1 in
        if slot < size then begin
          run (task_of_slot b slot);
          finish_task t b
        end
        else continue := false
      done;
      Mutex.lock t.mutex;
      (* The batch is exhausted; drop it if a worker has not already. *)
      t.queue <- List.filter (fun b' -> b' != b) t.queue;
      while b.pending > 0 do
        Condition.wait b.finished t.mutex
      done;
      Mutex.unlock t.mutex
    end
end

(* ---------- the global pool ---------- *)

let jobs_override = ref None

let env_jobs () =
  match Sys.getenv_opt "PSM_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> Some (max 1 n)
    | None -> None)

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> recommended_domains ())

let global : Pool.t option ref = ref None
let global_mutex = Mutex.create ()
let exit_hook_installed = ref false

let shutdown_global () =
  Mutex.lock global_mutex;
  let pool = !global in
  global := None;
  Mutex.unlock global_mutex;
  Option.iter Pool.shutdown pool

let get_pool () =
  Mutex.lock global_mutex;
  let pool =
    match !global with
    | Some p -> p
    | None ->
        let p = Pool.create ~jobs:(default_jobs ()) () in
        global := Some p;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit shutdown_global
        end;
        p
  in
  Mutex.unlock global_mutex;
  pool

let set_jobs n =
  jobs_override := Some (max 1 n);
  shutdown_global ()

(* ---------- parallel combinators ---------- *)

let resolve = function Some pool -> pool | None -> get_pool ()

let effective_jobs ?pool () =
  if Domain.DLS.get in_worker then 1
  else
    match pool with
    | Some p -> Pool.parallelism p
    | None -> min (default_jobs ()) (recommended_domains ())

(* Evaluate [f i] for every i in [0, n), in parallel, storing results in
   order and re-raising the lowest-index exception as the sequential run
   would have. [order], when given, is the claiming schedule (slot ->
   task index); it affects wall-clock only, never results. *)
let run_indexed ?order pool n (f : int -> 'b) : 'b array =
  let results : 'b option array = Array.make n None in
  let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
  Pool.run_batch ?order pool ~size:n (fun i ->
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.map (function Some v -> v | None -> assert false) results

let sequential pool n =
  Pool.parallelism pool <= 1 || n <= 1 || Domain.DLS.get in_worker

(* Schedule permutation for cost-weighted batches: heaviest first, ties
   by ascending index (so the schedule — like everything else here — is
   deterministic). *)
let lpt_order costs =
  let n = Array.length costs in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let d = Float.compare costs.(j) costs.(i) in
      if d <> 0 then d else Int.compare i j)
    order;
  order

let parallel_map_array ?pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let pool = resolve pool in
    if sequential pool n then Array.map f arr
    else run_indexed pool n (fun i -> f arr.(i))
  end

let parallel_map ?pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let pool = resolve pool in
      if sequential pool 2 then List.map f xs
      else begin
        let arr = Array.of_list xs in
        Array.to_list (run_indexed pool (Array.length arr) (fun i -> f arr.(i)))
      end

let parallel_map_weighted ?pool ~cost f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let pool = resolve pool in
      if sequential pool 2 then List.map f xs
      else begin
        let arr = Array.of_list xs in
        let order = lpt_order (Array.map cost arr) in
        Array.to_list
          (run_indexed ~order pool (Array.length arr) (fun i -> f arr.(i)))
      end

(* Fold chunk boundaries are a function of the array length alone — not
   of the job count — so a float-merging fold produces byte-identical
   results at any PSM_JOBS. The atomic cursor balances the fixed chunks
   dynamically; [target_chunks] leaves enough slack for skewed chunk
   costs on any realistic pool width. *)
let fold_target_chunks = 32

let parallel_fold ?pool ?chunk ~init ~fold ~merge arr =
  let n = Array.length arr in
  let pool = resolve pool in
  if n = 0 then init ()
  else if sequential pool n then Array.fold_left fold (init ()) arr
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + fold_target_chunks - 1) / fold_target_chunks)
    in
    let chunks = (n + chunk - 1) / chunk in
    let partials =
      run_indexed pool chunks (fun c ->
          let start = c * chunk in
          let stop = min n (start + chunk) - 1 in
          let acc = ref (init ()) in
          for i = start to stop do
            acc := fold !acc arr.(i)
          done;
          !acc)
    in
    let acc = ref partials.(0) in
    for c = 1 to chunks - 1 do
      acc := merge !acc partials.(c)
    done;
    !acc
  end
