(* Tests for the discrete-event kernel and the IP+PSM co-simulation. *)

module Kernel = Psm_sysc.Kernel
module Cosim = Psm_sysc.Cosim
module Workloads = Psm_ips.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- kernel semantics ---------- *)

let test_timed_events_in_order () =
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.schedule k ~delay:30 (fun () -> log := 30 :: !log);
  Kernel.schedule k ~delay:10 (fun () -> log := 10 :: !log);
  Kernel.schedule k ~delay:20 (fun () -> log := 20 :: !log);
  Kernel.run k ~until:100;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log);
  check_int "time advanced" 100 (Kernel.now k)

let test_run_stops_at_until () =
  let k = Kernel.create () in
  let fired = ref false in
  Kernel.schedule k ~delay:50 (fun () -> fired := true);
  Kernel.run k ~until:49;
  check_bool "not yet" false !fired;
  Kernel.run k ~until:50;
  check_bool "now" true !fired

let test_signal_update_is_deferred () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  let seen_during_write = ref (-1) in
  Kernel.schedule k ~delay:5 (fun () ->
      Kernel.Signal.write s 7;
      (* Evaluate/update: the write is not visible inside this delta. *)
      seen_during_write := Kernel.Signal.read s);
  Kernel.run k ~until:10;
  check_int "old value during delta" 0 !seen_during_write;
  check_int "published after" 7 (Kernel.Signal.read s)

let test_signal_triggers_only_on_change () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  let triggers = ref 0 in
  Kernel.Signal.on_change s (fun () -> incr triggers);
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write s 1);
  Kernel.schedule k ~delay:2 (fun () -> Kernel.Signal.write s 1);
  Kernel.schedule k ~delay:3 (fun () -> Kernel.Signal.write s 2);
  Kernel.run k ~until:5;
  check_int "two real changes" 2 !triggers

let test_last_write_wins () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  Kernel.schedule k ~delay:1 (fun () ->
      Kernel.Signal.write s 5;
      Kernel.Signal.write s 9);
  Kernel.run k ~until:2;
  check_int "last wins" 9 (Kernel.Signal.read s)

let test_delta_chain () =
  (* a -> b -> c propagation takes delta cycles, not simulated time. *)
  let k = Kernel.create () in
  let a = Kernel.Signal.create k ~name:"a" 0 in
  let b = Kernel.Signal.create k ~name:"b" 0 in
  let c = Kernel.Signal.create k ~name:"c" 0 in
  Kernel.Signal.on_change a (fun () -> Kernel.Signal.write b (Kernel.Signal.read a + 1));
  Kernel.Signal.on_change b (fun () -> Kernel.Signal.write c (Kernel.Signal.read b + 1));
  Kernel.schedule k ~delay:4 (fun () -> Kernel.Signal.write a 10);
  Kernel.run k ~until:4;
  check_int "a" 10 (Kernel.Signal.read a);
  check_int "b" 11 (Kernel.Signal.read b);
  check_int "c" 12 (Kernel.Signal.read c);
  check_int "no extra time" 4 (Kernel.now k)

let test_oscillation_detected () =
  let k = Kernel.create () in
  let a = Kernel.Signal.create k ~name:"a" false in
  (* A zero-delay inverter feeding itself oscillates forever. *)
  Kernel.Signal.on_change a (fun () -> Kernel.Signal.write a (not (Kernel.Signal.read a)));
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write a true);
  check_bool "raises" true
    (try
       Kernel.run k ~until:2;
       false
     with Failure _ -> true)

let test_clock_edges () =
  let k = Kernel.create () in
  let clock = Kernel.Clock.create k ~period:10 () in
  let posedges = ref 0 in
  Kernel.Clock.on_posedge clock (fun () -> incr posedges);
  Kernel.run k ~until:100;
  (* Rising edges at 5, 15, ..., 95. *)
  check_int "10 rising edges" 10 !posedges

(* ---------- co-simulation ---------- *)

let test_cosim_matches_direct () =
  let ip = Psm_ips.Multsum.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false "MultSum" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let stim = Workloads.multsum_long ~length:1500 () in
  (* DES run. *)
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:10 () in
  let des_ip = Psm_ips.Multsum.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus:stim
  in
  Kernel.run kernel ~until:(10 * 1501);
  check_int "all cycles" 1500 (Cosim.cycles_done cosim);
  (* Direct run. *)
  let trace, reference = Psm_ips.Capture.run ip stim in
  let direct = Psm_hmm.Multi_sim.simulate trained.Psm_flow.Flow.hmm trace in
  Alcotest.(check (array (float 1e-20))) "estimates equal"
    direct.Psm_hmm.Multi_sim.estimate (Cosim.estimates cosim);
  Alcotest.(check (array (float 1e-22))) "references equal"
    (Psm_trace.Power_trace.to_array reference)
    (Cosim.references cosim)

let test_cosim_signals_observable () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:2 ~total_length:4000 ~long:false "RAM" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let stim = Workloads.ram_long ~length:200 () in
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:4 () in
  let des_ip = Psm_ips.Ram.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus:stim
  in
  check_int "4 PI signals" 4 (List.length (Cosim.pi_signals cosim));
  check_int "1 PO signal" 1 (List.length (Cosim.po_signals cosim));
  Kernel.run kernel ~until:(4 * 201);
  (* The power-estimate signal holds the last cycle's estimate. *)
  let last = Kernel.Signal.read (Cosim.power_estimate cosim) in
  let collected = Cosim.estimates cosim in
  Alcotest.(check (float 1e-20)) "signal = last estimate"
    collected.(Array.length collected - 1) last

let suite =
  ( "sysc",
    [ Alcotest.test_case "timed events" `Quick test_timed_events_in_order;
      Alcotest.test_case "run boundary" `Quick test_run_stops_at_until;
      Alcotest.test_case "deferred update" `Quick test_signal_update_is_deferred;
      Alcotest.test_case "change-only triggers" `Quick test_signal_triggers_only_on_change;
      Alcotest.test_case "last write wins" `Quick test_last_write_wins;
      Alcotest.test_case "delta chain" `Quick test_delta_chain;
      Alcotest.test_case "oscillation detected" `Quick test_oscillation_detected;
      Alcotest.test_case "clock edges" `Quick test_clock_edges;
      Alcotest.test_case "cosim == direct" `Slow test_cosim_matches_direct;
      Alcotest.test_case "cosim signals" `Quick test_cosim_signals_observable ] )
