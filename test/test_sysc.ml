(* Tests for the discrete-event kernel and the IP+PSM co-simulation. *)

module Kernel = Psm_sysc.Kernel
module Cosim = Psm_sysc.Cosim
module Workloads = Psm_ips.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- kernel semantics ---------- *)

let test_timed_events_in_order () =
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.schedule k ~delay:30 (fun () -> log := 30 :: !log);
  Kernel.schedule k ~delay:10 (fun () -> log := 10 :: !log);
  Kernel.schedule k ~delay:20 (fun () -> log := 20 :: !log);
  Kernel.run k ~until:100;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log);
  check_int "time advanced" 100 (Kernel.now k)

let test_run_stops_at_until () =
  let k = Kernel.create () in
  let fired = ref false in
  Kernel.schedule k ~delay:50 (fun () -> fired := true);
  Kernel.run k ~until:49;
  check_bool "not yet" false !fired;
  Kernel.run k ~until:50;
  check_bool "now" true !fired

let test_signal_update_is_deferred () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  let seen_during_write = ref (-1) in
  Kernel.schedule k ~delay:5 (fun () ->
      Kernel.Signal.write s 7;
      (* Evaluate/update: the write is not visible inside this delta. *)
      seen_during_write := Kernel.Signal.read s);
  Kernel.run k ~until:10;
  check_int "old value during delta" 0 !seen_during_write;
  check_int "published after" 7 (Kernel.Signal.read s)

let test_signal_triggers_only_on_change () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  let triggers = ref 0 in
  Kernel.Signal.on_change s (fun () -> incr triggers);
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write s 1);
  Kernel.schedule k ~delay:2 (fun () -> Kernel.Signal.write s 1);
  Kernel.schedule k ~delay:3 (fun () -> Kernel.Signal.write s 2);
  Kernel.run k ~until:5;
  check_int "two real changes" 2 !triggers

let test_last_write_wins () =
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~name:"s" 0 in
  Kernel.schedule k ~delay:1 (fun () ->
      Kernel.Signal.write s 5;
      Kernel.Signal.write s 9);
  Kernel.run k ~until:2;
  check_int "last wins" 9 (Kernel.Signal.read s)

let test_delta_chain () =
  (* a -> b -> c propagation takes delta cycles, not simulated time. *)
  let k = Kernel.create () in
  let a = Kernel.Signal.create k ~name:"a" 0 in
  let b = Kernel.Signal.create k ~name:"b" 0 in
  let c = Kernel.Signal.create k ~name:"c" 0 in
  Kernel.Signal.on_change a (fun () -> Kernel.Signal.write b (Kernel.Signal.read a + 1));
  Kernel.Signal.on_change b (fun () -> Kernel.Signal.write c (Kernel.Signal.read b + 1));
  Kernel.schedule k ~delay:4 (fun () -> Kernel.Signal.write a 10);
  Kernel.run k ~until:4;
  check_int "a" 10 (Kernel.Signal.read a);
  check_int "b" 11 (Kernel.Signal.read b);
  check_int "c" 12 (Kernel.Signal.read c);
  check_int "no extra time" 4 (Kernel.now k)

let test_oscillation_detected () =
  let k = Kernel.create () in
  let a = Kernel.Signal.create k ~name:"a" false in
  (* A zero-delay inverter feeding itself oscillates forever. *)
  Kernel.Signal.on_change a (fun () -> Kernel.Signal.write a (not (Kernel.Signal.read a)));
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write a true);
  check_bool "raises" true
    (try
       Kernel.run k ~until:2;
       false
     with Failure _ -> true)

let test_clock_edges () =
  let k = Kernel.create () in
  let clock = Kernel.Clock.create k ~period:10 () in
  let posedges = ref 0 in
  Kernel.Clock.on_posedge clock (fun () -> incr posedges);
  Kernel.run k ~until:100;
  (* Rising edges at 5, 15, ..., 95. *)
  check_int "10 rising edges" 10 !posedges

let test_schedule_rejects_negative_delay () =
  let k = Kernel.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Kernel.schedule: negative delay") (fun () ->
      Kernel.schedule k ~delay:(-1) (fun () -> ()))

let test_run_rejects_past () =
  let k = Kernel.create () in
  Kernel.run k ~until:10;
  Alcotest.check_raises "until in the past"
    (Invalid_argument "Kernel.run: until is in the past") (fun () ->
      Kernel.run k ~until:9)

let test_zero_delay_runs_in_same_timestamp () =
  (* A handler scheduling at delay 0 runs at the same timestamp, after
     the current queue drains, and time does not advance past it. *)
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.schedule k ~delay:5 (fun () ->
      log := ("outer", Kernel.now k) :: !log;
      Kernel.schedule k ~delay:0 (fun () -> log := ("inner", Kernel.now k) :: !log));
  Kernel.run k ~until:5;
  Alcotest.(check (list (pair string int)))
    "outer then inner, both at 5"
    [ ("outer", 5); ("inner", 5) ]
    (List.rev !log)

let test_delta_chain_costs_deltas_not_time () =
  let k = Kernel.create () in
  let a = Kernel.Signal.create k ~name:"a" 0 in
  let b = Kernel.Signal.create k ~name:"b" 0 in
  Kernel.Signal.on_change a (fun () -> Kernel.Signal.write b (Kernel.Signal.read a));
  let before = Kernel.delta_count k in
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write a 3);
  Kernel.run k ~until:1;
  check_int "b propagated" 3 (Kernel.Signal.read b);
  check_int "time stayed" 1 (Kernel.now k);
  (* The a-write, the a-publication + listener, and the b-publication
     each need a delta round: strictly more than one, bounded well below
     the oscillation cutoff. *)
  let spent = Kernel.delta_count k - before in
  check_bool "several deltas" true (spent >= 2 && spent < 10)

let test_custom_equal_suppresses_change () =
  (* With [equal] comparing parity, publishing 2 over 0 is not a change:
     no listener runs, but the stored value is still the written one. *)
  let k = Kernel.create () in
  let s = Kernel.Signal.create k ~equal:(fun x y -> x land 1 = y land 1) ~name:"s" 0 in
  let triggers = ref 0 in
  Kernel.Signal.on_change s (fun () -> incr triggers);
  Kernel.schedule k ~delay:1 (fun () -> Kernel.Signal.write s 2);
  Kernel.schedule k ~delay:2 (fun () -> Kernel.Signal.write s 3);
  Kernel.run k ~until:3;
  check_int "only the parity flip triggered" 1 !triggers

let test_clock_rejects_bad_period () =
  let k = Kernel.create () in
  List.iter
    (fun period ->
      Alcotest.check_raises
        (Printf.sprintf "period %d" period)
        (Invalid_argument "Clock.create: period must be even and >= 2")
        (fun () -> ignore (Kernel.Clock.create k ~period ())))
    [ 0; 1; 3; -2 ]

(* ---------- co-simulation ---------- *)

let test_cosim_matches_direct () =
  let ip = Psm_ips.Multsum.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false "MultSum" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let stim = Workloads.multsum_long ~length:1500 () in
  (* DES run. *)
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:10 () in
  let des_ip = Psm_ips.Multsum.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus:stim
  in
  Kernel.run kernel ~until:(10 * 1501);
  check_int "all cycles" 1500 (Cosim.cycles_done cosim);
  (* Direct run. *)
  let trace, reference = Psm_ips.Capture.run ip stim in
  let direct = Psm_hmm.Multi_sim.simulate trained.Psm_flow.Flow.hmm trace in
  Alcotest.(check (array (float 1e-20))) "estimates equal"
    direct.Psm_hmm.Multi_sim.estimate (Cosim.estimates cosim);
  Alcotest.(check (array (float 1e-22))) "references equal"
    (Psm_trace.Power_trace.to_array reference)
    (Cosim.references cosim)

let test_cosim_signals_observable () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:2 ~total_length:4000 ~long:false "RAM" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let stim = Workloads.ram_long ~length:200 () in
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:4 () in
  let des_ip = Psm_ips.Ram.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus:stim
  in
  check_int "4 PI signals" 4 (List.length (Cosim.pi_signals cosim));
  check_int "1 PO signal" 1 (List.length (Cosim.po_signals cosim));
  Kernel.run kernel ~until:(4 * 201);
  (* The power-estimate signal holds the last cycle's estimate. *)
  let last = Kernel.Signal.read (Cosim.power_estimate cosim) in
  let collected = Cosim.estimates cosim in
  Alcotest.(check (float 1e-20)) "signal = last estimate"
    collected.(Array.length collected - 1) last

let test_cosim_cycle_scheduling () =
  (* Phase order within one clock period: the testbench drives PIs on the
     falling edge, the IP consumes them on the next rising edge, and the
     PSM observer completes the cycle within the same timestamp's delta
     settling — so cycle counts track rising edges exactly. *)
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:2 ~total_length:4000 ~long:false "RAM" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let stim = Workloads.ram_long ~length:50 () in
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:10 () in
  let des_ip = Psm_ips.Ram.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus:stim
  in
  Kernel.run kernel ~until:4;
  check_int "no cycle before the first rising edge" 0 (Cosim.cycles_done cosim);
  check_int "nothing collected yet" 0 (Array.length (Cosim.estimates cosim));
  Kernel.run kernel ~until:5;
  check_int "first rising edge completes cycle 1" 1 (Cosim.cycles_done cosim);
  check_int "one estimate collected" 1 (Array.length (Cosim.estimates cosim));
  Kernel.run kernel ~until:(5 + (10 * 49));
  check_int "one cycle per rising edge" 50 (Cosim.cycles_done cosim);
  (* Exhausted stimulus: further edges must not step past the end. *)
  Kernel.run kernel ~until:(5 + (10 * 60));
  check_int "stimulus exhausted, counter frozen" 50 (Cosim.cycles_done cosim)

(* A merge-hostile training configuration: nothing merges, the regression
   upgrade never fires, so the trained machine is the raw generator chain
   and [Sim_single]'s chain preconditions hold. *)
let chain_only_config =
  { Psm_flow.Flow.default with
    merge =
      { Psm_core.Merge.epsilon = 1e-12;
        alpha = 0.999999;
        min_n_for_test = 0;
        practical_equivalence = false };
    optimize = { Psm_core.Optimize.default with sigma_threshold = infinity } }

let qcheck_cosim_total_equals_sim_single =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10
       ~name:"cosim power total == Sim_single total on the same chain PSM"
       QCheck.(pair (int_range 150 400) (int_range 0 1_000_000))
       (fun (length, seed) ->
         let seed = Int64.of_int seed in
         let stim = Workloads.ram_short ~length ~seed () in
         let ip = Psm_ips.Ram.create () in
         let trained =
           Psm_flow.Flow.train_on_ip ~config:chain_only_config ip [ stim ]
         in
         let raw = trained.Psm_flow.Flow.raw in
         (* The configuration above should make combination a no-op; the
            chain preconditions are assumptions, not the property. *)
         QCheck.assume (Psm_core.Psm.machine_count raw = 1);
         QCheck.assume
           (Psm_core.Psm.state_count trained.Psm_flow.Flow.optimized
           = Psm_core.Psm.state_count raw);
         let trace, _power = Psm_ips.Capture.run ip stim in
         let single = Psm_core.Sim_single.simulate raw trace in
         QCheck.assume (single.Psm_core.Sim_single.synchronized_fraction = 1.);
         let kernel = Kernel.create () in
         let clock = Kernel.Clock.create kernel ~period:10 () in
         let des_ip = Psm_ips.Ram.create () in
         let cosim =
           Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm
             ~stimulus:stim
         in
         Kernel.run kernel ~until:(10 * (length + 1));
         let total a = Array.fold_left ( +. ) 0. a in
         let cosim_total = total (Cosim.estimates cosim) in
         let single_total = total single.Psm_core.Sim_single.estimate in
         abs_float (cosim_total -. single_total)
         <= 1e-9 *. Float.max 1. (abs_float single_total)))

let suite =
  ( "sysc",
    [ Alcotest.test_case "timed events" `Quick test_timed_events_in_order;
      Alcotest.test_case "run boundary" `Quick test_run_stops_at_until;
      Alcotest.test_case "deferred update" `Quick test_signal_update_is_deferred;
      Alcotest.test_case "change-only triggers" `Quick test_signal_triggers_only_on_change;
      Alcotest.test_case "last write wins" `Quick test_last_write_wins;
      Alcotest.test_case "delta chain" `Quick test_delta_chain;
      Alcotest.test_case "oscillation detected" `Quick test_oscillation_detected;
      Alcotest.test_case "clock edges" `Quick test_clock_edges;
      Alcotest.test_case "negative delay rejected" `Quick
        test_schedule_rejects_negative_delay;
      Alcotest.test_case "run into the past rejected" `Quick test_run_rejects_past;
      Alcotest.test_case "zero-delay same timestamp" `Quick
        test_zero_delay_runs_in_same_timestamp;
      Alcotest.test_case "delta chain costs deltas" `Quick
        test_delta_chain_costs_deltas_not_time;
      Alcotest.test_case "custom equality" `Quick test_custom_equal_suppresses_change;
      Alcotest.test_case "bad clock period" `Quick test_clock_rejects_bad_period;
      Alcotest.test_case "cosim == direct" `Slow test_cosim_matches_direct;
      Alcotest.test_case "cosim signals" `Quick test_cosim_signals_observable;
      Alcotest.test_case "cosim cycle scheduling" `Slow test_cosim_cycle_scheduling;
      qcheck_cosim_total_equals_sim_single ] )
