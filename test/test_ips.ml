(* Tests for Psm_ips: cipher cores against published vectors, IP model
   behaviour, behavioural/structural equivalence, workloads and capture. *)

module Bits = Psm_bits.Bits
module Aes_core = Psm_ips.Aes_core
module Camellia_core = Psm_ips.Camellia_core
module Ip = Psm_ips.Ip
module Workloads = Psm_ips.Workloads
module Capture = Psm_ips.Capture

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- AES core (FIPS-197) ---------- *)

let test_aes_sbox_known_entries () =
  check_int "sbox[0]" 0x63 Aes_core.sbox.(0);
  check_int "sbox[0x53]" 0xED Aes_core.sbox.(0x53);
  check_int "sbox[0xff]" 0x16 Aes_core.sbox.(0xFF);
  check_int "inv_sbox[0x63]" 0 Aes_core.inv_sbox.(0x63)

let test_aes_sbox_bijective () =
  let seen = Array.make 256 false in
  Array.iter (fun v -> seen.(v) <- true) Aes_core.sbox;
  check_bool "bijective" true (Array.for_all Fun.id seen);
  Array.iteri
    (fun i v -> check_int "inverse" i Aes_core.inv_sbox.(v))
    Aes_core.sbox

let fips_key = "000102030405060708090a0b0c0d0e0f"
let fips_pt = "00112233445566778899aabbccddeeff"
let fips_ct = "69c4e0d86a7b0430d8cdb78070b4c55a"

let test_aes_fips_vector () =
  let key = Aes_core.block_of_hex fips_key in
  let ct = Aes_core.encrypt_block ~key (Aes_core.block_of_hex fips_pt) in
  check_string "encrypt" fips_ct (Aes_core.hex_of_block ct);
  let pt = Aes_core.decrypt_block ~key ct in
  check_string "decrypt" fips_pt (Aes_core.hex_of_block pt)

let test_aes_appendix_b_vector () =
  (* FIPS-197 Appendix B: a different key/plaintext pair. *)
  let key = Aes_core.block_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let ct = Aes_core.encrypt_block ~key (Aes_core.block_of_hex "3243f6a8885a308d313198a2e0370734") in
  check_string "appendix b" "3925841d02dc09fbdc118597196a0b32" (Aes_core.hex_of_block ct)

let test_aes_key_expansion () =
  (* FIPS-197 A.1: the last round key for the Appendix-A cipher key. *)
  let key = Aes_core.block_of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let rks = Aes_core.expand_key key in
  check_int "11 round keys" 11 (Array.length rks);
  check_string "round key 10" "d014f9a8c9ee2589e13f0cc8b6630ca6"
    (Aes_core.hex_of_block rks.(10))

let test_aes_block_of_bits_roundtrip () =
  let v = Bits.of_hex_string ~width:128 fips_pt in
  check_bool "roundtrip" true (Bits.equal v (Aes_core.bits_of_block (Aes_core.block_of_bits v)))

(* ---------- Camellia core (RFC 3713) ---------- *)

let rfc_key = "0123456789abcdeffedcba9876543210"
let rfc_ct = "67673138549669730857065648eabe43"

let test_camellia_rfc_vector () =
  let key = Camellia_core.halves_of_hex rfc_key in
  let ct = Camellia_core.encrypt_block ~key (Camellia_core.halves_of_hex rfc_key) in
  check_string "encrypt" rfc_ct (Camellia_core.hex_of_halves ct);
  let pt = Camellia_core.decrypt_block ~key ct in
  check_string "decrypt" rfc_key (Camellia_core.hex_of_halves pt)

let test_camellia_sbox_relations () =
  check_int "sbox1[0]" 0x70 Camellia_core.sbox1.(0);
  check_int "sbox1[255]" 0x9e Camellia_core.sbox1.(255);
  check_int "table size" 256 (Array.length Camellia_core.sbox1)

let test_camellia_fl_flinv_inverse () =
  let ke = 0x0123456789ABCDEFL in
  List.iter
    (fun x ->
      Alcotest.(check int64) "flinv . fl = id" x
        (Camellia_core.flinv (Camellia_core.fl x ke) ke))
    [ 0L; 0xFFFFFFFFFFFFFFFFL; 0xDEADBEEF01234567L ]

let test_camellia_decryption_subkeys_involution () =
  let sk = Camellia_core.expand_key (Camellia_core.halves_of_hex rfc_key) in
  let dsk = Camellia_core.decryption_subkeys (Camellia_core.decryption_subkeys sk) in
  check_bool "kw restored" true (sk.Camellia_core.kw = dsk.Camellia_core.kw);
  check_bool "k restored" true (sk.Camellia_core.k = dsk.Camellia_core.k);
  check_bool "ke restored" true (sk.Camellia_core.ke = dsk.Camellia_core.ke)

(* ---------- the IP models ---------- *)

let interface_widths ip expect_pi expect_po =
  check_int "PI bits" expect_pi (Ip.pi_bits ip);
  check_int "PO bits" expect_po (Ip.po_bits ip)

let test_table1_interface_widths () =
  (* The paper's Table I PI/PO widths. *)
  interface_widths (Psm_ips.Ram.create ()) 44 32;
  interface_widths (Psm_ips.Multsum.create ()) 49 32;
  interface_widths (Psm_ips.Aes.create ()) 260 129;
  interface_widths (Psm_ips.Camellia.create ()) 262 129

let ram_op ~ce ~we ~addr ~wdata =
  [| Bits.of_bool ce; Bits.of_bool we; Bits.of_int ~width:10 addr;
     Bits.of_int ~width:32 wdata |]

let test_ram_write_read () =
  let ip, peek = Psm_ips.Ram.create_with_peek () in
  let step pis = fst (ip.Ip.step pis) in
  ignore (step (ram_op ~ce:true ~we:true ~addr:(5 lsl 2) ~wdata:0xDEAD));
  check_int "stored" 0xDEAD (Bits.to_int (peek 5));
  (* Read is registered: data appears one cycle after the access. *)
  ignore (step (ram_op ~ce:true ~we:false ~addr:(5 lsl 2) ~wdata:0));
  let out = step (ram_op ~ce:false ~we:false ~addr:0 ~wdata:0) in
  check_int "read back" 0xDEAD (Bits.to_int out.(0))

let test_ram_write_data_dependence () =
  (* Writing alternating data costs more than rewriting the same value:
     the data-dependent behaviour the regression must capture. *)
  let ip = Psm_ips.Ram.create () in
  let energy pis = snd (ip.Ip.step pis) in
  ignore (energy (ram_op ~ce:true ~we:true ~addr:0 ~wdata:0));
  let same = energy (ram_op ~ce:true ~we:true ~addr:0 ~wdata:0) in
  ignore (energy (ram_op ~ce:true ~we:true ~addr:0 ~wdata:0));
  let flip = energy (ram_op ~ce:true ~we:true ~addr:0 ~wdata:0xFFFFFFFF) in
  check_bool "toggling data costs more" true (flip > same +. 10.)

let test_ram_idle_cheapest () =
  let ip = Psm_ips.Ram.create () in
  let idle = snd (ip.Ip.step (ram_op ~ce:false ~we:false ~addr:0 ~wdata:0)) in
  let read = snd (ip.Ip.step (ram_op ~ce:true ~we:false ~addr:0 ~wdata:0)) in
  check_bool "idle < read" true (idle < read)

let test_ram_reset () =
  let ip, peek = Psm_ips.Ram.create_with_peek () in
  ignore (ip.Ip.step (ram_op ~ce:true ~we:true ~addr:(3 lsl 2) ~wdata:42));
  ip.Ip.reset ();
  check_bool "cleared" true (Bits.is_zero (peek 3))

let multsum_op ~a ~b ~c ~en =
  [| Bits.of_int ~width:16 a; Bits.of_int ~width:16 b; Bits.of_int ~width:16 c;
     Bits.of_bool en |]

let multsum_latency ip ~a ~b ~c =
  (* Feed the operation, then flush the pipeline; return the first
     result. *)
  ignore (ip.Ip.step (multsum_op ~a ~b ~c ~en:true));
  ignore (ip.Ip.step (multsum_op ~a:0 ~b:0 ~c:0 ~en:true));
  ignore (ip.Ip.step (multsum_op ~a:0 ~b:0 ~c:0 ~en:true));
  let out = fst (ip.Ip.step (multsum_op ~a:0 ~b:0 ~c:0 ~en:true)) in
  Bits.to_int out.(0)

let test_multsum_computes () =
  let ip = Psm_ips.Multsum.create () in
  check_int "3*4+5" 17 (multsum_latency ip ~a:3 ~b:4 ~c:5);
  ip.Ip.reset ();
  check_int "max*max+max"
    (Psm_ips.Multsum.model ~a:0xFFFF ~b:0xFFFF ~c:0xFFFF)
    (multsum_latency ip ~a:0xFFFF ~b:0xFFFF ~c:0xFFFF)

let test_multsum_behavioural_equals_structural () =
  (* Lockstep equivalence over a mixed workload. *)
  let behavioural = Psm_ips.Multsum.create () in
  let structural = Psm_ips.Multsum.create_structural () in
  let stim = Workloads.multsum_short ~length:400 () in
  behavioural.Ip.reset ();
  structural.Ip.reset ();
  Array.iteri
    (fun t pis ->
      let out_b = fst (behavioural.Ip.step pis) in
      let out_s = fst (structural.Ip.step pis) in
      Alcotest.(check string)
        (Printf.sprintf "cycle %d" t)
        (Bits.to_hex_string out_b.(0))
        (Bits.to_hex_string out_s.(0)))
    stim

let cipher_op ?(mode = false) ~key ~data ~start ~decrypt ~enable ~rst () =
  let base =
    [| key; data; Bits.of_bool start; Bits.of_bool decrypt; Bits.of_bool enable;
       Bits.of_bool rst |]
  in
  if mode then Array.append base [| Bits.zero 2 |] else base

let run_cipher_block ip ~cycles ~mode ~key ~data ~decrypt =
  ignore
    (ip.Ip.step (cipher_op ~mode ~key ~data ~start:true ~decrypt ~enable:true ~rst:false ()));
  let result = ref None in
  (* The done flag is registered: allow one extra cycle for it to appear. *)
  for _ = 2 to cycles + 1 do
    let out =
      fst
        (ip.Ip.step
           (cipher_op ~mode ~key ~data ~start:false ~decrypt ~enable:true ~rst:false ()))
    in
    if Bits.get out.(1) 0 && !result = None then result := Some out.(0)
  done;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "block never completed"

let test_aes_ip_matches_core () =
  let ip = Psm_ips.Aes.create () in
  let key = Bits.of_hex_string ~width:128 fips_key in
  let data = Bits.of_hex_string ~width:128 fips_pt in
  let ct =
    run_cipher_block ip ~cycles:Psm_ips.Aes.cycles_per_block ~mode:false ~key ~data
      ~decrypt:false
  in
  check_string "ip encrypt" fips_ct (Bits.to_hex_string ct);
  let pt =
    run_cipher_block ip ~cycles:Psm_ips.Aes.cycles_per_block ~mode:false ~key ~data:ct
      ~decrypt:true
  in
  check_string "ip decrypt" fips_pt (Bits.to_hex_string pt)

let test_camellia_ip_matches_core () =
  let ip = Psm_ips.Camellia.create () in
  let key = Bits.of_hex_string ~width:128 rfc_key in
  let ct =
    run_cipher_block ip ~cycles:Psm_ips.Camellia.cycles_per_block ~mode:true ~key
      ~data:key ~decrypt:false
  in
  check_string "ip encrypt" rfc_ct (Bits.to_hex_string ct);
  let pt =
    run_cipher_block ip ~cycles:Psm_ips.Camellia.cycles_per_block ~mode:true ~key
      ~data:ct ~decrypt:true
  in
  check_string "ip decrypt" rfc_key (Bits.to_hex_string pt)

let test_cipher_hold_freezes () =
  (* With enable low mid-block, the computation must not advance. *)
  let ip = Psm_ips.Aes.create () in
  let key = Bits.of_hex_string ~width:128 fips_key in
  let data = Bits.of_hex_string ~width:128 fips_pt in
  ignore (ip.Ip.step (cipher_op ~key ~data ~start:true ~decrypt:false ~enable:true ~rst:false ()));
  (* 5 wasted cycles with enable low... *)
  for _ = 1 to 5 do
    ignore (ip.Ip.step (cipher_op ~key ~data ~start:false ~decrypt:false ~enable:false ~rst:false ()))
  done;
  (* ...then the block still completes correctly. *)
  let result = ref None in
  for _ = 1 to Psm_ips.Aes.cycles_per_block + 1 do
    let out =
      fst (ip.Ip.step (cipher_op ~key ~data ~start:false ~decrypt:false ~enable:true ~rst:false ()))
    in
    if Bits.get out.(1) 0 && !result = None then result := Some out.(0)
  done;
  match !result with
  | Some ct -> check_string "completes after hold" fips_ct (Bits.to_hex_string ct)
  | None -> Alcotest.fail "block lost during hold"

let test_camellia_scrubber_increases_variance () =
  let measure make =
    let ip = make () in
    let stim = Workloads.camellia_short ~length:3000 () in
    let _trace, power = Capture.run ip stim in
    let values = Psm_trace.Power_trace.to_array power in
    Psm_stats.Descriptive.stddev values
  in
  let with_scrub = measure Psm_ips.Camellia.create in
  let without = measure Psm_ips.Camellia.create_without_scrubber in
  check_bool "scrubber adds variance" true (with_scrub > without *. 1.05)

let fifo_op ~wr ~rd ~wdata =
  [| Bits.of_bool wr; Bits.of_bool rd; Bits.of_int ~width:32 wdata |]

let test_fifo_order_and_flags () =
  let ip = Psm_ips.Fifo.create () in
  let step pis = fst (ip.Ip.step pis) in
  (* Initially empty. *)
  let out = step (fifo_op ~wr:false ~rd:false ~wdata:0) in
  check_bool "empty at reset" true (Bits.get out.(2) 0);
  check_bool "not full at reset" false (Bits.get out.(1) 0);
  (* Push 1, 2, 3; pop them back in order (registered outputs: the value
     appears the cycle after the pop). *)
  ignore (step (fifo_op ~wr:true ~rd:false ~wdata:1));
  ignore (step (fifo_op ~wr:true ~rd:false ~wdata:2));
  ignore (step (fifo_op ~wr:true ~rd:false ~wdata:3));
  ignore (step (fifo_op ~wr:false ~rd:true ~wdata:0));
  let out = step (fifo_op ~wr:false ~rd:true ~wdata:0) in
  check_int "first out" 1 (Bits.to_int out.(0));
  let out = step (fifo_op ~wr:false ~rd:true ~wdata:0) in
  check_int "second out" 2 (Bits.to_int out.(0));
  let out = step (fifo_op ~wr:false ~rd:false ~wdata:0) in
  check_int "third out" 3 (Bits.to_int out.(0));
  check_bool "empty again" true (Bits.get out.(2) 0)

let test_fifo_full_backpressure () =
  let ip = Psm_ips.Fifo.create () in
  let step pis = fst (ip.Ip.step pis) in
  for i = 1 to Psm_ips.Fifo.depth do
    ignore (step (fifo_op ~wr:true ~rd:false ~wdata:i))
  done;
  let out = step (fifo_op ~wr:false ~rd:false ~wdata:0) in
  check_bool "full" true (Bits.get out.(1) 0);
  (* Overflow attempt is dropped: drain everything and count. *)
  ignore (step (fifo_op ~wr:true ~rd:false ~wdata:999));
  let popped = ref 0 in
  for _ = 1 to Psm_ips.Fifo.depth + 4 do
    let out = step (fifo_op ~wr:false ~rd:true ~wdata:0) in
    if not (Bits.get out.(2) 0) then incr popped
  done;
  check_int "depth values retained" Psm_ips.Fifo.depth !popped

let test_fifo_flow_accuracy () =
  let ip = Psm_ips.Fifo.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:12000 ~long:false "FIFO" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in
  let long = Workloads.fifo_long ~length:20000 () in
  let report, _ = Psm_flow.Flow.evaluate_on_ip trained ip long in
  check_bool
    (Printf.sprintf "MRE %.2f%% < 8%%" (100. *. report.Psm_hmm.Accuracy.mre))
    true
    (report.Psm_hmm.Accuracy.mre < 0.08)

(* ---------- workloads & capture ---------- *)

let test_workload_lengths () =
  check_int "ram" 1000 (Array.length (Workloads.ram_short ~length:1000 ()));
  check_int "aes" 1234 (Array.length (Workloads.aes_long ~length:1234 ()));
  check_int "paper ram" 34130 (Workloads.paper_short_length "RAM");
  check_int "paper camellia" 78004 (Workloads.paper_short_length "Camellia")

let test_workload_deterministic () =
  let a = Workloads.multsum_long ~length:500 ~seed:3L () in
  let b = Workloads.multsum_long ~length:500 ~seed:3L () in
  Alcotest.(check bool) "same stimulus" true
    (Array.for_all2 (fun x y -> Array.for_all2 Bits.equal x y) a b);
  let c = Workloads.multsum_long ~length:500 ~seed:4L () in
  Alcotest.(check bool) "different seed differs" false
    (Array.for_all2 (fun x y -> Array.for_all2 Bits.equal x y) a c)

let test_suite_shape () =
  let parts = Workloads.suite ~parts:3 ~total_length:1000 ~long:false "RAM" in
  check_int "3 parts" 3 (List.length parts);
  check_int "total" 1000 (List.fold_left (fun acc p -> acc + Array.length p) 0 parts)

let test_capture_shapes () =
  let ip = Psm_ips.Ram.create () in
  let stim = Workloads.ram_short ~length:300 () in
  let trace, power = Capture.run ip stim in
  check_int "trace length" 300 (Psm_trace.Functional_trace.length trace);
  check_int "power length" 300 (Psm_trace.Power_trace.length power);
  check_int "signals" 5 (Psm_trace.Interface.arity (Psm_trace.Functional_trace.interface trace))

let test_capture_deterministic () =
  let stim = Workloads.aes_short ~length:300 () in
  let run () =
    let ip = Psm_ips.Aes.create () in
    snd (Capture.run ip stim)
  in
  let p1 = Psm_trace.Power_trace.to_array (run ()) in
  let p2 = Psm_trace.Power_trace.to_array (run ()) in
  Alcotest.(check (array (float 1e-24))) "same power" p1 p2

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:40 ~name arb f)

let arb_block =
  QCheck.make
    QCheck.Gen.(map (fun l -> Array.of_list l) (list_size (return 16) (int_bound 255)))

let arb_halves =
  QCheck.make QCheck.Gen.(pair (map Int64.of_int (int_bound max_int)) (map Int64.of_int (int_bound max_int)))

let properties =
  [ prop "aes decrypt inverts encrypt" (QCheck.pair arb_block arb_block)
      (fun (key, pt) ->
        Aes_core.decrypt_block ~key (Aes_core.encrypt_block ~key pt) = pt);
    prop "camellia decrypt inverts encrypt" (QCheck.pair arb_halves arb_halves)
      (fun (key, pt) ->
        Camellia_core.decrypt_block ~key (Camellia_core.encrypt_block ~key pt) = pt);
    prop "aes changes every block it sees" (QCheck.pair arb_block arb_block)
      (fun (key, pt) -> Aes_core.encrypt_block ~key pt <> pt);
    prop "multsum model matches int arithmetic"
      (QCheck.triple (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF))
      (fun (a, b, c) -> Psm_ips.Multsum.model ~a ~b ~c = ((a * b) + c) land 0xFFFFFFFF) ]

let suite =
  ( "ips",
    [ Alcotest.test_case "aes sbox entries" `Quick test_aes_sbox_known_entries;
      Alcotest.test_case "aes sbox bijective" `Quick test_aes_sbox_bijective;
      Alcotest.test_case "aes FIPS vector" `Quick test_aes_fips_vector;
      Alcotest.test_case "aes appendix B" `Quick test_aes_appendix_b_vector;
      Alcotest.test_case "aes key expansion" `Quick test_aes_key_expansion;
      Alcotest.test_case "aes block/bits roundtrip" `Quick test_aes_block_of_bits_roundtrip;
      Alcotest.test_case "camellia RFC vector" `Quick test_camellia_rfc_vector;
      Alcotest.test_case "camellia sbox" `Quick test_camellia_sbox_relations;
      Alcotest.test_case "camellia FL inverse" `Quick test_camellia_fl_flinv_inverse;
      Alcotest.test_case "camellia subkey involution" `Quick test_camellia_decryption_subkeys_involution;
      Alcotest.test_case "Table I interface widths" `Quick test_table1_interface_widths;
      Alcotest.test_case "ram write/read" `Quick test_ram_write_read;
      Alcotest.test_case "ram data dependence" `Quick test_ram_write_data_dependence;
      Alcotest.test_case "ram idle cheapest" `Quick test_ram_idle_cheapest;
      Alcotest.test_case "ram reset" `Quick test_ram_reset;
      Alcotest.test_case "multsum computes" `Quick test_multsum_computes;
      Alcotest.test_case "multsum behavioural == structural" `Quick
        test_multsum_behavioural_equals_structural;
      Alcotest.test_case "aes IP matches core" `Quick test_aes_ip_matches_core;
      Alcotest.test_case "camellia IP matches core" `Quick test_camellia_ip_matches_core;
      Alcotest.test_case "cipher hold freezes" `Quick test_cipher_hold_freezes;
      Alcotest.test_case "camellia scrubber variance" `Quick
        test_camellia_scrubber_increases_variance;
      Alcotest.test_case "fifo order/flags" `Quick test_fifo_order_and_flags;
      Alcotest.test_case "fifo backpressure" `Quick test_fifo_full_backpressure;
      Alcotest.test_case "fifo flow accuracy" `Slow test_fifo_flow_accuracy;
      Alcotest.test_case "workload lengths" `Quick test_workload_lengths;
      Alcotest.test_case "workload determinism" `Quick test_workload_deterministic;
      Alcotest.test_case "suite shape" `Quick test_suite_shape;
      Alcotest.test_case "capture shapes" `Quick test_capture_shapes;
      Alcotest.test_case "capture determinism" `Quick test_capture_deterministic ]
    @ properties )
