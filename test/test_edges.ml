(* Edge cases and failure injection across module boundaries: degenerate
   traces, single-state machines, printer totality. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Table = Psm_mining.Prop_trace.Table
module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm
module Multi_sim = Psm_hmm.Multi_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_world values =
  let iface = Interface.create [ Signal.input "s" 4; Signal.output "o" 1 ] in
  let atoms = List.init 8 (fun v -> Psm_mining.Atomic.eq_const 0 (Bits.of_int ~width:4 v)) in
  let table = Table.create (Psm_mining.Vocabulary.create iface atoms) in
  let samples =
    Array.of_list (List.map (fun v -> [| Bits.of_int ~width:4 v; Bits.of_bool false |]) values)
  in
  let trace = FT.of_samples iface samples in
  let gamma = Psm_mining.Prop_trace.of_functional table trace in
  let delta = PT.of_array (Array.make (List.length values) 1.) in
  (table, trace, gamma, delta)

(* ---------- degenerate machines ---------- *)

let test_single_instant_trace () =
  let table, trace, gamma, delta = tiny_world [ 3 ] in
  let psm = Psm_core.Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  check_int "one state" 1 (Psm.state_count psm);
  let hmm = Hmm.build psm in
  let result = Multi_sim.simulate hmm trace in
  check_int "one estimate" 1 (Array.length result.Multi_sim.estimate);
  check_int "synced" 0 result.Multi_sim.wrong_instants

let test_single_state_absorbing () =
  let table, trace, gamma, delta = tiny_world [ 2; 2; 2; 2; 2 ] in
  let psm = Psm_core.Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let hmm = Hmm.build psm in
  let result = Multi_sim.simulate hmm trace in
  check_int "no wrong instants" 0 result.Multi_sim.wrong_instants;
  (* A single absorbing state self-loops in A. *)
  Alcotest.(check (float 1e-9)) "self loop" 1. (Hmm.a hmm 0 0)

let test_simulate_on_wrong_interface_is_detected () =
  let table, _, gamma, delta = tiny_world [ 0; 0; 1; 1 ] in
  let psm = Psm_core.Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let hmm = Hmm.build psm in
  (* A trace whose signal widths do not match the vocabulary: every
     sample classifies as an unknown row, so the machine must be fully
     desynchronized rather than producing confident estimates. *)
  let other = Interface.create [ Signal.input "x" 2; Signal.output "y" 1 ] in
  let bad =
    FT.of_samples other
      (Array.make 5 [| Bits.zero 2; Bits.zero 1 |])
  in
  let result = Multi_sim.simulate hmm bad in
  check_int "all instants flagged wrong" 5 result.Multi_sim.wrong_instants

let test_empty_psm_rejected_by_hmm () =
  let table, _, _, _ = tiny_world [ 0 ] in
  check_bool "raises" true
    (try
       ignore (Hmm.build (Psm.empty table));
       false
     with Invalid_argument _ -> true)

let test_stepper_counts_cycles () =
  let table, trace, gamma, delta = tiny_world [ 0; 0; 1; 1; 0; 0 ] in
  let psm = Psm_core.Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let stepper = Multi_sim.Stepper.create (Hmm.build psm) in
  FT.iter (fun _ sample -> ignore (Multi_sim.Stepper.step stepper sample)) trace;
  check_int "cycles" 6 (Multi_sim.Stepper.cycles stepper)

(* ---------- XU automaton protocol ---------- *)

let test_xu_protocol_observables () =
  let _, _, gamma, _ = tiny_world [ 0; 0; 1; 1 ] in
  let xu = Psm_core.Xu.initialize gamma in
  (* Before any call the FIFO holds the first two instants. *)
  (match Psm_core.Xu.fifo xu with
  | Some 0, Some 0 -> ()
  | _ -> Alcotest.fail "initial fifo");
  check_bool "starts in X" true (Psm_core.Xu.automaton_state xu = `X);
  ignore (Psm_core.Xu.get_assertion xu);
  (* After recognizing the until pattern the automaton returned to X. *)
  check_bool "back in X" true (Psm_core.Xu.automaton_state xu = `X)

(* ---------- printers are total ---------- *)

let test_printers_do_not_raise () =
  let table, trace, gamma, delta = tiny_world [ 0; 0; 1; 1; 2; 3; 3 ] in
  let psm = Psm_core.Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let hmm = Hmm.build psm in
  let render pp v = ignore (Format.asprintf "%a" pp v) in
  render Psm.pp psm;
  render Hmm.pp hmm;
  render Psm_mining.Prop_trace.pp gamma;
  render Psm_mining.Vocabulary.pp (Table.vocabulary table);
  render FT.pp_summary trace;
  render PT.pp_summary delta;
  render Interface.pp (FT.interface trace);
  render Psm_trace.Trace_stats.pp_report trace;
  render Psm_rtl.Power_model.pp_config Psm_rtl.Power_model.default;
  List.iter
    (fun (s : Psm.state) -> render Psm_core.Power_attr.pp s.Psm.attr)
    (Psm.states psm);
  ignore (Psm_core.Dot.to_string psm);
  check_bool "all printers total" true true

let test_netlist_stats_pp () =
  let nl = Psm_ips.Multsum.structural_netlist () in
  let stats = Psm_rtl.Netlist_stats.analyze nl in
  let text = Format.asprintf "%a" Psm_rtl.Netlist_stats.pp stats in
  check_bool "non-empty" true (String.length text > 40)

(* ---------- accessor edge cases ---------- *)

let test_bits_to_int_too_wide () =
  check_bool "raises" true
    (try
       ignore (Bits.to_int (Bits.ones 70));
       false
     with Failure _ -> true)

let test_power_trace_bounds () =
  let p = PT.of_array [| 1.; 2. |] in
  check_bool "sub bad range" true
    (try
       ignore (PT.sub p ~start:1 ~stop:0);
       false
     with Invalid_argument _ -> true)

let test_interface_pp_contains_names () =
  let iface = Interface.create [ Signal.input "alpha" 3; Signal.output "beta" 1 ] in
  let text = Format.asprintf "%a" Interface.pp iface in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "alpha" true (contains "alpha");
  check_bool "beta" true (contains "beta")

let suite =
  ( "edges",
    [ Alcotest.test_case "single instant" `Quick test_single_instant_trace;
      Alcotest.test_case "single absorbing state" `Quick test_single_state_absorbing;
      Alcotest.test_case "wrong interface detected" `Quick
        test_simulate_on_wrong_interface_is_detected;
      Alcotest.test_case "empty PSM rejected" `Quick test_empty_psm_rejected_by_hmm;
      Alcotest.test_case "stepper cycle count" `Quick test_stepper_counts_cycles;
      Alcotest.test_case "XU protocol observables" `Quick test_xu_protocol_observables;
      Alcotest.test_case "printers total" `Quick test_printers_do_not_raise;
      Alcotest.test_case "netlist stats pp" `Quick test_netlist_stats_pp;
      Alcotest.test_case "to_int overflow" `Quick test_bits_to_int_too_wide;
      Alcotest.test_case "power trace bounds" `Quick test_power_trace_bounds;
      Alcotest.test_case "interface pp" `Quick test_interface_pp_contains_names ] )
